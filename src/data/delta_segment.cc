#include "data/delta_segment.h"

#include <cstring>

namespace nmrs {
namespace delta_internal {

uint64_t PackedLog::Append(const uint64_t* words) {
  const uint64_t i = size_.load(std::memory_order_relaxed);
  const uint64_t chunk_idx = i / kChunkRecords;
  NMRS_CHECK(chunk_idx < kMaxChunks) << "PackedLog full (compaction overdue)";
  Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    owned_.push_back(std::make_unique<Chunk>(kChunkRecords * stride_));
    chunk = owned_.back().get();
    chunks_[chunk_idx].store(chunk, std::memory_order_release);
    num_chunks_.store(owned_.size(), std::memory_order_relaxed);
  }
  std::memcpy(chunk->words.data() + (i % kChunkRecords) * stride_, words,
              stride_ * sizeof(uint64_t));
  size_.store(i + 1, std::memory_order_release);
  return i;
}

}  // namespace delta_internal

DeltaSegment::DeltaSegment(const Schema& schema)
    : num_attrs_(schema.num_attributes()),
      has_numerics_(schema.NumNumeric() > 0),
      value_words_((num_attrs_ + 1) / 2),
      inserts_(1 + value_words_ + (has_numerics_ ? num_attrs_ : 0)),
      deletes_(1),
      scratch_(inserts_.stride(), 0) {}

uint64_t DeltaSegment::AppendInsert(uint64_t key, const uint32_t* values,
                                    const double* numerics) {
  scratch_.assign(scratch_.size(), 0);
  scratch_[0] = key;
  std::memcpy(scratch_.data() + 1, values, num_attrs_ * sizeof(uint32_t));
  if (has_numerics_) {
    NMRS_DCHECK(numerics != nullptr);
    std::memcpy(scratch_.data() + 1 + value_words_, numerics,
                num_attrs_ * sizeof(double));
  }
  return inserts_.Append(scratch_.data());
}

uint64_t DeltaSegment::AppendDelete(uint64_t key) {
  return deletes_.Append(&key);
}

}  // namespace nmrs
