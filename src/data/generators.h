#ifndef NMRS_DATA_GENERATORS_H_
#define NMRS_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// Synthetic data à la paper §5.2: per attribute, an (arbitrary) value
/// ordering is assumed and value indices are drawn from a normal
/// distribution centered on the middle index with the given variance,
/// sampled by rejection sampling from a uniform proposal. Similarities stay
/// random, so "middle" values are NOT more similar to each other — the data
/// is dense around the middle of the arbitrary order only.
struct NormalDataOptions {
  double variance = 3.0;  // paper: "We choose the variance to be 3"
};

Dataset GenerateNormal(uint64_t num_rows,
                       const std::vector<size_t>& cardinalities, Rng& rng,
                       const NormalDataOptions& opts = {});

/// Uniform value ids per attribute.
Dataset GenerateUniform(uint64_t num_rows,
                        const std::vector<size_t>& cardinalities, Rng& rng);

/// Zipf-distributed value ids (skew parameter `s`), an extension beyond the
/// paper used by ablation benches.
Dataset GenerateZipf(uint64_t num_rows,
                     const std::vector<size_t>& cardinalities, double s,
                     Rng& rng);

/// Substitute for the UCI Census-Income extract of the paper (§5.2):
/// 5 attributes with cardinalities {91, 17, 5, 53, 7} (Age, Education,
/// Minor family members, Weeks worked, Employees), 199,523 rows at full
/// scale, density ≈ 6.9%. Values are drawn from per-attribute truncated
/// normals to mimic demographic concentration.
Dataset GenerateCensusIncomeLike(uint64_t num_rows, Rng& rng);
std::vector<size_t> CensusIncomeCardinalities();
inline constexpr uint64_t kCensusIncomeFullRows = 199523;

/// Substitute for the UCI ForestCover extract (§5.2): 7 attributes with
/// cardinalities {67, 551, 2, 700, 2, 7, 2} (including binary attributes),
/// 581,012 rows at full scale, density ≈ 0.04%. Binary attributes are
/// skewed (90/10), large-cardinality ones normal-ish.
Dataset GenerateForestCoverLike(uint64_t num_rows, Rng& rng);
std::vector<size_t> ForestCoverCardinalities();
inline constexpr uint64_t kForestCoverFullRows = 581012;

/// Mixed categorical + numeric dataset for the §6 experiments:
/// `cat_cardinalities.size()` categorical attributes followed by
/// `num_numeric` numeric attributes uniform in [0, 100], discretized into
/// `buckets_per_numeric` buckets.
Dataset GenerateMixed(uint64_t num_rows,
                      const std::vector<size_t>& cat_cardinalities,
                      size_t num_numeric, size_t buckets_per_numeric,
                      Rng& rng);

/// A query object drawn uniformly from the value space (every attribute
/// uniform over its domain; numeric attributes uniform over their range).
Object SampleUniformQuery(const Dataset& data, Rng& rng);

/// A query equal to a random database row (guaranteed non-empty reverse
/// skyline in most configurations).
Object SampleRowQuery(const Dataset& data, Rng& rng);

}  // namespace nmrs

#endif  // NMRS_DATA_GENERATORS_H_
