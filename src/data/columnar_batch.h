#ifndef NMRS_DATA_COLUMNAR_BATCH_H_
#define NMRS_DATA_COLUMNAR_BATCH_H_

#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "data/object.h"

namespace nmrs {

/// Column-major (SoA) view of a decoded RowBatch: one contiguous ValueId
/// column per attribute and, when the batch carries numerics, one
/// contiguous double column per attribute. Built once per loaded batch and
/// read many times by the block dominance kernels (core/dominance_kernel.h):
/// with a candidate X fixed, the per-attribute check reads
/// d_a(y_a, x_a) = ColumnTo(x_a)[y_a], so a contiguous y_a column turns the
/// inner loop into a gather from one matrix column — the memory-layout
/// shape SIMD gathers want. The row-major RowBatch stays the canonical
/// decode target; this is a derived copy, rebuilt by Build() and never
/// written back.
class ColumnarBatch {
 public:
  ColumnarBatch() = default;

  /// Rebuilds the SoA view from `rows` (one transpose pass, O(n*m)).
  /// Any previously built contents are discarded.
  void Build(const RowBatch& rows);

  size_t size() const { return num_rows_; }
  size_t num_attrs() const { return num_attrs_; }
  bool has_numerics() const { return has_numerics_; }

  const RowId* ids() const { return ids_.data(); }
  RowId id(size_t i) const { return ids_[i]; }

  /// Contiguous value-id column of attribute `a`, length size().
  const ValueId* values(AttrId a) const {
    NMRS_DCHECK(a < num_attrs_);
    return values_.data() + static_cast<size_t>(a) * num_rows_;
  }

  /// Contiguous numeric column of attribute `a`; null when the underlying
  /// batch has no numerics. Only entries of numeric attributes are
  /// meaningful (mirrors RowBatch).
  const double* numerics(AttrId a) const {
    NMRS_DCHECK(a < num_attrs_);
    return has_numerics_
               ? numerics_.data() + static_cast<size_t>(a) * num_rows_
               : nullptr;
  }

  /// Builds directly from parallel arrays (used by the TRS leaf blocks,
  /// which have no RowBatch): column `a` is copied from `columns[a]`,
  /// ids from `ids`. No numerics.
  void BuildFromColumns(size_t num_rows,
                        const std::vector<std::vector<ValueId>>& columns,
                        const std::vector<RowId>& ids);

 private:
  size_t num_rows_ = 0;
  size_t num_attrs_ = 0;
  bool has_numerics_ = false;
  std::vector<RowId> ids_;
  std::vector<ValueId> values_;    // [a * num_rows_ + i]
  std::vector<double> numerics_;   // [a * num_rows_ + i], empty if none
};

}  // namespace nmrs

#endif  // NMRS_DATA_COLUMNAR_BATCH_H_
