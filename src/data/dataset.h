#ifndef NMRS_DATA_DATASET_H_
#define NMRS_DATA_DATASET_H_

#include <optional>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/types.h"
#include "data/bucketizer.h"
#include "data/object.h"
#include "data/schema.h"

namespace nmrs {

/// In-memory object table: n rows over the schema's m attributes, row-major
/// value ids plus exact numeric values for numeric attributes. This is the
/// canonical source a StoredDataset is serialized from; query processing
/// then works off the (simulated) disk representation.
class Dataset {
 public:
  explicit Dataset(Schema schema);

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return schema_.num_attributes(); }
  bool has_numerics() const { return !bucketizers_.empty(); }

  void Reserve(uint64_t rows);

  /// Appends a row of categorical value ids (schema must be all-categorical).
  void AppendCategoricalRow(const std::vector<ValueId>& values);

  /// Appends a mixed row: `values[i]` is used for categorical attributes;
  /// `numerics[i]` for numeric attributes (their bucket id is derived from
  /// the schema's range/bucket count and stored in the value table).
  void AppendRow(const std::vector<ValueId>& values,
                 const std::vector<double>& numerics);

  ValueId Value(RowId row, AttrId attr) const {
    NMRS_DCHECK(row < num_rows_);
    return values_[row * schema_.num_attributes() + attr];
  }

  double Numeric(RowId row, AttrId attr) const {
    NMRS_DCHECK(row < num_rows_ && has_numerics());
    return numerics_[row * schema_.num_attributes() + attr];
  }

  const ValueId* RowValues(RowId row) const {
    return values_.data() + row * schema_.num_attributes();
  }
  const double* RowNumerics(RowId row) const {
    return has_numerics() ? numerics_.data() + row * schema_.num_attributes()
                          : nullptr;
  }

  Object GetObject(RowId row) const;

  /// New dataset whose row r is this dataset's row order[r]. `order` must be
  /// a permutation of [0, num_rows).
  Dataset Permuted(const std::vector<RowId>& order) const;

  /// n / |value space| (paper §5.2).
  double Density() const;

  /// Checks every categorical value id is inside its domain.
  Status Validate() const;

  /// Builds the Object for a query with given per-attribute numeric values /
  /// value ids, deriving bucket ids for numeric attributes.
  Object MakeObject(const std::vector<ValueId>& values,
                    const std::vector<double>& numerics) const;

 private:
  Schema schema_;
  uint64_t num_rows_ = 0;
  std::vector<ValueId> values_;
  std::vector<double> numerics_;  // empty when schema has no numeric attrs
  std::vector<std::optional<Bucketizer>> bucketizers_;  // per numeric attr
};

}  // namespace nmrs

#endif  // NMRS_DATA_DATASET_H_
