#ifndef NMRS_DATA_SCHEMA_H_
#define NMRS_DATA_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/numeric_dissimilarity.h"

namespace nmrs {

/// Describes one attribute of a dataset.
struct AttributeInfo {
  std::string name;
  /// Categorical domain size; for numeric attributes, the number of
  /// discretization buckets used by TRS (paper §6).
  size_t cardinality = 0;
  bool is_numeric = false;
  /// Value range for numeric attributes (ignored for categorical).
  Interval range;
};

/// Ordered list of attributes. The order is the physical column order of the
/// dataset; algorithm-facing attribute *orderings* (e.g. ascending
/// cardinality for the AL-Tree) are permutations applied on top.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeInfo> attrs)
      : attrs_(std::move(attrs)) {}

  /// Convenience: all-categorical schema from domain sizes.
  static Schema Categorical(const std::vector<size_t>& cardinalities);

  size_t num_attributes() const { return attrs_.size(); }

  const AttributeInfo& attribute(AttrId i) const {
    NMRS_DCHECK(i < attrs_.size());
    return attrs_[i];
  }

  void AddAttribute(AttributeInfo info) { attrs_.push_back(std::move(info)); }

  size_t NumNumeric() const;

  /// Product of cardinalities — the size of the value space; density is
  /// n / SpaceSize() (paper §5.2). Saturates at +inf for huge spaces.
  double SpaceSize() const;

  /// Checks cardinalities are positive and numeric ranges well-formed.
  Status Validate() const;

  bool operator==(const Schema& o) const;

 private:
  std::vector<AttributeInfo> attrs_;
};

}  // namespace nmrs

#endif  // NMRS_DATA_SCHEMA_H_
