#include "data/dataset.h"

#include <string>

namespace nmrs {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  NMRS_CHECK(schema_.Validate().ok());
  if (schema_.NumNumeric() > 0) {
    bucketizers_.resize(schema_.num_attributes());
    for (AttrId i = 0; i < schema_.num_attributes(); ++i) {
      const auto& a = schema_.attribute(i);
      if (a.is_numeric) {
        bucketizers_[i].emplace(a.range, a.cardinality);
      }
    }
  }
}

void Dataset::Reserve(uint64_t rows) {
  values_.reserve(rows * schema_.num_attributes());
  if (has_numerics()) numerics_.reserve(rows * schema_.num_attributes());
}

void Dataset::AppendCategoricalRow(const std::vector<ValueId>& values) {
  NMRS_CHECK_EQ(schema_.NumNumeric(), 0u);
  NMRS_CHECK_EQ(values.size(), schema_.num_attributes());
  values_.insert(values_.end(), values.begin(), values.end());
  ++num_rows_;
}

void Dataset::AppendRow(const std::vector<ValueId>& values,
                        const std::vector<double>& numerics) {
  const size_t m = schema_.num_attributes();
  NMRS_CHECK_EQ(values.size(), m);
  if (has_numerics()) {
    NMRS_CHECK_EQ(numerics.size(), m);
    for (AttrId i = 0; i < m; ++i) {
      if (bucketizers_[i].has_value()) {
        values_.push_back(bucketizers_[i]->BucketOf(numerics[i]));
        numerics_.push_back(numerics[i]);
      } else {
        values_.push_back(values[i]);
        numerics_.push_back(0.0);
      }
    }
  } else {
    values_.insert(values_.end(), values.begin(), values.end());
  }
  ++num_rows_;
}

Object Dataset::GetObject(RowId row) const {
  NMRS_DCHECK(row < num_rows_);
  const size_t m = schema_.num_attributes();
  Object obj;
  obj.values.assign(RowValues(row), RowValues(row) + m);
  if (has_numerics()) {
    obj.numerics.assign(RowNumerics(row), RowNumerics(row) + m);
  } else {
    obj.numerics.assign(m, 0.0);
  }
  return obj;
}

Dataset Dataset::Permuted(const std::vector<RowId>& order) const {
  NMRS_CHECK_EQ(order.size(), num_rows_);
  Dataset out(schema_);
  out.Reserve(num_rows_);
  const size_t m = schema_.num_attributes();
  for (RowId src : order) {
    NMRS_CHECK(src < num_rows_);
    out.values_.insert(out.values_.end(), RowValues(src), RowValues(src) + m);
    if (has_numerics()) {
      out.numerics_.insert(out.numerics_.end(), RowNumerics(src),
                           RowNumerics(src) + m);
    }
    ++out.num_rows_;
  }
  return out;
}

double Dataset::Density() const {
  const double space = schema_.SpaceSize();
  return space > 0 ? static_cast<double>(num_rows_) / space : 0.0;
}

Status Dataset::Validate() const {
  const size_t m = schema_.num_attributes();
  for (RowId r = 0; r < num_rows_; ++r) {
    for (AttrId a = 0; a < m; ++a) {
      if (Value(r, a) >= schema_.attribute(a).cardinality) {
        return Status::Corruption(
            "row " + std::to_string(r) + " attr " + std::to_string(a) +
            " value " + std::to_string(Value(r, a)) + " out of domain " +
            std::to_string(schema_.attribute(a).cardinality));
      }
    }
  }
  return Status::OK();
}

Object Dataset::MakeObject(const std::vector<ValueId>& values,
                           const std::vector<double>& numerics) const {
  const size_t m = schema_.num_attributes();
  NMRS_CHECK_EQ(values.size(), m);
  Object obj;
  obj.values.resize(m);
  obj.numerics.assign(m, 0.0);
  for (AttrId i = 0; i < m; ++i) {
    if (!bucketizers_.empty() && bucketizers_[i].has_value()) {
      NMRS_CHECK_EQ(numerics.size(), m);
      obj.values[i] = bucketizers_[i]->BucketOf(numerics[i]);
      obj.numerics[i] = numerics[i];
    } else {
      obj.values[i] = values[i];
    }
  }
  return obj;
}

}  // namespace nmrs
