#include "data/object.h"

#include <sstream>

#include "common/check.h"

namespace nmrs {

std::string Object::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ",";
    os << values[i];
  }
  os << "]";
  return os.str();
}

void RowBatch::Append(RowId id, const ValueId* values,
                      const double* numerics) {
  ids_.push_back(id);
  values_.insert(values_.end(), values, values + num_attrs_);
  if (has_numerics_) {
    NMRS_DCHECK(numerics != nullptr);
    numerics_.insert(numerics_.end(), numerics, numerics + num_attrs_);
  }
}

Object RowBatch::ToObject(size_t i) const {
  NMRS_DCHECK(i < size());
  Object obj;
  obj.values.assign(row_values(i), row_values(i) + num_attrs_);
  if (has_numerics_) {
    obj.numerics.assign(row_numerics(i), row_numerics(i) + num_attrs_);
  } else {
    obj.numerics.assign(num_attrs_, 0.0);
  }
  return obj;
}

void RowBatch::Clear() {
  ids_.clear();
  values_.clear();
  numerics_.clear();
}

void RowBatch::Reserve(size_t rows) {
  ids_.reserve(rows);
  values_.reserve(rows * num_attrs_);
  if (has_numerics_) numerics_.reserve(rows * num_attrs_);
}

}  // namespace nmrs
