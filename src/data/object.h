#ifndef NMRS_DATA_OBJECT_H_
#define NMRS_DATA_OBJECT_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace nmrs {

/// One object (a database row or a query): for every attribute a ValueId
/// (the categorical value id, or the discretization-bucket id for numeric
/// attributes) plus, for numeric attributes, the exact value. Both vectors
/// are sized to the schema's attribute count; `numerics[i]` is meaningful
/// only where attribute i is numeric.
struct Object {
  std::vector<ValueId> values;
  std::vector<double> numerics;

  Object() = default;
  explicit Object(std::vector<ValueId> v)
      : values(std::move(v)), numerics(values.size(), 0.0) {}
  Object(std::vector<ValueId> v, std::vector<double> nums)
      : values(std::move(v)), numerics(std::move(nums)) {}

  size_t num_attributes() const { return values.size(); }

  bool operator==(const Object& o) const = default;

  std::string ToString() const;
};

/// Struct-of-arrays batch of decoded rows: the unit the algorithms iterate
/// over after a page read. Keeps value ids contiguous for cache-friendly
/// dominance checks.
class RowBatch {
 public:
  RowBatch(size_t num_attrs, bool has_numerics)
      : num_attrs_(num_attrs), has_numerics_(has_numerics) {}

  size_t size() const { return ids_.size(); }
  size_t num_attrs() const { return num_attrs_; }
  bool has_numerics() const { return has_numerics_; }

  RowId id(size_t i) const { return ids_[i]; }
  ValueId value(size_t i, AttrId attr) const {
    return values_[i * num_attrs_ + attr];
  }
  double numeric(size_t i, AttrId attr) const {
    return numerics_[i * num_attrs_ + attr];
  }

  /// Pointer to the `num_attrs` contiguous value ids of row i.
  const ValueId* row_values(size_t i) const {
    return values_.data() + i * num_attrs_;
  }
  /// Pointer to the contiguous numeric values of row i (nullptr when the
  /// schema has no numeric attributes).
  const double* row_numerics(size_t i) const {
    return has_numerics_ ? numerics_.data() + i * num_attrs_ : nullptr;
  }

  /// Appends a row. `numerics` may be null when !has_numerics().
  void Append(RowId id, const ValueId* values, const double* numerics);

  /// Materializes row i as an Object.
  Object ToObject(size_t i) const;

  void Clear();
  void Reserve(size_t rows);

 private:
  size_t num_attrs_;
  bool has_numerics_;
  std::vector<RowId> ids_;
  std::vector<ValueId> values_;
  std::vector<double> numerics_;
};

}  // namespace nmrs

#endif  // NMRS_DATA_OBJECT_H_
