#include "data/stored_dataset.h"

#include <cstring>

namespace nmrs {

namespace {

template <typename T>
void StoreRaw(uint8_t* dst, T v) {
  std::memcpy(dst, &v, sizeof(T));
}

template <typename T>
T LoadRaw(const uint8_t* src) {
  T v;
  std::memcpy(&v, src, sizeof(T));
  return v;
}

}  // namespace

RowCodec::RowCodec(const Schema& schema, size_t page_size, bool checksum)
    : num_attrs_(schema.num_attributes()),
      has_numerics_(schema.NumNumeric() > 0),
      checksum_(checksum),
      page_size_(page_size) {
  row_bytes_ = sizeof(uint64_t) + num_attrs_ * sizeof(uint32_t) +
               (has_numerics_ ? num_attrs_ * sizeof(double) : 0);
  const size_t usable =
      page_size_ - (checksum_ ? Page::kChecksumFooterBytes : 0);
  NMRS_CHECK_GT(usable, sizeof(uint32_t) + row_bytes_)
      << "page size " << page_size_ << " cannot hold a single row of "
      << row_bytes_ << " bytes";
  rows_per_page_ = (usable - sizeof(uint32_t)) / row_bytes_;
}

void RowCodec::EncodeRow(Page* page, size_t slot, RowId id,
                         const ValueId* values,
                         const double* numerics) const {
  NMRS_DCHECK(slot < rows_per_page_);
  uint8_t* p = page->data() + sizeof(uint32_t) + slot * row_bytes_;
  StoreRaw<uint64_t>(p, id);
  p += sizeof(uint64_t);
  for (size_t i = 0; i < num_attrs_; ++i) {
    StoreRaw<uint32_t>(p, values[i]);
    p += sizeof(uint32_t);
  }
  if (has_numerics_) {
    NMRS_DCHECK(numerics != nullptr);
    for (size_t i = 0; i < num_attrs_; ++i) {
      StoreRaw<double>(p, numerics[i]);
      p += sizeof(double);
    }
  }
}

void RowCodec::SetRowCount(Page* page, uint32_t count) const {
  StoreRaw<uint32_t>(page->data(), count);
}

uint32_t RowCodec::GetRowCount(const Page& page) const {
  return LoadRaw<uint32_t>(page.data());
}

void RowCodec::DecodePage(const Page& page, RowBatch* out) const {
  const uint32_t count = GetRowCount(page);
  NMRS_CHECK_LE(count, rows_per_page_);
  std::vector<ValueId> values(num_attrs_);
  std::vector<double> numerics(num_attrs_, 0.0);
  for (uint32_t r = 0; r < count; ++r) {
    const uint8_t* p = page.data() + sizeof(uint32_t) + r * row_bytes_;
    RowId id = LoadRaw<uint64_t>(p);
    p += sizeof(uint64_t);
    for (size_t i = 0; i < num_attrs_; ++i) {
      values[i] = LoadRaw<uint32_t>(p);
      p += sizeof(uint32_t);
    }
    if (has_numerics_) {
      for (size_t i = 0; i < num_attrs_; ++i) {
        numerics[i] = LoadRaw<double>(p);
        p += sizeof(double);
      }
    }
    out->Append(id, values.data(), has_numerics_ ? numerics.data() : nullptr);
  }
}

RowWriter::RowWriter(SimulatedDisk* disk, FileId file, const Schema& schema,
                     bool checksum)
    : disk_(disk),
      file_(file),
      codec_(schema, disk->page_size(), checksum),
      current_(disk->page_size()),
      next_page_(disk->NumPages(file)) {}

Status RowWriter::Add(RowId id, const ValueId* values,
                      const double* numerics) {
  NMRS_CHECK(!finished_);
  codec_.EncodeRow(&current_, slot_, id, values, numerics);
  ++slot_;
  ++rows_written_;
  if (slot_ == codec_.rows_per_page()) {
    codec_.SetRowCount(&current_, static_cast<uint32_t>(slot_));
    if (codec_.checksum()) current_.Seal();
    NMRS_RETURN_IF_ERROR(disk_->WritePage(file_, next_page_, current_));
    current_ = Page(disk_->page_size());
    slot_ = 0;
    ++next_page_;
    partial_on_disk_ = false;
  }
  return Status::OK();
}

Status RowWriter::AddObject(RowId id, const Object& obj) {
  return Add(id, obj.values.data(),
             codec_.has_numerics() ? obj.numerics.data() : nullptr);
}

Status RowWriter::FlushPartial() {
  NMRS_CHECK(!finished_);
  if (slot_ == 0) return Status::OK();
  codec_.SetRowCount(&current_, static_cast<uint32_t>(slot_));
  if (codec_.checksum()) current_.Seal();
  NMRS_RETURN_IF_ERROR(disk_->WritePage(file_, next_page_, current_));
  partial_on_disk_ = true;
  return Status::OK();
}

Status RowWriter::Finish() {
  NMRS_CHECK(!finished_);
  finished_ = true;
  if (slot_ > 0) {
    codec_.SetRowCount(&current_, static_cast<uint32_t>(slot_));
    if (codec_.checksum()) current_.Seal();
    NMRS_RETURN_IF_ERROR(disk_->WritePage(file_, next_page_, current_));
    slot_ = 0;
  }
  return Status::OK();
}

StatusOr<StoredDataset> StoredDataset::Create(SimulatedDisk* disk,
                                              const Dataset& data,
                                              std::string name,
                                              bool checksum_pages) {
  FileId file = disk->CreateFile(std::move(name));
  RowWriter writer(disk, file, data.schema(), checksum_pages);
  for (RowId r = 0; r < data.num_rows(); ++r) {
    NMRS_RETURN_IF_ERROR(
        writer.Add(r, data.RowValues(r), data.RowNumerics(r)));
  }
  NMRS_RETURN_IF_ERROR(writer.Finish());
  return StoredDataset(disk, file, data.schema(), data.num_rows(),
                       checksum_pages);
}

StoredDataset::StoredDataset(SimulatedDisk* disk, FileId file, Schema schema,
                             uint64_t num_rows, bool checksum_pages)
    : disk_(disk),
      file_(file),
      schema_(std::move(schema)),
      num_rows_(num_rows),
      codec_(schema_, disk->page_size(), checksum_pages) {}

Status StoredDataset::ReadPage(PageId page, RowBatch* out) const {
  Page buf(disk_->page_size());
  NMRS_RETURN_IF_ERROR(disk_->ReadPage(file_, page, &buf));
  codec_.DecodePage(buf, out);
  return Status::OK();
}

Status StoredDataset::ReadPageVia(PagedReader* reader, PageId page,
                                  RowBatch* out) const {
  Page buf(reader->disk()->page_size());
  NMRS_RETURN_IF_ERROR(reader->ReadPage(file_, page, &buf));
  codec_.DecodePage(buf, out);
  return Status::OK();
}

Status StoredDataset::ReadAll(RowBatch* out) const {
  const uint64_t pages = num_pages();
  out->Reserve(num_rows_);
  for (PageId p = 0; p < pages; ++p) {
    NMRS_RETURN_IF_ERROR(ReadPage(p, out));
  }
  return Status::OK();
}

}  // namespace nmrs
