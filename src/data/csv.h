#ifndef NMRS_DATA_CSV_H_
#define NMRS_DATA_CSV_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "data/dataset.h"
#include "sim/dissimilarity_matrix.h"

namespace nmrs {

/// CSV interchange for datasets and dissimilarity matrices, so users can
/// bring their own data and expert-filled similarity matrices.
///
/// Dataset format: one header row `name:kind[:buckets:lo:hi]` per column
/// where kind is `cat` or `num`; then one row per object. Categorical
/// cells are value ids; numeric cells are the exact values.
Status WriteDatasetCsv(const Dataset& data, std::ostream& out);
StatusOr<Dataset> ReadDatasetCsv(std::istream& in);

/// Matrix format: first line is the cardinality k, then k rows of k
/// comma-separated dissimilarities.
Status WriteMatrixCsv(const DissimilarityMatrix& m, std::ostream& out);
StatusOr<DissimilarityMatrix> ReadMatrixCsv(std::istream& in);

/// File-path convenience wrappers.
Status WriteDatasetCsvFile(const Dataset& data, const std::string& path);
StatusOr<Dataset> ReadDatasetCsvFile(const std::string& path);
Status WriteMatrixCsvFile(const DissimilarityMatrix& m,
                          const std::string& path);
StatusOr<DissimilarityMatrix> ReadMatrixCsvFile(const std::string& path);

}  // namespace nmrs

#endif  // NMRS_DATA_CSV_H_
