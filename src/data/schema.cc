#include "data/schema.h"

namespace nmrs {

Schema Schema::Categorical(const std::vector<size_t>& cardinalities) {
  std::vector<AttributeInfo> attrs;
  attrs.reserve(cardinalities.size());
  for (size_t i = 0; i < cardinalities.size(); ++i) {
    AttributeInfo info;
    info.name = "attr" + std::to_string(i);
    info.cardinality = cardinalities[i];
    info.is_numeric = false;
    attrs.push_back(std::move(info));
  }
  return Schema(std::move(attrs));
}

size_t Schema::NumNumeric() const {
  size_t n = 0;
  for (const auto& a : attrs_) n += a.is_numeric ? 1 : 0;
  return n;
}

double Schema::SpaceSize() const {
  double size = 1.0;
  for (const auto& a : attrs_) size *= static_cast<double>(a.cardinality);
  return size;
}

Status Schema::Validate() const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    const auto& a = attrs_[i];
    if (a.cardinality == 0) {
      return Status::InvalidArgument("attribute " + std::to_string(i) +
                                     " has zero cardinality");
    }
    if (a.is_numeric && a.range.hi < a.range.lo) {
      return Status::InvalidArgument("attribute " + std::to_string(i) +
                                     " has inverted numeric range");
    }
  }
  return Status::OK();
}

bool Schema::operator==(const Schema& o) const {
  if (attrs_.size() != o.attrs_.size()) return false;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    const auto& a = attrs_[i];
    const auto& b = o.attrs_[i];
    if (a.name != b.name || a.cardinality != b.cardinality ||
        a.is_numeric != b.is_numeric || !(a.range == b.range)) {
      return false;
    }
  }
  return true;
}

}  // namespace nmrs
