#ifndef NMRS_DATA_BUCKETIZER_H_
#define NMRS_DATA_BUCKETIZER_H_

#include <cstddef>

#include "common/check.h"
#include "common/types.h"
#include "sim/numeric_dissimilarity.h"

namespace nmrs {

/// Equal-width discretization of a numeric range into buckets (paper §6).
/// Values outside the range are clamped into the first/last bucket, so
/// BucketOf is total.
class Bucketizer {
 public:
  Bucketizer(Interval range, size_t num_buckets)
      : range_(range), num_buckets_(num_buckets) {
    NMRS_CHECK_GT(num_buckets, 0u);
    NMRS_CHECK_GE(range.hi, range.lo);
    width_ = range.width() > 0 ? range.width() / static_cast<double>(num_buckets)
                               : 1.0;
  }

  size_t num_buckets() const { return num_buckets_; }
  const Interval& range() const { return range_; }

  ValueId BucketOf(double x) const {
    if (x <= range_.lo) return 0;
    if (x >= range_.hi) return static_cast<ValueId>(num_buckets_ - 1);
    auto b = static_cast<size_t>((x - range_.lo) / width_);
    if (b >= num_buckets_) b = num_buckets_ - 1;
    return static_cast<ValueId>(b);
  }

  /// Closed interval [lo, hi] covered by bucket `b`.
  Interval BucketInterval(ValueId b) const {
    NMRS_DCHECK(b < num_buckets_);
    const double lo = range_.lo + width_ * static_cast<double>(b);
    const double hi =
        (b + 1 == num_buckets_) ? range_.hi : lo + width_;
    return Interval{lo, hi};
  }

 private:
  Interval range_;
  size_t num_buckets_;
  double width_;
};

}  // namespace nmrs

#endif  // NMRS_DATA_BUCKETIZER_H_
