#include "data/generators.h"

#include <cmath>

#include "common/check.h"

namespace nmrs {

namespace {

/// Draws a value index in [0, card) from a normal centered at (card-1)/2
/// with the given variance, via rejection sampling from a uniform proposal
/// (paper §5.2: "We use a uniform random number generator and rejection
/// sampling").
ValueId RejectionSampleNormal(size_t card, double mean, double variance,
                              Rng& rng) {
  if (card == 1) return 0;
  const double inv2var = 1.0 / (2.0 * variance);
  for (;;) {
    const auto v = static_cast<double>(rng.Uniform(card));
    const double accept = std::exp(-(v - mean) * (v - mean) * inv2var);
    if (rng.NextDouble() < accept) return static_cast<ValueId>(v);
  }
}

}  // namespace

Dataset GenerateNormal(uint64_t num_rows,
                       const std::vector<size_t>& cardinalities, Rng& rng,
                       const NormalDataOptions& opts) {
  Dataset data(Schema::Categorical(cardinalities));
  data.Reserve(num_rows);
  const size_t m = cardinalities.size();
  std::vector<ValueId> row(m);
  for (uint64_t r = 0; r < num_rows; ++r) {
    for (size_t a = 0; a < m; ++a) {
      const double mean = static_cast<double>(cardinalities[a] - 1) / 2.0;
      row[a] = RejectionSampleNormal(cardinalities[a], mean, opts.variance,
                                     rng);
    }
    data.AppendCategoricalRow(row);
  }
  return data;
}

Dataset GenerateUniform(uint64_t num_rows,
                        const std::vector<size_t>& cardinalities, Rng& rng) {
  Dataset data(Schema::Categorical(cardinalities));
  data.Reserve(num_rows);
  const size_t m = cardinalities.size();
  std::vector<ValueId> row(m);
  for (uint64_t r = 0; r < num_rows; ++r) {
    for (size_t a = 0; a < m; ++a) {
      row[a] = static_cast<ValueId>(rng.Uniform(cardinalities[a]));
    }
    data.AppendCategoricalRow(row);
  }
  return data;
}

Dataset GenerateZipf(uint64_t num_rows,
                     const std::vector<size_t>& cardinalities, double s,
                     Rng& rng) {
  Dataset data(Schema::Categorical(cardinalities));
  data.Reserve(num_rows);
  const size_t m = cardinalities.size();

  // Per-attribute cumulative Zipf mass.
  std::vector<std::vector<double>> cdf(m);
  for (size_t a = 0; a < m; ++a) {
    cdf[a].resize(cardinalities[a]);
    double total = 0;
    for (size_t k = 0; k < cardinalities[a]; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf[a][k] = total;
    }
    for (auto& v : cdf[a]) v /= total;
  }

  std::vector<ValueId> row(m);
  for (uint64_t r = 0; r < num_rows; ++r) {
    for (size_t a = 0; a < m; ++a) {
      const double u = rng.NextDouble();
      const auto it = std::lower_bound(cdf[a].begin(), cdf[a].end(), u);
      row[a] = static_cast<ValueId>(it - cdf[a].begin());
    }
    data.AppendCategoricalRow(row);
  }
  return data;
}

std::vector<size_t> CensusIncomeCardinalities() { return {91, 17, 5, 53, 7}; }

Dataset GenerateCensusIncomeLike(uint64_t num_rows, Rng& rng) {
  // Age, Education, #MinorFamilyMembers, #WeeksWorked, #Employees — each
  // concentrated like census data: truncated normals with attribute-specific
  // spread (wide for Age/WeeksWorked, narrow for small domains).
  const std::vector<size_t> cards = CensusIncomeCardinalities();
  const std::vector<double> relative_spread = {0.25, 0.3, 0.35, 0.35, 0.3};
  Dataset data(Schema::Categorical(cards));
  data.Reserve(num_rows);
  std::vector<ValueId> row(cards.size());
  for (uint64_t r = 0; r < num_rows; ++r) {
    for (size_t a = 0; a < cards.size(); ++a) {
      const double mean = static_cast<double>(cards[a] - 1) / 2.0;
      const double sigma =
          std::max(0.7, relative_spread[a] * static_cast<double>(cards[a]));
      row[a] = RejectionSampleNormal(cards[a], mean, sigma * sigma, rng);
    }
    data.AppendCategoricalRow(row);
  }
  return data;
}

std::vector<size_t> ForestCoverCardinalities() {
  return {67, 551, 2, 700, 2, 7, 2};
}

Dataset GenerateForestCoverLike(uint64_t num_rows, Rng& rng) {
  const std::vector<size_t> cards = ForestCoverCardinalities();
  Dataset data(Schema::Categorical(cards));
  data.Reserve(num_rows);
  std::vector<ValueId> row(cards.size());
  for (uint64_t r = 0; r < num_rows; ++r) {
    for (size_t a = 0; a < cards.size(); ++a) {
      if (cards[a] == 2) {
        // Binary indicator attributes: heavily skewed, like the
        // one-hot soil/wilderness columns of ForestCover.
        row[a] = rng.Bernoulli(0.1) ? 1 : 0;
      } else if (cards[a] <= 7) {
        // Cover type: skewed categorical.
        row[a] = static_cast<ValueId>(
            std::min<uint64_t>(rng.Uniform(cards[a]) * rng.Uniform(2) +
                                   rng.Uniform(2),
                               cards[a] - 1));
      } else {
        const double mean = static_cast<double>(cards[a] - 1) / 2.0;
        const double sigma = 0.2 * static_cast<double>(cards[a]);
        row[a] =
            RejectionSampleNormal(cards[a], mean, sigma * sigma, rng);
      }
    }
    data.AppendCategoricalRow(row);
  }
  return data;
}

Dataset GenerateMixed(uint64_t num_rows,
                      const std::vector<size_t>& cat_cardinalities,
                      size_t num_numeric, size_t buckets_per_numeric,
                      Rng& rng) {
  Schema schema;
  for (size_t i = 0; i < cat_cardinalities.size(); ++i) {
    AttributeInfo info;
    info.name = "cat" + std::to_string(i);
    info.cardinality = cat_cardinalities[i];
    schema.AddAttribute(std::move(info));
  }
  for (size_t i = 0; i < num_numeric; ++i) {
    AttributeInfo info;
    info.name = "num" + std::to_string(i);
    info.is_numeric = true;
    info.cardinality = buckets_per_numeric;
    info.range = Interval{0.0, 100.0};
    schema.AddAttribute(std::move(info));
  }
  Dataset data(std::move(schema));
  data.Reserve(num_rows);
  const size_t m = data.num_attributes();
  std::vector<ValueId> values(m, 0);
  std::vector<double> numerics(m, 0.0);
  for (uint64_t r = 0; r < num_rows; ++r) {
    for (size_t a = 0; a < cat_cardinalities.size(); ++a) {
      values[a] = static_cast<ValueId>(rng.Uniform(cat_cardinalities[a]));
    }
    for (size_t a = cat_cardinalities.size(); a < m; ++a) {
      numerics[a] = rng.UniformDouble(0.0, 100.0);
    }
    data.AppendRow(values, numerics);
  }
  return data;
}

Object SampleUniformQuery(const Dataset& data, Rng& rng) {
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  std::vector<ValueId> values(m, 0);
  std::vector<double> numerics(m, 0.0);
  for (AttrId a = 0; a < m; ++a) {
    const auto& info = schema.attribute(a);
    if (info.is_numeric) {
      numerics[a] = rng.UniformDouble(info.range.lo, info.range.hi);
    } else {
      values[a] = static_cast<ValueId>(rng.Uniform(info.cardinality));
    }
  }
  return data.MakeObject(values, numerics);
}

Object SampleRowQuery(const Dataset& data, Rng& rng) {
  NMRS_CHECK_GT(data.num_rows(), 0u);
  return data.GetObject(rng.Uniform(data.num_rows()));
}

}  // namespace nmrs
