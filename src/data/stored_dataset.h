#ifndef NMRS_DATA_STORED_DATASET_H_
#define NMRS_DATA_STORED_DATASET_H_

#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "data/dataset.h"
#include "data/object.h"
#include "data/schema.h"
#include "storage/disk.h"
#include "storage/paged_reader.h"

namespace nmrs {

/// Fixed-width row codec for one page.
///
/// Page layout:   [uint32 row_count][row]*[crc32c]?
/// Row layout:    [uint64 row_id][uint32 value_id × m][double × m]?
/// The trailing doubles are present only when the schema has numeric
/// attributes (exact values needed by the phase-2 refinement of §6).
///
/// With `checksum` set, the last Page::kChecksumFooterBytes of the page are
/// reserved for the CRC-32C footer stamped by Page::Seal — rows_per_page()
/// shrinks accordingly, which is why checksumming is opt-in: it changes the
/// page layout and therefore the IO counts of every algorithm.
class RowCodec {
 public:
  RowCodec(const Schema& schema, size_t page_size, bool checksum = false);

  size_t row_bytes() const { return row_bytes_; }
  size_t rows_per_page() const { return rows_per_page_; }
  size_t num_attrs() const { return num_attrs_; }
  bool has_numerics() const { return has_numerics_; }
  bool checksum() const { return checksum_; }

  /// Pages needed to hold `rows` rows.
  uint64_t PagesFor(uint64_t rows) const {
    return (rows + rows_per_page_ - 1) / rows_per_page_;
  }

  /// Encodes one row at `offset` slots into the page.
  void EncodeRow(Page* page, size_t slot, RowId id, const ValueId* values,
                 const double* numerics) const;
  void SetRowCount(Page* page, uint32_t count) const;
  uint32_t GetRowCount(const Page& page) const;

  /// Appends all rows of `page` to `out`.
  void DecodePage(const Page& page, RowBatch* out) const;

 private:
  size_t num_attrs_;
  bool has_numerics_;
  bool checksum_;
  size_t page_size_;
  size_t row_bytes_;
  size_t rows_per_page_;
};

class StoredDataset;

/// Streams rows onto a disk file page by page; used both to materialize a
/// Dataset and to spill phase-1 survivors / sort runs.
class RowWriter {
 public:
  /// Writing starts at the current end of `file`. With `checksum` set,
  /// every page written (full, partial, or final) is sealed with a CRC-32C
  /// footer so readers with verify_checksums on can check integrity.
  RowWriter(SimulatedDisk* disk, FileId file, const Schema& schema,
            bool checksum = false);

  Status Add(RowId id, const ValueId* values, const double* numerics);
  Status AddObject(RowId id, const Object& obj);

  /// Writes the in-progress partial page to disk without sealing it:
  /// subsequent Adds keep filling the same page and re-write it when full.
  /// Two-phase algorithms call this at the end of every phase-1 batch so
  /// the disk arm really travels to the scratch area per batch ("random
  /// accesses to go and write out the results at the end of processing
  /// each batch", paper §4.1) — a buffered writer would hide that cost.
  Status FlushPartial();

  /// Flushes the partial page (if any). Must be called before reading.
  Status Finish();

  uint64_t rows_written() const { return rows_written_; }

 private:
  SimulatedDisk* disk_;
  FileId file_;
  RowCodec codec_;
  Page current_;
  size_t slot_ = 0;
  PageId next_page_ = 0;        // where `current_` will land
  bool partial_on_disk_ = false;  // current_ already written (partially)
  uint64_t rows_written_ = 0;
  bool finished_ = false;
};

/// A dataset materialized on a SimulatedDisk, readable page by page with IO
/// accounting. Does not own the disk.
class StoredDataset {
 public:
  /// Serializes `data` into a newly created file named `name`. With
  /// `checksum_pages` set, every page carries a CRC-32C footer.
  static StatusOr<StoredDataset> Create(SimulatedDisk* disk,
                                        const Dataset& data, std::string name,
                                        bool checksum_pages = false);

  /// Wraps an existing file previously produced through a RowWriter with the
  /// same schema. `checksum_pages` must match what the writer used (it
  /// changes rows_per_page and therefore page addressing).
  StoredDataset(SimulatedDisk* disk, FileId file, Schema schema,
                uint64_t num_rows, bool checksum_pages = false);

  SimulatedDisk* disk() const { return disk_; }
  FileId file() const { return file_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  uint64_t num_pages() const { return disk_->NumPages(file_); }
  const RowCodec& codec() const { return codec_; }
  bool checksum_pages() const { return codec_.checksum(); }

  /// Reads and decodes page `page`, appending its rows to `out`.
  Status ReadPage(PageId page, RowBatch* out) const;

  /// Like ReadPage but routed through `reader`, so a buffer pool (when the
  /// reader carries one) can serve the page from memory. `reader` must wrap
  /// this dataset's disk or a DiskView over it. With a pool-less reader
  /// this is exactly ReadPage.
  Status ReadPageVia(PagedReader* reader, PageId page, RowBatch* out) const;

  /// Reads the entire file into one batch (testing / tiny datasets).
  Status ReadAll(RowBatch* out) const;

 private:
  SimulatedDisk* disk_;
  FileId file_;
  Schema schema_;
  uint64_t num_rows_;
  RowCodec codec_;
};

}  // namespace nmrs

#endif  // NMRS_DATA_STORED_DATASET_H_
