#ifndef NMRS_DATA_DELTA_SEGMENT_H_
#define NMRS_DATA_DELTA_SEGMENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "data/schema.h"

namespace nmrs {

/// Version of a DeltaSegment: how many inserts and deletes have been
/// published. A (inserts, deletes) pair fully identifies a logical state
/// of the delta because both logs are append-only — entry i never changes
/// once published — so pinning a version pins an immutable prefix of each
/// log. This is what Snapshot isolation hangs off.
struct DeltaVersion {
  uint64_t inserts = 0;
  uint64_t deletes = 0;

  bool operator==(const DeltaVersion& o) const = default;
  uint64_t total() const { return inserts + deletes; }
};

namespace delta_internal {

/// Append-only log of fixed-stride records in the SharedTTree idiom
/// (SNIPPETS.md snippet 3): packed chunks addressed through a fixed-size
/// chunk directory, so published bytes are never moved or reallocated and
/// any number of readers may address entries `< size()` while one writer
/// appends. Publication is a release store of the size; readers
/// acquire-load it, which makes the chunk pointer and the record bytes
/// written before the store visible.
///
/// The writer side requires external serialization (Database's mutation
/// mutex); the reader side is lock-free and wait-free.
class PackedLog {
 public:
  static constexpr size_t kChunkRecords = 1024;
  /// 16 Ki chunks * 1 Ki records = 16 Mi records before the log is full —
  /// far past the point where compaction should have folded the delta
  /// back into the base.
  static constexpr size_t kMaxChunks = 16 * 1024;

  /// `stride` = uint64 words per record.
  explicit PackedLog(size_t stride)
      : stride_(stride == 0 ? 1 : stride), chunks_(kMaxChunks) {}

  size_t stride() const { return stride_; }

  /// Published record count. Entries below this index are immutable and
  /// safe to read from any thread.
  uint64_t size() const { return size_.load(std::memory_order_acquire); }

  /// Appends one record of `stride` words and publishes it. Returns its
  /// index. Single writer only. Crashes (NMRS_CHECK) when the log is full
  /// — Database bounds the delta and forces compaction long before.
  uint64_t Append(const uint64_t* words);

  /// Word pointer of record i (i < size()).
  const uint64_t* At(uint64_t i) const {
    const Chunk* c = chunks_[i / kChunkRecords].load(std::memory_order_acquire);
    NMRS_DCHECK(c != nullptr);
    return c->words.data() + (i % kChunkRecords) * stride_;
  }

  uint64_t ApproxBytes() const {
    return num_chunks_.load(std::memory_order_relaxed) * kChunkRecords *
           stride_ * sizeof(uint64_t);
  }

 private:
  struct Chunk {
    explicit Chunk(size_t words) : words(words) {}
    std::vector<uint64_t> words;
  };

  size_t stride_;
  std::vector<std::atomic<Chunk*>> chunks_;
  std::vector<std::unique_ptr<Chunk>> owned_;  // writer-side ownership
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> num_chunks_{0};
};

}  // namespace delta_internal

/// In-memory mutable layer over a frozen base generation: an append-only
/// insert log (full rows keyed by stable user keys) plus an append-only
/// delete log (keys). Both are packed, offset-addressed and concurrently
/// readable while the single writer appends (see PackedLog); a
/// DeltaVersion pins an immutable prefix of each, which is how Snapshot
/// sees base+delta as one frozen logical dataset while mutations keep
/// landing.
///
/// The segment is schema-bound but key-agnostic: it does not know which
/// keys exist in the base, or whether a delete targets a base row or an
/// earlier delta insert — Database owns the key book-keeping and
/// validation; the segment is pure storage.
///
/// Writer calls (AppendInsert / AppendDelete) require external
/// serialization; all read accessors are safe concurrently with the
/// writer for indices below a captured version.
class DeltaSegment {
 public:
  explicit DeltaSegment(const Schema& schema);

  size_t num_attributes() const { return num_attrs_; }
  bool has_numerics() const { return has_numerics_; }

  /// Current published version (acquire loads). Capturing it and then
  /// reading only entries below it yields a consistent, immutable view.
  DeltaVersion version() const {
    // Deletes first: if the writer publishes between the two loads we see
    // <= the true delete count for our insert count, i.e. still a state
    // that actually existed (both logs only grow).
    DeltaVersion v;
    v.deletes = deletes_.size();
    v.inserts = inserts_.size();
    return v;
  }

  /// Appends one insert row; `values` has num_attributes() bucketed value
  /// ids, `numerics` has num_attributes() doubles (ignored / may be null
  /// when the schema has no numerics). Returns the insert's rank in the
  /// log. Single writer.
  uint64_t AppendInsert(uint64_t key, const uint32_t* values,
                        const double* numerics);

  /// Appends one delete of `key`. Single writer.
  uint64_t AppendDelete(uint64_t key);

  /// Read accessors for insert i (< version().inserts).
  uint64_t InsertKey(uint64_t i) const { return inserts_.At(i)[0]; }
  /// num_attributes() contiguous value ids (uint32, packed two per word).
  const uint32_t* InsertValues(uint64_t i) const {
    return reinterpret_cast<const uint32_t*>(inserts_.At(i) + 1);
  }
  /// num_attributes() contiguous doubles, or null when !has_numerics().
  const double* InsertNumerics(uint64_t i) const {
    return has_numerics_ ? reinterpret_cast<const double*>(
                               inserts_.At(i) + 1 + value_words_)
                         : nullptr;
  }

  /// Read accessor for delete i (< version().deletes): the deleted key.
  uint64_t DeleteKey(uint64_t i) const { return deletes_.At(i)[0]; }

  uint64_t ApproxBytes() const {
    return inserts_.ApproxBytes() + deletes_.ApproxBytes();
  }

 private:
  size_t num_attrs_;
  bool has_numerics_;
  size_t value_words_;  // ceil(num_attrs / 2): u32 ids packed into u64s
  // Insert record: [key][values: value_words_][numerics: num_attrs_?]
  delta_internal::PackedLog inserts_;
  // Delete record: [key]
  delta_internal::PackedLog deletes_;
  std::vector<uint64_t> scratch_;  // writer-side encode buffer
};

}  // namespace nmrs

#endif  // NMRS_DATA_DELTA_SEGMENT_H_
