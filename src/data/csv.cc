#include "data/csv.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/string_util.h"

namespace nmrs {

namespace {

StatusOr<double> ParseDouble(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad numeric cell '" + token + "'");
  }
  return v;
}

StatusOr<uint64_t> ParseUint(const std::string& token) {
  char* end = nullptr;
  const uint64_t v = std::strtoull(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer cell '" + token + "'");
  }
  return v;
}

}  // namespace

Status WriteDatasetCsv(const Dataset& data, std::ostream& out) {
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  out << std::setprecision(17);  // lossless double round-trip
  for (AttrId a = 0; a < m; ++a) {
    if (a > 0) out << ",";
    const auto& info = schema.attribute(a);
    out << info.name << ":" << (info.is_numeric ? "num" : "cat") << ":"
        << info.cardinality;
    if (info.is_numeric) {
      out << ":" << info.range.lo << ":" << info.range.hi;
    }
  }
  out << "\n";
  for (RowId r = 0; r < data.num_rows(); ++r) {
    for (AttrId a = 0; a < m; ++a) {
      if (a > 0) out << ",";
      if (schema.attribute(a).is_numeric) {
        out << data.Numeric(r, a);
      } else {
        out << data.Value(r, a);
      }
    }
    out << "\n";
  }
  if (!out) return Status::Internal("stream write failed");
  return Status::OK();
}

StatusOr<Dataset> ReadDatasetCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV: missing header");
  }
  Schema schema;
  for (const std::string& column : StrSplit(line, ',')) {
    const auto parts = StrSplit(column, ':');
    if (parts.size() < 3) {
      return Status::InvalidArgument("bad header column '" + column +
                                     "': want name:kind:cardinality");
    }
    AttributeInfo info;
    info.name = parts[0];
    NMRS_ASSIGN_OR_RETURN(uint64_t card, ParseUint(parts[2]));
    info.cardinality = card;
    if (parts[1] == "num") {
      if (parts.size() != 5) {
        return Status::InvalidArgument(
            "numeric header column '" + column +
            "' must be name:num:buckets:lo:hi");
      }
      info.is_numeric = true;
      NMRS_ASSIGN_OR_RETURN(info.range.lo, ParseDouble(parts[3]));
      NMRS_ASSIGN_OR_RETURN(info.range.hi, ParseDouble(parts[4]));
    } else if (parts[1] != "cat") {
      return Status::InvalidArgument("unknown column kind '" + parts[1] +
                                     "'");
    }
    schema.AddAttribute(std::move(info));
  }
  NMRS_RETURN_IF_ERROR(schema.Validate());

  Dataset data(schema);
  const size_t m = schema.num_attributes();
  std::vector<ValueId> values(m, 0);
  std::vector<double> numerics(m, 0.0);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = StrSplit(line, ',');
    if (cells.size() != m) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(m) + " cells, got " + std::to_string(cells.size()));
    }
    for (AttrId a = 0; a < m; ++a) {
      if (schema.attribute(a).is_numeric) {
        NMRS_ASSIGN_OR_RETURN(numerics[a], ParseDouble(cells[a]));
      } else {
        NMRS_ASSIGN_OR_RETURN(uint64_t v, ParseUint(cells[a]));
        if (v >= schema.attribute(a).cardinality) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) + ": value id " +
              std::to_string(v) + " out of domain for attribute " +
              schema.attribute(a).name);
        }
        values[a] = static_cast<ValueId>(v);
      }
    }
    data.AppendRow(values, numerics);
  }
  return data;
}

Status WriteMatrixCsv(const DissimilarityMatrix& m, std::ostream& out) {
  out << std::setprecision(17);
  out << m.cardinality() << "\n";
  for (ValueId a = 0; a < m.cardinality(); ++a) {
    for (ValueId b = 0; b < m.cardinality(); ++b) {
      if (b > 0) out << ",";
      out << m.Dist(a, b);
    }
    out << "\n";
  }
  if (!out) return Status::Internal("stream write failed");
  return Status::OK();
}

StatusOr<DissimilarityMatrix> ReadMatrixCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty matrix CSV");
  }
  NMRS_ASSIGN_OR_RETURN(uint64_t k, ParseUint(line));
  if (k == 0) return Status::InvalidArgument("matrix cardinality 0");
  DissimilarityMatrix m(k);
  for (ValueId a = 0; a < k; ++a) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("matrix truncated at row " +
                                     std::to_string(a));
    }
    const auto cells = StrSplit(line, ',');
    if (cells.size() != k) {
      return Status::InvalidArgument("matrix row " + std::to_string(a) +
                                     " has " + std::to_string(cells.size()) +
                                     " cells, want " + std::to_string(k));
    }
    for (ValueId b = 0; b < k; ++b) {
      NMRS_ASSIGN_OR_RETURN(double d, ParseDouble(cells[b]));
      m.Set(a, b, d);
    }
  }
  return m;
}

Status WriteDatasetCsvFile(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  return WriteDatasetCsv(data, out);
}

StatusOr<Dataset> ReadDatasetCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadDatasetCsv(in);
}

Status WriteMatrixCsvFile(const DissimilarityMatrix& m,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  return WriteMatrixCsv(m, out);
}

StatusOr<DissimilarityMatrix> ReadMatrixCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadMatrixCsv(in);
}

}  // namespace nmrs
