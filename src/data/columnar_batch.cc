#include "data/columnar_batch.h"

namespace nmrs {

void ColumnarBatch::Build(const RowBatch& rows) {
  num_rows_ = rows.size();
  num_attrs_ = rows.num_attrs();
  has_numerics_ = rows.has_numerics();
  ids_.resize(num_rows_);
  values_.resize(num_attrs_ * num_rows_);
  numerics_.resize(has_numerics_ ? num_attrs_ * num_rows_ : 0);
  for (size_t i = 0; i < num_rows_; ++i) {
    ids_[i] = rows.id(i);
    const ValueId* v = rows.row_values(i);
    for (size_t a = 0; a < num_attrs_; ++a) {
      values_[a * num_rows_ + i] = v[a];
    }
    if (has_numerics_) {
      const double* nv = rows.row_numerics(i);
      for (size_t a = 0; a < num_attrs_; ++a) {
        numerics_[a * num_rows_ + i] = nv[a];
      }
    }
  }
}

void ColumnarBatch::BuildFromColumns(
    size_t num_rows, const std::vector<std::vector<ValueId>>& columns,
    const std::vector<RowId>& ids) {
  NMRS_CHECK_EQ(ids.size(), num_rows);
  num_rows_ = num_rows;
  num_attrs_ = columns.size();
  has_numerics_ = false;
  numerics_.clear();
  ids_ = ids;
  values_.resize(num_attrs_ * num_rows_);
  for (size_t a = 0; a < num_attrs_; ++a) {
    NMRS_CHECK_EQ(columns[a].size(), num_rows);
    std::copy(columns[a].begin(), columns[a].end(),
              values_.begin() + a * num_rows_);
  }
}

}  // namespace nmrs
