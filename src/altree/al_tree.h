#ifndef NMRS_ALTREE_AL_TREE_H_
#define NMRS_ALTREE_AL_TREE_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "data/object.h"
#include "data/schema.h"

namespace nmrs {

/// In-memory variant of the AL-Tree (Attribute-Level tree, Deshpande et al.,
/// EDBT 2008) used by the TRS algorithm: the prefix tree of a batch of
/// objects ordered by a fixed attribute ordering. Level k of the tree fixes
/// the value of attribute `attr_order[k]`; a leaf therefore pins every
/// attribute and stores the ids (and exact numeric values, §6) of all
/// duplicate objects that take that combination.
///
/// The tree supports the operations TRS needs:
///  * batch build (Insert), with per-node descendant counts,
///  * temporary removal of one object so it cannot prune itself
///    (TempRemove / TempRestore),
///  * destructive removal of a whole leaf or single leaf entry (Prune),
///  * child ordering by ascending descendant count (PrepareForSearch), so a
///    DFS that pushes children in list order onto a stack pops the most
///    populous — most promising — subtree first,
///  * memory footprint estimation, used for batch sizing: the tree packs
///    more objects into the same memory budget than a flat page image,
///    which is one source of TRS's IO advantage (paper §5.3).
///
/// Node fields are stored as parallel arrays (struct-of-arrays) because the
/// IsPrunable / Prune traversals are the hottest loops of TRS: they touch
/// value/level/descendants of many nodes but the row payload of few.
///
/// Node 0 is the root (Level() == kRootLevel, no value).
class ALTree {
 public:
  using NodeId = uint32_t;
  static constexpr NodeId kRootId = 0;
  static constexpr uint32_t kRootLevel = ~uint32_t{0};
  static constexpr NodeId kInvalidNode = ~NodeId{0};

  /// `attr_order[k]` is the physical attribute fixed at tree level k.
  ALTree(const Schema& schema, std::vector<AttrId> attr_order);

  const std::vector<AttrId>& attr_order() const { return attr_order_; }
  size_t num_levels() const { return attr_order_.size(); }

  /// Removes all objects and nodes (except the root).
  void Clear();

  /// Inserts one object. `values` indexed by physical AttrId; `numerics`
  /// may be null when the schema has no numeric attributes.
  void Insert(RowId id, const ValueId* values, const double* numerics);

  /// Number of active objects (counting duplicates).
  uint64_t num_objects() const { return descendants_[kRootId]; }
  size_t num_nodes() const { return value_.size(); }
  bool empty() const { return num_objects() == 0; }

  /// Estimated heap footprint in bytes of this C++ implementation.
  size_t MemoryBytes() const;

  /// Logical footprint used for TRS batch sizing, modeling the paper's
  /// compact AL-Tree encoding: 8 bytes per node (packed value + count /
  /// child offset) plus the exact numeric payload at leaves. The paper's
  /// tree stores objects as shared-prefix paths with duplicate counts — not
  /// row ids — so prefix sharing lets a batch hold more objects than a flat
  /// page image of the same memory (§5.3, IO costs discussion).
  size_t LogicalMemoryBytes() const {
    return num_nodes() * 8 +
           (numeric_stride_ > 0
                ? static_cast<size_t>(descendants_[kRootId]) *
                      numeric_stride_ * sizeof(double)
                : 0);
  }

  /// Sorts every child list by ascending descendant count (paper Alg. 4
  /// line 8). Call once after the batch is loaded, before IsPrunable scans.
  void PrepareForSearch();

  // --- Structure accessors (for the traversals in core/) ---

  /// A child edge: the child's node id together with its value, co-located
  /// so traversals scanning a child list touch one contiguous array.
  struct ChildRef {
    NodeId id;
    ValueId value;
  };

  bool IsLeaf(NodeId n) const { return level_[n] + 1 == num_levels(); }
  ValueId Value(NodeId n) const { return value_[n]; }
  /// Level of the node = index into attr_order() of the attribute its value
  /// belongs to; kRootLevel for the root.
  uint32_t Level(NodeId n) const { return level_[n]; }
  uint64_t Descendants(NodeId n) const { return descendants_[n]; }
  const std::vector<ChildRef>& Children(NodeId n) const {
    return children_[n];
  }
  NodeId Parent(NodeId n) const { return parent_[n]; }

  /// Active duplicate count at a leaf (excludes temporarily removed
  /// instances); equal to Descendants(leaf).
  uint32_t LeafCount(NodeId leaf) const {
    NMRS_DCHECK(IsLeaf(leaf));
    return static_cast<uint32_t>(descendants_[leaf]);
  }

  /// Row ids stored at a leaf (temporarily removed instances included —
  /// TempRemove hides an instance from counts, not from the id list).
  const std::vector<RowId>& LeafRows(NodeId leaf) const {
    NMRS_DCHECK(IsLeaf(leaf));
    return row_ids_[leaf];
  }

  /// Exact numeric values of leaf entry `entry` (stride = num attributes);
  /// only valid when the schema has numeric attributes.
  const double* LeafNumerics(NodeId leaf, size_t entry) const {
    NMRS_DCHECK(IsLeaf(leaf) && numeric_stride_ > 0);
    return numerics_[leaf].data() + entry * numeric_stride_;
  }

  bool has_numerics() const { return numeric_stride_ > 0; }

  // --- Mutations ---

  /// Temporarily removes one instance of the object with the given values
  /// (decrements descendant counts along its path) so that IsPrunable(c)
  /// does not let c prune itself. Returns the leaf. The object's identity
  /// does not matter — any one duplicate instance is hidden.
  NodeId TempRemove(const ValueId* values);

  /// TempRemove for a leaf already at hand (skips the root-to-leaf walk).
  void TempRemoveLeaf(NodeId leaf);

  /// Undoes a TempRemove on `leaf`.
  void TempRestore(NodeId leaf);

  /// Destructively removes the whole leaf (all duplicates); descendant
  /// counts along the path are updated. The node itself stays allocated
  /// with zero descendants and is skipped by traversals.
  void RemoveLeaf(NodeId leaf);

  /// Destructively removes a single entry of a leaf (numeric refinement).
  void RemoveLeafEntry(NodeId leaf, size_t entry);

  /// Invokes fn(leaf NodeId) for every leaf with at least one active object.
  template <typename Fn>
  void ForEachActiveLeaf(Fn&& fn) const {
    std::vector<NodeId> stack = {kRootId};
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      if (descendants_[n] == 0) continue;
      if (n != kRootId && IsLeaf(n)) {
        fn(n);
        continue;
      }
      for (const ChildRef& c : children_[n]) stack.push_back(c.id);
    }
  }

  /// Leaf whose path matches `values` (or kInvalidNode).
  NodeId FindLeaf(const ValueId* values) const;

 private:
  NodeId FindOrAddChild(NodeId parent, ValueId value, uint32_t level);
  NodeId FindChild(NodeId parent, ValueId value) const;
  void AddToPathCounts(NodeId leaf, int64_t delta);

  Schema schema_;
  std::vector<AttrId> attr_order_;
  size_t numeric_stride_;  // num attributes if schema has numerics, else 0

  // Parallel per-node arrays (hot first).
  std::vector<ValueId> value_;
  std::vector<uint32_t> level_;
  std::vector<uint64_t> descendants_;
  std::vector<NodeId> parent_;
  std::vector<uint32_t> temp_removed_;  // leaf only
  std::vector<std::vector<ChildRef>> children_;
  std::vector<std::vector<RowId>> row_ids_;      // leaf only
  std::vector<std::vector<double>> numerics_;    // leaf only
};

}  // namespace nmrs

#endif  // NMRS_ALTREE_AL_TREE_H_
