#include "altree/packed_al_tree.h"

#include <cstring>
#include <deque>

namespace nmrs {

namespace {

constexpr size_t kPageHeaderBytes = sizeof(uint16_t);

template <typename T>
void StoreRaw(uint8_t* dst, T v) {
  std::memcpy(dst, &v, sizeof(T));
}

template <typename T>
T LoadRaw(const uint8_t* src) {
  T v;
  std::memcpy(&v, src, sizeof(T));
  return v;
}

// Streams records into pages (records never span pages) and appends full
// pages to the file.
class PageWriter {
 public:
  PageWriter(SimulatedDisk* disk, FileId file)
      : disk_(disk), file_(file), page_(disk->page_size()) {}

  // Reserves `bytes` in the current page (flushing first if needed) and
  // returns the locator value for the record about to be written, plus the
  // write pointer.
  StatusOr<uint8_t*> Reserve(size_t bytes, uint64_t* locator) {
    if (bytes + kPageHeaderBytes > page_.size()) {
      return Status::InvalidArgument(
          "record of " + std::to_string(bytes) +
          " bytes does not fit a page of " + std::to_string(page_.size()));
    }
    if (offset_ + bytes > page_.size()) {
      NMRS_RETURN_IF_ERROR(Flush());
    }
    *locator = (static_cast<uint64_t>(next_page_) << 32) |
               static_cast<uint64_t>(offset_);
    uint8_t* at = page_.data() + offset_;
    offset_ += bytes;
    ++records_;
    return at;
  }

  Status Finish() {
    if (records_ > 0) return Flush();
    return Status::OK();
  }

 private:
  Status Flush() {
    StoreRaw<uint16_t>(page_.data(), static_cast<uint16_t>(records_));
    NMRS_RETURN_IF_ERROR(disk_->AppendPage(file_, page_).status());
    page_ = Page(disk_->page_size());
    offset_ = kPageHeaderBytes;
    records_ = 0;
    ++next_page_;
    return Status::OK();
  }

  SimulatedDisk* disk_;
  FileId file_;
  Page page_;
  size_t offset_ = kPageHeaderBytes;
  size_t records_ = 0;
  PageId next_page_ = 0;
};

}  // namespace

StatusOr<PackedALTree> PackedALTree::Write(const ALTree& tree,
                                           SimulatedDisk* disk,
                                           const std::string& name) {
  // Pass 1: BFS over live nodes to assign contiguous indices level by
  // level (children of a node form a contiguous index range).
  const uint32_t m = static_cast<uint32_t>(tree.num_levels());
  std::vector<ALTree::NodeId> bfs;            // new index -> old node id
  std::vector<uint32_t> first_child;          // per new index
  std::vector<uint32_t> level_start = {0, 1};  // root occupies level "-1"
  bfs.push_back(ALTree::kRootId);
  {
    size_t level_begin = 0;
    for (uint32_t level = 0; level < m; ++level) {
      const size_t level_end = bfs.size();
      for (size_t i = level_begin; i < level_end; ++i) {
        for (const ALTree::ChildRef& c : tree.Children(bfs[i])) {
          if (tree.Descendants(c.id) == 0) continue;
          bfs.push_back(c.id);
        }
      }
      level_begin = level_end;
      level_start.push_back(static_cast<uint32_t>(bfs.size()));
    }
  }
  // first_child per node: recompute by a second sweep.
  first_child.assign(bfs.size(), 0);
  {
    uint32_t next = 1;
    for (uint32_t i = 0; i < bfs.size(); ++i) {
      if (i >= level_start[m]) break;  // leaves have no children
      first_child[i] = next;
      for (const ALTree::ChildRef& c : tree.Children(bfs[i])) {
        if (tree.Descendants(c.id) == 0) continue;
        ++next;
      }
    }
  }

  // Pass 2: write records in BFS order.
  FileId file = disk->CreateFile(name);
  PageWriter writer(disk, file);
  std::vector<uint64_t> locator(bfs.size());
  const size_t stride =
      tree.has_numerics() ? tree.attr_order().size() : 0;
  for (uint32_t i = 0; i < bfs.size(); ++i) {
    const ALTree::NodeId old_id = bfs[i];
    const bool leaf = i >= level_start[m];
    if (!leaf) {
      uint32_t live_children = 0;
      for (const ALTree::ChildRef& c : tree.Children(old_id)) {
        if (tree.Descendants(c.id) > 0) ++live_children;
      }
      NMRS_ASSIGN_OR_RETURN(uint8_t * at,
                            writer.Reserve(12, &locator[i]));
      StoreRaw<uint32_t>(at, tree.Value(old_id));
      StoreRaw<uint32_t>(at + 4, first_child[i]);
      StoreRaw<uint32_t>(at + 8, live_children);
    } else {
      const auto& rows = tree.LeafRows(old_id);
      const size_t bytes =
          8 + rows.size() * 8 + rows.size() * stride * sizeof(double);
      NMRS_ASSIGN_OR_RETURN(uint8_t * at,
                            writer.Reserve(bytes, &locator[i]));
      StoreRaw<uint32_t>(at, tree.Value(old_id));
      StoreRaw<uint32_t>(at + 4, static_cast<uint32_t>(rows.size()));
      uint8_t* p = at + 8;
      for (RowId r : rows) {
        StoreRaw<uint64_t>(p, r);
        p += 8;
      }
      for (size_t e = 0; e < rows.size(); ++e) {
        const double* nums = stride > 0 ? tree.LeafNumerics(old_id, e)
                                        : nullptr;
        for (size_t d = 0; d < stride; ++d) {
          StoreRaw<double>(p, nums[d]);
          p += sizeof(double);
        }
      }
    }
  }
  NMRS_RETURN_IF_ERROR(writer.Finish());

  // Schema reconstruction: PackedALTree needs m + numeric flag; rebuild a
  // minimal schema from the source tree's public surface. The caller's
  // schema is what matters for distances; we only need attribute count and
  // numeric stride here, so keep a categorical skeleton plus the stride.
  Schema skeleton;
  for (size_t a = 0; a < tree.attr_order().size(); ++a) {
    AttributeInfo info;
    info.name = "attr" + std::to_string(a);
    info.cardinality = 1;
    info.is_numeric = tree.has_numerics();
    info.range = Interval{0.0, 1.0};
    skeleton.AddAttribute(std::move(info));
  }

  return PackedALTree(disk, file, std::move(skeleton), tree.attr_order(),
                      std::move(locator), std::move(level_start),
                      tree.num_objects());
}

Status PackedALTree::ReadNode(uint32_t index, NodeView* out) const {
  if (index >= locator_.size()) {
    return Status::OutOfRange("node index " + std::to_string(index) +
                              " out of range");
  }
  const uint64_t loc = locator_[index];
  const PageId page = loc >> 32;
  const size_t offset = loc & 0xffffffffu;
  if (page != cached_page_) {
    if (pool_ != nullptr && pool_->Caches(file_)) {
      BufferPool::ReadEvent ev;
      NMRS_RETURN_IF_ERROR(
          pool_->ReadThrough(disk_, file_, page, &cache_, &ev));
      cache_stats_.hits += ev.hit ? 1 : 0;
      cache_stats_.misses += ev.hit ? 0 : 1;
      cache_stats_.evictions += ev.evicted ? 1 : 0;
    } else {
      NMRS_RETURN_IF_ERROR(disk_->ReadPage(file_, page, &cache_));
    }
    cached_page_ = page;
  }
  const uint8_t* at = cache_.data() + offset;
  out->value = LoadRaw<uint32_t>(at);
  out->leaf = IsLeafIndex(index);
  out->row_ids.clear();
  out->numerics.clear();
  if (!out->leaf) {
    out->first_child = LoadRaw<uint32_t>(at + 4);
    out->num_children = LoadRaw<uint32_t>(at + 8);
  } else {
    const uint32_t count = LoadRaw<uint32_t>(at + 4);
    const uint8_t* p = at + 8;
    out->row_ids.reserve(count);
    for (uint32_t e = 0; e < count; ++e) {
      out->row_ids.push_back(LoadRaw<uint64_t>(p));
      p += 8;
    }
    const size_t stride =
        schema_.NumNumeric() > 0 ? attr_order_.size() : 0;
    if (stride > 0) {
      out->numerics.reserve(count * stride);
      for (size_t d = 0; d < count * stride; ++d) {
        out->numerics.push_back(LoadRaw<double>(p));
        p += sizeof(double);
      }
    }
    out->first_child = 0;
    out->num_children = 0;
  }
  return Status::OK();
}

StatusOr<std::vector<RowId>> PackedALTree::FindLeaf(
    const ValueId* values) const {
  NodeView node;
  NMRS_RETURN_IF_ERROR(ReadNode(0, &node));
  for (size_t level = 0; level < attr_order_.size(); ++level) {
    const ValueId want = values[attr_order_[level]];
    bool found = false;
    const uint32_t first = node.first_child;
    const uint32_t count = node.num_children;
    for (uint32_t i = 0; i < count && !found; ++i) {
      NodeView child;
      NMRS_RETURN_IF_ERROR(ReadNode(first + i, &child));
      if (child.value == want) {
        node = std::move(child);
        found = true;
      }
    }
    if (!found) return std::vector<RowId>{};
  }
  return node.row_ids;
}

StatusOr<bool> PackedALTree::IsPrunable(const SimilaritySpace& space,
                                        const Object& query,
                                        const ValueId* c_values,
                                        RowId self_id,
                                        uint64_t* checks_out) const {
  uint64_t checks = 0;
  const size_t m = attr_order_.size();
  // rhs[l] = d_l(q_l, c_l) per tree level.
  std::vector<double> rhs(m);
  for (size_t l = 0; l < m; ++l) {
    const AttrId a = attr_order_[l];
    rhs[l] = space.CatDist(a, query.values[a], c_values[a]);
  }

  struct Entry {
    uint32_t index;
    uint32_t level;  // level of this node's children
    bool found_closer;
  };
  std::vector<Entry> stack = {{0, 0, false}};
  bool prunable = false;
  while (!stack.empty() && !prunable) {
    const Entry s = stack.back();
    stack.pop_back();
    NodeView node;
    NMRS_RETURN_IF_ERROR(ReadNode(s.index, &node));
    for (uint32_t i = 0; i < node.num_children && !prunable; ++i) {
      NodeView child;
      NMRS_RETURN_IF_ERROR(ReadNode(node.first_child + i, &child));
      const AttrId a = attr_order_[s.level];
      const double lhs = space.CatDist(a, child.value, c_values[a]);
      ++checks;
      if (lhs > rhs[s.level]) continue;
      const bool closer = s.found_closer || lhs < rhs[s.level];
      if (child.leaf) {
        if (!closer) continue;
        // The candidate's own instance is not its own pruner; duplicates
        // under other ids are.
        size_t others = child.row_ids.size();
        for (RowId r : child.row_ids) {
          if (r == self_id) --others;
        }
        if (others > 0) prunable = true;
      } else {
        stack.push_back({node.first_child + i, s.level + 1, closer});
      }
    }
  }
  if (checks_out != nullptr) *checks_out = checks;
  return prunable;
}

}  // namespace nmrs
