#ifndef NMRS_ALTREE_PACKED_AL_TREE_H_
#define NMRS_ALTREE_PACKED_AL_TREE_H_

#include <vector>

#include "altree/al_tree.h"
#include "common/statusor.h"
#include "sim/similarity_space.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"

namespace nmrs {

/// Disk-resident AL-Tree. The original AL-Tree (Deshpande et al., EDBT'08)
/// is a packed, page-resident index; the reverse-skyline paper explicitly
/// sets disk-packing aside and uses the in-memory variant (§4.3, "we are
/// not concerned with sibling ordering and disk-packing"). This class
/// implements the disk-packing as an extension: an ALTree is serialized in
/// BFS order (children of a node occupy a contiguous node-index range, so
/// sibling scans touch consecutive records and usually one page) onto a
/// SimulatedDisk file, and traversals read pages through the normal
/// IO-accounting path.
///
/// Record layouts (little-endian, fixed attribute count m known from the
/// schema):
///   internal: value:u32  first_child:u32  num_children:u32
///   leaf:     value:u32  count:u32  (row_id:u64)^count
///             (numerics:f64^m per entry when the schema has numerics)
/// Records never span pages; each page starts with records_in_page:u16.
/// An in-memory locator (one u64 per node) maps node index -> (page, byte
/// offset); its size is reported by LocatorBytes() and would itself be a
/// small directory file in a real system.
class PackedALTree {
 public:
  /// Serializes `tree` into a newly created file named `name`. The tree's
  /// temp-removals must be restored (counts consistent).
  static StatusOr<PackedALTree> Write(const ALTree& tree,
                                      SimulatedDisk* disk,
                                      const std::string& name);

  SimulatedDisk* disk() const { return disk_; }
  FileId file() const { return file_; }
  uint64_t num_nodes() const { return locator_.size(); }
  uint64_t num_pages() const { return disk_->NumPages(file_); }
  size_t LocatorBytes() const { return locator_.size() * sizeof(uint64_t); }

  /// A decoded node.
  struct NodeView {
    ValueId value = kInvalidValueId;
    bool leaf = false;
    uint32_t first_child = 0;   // node index of the first child
    uint32_t num_children = 0;  // internal nodes only
    std::vector<RowId> row_ids;          // leaf only
    std::vector<double> numerics;        // leaf only, stride m
  };

  /// Reads node `index` (0 = root), charging page IO to the disk.
  /// A tiny one-page cache makes sibling scans cost one read.
  Status ReadNode(uint32_t index, NodeView* out) const;

  /// Walks the tree for the leaf matching `values` (attr_order order was
  /// fixed at Write time from the source tree). Returns the row ids at the
  /// leaf, or an empty vector when absent.
  StatusOr<std::vector<RowId>> FindLeaf(const ValueId* values) const;

  /// Disk-resident IsPrunable (paper Alg. 4 over the packed tree):
  /// candidate c (categorical values) with query `query`; true iff some
  /// object in the tree prunes c. `io_pages_out` (optional) receives the
  /// number of page reads the traversal performed. Entries whose row id
  /// equals `self_id` do not count as pruners when they are the only
  /// object at their leaf.
  StatusOr<bool> IsPrunable(const SimilaritySpace& space,
                            const Object& query, const ValueId* c_values,
                            RowId self_id, uint64_t* checks_out = nullptr)
      const;

  /// Total objects (root descendants) recorded at Write time.
  uint64_t num_objects() const { return num_objects_; }
  const std::vector<AttrId>& attr_order() const { return attr_order_; }

  /// Attaches a shared buffer pool: page fills that miss the one-page
  /// sibling cache are then served through `pool` (hits free, misses
  /// charged to the disk as usual). The pool must cache this tree's file —
  /// i.e. it was built over the base disk after Write(). Pass null to
  /// detach. The tree borrows the pool.
  void set_buffer_pool(BufferPool* pool) { pool_ = pool; }

  /// Pool traffic of this tree's traversals since construction (zeros when
  /// no pool attached). The top-down access pattern is root-heavy, so even
  /// a small pool absorbs most upper-level reads.
  const CacheStats& cache_stats() const { return cache_stats_; }

 private:
  PackedALTree(SimulatedDisk* disk, FileId file, Schema schema,
               std::vector<AttrId> attr_order, std::vector<uint64_t> locator,
               std::vector<uint32_t> level_start, uint64_t num_objects)
      : disk_(disk),
        file_(file),
        schema_(std::move(schema)),
        attr_order_(std::move(attr_order)),
        locator_(std::move(locator)),
        level_start_(std::move(level_start)),
        num_objects_(num_objects),
        cache_(disk->page_size()) {}

  // level_start_ holds m+2 entries: [0]=root, [1]=level-0 start, ...,
  // [m]=leaf-level start, [m+1]=end sentinel.
  bool IsLeafIndex(uint32_t index) const {
    return index >= level_start_[level_start_.size() - 2];
  }

  SimulatedDisk* disk_;
  FileId file_;
  Schema schema_;
  std::vector<AttrId> attr_order_;
  std::vector<uint64_t> locator_;    // node index -> page << 32 | offset
  std::vector<uint32_t> level_start_;  // BFS level boundaries; leaf test
  uint64_t num_objects_;

  // Single-page read cache (mutable: caching is not observable behaviour
  // apart from the IO counters, which *should* reflect it).
  mutable Page cache_;
  mutable PageId cached_page_ = ~PageId{0};

  // Optional second-level cache shared with other readers (see
  // set_buffer_pool).
  BufferPool* pool_ = nullptr;
  mutable CacheStats cache_stats_;
};

}  // namespace nmrs

#endif  // NMRS_ALTREE_PACKED_AL_TREE_H_
