#include "altree/al_tree.h"

#include <algorithm>

namespace nmrs {

ALTree::ALTree(const Schema& schema, std::vector<AttrId> attr_order)
    : schema_(schema),
      attr_order_(std::move(attr_order)),
      numeric_stride_(schema.NumNumeric() > 0 ? schema.num_attributes() : 0) {
  NMRS_CHECK_GT(attr_order_.size(), 0u);
  NMRS_CHECK_EQ(attr_order_.size(), schema.num_attributes());
  Clear();
}

void ALTree::Clear() {
  value_.assign(1, kInvalidValueId);
  level_.assign(1, kRootLevel);
  descendants_.assign(1, 0);
  parent_.assign(1, kRootId);
  temp_removed_.assign(1, 0);
  children_.assign(1, {});
  row_ids_.assign(1, {});
  numerics_.assign(1, {});
}

ALTree::NodeId ALTree::FindChild(NodeId parent, ValueId value) const {
  for (const ChildRef& c : children_[parent]) {
    if (c.value == value) return c.id;
  }
  return kInvalidNode;
}

ALTree::NodeId ALTree::FindOrAddChild(NodeId parent, ValueId value,
                                      uint32_t level) {
  NodeId found = FindChild(parent, value);
  if (found != kInvalidNode) return found;
  NodeId id = static_cast<NodeId>(value_.size());
  value_.push_back(value);
  level_.push_back(level);
  descendants_.push_back(0);
  parent_.push_back(parent);
  temp_removed_.push_back(0);
  children_.emplace_back();
  row_ids_.emplace_back();
  numerics_.emplace_back();
  children_[parent].push_back(ChildRef{id, value});
  return id;
}

void ALTree::Insert(RowId id, const ValueId* values, const double* numerics) {
  NodeId cur = kRootId;
  ++descendants_[kRootId];
  for (uint32_t level = 0; level < attr_order_.size(); ++level) {
    cur = FindOrAddChild(cur, values[attr_order_[level]], level);
    ++descendants_[cur];
  }
  row_ids_[cur].push_back(id);
  if (numeric_stride_ > 0) {
    NMRS_DCHECK(numerics != nullptr);
    numerics_[cur].insert(numerics_[cur].end(), numerics,
                          numerics + numeric_stride_);
  }
}

size_t ALTree::MemoryBytes() const {
  size_t bytes =
      num_nodes() * (sizeof(ValueId) + sizeof(uint32_t) + sizeof(uint64_t) +
                     sizeof(NodeId) + sizeof(uint32_t) +
                     sizeof(std::vector<NodeId>) + sizeof(std::vector<RowId>) +
                     sizeof(std::vector<double>));
  for (size_t n = 0; n < num_nodes(); ++n) {
    bytes += children_[n].capacity() * sizeof(ChildRef);
    bytes += row_ids_[n].capacity() * sizeof(RowId);
    bytes += numerics_[n].capacity() * sizeof(double);
  }
  return bytes;
}

void ALTree::PrepareForSearch() {
  for (auto& kids : children_) {
    std::sort(kids.begin(), kids.end(),
              [this](const ChildRef& a, const ChildRef& b) {
                return descendants_[a.id] < descendants_[b.id];
              });
  }
}

void ALTree::AddToPathCounts(NodeId leaf, int64_t delta) {
  NodeId cur = leaf;
  for (;;) {
    const int64_t updated = static_cast<int64_t>(descendants_[cur]) + delta;
    NMRS_DCHECK(updated >= 0);
    descendants_[cur] = static_cast<uint64_t>(updated);
    if (cur == kRootId) break;
    cur = parent_[cur];
  }
}

ALTree::NodeId ALTree::FindLeaf(const ValueId* values) const {
  NodeId cur = kRootId;
  for (uint32_t level = 0; level < attr_order_.size(); ++level) {
    cur = FindChild(cur, values[attr_order_[level]]);
    if (cur == kInvalidNode) return kInvalidNode;
  }
  return cur;
}

ALTree::NodeId ALTree::TempRemove(const ValueId* values) {
  NodeId leaf = FindLeaf(values);
  NMRS_CHECK(leaf != kInvalidNode) << "TempRemove of absent object";
  TempRemoveLeaf(leaf);
  return leaf;
}

void ALTree::TempRemoveLeaf(NodeId leaf) {
  NMRS_CHECK_GT(descendants_[leaf], 0u);
  ++temp_removed_[leaf];
  AddToPathCounts(leaf, -1);
}

void ALTree::TempRestore(NodeId leaf) {
  NMRS_CHECK_GT(temp_removed_[leaf], 0u);
  --temp_removed_[leaf];
  AddToPathCounts(leaf, +1);
}

void ALTree::RemoveLeaf(NodeId leaf) {
  NMRS_DCHECK(IsLeaf(leaf));
  NMRS_CHECK_EQ(temp_removed_[leaf], 0u);
  const int64_t count = static_cast<int64_t>(descendants_[leaf]);
  if (count > 0) AddToPathCounts(leaf, -count);
  row_ids_[leaf].clear();
  numerics_[leaf].clear();
}

void ALTree::RemoveLeafEntry(NodeId leaf, size_t entry) {
  NMRS_DCHECK(IsLeaf(leaf));
  NMRS_CHECK_EQ(temp_removed_[leaf], 0u);
  auto& rows = row_ids_[leaf];
  NMRS_CHECK_LT(entry, rows.size());
  rows.erase(rows.begin() + static_cast<ptrdiff_t>(entry));
  if (numeric_stride_ > 0) {
    auto& nums = numerics_[leaf];
    const auto begin =
        nums.begin() + static_cast<ptrdiff_t>(entry * numeric_stride_);
    nums.erase(begin, begin + static_cast<ptrdiff_t>(numeric_stride_));
  }
  AddToPathCounts(leaf, -1);
}

}  // namespace nmrs
