#ifndef NMRS_STORAGE_MEMORY_BUDGET_H_
#define NMRS_STORAGE_MEMORY_BUDGET_H_

#include <algorithm>
#include <cstdint>

namespace nmrs {

/// Working-memory budget for a query, expressed in pages. The paper sets the
/// budget as a percentage of the dataset's on-disk size (e.g. 4%-20%).
struct MemoryBudget {
  uint64_t pages = 0;

  /// Budget of `fraction` (e.g. 0.10 for 10%) of a dataset occupying
  /// `dataset_pages` pages, but never less than `min_pages` (algorithms need
  /// at least 2 pages: one for the scan and one for a result batch).
  static MemoryBudget FromFraction(double fraction, uint64_t dataset_pages,
                                   uint64_t min_pages = 2) {
    const double raw = fraction * static_cast<double>(dataset_pages);
    uint64_t p = static_cast<uint64_t>(raw);
    return MemoryBudget{std::max<uint64_t>(p, min_pages)};
  }

  uint64_t Bytes(size_t page_size) const { return pages * page_size; }
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_MEMORY_BUDGET_H_
