#ifndef NMRS_STORAGE_FAULT_INJECTION_H_
#define NMRS_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/disk.h"

namespace nmrs {

/// Deterministic storage fault injection (docs/ROBUSTNESS.md).
///
/// The design goal is bit-identical reproduction: whether a given read
/// attempt faults is a *pure function* of (seed, stream, file, page,
/// attempt). No global RNG state is consumed, so the fault pattern is
/// independent of thread scheduling, query interleaving and worker count.
/// `stream` partitions the fault space between independent consumers — the
/// batch engine uses the query index, so query 7 sees the same faults
/// whether the batch runs on 1 worker or 8.

/// What fault configuration to apply to a disk. Default-constructed ==
/// faults off (enabled() is false and FaultyDisk becomes pass-through).
struct FaultConfig {
  /// Seed of the fault pattern. Two runs with equal configs see equal
  /// faults.
  uint64_t seed = 0;

  /// Probability that any single read *attempt* fails transiently with
  /// kUnavailable (independent per attempt, so a retry may succeed).
  double transient_read_p = 0.0;

  /// Probability that a successful read returns silently corrupted bytes
  /// (one byte XOR-flipped). Only checksums can catch this.
  double corrupt_p = 0.0;

  /// Probability that any given (file, page) is permanently unreadable —
  /// drawn once per page as a pure function of (seed, file, page), *not* of
  /// stream or attempt, so it models bad sectors: the same pages are gone
  /// for every query and every retry. Like `bad_pages`, every read attempt
  /// fails with kDataLoss.
  double data_loss_p = 0.0;

  /// Pages that are permanently unreadable: every attempt fails with
  /// kDataLoss. Retries never help; PagedReader quarantines these.
  std::set<std::pair<FileId, PageId>> bad_pages;

  bool enabled() const {
    return transient_read_p > 0.0 || corrupt_p > 0.0 || data_loss_p > 0.0 ||
           !bad_pages.empty();
  }
};

/// The outcome FaultInjector decides for one read attempt.
struct ReadFault {
  bool transient = false;    // fail this attempt with kUnavailable
  bool corrupt = false;      // flip one byte of the returned page
  uint64_t corrupt_offset_raw = 0;  // reduce mod page size at the flip site
  uint8_t corrupt_xor = 0;          // never 0 when corrupt (a real flip)
};

/// Pure-function fault oracle over a FaultConfig. Stateless and
/// const-thread-safe: any number of threads may query it concurrently.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(std::move(config)) {}

  const FaultConfig& config() const { return config_; }

  /// True if (file, page) is permanently bad: either listed in
  /// `bad_pages`, or selected by the `data_loss_p` draw (a pure function of
  /// seed/file/page — independent of stream and attempt, see FaultConfig).
  bool IsBadPage(FileId file, PageId page) const;

  /// Decides the fault outcome for attempt `attempt` (0-based) of reading
  /// (file, page) on fault stream `stream`. Deterministic: equal arguments
  /// and config always produce the same ReadFault.
  ReadFault DecideRead(uint64_t stream, FileId file, PageId page,
                       uint64_t attempt) const;

 private:
  FaultConfig config_;
};

/// How PagedReader responds to transient (kUnavailable) read failures.
/// Backoff is *modeled*, not slept: BackoffMillis sums into
/// QueryStats::modeled_backoff_millis so that retry storms show up in
/// response-time estimates without making tests wall-clock dependent.
struct RetryPolicy {
  /// Total attempts per page read, including the first (so 3 = up to 2
  /// retries). Must be >= 1.
  int max_attempts = 3;

  /// Modeled delay before the first retry, doubled (by default) each
  /// further retry: 2ms, 4ms, 8ms...
  double backoff_millis = 2.0;
  double backoff_multiplier = 2.0;

  /// Modeled delay charged before retry number `retry` (1-based).
  double BackoffMillis(int retry) const {
    double ms = backoff_millis;
    for (int i = 1; i < retry; ++i) ms *= backoff_multiplier;
    return ms;
  }
};

/// Thread-safe record of pages PagedReader has given up on. Purely
/// observational: queries never consult it to change behavior (which would
/// couple queries together and break per-query determinism) — it exists so
/// operators can see *which* pages are gone, not just how many.
class QuarantineLog {
 public:
  /// Records (file, page). Returns true if it was newly quarantined.
  bool Report(FileId file, PageId page);

  /// Snapshot of all quarantined pages, sorted.
  std::vector<std::pair<FileId, PageId>> Pages() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::set<std::pair<FileId, PageId>> pages_;
};

/// Everything a reader needs to know about surviving storage faults, in one
/// struct: checksum verification, the transient-retry budget, where to
/// report pages that are gone for good, and how many storage replicas exist
/// to fail over to. Embedded in RSOptions and QueryEngineOptions and
/// consumed by MakeReaderOptions, so algorithms, the batch engine and the
/// CLI all speak the same resilience vocabulary. Default-constructed ==
/// everything off: no checksums, 3 transient attempts, no quarantine
/// reporting, a single replica (no failover) — bit-identical to the
/// pre-replica behavior.
struct ResiliencePolicy {
  /// Verify (and for writers, seal) CRC32C page trailers. Readers treat a
  /// mismatch as kCorruption: evict + refetch once, then fail over /
  /// quarantine.
  bool checksum_pages = false;

  /// Transient (kUnavailable) retry budget per page read, per replica.
  RetryPolicy retry;

  /// If set, pages every replica failed on are reported here. Borrowed, not
  /// owned; must outlive the query.
  QuarantineLog* quarantine_log = nullptr;

  /// Number of storage replicas (>= 1). With N > 1 the batch engine builds
  /// a ReplicaSet of N FaultyDisks over the same frozen base files, each
  /// with its own fault seed, and PagedReader fails over page-by-page.
  /// 1 == no failover, byte-identical to the single-disk code path.
  int replicas = 1;

  /// Replica r (r > 0) faults with seed `base_seed + replica_fault_seed_base
  /// + r`; replica 0 keeps the configured seed verbatim so replicas=1 runs
  /// reproduce single-disk fault patterns exactly.
  uint64_t replica_fault_seed_base = 0x7265706Cull;  // "repl"

  /// Rejects configurations the runtime cannot honor instead of silently
  /// bending them: `replicas` must be in [1, IoStats::kMaxReplicas] (the
  /// per-replica read accounting is a fixed-width array, so a larger count
  /// used to be clamped silently — replica 9+ would neither serve reads nor
  /// appear in any counter), and the retry budget must allow at least one
  /// attempt. Callers that accept a policy from outside (the batch engine,
  /// the CLI) validate before running.
  Status Validate() const;
};

/// A SimulatedDisk decorator that injects the faults a FaultInjector
/// decides into reads of a wrapped disk. Writes and structural ops pass
/// straight through; stats and the disk arm live in the wrapped disk so IO
/// accounting is unchanged by wrapping.
///
/// Attempt numbering: the decorator counts ReadPage calls per (file, page)
/// *within this instance*, so retries of the same page advance through the
/// fault sequence while a fresh FaultyDisk (e.g. a re-run of the same
/// query) replays it from attempt 0. The batch engine creates one
/// FaultyDisk per query task over that worker's DiskView, which is what
/// makes fault patterns independent of work-stealing order.
///
/// Thread-compatibility: the attempt map is mutex-guarded, but the
/// intended use is single-owner (one query task), like DiskView.
class FaultyDisk final : public SimulatedDisk {
 public:
  /// All file ids are faultable (standalone use over a private disk).
  static constexpr FileId kNoFaultCeiling = ~FileId{0};

  /// `inner` is borrowed and must outlive the FaultyDisk. `stream`
  /// partitions the fault space (see file comment). Reads of files with id
  /// >= `fault_ceiling` bypass injection entirely: fault decisions key on
  /// the file id, and per-view scratch-file ids are handed out in
  /// execution order — so injecting into scratch reads would make fault
  /// patterns depend on which queries ran earlier on the same worker. The
  /// batch engine passes the frozen base disk's next_file_id() as the
  /// ceiling, which models faults as bad sectors in the (shared, frozen)
  /// dataset region while per-query scratch spills stay clean.
  FaultyDisk(SimulatedDisk* inner, const FaultInjector* injector,
             uint64_t stream, FileId fault_ceiling = kNoFaultCeiling);

  SimulatedDisk* inner() const { return inner_; }
  uint64_t stream() const { return stream_; }

  Status ReadPage(FileId file, PageId page, Page* out) override;

  // Everything else forwards to the wrapped disk unchanged.
  FileId CreateFile(std::string name) override;
  Status DeleteFile(FileId file) override;
  Status TruncateFile(FileId file) override;
  uint64_t NumPages(FileId file) const override;
  bool FileExists(FileId file) const override;
  Status WritePage(FileId file, PageId page, const Page& in) override;
  const IoStats& stats() const override;
  void ResetStats() override;
  void InvalidateArmPosition() override;
  StatusOr<uint64_t> PagesOf(FileId file) const override;
  std::string FileName(FileId file) const override;
  uint64_t TotalPages() const override;

 private:
  struct PairHash {
    size_t operator()(const std::pair<FileId, PageId>& p) const {
      return static_cast<size_t>(p.first) * 0x9E3779B97F4A7C15ull +
             static_cast<size_t>(p.second);
    }
  };

  uint64_t NextAttempt(FileId file, PageId page);

  SimulatedDisk* inner_;
  const FaultInjector* injector_;
  uint64_t stream_;
  FileId fault_ceiling_;

  mutable std::mutex mu_;
  std::unordered_map<std::pair<FileId, PageId>, uint64_t, PairHash> attempts_;
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_FAULT_INJECTION_H_
