#include "storage/disk.h"

#include <cstring>

namespace nmrs {

SimulatedDisk::SimulatedDisk(size_t page_size) : page_size_(page_size) {
  NMRS_CHECK_GT(page_size_, 0u);
}

FileId SimulatedDisk::CreateFile(std::string name) {
  FileId id = next_file_id_++;
  files_.emplace(id, File{std::move(name), {}});
  return id;
}

Status SimulatedDisk::DeleteFile(FileId file) {
  if (files_.erase(file) == 0) {
    return Status::NotFound("no such file id " + std::to_string(file));
  }
  if (has_position_ && last_file_ == file) has_position_ = false;
  return Status::OK();
}

Status SimulatedDisk::TruncateFile(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("no such file id " + std::to_string(file));
  }
  it->second.pages.clear();
  if (has_position_ && last_file_ == file) has_position_ = false;
  return Status::OK();
}

uint64_t SimulatedDisk::NumPages(FileId file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.pages.size();
}

bool SimulatedDisk::FileExists(FileId file) const {
  return files_.count(file) > 0;
}

bool SimulatedDisk::IsSequential(FileId file, PageId page) const {
  return has_position_ && last_file_ == file && page == last_page_ + 1;
}

void SimulatedDisk::Touch(FileId file, PageId page) {
  has_position_ = true;
  last_file_ = file;
  last_page_ = page;
}

Status SimulatedDisk::ReadPage(FileId file, PageId page, Page* out) {
  NMRS_CHECK(out != nullptr);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("no such file id " + std::to_string(file));
  }
  if (page >= it->second.pages.size()) {
    return Status::OutOfRange("read past end of file '" + it->second.name +
                              "': page " + std::to_string(page) + " of " +
                              std::to_string(it->second.pages.size()));
  }
  if (IsSequential(file, page)) {
    ++stats_.seq_reads;
  } else {
    ++stats_.rand_reads;
  }
  Touch(file, page);
  *out = it->second.pages[page];
  return Status::OK();
}

Status SimulatedDisk::WritePage(FileId file, PageId page, const Page& in) {
  if (in.size() != page_size_) {
    return Status::InvalidArgument("page size mismatch: " +
                                   std::to_string(in.size()) + " vs " +
                                   std::to_string(page_size_));
  }
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("no such file id " + std::to_string(file));
  }
  auto& pages = it->second.pages;
  if (page > pages.size()) {
    return Status::OutOfRange("write creates hole in file '" +
                              it->second.name + "'");
  }
  if (IsSequential(file, page)) {
    ++stats_.seq_writes;
  } else {
    ++stats_.rand_writes;
  }
  Touch(file, page);
  if (page == pages.size()) {
    pages.push_back(in);
  } else {
    pages[page] = in;
  }
  return Status::OK();
}

StatusOr<PageId> SimulatedDisk::AppendPage(FileId file, const Page& in) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("no such file id " + std::to_string(file));
  }
  PageId id = it->second.pages.size();
  NMRS_RETURN_IF_ERROR(WritePage(file, id, in));
  return id;
}

void SimulatedDisk::ResetStats() { stats_ = IoStats{}; }

void SimulatedDisk::InvalidateArmPosition() { has_position_ = false; }

uint64_t SimulatedDisk::TotalPages() const {
  uint64_t total = 0;
  for (const auto& [id, f] : files_) total += f.pages.size();
  return total;
}

}  // namespace nmrs
