#include "storage/disk.h"

#include <cstring>

#include "common/check.h"
#include "common/crc32c.h"

namespace nmrs {

void Page::Seal() {
  NMRS_CHECK_GE(bytes_.size(), kChecksumFooterBytes);
  const size_t body = bytes_.size() - kChecksumFooterBytes;
  const uint32_t crc = Crc32c(bytes_.data(), body);
  bytes_[body + 0] = static_cast<uint8_t>(crc & 0xFFu);
  bytes_[body + 1] = static_cast<uint8_t>((crc >> 8) & 0xFFu);
  bytes_[body + 2] = static_cast<uint8_t>((crc >> 16) & 0xFFu);
  bytes_[body + 3] = static_cast<uint8_t>((crc >> 24) & 0xFFu);
}

bool Page::VerifySeal() const {
  if (bytes_.size() < kChecksumFooterBytes) return false;
  const size_t body = bytes_.size() - kChecksumFooterBytes;
  const uint32_t stored = static_cast<uint32_t>(bytes_[body + 0]) |
                          (static_cast<uint32_t>(bytes_[body + 1]) << 8) |
                          (static_cast<uint32_t>(bytes_[body + 2]) << 16) |
                          (static_cast<uint32_t>(bytes_[body + 3]) << 24);
  return Crc32c(bytes_.data(), body) == stored;
}

SimulatedDisk::SimulatedDisk(size_t page_size) : SimulatedDisk(page_size, 0) {}

SimulatedDisk::SimulatedDisk(size_t page_size, FileId first_file_id)
    : page_size_(page_size), next_file_id_(first_file_id) {
  NMRS_CHECK_GT(page_size_, 0u);
}

FileId SimulatedDisk::CreateFile(std::string name) {
  FileId id = next_file_id_++;
  files_.emplace(id, File{std::move(name), {}});
  return id;
}

Status SimulatedDisk::DeleteFile(FileId file) {
  if (files_.erase(file) == 0) {
    return Status::NotFound("no such file id " + std::to_string(file));
  }
  std::lock_guard<std::mutex> lock(arm_mu_);
  if (has_position_ && last_file_ == file) has_position_ = false;
  return Status::OK();
}

Status SimulatedDisk::TruncateFile(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("no such file id " + std::to_string(file));
  }
  it->second.pages.clear();
  std::lock_guard<std::mutex> lock(arm_mu_);
  if (has_position_ && last_file_ == file) has_position_ = false;
  return Status::OK();
}

uint64_t SimulatedDisk::NumPages(FileId file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.pages.size();
}

bool SimulatedDisk::FileExists(FileId file) const {
  return files_.count(file) > 0;
}

bool SimulatedDisk::IsSequentialLocked(FileId file, PageId page) const {
  return has_position_ && last_file_ == file && page == last_page_ + 1;
}

void SimulatedDisk::ChargeRead(FileId file, PageId page) {
  std::lock_guard<std::mutex> lock(arm_mu_);
  if (IsSequentialLocked(file, page)) {
    ++stats_.seq_reads;
  } else {
    ++stats_.rand_reads;
  }
  has_position_ = true;
  last_file_ = file;
  last_page_ = page;
}

void SimulatedDisk::ChargeWrite(FileId file, PageId page) {
  std::lock_guard<std::mutex> lock(arm_mu_);
  if (IsSequentialLocked(file, page)) {
    ++stats_.seq_writes;
  } else {
    ++stats_.rand_writes;
  }
  has_position_ = true;
  last_file_ = file;
  last_page_ = page;
}

const Page* SimulatedDisk::PeekPage(FileId file, PageId page) const {
  auto it = files_.find(file);
  if (it == files_.end() || page >= it->second.pages.size()) return nullptr;
  return &it->second.pages[page];
}

Status SimulatedDisk::ReadPage(FileId file, PageId page, Page* out) {
  NMRS_CHECK(out != nullptr);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("no such file id " + std::to_string(file) +
                            " (reading page " + std::to_string(page) + ")");
  }
  if (page >= it->second.pages.size()) {
    return Status::OutOfRange("read past end of file '" + it->second.name +
                              "' (id " + std::to_string(file) + "): page " +
                              std::to_string(page) + " of " +
                              std::to_string(it->second.pages.size()));
  }
  ChargeRead(file, page);
  *out = it->second.pages[page];
  return Status::OK();
}

Status SimulatedDisk::WritePage(FileId file, PageId page, const Page& in) {
  if (in.size() != page_size_) {
    return Status::InvalidArgument("page size mismatch: " +
                                   std::to_string(in.size()) + " vs " +
                                   std::to_string(page_size_));
  }
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("no such file id " + std::to_string(file) +
                            " (writing page " + std::to_string(page) + ")");
  }
  auto& pages = it->second.pages;
  if (page > pages.size()) {
    return Status::OutOfRange(
        "write creates hole in file '" + it->second.name + "' (id " +
        std::to_string(file) + "): page " + std::to_string(page) + " of " +
        std::to_string(pages.size()));
  }
  ChargeWrite(file, page);
  if (page == pages.size()) {
    pages.push_back(in);
  } else {
    pages[page] = in;
  }
  return Status::OK();
}

StatusOr<PageId> SimulatedDisk::AppendPage(FileId file, const Page& in) {
  PageId id = NumPages(file);
  if (!FileExists(file)) {
    return Status::NotFound("no such file id " + std::to_string(file));
  }
  NMRS_RETURN_IF_ERROR(WritePage(file, id, in));
  return id;
}

void SimulatedDisk::ResetStats() {
  std::lock_guard<std::mutex> lock(arm_mu_);
  stats_ = IoStats{};
}

void SimulatedDisk::InvalidateArmPosition() {
  std::lock_guard<std::mutex> lock(arm_mu_);
  has_position_ = false;
}

StatusOr<uint64_t> SimulatedDisk::PagesOf(FileId file) const {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("no such file id " + std::to_string(file));
  }
  return static_cast<uint64_t>(it->second.pages.size());
}

std::string SimulatedDisk::FileName(FileId file) const {
  auto it = files_.find(file);
  if (it == files_.end()) return "<unknown file " + std::to_string(file) + ">";
  return it->second.name;
}

uint64_t SimulatedDisk::TotalPages() const {
  uint64_t total = 0;
  for (const auto& [id, f] : files_) total += f.pages.size();
  return total;
}

}  // namespace nmrs
