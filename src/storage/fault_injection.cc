#include "storage/fault_injection.h"

#include <algorithm>

#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "storage/io_stats.h"

namespace nmrs {

namespace {

// SplitMix64 finalizer: a full-avalanche 64-bit mixer, so nearby
// (file, page, attempt) tuples land on statistically independent seeds.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Folds the decision coordinates into one seed. Chained Mix64 keeps every
// coordinate influential (plain XOR of the raw values would alias e.g.
// (file=1, page=0) with (file=0, page=1)).
uint64_t DecisionSeed(uint64_t seed, uint64_t stream, FileId file, PageId page,
                      uint64_t attempt) {
  uint64_t h = Mix64(seed);
  h = Mix64(h ^ stream);
  h = Mix64(h ^ file);
  h = Mix64(h ^ page);
  h = Mix64(h ^ attempt);
  return h;
}

// Salt separating the per-page data-loss draw from the per-attempt
// transient/corrupt draws (which start from Mix64(seed) with no salt).
constexpr uint64_t kDataLossSalt = 0xBAD5EC7042ull;

}  // namespace

bool FaultInjector::IsBadPage(FileId file, PageId page) const {
  if (config_.bad_pages.count({file, page}) > 0) return true;
  if (config_.data_loss_p <= 0.0) return false;
  // Pure function of (seed, file, page) only: the same sectors are bad for
  // every query stream and every retry attempt.
  uint64_t h = Mix64(config_.seed ^ kDataLossSalt);
  h = Mix64(h ^ file);
  h = Mix64(h ^ page);
  Rng rng(h);
  return rng.Bernoulli(config_.data_loss_p);
}

ReadFault FaultInjector::DecideRead(uint64_t stream, FileId file, PageId page,
                                    uint64_t attempt) const {
  ReadFault fault;
  if (config_.transient_read_p <= 0.0 && config_.corrupt_p <= 0.0) {
    return fault;
  }
  Rng rng(DecisionSeed(config_.seed, stream, file, page, attempt));
  if (rng.Bernoulli(config_.transient_read_p)) {
    fault.transient = true;
    return fault;  // the attempt fails; corruption is moot
  }
  if (rng.Bernoulli(config_.corrupt_p)) {
    fault.corrupt = true;
    fault.corrupt_offset_raw = rng.Next64();
    // XOR mask in [1, 255]: zero would be a no-op "corruption".
    fault.corrupt_xor = static_cast<uint8_t>(1 + rng.Uniform(255));
  }
  return fault;
}

Status ResiliencePolicy::Validate() const {
  if (replicas < 1 ||
      replicas > static_cast<int>(IoStats::kMaxReplicas)) {
    return Status::InvalidArgument(
        "ResiliencePolicy::replicas must be between 1 and " +
        std::to_string(IoStats::kMaxReplicas) + " (got " +
        std::to_string(replicas) +
        "): per-replica read accounting (IoStats::replica_reads) is a "
        "fixed-width array, and replicas beyond it would silently serve "
        "no reads");
  }
  if (retry.max_attempts < 1) {
    return Status::InvalidArgument(
        "RetryPolicy::max_attempts must be >= 1 (got " +
        std::to_string(retry.max_attempts) + ")");
  }
  return Status::OK();
}

bool QuarantineLog::Report(FileId file, PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.insert({file, page}).second;
}

std::vector<std::pair<FileId, PageId>> QuarantineLog::Pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {pages_.begin(), pages_.end()};
}

size_t QuarantineLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

FaultyDisk::FaultyDisk(SimulatedDisk* inner, const FaultInjector* injector,
                       uint64_t stream, FileId fault_ceiling)
    : SimulatedDisk(inner->page_size(), inner->next_file_id()),
      inner_(inner),
      injector_(injector),
      stream_(stream),
      fault_ceiling_(fault_ceiling) {
  NMRS_CHECK(inner != nullptr);
  NMRS_CHECK(injector != nullptr);
}

uint64_t FaultyDisk::NextAttempt(FileId file, PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  return attempts_[{file, page}]++;
}

Status FaultyDisk::ReadPage(FileId file, PageId page, Page* out) {
  if (file >= fault_ceiling_) return inner_->ReadPage(file, page, out);
  const uint64_t attempt = NextAttempt(file, page);
  if (injector_->IsBadPage(file, page)) {
    // The arm still seeks to the bad page: a failed read costs real IO.
    // Mirror the inner disk's charge path by issuing the read and
    // discarding the result.
    Status inner_status = inner_->ReadPage(file, page, out);
    if (!inner_status.ok()) return inner_status;
    return Status::DataLoss("permanently unreadable page " +
                            std::to_string(page) + " of file '" +
                            inner_->FileName(file) + "' (id " +
                            std::to_string(file) + ")");
  }
  const ReadFault fault = injector_->DecideRead(stream_, file, page, attempt);
  if (fault.transient) {
    Status inner_status = inner_->ReadPage(file, page, out);
    if (!inner_status.ok()) return inner_status;
    return Status::Unavailable(
        "transient read failure on page " + std::to_string(page) +
        " of file '" + inner_->FileName(file) + "' (id " +
        std::to_string(file) + "), attempt " + std::to_string(attempt));
  }
  NMRS_RETURN_IF_ERROR(inner_->ReadPage(file, page, out));
  if (fault.corrupt && out->size() > 0) {
    const size_t offset =
        static_cast<size_t>(fault.corrupt_offset_raw % out->size());
    (*out)[offset] ^= fault.corrupt_xor;
  }
  return Status::OK();
}

FileId FaultyDisk::CreateFile(std::string name) {
  return inner_->CreateFile(std::move(name));
}

Status FaultyDisk::DeleteFile(FileId file) { return inner_->DeleteFile(file); }

Status FaultyDisk::TruncateFile(FileId file) {
  return inner_->TruncateFile(file);
}

uint64_t FaultyDisk::NumPages(FileId file) const {
  return inner_->NumPages(file);
}

bool FaultyDisk::FileExists(FileId file) const {
  return inner_->FileExists(file);
}

Status FaultyDisk::WritePage(FileId file, PageId page, const Page& in) {
  return inner_->WritePage(file, page, in);
}

const IoStats& FaultyDisk::stats() const { return inner_->stats(); }

void FaultyDisk::ResetStats() { inner_->ResetStats(); }

void FaultyDisk::InvalidateArmPosition() { inner_->InvalidateArmPosition(); }

StatusOr<uint64_t> FaultyDisk::PagesOf(FileId file) const {
  return inner_->PagesOf(file);
}

std::string FaultyDisk::FileName(FileId file) const {
  return inner_->FileName(file);
}

uint64_t FaultyDisk::TotalPages() const { return inner_->TotalPages(); }

}  // namespace nmrs
