#include "storage/replica_set.h"

#include <utility>

#include "common/check.h"

namespace nmrs {

std::vector<FaultConfig> ReplicaSet::DeriveConfigs(const FaultConfig& tmpl,
                                                   uint64_t seed_base, int n) {
  std::vector<FaultConfig> configs(static_cast<size_t>(n), tmpl);
  for (int r = 0; r < n; ++r) {
    configs[static_cast<size_t>(r)].seed = ReplicaSeed(tmpl.seed, seed_base, r);
  }
  return configs;
}

ReplicaSet::ReplicaSet(const SimulatedDisk* base, ReplicaSetOptions opts)
    : opts_(std::move(opts)) {
  NMRS_CHECK(base != nullptr);
  NMRS_CHECK(opts_.num_replicas >= 1) << "a replica set needs >= 1 replica";
  NMRS_CHECK(opts_.num_workers >= 1);
  const size_t n = static_cast<size_t>(opts_.num_replicas);
  if (opts_.faults.size() == 1 && opts_.num_replicas > 1) {
    opts_.faults = DeriveConfigs(opts_.faults[0],
                                 opts_.replica_fault_seed_base,
                                 opts_.num_replicas);
  }
  NMRS_CHECK(opts_.faults.empty() || opts_.faults.size() == n)
      << "per-replica fault configs must cover every replica";

  injectors_.resize(n);
  for (size_t r = 0; r < opts_.faults.size(); ++r) {
    if (opts_.faults[r].enabled()) {
      injectors_[r] = std::make_unique<FaultInjector>(opts_.faults[r]);
    }
  }

  views_.reserve(static_cast<size_t>(opts_.num_workers) * n);
  for (int w = 0; w < opts_.num_workers; ++w) {
    for (size_t r = 0; r < n; ++r) {
      views_.push_back(std::make_unique<DiskView>(base));
    }
  }
}

bool ReplicaSet::faulted() const {
  for (const auto& inj : injectors_) {
    if (inj != nullptr) return true;
  }
  return false;
}

const FaultInjector* ReplicaSet::injector(int replica) const {
  NMRS_DCHECK(replica >= 0 && replica < opts_.num_replicas);
  return injectors_[static_cast<size_t>(replica)].get();
}

DiskView* ReplicaSet::view(int worker, int replica) const {
  NMRS_DCHECK(worker >= 0 && worker < opts_.num_workers);
  NMRS_DCHECK(replica >= 0 && replica < opts_.num_replicas);
  return views_[static_cast<size_t>(worker) *
                    static_cast<size_t>(opts_.num_replicas) +
                static_cast<size_t>(replica)]
      .get();
}

IoStats ReplicaSet::WorkerStats(int worker) const {
  IoStats total;
  for (int r = 0; r < opts_.num_replicas; ++r) {
    total += view(worker, r)->stats();
  }
  return total;
}

std::vector<SimulatedDisk*> ReplicaSet::MakeQueryDisks(
    int worker, uint64_t stream,
    std::vector<std::unique_ptr<FaultyDisk>>* wrappers) const {
  NMRS_CHECK(wrappers != nullptr);
  std::vector<SimulatedDisk*> disks;
  disks.reserve(static_cast<size_t>(opts_.num_replicas));
  for (int r = 0; r < opts_.num_replicas; ++r) {
    DiskView* v = view(worker, r);
    const FaultInjector* inj = injector(r);
    if (inj == nullptr) {
      disks.push_back(v);
      continue;
    }
    wrappers->push_back(std::make_unique<FaultyDisk>(v, inj, stream,
                                                     opts_.fault_ceiling));
    disks.push_back(wrappers->back().get());
  }
  return disks;
}

}  // namespace nmrs
