#ifndef NMRS_STORAGE_WAL_H_
#define NMRS_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/disk.h"

namespace nmrs {

/// One logical mutation in the write-ahead log. Records are
/// schema-agnostic — self-describing value/numeric counts instead of a
/// Schema reference — so the storage layer stays independent of the data
/// layer; Database validates counts against its schema before appending
/// and after replay.
struct WalRecord {
  enum class Type : uint8_t { kInsert = 1, kDelete = 2 };

  Type type = Type::kInsert;

  /// Stable user-facing key of the row (assigned by Database::Insert,
  /// echoed by Database::Delete). Keys never change across compactions,
  /// unlike RowIds, which are renumbered by every merge.
  uint64_t key = 0;

  /// Insert payload: one bucketed ValueId per attribute, plus the raw
  /// doubles for numeric attributes (in schema numeric order). Empty for
  /// deletes.
  std::vector<uint32_t> values;
  std::vector<double> numerics;

  bool operator==(const WalRecord& o) const {
    return type == o.type && key == o.key && values == o.values &&
           numerics == o.numerics;
  }

  /// Bytes this record occupies inside a WAL page.
  size_t EncodedBytes() const;
};

/// Append-only write-ahead log over a SimulatedDisk file.
///
/// ## Page format
///
/// Every page is independently CRC32C-sealed with the PR-3 machinery
/// (Page::Seal / VerifySeal — 4-byte little-endian footer over the rest of
/// the page):
///
///   [u32 record_count] [record]* ... zero padding ... [crc32c footer]
///
/// and each record is
///
///   [u8 type] [u64 key] [u32 num_values] [u32 value]*
///   [u32 num_numerics] [f64 numeric]*
///
/// (all little-endian). Records never span pages; a record that cannot fit
/// in an empty page is rejected as kInvalidArgument (a row of even 256
/// attributes is ~3 KB against 32 KB pages, so this is a format guard, not
/// a practical limit).
///
/// ## Durability contract
///
/// Append() re-seals and rewrites the tail page on every record, so after
/// the call returns the on-disk file is exactly the sealed image of all
/// records appended so far. A crash at any record boundary therefore
/// leaves a fully replayable log — this is what the crash-recovery matrix
/// in tests/storage/wal_test.cc exercises by snapshotting the disk after
/// every Append. A crash *mid-write* tears the tail page, which replay
/// detects via the seal and reports as a truncated (not corrupt) log.
///
/// The writer requires exclusive access to the disk during Append, per the
/// SimulatedDisk structural-mutation contract; Database gives the WAL its
/// own private disk so appends never race query reads.
class WalWriter {
 public:
  /// Creates a fresh log file named `name` on `disk`.
  WalWriter(SimulatedDisk* disk, std::string name);

  FileId file() const { return file_; }
  uint64_t num_records() const { return num_records_; }

  /// Appends one record and makes it durable (tail page sealed and
  /// rewritten) before returning.
  Status Append(const WalRecord& rec);

 private:
  SimulatedDisk* disk_;
  FileId file_ = 0;
  Page tail_;
  bool tail_on_disk_ = false;  // tail page id is NumPages-1 when true
  uint32_t tail_records_ = 0;
  size_t tail_used_ = 0;  // bytes used incl. the u32 count header
  uint64_t num_records_ = 0;
};

/// Outcome of replaying a WAL file.
struct WalReplay {
  std::vector<WalRecord> records;

  /// True when the last page failed seal verification: the tail was torn
  /// by a crash mid-write. `records` then holds the durable prefix (all
  /// fully-sealed pages before the tear), which is exactly the set of
  /// Appends that had returned before the crash.
  bool torn_tail = false;
};

/// Replays the log at `file`, verifying every page seal. A bad seal on any
/// page but the last is kCorruption (the log was damaged at rest, not torn
/// by a crash — no safe prefix exists past the damage, and a tear can only
/// be at the tail because Append never rewrites earlier pages). Malformed
/// record framing inside a verified page is likewise kCorruption.
StatusOr<WalReplay> ReplayWal(SimulatedDisk* disk, FileId file);

}  // namespace nmrs

#endif  // NMRS_STORAGE_WAL_H_
