#include "storage/io_stats.h"

#include <sstream>

namespace nmrs {

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "IoStats{seq_reads=" << seq_reads << ", rand_reads=" << rand_reads
     << ", seq_writes=" << seq_writes << ", rand_writes=" << rand_writes;
  // Keep the seed-era string short when no buffer pool was involved.
  if (cache_hits != 0 || cache_misses != 0 || cache_evictions != 0) {
    os << ", cache_hits=" << cache_hits << ", cache_misses=" << cache_misses
       << ", cache_evictions=" << cache_evictions;
  }
  // Likewise elide the fault counters in fault-free runs.
  if (transient_retries != 0 || checksum_failures != 0 ||
      quarantined_pages != 0) {
    os << ", transient_retries=" << transient_retries
       << ", checksum_failures=" << checksum_failures
       << ", quarantined_pages=" << quarantined_pages;
  }
  // And the failover counters in single-replica runs.
  if (failovers != 0 || ReplicaReadsTotal() != 0) {
    os << ", failovers=" << failovers << ", replica_reads=[";
    size_t last = 0;
    for (size_t r = 0; r < kMaxReplicas; ++r) {
      if (replica_reads[r] != 0) last = r;
    }
    for (size_t r = 0; r <= last; ++r) {
      os << (r == 0 ? "" : ", ") << replica_reads[r];
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

}  // namespace nmrs
