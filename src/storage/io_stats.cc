#include "storage/io_stats.h"

#include <sstream>

namespace nmrs {

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "IoStats{seq_reads=" << seq_reads << ", rand_reads=" << rand_reads
     << ", seq_writes=" << seq_writes << ", rand_writes=" << rand_writes
     << "}";
  return os.str();
}

}  // namespace nmrs
