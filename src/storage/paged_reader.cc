#include "storage/paged_reader.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace nmrs {

Status PagedReader::RawRead(SimulatedDisk* d, FileId file, PageId page,
                            Page* out) {
  if (pool_ != nullptr && pool_->Caches(file)) {
    BufferPool::ReadEvent ev;
    Status s = pool_->ReadThrough(d, file, page, out, &ev);
    if (!s.ok()) return s;
    stats_.hits += ev.hit ? 1 : 0;
    stats_.misses += ev.hit ? 0 : 1;
    stats_.evictions += ev.evicted ? 1 : 0;
    return s;
  }
  return d->ReadPage(file, page, out);
}

Status PagedReader::ReplicaRead(SimulatedDisk* d, int replica, FileId file,
                                PageId page, Page* out, bool bypass_pool) {
  const auto read = [&] {
    return bypass_pool ? d->ReadPage(file, page, out)
                       : RawRead(d, file, page, out);
  };
  if (replica < 0) return read();
  NMRS_DCHECK(replica < static_cast<int>(IoStats::kMaxReplicas));
  ++replica_reads_[replica];
  if (replica == 0) return read();
  // Non-primary replicas live on their own disks, which nobody deltas for
  // per-query IO attribution — capture the charge here.
  const IoStats before = d->stats();
  Status s = read();
  failover_io_ += d->stats() - before;
  return s;
}

Status PagedReader::ReadWithPolicy(SimulatedDisk* d, int replica, FileId file,
                                   PageId page, Page* out) {
  const int max_attempts = std::max(1, opts_.retry.max_attempts);
  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++transient_retries_;
      modeled_backoff_millis_ += opts_.retry.BackoffMillis(attempt);
    }
    last = ReplicaRead(d, replica, file, page, out);
    if (last.IsUnavailable()) continue;  // transient: spend a retry
    if (!last.ok()) break;               // permanent: surface below

    if (!opts_.verify_checksums) return last;
    if (out->VerifySeal()) return last;

    // Checksum failure. The bad bytes may live in the shared pool (one
    // corrupted miss fetch poisons every later hit), so evict the frame and
    // refetch once from disk before declaring the page corrupt.
    ++checksum_failures_;
    if (pool_ != nullptr && pool_->Caches(file)) pool_->Evict(file, page);
    Status refetch = ReplicaRead(d, replica, file, page, out);
    if (refetch.ok()) {
      if (out->VerifySeal()) return refetch;
      ++checksum_failures_;
    }
    // In a failover configuration the evict + refetch pair is not atomic:
    // another reader's corrupting primary may have re-poisoned the shared
    // frame in between, so a pool-routed failure says nothing about THIS
    // replica. Consult its disk directly before condemning it; the verdict
    // below must be about the replica, not about pool traffic. (Single-disk
    // mode skips this so replicas=1 stays bit-identical to the seed.)
    if (replica >= 0 && pool_ != nullptr && pool_->Caches(file)) {
      Status direct =
          ReplicaRead(d, replica, file, page, out, /*bypass_pool=*/true);
      if (direct.ok() && out->VerifySeal()) {
        pool_->Evict(file, page);  // drop the poisoned frame
        return direct;
      }
      if (direct.ok()) ++checksum_failures_;
    }
    last = Status::Corruption(
        "checksum mismatch on page " + std::to_string(page) + " of file '" +
        d->FileName(file) + "' (id " + std::to_string(file) +
        "), persisted across a refetch");
    break;
  }

  if (last.IsUnavailable()) {
    last = Status::DataLoss("page " + std::to_string(page) + " of file '" +
                            d->FileName(file) + "' (id " +
                            std::to_string(file) + ") unreadable after " +
                            std::to_string(max_attempts) +
                            " attempts: " + last.message());
  }
  return last;
}

Status PagedReader::ReadPage(FileId file, PageId page, Page* out) {
  if (opts_.failover.empty() || file >= opts_.failover_limit) {
    // Single-replica path: identical to the pre-failover reader, including
    // its accounting (no replica_reads).
    Status last = ReadWithPolicy(disk_, /*replica=*/-1, file, page, out);
    if (last.IsDataLoss() || last.IsCorruption()) {
      ++quarantined_pages_;
      if (opts_.quarantine != nullptr) opts_.quarantine->Report(file, page);
    }
    return last;
  }

  const int n = 1 + static_cast<int>(opts_.failover.size());
  NMRS_CHECK(n <= static_cast<int>(IoStats::kMaxReplicas))
      << "too many failover replicas";
  const int start = current_replica_;
  Status last;
  for (int k = 0; k < n; ++k) {
    const int r = (start + k) % n;
    SimulatedDisk* d = r == 0 ? disk_ : opts_.failover[r - 1];
    if (k > 0 && pool_ != nullptr && pool_->Caches(file)) {
      // The frame may hold the failed replica's bytes; evict so the read
      // below actually refetches from replica r and the pool heals from a
      // replica with good bytes.
      pool_->Evict(file, page);
    }
    last = ReadWithPolicy(d, r, file, page, out);
    if (last.ok()) {
      if (k > 0) ++failovers_;
      current_replica_ = r;  // sticky preference for subsequent reads
      return last;
    }
  }

  // Every replica failed this page: it is truly lost.
  ++quarantined_pages_;
  if (opts_.quarantine != nullptr) opts_.quarantine->Report(file, page);
  return last;
}

}  // namespace nmrs
