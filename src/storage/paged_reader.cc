#include "storage/paged_reader.h"

#include <algorithm>
#include <string>

namespace nmrs {

Status PagedReader::RawRead(FileId file, PageId page, Page* out) {
  if (pool_ != nullptr && pool_->Caches(file)) {
    BufferPool::ReadEvent ev;
    Status s = pool_->ReadThrough(disk_, file, page, out, &ev);
    if (!s.ok()) return s;
    stats_.hits += ev.hit ? 1 : 0;
    stats_.misses += ev.hit ? 0 : 1;
    stats_.evictions += ev.evicted ? 1 : 0;
    return s;
  }
  return disk_->ReadPage(file, page, out);
}

Status PagedReader::ReadPage(FileId file, PageId page, Page* out) {
  const int max_attempts = std::max(1, opts_.retry.max_attempts);
  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++transient_retries_;
      modeled_backoff_millis_ += opts_.retry.BackoffMillis(attempt);
    }
    last = RawRead(file, page, out);
    if (last.IsUnavailable()) continue;  // transient: spend a retry
    if (!last.ok()) break;               // permanent: surface below

    if (!opts_.verify_checksums) return last;
    if (out->VerifySeal()) return last;

    // Checksum failure. The bad bytes may live in the shared pool (one
    // corrupted miss fetch poisons every later hit), so evict the frame and
    // refetch once from disk before declaring the page corrupt.
    ++checksum_failures_;
    if (pool_ != nullptr && pool_->Caches(file)) pool_->Evict(file, page);
    Status refetch = RawRead(file, page, out);
    if (refetch.ok()) {
      if (out->VerifySeal()) return refetch;
      ++checksum_failures_;
    }
    last = Status::Corruption(
        "checksum mismatch on page " + std::to_string(page) + " of file '" +
        disk_->FileName(file) + "' (id " + std::to_string(file) +
        "), persisted across a refetch");
    break;
  }

  if (last.IsUnavailable()) {
    last = Status::DataLoss("page " + std::to_string(page) + " of file '" +
                            disk_->FileName(file) + "' (id " +
                            std::to_string(file) + ") unreadable after " +
                            std::to_string(max_attempts) +
                            " attempts: " + last.message());
  }
  if (last.IsDataLoss() || last.IsCorruption()) {
    ++quarantined_pages_;
    if (opts_.quarantine != nullptr) opts_.quarantine->Report(file, page);
  }
  return last;
}

}  // namespace nmrs
