#ifndef NMRS_STORAGE_BUFFER_POOL_H_
#define NMRS_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/disk.h"
#include "storage/memory_budget.h"

namespace nmrs {

/// Cumulative buffer-pool counters. Composes with IoStats: the pool's
/// misses are exactly the page reads it charged to the disk, its hits are
/// page requests the disk never saw. `pinned_peak` is the high-water mark
/// of concurrently pinned frames — the pool's true working-set pressure.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t pinned_peak = 0;

  uint64_t Lookups() const { return hits + misses; }
  double HitRatio() const {
    return Lookups() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(Lookups());
  }

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    pinned_peak = pinned_peak > o.pinned_peak ? pinned_peak : o.pinned_peak;
    return *this;
  }

  std::string ToString() const;
};

struct BufferPoolOptions {
  /// Total frames across all shards. Drawn from MemoryBudget: the paper's
  /// memory fraction now *is* the cache size (docs/CACHING.md).
  uint64_t capacity_pages = 64;

  /// Shard count; clamped to [1, capacity_pages] at construction. Eight
  /// matches the query engine's default worker count so workers rarely
  /// contend on the same shard mutex.
  size_t num_shards = 8;

  static BufferPoolOptions FromBudget(const MemoryBudget& budget) {
    BufferPoolOptions o;
    o.capacity_pages = budget.pages;
    return o;
  }
};

/// Sharded LRU page cache over the *frozen base files* of a SimulatedDisk.
///
/// The pool sits between the reverse-skyline algorithms and the simulated
/// disk: reads routed through it (see PagedReader) are served from memory
/// on a hit and fetched — and charged — through the caller's own disk or
/// DiskView on a miss. Pages are keyed by (FileId, PageId) and hashed
/// across `num_shards` independent LRU lists, each behind its own mutex,
/// so all QueryEngine workers can share one pool without a global lock.
///
/// ## What is cacheable
///
/// Only files that existed on the base disk when the pool was constructed
/// (id < base->next_file_id()) are cached; `Caches()` is the test. Two
/// reasons: (a) those files are frozen by the engine's concurrency
/// contract, so cached copies can never go stale; (b) per-worker DiskView
/// scratch files from *different* views may share FileIds, so caching them
/// would alias distinct data. PagedReader forwards non-cacheable reads
/// straight to the disk.
///
/// ## Accounting
///
/// A miss fetch runs through the `via` disk passed by the caller — a
/// worker's DiskView in the engine — so the existing seq/rand
/// classification and per-view IoStats keep working unchanged; the pool
/// adds hit/miss/eviction counts on top (global `stats()` here, per-query
/// via PagedReader). The shard mutex is held across the miss fetch
/// (single-flight): when several workers want the same absent page, exactly
/// one disk read is charged and the rest hit the freshly loaded frame.
///
/// ## Pinning
///
/// Pin() returns an RAII handle giving stable access to the frame's bytes
/// without copying; pinned frames are skipped by eviction. If every frame
/// of the target shard is pinned, Pin() returns ResourceExhausted — callers
/// see a Status, not a crash — while ReadThrough() (the common path: pin,
/// copy out, unpin) falls back to an uncached read, since its own pins are
/// transient and a concurrent reader racing on a tiny shard must not fail.
class BufferPool {
 public:
  /// Per-call outcome, for per-query attribution by PagedReader.
  struct ReadEvent {
    bool hit = false;
    bool evicted = false;
  };

  /// `base` is the disk whose current files become cacheable; it must
  /// outlive the pool and those files must stay frozen (no WritePage /
  /// TruncateFile / DeleteFile) while the pool is in use.
  BufferPool(const SimulatedDisk* base, BufferPoolOptions opts);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  class PinnedPage;

  /// True if reads of `file` go through the pool (frozen base file).
  bool Caches(FileId file) const { return file < base_limit_; }

  /// Reads (file, page) through the cache into `out`: hit → memory copy,
  /// miss → one charged read via `via` + insert (evicting the shard's LRU
  /// unpinned frame when full). If the target shard is transiently full of
  /// pinned frames (concurrent readers racing on a tiny shard), the read
  /// degrades to a plain uncached read through `via` instead of failing —
  /// counted as a miss, nothing retained. `via` must resolve `file` to the
  /// same bytes as the base disk (it is the base itself or a DiskView over
  /// it).
  Status ReadThrough(SimulatedDisk* via, FileId file, PageId page, Page* out,
                     ReadEvent* ev = nullptr);

  /// Like ReadThrough but keeps the frame pinned and hands out a zero-copy
  /// view of it. The frame cannot be evicted until the handle is destroyed.
  StatusOr<PinnedPage> Pin(SimulatedDisk* via, FileId file, PageId page,
                           ReadEvent* ev = nullptr);

  /// Drops the resident frame for (file, page) if present and unpinned.
  /// Returns true if a frame was dropped. PagedReader uses this when a
  /// cached page fails checksum verification: the stale/corrupt frame is
  /// evicted so the follow-up read refetches from disk instead of serving
  /// the same bad bytes forever. Not counted as an LRU eviction.
  bool Evict(FileId file, PageId page);

  /// Pool-wide cumulative counters (sum over shards). Exact when quiescent,
  /// a consistent lower bound while readers are in flight.
  CacheStats stats() const;

  /// Frames currently resident (<= capacity_pages).
  uint64_t PagesCached() const;

  uint64_t capacity_pages() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  size_t page_size() const { return page_size_; }

 private:
  struct Frame {
    FileId file;
    PageId page;
    Page bytes;
    uint32_t pins = 0;
    Frame(FileId f, PageId p, size_t page_size)
        : file(f), page(p), bytes(page_size) {}
  };

  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used. std::list gives stable Frame addresses
    // for pinned handles and O(1) splice-to-front on hit.
    std::list<Frame> lru;
    std::unordered_map<uint64_t, std::list<Frame>::iterator> index;
    uint64_t capacity = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  static uint64_t Key(FileId file, PageId page) {
    // Mix so that consecutive pages of one file spread across shards —
    // a straight scan then touches all shard mutexes round-robin instead
    // of convoying on one.
    uint64_t k = (static_cast<uint64_t>(file) << 48) ^ page;
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    return k;
  }

  Shard& ShardFor(uint64_t key) { return shards_[key % shards_.size()]; }

  // Returns the frame for (file, page), loading it via `via` on a miss.
  // Acquires the shard mutex internally and holds it across the miss fetch
  // (single-flight). The returned frame has pins incremented; the caller
  // must UnpinFrame().
  StatusOr<Frame*> PinInternal(SimulatedDisk* via, FileId file, PageId page,
                               ReadEvent* ev);
  void UnpinFrame(Frame* frame);
  void NotePinned();

  const FileId base_limit_;
  const size_t page_size_;
  uint64_t capacity_ = 0;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> pinned_now_{0};
  std::atomic<uint64_t> pinned_peak_{0};
  // ReadThrough calls that found their shard all-pinned and fell back to an
  // uncached read (folded into stats().misses).
  std::atomic<uint64_t> bypass_misses_{0};

  friend class PinnedPage;

 public:
  /// RAII pin handle. Movable, not copyable; unpins on destruction. The
  /// referenced bytes stay valid and immutable for the handle's lifetime.
  class PinnedPage {
   public:
    PinnedPage() = default;
    PinnedPage(PinnedPage&& o) noexcept : pool_(o.pool_), frame_(o.frame_) {
      o.pool_ = nullptr;
      o.frame_ = nullptr;
    }
    PinnedPage& operator=(PinnedPage&& o) noexcept {
      if (this != &o) {
        Release();
        pool_ = o.pool_;
        frame_ = o.frame_;
        o.pool_ = nullptr;
        o.frame_ = nullptr;
      }
      return *this;
    }
    PinnedPage(const PinnedPage&) = delete;
    PinnedPage& operator=(const PinnedPage&) = delete;
    ~PinnedPage() { Release(); }

    bool valid() const { return frame_ != nullptr; }
    const Page& page() const { return frame_->bytes; }
    FileId file() const { return frame_->file; }
    PageId page_id() const { return frame_->page; }

    void Release() {
      if (pool_ != nullptr && frame_ != nullptr) pool_->UnpinFrame(frame_);
      pool_ = nullptr;
      frame_ = nullptr;
    }

   private:
    friend class BufferPool;
    PinnedPage(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}
    BufferPool* pool_ = nullptr;
    Frame* frame_ = nullptr;
  };
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_BUFFER_POOL_H_
