#ifndef NMRS_STORAGE_REPLICA_SET_H_
#define NMRS_STORAGE_REPLICA_SET_H_

#include <memory>
#include <vector>

#include "storage/disk.h"
#include "storage/disk_view.h"
#include "storage/fault_injection.h"
#include "storage/io_stats.h"

namespace nmrs {

/// Configuration for a ReplicaSet. `faults` may be:
///   - empty: every replica is clean (no FaultyDisk wrapping),
///   - size 1: a template — replica r faults with the template config under
///     seed ReplicaSeed(template.seed, replica_fault_seed_base, r),
///   - size num_replicas: fully explicit per-replica configs (a disabled
///     config leaves that replica clean).
struct ReplicaSetOptions {
  int num_replicas = 1;
  int num_workers = 1;
  std::vector<FaultConfig> faults;
  uint64_t replica_fault_seed_base = ResiliencePolicy{}.replica_fault_seed_base;
  FileId fault_ceiling = FaultyDisk::kNoFaultCeiling;
};

/// N storage replicas of one frozen base disk, for a pool of workers.
///
/// Physically there is one copy of the dataset bytes (every replica is a
/// DiskView over the same base — replicas hold identical data by
/// construction, exactly like real replication of a frozen dataset); what
/// differs per replica is the *fault process*: each replica r gets its own
/// FaultInjector whose seed is derived from the base seed, so replicas fail
/// independently and a page lost on one is (almost always) readable on
/// another. Replica 0 keeps the configured seed verbatim, so a 1-replica
/// set reproduces single-disk fault patterns bit-for-bit.
///
/// Per (worker, replica) there is a dedicated DiskView, giving every worker
/// its own disk arms and IO accounting on every replica — per-query IO
/// stays independent of what other workers do, replica reads included.
///
/// Thread-compatibility: construction and the const accessors are safe to
/// use from any thread once built; a given view(worker, r) is single-owner,
/// like any DiskView.
class ReplicaSet {
 public:
  /// `base` is borrowed and must outlive the set, and must stay
  /// structurally frozen (the DiskView contract).
  ReplicaSet(const SimulatedDisk* base, ReplicaSetOptions opts);

  int num_replicas() const { return opts_.num_replicas; }
  int num_workers() const { return opts_.num_workers; }

  /// True if any replica injects faults.
  bool faulted() const;

  /// Replica r's fault oracle, or nullptr if replica r is clean.
  const FaultInjector* injector(int replica) const;

  /// Worker `worker`'s view of replica `replica`.
  DiskView* view(int worker, int replica) const;

  /// Sum of worker `worker`'s IO across all of its replica views. Deltas of
  /// this are what "IO charged to worker w since ..." means once failover
  /// reads can land on any replica.
  IoStats WorkerStats(int worker) const;

  /// Builds the disk list one query task reads through: element r serves
  /// replica r, wrapped in a fresh FaultyDisk on fault stream `stream` when
  /// replica r injects faults (fresh wrapper per query == fault attempt
  /// counters restart per query, the PR 3 determinism contract). Wrappers
  /// are appended to *wrappers, which the caller keeps alive while the
  /// returned pointers are in use.
  std::vector<SimulatedDisk*> MakeQueryDisks(
      int worker, uint64_t stream,
      std::vector<std::unique_ptr<FaultyDisk>>* wrappers) const;

  /// The fault seed replica r runs under: r == 0 keeps `seed` verbatim
  /// (1-replica sets reproduce single-disk patterns exactly); r > 0 gets
  /// seed + base + r.
  static uint64_t ReplicaSeed(uint64_t seed, uint64_t base, int replica) {
    return replica == 0 ? seed : seed + base + static_cast<uint64_t>(replica);
  }

  /// Expands a single template config into n per-replica configs with
  /// derived seeds (see ReplicaSeed).
  static std::vector<FaultConfig> DeriveConfigs(const FaultConfig& tmpl,
                                                uint64_t seed_base, int n);

 private:
  ReplicaSetOptions opts_;
  // injectors_[r] is null when replica r is clean.
  std::vector<std::unique_ptr<FaultInjector>> injectors_;
  // views_[worker * num_replicas + replica].
  std::vector<std::unique_ptr<DiskView>> views_;
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_REPLICA_SET_H_
