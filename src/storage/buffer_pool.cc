#include "storage/buffer_pool.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace nmrs {

std::string CacheStats::ToString() const {
  std::ostringstream os;
  os << "CacheStats{hits=" << hits << ", misses=" << misses
     << ", evictions=" << evictions << ", pinned_peak=" << pinned_peak << "}";
  return os.str();
}

BufferPool::BufferPool(const SimulatedDisk* base, BufferPoolOptions opts)
    : base_limit_(base->next_file_id()), page_size_(base->page_size()) {
  capacity_ = std::max<uint64_t>(1, opts.capacity_pages);
  size_t shards = std::clamp<size_t>(opts.num_shards, 1,
                                     static_cast<size_t>(capacity_));
  shards_ = std::vector<Shard>(shards);
  // Split capacity across shards; remainder goes to the first shards so the
  // totals add up exactly to capacity_pages.
  const uint64_t per = capacity_ / shards;
  const uint64_t extra = capacity_ % shards;
  for (size_t i = 0; i < shards; ++i) {
    shards_[i].capacity = per + (i < extra ? 1 : 0);
  }
}

void BufferPool::NotePinned() {
  const uint64_t now = pinned_now_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t peak = pinned_peak_.load(std::memory_order_relaxed);
  while (now > peak && !pinned_peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

StatusOr<BufferPool::Frame*> BufferPool::PinInternal(SimulatedDisk* via,
                                                     FileId file, PageId page,
                                                     ReadEvent* ev) {
  NMRS_DCHECK(Caches(file)) << "pin of non-base file " << file;
  const uint64_t key = Key(file, page);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);

  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    ++shard.hits;
    if (ev != nullptr) ev->hit = true;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    Frame* frame = &*it->second;
    ++frame->pins;
    NotePinned();
    return frame;
  }

  // Miss. Make room first so a failed eviction never costs a disk read.
  if (shard.lru.size() >= shard.capacity) {
    auto victim = shard.lru.end();
    for (auto rit = shard.lru.rbegin(); rit != shard.lru.rend(); ++rit) {
      if (rit->pins == 0) {
        victim = std::prev(rit.base());
        break;
      }
    }
    if (victim == shard.lru.end()) {
      return Status::ResourceExhausted(
          "buffer pool shard full of pinned pages (capacity " +
          std::to_string(shard.capacity) + ")");
    }
    shard.index.erase(Key(victim->file, victim->page));
    shard.lru.erase(victim);
    ++shard.evictions;
    if (ev != nullptr) ev->evicted = true;
  }

  // Fetch while holding the shard mutex: concurrent requests for this page
  // queue here and find the frame resident, so exactly one read is charged
  // per distinct page (single-flight).
  shard.lru.emplace_front(file, page, page_size_);
  Frame* frame = &shard.lru.front();
  Status s = via->ReadPage(file, page, &frame->bytes);
  if (!s.ok()) {
    shard.lru.pop_front();
    return s;
  }
  shard.index.emplace(key, shard.lru.begin());
  ++shard.misses;
  ++frame->pins;
  NotePinned();
  return frame;
}

void BufferPool::UnpinFrame(Frame* frame) {
  Shard& shard = ShardFor(Key(frame->file, frame->page));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    NMRS_DCHECK(frame->pins > 0) << "unpin of unpinned frame";
    --frame->pins;
  }
  pinned_now_.fetch_sub(1, std::memory_order_relaxed);
}

Status BufferPool::ReadThrough(SimulatedDisk* via, FileId file, PageId page,
                               Page* out, ReadEvent* ev) {
  auto frame = PinInternal(via, file, page, ev);
  if (frame.ok()) {
    *out = (*frame)->bytes;
    UnpinFrame(*frame);
    return Status::OK();
  }
  if (!frame.status().IsResourceExhausted()) return frame.status();
  // Every frame of the shard is momentarily pinned (concurrent ReadThrough
  // pins are transient, so with a tiny per-shard capacity this is a normal
  // race, not a caller error). Degrade to an uncached read: correctness is
  // unaffected, the page just is not retained. Charged like any miss.
  NMRS_RETURN_IF_ERROR(via->ReadPage(file, page, out));
  bypass_misses_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

StatusOr<BufferPool::PinnedPage> BufferPool::Pin(SimulatedDisk* via,
                                                 FileId file, PageId page,
                                                 ReadEvent* ev) {
  auto frame = PinInternal(via, file, page, ev);
  if (!frame.ok()) return frame.status();
  return PinnedPage(this, *frame);
}

bool BufferPool::Evict(FileId file, PageId page) {
  const uint64_t key = Key(file, page);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  if (it->second->pins > 0) return false;  // someone is reading it
  shard.lru.erase(it->second);
  shard.index.erase(it);
  return true;
}

CacheStats BufferPool::stats() const {
  CacheStats s;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.evictions += shard.evictions;
  }
  s.misses += bypass_misses_.load(std::memory_order_relaxed);
  s.pinned_peak = pinned_peak_.load(std::memory_order_relaxed);
  return s;
}

uint64_t BufferPool::PagesCached() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.lru.size();
  }
  return n;
}

}  // namespace nmrs
