#ifndef NMRS_STORAGE_PAGED_READER_H_
#define NMRS_STORAGE_PAGED_READER_H_

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/fault_injection.h"

namespace nmrs {

/// Per-query read policy for PagedReader. Default-constructed == seed
/// behavior: no verification, retries configured but inert (a clean disk
/// never returns kUnavailable, so the loop exits on the first attempt).
struct PagedReaderOptions {
  /// Verify the CRC-32C footer (Page::VerifySeal) on every page read. Only
  /// valid for datasets written with checksums enabled
  /// (RSOptions::checksum_pages / PrepareOptions::checksum_pages).
  bool verify_checksums = false;

  /// Transient-failure retry budget and modeled backoff.
  RetryPolicy retry;

  /// Optional shared sink for pages this reader gives up on. Purely
  /// observational (never read back), so sharing one log across queries
  /// does not couple their behavior.
  QuarantineLog* quarantine = nullptr;
};

/// The per-query facade the algorithms read pages through — and, as of the
/// robustness layer, the single place where storage faults are absorbed or
/// surfaced (docs/ROBUSTNESS.md).
///
/// With default options and no pool attached, every read goes straight to
/// the disk — bit-identical to the seed behavior. With a pool, reads of
/// cacheable (frozen base) files are served through the shared BufferPool
/// while scratch-file reads bypass it; either way the disk passed here —
/// typically a worker's DiskView, possibly wrapped in a FaultyDisk — is
/// what gets charged for real IO.
///
/// ## Fault handling
///
/// - kUnavailable (transient) results are retried up to
///   RetryPolicy::max_attempts total attempts; each retry charges modeled
///   backoff to modeled_backoff_millis() (never wall time) and counts one
///   transient_retries. Exhausting the budget converts the failure to
///   kDataLoss.
/// - With verify_checksums on, every page that arrives is checked against
///   its CRC footer. A failure counts one checksum_failures and triggers a
///   single refetch — evicting the possibly-poisoned frame from the pool
///   first, so the shared cache heals instead of serving the same bad
///   bytes forever. A second failure surfaces as kCorruption.
/// - Pages this reader gives up on (kDataLoss / kCorruption) count one
///   quarantined_pages each and are reported to the QuarantineLog, if any.
///
/// Not thread-safe: one PagedReader per worker/query, like the DiskView it
/// wraps. The shared BufferPool behind it is what synchronizes.
class PagedReader {
 public:
  explicit PagedReader(SimulatedDisk* disk, BufferPool* pool = nullptr,
                       PagedReaderOptions opts = {})
      : disk_(disk), pool_(pool), opts_(opts) {}

  /// Reads one page, applying the retry / verify / quarantine policy.
  Status ReadPage(FileId file, PageId page, Page* out);

  SimulatedDisk* disk() const { return disk_; }
  BufferPool* pool() const { return pool_; }
  bool caching() const { return pool_ != nullptr; }
  const PagedReaderOptions& options() const { return opts_; }

  /// Cache traffic routed through *this reader* (per-query attribution;
  /// the pool's own stats() aggregate across all readers).
  const CacheStats& cache_stats() const { return stats_; }

  /// Modeled milliseconds spent in retry backoff by this reader. The
  /// algorithms add it to QueryStats::modeled_backoff_millis so retry
  /// storms show up in ResponseMillis without any wall-clock dependence.
  double modeled_backoff_millis() const { return modeled_backoff_millis_; }

  /// Folds this reader's cache and fault counters into `io` (the charged
  /// reads are already there via the disk).
  void FoldStatsInto(IoStats* io) const {
    io->cache_hits += stats_.hits;
    io->cache_misses += stats_.misses;
    io->cache_evictions += stats_.evictions;
    io->transient_retries += transient_retries_;
    io->checksum_failures += checksum_failures_;
    io->quarantined_pages += quarantined_pages_;
  }

 private:
  // One read through the pool-or-disk route, no fault policy applied.
  Status RawRead(FileId file, PageId page, Page* out);

  SimulatedDisk* disk_;
  BufferPool* pool_;
  PagedReaderOptions opts_;
  CacheStats stats_;
  uint64_t transient_retries_ = 0;
  uint64_t checksum_failures_ = 0;
  uint64_t quarantined_pages_ = 0;
  double modeled_backoff_millis_ = 0.0;
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_PAGED_READER_H_
