#ifndef NMRS_STORAGE_PAGED_READER_H_
#define NMRS_STORAGE_PAGED_READER_H_

#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/fault_injection.h"

namespace nmrs {

/// Per-query read policy for PagedReader. Default-constructed == seed
/// behavior: no verification, retries configured but inert (a clean disk
/// never returns kUnavailable, so the loop exits on the first attempt),
/// no failover replicas.
struct PagedReaderOptions {
  /// All file ids are failover-eligible (standalone use over frozen disks).
  static constexpr FileId kNoFailoverLimit = ~FileId{0};

  /// Verify the CRC-32C footer (Page::VerifySeal) on every page read. Only
  /// valid for datasets written with checksums enabled
  /// (RSOptions::checksum_pages / PrepareOptions::checksum_pages).
  bool verify_checksums = false;

  /// Transient-failure retry budget and modeled backoff, applied per
  /// replica: each replica gets the full budget before the reader fails
  /// over.
  RetryPolicy retry;

  /// Optional shared sink for pages this reader gives up on. Purely
  /// observational (never read back), so sharing one log across queries
  /// does not couple their behavior. With failover replicas attached, only
  /// pages *every* replica failed are reported — a page one replica lost
  /// but another served is not gone.
  QuarantineLog* quarantine = nullptr;

  /// Additional storage replicas of the same frozen base files, in replica
  /// order: replica 0 is the primary disk the reader was constructed over,
  /// failover[r-1] is replica r. Borrowed; must outlive the reader. Empty
  /// == no failover, byte-identical to the single-disk code path.
  std::vector<SimulatedDisk*> failover;

  /// Only files with id < failover_limit fail over; reads of files at or
  /// above it (per-query scratch spills, which exist only on the primary
  /// view) always take the single-disk path. The batch engine passes the
  /// frozen base disk's next_file_id().
  FileId failover_limit = kNoFailoverLimit;
};

/// The per-query facade the algorithms read pages through — and, as of the
/// robustness layer, the single place where storage faults are absorbed or
/// surfaced (docs/ROBUSTNESS.md).
///
/// With default options and no pool attached, every read goes straight to
/// the disk — bit-identical to the seed behavior. With a pool, reads of
/// cacheable (frozen base) files are served through the shared BufferPool
/// while scratch-file reads bypass it; either way the disk passed here —
/// typically a worker's DiskView, possibly wrapped in a FaultyDisk — is
/// what gets charged for real IO.
///
/// ## Fault handling
///
/// - kUnavailable (transient) results are retried up to
///   RetryPolicy::max_attempts total attempts; each retry charges modeled
///   backoff to modeled_backoff_millis() (never wall time) and counts one
///   transient_retries. Exhausting the budget converts the failure to
///   kDataLoss.
/// - With verify_checksums on, every page that arrives is checked against
///   its CRC footer. A failure counts one checksum_failures and triggers a
///   single refetch — evicting the possibly-poisoned frame from the pool
///   first, so the shared cache heals instead of serving the same bad
///   bytes forever. A second failure surfaces as kCorruption.
/// - With failover replicas attached, a page read that exhausted its
///   retry/verify policy on one replica (kDataLoss, kCorruption, or
///   persistent kUnavailable) is retried on replica (r+1) % N for that
///   page only, counting one `failovers`; the replica that served the page
///   becomes the preferred replica for subsequent reads. The pool frame is
///   evicted before each failover hop, so the shared cache heals from
///   whichever replica has good bytes.
/// - Pages this reader gives up on — all replicas failed, or the single
///   disk failed with no replicas attached — count one quarantined_pages
///   each and are reported to the QuarantineLog, if any.
///
/// Not thread-safe: one PagedReader per worker/query, like the DiskView it
/// wraps. The shared BufferPool behind it is what synchronizes.
class PagedReader {
 public:
  explicit PagedReader(SimulatedDisk* disk, BufferPool* pool = nullptr,
                       PagedReaderOptions opts = {})
      : disk_(disk), pool_(pool), opts_(std::move(opts)) {}

  /// Reads one page, applying the retry / verify / failover / quarantine
  /// policy.
  Status ReadPage(FileId file, PageId page, Page* out);

  SimulatedDisk* disk() const { return disk_; }
  BufferPool* pool() const { return pool_; }
  bool caching() const { return pool_ != nullptr; }
  const PagedReaderOptions& options() const { return opts_; }

  /// Cache traffic routed through *this reader* (per-query attribution;
  /// the pool's own stats() aggregate across all readers).
  const CacheStats& cache_stats() const { return stats_; }

  /// Modeled milliseconds spent in retry backoff by this reader. The
  /// algorithms add it to QueryStats::modeled_backoff_millis so retry
  /// storms show up in ResponseMillis without any wall-clock dependence.
  double modeled_backoff_millis() const { return modeled_backoff_millis_; }

  /// Page reads this reader served from a replica other than the one it
  /// started on (0 without failover replicas).
  uint64_t failovers() const { return failovers_; }

  /// Replica this reader currently prefers (0 = the primary disk).
  int current_replica() const { return current_replica_; }

  /// Folds this reader's cache, fault and failover counters into `io`. The
  /// primary disk's charged reads are already there (the algorithms delta
  /// its stats); reads this reader routed to failover replicas are not —
  /// they landed on the replicas' own disks — so their IO is captured here
  /// too.
  void FoldStatsInto(IoStats* io) const {
    io->cache_hits += stats_.hits;
    io->cache_misses += stats_.misses;
    io->cache_evictions += stats_.evictions;
    io->transient_retries += transient_retries_;
    io->checksum_failures += checksum_failures_;
    io->quarantined_pages += quarantined_pages_;
    io->failovers += failovers_;
    for (size_t r = 0; r < IoStats::kMaxReplicas; ++r) {
      io->replica_reads[r] += replica_reads_[r];
    }
    *io += failover_io_;
  }

 private:
  // One read through the pool-or-disk route, no fault policy applied.
  Status RawRead(SimulatedDisk* d, FileId file, PageId page, Page* out);

  // RawRead plus replica accounting. `replica` < 0 == single-disk mode (no
  // counting — keeps replicas=1 accounting bit-identical); replica 0 is the
  // primary (already charged by the caller's stats delta); replicas > 0
  // additionally capture the replica disk's IO delta into failover_io_.
  // `bypass_pool` skips the buffer pool: used after a verification failure
  // to get the authoritative bytes of THIS replica, immune to other
  // threads re-poisoning the shared frame between our evict and refetch.
  Status ReplicaRead(SimulatedDisk* d, int replica, FileId file, PageId page,
                     Page* out, bool bypass_pool = false);

  // The full retry + verify policy against one disk. Returns OK, or the
  // terminal failure for this replica (kDataLoss / kCorruption); never
  // quarantines — that is the caller's call, which knows whether other
  // replicas remain.
  Status ReadWithPolicy(SimulatedDisk* d, int replica, FileId file,
                        PageId page, Page* out);

  SimulatedDisk* disk_;
  BufferPool* pool_;
  PagedReaderOptions opts_;
  CacheStats stats_;
  uint64_t transient_retries_ = 0;
  uint64_t checksum_failures_ = 0;
  uint64_t quarantined_pages_ = 0;
  uint64_t failovers_ = 0;
  uint64_t replica_reads_[IoStats::kMaxReplicas] = {};
  IoStats failover_io_;
  int current_replica_ = 0;
  double modeled_backoff_millis_ = 0.0;
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_PAGED_READER_H_
