#ifndef NMRS_STORAGE_PAGED_READER_H_
#define NMRS_STORAGE_PAGED_READER_H_

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"

namespace nmrs {

/// Thin per-query facade the algorithms read pages through. With no pool
/// attached (the default), every read goes straight to the disk —
/// bit-identical to the seed behavior. With a pool, reads of cacheable
/// (frozen base) files are served through the shared BufferPool while
/// scratch-file reads still bypass it; either way the disk passed here —
/// typically a worker's DiskView — is what gets charged for real IO, so
/// the existing seq/rand accounting is untouched.
///
/// The reader also accumulates this query's own CacheStats, which the
/// algorithms fold into QueryStats::io at the end of the run. Not
/// thread-safe: one PagedReader per worker/query, like the DiskView it
/// wraps. The shared BufferPool behind it is what synchronizes.
class PagedReader {
 public:
  explicit PagedReader(SimulatedDisk* disk, BufferPool* pool = nullptr)
      : disk_(disk), pool_(pool) {}

  /// Reads one page, through the pool when (and only when) `file` is a
  /// frozen base file and a pool is attached.
  Status ReadPage(FileId file, PageId page, Page* out) {
    if (pool_ != nullptr && pool_->Caches(file)) {
      BufferPool::ReadEvent ev;
      Status s = pool_->ReadThrough(disk_, file, page, out, &ev);
      if (!s.ok()) return s;
      stats_.hits += ev.hit ? 1 : 0;
      stats_.misses += ev.hit ? 0 : 1;
      stats_.evictions += ev.evicted ? 1 : 0;
      return s;
    }
    return disk_->ReadPage(file, page, out);
  }

  SimulatedDisk* disk() const { return disk_; }
  BufferPool* pool() const { return pool_; }
  bool caching() const { return pool_ != nullptr; }

  /// Cache traffic routed through *this reader* (per-query attribution;
  /// the pool's own stats() aggregate across all readers).
  const CacheStats& cache_stats() const { return stats_; }

  /// Folds this reader's cache counters into `io` (hits/misses/evictions;
  /// the charged reads are already there via the disk).
  void AddCacheStatsTo(IoStats* io) const {
    io->cache_hits += stats_.hits;
    io->cache_misses += stats_.misses;
    io->cache_evictions += stats_.evictions;
  }

 private:
  SimulatedDisk* disk_;
  BufferPool* pool_;
  CacheStats stats_;
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_PAGED_READER_H_
