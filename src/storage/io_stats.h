#ifndef NMRS_STORAGE_IO_STATS_H_
#define NMRS_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace nmrs {

/// Counts page-granular disk traffic, split by access pattern. The paper
/// (§5.1) reports sequential and random IO separately because rotating media
/// make random IOs roughly an order of magnitude more expensive.
struct IoStats {
  uint64_t seq_reads = 0;
  uint64_t rand_reads = 0;
  uint64_t seq_writes = 0;
  uint64_t rand_writes = 0;

  uint64_t TotalReads() const { return seq_reads + rand_reads; }
  uint64_t TotalWrites() const { return seq_writes + rand_writes; }
  uint64_t TotalSequential() const { return seq_reads + seq_writes; }
  uint64_t TotalRandom() const { return rand_reads + rand_writes; }
  uint64_t Total() const { return TotalReads() + TotalWrites(); }

  IoStats& operator+=(const IoStats& o) {
    seq_reads += o.seq_reads;
    rand_reads += o.rand_reads;
    seq_writes += o.seq_writes;
    rand_writes += o.rand_writes;
    return *this;
  }

  IoStats operator-(const IoStats& o) const {
    IoStats r = *this;
    r.seq_reads -= o.seq_reads;
    r.rand_reads -= o.rand_reads;
    r.seq_writes -= o.seq_writes;
    r.rand_writes -= o.rand_writes;
    return r;
  }

  bool operator==(const IoStats& o) const = default;

  std::string ToString() const;
};

/// Converts page-IO counts into modeled milliseconds. Defaults approximate a
/// 2010-era 7200rpm disk with 32 KiB pages: ~0.4 ms/page streamed
/// (~80 MB/s), ~8 ms per random access (seek + rotational latency).
struct IoCostModel {
  double seq_ms_per_page = 0.4;
  double rand_ms_per_page = 8.0;

  double EstimateMillis(const IoStats& s) const {
    return seq_ms_per_page * static_cast<double>(s.TotalSequential()) +
           rand_ms_per_page * static_cast<double>(s.TotalRandom());
  }
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_IO_STATS_H_
