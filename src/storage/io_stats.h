#ifndef NMRS_STORAGE_IO_STATS_H_
#define NMRS_STORAGE_IO_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/check.h"

namespace nmrs {

/// Counts page-granular disk traffic, split by access pattern. The paper
/// (§5.1) reports sequential and random IO separately because rotating media
/// make random IOs roughly an order of magnitude more expensive.
struct IoStats {
  uint64_t seq_reads = 0;
  uint64_t rand_reads = 0;
  uint64_t seq_writes = 0;
  uint64_t rand_writes = 0;

  // Buffer-pool traffic (docs/CACHING.md). A cache hit is a page request
  // served from memory — it appears in *no* read counter above, which is the
  // whole point: only misses are charged to the disk. A cache miss is also
  // counted as a seq/rand read by the fetch it triggers, so
  // `cache_misses <= TotalReads()` and `TotalReads()` remains "pages the
  // disk actually served". All three stay 0 when no pool is attached.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;

  // Fault-handling traffic (docs/ROBUSTNESS.md). A transient retry is one
  // extra ReadPage attempt after a kUnavailable result — each retry's fetch
  // is also charged as a seq/rand read above, so read counters under faults
  // include retry traffic. A checksum failure is a page that arrived but
  // failed VerifySeal(); a quarantined page is one PagedReader gave up on
  // (retries exhausted or checksum failure persisted across a refetch). All
  // three stay 0 with fault injection and checksums off.
  uint64_t transient_retries = 0;
  uint64_t checksum_failures = 0;
  uint64_t quarantined_pages = 0;

  // Replica-failover traffic (docs/ROBUSTNESS.md). `failovers` counts page
  // reads that exhausted their retry/verify policy on one replica and were
  // served by another; `replica_reads[r]` counts the physical read attempts
  // PagedReader routed to replica r of its replica list (0 = the primary it
  // was constructed over). All stay 0 when no failover replicas are
  // attached (ResiliencePolicy::replicas == 1), so single-replica runs keep
  // the pre-failover accounting bit-for-bit.
  static constexpr size_t kMaxReplicas = 8;
  uint64_t failovers = 0;
  std::array<uint64_t, kMaxReplicas> replica_reads{};

  uint64_t ReplicaReadsTotal() const {
    uint64_t n = 0;
    for (uint64_t r : replica_reads) n += r;
    return n;
  }

  uint64_t TotalReads() const { return seq_reads + rand_reads; }
  uint64_t TotalWrites() const { return seq_writes + rand_writes; }
  uint64_t TotalSequential() const { return seq_reads + seq_writes; }
  uint64_t TotalRandom() const { return rand_reads + rand_writes; }
  uint64_t Total() const { return TotalReads() + TotalWrites(); }

  /// Fraction of pool-routed page requests served from memory (0 when the
  /// run never touched a pool).
  double CacheHitRatio() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }

  IoStats& operator+=(const IoStats& o) {
    seq_reads += o.seq_reads;
    rand_reads += o.rand_reads;
    seq_writes += o.seq_writes;
    rand_writes += o.rand_writes;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    transient_retries += o.transient_retries;
    checksum_failures += o.checksum_failures;
    quarantined_pages += o.quarantined_pages;
    failovers += o.failovers;
    for (size_t r = 0; r < kMaxReplicas; ++r) {
      replica_reads[r] += o.replica_reads[r];
    }
    return *this;
  }

  /// Difference of two cumulative counters ("IO since snapshot `o`"). Every
  /// counter of `o` must be <= the corresponding counter of *this; mixing
  /// snapshots of different disks (or of one disk across a ResetStats)
  /// silently wraps around, so debug builds abort instead.
  IoStats operator-(const IoStats& o) const {
    NMRS_DCHECK(o.seq_reads <= seq_reads) << "seq_reads underflow";
    NMRS_DCHECK(o.rand_reads <= rand_reads) << "rand_reads underflow";
    NMRS_DCHECK(o.seq_writes <= seq_writes) << "seq_writes underflow";
    NMRS_DCHECK(o.rand_writes <= rand_writes) << "rand_writes underflow";
    NMRS_DCHECK(o.cache_hits <= cache_hits) << "cache_hits underflow";
    NMRS_DCHECK(o.cache_misses <= cache_misses) << "cache_misses underflow";
    NMRS_DCHECK(o.cache_evictions <= cache_evictions)
        << "cache_evictions underflow";
    NMRS_DCHECK(o.transient_retries <= transient_retries)
        << "transient_retries underflow";
    NMRS_DCHECK(o.checksum_failures <= checksum_failures)
        << "checksum_failures underflow";
    NMRS_DCHECK(o.quarantined_pages <= quarantined_pages)
        << "quarantined_pages underflow";
    NMRS_DCHECK(o.failovers <= failovers) << "failovers underflow";
    for (size_t i = 0; i < kMaxReplicas; ++i) {
      NMRS_DCHECK(o.replica_reads[i] <= replica_reads[i])
          << "replica_reads underflow";
    }
    IoStats r = *this;
    r.seq_reads -= o.seq_reads;
    r.rand_reads -= o.rand_reads;
    r.seq_writes -= o.seq_writes;
    r.rand_writes -= o.rand_writes;
    r.cache_hits -= o.cache_hits;
    r.cache_misses -= o.cache_misses;
    r.cache_evictions -= o.cache_evictions;
    r.transient_retries -= o.transient_retries;
    r.checksum_failures -= o.checksum_failures;
    r.quarantined_pages -= o.quarantined_pages;
    r.failovers -= o.failovers;
    for (size_t i = 0; i < kMaxReplicas; ++i) {
      r.replica_reads[i] -= o.replica_reads[i];
    }
    return r;
  }

  bool operator==(const IoStats& o) const = default;

  std::string ToString() const;
};

/// Thread-safe IoStats accumulator: many threads Add() their per-query
/// deltas concurrently (relaxed atomics — only the totals matter, not any
/// ordering between contributions); Snapshot() is exact once the writers
/// have been joined, and a monotonic lower bound while they still run.
class ConcurrentIoStats {
 public:
  void Add(const IoStats& s) {
    seq_reads_.fetch_add(s.seq_reads, std::memory_order_relaxed);
    rand_reads_.fetch_add(s.rand_reads, std::memory_order_relaxed);
    seq_writes_.fetch_add(s.seq_writes, std::memory_order_relaxed);
    rand_writes_.fetch_add(s.rand_writes, std::memory_order_relaxed);
    cache_hits_.fetch_add(s.cache_hits, std::memory_order_relaxed);
    cache_misses_.fetch_add(s.cache_misses, std::memory_order_relaxed);
    cache_evictions_.fetch_add(s.cache_evictions, std::memory_order_relaxed);
    transient_retries_.fetch_add(s.transient_retries,
                                 std::memory_order_relaxed);
    checksum_failures_.fetch_add(s.checksum_failures,
                                 std::memory_order_relaxed);
    quarantined_pages_.fetch_add(s.quarantined_pages,
                                 std::memory_order_relaxed);
    failovers_.fetch_add(s.failovers, std::memory_order_relaxed);
    for (size_t r = 0; r < IoStats::kMaxReplicas; ++r) {
      replica_reads_[r].fetch_add(s.replica_reads[r],
                                  std::memory_order_relaxed);
    }
  }

  IoStats Snapshot() const {
    IoStats s;
    s.seq_reads = seq_reads_.load(std::memory_order_relaxed);
    s.rand_reads = rand_reads_.load(std::memory_order_relaxed);
    s.seq_writes = seq_writes_.load(std::memory_order_relaxed);
    s.rand_writes = rand_writes_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
    s.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
    s.transient_retries = transient_retries_.load(std::memory_order_relaxed);
    s.checksum_failures = checksum_failures_.load(std::memory_order_relaxed);
    s.quarantined_pages = quarantined_pages_.load(std::memory_order_relaxed);
    s.failovers = failovers_.load(std::memory_order_relaxed);
    for (size_t r = 0; r < IoStats::kMaxReplicas; ++r) {
      s.replica_reads[r] = replica_reads_[r].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::atomic<uint64_t> seq_reads_{0};
  std::atomic<uint64_t> rand_reads_{0};
  std::atomic<uint64_t> seq_writes_{0};
  std::atomic<uint64_t> rand_writes_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> cache_evictions_{0};
  std::atomic<uint64_t> transient_retries_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::atomic<uint64_t> quarantined_pages_{0};
  std::atomic<uint64_t> failovers_{0};
  std::array<std::atomic<uint64_t>, IoStats::kMaxReplicas> replica_reads_{};
};

/// Converts page-IO counts into modeled milliseconds. Defaults approximate a
/// 2010-era 7200rpm disk with 32 KiB pages: ~0.4 ms/page streamed
/// (~80 MB/s), ~8 ms per random access (seek + rotational latency).
struct IoCostModel {
  double seq_ms_per_page = 0.4;
  double rand_ms_per_page = 8.0;

  double EstimateMillis(const IoStats& s) const {
    return seq_ms_per_page * static_cast<double>(s.TotalSequential()) +
           rand_ms_per_page * static_cast<double>(s.TotalRandom());
  }
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_IO_STATS_H_
