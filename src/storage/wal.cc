#include "storage/wal.h"

#include <cstring>
#include <utility>

namespace nmrs {
namespace {

constexpr size_t kCountHeaderBytes = sizeof(uint32_t);

template <typename T>
void PutLE(Page* page, size_t* off, T v) {
  std::memcpy(page->data() + *off, &v, sizeof(T));
  *off += sizeof(T);
}

template <typename T>
bool GetLE(const Page& page, size_t* off, size_t limit, T* v) {
  if (*off + sizeof(T) > limit) return false;
  std::memcpy(v, page.data() + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

void EncodeRecord(const WalRecord& rec, Page* page, size_t* off) {
  PutLE<uint8_t>(page, off, static_cast<uint8_t>(rec.type));
  PutLE<uint64_t>(page, off, rec.key);
  PutLE<uint32_t>(page, off, static_cast<uint32_t>(rec.values.size()));
  for (uint32_t v : rec.values) PutLE<uint32_t>(page, off, v);
  PutLE<uint32_t>(page, off, static_cast<uint32_t>(rec.numerics.size()));
  for (double d : rec.numerics) PutLE<double>(page, off, d);
}

}  // namespace

size_t WalRecord::EncodedBytes() const {
  return sizeof(uint8_t) + sizeof(uint64_t) + sizeof(uint32_t) +
         values.size() * sizeof(uint32_t) + sizeof(uint32_t) +
         numerics.size() * sizeof(double);
}

WalWriter::WalWriter(SimulatedDisk* disk, std::string name)
    : disk_(disk),
      file_(disk->CreateFile(std::move(name))),
      tail_(disk->page_size()),
      tail_used_(kCountHeaderBytes) {}

Status WalWriter::Append(const WalRecord& rec) {
  if (rec.type == WalRecord::Type::kDelete &&
      (!rec.values.empty() || !rec.numerics.empty())) {
    return Status::InvalidArgument("WAL delete record carries a payload");
  }
  const size_t capacity = tail_.size() - Page::kChecksumFooterBytes;
  const size_t need = rec.EncodedBytes();
  if (kCountHeaderBytes + need > capacity) {
    return Status::InvalidArgument("WAL record larger than a page");
  }
  if (tail_used_ + need > capacity) {
    // Tail is full (and already durable from the previous Append): start a
    // fresh page. The old tail is never touched again, which is why a tear
    // can only ever be at the file's last page.
    tail_ = Page(disk_->page_size());
    tail_on_disk_ = false;
    tail_records_ = 0;
    tail_used_ = kCountHeaderBytes;
  }
  size_t off = tail_used_;
  EncodeRecord(rec, &tail_, &off);
  tail_used_ = off;
  ++tail_records_;
  size_t count_off = 0;
  PutLE<uint32_t>(&tail_, &count_off, tail_records_);
  tail_.Seal();
  if (tail_on_disk_) {
    NMRS_RETURN_IF_ERROR(
        disk_->WritePage(file_, disk_->NumPages(file_) - 1, tail_));
  } else {
    NMRS_RETURN_IF_ERROR(disk_->AppendPage(file_, tail_).status());
    tail_on_disk_ = true;
  }
  ++num_records_;
  return Status::OK();
}

StatusOr<WalReplay> ReplayWal(SimulatedDisk* disk, FileId file) {
  NMRS_ASSIGN_OR_RETURN(const uint64_t num_pages, disk->PagesOf(file));
  WalReplay out;
  Page page(disk->page_size());
  for (uint64_t p = 0; p < num_pages; ++p) {
    NMRS_RETURN_IF_ERROR(disk->ReadPage(file, p, &page));
    if (!page.VerifySeal()) {
      if (p + 1 == num_pages) {
        // Torn tail: the crash hit mid-write of the last page. Everything
        // before it is durable; the records the torn page would have held
        // were never acknowledged.
        out.torn_tail = true;
        return out;
      }
      return Status::Corruption("WAL page " + std::to_string(p) + " of " +
                                disk->FileName(file) +
                                " failed checksum verification");
    }
    const size_t limit = page.size() - Page::kChecksumFooterBytes;
    size_t off = 0;
    uint32_t count = 0;
    if (!GetLE(page, &off, limit, &count)) {
      return Status::Corruption("WAL page too small for record count");
    }
    for (uint32_t r = 0; r < count; ++r) {
      WalRecord rec;
      uint8_t type = 0;
      uint32_t n = 0;
      if (!GetLE(page, &off, limit, &type) ||
          !GetLE(page, &off, limit, &rec.key) ||
          !GetLE(page, &off, limit, &n)) {
        return Status::Corruption("WAL record framing truncated");
      }
      if (type != static_cast<uint8_t>(WalRecord::Type::kInsert) &&
          type != static_cast<uint8_t>(WalRecord::Type::kDelete)) {
        return Status::Corruption("WAL record has unknown type " +
                                  std::to_string(type));
      }
      rec.type = static_cast<WalRecord::Type>(type);
      rec.values.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!GetLE(page, &off, limit, &rec.values[i])) {
          return Status::Corruption("WAL record values truncated");
        }
      }
      if (!GetLE(page, &off, limit, &n)) {
        return Status::Corruption("WAL record framing truncated");
      }
      rec.numerics.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!GetLE(page, &off, limit, &rec.numerics[i])) {
          return Status::Corruption("WAL record numerics truncated");
        }
      }
      out.records.push_back(std::move(rec));
    }
  }
  return out;
}

}  // namespace nmrs
