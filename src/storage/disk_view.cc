#include "storage/disk_view.h"

#include "common/check.h"

namespace nmrs {

DiskView::DiskView(const SimulatedDisk* base)
    : SimulatedDisk(base->page_size(), base->next_file_id()),
      base_(base),
      base_limit_(base->next_file_id()) {
  NMRS_CHECK(base != nullptr);
}

Status DiskView::ReadOnlyError(FileId file) const {
  return Status::FailedPrecondition(
      "file id " + std::to_string(file) +
      " belongs to the base disk and is read-only through this view");
}

Status DiskView::ReadPage(FileId file, PageId page, Page* out) {
  NMRS_CHECK(out != nullptr);
  if (!IsBaseFile(file)) return SimulatedDisk::ReadPage(file, page, out);
  const Page* p = base_->PeekPage(file, page);
  if (p == nullptr) {
    if (!base_->FileExists(file)) {
      return Status::NotFound("no such file id " + std::to_string(file) +
                              " (reading page " + std::to_string(page) + ")");
    }
    return Status::OutOfRange("read past end of base file '" +
                              base_->FileName(file) + "' (id " +
                              std::to_string(file) + "): page " +
                              std::to_string(page) + " of " +
                              std::to_string(base_->NumPages(file)));
  }
  ChargeRead(file, page);
  *out = *p;
  return Status::OK();
}

Status DiskView::WritePage(FileId file, PageId page, const Page& in) {
  if (IsBaseFile(file)) return ReadOnlyError(file);
  return SimulatedDisk::WritePage(file, page, in);
}

Status DiskView::DeleteFile(FileId file) {
  if (IsBaseFile(file)) return ReadOnlyError(file);
  return SimulatedDisk::DeleteFile(file);
}

Status DiskView::TruncateFile(FileId file) {
  if (IsBaseFile(file)) return ReadOnlyError(file);
  return SimulatedDisk::TruncateFile(file);
}

uint64_t DiskView::NumPages(FileId file) const {
  if (IsBaseFile(file)) return base_->NumPages(file);
  return SimulatedDisk::NumPages(file);
}

bool DiskView::FileExists(FileId file) const {
  if (IsBaseFile(file)) return base_->FileExists(file);
  return SimulatedDisk::FileExists(file);
}

StatusOr<uint64_t> DiskView::PagesOf(FileId file) const {
  if (IsBaseFile(file)) return base_->PagesOf(file);
  return SimulatedDisk::PagesOf(file);
}

std::string DiskView::FileName(FileId file) const {
  if (IsBaseFile(file)) return base_->FileName(file);
  return SimulatedDisk::FileName(file);
}

uint64_t DiskView::TotalPages() const {
  return base_->TotalPages() + SimulatedDisk::TotalPages();
}

}  // namespace nmrs
