#ifndef NMRS_STORAGE_DISK_VIEW_H_
#define NMRS_STORAGE_DISK_VIEW_H_

#include <string>

#include "storage/disk.h"

namespace nmrs {

/// A per-worker view of a shared base SimulatedDisk: reads of the base
/// disk's files are served from the base's pages (zero-copy storage) but
/// charged to *this view's* IoStats and disk-arm position, and scratch
/// files created through the view live in view-private storage. Each view
/// therefore models one worker owning its own spindle over a shared
/// immutable dataset — per-query IO accounting stays exactly what a
/// single-threaded run would charge, independent of what other workers do.
///
/// Base files keep their ids: a StoredDataset prepared against the base
/// disk can be re-wrapped over a view unchanged. View-local scratch ids
/// start past the base's id range, so the two never collide.
///
/// ## Concurrency contract
///
/// Any number of DiskViews may read the same base concurrently, because a
/// view never mutates the base (not even its stats). The base must be
/// structurally frozen while views exist: no CreateFile / WritePage /
/// DeleteFile / TruncateFile on it. A single view is NOT itself
/// thread-safe for writes — it is meant to be owned by one worker thread.
///
/// Write operations addressed at base files fail with FailedPrecondition.
class DiskView final : public SimulatedDisk {
 public:
  /// `base` is borrowed and must outlive the view.
  explicit DiskView(const SimulatedDisk* base);

  /// The shared disk this view reads through.
  const SimulatedDisk* base() const { return base_; }

  Status ReadPage(FileId file, PageId page, Page* out) override;
  Status WritePage(FileId file, PageId page, const Page& in) override;
  Status DeleteFile(FileId file) override;
  Status TruncateFile(FileId file) override;
  uint64_t NumPages(FileId file) const override;
  bool FileExists(FileId file) const override;
  StatusOr<uint64_t> PagesOf(FileId file) const override;
  std::string FileName(FileId file) const override;

  /// Base pages plus view-local scratch pages.
  uint64_t TotalPages() const override;

 private:
  bool IsBaseFile(FileId file) const { return file < base_limit_; }
  Status ReadOnlyError(FileId file) const;

  const SimulatedDisk* base_;
  FileId base_limit_;  // ids below this belong to the base disk
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_DISK_VIEW_H_
