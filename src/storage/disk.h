#ifndef NMRS_STORAGE_DISK_H_
#define NMRS_STORAGE_DISK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/io_stats.h"

namespace nmrs {

/// Identifies a file living on a SimulatedDisk.
using FileId = uint32_t;
/// Page index within a file.
using PageId = uint64_t;

inline constexpr size_t kDefaultPageSize = 32 * 1024;  // paper §5.1: 32 KB

/// A fixed-size disk page. Pages are the unit of all IO accounting.
class Page {
 public:
  explicit Page(size_t size) : bytes_(size, 0) {}

  size_t size() const { return bytes_.size(); }
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

  uint8_t& operator[](size_t i) { return bytes_[i]; }
  uint8_t operator[](size_t i) const { return bytes_[i]; }

 private:
  std::vector<uint8_t> bytes_;
};

/// SimulatedDisk models a single spindle holding many files. Every page read
/// or write is classified as *sequential* (it targets the page immediately
/// after the previously accessed page of the same file) or *random*
/// (anything else, including switching files). This reproduces the IO cost
/// model of the paper without needing a real disk: algorithms are charged
/// page IOs, and IoCostModel converts counts to modeled time.
///
/// Thread-compatible (external synchronization required); the reproduction
/// pipeline is single-threaded per query, matching the paper.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(size_t page_size = kDefaultPageSize);

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  size_t page_size() const { return page_size_; }

  /// Creates an empty file and returns its id.
  FileId CreateFile(std::string name);

  /// Deletes a file and frees its pages. Invalidates the id.
  Status DeleteFile(FileId file);

  /// Removes all pages of `file` but keeps the id valid (used to recycle
  /// scratch files between queries).
  Status TruncateFile(FileId file);

  /// Number of pages currently in `file` (0 for unknown ids).
  uint64_t NumPages(FileId file) const;

  bool FileExists(FileId file) const;

  /// Reads page `page` of `file` into `out` (resized/overwritten).
  /// Charges one sequential or random read.
  Status ReadPage(FileId file, PageId page, Page* out);

  /// Writes `in` as page `page` of `file`. `page` may be at most one past the
  /// current end (append). Charges one sequential or random write.
  Status WritePage(FileId file, PageId page, const Page& in);

  /// Appends `in` to `file`, returns its page id.
  StatusOr<PageId> AppendPage(FileId file, const Page& in);

  /// Cumulative IO since construction (or last ResetStats).
  const IoStats& stats() const { return stats_; }
  void ResetStats();

  /// Forgets the arm position so that the next IO is classified random.
  /// Called by algorithms at phase boundaries to model a cold start.
  void InvalidateArmPosition();

  /// Total pages across all files (dataset size measurement).
  uint64_t TotalPages() const;

 private:
  struct File {
    std::string name;
    std::vector<Page> pages;
  };

  // True if accessing (file, page) continues the previous access.
  bool IsSequential(FileId file, PageId page) const;
  void Touch(FileId file, PageId page);

  size_t page_size_;
  std::unordered_map<FileId, File> files_;
  FileId next_file_id_ = 0;
  IoStats stats_;

  // Disk-arm position: last (file, page) touched.
  bool has_position_ = false;
  FileId last_file_ = 0;
  PageId last_page_ = 0;
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_DISK_H_
