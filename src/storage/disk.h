#ifndef NMRS_STORAGE_DISK_H_
#define NMRS_STORAGE_DISK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/io_stats.h"

namespace nmrs {

/// Identifies a file living on a SimulatedDisk.
using FileId = uint32_t;
/// Page index within a file.
using PageId = uint64_t;

inline constexpr size_t kDefaultPageSize = 32 * 1024;  // paper §5.1: 32 KB

/// A fixed-size disk page. Pages are the unit of all IO accounting.
class Page {
 public:
  /// Size of the optional CRC-32C footer written by Seal(). Writers that
  /// seal pages must leave the last kChecksumFooterBytes of the page free
  /// (RowCodec reserves them when checksums are enabled).
  static constexpr size_t kChecksumFooterBytes = 4;

  explicit Page(size_t size) : bytes_(size, 0) {}

  size_t size() const { return bytes_.size(); }
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

  uint8_t& operator[](size_t i) { return bytes_[i]; }
  uint8_t operator[](size_t i) const { return bytes_[i]; }

  /// Stamps the CRC-32C of bytes [0, size-4) into the last 4 bytes
  /// (little-endian). Requires size() >= kChecksumFooterBytes.
  void Seal();

  /// Recomputes the CRC over bytes [0, size-4) and compares it against the
  /// footer written by Seal(). Returns false on mismatch (the page was
  /// corrupted, or was never sealed).
  bool VerifySeal() const;

 private:
  std::vector<uint8_t> bytes_;
};

/// SimulatedDisk models a single spindle holding many files. Every page read
/// or write is classified as *sequential* (it targets the page immediately
/// after the previously accessed page of the same file) or *random*
/// (anything else, including switching files). This reproduces the IO cost
/// model of the paper without needing a real disk: algorithms are charged
/// page IOs, and IoCostModel converts counts to modeled time.
///
/// ## Concurrency contract
///
/// The page-read path is safe for concurrent readers: any number of threads
/// may call ReadPage / PeekPage / NumPages / FileExists / TotalPages
/// simultaneously. The mutable state touched by reads — the IoStats
/// counters and the disk-arm position used for sequential/random
/// classification — is guarded by an internal mutex, so concurrent reads
/// never corrupt the accounting (their seq/rand split depends on the
/// interleaving, as it would on real hardware; per-thread determinism needs
/// a per-thread DiskView, see disk_view.h).
///
/// Everything that mutates file *structure* — CreateFile, DeleteFile,
/// TruncateFile, WritePage, AppendPage, ResetStats — requires external
/// serialization: no other call (reads included) may run concurrently with
/// it. The parallel query engine obeys this by freezing the base disk after
/// PrepareDataset and giving each worker a private DiskView for scratch
/// writes; stats() may be read while concurrent reads are in flight but is
/// only exact once the readers are quiescent.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(size_t page_size = kDefaultPageSize);
  virtual ~SimulatedDisk() = default;

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  size_t page_size() const { return page_size_; }

  /// Creates an empty file and returns its id.
  virtual FileId CreateFile(std::string name);

  /// Deletes a file and frees its pages. Invalidates the id.
  virtual Status DeleteFile(FileId file);

  /// Removes all pages of `file` but keeps the id valid (used to recycle
  /// scratch files between queries).
  virtual Status TruncateFile(FileId file);

  /// Number of pages currently in `file` (0 for unknown ids).
  virtual uint64_t NumPages(FileId file) const;

  virtual bool FileExists(FileId file) const;

  /// Reads page `page` of `file` into `out` (resized/overwritten).
  /// Charges one sequential or random read.
  virtual Status ReadPage(FileId file, PageId page, Page* out);

  /// Writes `in` as page `page` of `file`. `page` may be at most one past the
  /// current end (append). Charges one sequential or random write.
  virtual Status WritePage(FileId file, PageId page, const Page& in);

  /// Appends `in` to `file`, returns its page id.
  StatusOr<PageId> AppendPage(FileId file, const Page& in);

  /// Const access to page bytes *without* IO accounting — the hook DiskView
  /// uses to serve reads of a shared base disk while charging its own
  /// per-view stats. Returns null for unknown files / out-of-range pages.
  const Page* PeekPage(FileId file, PageId page) const;

  /// Cumulative IO since construction (or last ResetStats). Virtual so
  /// decorators (FaultyDisk) can expose the wrapped disk's accounting.
  virtual const IoStats& stats() const { return stats_; }
  virtual void ResetStats();

  /// Forgets the arm position so that the next IO is classified random.
  /// Called by algorithms at phase boundaries to model a cold start.
  virtual void InvalidateArmPosition();

  /// NumPages with existence reporting: kNotFound for unknown ids instead
  /// of a silent 0 (callers that must distinguish "empty file" from "no
  /// such file" use this; NumPages stays the cheap unchecked form).
  virtual StatusOr<uint64_t> PagesOf(FileId file) const;

  /// Human-readable name of `file`, or "<unknown file N>" if the id does
  /// not exist. Used to build error messages.
  virtual std::string FileName(FileId file) const;

  /// Total pages across all files (dataset size measurement).
  virtual uint64_t TotalPages() const;

  /// First file id that CreateFile has not yet handed out; ids below this
  /// bound identify this disk's existing (or deleted) files.
  FileId next_file_id() const { return next_file_id_; }

 protected:
  /// Seeds CreateFile ids at `first_file_id` — DiskView starts its local
  /// scratch ids past the base disk's range so base ids stay addressable
  /// through the view.
  SimulatedDisk(size_t page_size, FileId first_file_id);

  /// Classifies an access to (file, page) against the current arm position,
  /// charges it to the stats, and advances the arm. Thread-safe.
  void ChargeRead(FileId file, PageId page);
  void ChargeWrite(FileId file, PageId page);

 private:
  struct File {
    std::string name;
    std::vector<Page> pages;
  };

  // True if accessing (file, page) continues the previous access.
  // Caller must hold arm_mu_.
  bool IsSequentialLocked(FileId file, PageId page) const;

  size_t page_size_;
  std::unordered_map<FileId, File> files_;
  FileId next_file_id_ = 0;

  // Guards stats_ and the disk-arm position: the only state mutated by the
  // read path (see the concurrency contract above).
  mutable std::mutex arm_mu_;
  IoStats stats_;

  // Disk-arm position: last (file, page) touched.
  bool has_position_ = false;
  FileId last_file_ = 0;
  PageId last_page_ = 0;
};

}  // namespace nmrs

#endif  // NMRS_STORAGE_DISK_H_
