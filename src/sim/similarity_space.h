#ifndef NMRS_SIM_SIMILARITY_SPACE_H_
#define NMRS_SIM_SIMILARITY_SPACE_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/dissimilarity_matrix.h"
#include "sim/numeric_dissimilarity.h"

namespace nmrs {

/// Per-attribute dissimilarity registry for a dataset: attribute i is either
/// categorical (dense non-metric matrix over its domain) or numeric (scaled
/// absolute difference). Reverse-skyline algorithms read distances through
/// this object only.
class SimilaritySpace {
 public:
  SimilaritySpace() = default;

  /// Appends a categorical attribute backed by `matrix`.
  void AddCategorical(DissimilarityMatrix matrix) {
    attrs_.push_back(Attr{std::move(matrix), NumericDissimilarity(), false});
  }

  /// Appends a numeric attribute. Numeric attrs carry no matrix at all
  /// (nullopt, not a placeholder allocation): Cardinality()/CatDist()/
  /// matrix() are categorical-only and DCHECK accordingly.
  void AddNumeric(NumericDissimilarity d) {
    attrs_.push_back(Attr{std::nullopt, d, true});
  }

  size_t num_attributes() const { return attrs_.size(); }

  bool IsNumeric(AttrId attr) const {
    NMRS_DCHECK(attr < attrs_.size());
    return attrs_[attr].is_numeric;
  }

  /// Domain size of a categorical attribute (QueryDistanceTable sizes its
  /// per-attribute rows from this).
  size_t Cardinality(AttrId attr) const {
    NMRS_DCHECK(attr < attrs_.size() && !attrs_[attr].is_numeric);
    return attrs_[attr].matrix->cardinality();
  }

  /// Categorical dissimilarity d_attr(a, b).
  double CatDist(AttrId attr, ValueId a, ValueId b) const {
    NMRS_DCHECK(attr < attrs_.size() && !attrs_[attr].is_numeric);
    return attrs_[attr].matrix->Dist(a, b);
  }

  /// Numeric dissimilarity d_attr(x, y).
  double NumDist(AttrId attr, double x, double y) const {
    NMRS_DCHECK(attr < attrs_.size() && attrs_[attr].is_numeric);
    return attrs_[attr].numeric.Dist(x, y);
  }

  const DissimilarityMatrix& matrix(AttrId attr) const {
    NMRS_DCHECK(attr < attrs_.size() && !attrs_[attr].is_numeric);
    return *attrs_[attr].matrix;
  }

  const NumericDissimilarity& numeric(AttrId attr) const {
    NMRS_DCHECK(attr < attrs_.size() && attrs_[attr].is_numeric);
    return attrs_[attr].numeric;
  }

  /// Grows categorical attribute `attr`'s domain by one value with the
  /// given distances to/from the existing values (see
  /// DissimilarityMatrix::AppendValue). O(k^2) for that one attribute —
  /// the append-only alternative to rebuilding the whole space when a
  /// freshly inserted object carries a never-seen domain value. Returns
  /// the new ValueId. The space must not be shared with a running query.
  ///
  /// Numeric attributes never need this: NumericDissimilarity is a pure
  /// function of the two doubles, and Dataset bucketizers clamp
  /// out-of-range numerics into the edge buckets, so numeric inserts are
  /// O(1) with no re-derivation at all.
  ValueId AppendCategoricalValue(AttrId attr, const std::vector<double>& to_new,
                                 const std::vector<double>& from_new,
                                 double self = 0.0) {
    NMRS_DCHECK(attr < attrs_.size() && !attrs_[attr].is_numeric);
    return attrs_[attr].matrix->AppendValue(to_new, from_new, self);
  }

  /// Convenience for the common object-insert flow: for each categorical
  /// attribute whose value id in `values` is exactly one past the current
  /// domain, grows that domain by one using `dists[attr]` as the symmetric
  /// distance vector (d(a,new) == d(new,a) == dists[attr][a]). Attributes
  /// whose values are already in-domain are untouched; `dists` entries for
  /// them may be empty. Returns InvalidArgument when a value would skip
  /// ids or a distance vector has the wrong length.
  Status AddObjectValue(const std::vector<ValueId>& values,
                        const std::vector<std::vector<double>>& dists);

 private:
  struct Attr {
    std::optional<DissimilarityMatrix> matrix;  // engaged iff categorical
    NumericDissimilarity numeric;
    bool is_numeric;
  };

  std::vector<Attr> attrs_;
};

/// Builds an all-categorical space with one random matrix per cardinality in
/// `cardinalities`, mirroring the paper's experimental setup.
SimilaritySpace MakeRandomSpace(const std::vector<size_t>& cardinalities,
                                Rng& rng,
                                const RandomMatrixOptions& opts = {});

}  // namespace nmrs

#endif  // NMRS_SIM_SIMILARITY_SPACE_H_
