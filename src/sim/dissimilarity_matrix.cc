#include "sim/dissimilarity_matrix.h"

#include <cmath>
#include <string>

namespace nmrs {

ValueId DissimilarityMatrix::AppendValue(const std::vector<double>& to_new,
                                         const std::vector<double>& from_new,
                                         double self) {
  const size_t k = cardinality_;
  NMRS_CHECK_EQ(to_new.size(), k);
  NMRS_CHECK_EQ(from_new.size(), k);
  const size_t k1 = k + 1;
  std::vector<double> values(k1 * k1);
  std::vector<double> transposed(k1 * k1);
  for (ValueId a = 0; a < k; ++a) {
    for (ValueId b = 0; b < k; ++b) {
      values[a * k1 + b] = values_[a * k + b];
      transposed[b * k1 + a] = transposed_[b * k + a];
    }
    values[a * k1 + k] = to_new[a];    // d(a, new)
    values[k * k1 + a] = from_new[a];  // d(new, b)
    transposed[k * k1 + a] = to_new[a];
    transposed[a * k1 + k] = from_new[a];
  }
  values[k * k1 + k] = self;
  transposed[k * k1 + k] = self;
  values_ = std::move(values);
  transposed_ = std::move(transposed);
  cardinality_ = k1;
  return static_cast<ValueId>(k);
}

Status DissimilarityMatrix::Validate(bool require_zero_diagonal) const {
  for (ValueId a = 0; a < cardinality_; ++a) {
    for (ValueId b = 0; b < cardinality_; ++b) {
      const double d = Dist(a, b);
      if (!(d >= 0.0) || std::isnan(d)) {
        return Status::InvalidArgument(
            "negative or NaN dissimilarity at (" + std::to_string(a) + "," +
            std::to_string(b) + "): " + std::to_string(d));
      }
    }
    if (require_zero_diagonal && Dist(a, a) != 0.0) {
      return Status::InvalidArgument("nonzero diagonal at " +
                                     std::to_string(a));
    }
  }
  return Status::OK();
}

bool DissimilarityMatrix::IsSymmetric(double eps) const {
  for (ValueId a = 0; a < cardinality_; ++a) {
    for (ValueId b = a + 1; b < cardinality_; ++b) {
      if (std::fabs(Dist(a, b) - Dist(b, a)) > eps) return false;
    }
  }
  return true;
}

double DissimilarityMatrix::TriangleViolationRate(size_t max_samples) const {
  const size_t k = cardinality_;
  if (k < 3) return 0.0;
  const size_t total_triples = k * (k - 1) * (k - 2);
  size_t violations = 0;
  size_t examined = 0;
  if (total_triples <= max_samples) {
    for (ValueId x = 0; x < k; ++x) {
      for (ValueId y = 0; y < k; ++y) {
        if (y == x) continue;
        for (ValueId z = 0; z < k; ++z) {
          if (z == x || z == y) continue;
          ++examined;
          if (Dist(x, y) + Dist(y, z) < Dist(x, z)) ++violations;
        }
      }
    }
  } else {
    // Deterministic sampling: fixed internal seed so the diagnostic is
    // reproducible for a given matrix.
    Rng rng(0xD15517ULL ^ (k * 2654435761ULL));
    while (examined < max_samples) {
      ValueId x = static_cast<ValueId>(rng.Uniform(k));
      ValueId y = static_cast<ValueId>(rng.Uniform(k));
      ValueId z = static_cast<ValueId>(rng.Uniform(k));
      if (x == y || y == z || x == z) continue;
      ++examined;
      if (Dist(x, y) + Dist(y, z) < Dist(x, z)) ++violations;
    }
  }
  return examined == 0
             ? 0.0
             : static_cast<double>(violations) / static_cast<double>(examined);
}

DissimilarityMatrix MakeRandomMatrix(size_t cardinality, Rng& rng,
                                     const RandomMatrixOptions& opts) {
  DissimilarityMatrix m(cardinality);
  for (ValueId a = 0; a < cardinality; ++a) {
    for (ValueId b = 0; b < cardinality; ++b) {
      if (opts.symmetric && b < a) continue;
      if (a == b) {
        m.Set(a, a, opts.zero_diagonal ? 0.0
                                       : rng.UniformDouble(opts.lo, opts.hi));
        continue;
      }
      const double d = rng.UniformDouble(opts.lo, opts.hi);
      if (opts.symmetric) {
        m.SetSymmetric(a, b, d);
      } else {
        m.Set(a, b, d);
      }
    }
  }
  return m;
}

}  // namespace nmrs
