#ifndef NMRS_SIM_MATRIX_OVERLAY_H_
#define NMRS_SIM_MATRIX_OVERLAY_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/types.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// A sparse per-user perturbation of a shared SimilaritySpace: a set of
/// `(attr, from, to) -> d` replacements over the base categorical matrices
/// (docs/OVERLAYS.md). The base space stays immutable and shared across all
/// users; an overlay stores only the entries one user disagrees on, so
/// "millions of slightly different matrices" costs millions of small deltas
/// plus one dense base — the multi-tenant reading of the paper's
/// expert-supplied matrices (Wong et al.'s observation that user preferences
/// are small perturbations of a shared order, see PAPERS.md).
///
/// Validation mirrors SimilaritySpace construction: entries must name a
/// categorical attribute, in-domain value ids, a non-negative distance, and
/// must preserve the d(x, x) = 0 convention (diagonal entries are rejected).
/// Asymmetry is explicitly allowed — patching d(a, b) says nothing about
/// d(b, a), exactly like the base matrices.
///
/// The overlay borrows the base space; the space must outlive it.
class MatrixOverlay {
 public:
  struct Entry {
    AttrId attr;
    ValueId from;
    ValueId to;
    double d;
  };

  explicit MatrixOverlay(const SimilaritySpace& base);

  const SimilaritySpace& base() const { return *base_; }

  /// Adds (or overwrites) one delta entry. Fails with InvalidArgument when
  /// the entry violates the construction rules above.
  Status Set(AttrId attr, ValueId from, ValueId to, double d);

  bool empty() const { return num_entries_ == 0; }
  size_t num_entries() const { return num_entries_; }

  /// All entries, in a deterministic (attr, from, to) order.
  std::vector<Entry> Entries() const;

  /// Patched distance: the overlay entry when present, base otherwise.
  double Dist(AttrId attr, ValueId from, ValueId to) const;

  /// True if any entry lives on `attr`.
  bool TouchesAttr(AttrId attr) const {
    return attr < attrs_.size() && attrs_[attr].entries > 0;
  }

  /// True if any entry has destination value `to` on `attr` — i.e. the
  /// dense column d_attr(., to) differs from the base. This is the test
  /// behind overlay-sensitivity classification: a candidate row X is
  /// affected by the overlay iff some selected attribute's column x_a is
  /// touched (its pruning condition only ever reads d_a(., x_a)).
  bool TouchesColumn(AttrId attr, ValueId to) const {
    if (attr >= attrs_.size() || attrs_[attr].entries == 0) return false;
    return !attrs_[attr].by_col[to].empty();
  }

  /// True if any entry has source value `from` on `attr` (the dense row
  /// d_attr(from, .) differs from the base).
  bool TouchesRow(AttrId attr, ValueId from) const {
    if (attr >= attrs_.size() || attrs_[attr].entries == 0) return false;
    return !attrs_[attr].by_row[from].empty();
  }

  /// Applies this overlay's entries with destination `to` onto a dense
  /// column copy: col[from] = d for every patched (from, to). `col` must
  /// hold Cardinality(attr) values copied from the base ColumnTo(to).
  void PatchColumn(AttrId attr, ValueId to, double* col) const;

  /// Applies this overlay's entries with source `from` onto a dense row
  /// copy: row[to] = d for every patched (from, to).
  void PatchRow(AttrId attr, ValueId from, double* row) const;

  /// True if a row with the given values is overlay-sensitive for the given
  /// attribute selection: some selected categorical attribute's column
  /// values[a] is touched. Rows for which this is false have bit-identical
  /// reverse-skyline membership under base and overlaid space.
  bool RowSensitive(const ValueId* values,
                    const std::vector<AttrId>& selected) const;

  /// Materializes base + delta as a standalone SimilaritySpace (a full
  /// per-user rebuild). The correctness oracle for every overlay-aware
  /// path, and the fallback for algorithms that read matrices directly.
  SimilaritySpace BuildPatchedSpace() const;

  /// Text form, one entry per line: "attr from to d". Stable order.
  std::string Serialize() const;

  /// Parses the Serialize() format ('#' comments and blank lines allowed),
  /// validating every entry against `base`.
  static StatusOr<MatrixOverlay> Parse(const SimilaritySpace& base,
                                       const std::string& text);

 private:
  struct AttrPatches {
    // by_col[to] -> (from, d); by_row[from] -> (to, d). Sized to the
    // attribute's cardinality on first touch, empty for untouched attrs.
    std::vector<std::vector<std::pair<ValueId, double>>> by_col;
    std::vector<std::vector<std::pair<ValueId, double>>> by_row;
    size_t entries = 0;
  };

  const SimilaritySpace* base_;
  std::vector<AttrPatches> attrs_;
  size_t num_entries_ = 0;
};

/// A random overlay touching ~`touch_fraction` of each categorical
/// attribute's off-diagonal entries (at least one entry overall when the
/// fraction is positive and some categorical attribute exists), with
/// replacement distances uniform in [0, 1) — the multi-tenant analogue of
/// MakeRandomMatrix. Deterministic in `rng`.
MatrixOverlay MakeRandomOverlay(const SimilaritySpace& space, Rng& rng,
                                double touch_fraction);

}  // namespace nmrs

#endif  // NMRS_SIM_MATRIX_OVERLAY_H_
