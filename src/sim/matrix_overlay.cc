#include "sim/matrix_overlay.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace nmrs {

MatrixOverlay::MatrixOverlay(const SimilaritySpace& base)
    : base_(&base), attrs_(base.num_attributes()) {}

Status MatrixOverlay::Set(AttrId attr, ValueId from, ValueId to, double d) {
  if (attr >= base_->num_attributes()) {
    return Status::InvalidArgument("overlay attr " + std::to_string(attr) +
                                   " out of range (schema has " +
                                   std::to_string(base_->num_attributes()) +
                                   " attributes)");
  }
  if (base_->IsNumeric(attr)) {
    return Status::InvalidArgument("overlay attr " + std::to_string(attr) +
                                   " is numeric; overlays patch categorical "
                                   "matrices only");
  }
  const size_t card = base_->Cardinality(attr);
  if (from >= card || to >= card) {
    return Status::InvalidArgument(
        "overlay value ids (" + std::to_string(from) + ", " +
        std::to_string(to) + ") out of domain for attr " +
        std::to_string(attr) + " (cardinality " + std::to_string(card) + ")");
  }
  if (from == to) {
    return Status::InvalidArgument(
        "overlay entry on the diagonal of attr " + std::to_string(attr) +
        " (value " + std::to_string(from) +
        "): d(x, x) = 0 must be preserved");
  }
  if (!(d >= 0.0)) {  // also rejects NaN
    return Status::InvalidArgument("overlay distance must be non-negative");
  }

  AttrPatches& p = attrs_[attr];
  if (p.by_col.empty()) {
    p.by_col.resize(card);
    p.by_row.resize(card);
  }
  // Overwrite an existing entry in place; append otherwise (both sides).
  bool existed = false;
  for (auto& [f, dist] : p.by_col[to]) {
    if (f == from) {
      dist = d;
      existed = true;
      break;
    }
  }
  if (existed) {
    for (auto& [t, dist] : p.by_row[from]) {
      if (t == to) {
        dist = d;
        break;
      }
    }
    return Status::OK();
  }
  p.by_col[to].emplace_back(from, d);
  p.by_row[from].emplace_back(to, d);
  ++p.entries;
  ++num_entries_;
  return Status::OK();
}

std::vector<MatrixOverlay::Entry> MatrixOverlay::Entries() const {
  std::vector<Entry> out;
  out.reserve(num_entries_);
  for (AttrId a = 0; a < attrs_.size(); ++a) {
    const AttrPatches& p = attrs_[a];
    if (p.entries == 0) continue;
    for (ValueId from = 0; from < p.by_row.size(); ++from) {
      for (const auto& [to, d] : p.by_row[from]) {
        out.push_back(Entry{a, from, to, d});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Entry& x, const Entry& y) {
    if (x.attr != y.attr) return x.attr < y.attr;
    if (x.from != y.from) return x.from < y.from;
    return x.to < y.to;
  });
  return out;
}

double MatrixOverlay::Dist(AttrId attr, ValueId from, ValueId to) const {
  NMRS_DCHECK(attr < attrs_.size());
  const AttrPatches& p = attrs_[attr];
  if (p.entries > 0) {
    for (const auto& [t, d] : p.by_row[from]) {
      if (t == to) return d;
    }
  }
  return base_->CatDist(attr, from, to);
}

void MatrixOverlay::PatchColumn(AttrId attr, ValueId to, double* col) const {
  NMRS_DCHECK(attr < attrs_.size());
  const AttrPatches& p = attrs_[attr];
  if (p.entries == 0) return;
  for (const auto& [from, d] : p.by_col[to]) col[from] = d;
}

void MatrixOverlay::PatchRow(AttrId attr, ValueId from, double* row) const {
  NMRS_DCHECK(attr < attrs_.size());
  const AttrPatches& p = attrs_[attr];
  if (p.entries == 0) return;
  for (const auto& [to, d] : p.by_row[from]) row[to] = d;
}

bool MatrixOverlay::RowSensitive(const ValueId* values,
                                 const std::vector<AttrId>& selected) const {
  for (AttrId a : selected) {
    if (base_->IsNumeric(a)) continue;
    if (TouchesColumn(a, values[a])) return true;
  }
  return false;
}

SimilaritySpace MatrixOverlay::BuildPatchedSpace() const {
  SimilaritySpace out;
  for (AttrId a = 0; a < base_->num_attributes(); ++a) {
    if (base_->IsNumeric(a)) {
      out.AddNumeric(base_->numeric(a));
      continue;
    }
    DissimilarityMatrix m = base_->matrix(a);  // dense copy
    const AttrPatches& p = attrs_[a];
    if (p.entries > 0) {
      for (ValueId from = 0; from < p.by_row.size(); ++from) {
        for (const auto& [to, d] : p.by_row[from]) m.Set(from, to, d);
      }
    }
    out.AddCategorical(std::move(m));
  }
  return out;
}

std::string MatrixOverlay::Serialize() const {
  std::ostringstream out;
  out.precision(17);  // round-trips every double exactly
  for (const Entry& e : Entries()) {
    out << e.attr << ' ' << e.from << ' ' << e.to << ' ' << e.d << '\n';
  }
  return out.str();
}

StatusOr<MatrixOverlay> MatrixOverlay::Parse(const SimilaritySpace& base,
                                             const std::string& text) {
  MatrixOverlay overlay(base);
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream fields(line);
    uint64_t attr = 0, from = 0, to = 0;
    double d = 0.0;
    if (!(fields >> attr >> from >> to >> d)) {
      return Status::InvalidArgument(
          "overlay line " + std::to_string(lineno) +
          ": expected \"attr from to d\", got \"" + line + "\"");
    }
    std::string extra;
    if (fields >> extra) {
      return Status::InvalidArgument("overlay line " + std::to_string(lineno) +
                                     ": trailing tokens after \"attr from to "
                                     "d\"");
    }
    Status s = overlay.Set(static_cast<AttrId>(attr),
                           static_cast<ValueId>(from),
                           static_cast<ValueId>(to), d);
    if (!s.ok()) {
      return Status::InvalidArgument("overlay line " + std::to_string(lineno) +
                                     ": " + s.message());
    }
  }
  return overlay;
}

MatrixOverlay MakeRandomOverlay(const SimilaritySpace& space, Rng& rng,
                                double touch_fraction) {
  MatrixOverlay overlay(space);
  if (touch_fraction <= 0.0) return overlay;
  for (AttrId a = 0; a < space.num_attributes(); ++a) {
    if (space.IsNumeric(a)) continue;
    const size_t card = space.Cardinality(a);
    if (card < 2) continue;
    std::vector<std::pair<ValueId, ValueId>> pairs;
    pairs.reserve(card * (card - 1));
    for (ValueId from = 0; from < card; ++from) {
      for (ValueId to = 0; to < card; ++to) {
        if (from != to) pairs.emplace_back(from, to);
      }
    }
    rng.Shuffle(pairs);
    const size_t target = static_cast<size_t>(
        std::llround(touch_fraction * static_cast<double>(pairs.size())));
    for (size_t i = 0; i < target && i < pairs.size(); ++i) {
      NMRS_CHECK(overlay
                     .Set(a, pairs[i].first, pairs[i].second, rng.NextDouble())
                     .ok());
    }
  }
  if (overlay.empty()) {
    // A positive touch fraction must yield a real perturbation: drop one
    // entry into the first categorical attribute with a 2+ value domain.
    for (AttrId a = 0; a < space.num_attributes(); ++a) {
      if (space.IsNumeric(a) || space.Cardinality(a) < 2) continue;
      const size_t card = space.Cardinality(a);
      const ValueId from = static_cast<ValueId>(rng.Uniform(card));
      ValueId to = static_cast<ValueId>(rng.Uniform(card - 1));
      if (to >= from) ++to;
      NMRS_CHECK(overlay.Set(a, from, to, rng.NextDouble()).ok());
      break;
    }
  }
  return overlay;
}

}  // namespace nmrs
