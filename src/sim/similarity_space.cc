#include "sim/similarity_space.h"

namespace nmrs {

SimilaritySpace MakeRandomSpace(const std::vector<size_t>& cardinalities,
                                Rng& rng, const RandomMatrixOptions& opts) {
  SimilaritySpace space;
  for (size_t card : cardinalities) {
    space.AddCategorical(MakeRandomMatrix(card, rng, opts));
  }
  return space;
}

}  // namespace nmrs
