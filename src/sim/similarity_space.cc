#include "sim/similarity_space.h"

#include <string>

namespace nmrs {

Status SimilaritySpace::AddObjectValue(
    const std::vector<ValueId>& values,
    const std::vector<std::vector<double>>& dists) {
  if (values.size() != attrs_.size() || dists.size() != attrs_.size()) {
    return Status::InvalidArgument(
        "AddObjectValue needs one value and one distance vector per "
        "attribute");
  }
  // Validate everything before mutating anything: either the whole object
  // becomes representable or the space is untouched.
  for (AttrId a = 0; a < attrs_.size(); ++a) {
    if (attrs_[a].is_numeric) continue;
    const size_t k = attrs_[a].matrix->cardinality();
    if (values[a] < k) continue;  // already in-domain
    if (values[a] != k) {
      return Status::InvalidArgument(
          "attribute " + std::to_string(a) + " value " +
          std::to_string(values[a]) + " skips ids (domain size " +
          std::to_string(k) + ")");
    }
    if (dists[a].size() != k) {
      return Status::InvalidArgument(
          "attribute " + std::to_string(a) + " distance vector has " +
          std::to_string(dists[a].size()) + " entries, domain has " +
          std::to_string(k));
    }
  }
  for (AttrId a = 0; a < attrs_.size(); ++a) {
    if (attrs_[a].is_numeric) continue;
    if (values[a] == attrs_[a].matrix->cardinality()) {
      attrs_[a].matrix->AppendValue(dists[a], dists[a]);
    }
  }
  return Status::OK();
}

SimilaritySpace MakeRandomSpace(const std::vector<size_t>& cardinalities,
                                Rng& rng, const RandomMatrixOptions& opts) {
  SimilaritySpace space;
  for (size_t card : cardinalities) {
    space.AddCategorical(MakeRandomMatrix(card, rng, opts));
  }
  return space;
}

}  // namespace nmrs
