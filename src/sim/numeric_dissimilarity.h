#ifndef NMRS_SIM_NUMERIC_DISSIMILARITY_H_
#define NMRS_SIM_NUMERIC_DISSIMILARITY_H_

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nmrs {

/// Closed numeric interval [lo, hi]; the bucket bounds used by the
/// discretized numeric handling of TRS (paper §6).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double x) const { return lo <= x && x <= hi; }
  double width() const { return hi - lo; }
  bool operator==(const Interval&) const = default;
};

/// Dissimilarity for numeric attributes: scaled absolute difference
/// d(x, y) = scale * |x - y|. Numeric attributes are metric on their own —
/// the paper's point (§6) is that they can coexist with non-metric
/// categorical attributes inside one TRS query via discretization, for which
/// this class supplies interval lower/upper bounds.
class NumericDissimilarity {
 public:
  explicit NumericDissimilarity(double scale = 1.0) : scale_(scale) {
    NMRS_CHECK_GT(scale, 0.0);
  }

  double scale() const { return scale_; }

  double Dist(double x, double y) const { return scale_ * std::fabs(x - y); }

  /// Smallest possible d(x, y) over x in `a`, y in `b` (0 if they overlap).
  double MinDist(const Interval& a, const Interval& b) const {
    const double gap = std::max(a.lo, b.lo) - std::min(a.hi, b.hi);
    return scale_ * std::max(0.0, gap);
  }

  /// Largest possible d(x, y) over x in `a`, y in `b`.
  double MaxDist(const Interval& a, const Interval& b) const {
    return scale_ * std::max(std::fabs(b.hi - a.lo), std::fabs(a.hi - b.lo));
  }

 private:
  double scale_;
};

}  // namespace nmrs

#endif  // NMRS_SIM_NUMERIC_DISSIMILARITY_H_
