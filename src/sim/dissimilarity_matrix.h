#ifndef NMRS_SIM_DISSIMILARITY_MATRIX_H_
#define NMRS_SIM_DISSIMILARITY_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace nmrs {

/// Dense k×k dissimilarity function over a categorical domain, as filled in
/// by a domain expert in the paper's motivating scenarios. No metric
/// properties are assumed: the matrix may violate the triangle inequality
/// and may even be asymmetric. The only convention most measures follow is
/// d(x, x) = 0, which the SRS/TRS sort exploits but never relies on for
/// correctness.
class DissimilarityMatrix {
 public:
  /// A k×k matrix of zeros.
  explicit DissimilarityMatrix(size_t cardinality)
      : cardinality_(cardinality),
        values_(cardinality * cardinality, 0.0),
        transposed_(cardinality * cardinality, 0.0) {
    NMRS_CHECK_GT(cardinality, 0u);
  }

  size_t cardinality() const { return cardinality_; }

  /// Dissimilarity of value `a` to value `b`.
  double Dist(ValueId a, ValueId b) const {
    NMRS_DCHECK(a < cardinality_ && b < cardinality_);
    return values_[a * cardinality_ + b];
  }

  /// Contiguous row: RowFrom(a)[b] == Dist(a, b). Hot-path accessor for
  /// traversals that scan many b for a fixed a.
  const double* RowFrom(ValueId a) const {
    NMRS_DCHECK(a < cardinality_);
    return values_.data() + a * cardinality_;
  }

  /// Contiguous column (from the transposed copy): ColumnTo(b)[a] ==
  /// Dist(a, b). Hot-path accessor for traversals that scan many a for a
  /// fixed reference value b (the AL-Tree phase-1 pattern).
  const double* ColumnTo(ValueId b) const {
    NMRS_DCHECK(b < cardinality_);
    return transposed_.data() + b * cardinality_;
  }

  void Set(ValueId a, ValueId b, double d) {
    NMRS_DCHECK(a < cardinality_ && b < cardinality_);
    values_[a * cardinality_ + b] = d;
    transposed_[b * cardinality_ + a] = d;
  }

  /// Sets d(a,b) and d(b,a) simultaneously.
  void SetSymmetric(ValueId a, ValueId b, double d) {
    Set(a, b, d);
    Set(b, a, d);
  }

  /// Grows the domain k -> k+1 in place, appending value id k with
  /// d(a, k) = to_new[a], d(k, b) = from_new[b], d(k, k) = self. Both
  /// vectors must have size k. O(k^2) relayout of this matrix only — the
  /// append-only alternative to re-deriving an entire (k+1)^2 matrix from
  /// scratch when a delta row introduces a fresh domain value.
  /// Returns the id of the new value.
  ValueId AppendValue(const std::vector<double>& to_new,
                      const std::vector<double>& from_new, double self = 0.0);

  /// Validates basic sanity: non-negative entries and zero diagonal (the
  /// latter only when `require_zero_diagonal`).
  Status Validate(bool require_zero_diagonal = true) const;

  bool IsSymmetric(double eps = 0.0) const;

  /// Fraction of ordered triples (x,y,z), x!=y!=z, violating
  /// d(x,y)+d(y,z) >= d(x,z). Exhaustive for small k; sampled (up to
  /// `max_samples` triples) for large k. Used to demonstrate that generated
  /// measures are genuinely non-metric.
  double TriangleViolationRate(size_t max_samples = 200000) const;

 private:
  size_t cardinality_;
  std::vector<double> values_;      // row-major: [a * k + b] = d(a, b)
  std::vector<double> transposed_;  // [b * k + a] = d(a, b)
};

/// Options for random matrix generation, matching the paper's experimental
/// setup ("similarities between values are chosen randomly from [0-1]").
struct RandomMatrixOptions {
  double lo = 0.0;
  double hi = 1.0;
  bool symmetric = true;
  bool zero_diagonal = true;
};

/// Generates a random dissimilarity matrix over `cardinality` values.
DissimilarityMatrix MakeRandomMatrix(size_t cardinality, Rng& rng,
                                     const RandomMatrixOptions& opts = {});

}  // namespace nmrs

#endif  // NMRS_SIM_DISSIMILARITY_MATRIX_H_
