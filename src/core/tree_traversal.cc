#include "core/tree_traversal.h"

#include "core/dominance.h"
#include "order/attribute_order.h"

namespace nmrs {
namespace internal_tree {

using NodeId = ALTree::NodeId;

TreeQueryContext MakeTreeContext(const SimilaritySpace& space,
                                 const Schema& schema, const Object& query,
                                 const RSOptions& opts) {
  TreeQueryContext ctx;
  ctx.space = &space;
  ctx.schema = &schema;
  ctx.query = query;
  ctx.attr_order = opts.attr_order.empty()
                       ? AscendingCardinalityOrder(schema)
                       : opts.attr_order;
  NMRS_CHECK_EQ(ctx.attr_order.size(), schema.num_attributes());
  ctx.attr_selected.assign(schema.num_attributes(), false);
  for (AttrId a : ResolveSelectedAttrs(schema, opts.selected_attrs)) {
    ctx.attr_selected[a] = true;
  }
  ctx.buckets.resize(schema.num_attributes());
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    const auto& info = schema.attribute(a);
    if (info.is_numeric) ctx.buckets[a].emplace(info.range, info.cardinality);
  }
  ctx.fast_path = schema.NumNumeric() == 0;
  for (bool sel : ctx.attr_selected) ctx.fast_path &= sel;
  if (ctx.fast_path) {
    ctx.q_row_by_level.resize(ctx.attr_order.size());
    for (size_t l = 0; l < ctx.attr_order.size(); ++l) {
      const AttrId a = ctx.attr_order[l];
      ctx.q_row_by_level[l] = space.matrix(a).RowFrom(ctx.query.values[a]);
    }
  }
  return ctx;
}

void LeafValues(const ALTree& tree, NodeId leaf,
                const std::vector<AttrId>& attr_order,
                std::vector<ValueId>* values) {
  NodeId cur = leaf;
  while (cur != ALTree::kRootId) {
    (*values)[attr_order[tree.Level(cur)]] = tree.Value(cur);
    cur = tree.Parent(cur);
  }
}

bool IsPrunable(const ALTree& tree, const TreeQueryContext& ctx,
                const std::vector<ValueId>& c_values,
                const std::vector<double>& rhs, QueryStats* stats,
                std::vector<TraversalEntry>& stack) {
  stack.clear();
  stack.push_back({ALTree::kRootId, false});
  while (!stack.empty()) {
    const TraversalEntry s = stack.back();
    stack.pop_back();
    if (s.n != ALTree::kRootId && tree.IsLeaf(s.n)) {
      if (s.found_closer) return true;
      continue;
    }
    // Children are pre-sorted ascending by descendant count
    // (PrepareForSearch); pushing in that order pops the most populous —
    // most promising — subtree first.
    for (const ALTree::ChildRef& child : tree.Children(s.n)) {
      const NodeId p = child.id;
      if (tree.Descendants(p) == 0) continue;
      const AttrId a = ctx.attr_order[tree.Level(p)];
      if (!ctx.attr_selected[a]) {
        stack.push_back({p, s.found_closer});
        continue;
      }
      double lhs;
      if (ctx.buckets[a].has_value()) {
        // Numeric level: compare conservative bucket bounds — the maximum
        // possible distance of the node's bucket from c's bucket against
        // the minimum possible distance of the query's bucket from c's.
        lhs = ctx.space->numeric(a).MaxDist(
            ctx.BucketOf(a, c_values[a]), ctx.BucketOf(a, child.value));
      } else {
        lhs = ctx.space->CatDist(a, child.value, c_values[a]);
      }
      ++stats->checks;
      if (lhs <= rhs[a]) {
        const bool closer = s.found_closer || lhs < rhs[a];
        if (tree.IsLeaf(p)) {
          // A qualifying leaf IS the verdict: return as soon as a pruner
          // is proven (the whole point of Alg. 4), and never stack leaves
          // that cannot prune (no strict attribute on their path).
          if (closer) return true;
          continue;
        }
        stack.push_back({p, closer});
      }
    }
  }
  return false;
}

bool IsPrunableFast(const ALTree& tree, const std::vector<Phase1Level>& levels,
                    QueryStats* stats, std::vector<FastEntry>& stack) {
  const uint32_t leaf_level = static_cast<uint32_t>(levels.size()) - 1;
  stack.clear();
  stack.push_back({ALTree::kRootId, 0, false});
  uint64_t checks = 0;
  while (!stack.empty()) {
    const FastEntry s = stack.back();
    stack.pop_back();
    const Phase1Level& level = levels[s.level];
    for (const ALTree::ChildRef& child : tree.Children(s.n)) {
      const NodeId p = child.id;
      if (tree.Descendants(p) == 0) continue;
      const double lhs = level.col[child.value];
      ++checks;
      if (lhs <= level.rhs) {
        const bool closer = s.found_closer || lhs < level.rhs;
        if (s.level == leaf_level) {
          if (closer) {
            stats->checks += checks;
            return true;
          }
        } else {
          stack.push_back({p, s.level + 1, closer});
        }
      }
    }
  }
  stats->checks += checks;
  return false;
}

void ComputeRhs(const TreeQueryContext& ctx,
                const std::vector<ValueId>& c_values,
                std::vector<double>* rhs) {
  const size_t m = ctx.schema->num_attributes();
  for (AttrId a = 0; a < m; ++a) {
    if (!ctx.attr_selected[a]) continue;
    if (ctx.buckets[a].has_value()) {
      (*rhs)[a] = ctx.space->numeric(a).MinDist(
          ctx.BucketOf(a, c_values[a]), ctx.BucketOf(a, ctx.query.values[a]));
    } else {
      (*rhs)[a] = ctx.space->CatDist(a, ctx.query.values[a], c_values[a]);
    }
  }
}

namespace {

// Removes every entry of `leaf` except the one whose id equals spare_id
// (whole-leaf removal when it is absent).
void EvictLeaf(ALTree& tree, NodeId leaf, RowId spare_id) {
  const auto& rows = tree.LeafRows(leaf);
  bool holds_self = false;
  for (RowId r : rows) {
    if (r == spare_id) {
      holds_self = true;
      break;
    }
  }
  if (!holds_self) {
    tree.RemoveLeaf(leaf);
  } else {
    for (size_t i = rows.size(); i-- > 0;) {
      if (tree.LeafRows(leaf)[i] != spare_id) tree.RemoveLeafEntry(leaf, i);
    }
  }
}

}  // namespace

void PruneTree(ALTree& tree, const TreeQueryContext& ctx,
               const ValueId* e_values, const double* e_numerics,
               RowId spare_id, QueryStats* stats,
               std::vector<TraversalEntry>& stack) {
  const size_t m = ctx.schema->num_attributes();
  const bool has_numerics = tree.has_numerics();

  stack.clear();
  stack.push_back({ALTree::kRootId, false});
  while (!stack.empty()) {
    const TraversalEntry s = stack.back();
    stack.pop_back();
    if (s.n != ALTree::kRootId && tree.IsLeaf(s.n)) {
      if (!has_numerics) {
        if (!s.found_closer) continue;
        EvictLeaf(tree, s.n, spare_id);
        continue;
      }
      // Numeric refinement: exact per-entry checks on numeric attributes.
      for (size_t i = tree.LeafRows(s.n).size(); i-- > 0;) {
        if (tree.LeafRows(s.n)[i] == spare_id) continue;
        const double* c_num = tree.LeafNumerics(s.n, i);
        bool ok = true;
        bool strict = s.found_closer;
        for (AttrId a = 0; a < m && ok; ++a) {
          if (!ctx.attr_selected[a] || !ctx.buckets[a].has_value()) continue;
          const double lhs = ctx.space->NumDist(a, e_numerics[a], c_num[a]);
          const double r =
              ctx.space->NumDist(a, ctx.query.numerics[a], c_num[a]);
          ++stats->checks;
          if (lhs > r) ok = false;
          if (lhs < r) strict = true;
        }
        if (ok && strict) tree.RemoveLeafEntry(s.n, i);
      }
      continue;
    }
    for (const ALTree::ChildRef& child : tree.Children(s.n)) {
      const NodeId p = child.id;
      if (tree.Descendants(p) == 0) continue;
      const AttrId a = ctx.attr_order[tree.Level(p)];
      if (!ctx.attr_selected[a]) {
        stack.push_back({p, s.found_closer});
        continue;
      }
      if (ctx.buckets[a].has_value()) {
        // Numeric level: node value is a bucket of candidate values. Keep
        // descending while *some* candidate in the bucket could be pruned;
        // record strictness only when *every* candidate certainly is.
        const Interval ui = ctx.BucketOf(a, child.value);
        const Interval e_pt{e_numerics[a], e_numerics[a]};
        const Interval q_pt{ctx.query.numerics[a], ctx.query.numerics[a]};
        const auto& nd = ctx.space->numeric(a);
        ++stats->checks;
        if (nd.MinDist(e_pt, ui) <= nd.MaxDist(q_pt, ui)) {
          const bool certain_strict =
              nd.MaxDist(e_pt, ui) < nd.MinDist(q_pt, ui);
          stack.push_back({p, s.found_closer || certain_strict});
        }
      } else {
        const ValueId u = child.value;
        const double lhs = ctx.space->CatDist(a, e_values[a], u);
        const double rhs = ctx.space->CatDist(a, ctx.query.values[a], u);
        ++stats->checks;
        if (lhs <= rhs) {
          const bool closer = s.found_closer || lhs < rhs;
          // An all-categorical leaf without strict evidence can never be
          // evicted — skip the stack round-trip. (With numeric attributes
          // the leaf's exact values may still supply the strictness, so it
          // must be visited.)
          if (!closer && !has_numerics && tree.IsLeaf(p)) continue;
          stack.push_back({p, closer});
        }
      }
    }
  }
}

void PruneTreeFast(ALTree& tree, const std::vector<Phase2Level>& levels,
                   RowId spare_id, QueryStats* stats,
                   std::vector<FastEntry>& stack) {
  if (tree.empty()) return;
  const uint32_t leaf_level = static_cast<uint32_t>(levels.size()) - 1;
  stack.clear();
  stack.push_back({ALTree::kRootId, 0, false});
  uint64_t checks = 0;
  while (!stack.empty()) {
    const FastEntry s = stack.back();
    stack.pop_back();
    const Phase2Level& level = levels[s.level];
    for (const ALTree::ChildRef& child : tree.Children(s.n)) {
      const NodeId p = child.id;
      if (tree.Descendants(p) == 0) continue;
      const ValueId u = child.value;
      const double lhs = level.erow[u];
      const double rhs = level.qrow[u];
      ++checks;
      if (lhs <= rhs) {
        const bool closer = s.found_closer || lhs < rhs;
        if (s.level == leaf_level) {
          if (closer) EvictLeaf(tree, p, spare_id);
        } else {
          stack.push_back({p, s.level + 1, closer});
        }
      }
    }
  }
  stats->checks += checks;
}

Status LoadTreeBatch(const StoredDataset& data, PagedReader* reader,
                     uint64_t budget_bytes, PageId* next_page, ALTree* tree,
                     RowBatch* scratch) {
  const uint64_t total = data.num_pages();
  uint64_t loaded_pages = 0;
  while (*next_page < total &&
         (loaded_pages == 0 || tree->LogicalMemoryBytes() < budget_bytes)) {
    scratch->Clear();
    NMRS_RETURN_IF_ERROR(data.ReadPageVia(reader, *next_page, scratch));
    for (size_t i = 0; i < scratch->size(); ++i) {
      tree->Insert(scratch->id(i), scratch->row_values(i),
                   scratch->row_numerics(i));
    }
    ++*next_page;
    ++loaded_pages;
  }
  return Status::OK();
}

}  // namespace internal_tree
}  // namespace nmrs
