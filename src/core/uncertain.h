#ifndef NMRS_CORE_UNCERTAIN_H_
#define NMRS_CORE_UNCERTAIN_H_

#include <vector>

#include "common/types.h"
#include "data/dataset.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// Probabilistic reverse skyline over existentially uncertain data (the
/// direction of the paper's related work [17, 18], under non-metric
/// measures): every object X exists independently with probability
/// `existence[X]`. X belongs to the probabilistic reverse skyline at
/// threshold τ iff
///
///   Pr[X exists ∧ no existing object prunes X]
///     = existence[X] · Π_{Y ≻_X Q} (1 − existence[Y])  ≥  τ.
///
/// The product-form follows from independence: only actual pruners of X
/// matter, and each must be absent.
struct UncertainRsResult {
  std::vector<RowId> rows;           // members at threshold τ, ascending
  std::vector<double> probabilities; // aligned with rows
  uint64_t checks = 0;               // attribute-level comparisons
  uint64_t pruner_scans_cut_short = 0;  // early-termination events
};

/// Computes the probabilistic reverse skyline. Early termination: the
/// running product is monotonically non-increasing, so scanning X's
/// pruners stops as soon as it falls below τ (the probabilistic analogue
/// of "stop at the first pruner" — with certain data, one pruner zeroes
/// the product).
UncertainRsResult UncertainReverseSkyline(const Dataset& data,
                                          const SimilaritySpace& space,
                                          const Object& query,
                                          const std::vector<double>& existence,
                                          double threshold);

/// Membership probability of a single row (no threshold, full scan).
double UncertainMembershipProbability(const Dataset& data,
                                      const SimilaritySpace& space,
                                      const Object& query, RowId row,
                                      const std::vector<double>& existence);

}  // namespace nmrs

#endif  // NMRS_CORE_UNCERTAIN_H_
