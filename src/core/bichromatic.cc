#include "core/bichromatic.h"

#include <algorithm>

#include <optional>

#include "common/timer.h"
#include "core/dominance.h"
#include "core/dominance_kernel.h"
#include "core/query_distance_table.h"
#include "core/tree_traversal.h"
#include "data/columnar_batch.h"
#include "sim/matrix_overlay.h"

namespace nmrs {

using internal_tree::FastEntry;
using internal_tree::Phase2Level;
using internal_tree::TraversalEntry;
using internal_tree::TreeQueryContext;

std::vector<RowId> BichromaticOracle(const Dataset& candidates,
                                     const Dataset& competitors,
                                     const SimilaritySpace& space,
                                     const Object& query,
                                     const std::vector<AttrId>& selected) {
  NMRS_CHECK(candidates.schema() == competitors.schema());
  PruneContext ctx(space, candidates.schema(), query, selected);
  std::vector<RowId> result;
  uint64_t checks = 0;
  for (RowId c = 0; c < candidates.num_rows(); ++c) {
    ctx.SetCandidate(candidates.RowValues(c), candidates.RowNumerics(c));
    bool pruned = false;
    for (RowId p = 0; p < competitors.num_rows() && !pruned; ++p) {
      pruned = ctx.Prunes(competitors.RowValues(p),
                          competitors.RowNumerics(p), &checks);
    }
    if (!pruned) result.push_back(c);
  }
  return result;
}

StatusOr<ReverseSkylineResult> BichromaticBlockRS(
    const StoredDataset& candidates, const StoredDataset& competitors,
    const SimilaritySpace& space, const Object& query,
    const RSOptions& opts) {
  SimulatedDisk* disk = candidates.disk();
  NMRS_CHECK(competitors.disk() == disk)
      << "candidates and competitors must live on the same disk";
  const Schema& schema = candidates.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  if (opts.memory.pages < 2) {
    return Status::InvalidArgument(
        "bichromatic block RS needs at least 2 pages of memory");
  }

  Timer timer;
  const IoStats io_before = disk->stats();
  disk->InvalidateArmPosition();

  PagedReader reader(disk, opts.cache_pages ? opts.buffer_pool : nullptr,
                     MakeReaderOptions(opts));
  // The kernels need a table-backed context (cached matrix columns to
  // gather from); the table changes no Prunes outcome or count, but it is
  // only built when asked for, keeping the default path seed-identical.
  // Overlays also require the table: that is the only path through which
  // the delta reaches the pruning checks.
  const std::vector<AttrId> selected =
      ResolveSelectedAttrs(schema, opts.selected_attrs);
  std::optional<QueryDistanceTable> qtable;
  if (opts.use_kernels || opts.overlay != nullptr) {
    qtable.emplace(space, schema, query, selected, opts.overlay);
  }
  PruneContext ctx(space, schema, query, selected,
                   qtable ? &*qtable : nullptr);
  ReverseSkylineResult result;
  QueryStats& stats = result.stats;

  const uint64_t batch_pages = opts.memory.pages - 1;  // 1 page streams P
  const uint64_t c_pages = candidates.num_pages();
  for (PageId start = 0; start < c_pages; start += batch_pages) {
    ++stats.phase1_batches;
    const PageId end = std::min<PageId>(start + batch_pages, c_pages);
    RowBatch batch(m, numerics);
    for (PageId p = start; p < end; ++p) {
      NMRS_RETURN_IF_ERROR(candidates.ReadPageVia(&reader, p, &batch));
    }
    std::vector<bool> alive(batch.size(), true);

    RowBatch page(m, numerics);
    ColumnarBatch cols;
    for (PageId pp = 0; pp < competitors.num_pages(); ++pp) {
      page.Clear();
      NMRS_RETURN_IF_ERROR(competitors.ReadPageVia(&reader, pp, &page));
      if (opts.use_kernels) {
        cols.Build(page);
        DominanceKernel kernel(
            ctx, cols, {opts.kernel_promote_rows, DominanceKernel::kBlockRows});
        for (size_t i = 0; i < batch.size(); ++i) {
          if (!alive[i]) continue;
          ctx.SetCandidate(batch.row_values(i), batch.row_numerics(i));
          kernel.BeginCandidate();
          // Competitors are a different set: no id to spare, so the scan
          // skips nothing (kInvalidRowId matches no stored row).
          if (kernel.FindPrunerForward(0, page.size(), kInvalidRowId,
                                       &stats.pair_tests, &stats.checks)) {
            alive[i] = false;
          }
        }
        stats.kernel_checks += kernel.kernel_checks();
        stats.kernel_promotions += kernel.promotions();
        stats.kernel_scalar_rows += kernel.scalar_rows();
        stats.kernel_block_rows += kernel.block_rows();
        continue;
      }
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!alive[i]) continue;
        ctx.SetCandidate(batch.row_values(i), batch.row_numerics(i));
        for (size_t j = 0; j < page.size(); ++j) {
          ++stats.pair_tests;
          if (ctx.Prunes(page.row_values(j), page.row_numerics(j),
                         &stats.checks)) {
            alive[i] = false;
            break;
          }
        }
      }
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      if (alive[i]) result.rows.push_back(batch.id(i));
    }
  }

  std::sort(result.rows.begin(), result.rows.end());
  stats.phase1_checks = stats.checks;
  stats.result_size = result.rows.size();
  stats.io = disk->stats() - io_before;
  reader.FoldStatsInto(&stats.io);
  stats.modeled_backoff_millis = reader.modeled_backoff_millis();
  stats.compute_millis = timer.ElapsedMillis();
  return result;
}

StatusOr<ReverseSkylineResult> BichromaticTreeRS(
    const StoredDataset& candidates, const StoredDataset& competitors,
    const SimilaritySpace& space, const Object& query,
    const RSOptions& opts) {
  if (opts.overlay != nullptr && !opts.overlay->empty()) {
    // The tree traversal reads matrix rows directly, so the overlay is
    // evaluated by materializing the patched space once per query.
    if (&opts.overlay->base() != &space) {
      return Status::InvalidArgument(
          "RSOptions::overlay was built over a different base space");
    }
    SimilaritySpace patched = opts.overlay->BuildPatchedSpace();
    RSOptions materialized = opts;
    materialized.overlay = nullptr;
    return BichromaticTreeRS(candidates, competitors, patched, query,
                             materialized);
  }
  SimulatedDisk* disk = candidates.disk();
  NMRS_CHECK(competitors.disk() == disk)
      << "candidates and competitors must live on the same disk";
  const Schema& schema = candidates.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  if (opts.memory.pages < 2) {
    return Status::InvalidArgument(
        "bichromatic tree RS needs at least 2 pages of memory");
  }

  Timer timer;
  const IoStats io_before = disk->stats();
  disk->InvalidateArmPosition();

  TreeQueryContext ctx =
      internal_tree::MakeTreeContext(space, schema, query, opts);
  PagedReader reader(disk, opts.cache_pages ? opts.buffer_pool : nullptr,
                     MakeReaderOptions(opts));
  ReverseSkylineResult result;
  QueryStats& stats = result.stats;

  ALTree tree(schema, ctx.attr_order);
  RowBatch page_rows(m, numerics);
  PageId next_page = 0;
  std::vector<TraversalEntry> stack;
  stack.reserve(256);
  std::vector<FastEntry> fast_stack;
  fast_stack.reserve(256);
  std::vector<Phase2Level> p2_levels(m);
  const uint64_t budget = (opts.memory.pages - 1) * disk->page_size();
  while (next_page < candidates.num_pages()) {
    ++stats.phase1_batches;
    tree.Clear();
    NMRS_RETURN_IF_ERROR(internal_tree::LoadTreeBatch(
        candidates, &reader, budget, &next_page, &tree, &page_rows));

    RowBatch p_page(m, numerics);
    for (PageId pp = 0; pp < competitors.num_pages(); ++pp) {
      p_page.Clear();
      NMRS_RETURN_IF_ERROR(competitors.ReadPageVia(&reader, pp, &p_page));
      for (size_t j = 0; j < p_page.size(); ++j) {
        // Competitors are a different set: no id to spare.
        if (ctx.fast_path) {
          const ValueId* e = p_page.row_values(j);
          for (size_t l = 0; l < m; ++l) {
            const AttrId a = ctx.attr_order[l];
            p2_levels[l].erow = space.matrix(a).RowFrom(e[a]);
            p2_levels[l].qrow = ctx.q_row_by_level[l];
          }
          internal_tree::PruneTreeFast(tree, p2_levels, kInvalidRowId,
                                       &stats, fast_stack);
        } else {
          internal_tree::PruneTree(tree, ctx, p_page.row_values(j),
                                   p_page.row_numerics(j), kInvalidRowId,
                                   &stats, stack);
        }
      }
    }
    tree.ForEachActiveLeaf([&](ALTree::NodeId l) {
      for (RowId r : tree.LeafRows(l)) result.rows.push_back(r);
    });
  }

  std::sort(result.rows.begin(), result.rows.end());
  stats.phase1_checks = stats.checks;
  stats.result_size = result.rows.size();
  stats.io = disk->stats() - io_before;
  reader.FoldStatsInto(&stats.io);
  stats.modeled_backoff_millis = reader.modeled_backoff_millis();
  stats.compute_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace nmrs
