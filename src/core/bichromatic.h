#ifndef NMRS_CORE_BICHROMATIC_H_
#define NMRS_CORE_BICHROMATIC_H_

#include "common/statusor.h"
#include "core/query.h"
#include "data/stored_dataset.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// Bichromatic reverse skyline: two datasets share one schema — candidates
/// C (e.g. customers) and competitors P (e.g. the product catalog). For a
/// query q (a new product),
///
///   BRS_{C,P}(q) = { c ∈ C | ¬∃ p ∈ P, p ≻_c q }
///
/// — the candidates for which no competitor dominates q. This is the
/// two-set reading of the paper's marketing scenarios (§1: "choose
/// customers whose preference to the product is not dominated by other
/// products"); the monochromatic reverse skyline is the special case
/// C = P = D with self-pruning excluded.
///
/// Processing is single-phase (there is no intra-candidate pruning:
/// candidates never prune each other): candidate batches are loaded into
/// memory and the competitor set is streamed past each batch once.

/// Block variant: candidate batches are flat page images (memory - 1
/// pages), P streamed page by page.
StatusOr<ReverseSkylineResult> BichromaticBlockRS(
    const StoredDataset& candidates, const StoredDataset& competitors,
    const SimilaritySpace& space, const Object& query,
    const RSOptions& opts = {});

/// Tree variant: candidate batches are AL-Trees, and each streamed
/// competitor prunes whole groups via Prune(e, M)-style traversals — the
/// paper's group-level reasoning applied bichromatically. Candidates
/// should be multi-attribute pre-sorted for prefix sharing.
StatusOr<ReverseSkylineResult> BichromaticTreeRS(
    const StoredDataset& candidates, const StoredDataset& competitors,
    const SimilaritySpace& space, const Object& query,
    const RSOptions& opts = {});

/// In-memory oracle straight from the definition (O(|C|·|P|)).
std::vector<RowId> BichromaticOracle(const Dataset& candidates,
                                     const Dataset& competitors,
                                     const SimilaritySpace& space,
                                     const Object& query,
                                     const std::vector<AttrId>& selected = {});

}  // namespace nmrs

#endif  // NMRS_CORE_BICHROMATIC_H_
