#include "core/shard_exchange.h"

#include <algorithm>

#include "core/dominance.h"
#include "core/dominance_kernel.h"
#include "core/query_distance_table.h"
#include "data/columnar_batch.h"

namespace nmrs {

Status CollectRowsById(const StoredDataset& data, PagedReader* reader,
                       const std::vector<RowId>& ids, RowBatch* out) {
  if (ids.empty()) return Status::OK();
  const Schema& schema = data.schema();
  RowBatch page(schema.num_attributes(), schema.NumNumeric() > 0);
  size_t found = 0;
  const uint64_t num_pages = data.num_pages();
  for (PageId p = 0; p < num_pages && found < ids.size(); ++p) {
    page.Clear();
    NMRS_RETURN_IF_ERROR(data.ReadPageVia(reader, p, &page));
    for (size_t r = 0; r < page.size(); ++r) {
      if (!std::binary_search(ids.begin(), ids.end(), page.id(r))) continue;
      out->Append(page.id(r), page.row_values(r), page.row_numerics(r));
      ++found;
    }
  }
  if (found < ids.size()) {
    return Status::InvalidArgument(
        "CollectRowsById: some requested rows do not exist in the dataset");
  }
  return Status::OK();
}

Status PruneCandidatesAgainstShard(const StoredDataset& data,
                                   const SimilaritySpace& space,
                                   const Object& query,
                                   const RowBatch& candidates,
                                   const RSOptions& opts, PagedReader* reader,
                                   std::vector<uint8_t>* pruned,
                                   QueryStats* stats) {
  pruned->assign(candidates.size(), 0);
  if (candidates.size() == 0) return Status::OK();
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;

  const std::vector<AttrId> selected =
      ResolveSelectedAttrs(schema, opts.selected_attrs);
  const QueryDistanceTable qtable(space, schema, query, selected,
                                  opts.overlay);
  PruneContext ctx(space, schema, query, selected, &qtable);

  const uint64_t num_pages = data.num_pages();
  RowBatch page(m, numerics);
  ColumnarBatch cols;
  // One candidate-major pass per streamed page, with the same early-out a
  // phase-2 batch gets: a candidate already pruned is never re-checked.
  for (PageId dp = 0; dp < num_pages; ++dp) {
    page.Clear();
    NMRS_RETURN_IF_ERROR(data.ReadPageVia(reader, dp, &page));
    if (opts.use_kernels) {
      cols.Build(page);
      DominanceKernel kernel(
          ctx, cols, {opts.kernel_promote_rows, DominanceKernel::kBlockRows});
      for (size_t i = 0; i < candidates.size(); ++i) {
        if ((*pruned)[i]) continue;
        ctx.SetCandidate(candidates.row_values(i), candidates.row_numerics(i));
        kernel.BeginCandidate();
        if (kernel.FindPrunerForward(0, page.size(), candidates.id(i),
                                     &stats->pair_tests, &stats->checks)) {
          (*pruned)[i] = 1;
        }
      }
      stats->kernel_checks += kernel.kernel_checks();
      stats->kernel_promotions += kernel.promotions();
      stats->kernel_scalar_rows += kernel.scalar_rows();
      stats->kernel_block_rows += kernel.block_rows();
      continue;
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      if ((*pruned)[i]) continue;
      ctx.SetCandidate(candidates.row_values(i), candidates.row_numerics(i));
      const RowId x_id = candidates.id(i);
      for (size_t j = 0; j < page.size(); ++j) {
        if (page.id(j) == x_id) continue;
        ++stats->pair_tests;
        if (ctx.Prunes(page.row_values(j), page.row_numerics(j),
                       &stats->checks)) {
          (*pruned)[i] = 1;
          break;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace nmrs
