#include "core/influence.h"

#include <algorithm>
#include <thread>

namespace nmrs {

double InfluenceReport::TopShare(size_t k) const {
  if (total_influence == 0) return 0.0;
  uint64_t top = 0;
  for (size_t i = 0; i < ranking.size() && i < k; ++i) {
    top += ranking[i].influence;
  }
  return static_cast<double>(top) / static_cast<double>(total_influence);
}

double InfluenceReport::Gini() const {
  const size_t n = ranking.size();
  if (n == 0 || total_influence == 0) return 0.0;
  // Ranking is descending; Gini over the ascending sequence.
  double weighted = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto& entry = ranking[n - 1 - i];  // ascending
    weighted += static_cast<double>(i + 1) *
                static_cast<double>(entry.influence);
  }
  const double total = static_cast<double>(total_influence);
  const double nd = static_cast<double>(n);
  return (2.0 * weighted) / (nd * total) - (nd + 1.0) / nd;
}

StatusOr<InfluenceReport> AnalyzeInfluence(const PreparedDataset& prepared,
                                           const SimilaritySpace& space,
                                           const std::vector<Object>& queries,
                                           Algorithm algo,
                                           const RSOptions& opts) {
  InfluenceReport report;
  report.ranking.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    NMRS_ASSIGN_OR_RETURN(
        ReverseSkylineResult result,
        RunReverseSkyline(prepared, space, queries[i], algo, opts));
    report.ranking.push_back(
        {i, result.stats.result_size, std::move(result.stats)});
    report.total_influence += report.ranking.back().influence;
  }
  std::sort(report.ranking.begin(), report.ranking.end(),
            [](const InfluenceReport::Entry& a,
               const InfluenceReport::Entry& b) {
              if (a.influence != b.influence) return a.influence > b.influence;
              return a.query_index < b.query_index;
            });
  return report;
}

StatusOr<InfluenceReport> AnalyzeInfluenceParallel(
    const Dataset& data, const SimilaritySpace& space,
    const std::vector<Object>& queries, Algorithm algo,
    const RSOptions& opts, unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(
      threads, std::max<size_t>(1, queries.size()));

  // One slot per query; workers claim disjoint index ranges.
  std::vector<InfluenceReport::Entry> entries(queries.size());
  std::vector<Status> worker_status(threads, Status::OK());

  auto worker = [&](unsigned w) {
    // Each worker owns its disk, prepared copy, and scratch files —
    // queries inside a worker run exactly like the serial path.
    SimulatedDisk disk;
    auto prepared = PrepareDataset(&disk, data, algo);
    if (!prepared.ok()) {
      worker_status[w] = prepared.status();
      return;
    }
    for (size_t i = w; i < queries.size(); i += threads) {
      auto result = RunReverseSkyline(*prepared, space, queries[i], algo,
                                      opts);
      if (!result.ok()) {
        worker_status[w] = result.status();
        return;
      }
      entries[i] = {i, result->stats.result_size, std::move(result->stats)};
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();
  for (const Status& s : worker_status) {
    NMRS_RETURN_IF_ERROR(s);
  }

  InfluenceReport report;
  report.ranking = std::move(entries);
  for (const auto& entry : report.ranking) {
    report.total_influence += entry.influence;
  }
  std::sort(report.ranking.begin(), report.ranking.end(),
            [](const InfluenceReport::Entry& a,
               const InfluenceReport::Entry& b) {
              if (a.influence != b.influence) return a.influence > b.influence;
              return a.query_index < b.query_index;
            });
  return report;
}

}  // namespace nmrs
