#ifndef NMRS_CORE_STREAMING_H_
#define NMRS_CORE_STREAMING_H_

#include <deque>
#include <vector>

#include "common/types.h"
#include "data/object.h"
#include "data/schema.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// Continuous reverse skyline over a count-based sliding window (the
/// streaming setting of the paper's related work [29], here under
/// arbitrary non-metric measures): a fixed query Q, objects arriving one
/// at a time, the oldest object expiring once the window is full, and
/// RS_window(Q) maintained incrementally.
///
/// Maintenance logic per event:
///  * arrival of o — (1) o enters the RS iff no window object prunes it;
///    (2) o may prune current RS members, which then leave the RS.
///  * expiry of p — objects whose *remembered pruner* was p must be
///    re-verified against the remaining window; survivors rejoin the RS.
///
/// Each non-member remembers the latest-arriving pruner found for it, so
/// an expiry only re-verifies the objects that actually depended on the
/// expiring pruner (instead of rescanning everything). Amortized cost is
/// O(window) per event in the worst case but far less on typical streams;
/// `checks()` exposes the attribute-level comparison count for
/// measurement.
class StreamingReverseSkyline {
 public:
  /// `window_capacity` >= 1. The query is fixed for the lifetime of the
  /// object (one instance per continuous query).
  StreamingReverseSkyline(const SimilaritySpace& space, const Schema& schema,
                          Object query, size_t window_capacity);

  /// Pushes an arrival (expiring the oldest object first if the window is
  /// full). `id` is the caller's identifier for the object (must be unique
  /// among live window objects).
  void Push(RowId id, const Object& object);

  /// Ids of the current window's reverse skyline, ascending.
  std::vector<RowId> CurrentRs() const;

  /// Ids of all live window objects, oldest first.
  std::vector<RowId> WindowIds() const;

  size_t window_size() const { return window_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t checks() const { return checks_; }

 private:
  struct Entry {
    RowId id;
    Object object;
    bool in_rs;
    // The window id of the remembered pruner (kNoPruner when in_rs).
    RowId pruner = kNoPruner;
  };
  static constexpr RowId kNoPruner = kInvalidRowId;

  // Does `pruner` prune `candidate` w.r.t. the query? (candidate is the
  // reference of the distance comparisons, §3.)
  bool Prunes(const Object& pruner, const Object& candidate);

  // Scans the window for a pruner of `entry` (excluding entry itself),
  // preferring the latest-arriving one so the dependency survives longest.
  // Updates entry.in_rs / entry.pruner.
  void Reverify(Entry& entry);

  const SimilaritySpace* space_;
  const Schema* schema_;
  Object query_;
  size_t capacity_;
  std::deque<Entry> window_;  // oldest first
  uint64_t checks_ = 0;
};

}  // namespace nmrs

#endif  // NMRS_CORE_STREAMING_H_
