#include "core/dominance_kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "core/query_distance_table.h"
#include "sim/similarity_space.h"

// The AVX2 lane evaluators are compiled whenever the toolchain supports
// per-function ISA targeting and NMRS_NO_SIMD was not requested; whether
// they *run* is a runtime cpuid decision (ActiveKernelDispatch), mirroring
// the crc32c.cc hardware path.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(NMRS_NO_SIMD)
#define NMRS_KERNEL_AVX2 1
#include <immintrin.h>
#endif

namespace nmrs {

namespace {

/// Lane evaluators: fill `viol` / `strict` bitmasks for rows [0, n),
/// n <= DominanceKernel::kBlockRows — bit w reports lhs_w > q / lhs_w < q.
struct LaneFns {
  // Categorical: lhs_w = col[vals[w]] (col is the matrix column d(., x)).
  // `active` marks the rows still undecided: lanes of dead 4-row groups
  // may be skipped entirely (their viol/strict bits are never read — the
  // caller masks them out), which saves most gathers on late attributes.
  void (*cat)(const double* col, const ValueId* vals, size_t n,
              uint32_t active, double q, uint32_t* viol, uint32_t* strict);
  // Numeric: lhs_w = scale * |y[w] - x|.
  void (*num)(const double* y, size_t n, uint32_t active, double x,
              double scale, double q, uint32_t* viol, uint32_t* strict);
};

void CatLanesScalar(const double* col, const ValueId* vals, size_t n,
                    uint32_t active, double q, uint32_t* viol,
                    uint32_t* strict) {
  uint32_t v = 0, s = 0;
  for (size_t w = 0; w < n; ++w) {
    if (!((active >> w) & 1u)) continue;
    const double lhs = col[vals[w]];
    if (lhs > q) v |= 1u << w;
    if (lhs < q) s |= 1u << w;
  }
  *viol = v;
  *strict = s;
}

void NumLanesScalar(const double* y, size_t n, uint32_t active, double x,
                    double scale, double q, uint32_t* viol,
                    uint32_t* strict) {
  uint32_t v = 0, s = 0;
  for (size_t w = 0; w < n; ++w) {
    if (!((active >> w) & 1u)) continue;
    const double lhs = scale * std::fabs(y[w] - x);
    if (lhs > q) v |= 1u << w;
    if (lhs < q) s |= 1u << w;
  }
  *viol = v;
  *strict = s;
}

constexpr LaneFns kScalarFns = {CatLanesScalar, NumLanesScalar};

#ifdef NMRS_KERNEL_AVX2

__attribute__((target("avx2"))) void CatLanesAvx2(const double* col,
                                                  const ValueId* vals,
                                                  size_t n, uint32_t active,
                                                  double q, uint32_t* viol,
                                                  uint32_t* strict) {
  uint32_t v = 0, s = 0;
  const __m256d qv = _mm256_set1_pd(q);
  // Full-mask gather with a zeroed source: identical to the plain
  // _mm256_i32gather_pd, but avoids GCC's maybe-uninitialized warning on
  // the unmasked intrinsic's implicit pass-through operand.
  const __m256d zero = _mm256_setzero_pd();
  const __m256d ones =
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  size_t w = 0;
  // Two independent gathers per iteration: vgatherdpd has a long latency,
  // so a single-gather loop serializes on it — the pair keeps the load
  // ports busy while the first gather is still in flight.
  for (; w + 8 <= n; w += 8) {
    if (!((active >> w) & 0xFFu)) continue;
    const __m128i idx0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + w));
    const __m128i idx1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + w + 4));
    const __m256d lhs0 = _mm256_mask_i32gather_pd(zero, col, idx0, ones, 8);
    const __m256d lhs1 = _mm256_mask_i32gather_pd(zero, col, idx1, ones, 8);
    const uint32_t v0 = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(lhs0, qv, _CMP_GT_OQ)));
    const uint32_t v1 = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(lhs1, qv, _CMP_GT_OQ)));
    const uint32_t s0 = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(lhs0, qv, _CMP_LT_OQ)));
    const uint32_t s1 = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(lhs1, qv, _CMP_LT_OQ)));
    v |= (v0 | (v1 << 4)) << w;
    s |= (s0 | (s1 << 4)) << w;
  }
  for (; w + 4 <= n; w += 4) {
    if (!((active >> w) & 0xFu)) continue;
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + w));
    const __m256d lhs = _mm256_mask_i32gather_pd(zero, col, idx, ones, 8);
    v |= static_cast<uint32_t>(
             _mm256_movemask_pd(_mm256_cmp_pd(lhs, qv, _CMP_GT_OQ)))
         << w;
    s |= static_cast<uint32_t>(
             _mm256_movemask_pd(_mm256_cmp_pd(lhs, qv, _CMP_LT_OQ)))
         << w;
  }
  for (; w < n; ++w) {
    if (!((active >> w) & 1u)) continue;
    const double lhs = col[vals[w]];
    if (lhs > q) v |= 1u << w;
    if (lhs < q) s |= 1u << w;
  }
  *viol = v;
  *strict = s;
}

__attribute__((target("avx2"))) void NumLanesAvx2(const double* y, size_t n,
                                                  uint32_t active, double x,
                                                  double scale, double q,
                                                  uint32_t* viol,
                                                  uint32_t* strict) {
  uint32_t v = 0, s = 0;
  const __m256d xv = _mm256_set1_pd(x);
  const __m256d sc = _mm256_set1_pd(scale);
  const __m256d qv = _mm256_set1_pd(q);
  // fabs via clearing the sign bit — identical to std::fabs on finite
  // doubles, so the product matches the scalar NumDist bit for bit.
  const __m256d absmask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    if (!((active >> w) & 0xFu)) continue;
    const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(y + w), xv);
    const __m256d lhs = _mm256_mul_pd(sc, _mm256_and_pd(diff, absmask));
    v |= static_cast<uint32_t>(
             _mm256_movemask_pd(_mm256_cmp_pd(lhs, qv, _CMP_GT_OQ)))
         << w;
    s |= static_cast<uint32_t>(
             _mm256_movemask_pd(_mm256_cmp_pd(lhs, qv, _CMP_LT_OQ)))
         << w;
  }
  for (; w < n; ++w) {
    if (!((active >> w) & 1u)) continue;
    const double lhs = scale * std::fabs(y[w] - x);
    if (lhs > q) v |= 1u << w;
    if (lhs < q) s |= 1u << w;
  }
  *viol = v;
  *strict = s;
}

constexpr LaneFns kAvx2Fns = {CatLanesAvx2, NumLanesAvx2};

bool DetectAvx2() { return __builtin_cpu_supports("avx2"); }

#endif  // NMRS_KERNEL_AVX2

std::atomic<bool> g_force_scalar{false};

const LaneFns& FnsFor(KernelDispatch d) {
#ifdef NMRS_KERNEL_AVX2
  if (d == KernelDispatch::kAvx2) return kAvx2Fns;
#endif
  (void)d;
  return kScalarFns;
}

}  // namespace

KernelDispatch ActiveKernelDispatch() {
#ifdef NMRS_KERNEL_AVX2
  static const bool kAvx2 = DetectAvx2();
  if (kAvx2 && !g_force_scalar.load(std::memory_order_relaxed)) {
    return KernelDispatch::kAvx2;
  }
#endif
  return KernelDispatch::kScalar;
}

const char* KernelDispatchName(KernelDispatch d) {
  return d == KernelDispatch::kAvx2 ? "avx2" : "scalar";
}

void ForceScalarKernelDispatchForTest(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

DominanceKernel::DominanceKernel(const PruneContext& ctx,
                                 const ColumnarBatch& cols)
    : ctx_(&ctx),
      cols_(&cols),
      dispatch_(ActiveKernelDispatch()),
      num_blocks_((cols.size() + kBlockRows - 1) / kBlockRows) {
  NMRS_CHECK(ctx.table() != nullptr)
      << "DominanceKernel needs a table-backed PruneContext";
  for (AttrId a : ctx.selected()) {
    NMRS_CHECK(a < cols.num_attrs())
        << "ColumnarBatch narrower than the context's selection";
  }
  block_ready_.assign(num_blocks_, 0);
  prunes_.assign(cols.size(), 0);
  nchecks_.assign(cols.size(), 0);
}

void DominanceKernel::BeginCandidate() {
  std::fill(block_ready_.begin(), block_ready_.end(), 0);
}

void DominanceKernel::EnsureBlock(size_t block) {
  if (block_ready_[block]) return;
  block_ready_[block] = 1;
  const size_t begin = block * kBlockRows;
  const size_t n = std::min(kBlockRows, cols_->size() - begin);
  const size_t m = ctx_->num_selected();
  const LaneFns& fns = FnsFor(dispatch_);
  uint32_t active = n == 32 ? ~0u : ((1u << n) - 1u);
  uint32_t strict_any = 0;
  uint16_t* nch = nchecks_.data() + begin;
  uint8_t* pr = prunes_.data() + begin;
  for (size_t k = 0; k < m && active != 0; ++k) {
    const AttrId a = ctx_->selected()[k];
    uint32_t viol = 0, strict = 0;
    if (ctx_->SelectedIsNumeric(k)) {
      fns.num(cols_->numerics(a) + begin, n, active,
              ctx_->candidate_numerics()[a],
              ctx_->space().numeric(a).scale(), ctx_->QueryDist(k), &viol,
              &strict);
    } else {
      fns.cat(ctx_->CandidateColumn(k), cols_->values(a) + begin, n, active,
              ctx_->QueryDist(k), &viol, &strict);
    }
    kernel_checks_ += static_cast<uint64_t>(__builtin_popcount(active));
    // Rows violated now did their last scalar-equivalent check at k.
    uint32_t newly = active & viol;
    while (newly != 0) {
      const unsigned w = static_cast<unsigned>(__builtin_ctz(newly));
      newly &= newly - 1;
      nch[w] = static_cast<uint16_t>(k + 1);
    }
    strict_any |= strict;
    active &= ~viol;
  }
  // Rows that survived every attribute made all m checks; they prune iff
  // some attribute was strictly closer (the scalar loop's `strict` flag —
  // strict bits of violated rows are irrelevant, their prune bit is 0).
  const uint32_t pruners = active & strict_any;
  std::memset(pr, 0, n);
  uint32_t rest = pruners;
  while (rest != 0) {
    const unsigned w = static_cast<unsigned>(__builtin_ctz(rest));
    rest &= rest - 1;
    pr[w] = 1;
  }
  rest = active;
  while (rest != 0) {
    const unsigned w = static_cast<unsigned>(__builtin_ctz(rest));
    rest &= rest - 1;
    nch[w] = static_cast<uint16_t>(m);
  }
}

uint64_t DominanceKernel::CountPruners(size_t begin, size_t end,
                                       uint64_t* checks) {
  uint64_t pruners = 0;
  uint64_t nch = 0;
  const size_t m = ctx_->num_selected();
  const LaneFns& fns = FnsFor(dispatch_);
  size_t j = begin;
  // Partial blocks at the edges go through the cached per-row path.
  while (j < end && j % kBlockRows != 0) {
    EnsureBlock(j / kBlockRows);
    pruners += prunes_[j];
    nch += nchecks_[j];
    ++j;
  }
  // Full blocks need no per-row artifacts at all: the sum of the scalar
  // loop's per-row check counts is the number of still-active rows at
  // each attribute (a row first violated at attribute k is active for
  // exactly its k+1 checks), and the pruner count is one popcount of the
  // final survivor & strict mask. Skipping the prunes_/nchecks_ writes
  // (and their later re-reads) is what makes bulk counting memory-lean on
  // batches that outgrow L1.
  for (; j + kBlockRows <= end; j += kBlockRows) {
    uint32_t active = ~0u;
    uint32_t strict_any = 0;
    for (size_t k = 0; k < m && active != 0; ++k) {
      const AttrId a = ctx_->selected()[k];
      uint32_t viol = 0, strict = 0;
      if (ctx_->SelectedIsNumeric(k)) {
        fns.num(cols_->numerics(a) + j, kBlockRows, active,
                ctx_->candidate_numerics()[a],
                ctx_->space().numeric(a).scale(), ctx_->QueryDist(k), &viol,
                &strict);
      } else {
        fns.cat(ctx_->CandidateColumn(k), cols_->values(a) + j, kBlockRows,
                active, ctx_->QueryDist(k), &viol, &strict);
      }
      const uint64_t alive =
          static_cast<uint64_t>(__builtin_popcount(active));
      kernel_checks_ += alive;
      nch += alive;
      strict_any |= strict;
      active &= ~viol;
    }
    pruners +=
        static_cast<uint64_t>(__builtin_popcount(active & strict_any));
  }
  for (; j < end; ++j) {
    EnsureBlock(j / kBlockRows);
    pruners += prunes_[j];
    nch += nchecks_[j];
  }
  *checks += nch;
  return pruners;
}

bool DominanceKernel::RowPrunes(size_t j) {
  EnsureBlock(j / kBlockRows);
  return prunes_[j] != 0;
}

uint32_t DominanceKernel::RowChecks(size_t j) {
  EnsureBlock(j / kBlockRows);
  return nchecks_[j];
}

bool DominanceKernel::FindPrunerForward(size_t begin, size_t end,
                                        RowId skip_id, uint64_t* pair_tests,
                                        uint64_t* checks) {
  const RowId* ids = cols_->ids();
  for (size_t j = begin; j < end; ++j) {
    if (ids[j] == skip_id) continue;
    EnsureBlock(j / kBlockRows);
    ++*pair_tests;
    *checks += nchecks_[j];
    if (prunes_[j]) return true;
  }
  return false;
}

bool DominanceKernel::FindPrunerRing(size_t center, RowId skip_id,
                                     uint64_t* pair_tests,
                                     uint64_t* checks) {
  const size_t n = cols_->size();
  const RowId* ids = cols_->ids();
  auto try_row = [&](size_t j) {
    if (ids[j] == skip_id) return false;
    EnsureBlock(j / kBlockRows);
    ++*pair_tests;
    *checks += nchecks_[j];
    return prunes_[j] != 0;
  };
  for (size_t off = 1; off < n; ++off) {
    if (off <= center && try_row(center - off)) return true;
    if (center + off < n && try_row(center + off)) return true;
  }
  return false;
}

}  // namespace nmrs
