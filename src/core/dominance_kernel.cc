#include "core/dominance_kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "core/query_distance_table.h"
#include "sim/similarity_space.h"

// The AVX2 lane evaluators are compiled whenever the toolchain supports
// per-function ISA targeting and NMRS_NO_SIMD was not requested; whether
// they *run* is a runtime cpuid decision (ActiveKernelDispatch), mirroring
// the crc32c.cc hardware path.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(NMRS_NO_SIMD)
#define NMRS_KERNEL_AVX2 1
#include <immintrin.h>
#endif

namespace nmrs {

namespace {

/// Lane evaluators: fill `viol` / `strict` bitmasks for rows [0, n),
/// n <= DominanceKernel::kBlockRows — bit w reports lhs_w > q / lhs_w < q.
/// The *_fill evaluators materialize the lhs array itself (for the
/// SharedCandidateCache), and `cmp` compares a materialized lhs array —
/// the same doubles and the same IEEE compares, so fused and cached
/// evaluation produce identical masks.
struct LaneFns {
  // Categorical: lhs_w = col[vals[w]] (col is the matrix column d(., x)).
  // `active` marks the rows still undecided: lanes of dead 4-row groups
  // may be skipped entirely (their viol/strict bits are never read — the
  // caller masks them out), which saves most gathers on late attributes.
  void (*cat)(const double* col, const ValueId* vals, size_t n,
              uint32_t active, double q, uint32_t* viol, uint32_t* strict);
  // Numeric: lhs_w = scale * |y[w] - x|.
  void (*num)(const double* y, size_t n, uint32_t active, double x,
              double scale, double q, uint32_t* viol, uint32_t* strict);
  // Compare-only pass over a materialized lhs array.
  void (*cmp)(const double* lhs, size_t n, uint32_t active, double q,
              uint32_t* viol, uint32_t* strict);
  // lhs materialization (all n rows — the array is shared by queries
  // whose active masks differ).
  void (*cat_fill)(const double* col, const ValueId* vals, size_t n,
                   double* lhs);
  void (*num_fill)(const double* y, size_t n, double x, double scale,
                   double* lhs);
};

void CatLanesScalar(const double* col, const ValueId* vals, size_t n,
                    uint32_t active, double q, uint32_t* viol,
                    uint32_t* strict) {
  uint32_t v = 0, s = 0;
  for (size_t w = 0; w < n; ++w) {
    if (!((active >> w) & 1u)) continue;
    const double lhs = col[vals[w]];
    if (lhs > q) v |= 1u << w;
    if (lhs < q) s |= 1u << w;
  }
  *viol = v;
  *strict = s;
}

void NumLanesScalar(const double* y, size_t n, uint32_t active, double x,
                    double scale, double q, uint32_t* viol,
                    uint32_t* strict) {
  uint32_t v = 0, s = 0;
  for (size_t w = 0; w < n; ++w) {
    if (!((active >> w) & 1u)) continue;
    const double lhs = scale * std::fabs(y[w] - x);
    if (lhs > q) v |= 1u << w;
    if (lhs < q) s |= 1u << w;
  }
  *viol = v;
  *strict = s;
}

void CmpLanesScalar(const double* lhs, size_t n, uint32_t active, double q,
                    uint32_t* viol, uint32_t* strict) {
  uint32_t v = 0, s = 0;
  for (size_t w = 0; w < n; ++w) {
    if (!((active >> w) & 1u)) continue;
    const double l = lhs[w];
    if (l > q) v |= 1u << w;
    if (l < q) s |= 1u << w;
  }
  *viol = v;
  *strict = s;
}

void CatFillScalar(const double* col, const ValueId* vals, size_t n,
                   double* lhs) {
  for (size_t w = 0; w < n; ++w) lhs[w] = col[vals[w]];
}

void NumFillScalar(const double* y, size_t n, double x, double scale,
                   double* lhs) {
  for (size_t w = 0; w < n; ++w) lhs[w] = scale * std::fabs(y[w] - x);
}

constexpr LaneFns kScalarFns = {CatLanesScalar, NumLanesScalar,
                                CmpLanesScalar, CatFillScalar,
                                NumFillScalar};

#ifdef NMRS_KERNEL_AVX2

__attribute__((target("avx2"))) void CatLanesAvx2(const double* col,
                                                  const ValueId* vals,
                                                  size_t n, uint32_t active,
                                                  double q, uint32_t* viol,
                                                  uint32_t* strict) {
  uint32_t v = 0, s = 0;
  const __m256d qv = _mm256_set1_pd(q);
  // Full-mask gather with a zeroed source: identical to the plain
  // _mm256_i32gather_pd, but avoids GCC's maybe-uninitialized warning on
  // the unmasked intrinsic's implicit pass-through operand.
  const __m256d zero = _mm256_setzero_pd();
  const __m256d ones =
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  size_t w = 0;
  // Two independent gathers per iteration: vgatherdpd has a long latency,
  // so a single-gather loop serializes on it — the pair keeps the load
  // ports busy while the first gather is still in flight.
  for (; w + 8 <= n; w += 8) {
    if (!((active >> w) & 0xFFu)) continue;
    const __m128i idx0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + w));
    const __m128i idx1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + w + 4));
    const __m256d lhs0 = _mm256_mask_i32gather_pd(zero, col, idx0, ones, 8);
    const __m256d lhs1 = _mm256_mask_i32gather_pd(zero, col, idx1, ones, 8);
    const uint32_t v0 = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(lhs0, qv, _CMP_GT_OQ)));
    const uint32_t v1 = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(lhs1, qv, _CMP_GT_OQ)));
    const uint32_t s0 = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(lhs0, qv, _CMP_LT_OQ)));
    const uint32_t s1 = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(lhs1, qv, _CMP_LT_OQ)));
    v |= (v0 | (v1 << 4)) << w;
    s |= (s0 | (s1 << 4)) << w;
  }
  for (; w + 4 <= n; w += 4) {
    if (!((active >> w) & 0xFu)) continue;
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + w));
    const __m256d lhs = _mm256_mask_i32gather_pd(zero, col, idx, ones, 8);
    v |= static_cast<uint32_t>(
             _mm256_movemask_pd(_mm256_cmp_pd(lhs, qv, _CMP_GT_OQ)))
         << w;
    s |= static_cast<uint32_t>(
             _mm256_movemask_pd(_mm256_cmp_pd(lhs, qv, _CMP_LT_OQ)))
         << w;
  }
  for (; w < n; ++w) {
    if (!((active >> w) & 1u)) continue;
    const double lhs = col[vals[w]];
    if (lhs > q) v |= 1u << w;
    if (lhs < q) s |= 1u << w;
  }
  *viol = v;
  *strict = s;
}

__attribute__((target("avx2"))) void NumLanesAvx2(const double* y, size_t n,
                                                  uint32_t active, double x,
                                                  double scale, double q,
                                                  uint32_t* viol,
                                                  uint32_t* strict) {
  uint32_t v = 0, s = 0;
  const __m256d xv = _mm256_set1_pd(x);
  const __m256d sc = _mm256_set1_pd(scale);
  const __m256d qv = _mm256_set1_pd(q);
  // fabs via clearing the sign bit — identical to std::fabs on finite
  // doubles, so the product matches the scalar NumDist bit for bit.
  const __m256d absmask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    if (!((active >> w) & 0xFu)) continue;
    const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(y + w), xv);
    const __m256d lhs = _mm256_mul_pd(sc, _mm256_and_pd(diff, absmask));
    v |= static_cast<uint32_t>(
             _mm256_movemask_pd(_mm256_cmp_pd(lhs, qv, _CMP_GT_OQ)))
         << w;
    s |= static_cast<uint32_t>(
             _mm256_movemask_pd(_mm256_cmp_pd(lhs, qv, _CMP_LT_OQ)))
         << w;
  }
  for (; w < n; ++w) {
    if (!((active >> w) & 1u)) continue;
    const double lhs = scale * std::fabs(y[w] - x);
    if (lhs > q) v |= 1u << w;
    if (lhs < q) s |= 1u << w;
  }
  *viol = v;
  *strict = s;
}

__attribute__((target("avx2"))) void CmpLanesAvx2(const double* lhs,
                                                  size_t n, uint32_t active,
                                                  double q, uint32_t* viol,
                                                  uint32_t* strict) {
  uint32_t v = 0, s = 0;
  const __m256d qv = _mm256_set1_pd(q);
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    if (!((active >> w) & 0xFu)) continue;
    const __m256d l = _mm256_loadu_pd(lhs + w);
    v |= static_cast<uint32_t>(
             _mm256_movemask_pd(_mm256_cmp_pd(l, qv, _CMP_GT_OQ)))
         << w;
    s |= static_cast<uint32_t>(
             _mm256_movemask_pd(_mm256_cmp_pd(l, qv, _CMP_LT_OQ)))
         << w;
  }
  for (; w < n; ++w) {
    if (!((active >> w) & 1u)) continue;
    const double l = lhs[w];
    if (l > q) v |= 1u << w;
    if (l < q) s |= 1u << w;
  }
  *viol = v;
  *strict = s;
}

__attribute__((target("avx2"))) void CatFillAvx2(const double* col,
                                                 const ValueId* vals,
                                                 size_t n, double* lhs) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + w));
    _mm256_storeu_pd(lhs + w,
                     _mm256_mask_i32gather_pd(zero, col, idx, ones, 8));
  }
  for (; w < n; ++w) lhs[w] = col[vals[w]];
}

__attribute__((target("avx2"))) void NumFillAvx2(const double* y, size_t n,
                                                 double x, double scale,
                                                 double* lhs) {
  const __m256d xv = _mm256_set1_pd(x);
  const __m256d sc = _mm256_set1_pd(scale);
  const __m256d absmask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(y + w), xv);
    _mm256_storeu_pd(lhs + w, _mm256_mul_pd(sc, _mm256_and_pd(diff, absmask)));
  }
  for (; w < n; ++w) lhs[w] = scale * std::fabs(y[w] - x);
}

constexpr LaneFns kAvx2Fns = {CatLanesAvx2, NumLanesAvx2, CmpLanesAvx2,
                              CatFillAvx2, NumFillAvx2};

bool DetectAvx2() { return __builtin_cpu_supports("avx2"); }

#endif  // NMRS_KERNEL_AVX2

std::atomic<bool> g_force_scalar{false};

const LaneFns& FnsFor(KernelDispatch d) {
#ifdef NMRS_KERNEL_AVX2
  if (d == KernelDispatch::kAvx2) return kAvx2Fns;
#endif
  (void)d;
  return kScalarFns;
}

}  // namespace

KernelDispatch ActiveKernelDispatch() {
#ifdef NMRS_KERNEL_AVX2
  static const bool kAvx2 = DetectAvx2();
  if (kAvx2 && !g_force_scalar.load(std::memory_order_relaxed)) {
    return KernelDispatch::kAvx2;
  }
#endif
  return KernelDispatch::kScalar;
}

const char* KernelDispatchName(KernelDispatch d) {
  return d == KernelDispatch::kAvx2 ? "avx2" : "scalar";
}

void ForceScalarKernelDispatchForTest(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

void SharedCandidateCache::Attach(const PruneContext& ctx,
                                  const ColumnarBatch& cols) {
  NMRS_CHECK(ctx.table() != nullptr)
      << "SharedCandidateCache needs a table-backed PruneContext";
  cols_ = &cols;
  dispatch_ = ActiveKernelDispatch();
  const size_t m = ctx.num_selected();
  attrs_.assign(ctx.selected().begin(), ctx.selected().end());
  is_numeric_.assign(m, 0);
  num_scale_.assign(m, 0.0);
  for (size_t k = 0; k < m; ++k) {
    if (ctx.SelectedIsNumeric(k)) {
      is_numeric_[k] = 1;
      num_scale_[k] = ctx.space().numeric(attrs_[k]).scale();
    }
  }
  xcol_.assign(m, nullptr);
  xnum_.assign(m, 0.0);
  num_blocks_ =
      (cols.size() + DominanceKernel::kBlockRows - 1) /
      DominanceKernel::kBlockRows;
  padded_rows_ = num_blocks_ * DominanceKernel::kBlockRows;
  lhs_.assign(m * padded_rows_, 0.0);
  ready_.assign(m * num_blocks_, 0);
  blocks_filled_ = 0;
}

void SharedCandidateCache::SetCandidate(const PruneContext& ctx) {
  const size_t m = attrs_.size();
  for (size_t k = 0; k < m; ++k) {
    if (is_numeric_[k]) {
      xnum_[k] = ctx.candidate_numerics()[attrs_[k]];
    } else {
      // The cached matrix column d(., x) — a pointer into the
      // SimilaritySpace, identical for every query's context.
      xcol_[k] = ctx.CandidateColumn(k);
    }
  }
  std::fill(ready_.begin(), ready_.end(), 0);
}

const double* SharedCandidateCache::EnsureLhs(size_t k, size_t block) {
  double* base = lhs_.data() + k * padded_rows_ +
                 block * DominanceKernel::kBlockRows;
  uint8_t& r = ready_[k * num_blocks_ + block];
  if (!r) {
    r = 1;
    ++blocks_filled_;
    const size_t begin = block * DominanceKernel::kBlockRows;
    const size_t n =
        std::min(DominanceKernel::kBlockRows, cols_->size() - begin);
    const LaneFns& fns = FnsFor(dispatch_);
    const AttrId a = attrs_[k];
    if (is_numeric_[k]) {
      fns.num_fill(cols_->numerics(a) + begin, n, xnum_[k], num_scale_[k],
                   base);
    } else {
      fns.cat_fill(xcol_[k], cols_->values(a) + begin, n, base);
    }
  }
  return base;
}

DominanceKernel::DominanceKernel(const PruneContext& ctx,
                                 const ColumnarBatch& cols,
                                 KernelPolicy policy,
                                 SharedCandidateCache* shared)
    : ctx_(&ctx),
      cols_(&cols),
      shared_(shared),
      dispatch_(ActiveKernelDispatch()),
      policy_(policy),
      num_groups_((cols.size() + kGroupRows - 1) / kGroupRows) {
  NMRS_CHECK(ctx.table() != nullptr)
      << "DominanceKernel needs a table-backed PruneContext";
  for (AttrId a : ctx.selected()) {
    NMRS_CHECK(a < cols.num_attrs())
        << "ColumnarBatch narrower than the context's selection";
  }
  NMRS_CHECK(policy_.block_rows == kGroupRows ||
             policy_.block_rows == kBlockRows)
      << "block_rows must be 8 or 32";
  if (shared_ != nullptr) {
    NMRS_CHECK(shared_->attached() && shared_->batch() == &cols)
        << "SharedCandidateCache bound to a different batch";
    NMRS_CHECK(shared_->num_selected() == ctx.num_selected())
        << "sharing queries must agree on the attribute selection";
  }
  group_epoch_.assign(num_groups_, 0);
  prunes_.assign(cols.size(), 0);
  nchecks_.assign(cols.size(), 0);
  bulk_active_.assign(ctx.num_selected(), 0);
  promoted_ = policy_.promote_rows == 0;
}

void DominanceKernel::BeginCandidate() {
  ++epoch_;
  survived_ = 0;
  promoted_ = policy_.promote_rows == 0;
}

bool DominanceKernel::ProbeRow(size_t j, uint32_t* nch) const {
  // Mirrors PruneContext::Prunes on the memoized (table-backed) path: the
  // same column loads, the same scale * |y - x| product, the same compare
  // order and early abort — so the probe's verdict and check count are the
  // scalar loop's, bit for bit.
  const size_t m = ctx_->num_selected();
  bool strict = false;
  for (size_t k = 0; k < m; ++k) {
    const AttrId a = ctx_->selected()[k];
    const double q = ctx_->QueryDist(k);
    double lhs;
    if (ctx_->SelectedIsNumeric(k)) {
      lhs = ctx_->space().numeric(a).scale() *
            std::fabs(cols_->numerics(a)[j] - ctx_->candidate_numerics()[a]);
    } else {
      lhs = ctx_->CandidateColumn(k)[cols_->values(a)[j]];
    }
    if (lhs > q) {
      *nch = static_cast<uint32_t>(k + 1);
      return false;
    }
    if (lhs < q) strict = true;
  }
  *nch = static_cast<uint32_t>(m);
  return strict;
}

void DominanceKernel::EvalRows(size_t begin, size_t n,
                               uint32_t init_active) {
  const size_t m = ctx_->num_selected();
  const LaneFns& fns = FnsFor(dispatch_);
  uint32_t active = init_active;
  uint32_t strict_any = 0;
  uint16_t* nch = nchecks_.data() + begin;
  uint8_t* pr = prunes_.data() + begin;
  block_rows_ += static_cast<uint64_t>(__builtin_popcount(init_active));
  const size_t block = begin / kBlockRows;
  const size_t block_off = begin - block * kBlockRows;
  for (size_t k = 0; k < m && active != 0; ++k) {
    const AttrId a = ctx_->selected()[k];
    uint32_t viol = 0, strict = 0;
    if (shared_ != nullptr) {
      const double* lhs = shared_->EnsureLhs(k, block) + block_off;
      fns.cmp(lhs, n, active, ctx_->QueryDist(k), &viol, &strict);
    } else if (ctx_->SelectedIsNumeric(k)) {
      fns.num(cols_->numerics(a) + begin, n, active,
              ctx_->candidate_numerics()[a],
              ctx_->space().numeric(a).scale(), ctx_->QueryDist(k), &viol,
              &strict);
    } else {
      fns.cat(ctx_->CandidateColumn(k), cols_->values(a) + begin, n, active,
              ctx_->QueryDist(k), &viol, &strict);
    }
    kernel_checks_ += static_cast<uint64_t>(__builtin_popcount(active));
    // Rows violated now did their last scalar-equivalent check at k.
    uint32_t newly = active & viol;
    while (newly != 0) {
      const unsigned w = static_cast<unsigned>(__builtin_ctz(newly));
      newly &= newly - 1;
      nch[w] = static_cast<uint16_t>(k + 1);
    }
    strict_any |= strict;
    active &= ~viol;
  }
  // Rows that survived every attribute made all m checks; they prune iff
  // some attribute was strictly closer (the scalar loop's `strict` flag —
  // strict bits of violated rows are irrelevant, their prune bit is 0).
  // Only the requested rows are written: other rows of the window may
  // carry results from an earlier (narrower) evaluation.
  const uint32_t pruners = active & strict_any;
  uint32_t rest = init_active;
  while (rest != 0) {
    const unsigned w = static_cast<unsigned>(__builtin_ctz(rest));
    rest &= rest - 1;
    pr[w] = static_cast<uint8_t>((pruners >> w) & 1u);
  }
  rest = active;
  while (rest != 0) {
    const unsigned w = static_cast<unsigned>(__builtin_ctz(rest));
    rest &= rest - 1;
    nch[w] = static_cast<uint16_t>(m);
  }
}

void DominanceKernel::EvalWindow(size_t row) {
  size_t begin, span;
  if (policy_.block_rows >= kBlockRows) {
    begin = row & ~(kBlockRows - 1);
    span = kBlockRows;
  } else {
    begin = row & ~(kGroupRows - 1);
    span = kGroupRows;
  }
  const size_t n = std::min(span, cols_->size() - begin);
  uint32_t want = 0;
  const size_t g0 = begin / kGroupRows;
  const size_t g_end = (begin + n + kGroupRows - 1) / kGroupRows;
  for (size_t g = g0; g < g_end; ++g) {
    if (GroupReady(g)) continue;
    group_epoch_[g] = epoch_;
    const size_t lo = g * kGroupRows - begin;
    const size_t cnt = std::min(kGroupRows, n - lo);
    want |= ((1u << cnt) - 1u) << lo;
  }
  if (want != 0) EvalRows(begin, n, want);
}

uint64_t DominanceKernel::CountPruners(size_t begin, size_t end,
                                       uint64_t* checks) {
  uint64_t pruners = 0;
  uint64_t nch = 0;
  const size_t m = ctx_->num_selected();
  const LaneFns& fns = FnsFor(dispatch_);
  size_t j = begin;
  // Partial blocks at the edges go through the cached per-row path.
  while (j < end && j % kBlockRows != 0) {
    EnsureRow(j);
    pruners += prunes_[j];
    nch += nchecks_[j];
    ++j;
  }
  // Full blocks need no per-row artifacts at all: the sum of the scalar
  // loop's per-row check counts is the number of still-active rows at
  // each attribute (a row first violated at attribute k is active for
  // exactly its k+1 checks), and the pruner count is one popcount of the
  // final survivor & strict mask. Skipping the prunes_/nchecks_ writes
  // (and their later re-reads) is what makes bulk counting memory-lean on
  // batches that outgrow L1.
  for (; j + kBlockRows <= end; j += kBlockRows) {
    uint32_t active = ~0u;
    uint32_t strict_any = 0;
    for (size_t k = 0; k < m && active != 0; ++k) {
      const AttrId a = ctx_->selected()[k];
      uint32_t viol = 0, strict = 0;
      if (shared_ != nullptr) {
        const double* lhs = shared_->EnsureLhs(k, j / kBlockRows);
        fns.cmp(lhs, kBlockRows, active, ctx_->QueryDist(k), &viol,
                &strict);
      } else if (ctx_->SelectedIsNumeric(k)) {
        fns.num(cols_->numerics(a) + j, kBlockRows, active,
                ctx_->candidate_numerics()[a],
                ctx_->space().numeric(a).scale(), ctx_->QueryDist(k), &viol,
                &strict);
      } else {
        fns.cat(ctx_->CandidateColumn(k), cols_->values(a) + j, kBlockRows,
                active, ctx_->QueryDist(k), &viol, &strict);
      }
      const uint64_t alive =
          static_cast<uint64_t>(__builtin_popcount(active));
      kernel_checks_ += alive;
      nch += alive;
      strict_any |= strict;
      active &= ~viol;
    }
    pruners +=
        static_cast<uint64_t>(__builtin_popcount(active & strict_any));
  }
  for (; j < end; ++j) {
    EnsureRow(j);
    pruners += prunes_[j];
    nch += nchecks_[j];
  }
  *checks += nch;
  return pruners;
}

bool DominanceKernel::RowPrunes(size_t j) {
  EnsureRow(j);
  return prunes_[j] != 0;
}

uint32_t DominanceKernel::RowChecks(size_t j) {
  EnsureRow(j);
  return nchecks_[j];
}

bool DominanceKernel::BulkWindow(size_t begin, size_t n,
                                 uint64_t* pair_tests, uint64_t* checks) {
  // Like CountPruners' full-block loop, the window computes lane masks
  // only — no prunes_/nchecks_ writes, no later re-reads. The scalar
  // accounting falls out of the per-attribute survivor masks alone: a row
  // first violated at attribute k was active for exactly its k+1 checks,
  // so each row's scalar check count is the number of masks its bit
  // survives into, and summing over rows is one popcount per attribute.
  // Restricting the popcounts to the lanes at or before the first pruner
  // reproduces the early-aborting loop's stop exactly.
  const size_t m = ctx_->num_selected();
  const LaneFns& fns = FnsFor(dispatch_);
  const uint32_t full = n >= 32 ? ~0u : ((1u << n) - 1u);
  uint32_t active = full;
  uint32_t strict_any = 0;
  block_rows_ += static_cast<uint64_t>(n);
  const size_t block = begin / kBlockRows;
  const size_t block_off = begin - block * kBlockRows;
  size_t k = 0;
  for (; k < m && active != 0; ++k) {
    bulk_active_[k] = active;
    const AttrId a = ctx_->selected()[k];
    uint32_t viol = 0, strict = 0;
    if (shared_ != nullptr) {
      const double* lhs = shared_->EnsureLhs(k, block) + block_off;
      fns.cmp(lhs, n, active, ctx_->QueryDist(k), &viol, &strict);
    } else if (ctx_->SelectedIsNumeric(k)) {
      fns.num(cols_->numerics(a) + begin, n, active,
              ctx_->candidate_numerics()[a],
              ctx_->space().numeric(a).scale(), ctx_->QueryDist(k), &viol,
              &strict);
    } else {
      fns.cat(ctx_->CandidateColumn(k), cols_->values(a) + begin, n, active,
              ctx_->QueryDist(k), &viol, &strict);
    }
    kernel_checks_ += static_cast<uint64_t>(__builtin_popcount(active));
    strict_any |= strict;
    active &= ~viol;
  }
  const size_t levels = k;
  const uint32_t pruners = active & strict_any;
  uint64_t nch = 0;
  if (pruners == 0) {
    *pair_tests += n;
    for (size_t l = 0; l < levels; ++l) {
      nch += static_cast<uint64_t>(__builtin_popcount(bulk_active_[l]));
    }
    *checks += nch;
    return false;
  }
  const unsigned f = static_cast<unsigned>(__builtin_ctz(pruners));
  const uint32_t upto = f >= 31 ? ~0u : ((1u << (f + 1)) - 1u);
  *pair_tests += f + 1;
  for (size_t l = 0; l < levels; ++l) {
    nch += static_cast<uint64_t>(
        __builtin_popcount(bulk_active_[l] & upto));
  }
  *checks += nch;
  return true;
}

bool DominanceKernel::FindPrunerForward(size_t begin, size_t end,
                                        RowId skip_id, uint64_t* pair_tests,
                                        uint64_t* checks) {
  const RowId* ids = cols_->ids();
  size_t j = begin;
  // Pre-promotion: the exact scalar early-abort loop.
  for (; j < end && !promoted_; ++j) {
    if (ids[j] == skip_id) continue;
    ++*pair_tests;
    bool p;
    if (GroupReady(j >> 3)) {
      // Already block-evaluated (an external RowPrunes touch): reuse.
      *checks += nchecks_[j];
      p = prunes_[j] != 0;
    } else {
      uint32_t nch;
      p = ProbeRow(j, &nch);
      ++scalar_rows_;
      *checks += nch;
    }
    if (p) return true;
    if (++survived_ >= policy_.promote_rows) {
      promoted_ = true;
      ++promotions_;
    }
  }
  // Post-promotion: window at a time. Windows fully inside the range with
  // no prior evaluation and no skipped row take the bulk path; the rest
  // (range edges, groups a probe reused, the window holding skip_id) go
  // through the per-row artifacts so reuse stays coherent.
  const size_t W =
      policy_.block_rows >= kBlockRows ? kBlockRows : kGroupRows;
  while (j < end) {
    const size_t wb = j & ~(W - 1);
    const size_t wn = std::min(W, cols_->size() - wb);
    const size_t we = std::min(end, wb + wn);
    bool per_row = j != wb || we != wb + wn;
    for (size_t g = wb / kGroupRows;
         !per_row && g * kGroupRows < wb + wn; ++g) {
      per_row = GroupReady(g);
    }
    for (size_t r = wb; !per_row && r < wb + wn; ++r) {
      per_row = ids[r] == skip_id;
    }
    if (per_row) {
      for (; j < we; ++j) {
        if (ids[j] == skip_id) continue;
        ++*pair_tests;
        EnsureRow(j);
        *checks += nchecks_[j];
        if (prunes_[j]) return true;
      }
      continue;
    }
    if (BulkWindow(wb, wn, pair_tests, checks)) return true;
    j = wb + wn;
  }
  return false;
}

DominanceKernel::ProbeResult DominanceKernel::ProbeForward(
    size_t begin, size_t end, RowId skip_id, uint64_t* pair_tests,
    uint64_t* checks) {
  if (promoted_) return ProbeResult::kPromoted;
  const RowId* ids = cols_->ids();
  for (size_t j = begin; j < end; ++j) {
    if (ids[j] == skip_id) continue;
    ++*pair_tests;
    bool p;
    if (GroupReady(j >> 3)) {
      *checks += nchecks_[j];
      p = prunes_[j] != 0;
    } else {
      uint32_t nch;
      p = ProbeRow(j, &nch);
      ++scalar_rows_;
      *checks += nch;
    }
    if (p) return ProbeResult::kPruner;
    if (++survived_ >= policy_.promote_rows) {
      promoted_ = true;
      ++promotions_;
      return ProbeResult::kPromoted;
    }
  }
  return ProbeResult::kExhausted;
}

bool DominanceKernel::FindPrunerRing(size_t center, RowId skip_id,
                                     uint64_t* pair_tests,
                                     uint64_t* checks) {
  const size_t n = cols_->size();
  const RowId* ids = cols_->ids();
  auto try_row = [&](size_t j) {
    if (ids[j] == skip_id) return false;
    ++*pair_tests;
    if (!promoted_) {
      bool p;
      if (GroupReady(j >> 3)) {
        *checks += nchecks_[j];
        p = prunes_[j] != 0;
      } else {
        uint32_t nch;
        p = ProbeRow(j, &nch);
        ++scalar_rows_;
        *checks += nch;
      }
      if (p) return true;
      if (++survived_ >= policy_.promote_rows) {
        promoted_ = true;
        ++promotions_;
      }
      return false;
    }
    EnsureRow(j);
    *checks += nchecks_[j];
    return prunes_[j] != 0;
  };
  for (size_t off = 1; off < n; ++off) {
    if (off <= center && try_row(center - off)) return true;
    if (center + off < n && try_row(center + off)) return true;
  }
  return false;
}

}  // namespace nmrs
