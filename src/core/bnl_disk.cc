#include "core/bnl_disk.h"

#include <algorithm>

#include "common/timer.h"
#include "core/dominance.h"
#include "core/query_distance_table.h"
#include "storage/paged_reader.h"

namespace nmrs {

namespace {

// An object held in the BNL window. `ts` is the read-counter at insertion
// time: an entry can only be confirmed at end of pass if it was inserted
// before the pass's first spill (otherwise some spilled object was never
// compared against it).
struct WindowEntry {
  std::vector<ValueId> values;
  std::vector<double> numerics;
  RowId id;
  uint64_t ts;
};

// a ≻_ref b over the selected attributes (raw-pointer variant of
// DominatesWrt). Counts one check per attribute examined. Both sides of a
// BNL comparison are distances *to* the fixed reference, so the memoized
// path reads the query table's ToQuery column (d(., ref)) — two flat loads
// instead of two matrix indirections per categorical attribute.
bool RawDominates(const SimilaritySpace& space, const Schema& schema,
                  const std::vector<AttrId>& selected,
                  const QueryDistanceTable* table, const Object& ref,
                  const ValueId* a_vals, const double* a_nums,
                  const ValueId* b_vals, const double* b_nums,
                  uint64_t* checks) {
  bool strict = false;
  for (size_t k = 0; k < selected.size(); ++k) {
    const AttrId i = selected[k];
    double da, db;
    if (schema.attribute(i).is_numeric) {
      da = space.NumDist(i, a_nums[i], ref.numerics[i]);
      db = space.NumDist(i, b_nums[i], ref.numerics[i]);
    } else if (table != nullptr) {
      const double* to_ref = table->ToQuery(k);
      da = to_ref[a_vals[i]];
      db = to_ref[b_vals[i]];
    } else {
      da = space.CatDist(i, a_vals[i], ref.values[i]);
      db = space.CatDist(i, b_vals[i], ref.values[i]);
    }
    ++*checks;
    if (da > db) return false;
    if (da < db) strict = true;
  }
  return strict;
}

}  // namespace

StatusOr<ReverseSkylineResult> BnlDynamicSkyline(const StoredDataset& data,
                                                 const SimilaritySpace& space,
                                                 const Object& ref,
                                                 const RSOptions& opts) {
  SimulatedDisk* disk = data.disk();
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  if (opts.memory.pages < 2) {
    return Status::InvalidArgument(
        "BNL needs a memory budget of at least 2 pages");
  }

  Timer timer;
  const IoStats io_before = disk->stats();
  disk->InvalidateArmPosition();

  const std::vector<AttrId> selected =
      ResolveSelectedAttrs(schema, opts.selected_attrs);
  const QueryDistanceTable qtable(space, schema, ref, selected, opts.overlay);
  PagedReader reader(disk, opts.cache_pages ? opts.buffer_pool : nullptr,
                     MakeReaderOptions(opts));
  ReverseSkylineResult result;
  QueryStats& stats = result.stats;

  const RowCodec codec(schema, disk->page_size(),
                       opts.resilience.checksum_pages);
  // One page buffers the input; the rest holds the window.
  const uint64_t window_budget =
      (opts.memory.pages - 1) * disk->page_size();
  const size_t entry_bytes = codec.row_bytes();

  std::vector<WindowEntry> window;
  uint64_t window_bytes = 0;

  // The input of the first pass is `data`; later passes consume the spill
  // file of the previous pass.
  StoredDataset input = data;
  bool input_is_temp = false;

  for (;;) {
    ++stats.phase1_batches;  // = BNL passes
    FileId spill_file = disk->CreateFile("bnl-spill");
    RowWriter spill(disk, spill_file, schema, opts.resilience.checksum_pages);
    uint64_t counter = 0;
    uint64_t first_spill_ts = ~uint64_t{0};

    RowBatch page(m, numerics);
    for (PageId p = 0; p < input.num_pages(); ++p) {
      page.Clear();
      NMRS_RETURN_IF_ERROR(input.ReadPageVia(&reader, p, &page));
      for (size_t i = 0; i < page.size(); ++i) {
        ++counter;
        const ValueId* vals = page.row_values(i);
        const double* nums = page.row_numerics(i);
        const RowId id = page.id(i);

        bool dominated = false;
        for (size_t w = 0; w < window.size();) {
          WindowEntry& entry = window[w];
          if (entry.id == id) {  // re-fed window remainder meeting itself
            ++w;
            continue;
          }
          ++stats.pair_tests;
          if (RawDominates(space, schema, selected, &qtable, ref,
                           entry.values.data(), entry.numerics.data(), vals,
                           nums, &stats.checks)) {
            dominated = true;
            break;
          }
          if (RawDominates(space, schema, selected, &qtable, ref, vals,
                           nums, entry.values.data(), entry.numerics.data(),
                           &stats.checks)) {
            window_bytes -= entry_bytes;
            entry = std::move(window.back());
            window.pop_back();
            continue;  // same index now holds a new entry
          }
          ++w;
        }
        if (dominated) continue;
        if (window_bytes + entry_bytes <= window_budget) {
          WindowEntry entry;
          entry.values.assign(vals, vals + m);
          if (nums != nullptr) {
            entry.numerics.assign(nums, nums + m);
          } else {
            entry.numerics.assign(m, 0.0);
          }
          entry.id = id;
          entry.ts = counter;
          window.push_back(std::move(entry));
          window_bytes += entry_bytes;
        } else {
          if (first_spill_ts == ~uint64_t{0}) first_spill_ts = counter;
          NMRS_RETURN_IF_ERROR(spill.Add(id, vals, nums));
        }
      }
    }
    NMRS_RETURN_IF_ERROR(spill.Finish());

    // Confirm window entries inserted before the first spill; carry the
    // rest into the next pass (they still owe comparisons against the
    // spilled objects).
    std::vector<WindowEntry> carry;
    for (auto& entry : window) {
      if (entry.ts < first_spill_ts) {
        result.rows.push_back(entry.id);
      } else {
        carry.push_back(std::move(entry));
      }
    }
    window.clear();
    window_bytes = 0;

    if (input_is_temp) {
      NMRS_RETURN_IF_ERROR(disk->DeleteFile(input.file()));
    }

    if (spill.rows_written() == 0 && carry.empty()) {
      NMRS_RETURN_IF_ERROR(disk->DeleteFile(spill_file));
      break;
    }

    // Next pass input = carried window entries + spilled objects.
    FileId next_file = disk->CreateFile("bnl-next");
    RowWriter next(disk, next_file, schema, opts.resilience.checksum_pages);
    for (const auto& entry : carry) {
      NMRS_RETURN_IF_ERROR(next.Add(entry.id, entry.values.data(),
                                    numerics ? entry.numerics.data()
                                             : nullptr));
    }
    {
      StoredDataset spilled(disk, spill_file, schema, spill.rows_written());
      RowBatch copy(m, numerics);
      for (PageId p = 0; p < spilled.num_pages(); ++p) {
        copy.Clear();
        NMRS_RETURN_IF_ERROR(spilled.ReadPageVia(&reader, p, &copy));
        for (size_t i = 0; i < copy.size(); ++i) {
          NMRS_RETURN_IF_ERROR(
              next.Add(copy.id(i), copy.row_values(i), copy.row_numerics(i)));
        }
      }
    }
    NMRS_RETURN_IF_ERROR(next.Finish());
    NMRS_RETURN_IF_ERROR(disk->DeleteFile(spill_file));
    input = StoredDataset(disk, next_file, schema, next.rows_written(),
                          opts.resilience.checksum_pages);
    input_is_temp = true;
  }

  std::sort(result.rows.begin(), result.rows.end());
  stats.phase1_checks = stats.checks;
  stats.result_size = result.rows.size();
  stats.io = disk->stats() - io_before;
  reader.FoldStatsInto(&stats.io);
  stats.modeled_backoff_millis = reader.modeled_backoff_millis();
  stats.compute_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace nmrs
