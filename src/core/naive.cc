#include "core/naive.h"

#include <algorithm>

#include "common/timer.h"
#include "core/dominance.h"
#include "core/dominance_kernel.h"
#include "core/query_distance_table.h"
#include "data/columnar_batch.h"
#include "storage/paged_reader.h"

namespace nmrs {

StatusOr<ReverseSkylineResult> NaiveReverseSkyline(
    const StoredDataset& data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts) {
  SimulatedDisk* disk = data.disk();
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;

  Timer timer;
  const IoStats io_before = disk->stats();
  disk->InvalidateArmPosition();

  PagedReader reader(disk, opts.cache_pages ? opts.buffer_pool : nullptr,
                     MakeReaderOptions(opts));
  const std::vector<AttrId> selected =
      ResolveSelectedAttrs(schema, opts.selected_attrs);
  const QueryDistanceTable qtable(space, schema, query, selected,
                                  opts.overlay);
  PruneContext ctx(space, schema, query, selected, &qtable);
  ReverseSkylineResult result;
  QueryStats& stats = result.stats;

  const uint64_t total_pages = data.num_pages();
  RowBatch outer(m, numerics);
  RowBatch inner(m, numerics);
  // Kernel path: column-major view of the current inner page. Cached by
  // page id — the restart pattern means consecutive candidates mostly get
  // pruned inside the same early page, so the transpose amortizes.
  ColumnarBatch cols;
  PageId cols_page = 0;
  bool cols_valid = false;
  for (PageId op = 0; op < total_pages; ++op) {
    outer.Clear();
    NMRS_RETURN_IF_ERROR(data.ReadPageVia(&reader, op, &outer));
    for (size_t i = 0; i < outer.size(); ++i) {
      ctx.SetCandidate(outer.row_values(i), outer.row_numerics(i));
      const RowId x_id = outer.id(i);
      bool pruned = false;
      // Scan D from the beginning, page by page, until a pruner shows up.
      // The restart pattern makes early pages far hotter than late ones —
      // exactly the skew a small buffer pool absorbs.
      for (PageId ip = 0; ip < total_pages && !pruned; ++ip) {
        inner.Clear();
        NMRS_RETURN_IF_ERROR(data.ReadPageVia(&reader, ip, &inner));
        if (opts.use_kernels) {
          if (!cols_valid || cols_page != ip) {
            cols.Build(inner);
            cols_page = ip;
            cols_valid = true;
          }
          DominanceKernel kernel(
              ctx, cols,
              {opts.kernel_promote_rows, DominanceKernel::kBlockRows});
          pruned = kernel.FindPrunerForward(0, inner.size(), x_id,
                                            &stats.pair_tests, &stats.checks);
          stats.kernel_checks += kernel.kernel_checks();
          stats.kernel_promotions += kernel.promotions();
          stats.kernel_scalar_rows += kernel.scalar_rows();
          stats.kernel_block_rows += kernel.block_rows();
          continue;
        }
        for (size_t j = 0; j < inner.size(); ++j) {
          if (inner.id(j) == x_id) continue;
          ++stats.pair_tests;
          if (ctx.Prunes(inner.row_values(j), inner.row_numerics(j),
                         &stats.checks)) {
            pruned = true;
            break;
          }
        }
      }
      if (!pruned) result.rows.push_back(x_id);
    }
  }

  std::sort(result.rows.begin(), result.rows.end());
  stats.phase1_checks = stats.checks;
  stats.result_size = result.rows.size();
  stats.io = disk->stats() - io_before;
  reader.FoldStatsInto(&stats.io);
  stats.modeled_backoff_millis = reader.modeled_backoff_millis();
  stats.compute_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace nmrs
