#include "core/trs.h"

#include <algorithm>

#include "altree/al_tree.h"
#include "common/timer.h"
#include "core/tree_traversal.h"

namespace nmrs {

using internal_tree::FastEntry;
using internal_tree::Phase1Level;
using internal_tree::Phase2Level;
using internal_tree::TraversalEntry;
using internal_tree::TreeQueryContext;
using NodeId = ALTree::NodeId;

StatusOr<ReverseSkylineResult> TreeReverseSkyline(
    const StoredDataset& sorted_data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts) {
  SimulatedDisk* disk = sorted_data.disk();
  const Schema& schema = sorted_data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  if (opts.memory.pages < 2) {
    return Status::InvalidArgument(
        "TRS needs a memory budget of at least 2 pages");
  }

  Timer timer;
  const IoStats io_before = disk->stats();
  disk->InvalidateArmPosition();

  TreeQueryContext ctx =
      internal_tree::MakeTreeContext(space, schema, query, opts);
  ReverseSkylineResult result;
  QueryStats& stats = result.stats;

  const size_t page_size = disk->page_size();

  // ---- Phase 1 (Alg. 3 lines 1-7). ----
  Timer phase1_timer;
  FileId scratch_file = disk->CreateFile("trs-scratch");
  RowWriter writer(disk, scratch_file, schema);
  {
    ALTree tree(schema, ctx.attr_order);
    RowBatch page_rows(m, numerics);
    PageId next_page = 0;
    const uint64_t budget = opts.memory.pages * page_size;
    std::vector<ValueId> c_values(m, 0);
    std::vector<double> rhs(m, 0.0);
    std::vector<TraversalEntry> stack;
    stack.reserve(256);
    std::vector<FastEntry> fast_stack;
    fast_stack.reserve(256);
    std::vector<Phase1Level> p1_levels(m);
    while (next_page < sorted_data.num_pages()) {
      ++stats.phase1_batches;
      tree.Clear();
      NMRS_RETURN_IF_ERROR(internal_tree::LoadTreeBatch(
          sorted_data, budget, &next_page, &tree, &page_rows));
      if (opts.order_children_by_descendants) tree.PrepareForSearch();

      std::vector<NodeId> leaves;
      tree.ForEachActiveLeaf([&](NodeId l) { leaves.push_back(l); });
      for (NodeId leaf : leaves) {
        internal_tree::LeafValues(tree, leaf, ctx.attr_order, &c_values);
        // Remove one instance of c so it cannot prune itself (Alg. 3
        // line 5, "M \ c"); remaining duplicates still count as pruners.
        tree.TempRemoveLeaf(leaf);
        ++stats.pair_tests;
        bool prunable;
        if (ctx.fast_path) {
          for (size_t l = 0; l < m; ++l) {
            const AttrId a = ctx.attr_order[l];
            p1_levels[l].col = space.matrix(a).ColumnTo(c_values[a]);
            p1_levels[l].rhs = ctx.q_row_by_level[l][c_values[a]];
          }
          prunable = internal_tree::IsPrunableFast(tree, p1_levels, &stats,
                                                   fast_stack);
        } else {
          internal_tree::ComputeRhs(ctx, c_values, &rhs);
          prunable = internal_tree::IsPrunable(tree, ctx, c_values, rhs,
                                               &stats, stack);
        }
        tree.TempRestore(leaf);
        if (!prunable) {
          const auto& rows = tree.LeafRows(leaf);
          for (size_t i = 0; i < rows.size(); ++i) {
            NMRS_RETURN_IF_ERROR(writer.Add(
                rows[i], c_values.data(),
                numerics ? tree.LeafNumerics(leaf, i) : nullptr));
          }
        }
      }
      // Survivors are written out at the end of every batch (paper §4.1).
      NMRS_RETURN_IF_ERROR(writer.FlushPartial());
    }
  }
  NMRS_RETURN_IF_ERROR(writer.Finish());
  stats.phase1_survivors = writer.rows_written();
  stats.phase1_checks = stats.checks;
  stats.phase1_millis = phase1_timer.ElapsedMillis();

  // ---- Phase 2 (Alg. 3 lines 8-16). ----
  Timer phase2_timer;
  StoredDataset survivors(disk, scratch_file, schema, writer.rows_written());
  {
    ALTree tree(schema, ctx.attr_order);
    RowBatch page_rows(m, numerics);
    PageId next_page = 0;
    std::vector<TraversalEntry> stack;
    stack.reserve(256);
    std::vector<FastEntry> fast_stack;
    fast_stack.reserve(256);
    std::vector<Phase2Level> p2_levels(m);
    // One page of the budget is reserved for streaming D (paper §4.1).
    const uint64_t budget = (opts.memory.pages - 1) * page_size;
    while (next_page < survivors.num_pages()) {
      ++stats.phase2_batches;
      tree.Clear();
      NMRS_RETURN_IF_ERROR(internal_tree::LoadTreeBatch(
          survivors, budget, &next_page, &tree, &page_rows));

      RowBatch d_page(m, numerics);
      for (PageId dp = 0; dp < sorted_data.num_pages(); ++dp) {
        d_page.Clear();
        NMRS_RETURN_IF_ERROR(sorted_data.ReadPage(dp, &d_page));
        // The scan of D is run to completion even if the tree empties —
        // the paper's Alg. 3 performs the full sequential scan per batch,
        // and IO counts are kept faithful to it.
        for (size_t j = 0; j < d_page.size(); ++j) {
          if (ctx.fast_path) {
            const ValueId* e = d_page.row_values(j);
            for (size_t l = 0; l < m; ++l) {
              const AttrId a = ctx.attr_order[l];
              p2_levels[l].erow = space.matrix(a).RowFrom(e[a]);
              p2_levels[l].qrow = ctx.q_row_by_level[l];
            }
            internal_tree::PruneTreeFast(tree, p2_levels, d_page.id(j),
                                         &stats, fast_stack);
          } else {
            internal_tree::PruneTree(tree, ctx, d_page.row_values(j),
                                     d_page.row_numerics(j), d_page.id(j),
                                     &stats, stack);
          }
        }
      }
      tree.ForEachActiveLeaf([&](NodeId l) {
        for (RowId r : tree.LeafRows(l)) result.rows.push_back(r);
      });
    }
  }
  stats.phase2_checks = stats.checks - stats.phase1_checks;
  stats.phase2_millis = phase2_timer.ElapsedMillis();

  NMRS_RETURN_IF_ERROR(disk->DeleteFile(scratch_file));

  std::sort(result.rows.begin(), result.rows.end());
  stats.result_size = result.rows.size();
  stats.io = disk->stats() - io_before;
  stats.compute_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace nmrs
