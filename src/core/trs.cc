#include "core/trs.h"

#include <algorithm>
#include <optional>

#include "altree/al_tree.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/dominance.h"
#include "core/dominance_kernel.h"
#include "core/query_distance_table.h"
#include "core/tree_traversal.h"
#include "data/columnar_batch.h"
#include "sim/matrix_overlay.h"
#include "storage/paged_reader.h"

namespace nmrs {

using internal_tree::FastEntry;
using internal_tree::Phase1Level;
using internal_tree::Phase2Level;
using internal_tree::TraversalEntry;
using internal_tree::TreeQueryContext;
using NodeId = ALTree::NodeId;

StatusOr<ReverseSkylineResult> TreeReverseSkyline(
    const StoredDataset& sorted_data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts) {
  if (opts.overlay != nullptr && !opts.overlay->empty()) {
    // The tree traversal reads matrix rows directly, so the overlay is
    // evaluated by materializing the patched space once per query (the
    // block algorithms apply the delta natively; see docs/OVERLAYS.md).
    if (&opts.overlay->base() != &space) {
      return Status::InvalidArgument(
          "RSOptions::overlay was built over a different base space");
    }
    SimilaritySpace patched = opts.overlay->BuildPatchedSpace();
    RSOptions materialized = opts;
    materialized.overlay = nullptr;
    return TreeReverseSkyline(sorted_data, patched, query, materialized);
  }
  SimulatedDisk* disk = sorted_data.disk();
  const Schema& schema = sorted_data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  if (opts.memory.pages < 2) {
    return Status::InvalidArgument(
        "TRS needs a memory budget of at least 2 pages");
  }

  Timer timer;
  const IoStats io_before = disk->stats();
  disk->InvalidateArmPosition();

  TreeQueryContext ctx =
      internal_tree::MakeTreeContext(space, schema, query, opts);
  PagedReader reader(disk, opts.cache_pages ? opts.buffer_pool : nullptr,
                     MakeReaderOptions(opts));
  ReverseSkylineResult result;
  QueryStats& stats = result.stats;

  const size_t page_size = disk->page_size();

  // ---- Phase 1 (Alg. 3 lines 1-7). ----
  Timer phase1_timer;
  FileId scratch_file = disk->CreateFile("trs-scratch");
  RowWriter writer(disk, scratch_file, schema, opts.resilience.checksum_pages);
  // Kernel phase 1 runs on the fast path only (all attributes, all
  // categorical — exactly when the flat leaf scan below is expressible as
  // gathers); otherwise the tree traversal is kept as-is.
  const bool kernel_p1 = opts.use_kernels && ctx.fast_path;
  std::optional<QueryDistanceTable> kernel_qtable;
  std::vector<AttrId> kernel_selected;
  if (kernel_p1) {
    kernel_selected = ResolveSelectedAttrs(schema, opts.selected_attrs);
    kernel_qtable.emplace(space, schema, query, kernel_selected);
  }
  // Probe-futility memory across phase-1 batches: once a batch's probed
  // candidates escape in the majority, later batches of the same query
  // skip the probe — and the columnar build and kernel setup that feed
  // it — outright, falling back to the plain traversal path. Batches
  // load pages in a fixed order, so the cut is deterministic per
  // configuration, and verdicts are regime-independent either way.
  bool probe_batches = true;
  {
    ALTree tree(schema, ctx.attr_order);
    RowBatch page_rows(m, numerics);
    PageId next_page = 0;
    const uint64_t budget = opts.memory.pages * page_size;
    std::vector<ValueId> c_values(m, 0);
    std::vector<double> rhs(m, 0.0);
    std::vector<TraversalEntry> stack;
    stack.reserve(256);
    std::vector<FastEntry> fast_stack;
    fast_stack.reserve(256);
    std::vector<Phase1Level> p1_levels(m);
    while (next_page < sorted_data.num_pages()) {
      ++stats.phase1_batches;
      tree.Clear();
      NMRS_RETURN_IF_ERROR(internal_tree::LoadTreeBatch(
          sorted_data, &reader, budget, &next_page, &tree, &page_rows));
      if (opts.order_children_by_descendants) tree.PrepareForSearch();

      std::vector<NodeId> leaves;
      tree.ForEachActiveLeaf([&](NodeId l) { leaves.push_back(l); });
      const size_t num_leaves = leaves.size();
      std::vector<uint8_t> prunable(num_leaves, 0);

      // Checks leaves [begin, end) against `t` (which must carry the same
      // structure as `tree`), with caller-owned scratch and counters. The
      // per-leaf work only TempRemoves/TempRestores the leaf under test,
      // so chunks run on private tree copies without interfering.
      auto check_leaves = [&](ALTree& t, size_t begin, size_t end,
                              QueryStats* st,
                              std::vector<ValueId>& c_vals,
                              std::vector<double>& c_rhs,
                              std::vector<TraversalEntry>& t_stack,
                              std::vector<FastEntry>& t_fast_stack,
                              std::vector<Phase1Level>& levels) {
        for (size_t li = begin; li < end; ++li) {
          const NodeId leaf = leaves[li];
          internal_tree::LeafValues(t, leaf, ctx.attr_order, &c_vals);
          // Remove one instance of c so it cannot prune itself (Alg. 3
          // line 5, "M \ c"); remaining duplicates still count as pruners.
          t.TempRemoveLeaf(leaf);
          ++st->pair_tests;
          bool p;
          if (ctx.fast_path) {
            for (size_t l = 0; l < m; ++l) {
              const AttrId a = ctx.attr_order[l];
              levels[l].col = space.matrix(a).ColumnTo(c_vals[a]);
              levels[l].rhs = ctx.q_row_by_level[l][c_vals[a]];
            }
            p = internal_tree::IsPrunableFast(t, levels, st, t_fast_stack);
          } else {
            internal_tree::ComputeRhs(ctx, c_vals, &c_rhs);
            p = internal_tree::IsPrunable(t, ctx, c_vals, c_rhs, st,
                                          t_stack);
          }
          t.TempRestore(leaf);
          prunable[li] = p ? 1 : 0;
        }
      };

      // Kernel phase 1, probe -> traversal hybrid: a short prefix of the
      // active leaves becomes a columnar block and every candidate leaf
      // c starts on the early-aborting scalar probe over it — a leaf
      // with a pruner within a handful of scan rows resolves cheaper
      // than starting a traversal. A probed row either prunes (the probe
      // stops) or survives (it counts toward promotion), so a probe
      // never reads past RSOptions::kernel_promote_rows survivors —
      // which is why a prefix of ~8x promote_rows rows is all the block
      // the probe can ever use, and all that is built. A candidate that
      // survives promote_rows tests, or exhausts a partial prefix
      // without a verdict, escapes to the pruned ALTree traversal
      // instead of a flat block scan: group-level subtree pruning skips
      // most of the block wholesale, which no flat evaluation (scalar or
      // SIMD) can match on the stubborn survivors. (When the prefix
      // covers every leaf — promote_rows huge, or few leaves —
      // exhaustion is a definitive no-pruner verdict, preserving the
      // full-scan accounting of the promote=never regime.) Whether
      // probing pays at all is data-dependent — on value-clustered
      // batches nearly every leaf escapes — so each chunk watches its
      // probed candidates and stops probing when escapes reach a
      // majority past the kProbeTrial mark, and a majority-escaping
      // batch turns probing off for the query's remaining batches (the
      // escape decision depends only on verdicts, keeping the cut
      // deterministic and dispatch-invariant). Verdicts — and therefore
      // survivors, results, and IO — are identical in all regimes:
      // probe and traversal are both exact Definition-1 pruner
      // searches, with "M \ c" realized by skipping c's own leaf in the
      // probe iff it holds a single instance (remaining duplicates still
      // count as pruners) and by TempRemoveLeaf in the traversal. Probe
      // work surfaces as kernel_scalar_rows; traversals add their
      // group-level check counts to QueryStats::checks as on the scalar
      // path (docs/KERNELS.md). With promote 0 every candidate would
      // escape immediately, so the columnar block is not even built.
      const bool probe_p1 =
          kernel_p1 && opts.kernel_promote_rows > 0 && probe_batches;
      const size_t probe_prefix = static_cast<size_t>(std::min<uint64_t>(
          num_leaves,
          std::max<uint64_t>(128, 8ull * opts.kernel_promote_rows)));
      // The block holds the `probe_prefix` leaves CLOSEST to q, not the
      // first in scan order: leaves similar to q sit at the center of
      // every candidate's dynamic skyline and are by far the likeliest
      // pruners, while sorted leaf order would fill the block with
      // whatever value combinations sort first (usually no pruner of
      // anything). Sorting is by the summed per-level query thresholds
      // with index tie-breaks, so the block — and every verdict and
      // counter downstream — is deterministic.
      ColumnarBatch leaf_cols;
      std::vector<ValueId> all_vals;  // row-major leaf values, reused for cv
      if (probe_p1 && num_leaves > 0) {
        all_vals.resize(num_leaves * m);
        std::vector<double> score(num_leaves, 0.0);
        std::vector<ValueId> lv(m, 0);
        for (size_t li = 0; li < num_leaves; ++li) {
          internal_tree::LeafValues(tree, leaves[li], ctx.attr_order, &lv);
          double s = 0.0;
          for (size_t l = 0; l < m; ++l) {
            s += ctx.q_row_by_level[l][lv[ctx.attr_order[l]]];
          }
          score[li] = s;
          for (size_t a = 0; a < m; ++a) all_vals[li * m + a] = lv[a];
        }
        std::vector<uint32_t> ord(num_leaves);
        for (size_t li = 0; li < num_leaves; ++li) {
          ord[li] = static_cast<uint32_t>(li);
        }
        std::partial_sort(ord.begin(), ord.begin() + probe_prefix, ord.end(),
                          [&](uint32_t a, uint32_t b) {
                            if (score[a] != score[b]) {
                              return score[a] < score[b];
                            }
                            return a < b;
                          });
        std::vector<std::vector<ValueId>> columns(
            m, std::vector<ValueId>(probe_prefix));
        std::vector<RowId> leaf_ids(probe_prefix);
        for (size_t k = 0; k < probe_prefix; ++k) {
          for (size_t a = 0; a < m; ++a) {
            columns[a][k] = all_vals[static_cast<size_t>(ord[k]) * m + a];
          }
          leaf_ids[k] = ord[k];
        }
        leaf_cols.BuildFromColumns(probe_prefix, columns, leaf_ids);
      }
      // Probes leaf_cols for the cheap candidates and escapes to the
      // traversal of `t` for the promoted ones; TempRemoveLeaf mutates,
      // so parallel chunks pass private tree copies like the scalar path.
      auto check_leaves_kernel = [&](ALTree& t, size_t begin, size_t end,
                                     QueryStats* st,
                                     std::vector<FastEntry>& t_fast_stack,
                                     std::vector<Phase1Level>& levels,
                                     size_t* out_trialed,
                                     size_t* out_escaped) {
        // Probe-futility trial: once this many candidates have been
        // probed, a chunk whose escapes reach a majority stops probing —
        // the probe rows were pure overhead on top of the traversals
        // they failed to avoid. The check is rolling, not one-shot at
        // the trial boundary: escape rates drift within a batch, and a
        // majority-escaping stretch anywhere means the probe is losing
        // from there on.
        constexpr size_t kProbeTrial = 64;
        PruneContext kc(space, schema, query, kernel_selected,
                        &*kernel_qtable);
        DominanceKernel kernel(
            kc, leaf_cols,
            KernelPolicy{opts.kernel_promote_rows,
                         static_cast<uint32_t>(DominanceKernel::kGroupRows)});
        std::vector<ValueId> cv(m, 0);
        uint64_t unused_pairs = 0, unused_checks = 0;
        bool probing = true;
        size_t trialed = 0, escaped = 0;
        // A partial prefix cannot prove "no pruner anywhere" — only a
        // block covering every leaf makes exhaustion a verdict.
        const bool exhaust_resolves = probe_prefix == num_leaves;
        for (size_t li = begin; li < end; ++li) {
          const NodeId leaf = leaves[li];
          // The scoring pass already walked every leaf's values — skip
          // the per-candidate walk up the tree.
          for (size_t a = 0; a < m; ++a) cv[a] = all_vals[li * m + a];
          ++st->pair_tests;
          bool resolved = false;
          bool p = false;
          if (probing) {
            kc.SetCandidate(cv.data(), nullptr);
            kernel.BeginCandidate();
            // Block rows carry original leaf indices as ids, so skipping
            // c's own single-instance leaf works wherever (and whether)
            // it landed in the reordered block.
            const RowId skip = t.LeafRows(leaf).size() == 1
                                   ? static_cast<RowId>(li)
                                   : kInvalidRowId;
            const DominanceKernel::ProbeResult probe = kernel.ProbeForward(
                0, probe_prefix, skip, &unused_pairs, &unused_checks);
            if (probe == DominanceKernel::ProbeResult::kPruner) {
              resolved = true;
              p = true;
            } else if (probe == DominanceKernel::ProbeResult::kExhausted &&
                       exhaust_resolves) {
              resolved = true;
            } else {
              ++escaped;
            }
            if (++trialed >= kProbeTrial && escaped * 2 > trialed) {
              probing = false;
            }
          }
          if (!resolved) {
            for (size_t l = 0; l < m; ++l) {
              const AttrId a = ctx.attr_order[l];
              levels[l].col = space.matrix(a).ColumnTo(cv[a]);
              levels[l].rhs = ctx.q_row_by_level[l][cv[a]];
            }
            t.TempRemoveLeaf(leaf);
            p = internal_tree::IsPrunableFast(t, levels, st, t_fast_stack);
            t.TempRestore(leaf);
          }
          prunable[li] = p ? 1 : 0;
        }
        st->kernel_checks += kernel.kernel_checks();
        st->kernel_promotions += kernel.promotions();
        st->kernel_scalar_rows += kernel.scalar_rows();
        st->kernel_block_rows += kernel.block_rows();
        *out_trialed += trialed;
        *out_escaped += escaped;
      };

      if (probe_p1) {
        size_t trialed = 0, escaped = 0;
        if (opts.num_threads <= 1 || num_leaves < 2) {
          check_leaves_kernel(tree, 0, num_leaves, &stats, fast_stack,
                              p1_levels, &trialed, &escaped);
        } else {
          const size_t num_chunks = std::min(
              num_leaves, static_cast<size_t>(opts.num_threads) * 2);
          std::vector<QueryStats> chunk_stats(num_chunks);
          std::vector<size_t> chunk_trialed(num_chunks, 0);
          std::vector<size_t> chunk_escaped(num_chunks, 0);
          ParallelChunks(opts.executor, opts.num_threads, num_chunks,
                         [&](size_t c) {
                           ALTree chunk_tree = tree;
                           std::vector<FastEntry> cf;
                           cf.reserve(256);
                           std::vector<Phase1Level> cl(m);
                           check_leaves_kernel(
                               chunk_tree,
                               ChunkBegin(num_leaves, num_chunks, c),
                               ChunkBegin(num_leaves, num_chunks, c + 1),
                               &chunk_stats[c], cf, cl, &chunk_trialed[c],
                               &chunk_escaped[c]);
                         });
          for (size_t c = 0; c < num_chunks; ++c) {
            const QueryStats& cs = chunk_stats[c];
            stats.pair_tests += cs.pair_tests;
            stats.checks += cs.checks;
            stats.kernel_checks += cs.kernel_checks;
            stats.kernel_promotions += cs.kernel_promotions;
            stats.kernel_scalar_rows += cs.kernel_scalar_rows;
            stats.kernel_block_rows += cs.kernel_block_rows;
            trialed += chunk_trialed[c];
            escaped += chunk_escaped[c];
          }
        }
        // A majority-escaping batch condemns the probe for the rest of
        // the query: later batches take the scalar dispatch below and
        // skip the columnar build entirely.
        probe_batches = escaped * 2 <= trialed;
      } else if (opts.num_threads <= 1 || num_leaves < 2) {
        check_leaves(tree, 0, num_leaves, &stats, c_values, rhs, stack,
                     fast_stack, p1_levels);
      } else {
        // Each chunk checks its leaves against a private copy of the tree
        // (TempRemove mutates descendant counts along the leaf's path).
        // Per-leaf checks are independent, so totals summed in chunk order
        // equal the sequential counts exactly.
        const size_t num_chunks = std::min(
            num_leaves, static_cast<size_t>(opts.num_threads) * 2);
        std::vector<QueryStats> chunk_stats(num_chunks);
        ParallelChunks(
            opts.executor, opts.num_threads, num_chunks, [&](size_t c) {
              ALTree chunk_tree = tree;
              std::vector<ValueId> cv(m, 0);
              std::vector<double> cr(m, 0.0);
              std::vector<TraversalEntry> cs;
              cs.reserve(256);
              std::vector<FastEntry> cf;
              cf.reserve(256);
              std::vector<Phase1Level> cl(m);
              check_leaves(chunk_tree, ChunkBegin(num_leaves, num_chunks, c),
                           ChunkBegin(num_leaves, num_chunks, c + 1),
                           &chunk_stats[c], cv, cr, cs, cf, cl);
            });
        for (const QueryStats& cs : chunk_stats) {
          stats.pair_tests += cs.pair_tests;
          stats.checks += cs.checks;
        }
      }

      // Survivors are spilled in leaf (scan) order regardless of how the
      // checks were executed, keeping the scratch file and its IO
      // byte-identical to the sequential run.
      for (size_t li = 0; li < num_leaves; ++li) {
        if (prunable[li]) continue;
        const NodeId leaf = leaves[li];
        internal_tree::LeafValues(tree, leaf, ctx.attr_order, &c_values);
        const auto& rows = tree.LeafRows(leaf);
        for (size_t i = 0; i < rows.size(); ++i) {
          NMRS_RETURN_IF_ERROR(writer.Add(
              rows[i], c_values.data(),
              numerics ? tree.LeafNumerics(leaf, i) : nullptr));
        }
      }
      // Survivors are written out at the end of every batch (paper §4.1).
      NMRS_RETURN_IF_ERROR(writer.FlushPartial());
    }
  }
  NMRS_RETURN_IF_ERROR(writer.Finish());
  stats.phase1_survivors = writer.rows_written();
  stats.phase1_checks = stats.checks;
  stats.phase1_millis = phase1_timer.ElapsedMillis();

  // ---- Phase 2 (Alg. 3 lines 8-16). ----
  Timer phase2_timer;
  StoredDataset survivors(disk, scratch_file, schema, writer.rows_written(),
                          opts.resilience.checksum_pages);
  {
    ALTree tree(schema, ctx.attr_order);
    RowBatch page_rows(m, numerics);
    PageId next_page = 0;
    std::vector<TraversalEntry> stack;
    stack.reserve(256);
    std::vector<FastEntry> fast_stack;
    fast_stack.reserve(256);
    std::vector<Phase2Level> p2_levels(m);
    // One page of the budget is reserved for streaming D (paper §4.1).
    const uint64_t budget = (opts.memory.pages - 1) * page_size;
    while (next_page < survivors.num_pages()) {
      ++stats.phase2_batches;
      tree.Clear();
      NMRS_RETURN_IF_ERROR(internal_tree::LoadTreeBatch(
          survivors, &reader, budget, &next_page, &tree, &page_rows));

      RowBatch d_page(m, numerics);
      for (PageId dp = 0; dp < sorted_data.num_pages(); ++dp) {
        d_page.Clear();
        NMRS_RETURN_IF_ERROR(sorted_data.ReadPageVia(&reader, dp, &d_page));
        // The scan of D is run to completion even if the tree empties —
        // the paper's Alg. 3 performs the full sequential scan per batch,
        // and IO counts are kept faithful to it.
        for (size_t j = 0; j < d_page.size(); ++j) {
          if (ctx.fast_path) {
            const ValueId* e = d_page.row_values(j);
            for (size_t l = 0; l < m; ++l) {
              const AttrId a = ctx.attr_order[l];
              p2_levels[l].erow = space.matrix(a).RowFrom(e[a]);
              p2_levels[l].qrow = ctx.q_row_by_level[l];
            }
            internal_tree::PruneTreeFast(tree, p2_levels, d_page.id(j),
                                         &stats, fast_stack);
          } else {
            internal_tree::PruneTree(tree, ctx, d_page.row_values(j),
                                     d_page.row_numerics(j), d_page.id(j),
                                     &stats, stack);
          }
        }
      }
      tree.ForEachActiveLeaf([&](NodeId l) {
        for (RowId r : tree.LeafRows(l)) result.rows.push_back(r);
      });
    }
  }
  stats.phase2_checks = stats.checks - stats.phase1_checks;
  stats.phase2_millis = phase2_timer.ElapsedMillis();

  NMRS_RETURN_IF_ERROR(disk->DeleteFile(scratch_file));

  std::sort(result.rows.begin(), result.rows.end());
  stats.result_size = result.rows.size();
  stats.io = disk->stats() - io_before;
  reader.FoldStatsInto(&stats.io);
  stats.modeled_backoff_millis = reader.modeled_backoff_millis();
  stats.compute_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace nmrs
