#include "core/trs.h"

#include <algorithm>
#include <optional>

#include "altree/al_tree.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/dominance.h"
#include "core/dominance_kernel.h"
#include "core/query_distance_table.h"
#include "core/tree_traversal.h"
#include "data/columnar_batch.h"
#include "storage/paged_reader.h"

namespace nmrs {

using internal_tree::FastEntry;
using internal_tree::Phase1Level;
using internal_tree::Phase2Level;
using internal_tree::TraversalEntry;
using internal_tree::TreeQueryContext;
using NodeId = ALTree::NodeId;

StatusOr<ReverseSkylineResult> TreeReverseSkyline(
    const StoredDataset& sorted_data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts) {
  SimulatedDisk* disk = sorted_data.disk();
  const Schema& schema = sorted_data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  if (opts.memory.pages < 2) {
    return Status::InvalidArgument(
        "TRS needs a memory budget of at least 2 pages");
  }

  Timer timer;
  const IoStats io_before = disk->stats();
  disk->InvalidateArmPosition();

  TreeQueryContext ctx =
      internal_tree::MakeTreeContext(space, schema, query, opts);
  PagedReader reader(disk, opts.cache_pages ? opts.buffer_pool : nullptr,
                     MakeReaderOptions(opts));
  ReverseSkylineResult result;
  QueryStats& stats = result.stats;

  const size_t page_size = disk->page_size();

  // ---- Phase 1 (Alg. 3 lines 1-7). ----
  Timer phase1_timer;
  FileId scratch_file = disk->CreateFile("trs-scratch");
  RowWriter writer(disk, scratch_file, schema, opts.resilience.checksum_pages);
  // Kernel phase 1 runs on the fast path only (all attributes, all
  // categorical — exactly when the flat leaf scan below is expressible as
  // gathers); otherwise the tree traversal is kept as-is.
  const bool kernel_p1 = opts.use_kernels && ctx.fast_path;
  std::optional<QueryDistanceTable> kernel_qtable;
  std::vector<AttrId> kernel_selected;
  if (kernel_p1) {
    kernel_selected = ResolveSelectedAttrs(schema, opts.selected_attrs);
    kernel_qtable.emplace(space, schema, query, kernel_selected);
  }
  {
    ALTree tree(schema, ctx.attr_order);
    RowBatch page_rows(m, numerics);
    PageId next_page = 0;
    const uint64_t budget = opts.memory.pages * page_size;
    std::vector<ValueId> c_values(m, 0);
    std::vector<double> rhs(m, 0.0);
    std::vector<TraversalEntry> stack;
    stack.reserve(256);
    std::vector<FastEntry> fast_stack;
    fast_stack.reserve(256);
    std::vector<Phase1Level> p1_levels(m);
    while (next_page < sorted_data.num_pages()) {
      ++stats.phase1_batches;
      tree.Clear();
      NMRS_RETURN_IF_ERROR(internal_tree::LoadTreeBatch(
          sorted_data, &reader, budget, &next_page, &tree, &page_rows));
      if (opts.order_children_by_descendants) tree.PrepareForSearch();

      std::vector<NodeId> leaves;
      tree.ForEachActiveLeaf([&](NodeId l) { leaves.push_back(l); });
      const size_t num_leaves = leaves.size();
      std::vector<uint8_t> prunable(num_leaves, 0);

      // Checks leaves [begin, end) against `t` (which must carry the same
      // structure as `tree`), with caller-owned scratch and counters. The
      // per-leaf work only TempRemoves/TempRestores the leaf under test,
      // so chunks run on private tree copies without interfering.
      auto check_leaves = [&](ALTree& t, size_t begin, size_t end,
                              QueryStats* st,
                              std::vector<ValueId>& c_vals,
                              std::vector<double>& c_rhs,
                              std::vector<TraversalEntry>& t_stack,
                              std::vector<FastEntry>& t_fast_stack,
                              std::vector<Phase1Level>& levels) {
        for (size_t li = begin; li < end; ++li) {
          const NodeId leaf = leaves[li];
          internal_tree::LeafValues(t, leaf, ctx.attr_order, &c_vals);
          // Remove one instance of c so it cannot prune itself (Alg. 3
          // line 5, "M \ c"); remaining duplicates still count as pruners.
          t.TempRemoveLeaf(leaf);
          ++st->pair_tests;
          bool p;
          if (ctx.fast_path) {
            for (size_t l = 0; l < m; ++l) {
              const AttrId a = ctx.attr_order[l];
              levels[l].col = space.matrix(a).ColumnTo(c_vals[a]);
              levels[l].rhs = ctx.q_row_by_level[l][c_vals[a]];
            }
            p = internal_tree::IsPrunableFast(t, levels, st, t_fast_stack);
          } else {
            internal_tree::ComputeRhs(ctx, c_vals, &c_rhs);
            p = internal_tree::IsPrunable(t, ctx, c_vals, c_rhs, st,
                                          t_stack);
          }
          t.TempRestore(leaf);
          prunable[li] = p ? 1 : 0;
        }
      };

      // Kernel phase 1: every active leaf is one row of a columnar block
      // and candidate leaf c is checked against the block directly — the
      // flat scan replaces the tree traversal, whose group-level check
      // accounting has no scalar-per-row equivalent, so the work surfaces
      // as QueryStats::kernel_checks (docs/KERNELS.md). Verdicts — and
      // therefore survivors, results, and IO — are identical: the
      // traversal is a pruned search for the same Definition-1 pruner,
      // with "M \ c" realized by skipping c's own leaf iff it holds a
      // single instance (remaining duplicates still count as pruners).
      ColumnarBatch leaf_cols;
      if (kernel_p1 && num_leaves > 0) {
        std::vector<std::vector<ValueId>> columns(
            m, std::vector<ValueId>(num_leaves));
        std::vector<RowId> leaf_ids(num_leaves);
        std::vector<ValueId> lv(m, 0);
        for (size_t li = 0; li < num_leaves; ++li) {
          internal_tree::LeafValues(tree, leaves[li], ctx.attr_order, &lv);
          for (size_t a = 0; a < m; ++a) columns[a][li] = lv[a];
          leaf_ids[li] = li;
        }
        leaf_cols.BuildFromColumns(num_leaves, columns, leaf_ids);
      }
      // Reads `tree` and `leaf_cols` only (no TempRemove), so parallel
      // chunks share them and skip the private tree copies.
      auto check_leaves_kernel = [&](size_t begin, size_t end,
                                     QueryStats* st) {
        PruneContext kc(space, schema, query, kernel_selected,
                        &*kernel_qtable);
        DominanceKernel kernel(kc, leaf_cols);
        std::vector<ValueId> cv(m, 0);
        uint64_t unused_pairs = 0, unused_checks = 0;
        for (size_t li = begin; li < end; ++li) {
          internal_tree::LeafValues(tree, leaves[li], ctx.attr_order, &cv);
          ++st->pair_tests;
          kc.SetCandidate(cv.data(), nullptr);
          kernel.BeginCandidate();
          const RowId skip = tree.LeafRows(leaves[li]).size() > 1
                                 ? kInvalidRowId
                                 : static_cast<RowId>(li);
          prunable[li] = kernel.FindPrunerForward(0, num_leaves, skip,
                                                  &unused_pairs,
                                                  &unused_checks)
                             ? 1
                             : 0;
        }
        st->kernel_checks += kernel.kernel_checks();
      };

      if (kernel_p1) {
        if (opts.num_threads <= 1 || num_leaves < 2) {
          check_leaves_kernel(0, num_leaves, &stats);
        } else {
          const size_t num_chunks = std::min(
              num_leaves, static_cast<size_t>(opts.num_threads) * 2);
          std::vector<QueryStats> chunk_stats(num_chunks);
          ParallelChunks(opts.executor, opts.num_threads, num_chunks,
                         [&](size_t c) {
                           check_leaves_kernel(
                               ChunkBegin(num_leaves, num_chunks, c),
                               ChunkBegin(num_leaves, num_chunks, c + 1),
                               &chunk_stats[c]);
                         });
          for (const QueryStats& cs : chunk_stats) {
            stats.pair_tests += cs.pair_tests;
            stats.kernel_checks += cs.kernel_checks;
          }
        }
      } else if (opts.num_threads <= 1 || num_leaves < 2) {
        check_leaves(tree, 0, num_leaves, &stats, c_values, rhs, stack,
                     fast_stack, p1_levels);
      } else {
        // Each chunk checks its leaves against a private copy of the tree
        // (TempRemove mutates descendant counts along the leaf's path).
        // Per-leaf checks are independent, so totals summed in chunk order
        // equal the sequential counts exactly.
        const size_t num_chunks = std::min(
            num_leaves, static_cast<size_t>(opts.num_threads) * 2);
        std::vector<QueryStats> chunk_stats(num_chunks);
        ParallelChunks(
            opts.executor, opts.num_threads, num_chunks, [&](size_t c) {
              ALTree chunk_tree = tree;
              std::vector<ValueId> cv(m, 0);
              std::vector<double> cr(m, 0.0);
              std::vector<TraversalEntry> cs;
              cs.reserve(256);
              std::vector<FastEntry> cf;
              cf.reserve(256);
              std::vector<Phase1Level> cl(m);
              check_leaves(chunk_tree, ChunkBegin(num_leaves, num_chunks, c),
                           ChunkBegin(num_leaves, num_chunks, c + 1),
                           &chunk_stats[c], cv, cr, cs, cf, cl);
            });
        for (const QueryStats& cs : chunk_stats) {
          stats.pair_tests += cs.pair_tests;
          stats.checks += cs.checks;
        }
      }

      // Survivors are spilled in leaf (scan) order regardless of how the
      // checks were executed, keeping the scratch file and its IO
      // byte-identical to the sequential run.
      for (size_t li = 0; li < num_leaves; ++li) {
        if (prunable[li]) continue;
        const NodeId leaf = leaves[li];
        internal_tree::LeafValues(tree, leaf, ctx.attr_order, &c_values);
        const auto& rows = tree.LeafRows(leaf);
        for (size_t i = 0; i < rows.size(); ++i) {
          NMRS_RETURN_IF_ERROR(writer.Add(
              rows[i], c_values.data(),
              numerics ? tree.LeafNumerics(leaf, i) : nullptr));
        }
      }
      // Survivors are written out at the end of every batch (paper §4.1).
      NMRS_RETURN_IF_ERROR(writer.FlushPartial());
    }
  }
  NMRS_RETURN_IF_ERROR(writer.Finish());
  stats.phase1_survivors = writer.rows_written();
  stats.phase1_checks = stats.checks;
  stats.phase1_millis = phase1_timer.ElapsedMillis();

  // ---- Phase 2 (Alg. 3 lines 8-16). ----
  Timer phase2_timer;
  StoredDataset survivors(disk, scratch_file, schema, writer.rows_written(),
                          opts.resilience.checksum_pages);
  {
    ALTree tree(schema, ctx.attr_order);
    RowBatch page_rows(m, numerics);
    PageId next_page = 0;
    std::vector<TraversalEntry> stack;
    stack.reserve(256);
    std::vector<FastEntry> fast_stack;
    fast_stack.reserve(256);
    std::vector<Phase2Level> p2_levels(m);
    // One page of the budget is reserved for streaming D (paper §4.1).
    const uint64_t budget = (opts.memory.pages - 1) * page_size;
    while (next_page < survivors.num_pages()) {
      ++stats.phase2_batches;
      tree.Clear();
      NMRS_RETURN_IF_ERROR(internal_tree::LoadTreeBatch(
          survivors, &reader, budget, &next_page, &tree, &page_rows));

      RowBatch d_page(m, numerics);
      for (PageId dp = 0; dp < sorted_data.num_pages(); ++dp) {
        d_page.Clear();
        NMRS_RETURN_IF_ERROR(sorted_data.ReadPageVia(&reader, dp, &d_page));
        // The scan of D is run to completion even if the tree empties —
        // the paper's Alg. 3 performs the full sequential scan per batch,
        // and IO counts are kept faithful to it.
        for (size_t j = 0; j < d_page.size(); ++j) {
          if (ctx.fast_path) {
            const ValueId* e = d_page.row_values(j);
            for (size_t l = 0; l < m; ++l) {
              const AttrId a = ctx.attr_order[l];
              p2_levels[l].erow = space.matrix(a).RowFrom(e[a]);
              p2_levels[l].qrow = ctx.q_row_by_level[l];
            }
            internal_tree::PruneTreeFast(tree, p2_levels, d_page.id(j),
                                         &stats, fast_stack);
          } else {
            internal_tree::PruneTree(tree, ctx, d_page.row_values(j),
                                     d_page.row_numerics(j), d_page.id(j),
                                     &stats, stack);
          }
        }
      }
      tree.ForEachActiveLeaf([&](NodeId l) {
        for (RowId r : tree.LeafRows(l)) result.rows.push_back(r);
      });
    }
  }
  stats.phase2_checks = stats.checks - stats.phase1_checks;
  stats.phase2_millis = phase2_timer.ElapsedMillis();

  NMRS_RETURN_IF_ERROR(disk->DeleteFile(scratch_file));

  std::sort(result.rows.begin(), result.rows.end());
  stats.result_size = result.rows.size();
  stats.io = disk->stats() - io_before;
  reader.FoldStatsInto(&stats.io);
  stats.modeled_backoff_millis = reader.modeled_backoff_millis();
  stats.compute_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace nmrs
