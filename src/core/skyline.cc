#include "core/skyline.h"

#include <algorithm>

#include "altree/al_tree.h"
#include "core/dominance.h"
#include "order/attribute_order.h"

namespace nmrs {

bool DominatesWrt(const SimilaritySpace& space, const Schema& schema,
                  const Object& ref, const Object& a, const Object& b,
                  const std::vector<AttrId>& selected) {
  const std::vector<AttrId> attrs = ResolveSelectedAttrs(schema, selected);
  bool strict = false;
  for (AttrId i : attrs) {
    double da, db;
    if (schema.attribute(i).is_numeric) {
      da = space.NumDist(i, a.numerics[i], ref.numerics[i]);
      db = space.NumDist(i, b.numerics[i], ref.numerics[i]);
    } else {
      da = space.CatDist(i, a.values[i], ref.values[i]);
      db = space.CatDist(i, b.values[i], ref.values[i]);
    }
    if (da > db) return false;
    if (da < db) strict = true;
  }
  return strict;
}

std::vector<RowId> DynamicSkylineBNL(const Dataset& data,
                                     const SimilaritySpace& space,
                                     const Object& ref,
                                     const std::vector<AttrId>& selected) {
  const Schema& schema = data.schema();
  std::vector<RowId> window;  // current non-dominated set
  for (RowId r = 0; r < data.num_rows(); ++r) {
    const Object candidate = data.GetObject(r);
    bool dominated = false;
    // Compare against the window; drop window members the candidate
    // dominates.
    std::vector<RowId> next_window;
    next_window.reserve(window.size() + 1);
    for (RowId w : window) {
      const Object other = data.GetObject(w);
      if (!dominated && DominatesWrt(space, schema, ref, other, candidate,
                                     selected)) {
        dominated = true;
      }
      if (!DominatesWrt(space, schema, ref, candidate, other, selected)) {
        next_window.push_back(w);
      }
    }
    if (dominated) continue;  // window unchanged (nothing it dominates kept out)
    window = std::move(next_window);
    window.push_back(r);
  }
  std::sort(window.begin(), window.end());
  return window;
}

Status VerifyReverseSkyline(const Dataset& data, const SimilaritySpace& space,
                            const Object& query,
                            const std::vector<RowId>& rows,
                            const std::vector<AttrId>& selected) {
  PruneContext ctx(space, data.schema(), query, selected);
  std::vector<bool> claimed(data.num_rows(), false);
  for (RowId r : rows) {
    if (r >= data.num_rows()) {
      return Status::FailedPrecondition("claimed row " + std::to_string(r) +
                                        " is not in the dataset");
    }
    if (claimed[r]) {
      return Status::FailedPrecondition("row " + std::to_string(r) +
                                        " claimed twice");
    }
    claimed[r] = true;
  }
  uint64_t checks = 0;
  for (RowId x = 0; x < data.num_rows(); ++x) {
    ctx.SetCandidate(data.RowValues(x), data.RowNumerics(x));
    bool pruned = false;
    for (RowId y = 0; y < data.num_rows() && !pruned; ++y) {
      if (y == x) continue;
      pruned = ctx.Prunes(data.RowValues(y), data.RowNumerics(y), &checks);
    }
    if (pruned && claimed[x]) {
      return Status::FailedPrecondition(
          "row " + std::to_string(x) +
          " is claimed but has a pruner (not in RS)");
    }
    if (!pruned && !claimed[x]) {
      return Status::FailedPrecondition(
          "row " + std::to_string(x) +
          " belongs to RS but is missing from the claim");
    }
  }
  return Status::OK();
}

std::vector<RowId> ReverseSkylineOracle(const Dataset& data,
                                        const SimilaritySpace& space,
                                        const Object& query,
                                        const std::vector<AttrId>& selected) {
  PruneContext ctx(space, data.schema(), query, selected);
  std::vector<RowId> result;
  uint64_t checks = 0;
  for (RowId x = 0; x < data.num_rows(); ++x) {
    ctx.SetCandidate(data.RowValues(x), data.RowNumerics(x));
    bool pruned = false;
    for (RowId y = 0; y < data.num_rows(); ++y) {
      if (y == x) continue;
      if (ctx.Prunes(data.RowValues(y), data.RowNumerics(y), &checks)) {
        pruned = true;
        break;
      }
    }
    if (!pruned) result.push_back(x);
  }
  return result;
}

std::vector<RowId> TreeDynamicSkyline(const Dataset& data,
                                      const SimilaritySpace& space,
                                      const Object& ref,
                                      const std::vector<AttrId>& selected,
                                      uint64_t* checks_out) {
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  NMRS_CHECK_EQ(schema.NumNumeric(), 0u)
      << "TreeDynamicSkyline supports categorical attributes only";
  uint64_t checks = 0;
  std::vector<RowId> result;
  if (data.num_rows() == 0 || m == 0) {
    if (checks_out != nullptr) *checks_out = checks;
    return result;
  }

  const auto attr_order = AscendingCardinalityOrder(schema);
  ALTree tree(schema, attr_order);
  for (RowId r = 0; r < data.num_rows(); ++r) {
    tree.Insert(r, data.RowValues(r), nullptr);
  }
  tree.PrepareForSearch();

  // Per tree level: the distances of every domain value to the reference
  // (contiguous matrix column), or nullptr when the attribute is outside
  // the selected subset. Candidate c is dominated iff the tree (minus one
  // instance of c) holds an object Y with col[y_l] <= col[c_l] on every
  // selected level and strictly smaller on one — the same traversal shape
  // as TRS's IsPrunable with the roles of query and candidate swapped.
  std::vector<const double*> col_by_level(m, nullptr);
  {
    std::vector<bool> is_selected(m, false);
    for (AttrId a : ResolveSelectedAttrs(schema, selected)) {
      is_selected[a] = true;
    }
    for (size_t l = 0; l < m; ++l) {
      const AttrId a = attr_order[l];
      if (is_selected[a]) {
        col_by_level[l] = space.matrix(a).ColumnTo(ref.values[a]);
      }
    }
  }

  struct Entry {
    ALTree::NodeId n;
    uint32_t level;  // level of this node's children
    bool found_closer;
  };
  std::vector<Entry> stack;
  stack.reserve(256);
  std::vector<ValueId> c_values(m, 0);
  std::vector<double> rhs(m, 0.0);

  std::vector<ALTree::NodeId> leaves;
  tree.ForEachActiveLeaf([&](ALTree::NodeId l) { leaves.push_back(l); });
  for (ALTree::NodeId leaf : leaves) {
    // Reconstruct c's values and per-level thresholds.
    {
      ALTree::NodeId cur = leaf;
      while (cur != ALTree::kRootId) {
        c_values[tree.Level(cur)] = tree.Value(cur);  // level-indexed here
        cur = tree.Parent(cur);
      }
      for (size_t l = 0; l < m; ++l) {
        rhs[l] = col_by_level[l] != nullptr ? col_by_level[l][c_values[l]]
                                            : 0.0;
      }
    }
    tree.TempRemoveLeaf(leaf);
    bool dominated = false;
    stack.clear();
    stack.push_back({ALTree::kRootId, 0, false});
    while (!stack.empty() && !dominated) {
      const Entry s = stack.back();
      stack.pop_back();
      const double* col = col_by_level[s.level];
      for (const ALTree::ChildRef& child : tree.Children(s.n)) {
        if (tree.Descendants(child.id) == 0) continue;
        bool closer = s.found_closer;
        if (col != nullptr) {
          const double lhs = col[child.value];
          ++checks;
          if (lhs > rhs[s.level]) continue;
          closer = closer || lhs < rhs[s.level];
        }
        if (s.level + 1 == m) {
          if (closer) {
            dominated = true;
            break;
          }
          continue;
        }
        stack.push_back({child.id, s.level + 1, closer});
      }
    }
    tree.TempRestore(leaf);
    if (!dominated) {
      for (RowId r : tree.LeafRows(leaf)) result.push_back(r);
    }
  }
  std::sort(result.begin(), result.end());
  if (checks_out != nullptr) *checks_out = checks;
  return result;
}

std::vector<RowId> ReverseSkylineViaSkylineMembership(
    const Dataset& data, const SimilaritySpace& space, const Object& query,
    const std::vector<AttrId>& selected) {
  const Schema& schema = data.schema();
  std::vector<RowId> result;
  for (RowId x = 0; x < data.num_rows(); ++x) {
    const Object ref = data.GetObject(x);
    // Q is in the skyline of X over D ∪ {Q} iff nothing in D ∪ {Q}
    // dominates Q w.r.t. X. (Q never dominates itself: no strict attr.)
    // The dynamic skyline of X is taken over (D \ {X}) ∪ {Q}, matching
    // Dellis & Seeger and the paper's Naive (Alg. 1, "∀Y ∈ D, Y ≠ X"):
    // X is not its own pruner, but value-duplicates of X under other ids
    // are. Q itself never dominates Q (no strict attribute).
    bool q_dominated = false;
    for (RowId z = 0; z < data.num_rows() && !q_dominated; ++z) {
      if (z == x) continue;
      const Object z_obj = data.GetObject(z);
      if (DominatesWrt(space, schema, ref, z_obj, query, selected)) {
        q_dominated = true;
      }
    }
    if (!q_dominated) result.push_back(x);
  }
  return result;
}

}  // namespace nmrs
