#ifndef NMRS_CORE_TREE_TRAVERSAL_H_
#define NMRS_CORE_TREE_TRAVERSAL_H_

// Internal shared machinery of the AL-Tree-based reverse-skyline
// algorithms (TRS and the bichromatic tree variant). Not part of the
// public API — include core/trs.h / core/bichromatic.h instead.

#include <optional>
#include <vector>

#include "altree/al_tree.h"
#include "core/query.h"
#include "data/bucketizer.h"
#include "data/stored_dataset.h"
#include "storage/paged_reader.h"
#include "sim/similarity_space.h"

namespace nmrs {
namespace internal_tree {

/// Immutable per-query state shared by the tree traversals.
struct TreeQueryContext {
  const SimilaritySpace* space;
  const Schema* schema;
  Object query;
  std::vector<AttrId> attr_order;      // tree level -> physical attr
  std::vector<bool> attr_selected;     // by physical attr
  std::vector<std::optional<Bucketizer>> buckets;  // by physical attr

  /// True when the tight all-categorical / all-attributes traversal
  /// specializations apply.
  bool fast_path = false;
  /// Per tree level: the matrix row of the query's value
  /// (q_row_by_level[l][u] == d_l(q_l, u)); fast path only.
  std::vector<const double*> q_row_by_level;

  Interval BucketOf(AttrId a, ValueId bucket) const {
    return buckets[a]->BucketInterval(bucket);
  }
};

TreeQueryContext MakeTreeContext(const SimilaritySpace& space,
                                 const Schema& schema, const Object& query,
                                 const RSOptions& opts);

/// Reconstructs the full value vector of a leaf by walking parents.
void LeafValues(const ALTree& tree, ALTree::NodeId leaf,
                const std::vector<AttrId>& attr_order,
                std::vector<ValueId>* values);

/// Stack entry shared by the traversals.
struct TraversalEntry {
  ALTree::NodeId n;
  bool found_closer;
};

/// Stack entry of the fast-path traversals (carries the level).
struct FastEntry {
  ALTree::NodeId n;
  uint32_t level;  // level of this node's children
  bool found_closer;
};

/// Per-level candidate context for IsPrunableFast: col[v] = d_l(v, c_l),
/// rhs = d_l(q_l, c_l).
struct Phase1Level {
  const double* col;
  double rhs;
};

/// Per-level streamed-object context for PruneTreeFast: erow[u] =
/// d_l(e_l, u), qrow[u] = d_l(q_l, u) — both contiguous matrix rows.
struct Phase2Level {
  const double* erow;
  const double* qrow;
};

/// Paper Alg. 4: does any object in `tree` prune candidate c (= c_values,
/// with query-side thresholds rhs[attr])? General version (subsets,
/// numeric buckets).
bool IsPrunable(const ALTree& tree, const TreeQueryContext& ctx,
                const std::vector<ValueId>& c_values,
                const std::vector<double>& rhs, QueryStats* stats,
                std::vector<TraversalEntry>& stack);

/// All-categorical/all-attributes specialization of IsPrunable.
bool IsPrunableFast(const ALTree& tree, const std::vector<Phase1Level>& levels,
                    QueryStats* stats, std::vector<FastEntry>& stack);

/// Query-side thresholds for candidate c (see IsPrunable).
void ComputeRhs(const TreeQueryContext& ctx,
                const std::vector<ValueId>& c_values,
                std::vector<double>* rhs);

/// Paper Alg. 5: removes from `tree` every object prunable by streamed
/// object e; entries whose row id equals `spare_id` are never evicted
/// (pass kInvalidRowId for bichromatic pruning, where the streamed object
/// can never be a candidate). General version.
void PruneTree(ALTree& tree, const TreeQueryContext& ctx,
               const ValueId* e_values, const double* e_numerics,
               RowId spare_id, QueryStats* stats,
               std::vector<TraversalEntry>& stack);

/// All-categorical/all-attributes specialization of PruneTree.
void PruneTreeFast(ALTree& tree, const std::vector<Phase2Level>& levels,
                   RowId spare_id, QueryStats* stats,
                   std::vector<FastEntry>& stack);

/// Loads pages [*next_page, ...) of `data` into `tree` until the logical
/// tree memory reaches `budget_bytes` (at least one page). Pages are read
/// through `reader`, so a buffer pool attached to it can absorb repeated
/// batch loads of the same file.
Status LoadTreeBatch(const StoredDataset& data, PagedReader* reader,
                     uint64_t budget_bytes, PageId* next_page, ALTree* tree,
                     RowBatch* scratch);

}  // namespace internal_tree
}  // namespace nmrs

#endif  // NMRS_CORE_TREE_TRAVERSAL_H_
