#include "core/query.h"

#include <sstream>

namespace nmrs {

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "QueryStats{checks=" << checks << ", pair_tests=" << pair_tests
     << ", p1_batches=" << phase1_batches << ", survivors="
     << phase1_survivors << ", p2_batches=" << phase2_batches
     << ", io=" << io.ToString() << ", compute_ms=" << compute_millis;
  if (kernel_checks != 0) {
    os << ", kernel_checks=" << kernel_checks;
  }
  if (kernel_promotions != 0 || kernel_scalar_rows != 0 ||
      kernel_block_rows != 0) {
    os << ", kernel_promotions=" << kernel_promotions
       << ", kernel_scalar_rows=" << kernel_scalar_rows
       << ", kernel_block_rows=" << kernel_block_rows;
  }
  if (modeled_backoff_millis != 0) {
    os << ", backoff_ms=" << modeled_backoff_millis;
  }
  os << ", result=" << result_size << "}";
  return os.str();
}

}  // namespace nmrs
