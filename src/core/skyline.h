#ifndef NMRS_CORE_SKYLINE_H_
#define NMRS_CORE_SKYLINE_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/dataset.h"
#include "data/object.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// A ≻_ref B: A dominates B with respect to reference object `ref`
/// (Definition in §3), restricted to `selected` attributes (empty = all).
bool DominatesWrt(const SimilaritySpace& space, const Schema& schema,
                  const Object& ref, const Object& a, const Object& b,
                  const std::vector<AttrId>& selected);

/// Dynamic skyline of `data` w.r.t. reference object `ref` via
/// block-nested-loops (Börzsönyi et al.): row ids of all objects not
/// dominated by any other object w.r.t. `ref`. Handles arbitrary non-metric
/// similarity measures. Duplicates never dominate each other, so all copies
/// of a skyline point are returned.
std::vector<RowId> DynamicSkylineBNL(const Dataset& data,
                                     const SimilaritySpace& space,
                                     const Object& ref,
                                     const std::vector<AttrId>& selected = {});

/// Validates a claimed reverse-skyline answer against the definition:
/// returns OK when `rows` is exactly RS(Q) over `data` (restricted to
/// `selected`), and FailedPrecondition naming the first discrepancy
/// otherwise. O(n²); intended for downstream users' integration tests and
/// for spot-checking results imported from elsewhere.
Status VerifyReverseSkyline(const Dataset& data, const SimilaritySpace& space,
                            const Object& query,
                            const std::vector<RowId>& rows,
                            const std::vector<AttrId>& selected = {});

/// Reverse skyline straight from the definition (RS(Q) = rows X with no
/// pruner Y ≻_X Q). O(n²); in-memory; the correctness oracle for every
/// disk-based algorithm in this library.
std::vector<RowId> ReverseSkylineOracle(const Dataset& data,
                                        const SimilaritySpace& space,
                                        const Object& query,
                                        const std::vector<AttrId>& selected = {});

/// Dynamic skyline via an AL-Tree with group-level reasoning (in the
/// spirit of SkylineDFS, the paper's reference [21]): one distance check
/// at an internal node settles domination potential for every object
/// sharing that value prefix. Identical results to DynamicSkylineBNL,
/// typically far fewer attribute-level checks on duplicate-rich data.
/// Categorical attributes only (numeric attributes: use the BNL variants);
/// `selected` restricts the comparison to an attribute subset.
/// `checks_out` (optional) receives the attribute-level check count.
std::vector<RowId> TreeDynamicSkyline(const Dataset& data,
                                      const SimilaritySpace& space,
                                      const Object& ref,
                                      const std::vector<AttrId>& selected = {},
                                      uint64_t* checks_out = nullptr);

/// Reverse skyline via the *other* formulation — "X is in RS(Q) iff Q is in
/// the skyline of X over D ∪ {Q}" — computing the full dynamic skyline of
/// every row. O(n³): use only on tiny datasets to cross-validate the two
/// formulations against each other.
std::vector<RowId> ReverseSkylineViaSkylineMembership(
    const Dataset& data, const SimilaritySpace& space, const Object& query,
    const std::vector<AttrId>& selected = {});

}  // namespace nmrs

#endif  // NMRS_CORE_SKYLINE_H_
