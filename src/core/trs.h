#ifndef NMRS_CORE_TRS_H_
#define NMRS_CORE_TRS_H_

#include "common/statusor.h"
#include "core/query.h"
#include "data/stored_dataset.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// TRS — Tree Reverse Skyline (paper §4.3, Algorithms 3-5), the paper's
/// main contribution. Works like BRS/SRS in two phases over a
/// multi-attribute pre-sorted database, but each in-memory batch is held as
/// an AL-Tree (prefix tree over a fixed attribute ordering), enabling:
///
///  * group-level reasoning: one distance check at an internal node decides
///    for every object sharing that value prefix (a child whose value is
///    farther from the candidate than the query's value kills its whole
///    subtree),
///  * early pruning: children are visited most-populous-first, steering the
///    DFS toward subtrees where a pruner is most likely,
///  * compact batches: prefix sharing packs more objects per memory budget,
///    which shrinks the number of batches and thus random IO.
///
/// Phase 1 checks IsPrunable(c, M \ c) for every loaded object c (Alg. 4);
/// phase 2 loads survivor batches as a tree and streams the database,
/// calling Prune(e, M) (Alg. 5) to evict everything each scanned object e
/// can prune. Numeric attributes are handled by discretization (§6):
/// phase-1 checks compare bucket-interval distance bounds (conservative, so
/// extra survivors but no false dismissals) and phase-2 leaves keep exact
/// values for exact refinement.
///
/// `opts.attr_order` fixes the tree's attribute ordering (default:
/// ascending cardinality, §5.1). `opts.selected_attrs` restricts the query
/// to an attribute subset (§5.6): unselected tree levels pass through.
StatusOr<ReverseSkylineResult> TreeReverseSkyline(
    const StoredDataset& sorted_data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts = {});

}  // namespace nmrs

#endif  // NMRS_CORE_TRS_H_
