#include "core/query_distance_table.h"

#include <cstring>

#include "common/check.h"
#include "sim/matrix_overlay.h"

namespace nmrs {

QueryDistanceTable::QueryDistanceTable(const SimilaritySpace& space,
                                       const Schema& schema,
                                       const Object& query,
                                       const std::vector<AttrId>& selected,
                                       const MatrixOverlay* overlay)
    : selected_(selected), overlay_(overlay) {
  NMRS_CHECK(!selected_.empty()) << "pass a resolved selection";
  NMRS_CHECK_EQ(query.values.size(), schema.num_attributes());
  if (overlay_ != nullptr) {
    NMRS_CHECK_EQ(&overlay_->base(), &space)
        << "overlay built over a different base space";
    if (overlay_->empty()) overlay_ = nullptr;  // transparent overlay
  }
  from_offset_.assign(selected_.size(), -1);
  to_offset_.assign(selected_.size(), -1);

  size_t total = 0;
  for (AttrId a : selected_) {
    if (!space.IsNumeric(a)) total += 2 * space.Cardinality(a);
  }
  dists_.resize(total);

  size_t off = 0;
  for (size_t k = 0; k < selected_.size(); ++k) {
    const AttrId a = selected_[k];
    if (space.IsNumeric(a)) continue;
    const size_t card = space.Cardinality(a);
    const DissimilarityMatrix& m = space.matrix(a);
    const ValueId q = query.values[a];
    NMRS_DCHECK(q < card) << "query value out of domain";

    from_offset_[k] = static_cast<ptrdiff_t>(off);
    std::memcpy(dists_.data() + off, m.RowFrom(q), card * sizeof(double));
    if (overlay_ != nullptr) overlay_->PatchRow(a, q, dists_.data() + off);
    off += card;

    to_offset_[k] = static_cast<ptrdiff_t>(off);
    std::memcpy(dists_.data() + off, m.ColumnTo(q), card * sizeof(double));
    if (overlay_ != nullptr) overlay_->PatchColumn(a, q, dists_.data() + off);
    off += card;
  }
  NMRS_DCHECK(off == total);
}

}  // namespace nmrs
