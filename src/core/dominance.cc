#include "core/dominance.h"

#include <cstring>
#include <numeric>

#include "core/query_distance_table.h"
#include "sim/matrix_overlay.h"

namespace nmrs {

std::vector<AttrId> ResolveSelectedAttrs(const Schema& schema,
                                         const std::vector<AttrId>& selected) {
  if (selected.empty()) {
    std::vector<AttrId> all(schema.num_attributes());
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  for (AttrId a : selected) {
    NMRS_CHECK(a < schema.num_attributes())
        << "selected attribute " << a << " out of range";
  }
  return selected;
}

PruneContext::PruneContext(const SimilaritySpace& space, const Schema& schema,
                           const Object& query,
                           const std::vector<AttrId>& selected,
                           const QueryDistanceTable* table)
    : space_(&space),
      schema_(&schema),
      query_(query),
      selected_(ResolveSelectedAttrs(schema, selected)),
      table_(table) {
  NMRS_CHECK_EQ(space.num_attributes(), schema.num_attributes());
  NMRS_CHECK_EQ(query.values.size(), schema.num_attributes());
  is_numeric_.reserve(selected_.size());
  for (AttrId a : selected_) {
    is_numeric_.push_back(schema.attribute(a).is_numeric);
  }
  qdist_.assign(selected_.size(), 0.0);
  if (table_ != nullptr) {
    NMRS_CHECK_EQ(table_->num_selected(), selected_.size());
    NMRS_CHECK(table_->selected() == selected_)
        << "QueryDistanceTable built for a different selection";
    xcol_.assign(selected_.size(), nullptr);
    overlay_ = table_->overlay();
    if (overlay_ != nullptr) {
      NMRS_CHECK_EQ(&overlay_->base(), space_)
          << "overlay built over a different base space";
      patched_cols_.resize(selected_.size());
      patched_for_.assign(selected_.size(), kInvalidValueId);
    }
  }
}

void PruneContext::SetCandidate(const ValueId* x_values,
                                const double* x_numerics) {
  x_values_ = x_values;
  x_numerics_ = x_numerics;
  if (table_ != nullptr) {
    for (size_t k = 0; k < selected_.size(); ++k) {
      const AttrId a = selected_[k];
      if (is_numeric_[k]) {
        NMRS_DCHECK(x_numerics != nullptr);
        qdist_[k] = space_->NumDist(a, query_.numerics[a], x_numerics[a]);
      } else {
        const ValueId xv = x_values[a];
        qdist_[k] = table_->FromQuery(k)[xv];
        if (overlay_ != nullptr && overlay_->TouchesColumn(a, xv)) {
          // Touched column: serve a patched scratch copy. The copy is
          // re-used as long as consecutive candidates share the value.
          if (patched_for_[k] != xv) {
            const size_t card = space_->Cardinality(a);
            patched_cols_[k].resize(card);
            std::memcpy(patched_cols_[k].data(),
                        space_->matrix(a).ColumnTo(xv),
                        card * sizeof(double));
            overlay_->PatchColumn(a, xv, patched_cols_[k].data());
            patched_for_[k] = xv;
          }
          xcol_[k] = patched_cols_[k].data();
        } else {
          // Untouched column: alias the shared base matrix, zero copies.
          xcol_[k] = space_->matrix(a).ColumnTo(xv);
        }
      }
    }
    return;
  }
  for (size_t k = 0; k < selected_.size(); ++k) {
    const AttrId a = selected_[k];
    if (is_numeric_[k]) {
      NMRS_DCHECK(x_numerics != nullptr);
      qdist_[k] = space_->NumDist(a, query_.numerics[a], x_numerics[a]);
    } else {
      qdist_[k] = space_->CatDist(a, query_.values[a], x_values[a]);
    }
  }
}

bool PruneContext::QueryAtCandidate() const {
  for (double d : qdist_) {
    if (d != 0.0) return false;
  }
  return true;
}

bool PruneContext::Prunes(const ValueId* y_values, const double* y_numerics,
                          uint64_t* checks) const {
  NMRS_DCHECK(x_values_ != nullptr);
  bool strict = false;
  if (table_ != nullptr) {
    // Memoized path: the per-candidate ColumnTo pointers cached by
    // SetCandidate turn each categorical check into one flat array load.
    for (size_t k = 0; k < selected_.size(); ++k) {
      const AttrId a = selected_[k];
      double lhs;
      if (is_numeric_[k]) {
        NMRS_DCHECK(y_numerics != nullptr && x_numerics_ != nullptr);
        lhs = space_->NumDist(a, y_numerics[a], x_numerics_[a]);
      } else {
        lhs = xcol_[k][y_values[a]];
      }
      ++*checks;
      if (lhs > qdist_[k]) return false;
      if (lhs < qdist_[k]) strict = true;
    }
    return strict;
  }
  for (size_t k = 0; k < selected_.size(); ++k) {
    const AttrId a = selected_[k];
    double lhs;
    if (is_numeric_[k]) {
      NMRS_DCHECK(y_numerics != nullptr && x_numerics_ != nullptr);
      lhs = space_->NumDist(a, y_numerics[a], x_numerics_[a]);
    } else {
      lhs = space_->CatDist(a, y_values[a], x_values_[a]);
    }
    ++*checks;
    if (lhs > qdist_[k]) return false;
    if (lhs < qdist_[k]) strict = true;
  }
  return strict;
}

}  // namespace nmrs
