#include "core/pipeline.h"

#include <numeric>

#include "common/timer.h"
#include "core/block_rs.h"
#include "core/naive.h"
#include "core/trs.h"
#include "order/attribute_order.h"
#include "sim/matrix_overlay.h"
#include "order/multi_sort.h"
#include "order/zorder.h"

namespace nmrs {

std::string_view AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kNaive:
      return "Naive";
    case Algorithm::kBRS:
      return "BRS";
    case Algorithm::kSRS:
      return "SRS";
    case Algorithm::kTRS:
      return "TRS";
    case Algorithm::kTileSRS:
      return "T-SRS";
    case Algorithm::kTileTRS:
      return "T-TRS";
  }
  return "?";
}

namespace {

// Writes `data` onto `disk` in permutation `order`, preserving original
// RowIds (so results stay comparable across orderings).
StatusOr<StoredDataset> StoreOrdered(SimulatedDisk* disk, const Dataset& data,
                                     const std::vector<RowId>& order,
                                     const std::string& name, bool checksum) {
  FileId file = disk->CreateFile(name);
  RowWriter writer(disk, file, data.schema(), checksum);
  for (RowId src : order) {
    NMRS_RETURN_IF_ERROR(
        writer.Add(src, data.RowValues(src), data.RowNumerics(src)));
  }
  NMRS_RETURN_IF_ERROR(writer.Finish());
  return StoredDataset(disk, file, data.schema(), data.num_rows(), checksum);
}

}  // namespace

StatusOr<PreparedDataset> PrepareDataset(SimulatedDisk* disk,
                                         const Dataset& data, Algorithm algo,
                                         const PrepareOptions& opts,
                                         const std::string& name) {
  Timer timer;
  std::vector<AttrId> attr_order =
      opts.attr_order.empty() ? AscendingCardinalityOrder(data.schema())
                              : opts.attr_order;

  std::vector<RowId> order;
  switch (algo) {
    case Algorithm::kNaive:
    case Algorithm::kBRS:
      order.resize(data.num_rows());
      std::iota(order.begin(), order.end(), 0);
      break;
    case Algorithm::kSRS:
    case Algorithm::kTRS:
      order = MultiAttributeSortOrder(data, attr_order);
      break;
    case Algorithm::kTileSRS:
    case Algorithm::kTileTRS:
      order = TileZOrder(data, attr_order, opts.tiles_per_dim);
      break;
  }

  NMRS_ASSIGN_OR_RETURN(
      StoredDataset stored,
      StoreOrdered(disk, data, order, name, opts.checksum_pages));
  PreparedDataset prepared{std::move(stored), std::move(attr_order),
                           timer.ElapsedMillis()};
  return prepared;
}

StatusOr<ReverseSkylineResult> RunReverseSkyline(
    const PreparedDataset& prepared, const SimilaritySpace& space,
    const Object& query, Algorithm algo, RSOptions opts) {
  if (opts.attr_order.empty()) opts.attr_order = prepared.attr_order;
  if (opts.overlay != nullptr && opts.overlay->empty()) opts.overlay = nullptr;
  if (opts.overlay != nullptr && &opts.overlay->base() != &space) {
    return Status::InvalidArgument(
        "RSOptions::overlay was built over a different base space");
  }
  switch (algo) {
    case Algorithm::kNaive:
      return NaiveReverseSkyline(prepared.stored, space, query, opts);
    case Algorithm::kBRS:
      return BlockReverseSkyline(prepared.stored, space, query, opts);
    case Algorithm::kSRS:
    case Algorithm::kTileSRS:
      return SortReverseSkyline(prepared.stored, space, query, opts);
    case Algorithm::kTRS:
    case Algorithm::kTileTRS:
      return TreeReverseSkyline(prepared.stored, space, query, opts);
  }
  return Status::Internal("unknown algorithm");
}

}  // namespace nmrs
