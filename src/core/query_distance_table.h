#ifndef NMRS_CORE_QUERY_DISTANCE_TABLE_H_
#define NMRS_CORE_QUERY_DISTANCE_TABLE_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "data/object.h"
#include "data/schema.h"
#include "sim/similarity_space.h"

namespace nmrs {

class MatrixOverlay;

/// Per-query memo of the query-side categorical distances. For each selected
/// categorical attribute a with domain size k_a it copies, once per query,
///
///   FromQuery(k)[v] = d_a(q_a, v)   (row  d(q, .) of the matrix)
///   ToQuery(k)[v]   = d_a(v, q_a)   (column d(., q) — matrices may be
///                                    asymmetric, so both directions exist)
///
/// into one dense double array indexed by the *selected position* k, not the
/// AttrId. Dominance checks then replace the SimilaritySpace →
/// DissimilarityMatrix double indirection (attr registry load, matrix Dist
/// with index arithmetic per check) with a single flat array load from
/// query-local memory. Domains are small (expert-filled matrices, paper
/// §3), so the whole table is a few cache lines and building it costs one
/// pass over k_a values per attribute.
///
/// Numeric attributes have no finite domain and are skipped: FromQuery /
/// ToQuery return nullptr for them and callers fall back to NumDist.
///
/// The table borrows nothing from the matrices — values are copied — so it
/// stays valid for the whole query regardless of later space mutations.
///
/// With an overlay (docs/OVERLAYS.md) the copied arrays are patched in
/// place after the base memcpy: FromQuery gets the overlay entries whose
/// source is q_a, ToQuery those whose destination is q_a. Only the touched
/// entries are rewritten — the build cost over the shared base stays one
/// memcpy plus O(delta) — and the overlay pointer is kept so PruneContext
/// can patch per-candidate columns the same way.
class QueryDistanceTable {
 public:
  /// `selected` must already be resolved (non-empty, validated), as done by
  /// ResolveSelectedAttrs; PruneContext and the algorithms pass their own
  /// resolved list so the positions line up. `overlay`, when non-null, must
  /// have been built over `space` and is borrowed for the table's lifetime.
  QueryDistanceTable(const SimilaritySpace& space, const Schema& schema,
                     const Object& query, const std::vector<AttrId>& selected,
                     const MatrixOverlay* overlay = nullptr);

  size_t num_selected() const { return selected_.size(); }
  const std::vector<AttrId>& selected() const { return selected_; }

  /// The overlay the table was patched with; null for a plain base table.
  const MatrixOverlay* overlay() const { return overlay_; }

  /// Dense row d_a(q_a, .) for selected position k; null if numeric.
  const double* FromQuery(size_t k) const {
    return from_offset_[k] < 0 ? nullptr : dists_.data() + from_offset_[k];
  }

  /// Dense column d_a(., q_a) for selected position k; null if numeric.
  const double* ToQuery(size_t k) const {
    return to_offset_[k] < 0 ? nullptr : dists_.data() + to_offset_[k];
  }

 private:
  std::vector<AttrId> selected_;
  const MatrixOverlay* overlay_;
  std::vector<ptrdiff_t> from_offset_;  // -1 for numeric attrs
  std::vector<ptrdiff_t> to_offset_;
  std::vector<double> dists_;  // all rows/columns back to back
};

}  // namespace nmrs

#endif  // NMRS_CORE_QUERY_DISTANCE_TABLE_H_
