#ifndef NMRS_CORE_SHARD_EXCHANGE_H_
#define NMRS_CORE_SHARD_EXCHANGE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "data/object.h"
#include "data/stored_dataset.h"
#include "sim/similarity_space.h"
#include "storage/paged_reader.h"

namespace nmrs {

/// The per-shard halves of the cross-shard pruner exchange
/// (docs/SHARDING.md): after a shard's local reverse-skyline run, its
/// surviving candidates must be serialized for export (CollectRowsById) and
/// every other shard's surviving candidates must be re-verified against
/// this shard's rows (PruneCandidatesAgainstShard) — the reverse-skyline
/// pruning relation is not transitive, so a shard's *pruned* rows still
/// prune foreign candidates and the verify pass must stream all local rows,
/// exactly like BRS phase 2 streams all of D.

/// Collects the stored rows whose ids appear in `ids` (ascending RowIds, as
/// every algorithm emits them) by one forward page scan of `data` through
/// `reader`, appending them to *out in stored order and stopping as soon as
/// all are found. IO lands on the reader's disk; the caller deltas its
/// stats. Returns InvalidArgument if some id does not exist in `data`.
Status CollectRowsById(const StoredDataset& data, PagedReader* reader,
                       const std::vector<RowId>& ids, RowBatch* out);

/// Streams every page of `data` past the in-memory `candidates` batch and
/// sets (*pruned)[i] = 1 for every candidate some row of `data` prunes
/// w.r.t. `query` — the BRS phase-2 refinement loop applied to a batch that
/// arrived over the exchange instead of from a scratch file. Honors
/// opts.selected_attrs and opts.use_kernels / kernel_promote_rows (each
/// page gets a columnar view, adaptive dispatch as in Phase 2); verdicts
/// and check accounting are identical between the scalar and kernel paths.
/// pair/check/kernel counters land in *stats (IO is the caller's delta).
/// *pruned is resized and zeroed first; rows whose id equals a candidate's
/// id never prune it (identity, as everywhere).
Status PruneCandidatesAgainstShard(const StoredDataset& data,
                                   const SimilaritySpace& space,
                                   const Object& query,
                                   const RowBatch& candidates,
                                   const RSOptions& opts, PagedReader* reader,
                                   std::vector<uint8_t>* pruned,
                                   QueryStats* stats);

}  // namespace nmrs

#endif  // NMRS_CORE_SHARD_EXCHANGE_H_
