#ifndef NMRS_CORE_DOMINANCE_KERNEL_H_
#define NMRS_CORE_DOMINANCE_KERNEL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.h"
#include "core/dominance.h"
#include "data/columnar_batch.h"

namespace nmrs {

/// Which lane-evaluator implementation the kernels run on. Selected once
/// per process by runtime CPU detection (like the crc32c hardware path):
/// kAvx2 uses vgatherdpd-style gathers + vectorized compares, kScalar is
/// the portable blocked fallback with identical semantics. Compiling with
/// -DNMRS_NO_SIMD (CMake option NMRS_NO_SIMD, exercised by ci.sh) removes
/// the SIMD path entirely, so the fallback stays continuously tested.
enum class KernelDispatch { kScalar, kAvx2 };

/// The dispatch the next-constructed kernel will use.
KernelDispatch ActiveKernelDispatch();
const char* KernelDispatchName(KernelDispatch d);

/// Test hook: force the portable scalar lane evaluators even when AVX2 is
/// available, so both paths can be compared in one process. Affects kernels
/// constructed after the call; not for production use.
void ForceScalarKernelDispatchForTest(bool force);

/// When a candidate graduates from the scalar probe loop to block
/// evaluation (docs/KERNELS.md). Every candidate starts on the exact
/// scalar early-aborting loop; only after it survives `promote_rows`
/// pruner tests — evidence that its scan is long enough for bulk work to
/// amortize — do the Find* adapters switch to evaluating `block_rows` rows
/// at a time through the lane evaluators. promote_rows == 0 promotes
/// immediately (the pre-adaptive always-block behavior). `block_rows`
/// selects the evaluation window: 32 for forward scans, 8 for
/// expanding-ring and leaf scans whose per-candidate visit runs are short.
struct KernelPolicy {
  uint32_t promote_rows = 0;
  uint32_t block_rows = 32;
};

/// Shared per-candidate cache of the *left-hand sides* of the pruning
/// condition: for a fixed candidate X, the values d_k(y, x_k) gathered per
/// attribute are a pure function of (space, X, batch) — the query only
/// supplies the thresholds d_k(q, x_k). A batch of queries scanning the
/// same rows against the same candidate can therefore gather each
/// attribute block once and reduce every query's evaluation to a
/// compare-only pass, which is what the cross-query shared scan
/// (docs/KERNELS.md) does: attach one cache to the batch, SetCandidate
/// once per candidate, and hand the cache to every query's
/// DominanceKernel.
///
/// Blocks of 32 rows x one selected attribute are filled lazily on first
/// demand by any sharing kernel. The cached doubles are loaded/computed by
/// the same operations as the fused lane evaluators, so verdicts stay
/// bit-identical. Not thread-safe: one cache serves the kernels of one
/// shared scan, which evaluate a candidate's queries sequentially.
class SharedCandidateCache {
 public:
  /// Binds the cache to a batch; `ctx` supplies the attribute selection
  /// geometry, which every sharing query must agree on (same resolved
  /// selection — guaranteed when they share RSOptions::selected_attrs).
  /// Both are borrowed and must outlive the cache.
  void Attach(const PruneContext& ctx, const ColumnarBatch& cols);

  /// Fixes candidate X and invalidates every cached block. Any sharing
  /// query's context works: the candidate columns and numeric values it
  /// caches are query-independent.
  void SetCandidate(const PruneContext& ctx);

  /// The lhs array for selected attribute k over rows
  /// [block*32, min(block*32+32, n)), filling it on first touch.
  const double* EnsureLhs(size_t k, size_t block);

  bool attached() const { return cols_ != nullptr; }
  const ColumnarBatch* batch() const { return cols_; }
  size_t num_selected() const { return attrs_.size(); }

  /// Attribute-blocks gathered since Attach (each serves every sharing
  /// query; the saving vs per-query kernels is (Q-1)/Q of the gathers).
  uint64_t blocks_filled() const { return blocks_filled_; }

 private:
  const ColumnarBatch* cols_ = nullptr;
  KernelDispatch dispatch_ = KernelDispatch::kScalar;
  std::vector<AttrId> attrs_;       // selected physical attribute ids
  std::vector<uint8_t> is_numeric_; // aligned with attrs_
  std::vector<double> num_scale_;   // numeric k: dissimilarity scale
  std::vector<const double*> xcol_; // categorical k: column d(., x)
  std::vector<double> xnum_;        // numeric k: candidate value
  size_t padded_rows_ = 0;
  size_t num_blocks_ = 0;
  std::vector<double> lhs_;         // [k * padded_rows_ + row]
  std::vector<uint8_t> ready_;      // [k * num_blocks_ + block]
  uint64_t blocks_filled_ = 0;
};

/// Block-at-a-time evaluator of the pruning condition of Definition 1: for
/// a fixed candidate X (set via the PruneContext), decide for a block of
/// rows Y at once whether forall k: d_k(y_k, x_k) <= d_k(q_k, x_k), with
/// strict inequality somewhere.
///
/// Because X is fixed, each categorical attribute's left-hand side is a
/// read from one contiguous DissimilarityMatrix column d_k(., x_k)
/// (PruneContext::CandidateColumn), indexed by the attribute's contiguous
/// value-id column of the ColumnarBatch — a gather -> compare -> movemask
/// shape. Per attribute the kernel ANDs survivor masks across the block and
/// early-exits the attribute loop as soon as no row in the block can still
/// be a pruner.
///
/// ## Adaptive dispatch (KernelPolicy)
///
/// Bulk evaluation only wins when the candidate's pruner scan is long; a
/// candidate pruned by one of its first few neighbours is cheapest on the
/// plain scalar loop. The Find* adapters therefore start every candidate
/// on an exact replica of the scalar early-aborting loop and promote it to
/// block evaluation only after it survives KernelPolicy::promote_rows
/// tests. Evaluation is group-granular (8-row groups tracked separately),
/// so a promoted candidate computes 8- or 32-row windows
/// (KernelPolicy::block_rows) without re-evaluating probed groups. The
/// promotion decision depends only on verdicts, which are
/// dispatch-invariant — so promotions, scalar/block row splits and
/// kernel_checks all agree between the AVX2 and portable paths.
///
/// ## Equivalence contract (docs/KERNELS.md)
///
/// Verdicts are bit-identical to the scalar PruneContext::Prunes loop: the
/// lane evaluators (and the pre-promotion probe) load the very same
/// doubles (matrix columns / numeric scaled |y-x|) and compare them
/// against the same cached thresholds d_k(q_k, x_k), in the same IEEE
/// operations. The Find* adapters also reproduce the scalar loops'
/// accounting *exactly*, in both regimes: per visited row they add the
/// number of attribute checks the early-aborting scalar loop would have
/// made (first violated attribute + 1, or num_selected() if none) —
/// probed rows natively, block rows reconstructed from the per-attribute
/// violation masks — and they stop at the first pruner in the same search
/// order. The block path's own work is reported separately as
/// kernel_checks(): per attribute processed it adds the number of rows
/// still alive in the window — a dispatch- and grouping-independent count
/// equal to the sum of the block-evaluated rows' scalar check counts plus
/// the lanes past an adapter's first pruner that the window computed
/// anyway.
///
/// The context must be table-backed (QueryDistanceTable) — all wired
/// algorithms build one — and both `ctx` and `cols` are borrowed and must
/// outlive the kernel. Not thread-safe; parallel chunks build one kernel
/// per chunk over the shared ColumnarBatch. With a SharedCandidateCache
/// the block path compares against the cache's lhs arrays instead of
/// gathering privately (cross-query scan sharing); the cache must be
/// attached to the same batch and its SetCandidate must track ctx's.
class DominanceKernel {
 public:
  /// Rows evaluated per wide block (one bitmask word).
  static constexpr size_t kBlockRows = 32;
  /// Group granularity of lazy evaluation, and the narrow block width.
  static constexpr size_t kGroupRows = 8;

  DominanceKernel(const PruneContext& ctx, const ColumnarBatch& cols,
                  KernelPolicy policy = {},
                  SharedCandidateCache* shared = nullptr);

  /// Invalidates cached block results and restarts the adaptive probe;
  /// call after ctx.SetCandidate().
  void BeginCandidate();

  /// Forward scan of rows [begin, end): returns true iff a row with
  /// id != skip_id prunes the current candidate, stopping there. Adds the
  /// scalar-equivalent pair/check counts (rows with id == skip_id are
  /// skipped without counting, like the scalar loops). Once the candidate
  /// is promoted, whole untouched windows are evaluated in bulk — masks
  /// only, no per-row artifacts — with the scalar accounting reconstructed
  /// from the per-attribute survivor masks (see BulkWindow).
  bool FindPrunerForward(size_t begin, size_t end, RowId skip_id,
                         uint64_t* pair_tests, uint64_t* checks);

  /// Outcome of a probe-only scan (ProbeForward).
  enum class ProbeResult {
    kPruner,     // a pruner was found; the scan stopped there
    kExhausted,  // all rows probed, none prunes the candidate
    kPromoted,   // the candidate survived promote_rows tests; the caller
                 // should switch to its bulk strategy for the remainder
  };

  /// The pre-promotion half of FindPrunerForward on its own: probes rows
  /// [begin, end) with the exact scalar loop and returns kPromoted as soon
  /// as the candidate graduates (immediately when promote_rows == 0),
  /// instead of falling through to block evaluation. Callers with a
  /// better-than-flat strategy for stubborn candidates — TRS escapes to
  /// the pruned ALTree traversal — use this to keep the cheap early-abort
  /// probe without committing to a flat block scan. Accounting matches
  /// the scalar loop for every row actually probed.
  ProbeResult ProbeForward(size_t begin, size_t end, RowId skip_id,
                           uint64_t* pair_tests, uint64_t* checks);

  /// Expanding-ring scan around `center` (offsets +-1, +-2, ..., the SRS
  /// phase-1 order): same contract as FindPrunerForward.
  bool FindPrunerRing(size_t center, RowId skip_id, uint64_t* pair_tests,
                      uint64_t* checks);

  /// Turns off promotion for every subsequent candidate: the scalar probe
  /// runs to completion instead of graduating to block windows. Callers'
  /// futility policies use this when a trial shows block evaluation is not
  /// paying for the workload at hand (e.g. ring scans whose candidates
  /// routinely survive their neighborhood). Verdicts and accounting are
  /// unaffected — only the evaluation strategy changes. Takes effect at
  /// the next BeginCandidate().
  void DisablePromotion() {
    policy_.promote_rows = std::numeric_limits<uint32_t>::max();
  }

  /// Bulk evaluation of rows [begin, end) with no early exit: computes
  /// every block, adds the scalar-equivalent check count of every row to
  /// *checks, and returns how many rows prune the candidate. Entry point
  /// for the throughput benchmarks (bench_kernels), where the per-row
  /// adapter call overhead would drown the lane work being measured.
  /// Always block-evaluates (the adaptive policy governs the Find*
  /// adapters only).
  uint64_t CountPruners(size_t begin, size_t end, uint64_t* checks);

  /// Per-row outcome of the current candidate, computing the row's window
  /// on first touch. Exposed for tests.
  bool RowPrunes(size_t j);
  /// Scalar-equivalent attribute-check count for row j (first violated
  /// attribute + 1, or num_selected() when none is violated).
  uint32_t RowChecks(size_t j);

  /// Alive-row attribute lanes evaluated by the block path since
  /// construction (see class comment). Dispatch-independent.
  uint64_t kernel_checks() const { return kernel_checks_; }

  /// Adaptive-policy telemetry since construction, dispatch-independent:
  /// candidates promoted to block evaluation, rows evaluated by the
  /// scalar probe, and rows evaluated by block windows.
  uint64_t promotions() const { return promotions_; }
  uint64_t scalar_rows() const { return scalar_rows_; }
  uint64_t block_rows() const { return block_rows_; }

  /// Dispatch this kernel instance is bound to.
  KernelDispatch dispatch() const { return dispatch_; }

 private:
  // Evaluates the policy-width window containing `row` (its not-yet-ready
  // 8-row groups only) and marks those groups ready.
  void EvalWindow(size_t row);
  // Lane evaluation of rows [begin, begin+n) restricted to `init_active`
  // (bit w = row begin+w), filling prunes_/nchecks_ for those rows.
  void EvalRows(size_t begin, size_t n, uint32_t init_active);
  // A group's artifacts are valid iff it was evaluated for the current
  // candidate. Epochs make BeginCandidate O(1) — with one kernel check per
  // candidate over thousands of candidates per batch, clearing a per-group
  // array each time would cost O(rows^2) per batch.
  inline bool GroupReady(size_t g) const {
    return group_epoch_[g] == epoch_;
  }
  inline void EnsureRow(size_t j) {
    if (!GroupReady(j >> 3)) EvalWindow(j);
  }
  // Exact scalar probe of row j: same loads, compares and early-abort as
  // PruneContext::Prunes on the current candidate.
  bool ProbeRow(size_t j, uint32_t* nch) const;
  // Bulk evaluation of the whole window [begin, begin+n) with no per-row
  // artifacts, used by the promoted forward scan. Adds the exact scalar
  // accounting (stopping at the first pruner like the early-aborting
  // loop) and returns whether the window contains one. The window must
  // not contain the skipped row or any already-evaluated group.
  bool BulkWindow(size_t begin, size_t n, uint64_t* pair_tests,
                  uint64_t* checks);

  const PruneContext* ctx_;
  const ColumnarBatch* cols_;
  SharedCandidateCache* shared_;
  KernelDispatch dispatch_;
  KernelPolicy policy_;
  size_t num_groups_;
  uint64_t epoch_ = 1;                  // current candidate's epoch
  std::vector<uint64_t> group_epoch_;   // per 8-row group: last evaluation
  std::vector<uint8_t> prunes_;         // per row, current candidate
  std::vector<uint16_t> nchecks_;       // per row, scalar-equivalent checks
  std::vector<uint32_t> bulk_active_;   // per attribute, BulkWindow scratch
  // Adaptive per-candidate state.
  uint32_t survived_ = 0;
  bool promoted_ = true;
  uint64_t kernel_checks_ = 0;
  uint64_t promotions_ = 0;
  uint64_t scalar_rows_ = 0;
  uint64_t block_rows_ = 0;
};

}  // namespace nmrs

#endif  // NMRS_CORE_DOMINANCE_KERNEL_H_
