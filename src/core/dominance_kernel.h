#ifndef NMRS_CORE_DOMINANCE_KERNEL_H_
#define NMRS_CORE_DOMINANCE_KERNEL_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/dominance.h"
#include "data/columnar_batch.h"

namespace nmrs {

/// Which lane-evaluator implementation the kernels run on. Selected once
/// per process by runtime CPU detection (like the crc32c hardware path):
/// kAvx2 uses vgatherdpd-style gathers + vectorized compares, kScalar is
/// the portable blocked fallback with identical semantics. Compiling with
/// -DNMRS_NO_SIMD (CMake option NMRS_NO_SIMD, exercised by ci.sh) removes
/// the SIMD path entirely, so the fallback stays continuously tested.
enum class KernelDispatch { kScalar, kAvx2 };

/// The dispatch the next-constructed kernel will use.
KernelDispatch ActiveKernelDispatch();
const char* KernelDispatchName(KernelDispatch d);

/// Test hook: force the portable scalar lane evaluators even when AVX2 is
/// available, so both paths can be compared in one process. Affects kernels
/// constructed after the call; not for production use.
void ForceScalarKernelDispatchForTest(bool force);

/// Block-at-a-time evaluator of the pruning condition of Definition 1: for
/// a fixed candidate X (set via the PruneContext), decide for a block of
/// rows Y at once whether forall k: d_k(y_k, x_k) <= d_k(q_k, x_k), with
/// strict inequality somewhere.
///
/// Because X is fixed, each categorical attribute's left-hand side is a
/// read from one contiguous DissimilarityMatrix column d_k(., x_k)
/// (PruneContext::CandidateColumn), indexed by the attribute's contiguous
/// value-id column of the ColumnarBatch — a gather -> compare -> movemask
/// shape. Per attribute the kernel ANDs survivor masks across the block and
/// early-exits the attribute loop as soon as no row in the block can still
/// be a pruner.
///
/// ## Equivalence contract (docs/KERNELS.md)
///
/// Verdicts are bit-identical to the scalar PruneContext::Prunes loop: the
/// lane evaluators load the very same doubles (matrix columns / numeric
/// scaled |y-x|) and compare them against the same cached thresholds
/// d_k(q_k, x_k), in the same IEEE operations. The Find* adapters also
/// reproduce the scalar loops' accounting *exactly*: per visited row they
/// add the number of attribute checks the early-aborting scalar loop would
/// have made (first violated attribute + 1, or num_selected() if none),
/// reconstructed from the per-attribute violation masks, and they stop at
/// the first pruner in the same search order. The block path's own work is
/// reported separately as kernel_checks(): per attribute processed it adds
/// the number of rows still alive in the block — a dispatch-independent
/// count (the SIMD path may compute a few extra dead lanes inside a
/// surviving 4/8-lane group, the scalar fallback skips them individually),
/// which surfaces in QueryStats::kernel_checks. It exceeds the scalar
/// loops' checks only because blocks past the first pruner of an adapter
/// scan are still evaluated whole.
///
/// The context must be table-backed (QueryDistanceTable) — all wired
/// algorithms build one — and both `ctx` and `cols` are borrowed and must
/// outlive the kernel. Not thread-safe; parallel chunks build one kernel
/// per chunk over the shared ColumnarBatch.
class DominanceKernel {
 public:
  /// Rows evaluated per block (one bitmask word).
  static constexpr size_t kBlockRows = 32;

  DominanceKernel(const PruneContext& ctx, const ColumnarBatch& cols);

  /// Invalidates cached block results; call after ctx.SetCandidate().
  void BeginCandidate();

  /// Forward scan of rows [begin, end): returns true iff a row with
  /// id != skip_id prunes the current candidate, stopping there. Adds the
  /// scalar-equivalent pair/check counts (rows with id == skip_id are
  /// skipped without counting, like the scalar loops).
  bool FindPrunerForward(size_t begin, size_t end, RowId skip_id,
                         uint64_t* pair_tests, uint64_t* checks);

  /// Expanding-ring scan around `center` (offsets +-1, +-2, ..., the SRS
  /// phase-1 order): same contract as FindPrunerForward.
  bool FindPrunerRing(size_t center, RowId skip_id, uint64_t* pair_tests,
                      uint64_t* checks);

  /// Bulk evaluation of rows [begin, end) with no early exit: computes
  /// every block, adds the scalar-equivalent check count of every row to
  /// *checks, and returns how many rows prune the candidate. Entry point
  /// for the throughput benchmarks (bench_kernels), where the per-row
  /// adapter call overhead would drown the lane work being measured.
  uint64_t CountPruners(size_t begin, size_t end, uint64_t* checks);

  /// Per-row outcome of the current candidate, computing the row's block
  /// on first touch. Exposed for tests and the TRS leaf runs.
  bool RowPrunes(size_t j);
  /// Scalar-equivalent attribute-check count for row j (first violated
  /// attribute + 1, or num_selected() when none is violated).
  uint32_t RowChecks(size_t j);

  /// Alive-row attribute lanes evaluated by the block path since
  /// construction (block-granular; see class comment).
  uint64_t kernel_checks() const { return kernel_checks_; }

  /// Dispatch this kernel instance is bound to.
  KernelDispatch dispatch() const { return dispatch_; }

 private:
  void EnsureBlock(size_t block);

  const PruneContext* ctx_;
  const ColumnarBatch* cols_;
  KernelDispatch dispatch_;
  size_t num_blocks_;
  std::vector<uint8_t> block_ready_;  // per block
  std::vector<uint8_t> prunes_;       // per row, current candidate
  std::vector<uint16_t> nchecks_;     // per row, scalar-equivalent checks
  uint64_t kernel_checks_ = 0;
};

}  // namespace nmrs

#endif  // NMRS_CORE_DOMINANCE_KERNEL_H_
