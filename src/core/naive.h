#ifndef NMRS_CORE_NAIVE_H_
#define NMRS_CORE_NAIVE_H_

#include "common/statusor.h"
#include "core/query.h"
#include "data/stored_dataset.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// Naive reverse skyline (paper Alg. 1): for every object X, scan the
/// database from the start looking for a pruner, stopping early when one is
/// found. Two pages of working memory (one holding X's page, one for the
/// scan). Up to |D| partial scans; O(n²) checks worst case. The baseline
/// everything else is measured against.
StatusOr<ReverseSkylineResult> NaiveReverseSkyline(
    const StoredDataset& data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts = {});

}  // namespace nmrs

#endif  // NMRS_CORE_NAIVE_H_
