#ifndef NMRS_CORE_BNL_DISK_H_
#define NMRS_CORE_BNL_DISK_H_

#include "common/statusor.h"
#include "core/query.h"
#include "data/stored_dataset.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// Disk-based Block-Nested-Loops dynamic skyline (Börzsönyi et al., the
/// algorithm the paper cites as the standard non-metric-capable skyline
/// method): the skyline of `data` with respect to reference object `ref`,
/// i.e. all rows not dominated w.r.t. `ref` by any other row.
///
/// Classic BNL structure: a memory-resident window of `opts.memory` pages
/// of incomparable objects; objects that don't fit are spilled to a
/// temporary file and processed in a further pass. Window objects are
/// timestamped so an object is only emitted once it has been compared
/// against the whole input of its pass. Statistics (checks, page IO,
/// passes via phase1_batches) are reported like the RS algorithms'.
///
/// This is both a library feature (dynamic skylines under non-metric
/// measures) and the building block of the "is Q in S(X)?" formulation of
/// Definition 1.
StatusOr<ReverseSkylineResult> BnlDynamicSkyline(const StoredDataset& data,
                                                 const SimilaritySpace& space,
                                                 const Object& ref,
                                                 const RSOptions& opts = {});

}  // namespace nmrs

#endif  // NMRS_CORE_BNL_DISK_H_
