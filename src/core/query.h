#ifndef NMRS_CORE_QUERY_H_
#define NMRS_CORE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "data/object.h"
#include "storage/fault_injection.h"
#include "storage/io_stats.h"
#include "storage/memory_budget.h"
#include "storage/paged_reader.h"

namespace nmrs {

class BufferPool;
class MatrixOverlay;
class TaskExecutor;

/// Options shared by all reverse-skyline algorithms.
struct RSOptions {
  /// Working memory for batches, in pages. Naive ignores it (it streams).
  MemoryBudget memory{16};

  /// Attribute subset to run the query on (paper §5.6); empty = all
  /// attributes. Entries are physical AttrIds.
  std::vector<AttrId> selected_attrs;

  /// AL-Tree / sort attribute ordering (physical AttrIds, a permutation of
  /// the schema). Empty = ascending-cardinality heuristic (paper §5.1).
  std::vector<AttrId> attr_order;

  /// TRS ablation switch: push children in ascending-descendant order
  /// (paper Alg. 4 line 8) when true, insertion order when false.
  bool order_children_by_descendants = true;

  /// Intra-query parallelism: threads used for the phase-1 candidate
  /// checks of BRS/SRS/TRS. The default 1 keeps the exact sequential
  /// execution of the paper reproduction — results, check counts, and IO
  /// are bit-identical to the seed implementation. Values > 1 split each
  /// loaded phase-1 batch into chunks of candidates checked concurrently;
  /// results, check totals, and IO stay identical to the sequential run
  /// (candidate checks are independent and survivors are still written in
  /// scan order), only wall-clock changes. See docs/PARALLELISM.md.
  int num_threads = 1;

  /// Executor hosting the extra phase-1 threads (borrowed, not owned).
  /// When null and num_threads > 1, temporary std::threads are spawned.
  /// The parallel QueryEngine points this at its own pool.
  TaskExecutor* executor = nullptr;

  /// Buffer-pool page caching (docs/CACHING.md). When `cache_pages` is true
  /// and `buffer_pool` is non-null, dataset reads of the frozen base files
  /// go through the shared pool: hits are served from memory and only
  /// misses are charged to the disk, with hit/miss/eviction counts folded
  /// into QueryStats::io. Reverse-skyline results are identical either way;
  /// only the IO charged changes. Default off = seed-identical IO. The pool
  /// is borrowed (the QueryEngine owns one per batch) and must have been
  /// built over this dataset's base disk.
  bool cache_pages = false;
  BufferPool* buffer_pool = nullptr;

  /// Fault-survival policy (docs/ROBUSTNESS.md): checksum verification,
  /// transient-retry budget, quarantine reporting, replica failover. One
  /// struct instead of loose fields so algorithms, the batch engine and the
  /// CLI stay in sync. Default == everything off = seed-identical behavior.
  /// `resilience.checksum_pages` is only valid when the dataset — and
  /// therefore this query's scratch spills, which inherit the flag — was
  /// prepared with PrepareOptions::checksum_pages.
  ResiliencePolicy resilience;

  /// Failover replicas of the frozen base files, in replica order (element
  /// r-1 serves replica r; the disk the algorithm runs over is replica 0).
  /// Runtime handles, not policy: the QueryEngine fills these per query
  /// task from its ReplicaSet when resilience.replicas > 1. Only files with
  /// id < failover_limit fail over (scratch spills exist on the primary
  /// view only).
  std::vector<SimulatedDisk*> failover_disks;
  FileId failover_limit = PagedReaderOptions::kNoFailoverLimit;

  /// Evaluate the pruning condition block-at-a-time through the SIMD
  /// dominance kernels (core/dominance_kernel.h): loaded batches get a
  /// column-major view and each candidate is checked against 32 rows per
  /// step via per-attribute gathers from the candidate's matrix column,
  /// with an AVX2 path selected by runtime CPU dispatch and a portable
  /// fallback. Reverse-skyline results are bit-identical to the scalar
  /// path; for Naive/BRS/SRS and the bichromatic block variant the check
  /// and pair-test counts are also reproduced exactly (mask accounting),
  /// while TRS reports its kernel phase-1 work as
  /// QueryStats::kernel_checks instead of tree-group checks. Default off =
  /// seed-identical execution. See docs/KERNELS.md.
  bool use_kernels = false;

  /// Adaptive promotion threshold of the kernel path (docs/KERNELS.md):
  /// each candidate starts on the exact scalar early-aborting loop and
  /// switches to block evaluation only after surviving this many pruner
  /// tests — so candidates pruned by a close neighbour never pay for
  /// whole blocks, and only long scans (where bulk evaluation amortizes)
  /// are promoted. 0 = promote immediately (the always-block behavior of
  /// the original kernels). Any value yields bit-identical results and
  /// check accounting; only the work split between the probe and the
  /// block path moves (QueryStats::kernel_scalar_rows /
  /// kernel_block_rows / kernel_promotions). The default came from the
  /// bench_kernels promote-threshold sweep.
  uint32_t kernel_promote_rows = 16;

  /// Per-user preference overlay (docs/OVERLAYS.md): a sparse delta over
  /// the base space's categorical matrices. When set (and non-empty) the
  /// query is evaluated against the *overlaid* space — bit-identical rows
  /// to rebuilding a patched SimilaritySpace and running without an
  /// overlay. Naive/BRS/SRS (and the bichromatic block variant) apply the
  /// delta natively through the QueryDistanceTable + PruneContext patched
  /// arrays; the tree variants materialize the patched space once per
  /// query (RunReverseSkyline does this under the covers). The overlay
  /// must have been built over the space passed to the algorithm, and is
  /// borrowed for the duration of the query.
  const MatrixOverlay* overlay = nullptr;
};

/// The PagedReader policy implied by a ResiliencePolicy. Replica handles
/// are runtime state, not policy, so the overload below supplies them.
inline PagedReaderOptions MakeReaderOptions(const ResiliencePolicy& policy) {
  PagedReaderOptions r;
  r.verify_checksums = policy.checksum_pages;
  r.retry = policy.retry;
  r.quarantine = policy.quarantine_log;
  return r;
}

/// The PagedReader policy implied by a query's RSOptions — every algorithm
/// builds its reader from this so the fault-handling and failover behavior
/// is uniform.
inline PagedReaderOptions MakeReaderOptions(const RSOptions& opts) {
  PagedReaderOptions r = MakeReaderOptions(opts.resilience);
  r.failover = opts.failover_disks;
  r.failover_limit = opts.failover_limit;
  return r;
}

/// Everything the paper measures, per query.
struct QueryStats {
  /// Attribute-level pruning-condition evaluations ("checks", paper
  /// Table 3). One check = one comparison of d(y,x) against d(q,x) on a
  /// single attribute (or its group-level / bucket-level analogue).
  uint64_t checks = 0;

  /// Breakdown of `checks` by phase (phase1_checks + phase2_checks ==
  /// checks for the two-phase algorithms; Naive reports all under
  /// phase1_checks).
  uint64_t phase1_checks = 0;
  uint64_t phase2_checks = 0;

  /// Candidate-pruner pair tests begun (each costs >= 1 check).
  uint64_t pair_tests = 0;

  /// Attribute lanes evaluated by the block dominance kernels
  /// (RSOptions::use_kernels): block width x attributes processed,
  /// including lanes the early-aborting scalar loop would have skipped.
  /// Zero when kernels are off. For Naive/BRS/SRS/bichromatic-block this
  /// is extra instrumentation on top of the exactly-reproduced `checks`;
  /// for TRS phase 1 it *replaces* the tree-group check accounting (see
  /// docs/KERNELS.md).
  uint64_t kernel_checks = 0;

  /// Adaptive kernel-dispatch telemetry (RSOptions::kernel_promote_rows;
  /// zero when kernels are off). Candidates promoted from the scalar
  /// probe to block evaluation, rows evaluated by the probe, and rows
  /// evaluated by block windows. Dispatch-independent: the AVX2 and
  /// portable paths report identical values.
  uint64_t kernel_promotions = 0;
  uint64_t kernel_scalar_rows = 0;
  uint64_t kernel_block_rows = 0;

  uint64_t phase1_batches = 0;
  uint64_t phase1_survivors = 0;  // |R| written between phases
  uint64_t phase2_batches = 0;

  /// Page IO charged to this query (excludes pre-processing sort).
  IoStats io;

  double phase1_millis = 0;
  double phase2_millis = 0;
  double compute_millis = 0;  // total wall time of the algorithm

  /// Modeled milliseconds spent in retry backoff (RetryPolicy). Charged as
  /// model time, never slept, so fault runs stay wall-clock independent.
  double modeled_backoff_millis = 0;

  uint64_t result_size = 0;

  /// Response time = computation + modeled disk latency (the simulated
  /// disk transfers pages memory-to-memory, so modeled IO time is added)
  /// + modeled retry backoff.
  double ResponseMillis(const IoCostModel& model = {}) const {
    return compute_millis + model.EstimateMillis(io) + modeled_backoff_millis;
  }

  /// Folds another query-fragment's counters into this one: all counts, IO
  /// and time fields are summed. `result_size` is NOT touched — fragments
  /// of one logical query (e.g. its per-shard runs) each report their local
  /// result size, and only the merger knows the final one. The sharded
  /// executor merges per-shard and exchange-phase stats with this.
  void MergeFrom(const QueryStats& o) {
    checks += o.checks;
    phase1_checks += o.phase1_checks;
    phase2_checks += o.phase2_checks;
    pair_tests += o.pair_tests;
    kernel_checks += o.kernel_checks;
    kernel_promotions += o.kernel_promotions;
    kernel_scalar_rows += o.kernel_scalar_rows;
    kernel_block_rows += o.kernel_block_rows;
    phase1_batches += o.phase1_batches;
    phase1_survivors += o.phase1_survivors;
    phase2_batches += o.phase2_batches;
    io += o.io;
    phase1_millis += o.phase1_millis;
    phase2_millis += o.phase2_millis;
    compute_millis += o.compute_millis;
    modeled_backoff_millis += o.modeled_backoff_millis;
  }

  std::string ToString() const;
};

/// A reverse-skyline answer: original RowIds (ascending) plus stats.
struct ReverseSkylineResult {
  std::vector<RowId> rows;
  QueryStats stats;
};

}  // namespace nmrs

#endif  // NMRS_CORE_QUERY_H_
