#ifndef NMRS_CORE_BLOCK_RS_H_
#define NMRS_CORE_BLOCK_RS_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/query.h"
#include "data/stored_dataset.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// BRS — Block Reverse Skyline (paper Alg. 2). Phase 1 loads
/// memory-sized batches of contiguous pages and prunes within each batch
/// (pruned objects still act as pruners), spilling survivors to a scratch
/// area. Phase 2 loads survivor batches of (memory - 1) pages and streams
/// the full database past each batch, one page at a time, removing anything
/// pruned; what remains is output.
StatusOr<ReverseSkylineResult> BlockReverseSkyline(
    const StoredDataset& data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts = {});

/// SRS — Sort Reverse Skyline (paper §4.2): BRS executed over a
/// multi-attribute pre-sorted database (the caller is responsible for the
/// pre-sort; see PrepareDataset). The only algorithmic difference is the
/// phase-1 pruner search order: for each object the search radiates outward
/// from its position in the sorted order (offsets ±1, ±2, ...), so that a
/// nearby pruner — likely, since sorting clusters shared values — is found
/// after few checks.
StatusOr<ReverseSkylineResult> SortReverseSkyline(
    const StoredDataset& sorted_data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts = {});

/// Work of a shared phase-1 scan that no single query owns (docs/KERNELS.md,
/// "Cross-query scan sharing"). The scan's page fetches are charged here —
/// each loaded batch feeds every query's phase-1 checks, so attributing them
/// to one query would misstate everyone's IO — while per-query scratch
/// spills and phase-2 IO stay in that query's QueryStats::io.
struct SharedScanStats {
  /// Phase-1 scan IO of the shared pass (page reads of D; excludes the
  /// per-query scratch writes interleaved with it).
  IoStats shared_io;
  /// Memory-sized batches the shared scan loaded (each one batch of every
  /// query's phase 1, i.e. per-query phase1_batches == shared_batches).
  uint64_t shared_batches = 0;
  /// Candidate attribute-blocks gathered once into the shared cache and
  /// reused by every query's kernel (kernel path only).
  uint64_t shared_gather_blocks = 0;
  /// Wall time of the shared phase-1 pass (not attributed per query; the
  /// per-query compute_millis covers phase 2 only).
  double shared_millis = 0;
  /// Modeled retry backoff of the shared scan's reader.
  double modeled_backoff_millis = 0;
};

/// BRS/SRS phase 1 for a batch of queries in ONE pass over the data: each
/// memory-sized batch is loaded once and every query's intra-batch pruning
/// runs against it (candidate-major, so with RSOptions::use_kernels the
/// per-candidate attribute gathers are shared across queries through a
/// SharedCandidateCache and each query pays a compare-only pass). Phase 2
/// then refines each query's survivors separately, reusing the single-query
/// path. `ring_order` selects the SRS expanding-ring phase-1 search (the
/// caller must pass the SRS-sorted dataset) vs the BRS forward scan.
///
/// Per query, `rows` and the stats the paper measures — checks, pair tests,
/// phase-1 survivors/batches, result size — are bit-identical to running
/// that query alone through BlockReverseSkyline / SortReverseSkyline with
/// the same options (num_threads is ignored here: checks run sequentially
/// per batch). Only the IO *attribution* differs: the shared pass is
/// reported once in `shared` instead of once per query, so the batch total
/// (sum of per-query io + shared_io) replaces Q redundant scans of D with
/// one. RSOptions::resilience/failover handles apply to the shared reader
/// and every per-query reader alike.
StatusOr<std::vector<ReverseSkylineResult>> SharedScanReverseSkylines(
    const StoredDataset& data, const SimilaritySpace& space,
    const std::vector<Object>& queries, const RSOptions& opts,
    bool ring_order, SharedScanStats* shared);

}  // namespace nmrs

#endif  // NMRS_CORE_BLOCK_RS_H_
