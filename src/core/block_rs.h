#ifndef NMRS_CORE_BLOCK_RS_H_
#define NMRS_CORE_BLOCK_RS_H_

#include "common/statusor.h"
#include "core/query.h"
#include "data/stored_dataset.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// BRS — Block Reverse Skyline (paper Alg. 2). Phase 1 loads
/// memory-sized batches of contiguous pages and prunes within each batch
/// (pruned objects still act as pruners), spilling survivors to a scratch
/// area. Phase 2 loads survivor batches of (memory - 1) pages and streams
/// the full database past each batch, one page at a time, removing anything
/// pruned; what remains is output.
StatusOr<ReverseSkylineResult> BlockReverseSkyline(
    const StoredDataset& data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts = {});

/// SRS — Sort Reverse Skyline (paper §4.2): BRS executed over a
/// multi-attribute pre-sorted database (the caller is responsible for the
/// pre-sort; see PrepareDataset). The only algorithmic difference is the
/// phase-1 pruner search order: for each object the search radiates outward
/// from its position in the sorted order (offsets ±1, ±2, ...), so that a
/// nearby pruner — likely, since sorting clusters shared values — is found
/// after few checks.
StatusOr<ReverseSkylineResult> SortReverseSkyline(
    const StoredDataset& sorted_data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts = {});

}  // namespace nmrs

#endif  // NMRS_CORE_BLOCK_RS_H_
