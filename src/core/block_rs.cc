#include "core/block_rs.h"

#include <algorithm>

#include "common/sync.h"
#include "common/timer.h"
#include "core/dominance.h"
#include "core/dominance_kernel.h"
#include "core/query_distance_table.h"
#include "data/columnar_batch.h"
#include "storage/paged_reader.h"

namespace nmrs {

namespace {

// Phase-1 pruner search order within a batch.
enum class SearchOrder {
  kForward,  // BRS: plain 0..n scan
  kRing,     // SRS: offsets ±1, ±2, ... from the candidate's sorted position
};

// Checks candidates [begin, end) of `batch` against all loaded rows and
// records which are pruned. `ctx` and the counters belong to the caller
// (one chunk when parallel), so this runs with no shared mutable state
// beyond the disjoint `pruned` slots — the per-candidate work is identical
// to the sequential scan, which keeps check counts deterministic.
void Phase1CheckRange(const RowBatch& batch, PruneContext& ctx,
                      SearchOrder order, size_t begin, size_t end,
                      uint64_t* pair_tests, uint64_t* checks,
                      uint8_t* pruned) {
  const size_t n = batch.size();
  for (size_t i = begin; i < end; ++i) {
    ctx.SetCandidate(batch.row_values(i), batch.row_numerics(i));
    const RowId x_id = batch.id(i);
    bool found = false;

    auto try_pruner = [&](size_t j) {
      if (batch.id(j) == x_id) return false;
      ++*pair_tests;
      return ctx.Prunes(batch.row_values(j), batch.row_numerics(j), checks);
    };

    if (order == SearchOrder::kForward) {
      for (size_t j = 0; j < n && !found; ++j) {
        if (j == i) continue;
        found = try_pruner(j);
      }
    } else {
      // Expanding ring around i: sorted data puts likely pruners nearby.
      for (size_t off = 1; off < n && !found; ++off) {
        if (off <= i) found = try_pruner(i - off);
        if (!found && i + off < n) found = try_pruner(i + off);
      }
    }
    pruned[i] = found ? 1 : 0;
  }
}

// Kernel-path analogue of Phase1CheckRange: identical verdicts and
// pair/check accounting (DominanceKernel's equivalence contract), with the
// per-pruner scans evaluated block-at-a-time over the batch's columnar
// view. The kernel's lane count is added to *kernel_checks.
void Phase1CheckRangeKernel(const RowBatch& batch, const ColumnarBatch& cols,
                            PruneContext& ctx, SearchOrder order,
                            size_t begin, size_t end, uint64_t* pair_tests,
                            uint64_t* checks, uint64_t* kernel_checks,
                            uint8_t* pruned) {
  DominanceKernel kernel(ctx, cols);
  const size_t n = batch.size();
  for (size_t i = begin; i < end; ++i) {
    ctx.SetCandidate(batch.row_values(i), batch.row_numerics(i));
    kernel.BeginCandidate();
    const RowId x_id = batch.id(i);
    const bool found =
        order == SearchOrder::kForward
            ? kernel.FindPrunerForward(0, n, x_id, pair_tests, checks)
            : kernel.FindPrunerRing(i, x_id, pair_tests, checks);
    pruned[i] = found ? 1 : 0;
  }
  *kernel_checks += kernel.kernel_checks();
}

// Intra-batch pruning of one loaded batch; appends survivors to *writer.
// Pruned objects keep acting as pruners (paper Alg. 2 lines 4-7 iterate all
// loaded Y). With opts.num_threads > 1 the candidate checks are chunked
// across threads (each chunk with its own PruneContext and counters, summed
// in chunk order); survivors are still written in scan order, so results,
// check totals, and IO match the sequential run exactly.
Status Phase1Batch(const RowBatch& batch, const SimilaritySpace& space,
                   const Schema& schema, const Object& query,
                   const RSOptions& opts, PruneContext& ctx,
                   const QueryDistanceTable& qtable, SearchOrder order,
                   QueryStats* stats, RowWriter* writer) {
  const size_t n = batch.size();
  std::vector<uint8_t> pruned(n, 0);
  // One columnar (SoA) view per loaded batch feeds every candidate's
  // kernel scans; chunks share it read-only.
  ColumnarBatch cols;
  if (opts.use_kernels) cols.Build(batch);
  if (opts.num_threads <= 1 || n < 2) {
    if (opts.use_kernels) {
      Phase1CheckRangeKernel(batch, cols, ctx, order, 0, n,
                             &stats->pair_tests, &stats->checks,
                             &stats->kernel_checks, pruned.data());
    } else {
      Phase1CheckRange(batch, ctx, order, 0, n, &stats->pair_tests,
                       &stats->checks, pruned.data());
    }
  } else {
    // More chunks than threads so the work-stealing pool can balance the
    // uneven per-candidate cost (a candidate pruned early is cheap).
    const size_t num_chunks =
        std::min(n, static_cast<size_t>(opts.num_threads) * 4);
    struct ChunkCounters {
      uint64_t pair_tests = 0;
      uint64_t checks = 0;
      uint64_t kernel_checks = 0;
    };
    std::vector<ChunkCounters> counters(num_chunks);
    ParallelChunks(opts.executor, opts.num_threads, num_chunks,
                   [&](size_t c) {
                     PruneContext chunk_ctx(space, schema, query,
                                            ctx.selected(), &qtable);
                     if (opts.use_kernels) {
                       Phase1CheckRangeKernel(batch, cols, chunk_ctx, order,
                                              ChunkBegin(n, num_chunks, c),
                                              ChunkBegin(n, num_chunks, c + 1),
                                              &counters[c].pair_tests,
                                              &counters[c].checks,
                                              &counters[c].kernel_checks,
                                              pruned.data());
                     } else {
                       Phase1CheckRange(batch, chunk_ctx, order,
                                        ChunkBegin(n, num_chunks, c),
                                        ChunkBegin(n, num_chunks, c + 1),
                                        &counters[c].pair_tests,
                                        &counters[c].checks, pruned.data());
                     }
                   });
    for (const ChunkCounters& cc : counters) {
      stats->pair_tests += cc.pair_tests;
      stats->checks += cc.checks;
      stats->kernel_checks += cc.kernel_checks;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!pruned[i]) {
      NMRS_RETURN_IF_ERROR(writer->Add(batch.id(i), batch.row_values(i),
                                       batch.row_numerics(i)));
    }
  }
  return Status::OK();
}

// Phase 2 (paper Alg. 2 lines 9-19): survivors R are consumed in batches of
// (memory-1) pages; each batch is refined by one full sequential scan of D.
// With opts.use_kernels each streamed D-page gets a columnar view shared by
// all still-alive candidates of the batch; results and accounting match the
// scalar scan exactly.
Status Phase2(const StoredDataset& data, const StoredDataset& survivors,
              PagedReader* reader, PruneContext& ctx, uint64_t batch_pages,
              const RSOptions& opts, QueryStats* stats,
              std::vector<RowId>* out) {
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  const uint64_t r_pages = survivors.num_pages();
  const uint64_t d_pages = data.num_pages();

  for (PageId r_start = 0; r_start < r_pages; r_start += batch_pages) {
    ++stats->phase2_batches;
    const PageId r_end = std::min<PageId>(r_start + batch_pages, r_pages);
    RowBatch batch(m, numerics);
    for (PageId p = r_start; p < r_end; ++p) {
      NMRS_RETURN_IF_ERROR(survivors.ReadPageVia(reader, p, &batch));
    }
    std::vector<bool> alive(batch.size(), true);

    RowBatch page(m, numerics);
    ColumnarBatch cols;
    for (PageId dp = 0; dp < d_pages; ++dp) {
      page.Clear();
      NMRS_RETURN_IF_ERROR(data.ReadPageVia(reader, dp, &page));
      if (opts.use_kernels) {
        cols.Build(page);
        DominanceKernel kernel(ctx, cols);
        for (size_t i = 0; i < batch.size(); ++i) {
          if (!alive[i]) continue;
          ctx.SetCandidate(batch.row_values(i), batch.row_numerics(i));
          kernel.BeginCandidate();
          if (kernel.FindPrunerForward(0, page.size(), batch.id(i),
                                       &stats->pair_tests, &stats->checks)) {
            alive[i] = false;
          }
        }
        stats->kernel_checks += kernel.kernel_checks();
        continue;
      }
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!alive[i]) continue;
        ctx.SetCandidate(batch.row_values(i), batch.row_numerics(i));
        const RowId x_id = batch.id(i);
        for (size_t j = 0; j < page.size(); ++j) {
          if (page.id(j) == x_id) continue;
          ++stats->pair_tests;
          if (ctx.Prunes(page.row_values(j), page.row_numerics(j),
                         &stats->checks)) {
            alive[i] = false;
            break;
          }
        }
      }
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      if (alive[i]) out->push_back(batch.id(i));
    }
  }
  return Status::OK();
}

StatusOr<ReverseSkylineResult> RunBlockAlgorithm(
    const StoredDataset& data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts, SearchOrder order) {
  SimulatedDisk* disk = data.disk();
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  if (opts.memory.pages < 2) {
    return Status::InvalidArgument(
        "block algorithms need a memory budget of at least 2 pages");
  }

  Timer timer;
  const IoStats io_before = disk->stats();
  disk->InvalidateArmPosition();

  PagedReader reader(disk, opts.cache_pages ? opts.buffer_pool : nullptr,
                     MakeReaderOptions(opts));
  const std::vector<AttrId> selected =
      ResolveSelectedAttrs(schema, opts.selected_attrs);
  const QueryDistanceTable qtable(space, schema, query, selected);
  PruneContext ctx(space, schema, query, selected, &qtable);
  ReverseSkylineResult result;
  QueryStats& stats = result.stats;

  // ---- Phase 1: intra-batch pruning, spill survivors. ----
  Timer phase1_timer;
  FileId scratch = disk->CreateFile("rs-scratch");
  RowWriter writer(disk, scratch, schema, opts.resilience.checksum_pages);
  const uint64_t total_pages = data.num_pages();
  for (PageId start = 0; start < total_pages; start += opts.memory.pages) {
    ++stats.phase1_batches;
    const PageId end =
        std::min<PageId>(start + opts.memory.pages, total_pages);
    RowBatch batch(m, numerics);
    for (PageId p = start; p < end; ++p) {
      NMRS_RETURN_IF_ERROR(data.ReadPageVia(&reader, p, &batch));
    }
    NMRS_RETURN_IF_ERROR(Phase1Batch(batch, space, schema, query, opts, ctx,
                                     qtable, order, &stats, &writer));
    // Results are written out at the end of every batch (paper §4.1) —
    // this is what makes the per-batch random IO visible.
    NMRS_RETURN_IF_ERROR(writer.FlushPartial());
  }
  NMRS_RETURN_IF_ERROR(writer.Finish());
  stats.phase1_survivors = writer.rows_written();
  stats.phase1_checks = stats.checks;
  stats.phase1_millis = phase1_timer.ElapsedMillis();

  // ---- Phase 2: refine survivors against full scans of D. ----
  Timer phase2_timer;
  StoredDataset survivors(disk, scratch, schema, writer.rows_written(),
                          opts.resilience.checksum_pages);
  const uint64_t batch_pages = opts.memory.pages - 1;  // 1 page scans D
  NMRS_RETURN_IF_ERROR(Phase2(data, survivors, &reader, ctx, batch_pages,
                              opts, &stats, &result.rows));
  stats.phase2_checks = stats.checks - stats.phase1_checks;
  stats.phase2_millis = phase2_timer.ElapsedMillis();

  NMRS_RETURN_IF_ERROR(disk->DeleteFile(scratch));

  std::sort(result.rows.begin(), result.rows.end());
  stats.result_size = result.rows.size();
  stats.io = disk->stats() - io_before;
  reader.FoldStatsInto(&stats.io);
  stats.modeled_backoff_millis = reader.modeled_backoff_millis();
  stats.compute_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace

StatusOr<ReverseSkylineResult> BlockReverseSkyline(
    const StoredDataset& data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts) {
  return RunBlockAlgorithm(data, space, query, opts, SearchOrder::kForward);
}

StatusOr<ReverseSkylineResult> SortReverseSkyline(
    const StoredDataset& sorted_data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts) {
  return RunBlockAlgorithm(sorted_data, space, query, opts,
                           SearchOrder::kRing);
}

}  // namespace nmrs
