#include "core/block_rs.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/sync.h"
#include "common/timer.h"
#include "core/dominance.h"
#include "core/dominance_kernel.h"
#include "core/query_distance_table.h"
#include "data/columnar_batch.h"
#include "storage/paged_reader.h"

namespace nmrs {

namespace {

// Phase-1 pruner search order within a batch.
enum class SearchOrder {
  kForward,  // BRS: plain 0..n scan
  kRing,     // SRS: offsets ±1, ±2, ... from the candidate's sorted position
};

// Per-chunk phase-1 counters, summed into QueryStats in chunk order so the
// totals match the sequential run exactly (all six are order-independent
// sums, but summing in chunk order keeps the contract obvious).
struct Phase1Counters {
  uint64_t pair_tests = 0;
  uint64_t checks = 0;
  uint64_t kernel_checks = 0;
  uint64_t kernel_promotions = 0;
  uint64_t kernel_scalar_rows = 0;
  uint64_t kernel_block_rows = 0;

  void FoldInto(QueryStats* stats) const {
    stats->pair_tests += pair_tests;
    stats->checks += checks;
    stats->kernel_checks += kernel_checks;
    stats->kernel_promotions += kernel_promotions;
    stats->kernel_scalar_rows += kernel_scalar_rows;
    stats->kernel_block_rows += kernel_block_rows;
  }
};

// The kernel policy of a phase-1 scan: the ring order visits short
// alternating runs around the candidate, so promoted candidates evaluate
// narrow 8-row windows; the forward order scans long contiguous stretches
// where the full 32-row window amortizes best.
KernelPolicy Phase1Policy(const RSOptions& opts, SearchOrder order) {
  return {opts.kernel_promote_rows,
          order == SearchOrder::kRing
              ? static_cast<uint32_t>(DominanceKernel::kGroupRows)
              : static_cast<uint32_t>(DominanceKernel::kBlockRows)};
}

// Checks candidates [begin, end) of `batch` against all loaded rows and
// records which are pruned. `ctx` and the counters belong to the caller
// (one chunk when parallel), so this runs with no shared mutable state
// beyond the disjoint `pruned` slots — the per-candidate work is identical
// to the sequential scan, which keeps check counts deterministic.
void Phase1CheckRange(const RowBatch& batch, PruneContext& ctx,
                      SearchOrder order, size_t begin, size_t end,
                      uint64_t* pair_tests, uint64_t* checks,
                      uint8_t* pruned) {
  const size_t n = batch.size();
  for (size_t i = begin; i < end; ++i) {
    ctx.SetCandidate(batch.row_values(i), batch.row_numerics(i));
    const RowId x_id = batch.id(i);
    bool found = false;

    auto try_pruner = [&](size_t j) {
      if (batch.id(j) == x_id) return false;
      ++*pair_tests;
      return ctx.Prunes(batch.row_values(j), batch.row_numerics(j), checks);
    };

    if (order == SearchOrder::kForward) {
      for (size_t j = 0; j < n && !found; ++j) {
        if (j == i) continue;
        found = try_pruner(j);
      }
    } else {
      // Expanding ring around i: sorted data puts likely pruners nearby.
      for (size_t off = 1; off < n && !found; ++off) {
        if (off <= i) found = try_pruner(i - off);
        if (!found && i + off < n) found = try_pruner(i + off);
      }
    }
    pruned[i] = found ? 1 : 0;
  }
}

// Kernel-path analogue of Phase1CheckRange: identical verdicts and
// pair/check accounting (DominanceKernel's equivalence contract), with the
// per-pruner scans evaluated adaptively — scalar probe first, blocks after
// promotion — over the batch's columnar view. The kernel's lane count and
// adaptive telemetry are added to *counters.
void Phase1CheckRangeKernel(const RowBatch& batch, const ColumnarBatch& cols,
                            PruneContext& ctx, SearchOrder order,
                            KernelPolicy policy, size_t begin, size_t end,
                            Phase1Counters* counters, uint8_t* pruned) {
  DominanceKernel kernel(ctx, cols, policy);
  const size_t n = batch.size();
  // Ring-scan futility trial. The ring order exists because sorted data
  // puts likely pruners next to the candidate, and the kernel path can
  // lose to the row-major scalar loop from both ends of that spectrum:
  //
  //  * Promotions too common — a candidate that survives its
  //    neighborhood usually has no pruner at all, and for those the
  //    narrow 8-row windows re-evaluate every attribute of rows the
  //    scalar early-abort would skip after one. Promoted ring
  //    candidates average hundreds of window rows each, so even a few
  //    percent of them dominate the chunk's lane work.
  //  * Probes too short — when nearly every candidate is resolved by
  //    its immediate neighbors (average probe length a row or two),
  //    block evaluation never engages and the kernel degenerates into
  //    the scalar loop plus per-candidate setup, paying one cache line
  //    per attribute column where the row-major loop pays one per row.
  //
  // Each chunk therefore watches its first kRingTrial candidates and
  // hands the rest of the chunk back to the row-major scalar scan once
  // promotions exceed a thirty-second of candidates seen, or once the
  // probed-row average drops to two rows per candidate or less; the
  // kernel stays engaged only in the middle band where probes run long
  // enough to amortize candidate setup while promotions stay rare.
  // Promotion policy only changes evaluation strategy, never verdicts,
  // and the fallback is the reference loop itself, so results and check
  // totals are unaffected; both rates depend only on verdict order,
  // keeping the cut deterministic and dispatch-invariant. Configured
  // promote_rows of 0 ("always block") and never are explicit regimes
  // exempt from the trial.
  constexpr size_t kRingTrial = 64;
  const bool adaptive_ring =
      order == SearchOrder::kRing && policy.promote_rows > 0 &&
      policy.promote_rows != std::numeric_limits<uint32_t>::max();
  size_t trialed = 0;
  for (size_t i = begin; i < end; ++i) {
    if (adaptive_ring && trialed >= kRingTrial &&
        (kernel.promotions() * 32 > trialed ||
         kernel.scalar_rows() <= trialed * 2)) {
      counters->kernel_checks += kernel.kernel_checks();
      counters->kernel_promotions += kernel.promotions();
      counters->kernel_scalar_rows += kernel.scalar_rows();
      counters->kernel_block_rows += kernel.block_rows();
      Phase1CheckRange(batch, ctx, order, i, end, &counters->pair_tests,
                       &counters->checks, pruned);
      return;
    }
    ctx.SetCandidate(batch.row_values(i), batch.row_numerics(i));
    kernel.BeginCandidate();
    const RowId x_id = batch.id(i);
    const bool found =
        order == SearchOrder::kForward
            ? kernel.FindPrunerForward(0, n, x_id, &counters->pair_tests,
                                       &counters->checks)
            : kernel.FindPrunerRing(i, x_id, &counters->pair_tests,
                                    &counters->checks);
    pruned[i] = found ? 1 : 0;
    if (adaptive_ring) ++trialed;
  }
  counters->kernel_checks += kernel.kernel_checks();
  counters->kernel_promotions += kernel.promotions();
  counters->kernel_scalar_rows += kernel.scalar_rows();
  counters->kernel_block_rows += kernel.block_rows();
}

// Intra-batch pruning of one loaded batch; appends survivors to *writer.
// Pruned objects keep acting as pruners (paper Alg. 2 lines 4-7 iterate all
// loaded Y). With opts.num_threads > 1 the candidate checks are chunked
// across threads (each chunk with its own PruneContext and counters, summed
// in chunk order); survivors are still written in scan order, so results,
// check totals, and IO match the sequential run exactly.
Status Phase1Batch(const RowBatch& batch, const SimilaritySpace& space,
                   const Schema& schema, const Object& query,
                   const RSOptions& opts, PruneContext& ctx,
                   const QueryDistanceTable& qtable, SearchOrder order,
                   QueryStats* stats, RowWriter* writer) {
  const size_t n = batch.size();
  std::vector<uint8_t> pruned(n, 0);
  // One columnar (SoA) view per loaded batch feeds every candidate's
  // kernel scans; chunks share it read-only.
  ColumnarBatch cols;
  if (opts.use_kernels) cols.Build(batch);
  if (opts.num_threads <= 1 || n < 2) {
    if (opts.use_kernels) {
      Phase1Counters counters;
      Phase1CheckRangeKernel(batch, cols, ctx, order,
                             Phase1Policy(opts, order), 0, n, &counters,
                             pruned.data());
      counters.FoldInto(stats);
    } else {
      Phase1CheckRange(batch, ctx, order, 0, n, &stats->pair_tests,
                       &stats->checks, pruned.data());
    }
  } else {
    // More chunks than threads so the work-stealing pool can balance the
    // uneven per-candidate cost (a candidate pruned early is cheap).
    const size_t num_chunks =
        std::min(n, static_cast<size_t>(opts.num_threads) * 4);
    std::vector<Phase1Counters> counters(num_chunks);
    ParallelChunks(opts.executor, opts.num_threads, num_chunks,
                   [&](size_t c) {
                     PruneContext chunk_ctx(space, schema, query,
                                            ctx.selected(), &qtable);
                     if (opts.use_kernels) {
                       Phase1CheckRangeKernel(batch, cols, chunk_ctx, order,
                                              Phase1Policy(opts, order),
                                              ChunkBegin(n, num_chunks, c),
                                              ChunkBegin(n, num_chunks, c + 1),
                                              &counters[c], pruned.data());
                     } else {
                       Phase1CheckRange(batch, chunk_ctx, order,
                                        ChunkBegin(n, num_chunks, c),
                                        ChunkBegin(n, num_chunks, c + 1),
                                        &counters[c].pair_tests,
                                        &counters[c].checks, pruned.data());
                     }
                   });
    for (const Phase1Counters& cc : counters) {
      cc.FoldInto(stats);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!pruned[i]) {
      NMRS_RETURN_IF_ERROR(writer->Add(batch.id(i), batch.row_values(i),
                                       batch.row_numerics(i)));
    }
  }
  return Status::OK();
}

// Phase 2 (paper Alg. 2 lines 9-19): survivors R are consumed in batches of
// (memory-1) pages; each batch is refined by one full sequential scan of D.
// With opts.use_kernels each streamed D-page gets a columnar view shared by
// all still-alive candidates of the batch; results and accounting match the
// scalar scan exactly.
Status Phase2(const StoredDataset& data, const StoredDataset& survivors,
              PagedReader* reader, PruneContext& ctx, uint64_t batch_pages,
              const RSOptions& opts, QueryStats* stats,
              std::vector<RowId>* out) {
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  const uint64_t r_pages = survivors.num_pages();
  const uint64_t d_pages = data.num_pages();

  for (PageId r_start = 0; r_start < r_pages; r_start += batch_pages) {
    ++stats->phase2_batches;
    const PageId r_end = std::min<PageId>(r_start + batch_pages, r_pages);
    RowBatch batch(m, numerics);
    for (PageId p = r_start; p < r_end; ++p) {
      NMRS_RETURN_IF_ERROR(survivors.ReadPageVia(reader, p, &batch));
    }
    std::vector<bool> alive(batch.size(), true);

    RowBatch page(m, numerics);
    ColumnarBatch cols;
    for (PageId dp = 0; dp < d_pages; ++dp) {
      page.Clear();
      NMRS_RETURN_IF_ERROR(data.ReadPageVia(reader, dp, &page));
      if (opts.use_kernels) {
        cols.Build(page);
        DominanceKernel kernel(
            ctx, cols, {opts.kernel_promote_rows, DominanceKernel::kBlockRows});
        for (size_t i = 0; i < batch.size(); ++i) {
          if (!alive[i]) continue;
          ctx.SetCandidate(batch.row_values(i), batch.row_numerics(i));
          kernel.BeginCandidate();
          if (kernel.FindPrunerForward(0, page.size(), batch.id(i),
                                       &stats->pair_tests, &stats->checks)) {
            alive[i] = false;
          }
        }
        stats->kernel_checks += kernel.kernel_checks();
        stats->kernel_promotions += kernel.promotions();
        stats->kernel_scalar_rows += kernel.scalar_rows();
        stats->kernel_block_rows += kernel.block_rows();
        continue;
      }
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!alive[i]) continue;
        ctx.SetCandidate(batch.row_values(i), batch.row_numerics(i));
        const RowId x_id = batch.id(i);
        for (size_t j = 0; j < page.size(); ++j) {
          if (page.id(j) == x_id) continue;
          ++stats->pair_tests;
          if (ctx.Prunes(page.row_values(j), page.row_numerics(j),
                         &stats->checks)) {
            alive[i] = false;
            break;
          }
        }
      }
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      if (alive[i]) out->push_back(batch.id(i));
    }
  }
  return Status::OK();
}

StatusOr<ReverseSkylineResult> RunBlockAlgorithm(
    const StoredDataset& data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts, SearchOrder order) {
  SimulatedDisk* disk = data.disk();
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  if (opts.memory.pages < 2) {
    return Status::InvalidArgument(
        "block algorithms need a memory budget of at least 2 pages");
  }

  Timer timer;
  const IoStats io_before = disk->stats();
  disk->InvalidateArmPosition();

  PagedReader reader(disk, opts.cache_pages ? opts.buffer_pool : nullptr,
                     MakeReaderOptions(opts));
  const std::vector<AttrId> selected =
      ResolveSelectedAttrs(schema, opts.selected_attrs);
  const QueryDistanceTable qtable(space, schema, query, selected,
                                  opts.overlay);
  PruneContext ctx(space, schema, query, selected, &qtable);
  ReverseSkylineResult result;
  QueryStats& stats = result.stats;

  // ---- Phase 1: intra-batch pruning, spill survivors. ----
  Timer phase1_timer;
  FileId scratch = disk->CreateFile("rs-scratch");
  RowWriter writer(disk, scratch, schema, opts.resilience.checksum_pages);
  const uint64_t total_pages = data.num_pages();
  for (PageId start = 0; start < total_pages; start += opts.memory.pages) {
    ++stats.phase1_batches;
    const PageId end =
        std::min<PageId>(start + opts.memory.pages, total_pages);
    RowBatch batch(m, numerics);
    for (PageId p = start; p < end; ++p) {
      NMRS_RETURN_IF_ERROR(data.ReadPageVia(&reader, p, &batch));
    }
    NMRS_RETURN_IF_ERROR(Phase1Batch(batch, space, schema, query, opts, ctx,
                                     qtable, order, &stats, &writer));
    // Results are written out at the end of every batch (paper §4.1) —
    // this is what makes the per-batch random IO visible.
    NMRS_RETURN_IF_ERROR(writer.FlushPartial());
  }
  NMRS_RETURN_IF_ERROR(writer.Finish());
  stats.phase1_survivors = writer.rows_written();
  stats.phase1_checks = stats.checks;
  stats.phase1_millis = phase1_timer.ElapsedMillis();

  // ---- Phase 2: refine survivors against full scans of D. ----
  Timer phase2_timer;
  StoredDataset survivors(disk, scratch, schema, writer.rows_written(),
                          opts.resilience.checksum_pages);
  const uint64_t batch_pages = opts.memory.pages - 1;  // 1 page scans D
  NMRS_RETURN_IF_ERROR(Phase2(data, survivors, &reader, ctx, batch_pages,
                              opts, &stats, &result.rows));
  stats.phase2_checks = stats.checks - stats.phase1_checks;
  stats.phase2_millis = phase2_timer.ElapsedMillis();

  NMRS_RETURN_IF_ERROR(disk->DeleteFile(scratch));

  std::sort(result.rows.begin(), result.rows.end());
  stats.result_size = result.rows.size();
  stats.io = disk->stats() - io_before;
  reader.FoldStatsInto(&stats.io);
  stats.modeled_backoff_millis = reader.modeled_backoff_millis();
  stats.compute_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace

StatusOr<ReverseSkylineResult> BlockReverseSkyline(
    const StoredDataset& data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts) {
  return RunBlockAlgorithm(data, space, query, opts, SearchOrder::kForward);
}

StatusOr<ReverseSkylineResult> SortReverseSkyline(
    const StoredDataset& sorted_data, const SimilaritySpace& space,
    const Object& query, const RSOptions& opts) {
  return RunBlockAlgorithm(sorted_data, space, query, opts,
                           SearchOrder::kRing);
}

StatusOr<std::vector<ReverseSkylineResult>> SharedScanReverseSkylines(
    const StoredDataset& data, const SimilaritySpace& space,
    const std::vector<Object>& queries, const RSOptions& opts,
    bool ring_order, SharedScanStats* shared) {
  SimulatedDisk* disk = data.disk();
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  if (opts.memory.pages < 2) {
    return Status::InvalidArgument(
        "block algorithms need a memory budget of at least 2 pages");
  }
  SharedScanStats discard;
  if (shared == nullptr) shared = &discard;
  std::vector<ReverseSkylineResult> results(queries.size());
  if (queries.empty()) return results;

  const SearchOrder order =
      ring_order ? SearchOrder::kRing : SearchOrder::kForward;
  const KernelPolicy policy = Phase1Policy(opts, order);
  const size_t nq = queries.size();

  disk->InvalidateArmPosition();
  const std::vector<AttrId> selected =
      ResolveSelectedAttrs(schema, opts.selected_attrs);

  // Per-query derived state. Every query evaluates the same candidates in
  // the same order as its single-query run; only the loop nesting changes
  // (candidate-major instead of query-major), which the bit-identity
  // contract survives because the per-(query, candidate) work is
  // independent.
  struct QueryRun {
    std::unique_ptr<QueryDistanceTable> qtable;
    std::unique_ptr<PruneContext> ctx;
    std::unique_ptr<DominanceKernel> kernel;  // rebuilt per loaded batch
    FileId scratch = 0;
    std::unique_ptr<RowWriter> writer;
  };
  std::vector<QueryRun> runs(nq);
  for (size_t q = 0; q < nq; ++q) {
    runs[q].qtable = std::make_unique<QueryDistanceTable>(
        space, schema, queries[q], selected, opts.overlay);
    runs[q].ctx = std::make_unique<PruneContext>(space, schema, queries[q],
                                                 selected, runs[q].qtable.get());
    runs[q].scratch = disk->CreateFile("rs-shared-scratch");
    runs[q].writer = std::make_unique<RowWriter>(
        disk, runs[q].scratch, schema, opts.resilience.checksum_pages);
  }

  // ---- Phase 1: one scan of D feeds every query's intra-batch pruning ----
  Timer shared_timer;
  PagedReader shared_reader(disk, opts.cache_pages ? opts.buffer_pool : nullptr,
                            MakeReaderOptions(opts));
  const IoStats phase1_before = disk->stats();
  IoStats spill_io;  // per-query scratch writes inside the phase-1 window
  SharedCandidateCache cache;
  const uint64_t total_pages = data.num_pages();
  std::vector<uint8_t> pruned;
  for (PageId start = 0; start < total_pages; start += opts.memory.pages) {
    const PageId end =
        std::min<PageId>(start + opts.memory.pages, total_pages);
    RowBatch batch(m, numerics);
    for (PageId p = start; p < end; ++p) {
      NMRS_RETURN_IF_ERROR(data.ReadPageVia(&shared_reader, p, &batch));
    }
    const size_t n = batch.size();
    ColumnarBatch cols;
    if (opts.use_kernels) {
      cols.Build(batch);
      cache.Attach(*runs[0].ctx, cols);
      for (QueryRun& r : runs) {
        r.kernel =
            std::make_unique<DominanceKernel>(*r.ctx, cols, policy, &cache);
      }
    }
    pruned.assign(nq * n, 0);
    for (size_t i = 0; i < n; ++i) {
      // Candidate-major: fix candidate X on every query's context, gather
      // its attribute blocks once (the shared cache), then run each
      // query's compare-only pruner search.
      for (QueryRun& r : runs) {
        r.ctx->SetCandidate(batch.row_values(i), batch.row_numerics(i));
      }
      if (opts.use_kernels) cache.SetCandidate(*runs[0].ctx);
      const RowId x_id = batch.id(i);
      for (size_t q = 0; q < nq; ++q) {
        QueryRun& r = runs[q];
        QueryStats& st = results[q].stats;
        bool found = false;
        if (opts.use_kernels) {
          r.kernel->BeginCandidate();
          found = order == SearchOrder::kForward
                      ? r.kernel->FindPrunerForward(0, n, x_id,
                                                    &st.pair_tests, &st.checks)
                      : r.kernel->FindPrunerRing(i, x_id, &st.pair_tests,
                                                 &st.checks);
        } else {
          // Exact replica of Phase1CheckRange's per-candidate scan.
          auto try_pruner = [&](size_t j) {
            if (batch.id(j) == x_id) return false;
            ++st.pair_tests;
            return r.ctx->Prunes(batch.row_values(j), batch.row_numerics(j),
                                 &st.checks);
          };
          if (order == SearchOrder::kForward) {
            for (size_t j = 0; j < n && !found; ++j) {
              if (j == i) continue;
              found = try_pruner(j);
            }
          } else {
            for (size_t off = 1; off < n && !found; ++off) {
              if (off <= i) found = try_pruner(i - off);
              if (!found && i + off < n) found = try_pruner(i + off);
            }
          }
        }
        pruned[q * n + i] = found ? 1 : 0;
      }
    }
    // Per-query survivor spills, in scan order, with the writes charged to
    // the query (same FlushPartial cadence as the single-query path).
    for (size_t q = 0; q < nq; ++q) {
      QueryRun& r = runs[q];
      QueryStats& st = results[q].stats;
      ++st.phase1_batches;
      if (opts.use_kernels) {
        st.kernel_checks += r.kernel->kernel_checks();
        st.kernel_promotions += r.kernel->promotions();
        st.kernel_scalar_rows += r.kernel->scalar_rows();
        st.kernel_block_rows += r.kernel->block_rows();
      }
      const IoStats spill_before = disk->stats();
      for (size_t i = 0; i < n; ++i) {
        if (!pruned[q * n + i]) {
          NMRS_RETURN_IF_ERROR(r.writer->Add(batch.id(i), batch.row_values(i),
                                             batch.row_numerics(i)));
        }
      }
      NMRS_RETURN_IF_ERROR(r.writer->FlushPartial());
      const IoStats delta = disk->stats() - spill_before;
      st.io += delta;
      spill_io += delta;
    }
    if (opts.use_kernels) {
      shared->shared_gather_blocks += cache.blocks_filled();
    }
    ++shared->shared_batches;
  }
  for (size_t q = 0; q < nq; ++q) {
    QueryRun& r = runs[q];
    QueryStats& st = results[q].stats;
    const IoStats finish_before = disk->stats();
    NMRS_RETURN_IF_ERROR(r.writer->Finish());
    const IoStats delta = disk->stats() - finish_before;
    st.io += delta;
    spill_io += delta;
    st.phase1_survivors = r.writer->rows_written();
    st.phase1_checks = st.checks;
  }
  shared->shared_io += (disk->stats() - phase1_before) - spill_io;
  shared_reader.FoldStatsInto(&shared->shared_io);
  shared->modeled_backoff_millis += shared_reader.modeled_backoff_millis();
  shared->shared_millis += shared_timer.ElapsedMillis();

  // ---- Phase 2: per query, reusing the single-query refinement ----
  const uint64_t batch_pages = opts.memory.pages - 1;
  for (size_t q = 0; q < nq; ++q) {
    QueryRun& r = runs[q];
    QueryStats& st = results[q].stats;
    Timer phase2_timer;
    disk->InvalidateArmPosition();
    const IoStats phase2_before = disk->stats();
    PagedReader reader(disk, opts.cache_pages ? opts.buffer_pool : nullptr,
                       MakeReaderOptions(opts));
    StoredDataset survivors(disk, r.scratch, schema, r.writer->rows_written(),
                            opts.resilience.checksum_pages);
    NMRS_RETURN_IF_ERROR(Phase2(data, survivors, &reader, *r.ctx, batch_pages,
                                opts, &st, &results[q].rows));
    NMRS_RETURN_IF_ERROR(disk->DeleteFile(r.scratch));
    st.phase2_checks = st.checks - st.phase1_checks;
    st.phase2_millis = phase2_timer.ElapsedMillis();
    st.io += disk->stats() - phase2_before;
    reader.FoldStatsInto(&st.io);
    st.modeled_backoff_millis = reader.modeled_backoff_millis();
    std::sort(results[q].rows.begin(), results[q].rows.end());
    st.result_size = results[q].rows.size();
    // The shared pass isn't attributable per query: phase1_millis stays 0
    // and compute_millis covers this query's own (phase-2) work.
    st.compute_millis = st.phase2_millis;
  }
  return results;
}

}  // namespace nmrs
