#include "core/uncertain.h"

#include "common/check.h"
#include "core/dominance.h"

namespace nmrs {

namespace {

void ValidateExistence(const Dataset& data,
                       const std::vector<double>& existence) {
  NMRS_CHECK_EQ(existence.size(), data.num_rows());
  for (double p : existence) {
    NMRS_CHECK(p >= 0.0 && p <= 1.0) << "existence probability " << p;
  }
}

}  // namespace

double UncertainMembershipProbability(const Dataset& data,
                                      const SimilaritySpace& space,
                                      const Object& query, RowId row,
                                      const std::vector<double>& existence) {
  ValidateExistence(data, existence);
  PruneContext ctx(space, data.schema(), query, {});
  ctx.SetCandidate(data.RowValues(row), data.RowNumerics(row));
  double prob = existence[row];
  uint64_t checks = 0;
  for (RowId y = 0; y < data.num_rows() && prob > 0.0; ++y) {
    if (y == row) continue;
    if (ctx.Prunes(data.RowValues(y), data.RowNumerics(y), &checks)) {
      prob *= 1.0 - existence[y];
    }
  }
  return prob;
}

UncertainRsResult UncertainReverseSkyline(const Dataset& data,
                                          const SimilaritySpace& space,
                                          const Object& query,
                                          const std::vector<double>& existence,
                                          double threshold) {
  ValidateExistence(data, existence);
  NMRS_CHECK(threshold > 0.0 && threshold <= 1.0)
      << "threshold must be in (0, 1]";

  UncertainRsResult result;
  PruneContext ctx(space, data.schema(), query, {});
  for (RowId x = 0; x < data.num_rows(); ++x) {
    if (existence[x] < threshold) {
      // Even with no pruners the membership probability cannot reach τ.
      ++result.pruner_scans_cut_short;
      continue;
    }
    ctx.SetCandidate(data.RowValues(x), data.RowNumerics(x));
    double prob = existence[x];
    bool cut = false;
    for (RowId y = 0; y < data.num_rows(); ++y) {
      if (y == x) continue;
      if (ctx.Prunes(data.RowValues(y), data.RowNumerics(y),
                     &result.checks)) {
        prob *= 1.0 - existence[y];
        if (prob < threshold) {  // monotone: no recovery possible
          cut = true;
          ++result.pruner_scans_cut_short;
          break;
        }
      }
    }
    if (!cut && prob >= threshold) {
      result.rows.push_back(x);
      result.probabilities.push_back(prob);
    }
  }
  return result;
}

}  // namespace nmrs
