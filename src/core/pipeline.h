#ifndef NMRS_CORE_PIPELINE_H_
#define NMRS_CORE_PIPELINE_H_

#include <string>
#include <string_view>

#include "common/statusor.h"
#include "core/query.h"
#include "data/dataset.h"
#include "data/stored_dataset.h"
#include "sim/similarity_space.h"
#include "storage/disk.h"

namespace nmrs {

/// The reverse-skyline algorithms of the paper, plus the tile-ordered
/// variants of §5.6 (same query-time code as SRS/TRS, different
/// pre-processing data order).
enum class Algorithm {
  kNaive,    // Alg. 1
  kBRS,      // Alg. 2, unordered data
  kSRS,      // §4.2, multi-attribute sorted data
  kTRS,      // §4.3, multi-attribute sorted data + AL-Tree batches
  kTileSRS,  // §5.6, Z-order tiled data, SRS query processing
  kTileTRS,  // §5.6, Z-order tiled data, TRS query processing
};

std::string_view AlgorithmName(Algorithm a);

/// Pre-processing knobs (all query-independent, one-time work).
struct PrepareOptions {
  /// Attribute ordering for the sort / tree (empty = ascending cardinality).
  std::vector<AttrId> attr_order;
  /// Tiles per dimension for the Z-order variants.
  size_t tiles_per_dim = 4;
  /// Seal every dataset page with a CRC-32C footer (docs/ROBUSTNESS.md).
  /// Queries over such a dataset may set RSOptions::checksum_pages to
  /// verify integrity on every read. Changes rows_per_page, so IO counts
  /// differ from the unsealed layout — strictly opt-in.
  bool checksum_pages = false;
};

/// A dataset materialized on disk in the order the chosen algorithm
/// expects, plus the bookkeeping to interpret results.
struct PreparedDataset {
  StoredDataset stored;
  std::vector<AttrId> attr_order;  // resolved ordering used (if any)
  double prepare_millis = 0;       // in-memory ordering + serialization time
};

/// Orders (if required by `algo`) and serializes `data` onto `disk`. The
/// ordering permutation is computed in memory — use
/// ExternalMultiAttributeSort (order/multi_sort.h) to model the disk-based
/// pre-processing cost itself (§5.5).
StatusOr<PreparedDataset> PrepareDataset(SimulatedDisk* disk,
                                         const Dataset& data, Algorithm algo,
                                         const PrepareOptions& opts = {},
                                         const std::string& name = "dataset");

/// Runs `algo` over a prepared dataset. `opts.attr_order` is defaulted to
/// the prepared ordering for TRS variants.
StatusOr<ReverseSkylineResult> RunReverseSkyline(
    const PreparedDataset& prepared, const SimilaritySpace& space,
    const Object& query, Algorithm algo, RSOptions opts = {});

}  // namespace nmrs

#endif  // NMRS_CORE_PIPELINE_H_
