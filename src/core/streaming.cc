#include "core/streaming.h"

#include <algorithm>

#include "common/check.h"

namespace nmrs {

StreamingReverseSkyline::StreamingReverseSkyline(
    const SimilaritySpace& space, const Schema& schema, Object query,
    size_t window_capacity)
    : space_(&space),
      schema_(&schema),
      query_(std::move(query)),
      capacity_(window_capacity) {
  NMRS_CHECK_GE(capacity_, 1u);
  NMRS_CHECK_EQ(query_.values.size(), schema.num_attributes());
}

bool StreamingReverseSkyline::Prunes(const Object& pruner,
                                     const Object& candidate) {
  bool strict = false;
  const size_t m = schema_->num_attributes();
  for (AttrId a = 0; a < m; ++a) {
    double lhs, rhs;
    if (schema_->attribute(a).is_numeric) {
      lhs = space_->NumDist(a, pruner.numerics[a], candidate.numerics[a]);
      rhs = space_->NumDist(a, query_.numerics[a], candidate.numerics[a]);
    } else {
      lhs = space_->CatDist(a, pruner.values[a], candidate.values[a]);
      rhs = space_->CatDist(a, query_.values[a], candidate.values[a]);
    }
    ++checks_;
    if (lhs > rhs) return false;
    if (lhs < rhs) strict = true;
  }
  return strict;
}

void StreamingReverseSkyline::Reverify(Entry& entry) {
  // Scan newest-first so the remembered pruner expires as late as
  // possible, minimizing future re-verifications.
  entry.in_rs = true;
  entry.pruner = kNoPruner;
  for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
    if (it->id == entry.id) continue;
    if (Prunes(it->object, entry.object)) {
      entry.in_rs = false;
      entry.pruner = it->id;
      return;
    }
  }
}

void StreamingReverseSkyline::Push(RowId id, const Object& object) {
  NMRS_CHECK_EQ(object.values.size(), schema_->num_attributes());

  // --- Expiry. ---
  if (window_.size() == capacity_) {
    const RowId expired = window_.front().id;
    window_.pop_front();
    // Objects that depended on the expired pruner must be re-verified.
    for (Entry& entry : window_) {
      if (entry.pruner == expired) Reverify(entry);
    }
  }

  // --- Arrival: does the new object survive, and whom does it prune? ---
  Entry entry{id, object, /*in_rs=*/true, kNoPruner};
  for (Entry& other : window_) {
    if (entry.in_rs && Prunes(other.object, entry.object)) {
      entry.in_rs = false;
      entry.pruner = other.id;  // overwritten below by a newer pruner if any
    }
  }
  // Prefer the newest pruner (scan once more from the back only if pruned;
  // cheap relative to the full scan above and keeps dependencies fresh).
  if (!entry.in_rs) {
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
      if (Prunes(it->object, entry.object)) {
        entry.pruner = it->id;
        break;
      }
    }
  }
  for (Entry& other : window_) {
    if (Prunes(entry.object, other.object)) {
      other.in_rs = false;
      other.pruner = entry.id;
    }
  }
  window_.push_back(std::move(entry));
}

std::vector<RowId> StreamingReverseSkyline::CurrentRs() const {
  std::vector<RowId> out;
  for (const Entry& entry : window_) {
    if (entry.in_rs) out.push_back(entry.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RowId> StreamingReverseSkyline::WindowIds() const {
  std::vector<RowId> out;
  out.reserve(window_.size());
  for (const Entry& entry : window_) out.push_back(entry.id);
  return out;
}

}  // namespace nmrs
