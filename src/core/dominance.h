#ifndef NMRS_CORE_DOMINANCE_H_
#define NMRS_CORE_DOMINANCE_H_

#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "data/object.h"
#include "data/schema.h"
#include "sim/similarity_space.h"

namespace nmrs {

class MatrixOverlay;
class QueryDistanceTable;

/// Resolves an attribute-subset selection: returns `selected` unchanged if
/// non-empty (validated against the schema), otherwise all attributes.
std::vector<AttrId> ResolveSelectedAttrs(const Schema& schema,
                                         const std::vector<AttrId>& selected);

/// Evaluates the pruning condition of Definition 1: Y prunes candidate X
/// (w.r.t. query Q) iff
///     forall i: d_i(y_i, x_i) <= d_i(q_i, x_i)   and
///     exists i: d_i(y_i, x_i) <  d_i(q_i, x_i),
/// restricted to the selected attributes. The candidate X is set once and
/// its query-side distances d_i(q_i, x_i) are cached; each Prunes() call
/// early-aborts on the first violated attribute and reports how many
/// attribute-level checks it performed.
///
/// Numeric attributes are compared on exact values (buckets are a TRS-tree
/// concern only).
class PruneContext {
 public:
  /// When `table` is non-null it must have been built from the same (space,
  /// query) with the same resolved selection; the context then serves both
  /// sides of every check from flat per-query arrays — qdist_ from the
  /// table's FromQuery row, the left-hand side from a cached ColumnTo
  /// pointer — instead of going through SimilaritySpace::CatDist twice.
  /// Results are bit-identical either way (the table holds copies of the
  /// very same doubles); only the lookup path changes. The table is
  /// borrowed and must outlive the context.
  ///
  /// When the table carries a MatrixOverlay (docs/OVERLAYS.md) the context
  /// evaluates the *overlaid* space: qdist_ comes pre-patched from the
  /// table, and SetCandidate serves the candidate column d_a(., x_a) from a
  /// per-context scratch copy with the touched entries applied — but only
  /// when the overlay actually touches that column. Untouched columns (and
  /// every column of an untouched attribute) alias the shared base matrix
  /// with zero copies, so the SIMD dominance kernels gather from
  /// CandidateColumn() unchanged. Overlays require the table: a plain
  /// context always evaluates the base space.
  PruneContext(const SimilaritySpace& space, const Schema& schema,
               const Object& query, const std::vector<AttrId>& selected,
               const QueryDistanceTable* table = nullptr);

  size_t num_selected() const { return selected_.size(); }
  const std::vector<AttrId>& selected() const { return selected_; }
  const Object& query() const { return query_; }

  /// Fixes the candidate X = (values, numerics); `numerics` may be null for
  /// all-categorical schemas.
  void SetCandidate(const ValueId* x_values, const double* x_numerics);

  /// d_{selected_[k]}(q, x) for the current candidate.
  double QueryDist(size_t k) const { return qdist_[k]; }

  /// True when the query has distance 0 to the candidate on every selected
  /// attribute (then only identity prevents everything from pruning X).
  bool QueryAtCandidate() const;

  /// Whether Y = (values, numerics) prunes the current candidate. Adds the
  /// number of attribute-level comparisons made to *checks.
  bool Prunes(const ValueId* y_values, const double* y_numerics,
              uint64_t* checks) const;

  /// Distance of value `v` (attr selected_[k]) from the candidate's value —
  /// the left-hand side of a pruning check, exposed for tree traversals.
  /// Table-backed contexts read the cached candidate column, so overlay
  /// patches are honored; the doubles are identical to the direct read
  /// whenever no overlay is attached.
  double CandidateDist(size_t k, ValueId v) const {
    if (table_ != nullptr && !is_numeric_[k]) return xcol_[k][v];
    const AttrId a = selected_[k];
    return space_->CatDist(a, v, x_values_[a]);
  }

  const ValueId* candidate_values() const { return x_values_; }
  const double* candidate_numerics() const { return x_numerics_; }

  /// Null unless a QueryDistanceTable was attached at construction.
  const QueryDistanceTable* table() const { return table_; }

  /// Whether selected position k is a numeric attribute.
  bool SelectedIsNumeric(size_t k) const { return is_numeric_[k]; }

  /// Memoized-path candidate column for selected position k: the matrix
  /// column d_a(., x_a) cached by SetCandidate, so CandidateColumn(k)[v] ==
  /// d_a(v, x_a). Requires a table-backed context and a categorical k;
  /// this is the array the block dominance kernel gathers from.
  const double* CandidateColumn(size_t k) const {
    NMRS_DCHECK(table_ != nullptr && !is_numeric_[k]);
    return xcol_[k];
  }

  const SimilaritySpace& space() const { return *space_; }

 private:
  const SimilaritySpace* space_;
  const Schema* schema_;
  Object query_;
  std::vector<AttrId> selected_;
  std::vector<bool> is_numeric_;  // aligned with selected_
  const QueryDistanceTable* table_;
  const MatrixOverlay* overlay_ = nullptr;  // the table's overlay, if any
  const ValueId* x_values_ = nullptr;
  const double* x_numerics_ = nullptr;
  std::vector<double> qdist_;
  // Memoized-path state (table_ != nullptr): per selected categorical k,
  // the matrix column d_a(., x_a) for the current candidate, so Prunes()
  // is one indexed load per attribute.
  std::vector<const double*> xcol_;
  // Overlay scratch: per selected position, a dense copy of the candidate
  // column with the overlay applied, built lazily by SetCandidate for
  // touched columns only, and the value it currently holds (so consecutive
  // candidates sharing a value re-use the patch).
  std::vector<std::vector<double>> patched_cols_;
  std::vector<ValueId> patched_for_;
};

}  // namespace nmrs

#endif  // NMRS_CORE_DOMINANCE_H_
