#ifndef NMRS_CORE_INFLUENCE_H_
#define NMRS_CORE_INFLUENCE_H_

#include <vector>

#include "common/statusor.h"
#include "core/pipeline.h"

namespace nmrs {

/// Influence analysis (the paper's §1 use case): run one reverse-skyline
/// query per subject (admin / car / offer) and rank subjects by influence
/// |RS(Q)| — plus the concentration diagnostics the business-continuity
/// scenario asks for (how much of the total influence the top-k subjects
/// hold).
struct InfluenceReport {
  struct Entry {
    size_t query_index;   // position in the input query vector
    uint64_t influence;   // |RS(Q)|
    QueryStats stats;
  };

  /// Descending by influence; ties by query index.
  std::vector<Entry> ranking;
  uint64_t total_influence = 0;

  /// Fraction of total influence held by the top k subjects (0 when the
  /// total is 0).
  double TopShare(size_t k) const;

  /// Gini coefficient of the influence distribution in [0, 1]
  /// (0 = perfectly even, -> 1 = concentrated on one subject).
  double Gini() const;
};

/// Runs `algo` for every query against the prepared dataset.
StatusOr<InfluenceReport> AnalyzeInfluence(const PreparedDataset& prepared,
                                           const SimilaritySpace& space,
                                           const std::vector<Object>& queries,
                                           Algorithm algo = Algorithm::kTRS,
                                           const RSOptions& opts = {});

/// Multi-threaded variant for large query batches (one query per
/// reverse-skyline run; queries are independent, so this is embarrassingly
/// parallel). Each worker prepares its own copy of the dataset on a
/// private SimulatedDisk — the simulator is deliberately not thread-safe,
/// matching a real system where each worker owns its scan state. Results
/// are identical to the serial variant. `threads` 0 means
/// hardware_concurrency.
StatusOr<InfluenceReport> AnalyzeInfluenceParallel(
    const Dataset& data, const SimilaritySpace& space,
    const std::vector<Object>& queries, Algorithm algo = Algorithm::kTRS,
    const RSOptions& opts = {}, unsigned threads = 0);

}  // namespace nmrs

#endif  // NMRS_CORE_INFLUENCE_H_
