#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace nmrs {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  NMRS_CHECK_GT(bound, 0u);
  // Reject the biased tail of the 64-bit range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  NMRS_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(Next64()); }

}  // namespace nmrs
