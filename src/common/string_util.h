#ifndef NMRS_COMMON_STRING_UTIL_H_
#define NMRS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace nmrs {

/// Splits `s` on `sep`, keeping empty tokens.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Human formatting helpers used by the bench harnesses.
std::string FormatWithCommas(uint64_t v);
std::string FormatDouble(double v, int precision);

}  // namespace nmrs

#endif  // NMRS_COMMON_STRING_UTIL_H_
