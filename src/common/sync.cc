#include "common/sync.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace nmrs {

void ParallelChunks(TaskExecutor* exec, int num_threads, size_t num_chunks,
                    const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) return;
  if (num_threads <= 1 || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }

  const size_t helpers =
      std::min<size_t>(static_cast<size_t>(num_threads) - 1, num_chunks - 1);

  if (exec != nullptr) {
    // Completion is tracked per *chunk*, never per helper task: when every
    // executor thread is itself blocked inside ParallelChunks (e.g. a batch
    // of queries each using intra-query chunking on the same pool), the
    // scheduled helpers may never get a thread, so waiting for them would
    // deadlock. The caller drains chunks itself and only waits for chunks
    // already claimed by someone. State is heap-allocated so a helper that
    // starts after the call has returned finds no chunks left and exits
    // without touching `fn` (the `fn` pointer is only dereferenced while a
    // chunk remains, which pins the caller in its wait below).
    struct State {
      State(const std::function<void(size_t)>* f, size_t n)
          : fn(f), num_chunks(n) {}
      const std::function<void(size_t)>* fn;
      const size_t num_chunks;
      std::atomic<size_t> next{0};
      std::mutex mu;
      std::condition_variable cv;
      size_t done = 0;
    };
    auto state = std::make_shared<State>(&fn, num_chunks);
    auto drain = [](const std::shared_ptr<State>& s) {
      for (size_t c = s->next.fetch_add(1, std::memory_order_relaxed);
           c < s->num_chunks;
           c = s->next.fetch_add(1, std::memory_order_relaxed)) {
        (*s->fn)(c);
        std::lock_guard<std::mutex> lock(s->mu);
        if (++s->done == s->num_chunks) s->cv.notify_all();
      }
    };
    for (size_t h = 0; h < helpers; ++h) {
      exec->Schedule([state, drain] { drain(state); });
    }
    drain(state);
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock,
                   [&state] { return state->done == state->num_chunks; });
    return;
  }

  std::atomic<size_t> next{0};
  auto drain = [&next, &fn, num_chunks] {
    for (size_t c = next.fetch_add(1, std::memory_order_relaxed);
         c < num_chunks; c = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(c);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(helpers);
  for (size_t h = 0; h < helpers; ++h) threads.emplace_back(drain);
  drain();
  for (std::thread& t : threads) t.join();
}

}  // namespace nmrs
