#ifndef NMRS_COMMON_CHECK_H_
#define NMRS_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace nmrs {
namespace internal_check {

// Accumulates the failure message and aborts the process when destroyed.
// Used only via the NMRS_CHECK* macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "NMRS_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when the check passes.
struct Voidify {
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal_check
}  // namespace nmrs

/// Aborts with a diagnostic when `cond` is false. Always on (release too):
/// these guard invariants whose violation would corrupt query results.
#define NMRS_CHECK(cond)                       \
  (cond) ? (void)0                             \
         : ::nmrs::internal_check::Voidify() & \
               ::nmrs::internal_check::CheckFailureStream(#cond, __FILE__, __LINE__)

#define NMRS_CHECK_EQ(a, b) NMRS_CHECK((a) == (b))
#define NMRS_CHECK_NE(a, b) NMRS_CHECK((a) != (b))
#define NMRS_CHECK_LT(a, b) NMRS_CHECK((a) < (b))
#define NMRS_CHECK_LE(a, b) NMRS_CHECK((a) <= (b))
#define NMRS_CHECK_GT(a, b) NMRS_CHECK((a) > (b))
#define NMRS_CHECK_GE(a, b) NMRS_CHECK((a) >= (b))

#ifndef NDEBUG
#define NMRS_DCHECK(cond) NMRS_CHECK(cond)
#else
#define NMRS_DCHECK(cond) \
  while (false) NMRS_CHECK(cond)
#endif

#endif  // NMRS_COMMON_CHECK_H_
