#ifndef NMRS_COMMON_SYNC_H_
#define NMRS_COMMON_SYNC_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

namespace nmrs {

/// Minimal asynchronous-execution interface. It lives in common/ so that
/// core/ algorithms can borrow threads from an executor (the work-stealing
/// pool in exec/) without depending on the exec/ library — the dependency
/// arrow stays exec -> core -> common.
class TaskExecutor {
 public:
  virtual ~TaskExecutor() = default;

  /// Schedules `fn` to run asynchronously, possibly concurrently with the
  /// caller. Every scheduled task is eventually run exactly once.
  virtual void Schedule(std::function<void()> fn) = 0;
};

/// Counts outstanding work items: Add() before handing work out, Done() when
/// an item finishes, Wait() blocks until the count returns to zero.
class WaitGroup {
 public:
  void Add(int n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

/// Runs fn(chunk) for every chunk in [0, num_chunks), using up to
/// `num_threads` threads *including the calling thread*. Helper threads are
/// scheduled on `exec` when non-null and are otherwise spawned as temporary
/// std::threads. Chunks are claimed from a shared atomic counter and the
/// wait is on chunk completions, not on helper tasks, so the call is
/// deadlock-free even when issued from inside a pool worker whose siblings
/// are all equally blocked: the caller drains chunks itself and helpers
/// that never get a thread are simply not waited for. Returns once every
/// chunk has finished.
void ParallelChunks(TaskExecutor* exec, int num_threads, size_t num_chunks,
                    const std::function<void(size_t)>& fn);

/// Splits [0, n) into `chunks` half-open ranges of near-equal size;
/// chunk c is [ChunkBegin(n, chunks, c), ChunkBegin(n, chunks, c + 1)).
inline size_t ChunkBegin(size_t n, size_t chunks, size_t c) {
  return n * c / chunks;
}

}  // namespace nmrs

#endif  // NMRS_COMMON_SYNC_H_
