#include "common/crc32c.h"

namespace nmrs {

namespace {

// Slicing tables: t[0] is the classic byte-at-a-time table for the
// reflected polynomial, t[s][b] advances byte b through s extra zero bytes.
struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

const Crc32cTables kTables;

inline uint32_t Load32(const uint8_t* p) {
  // Byte-wise assembly keeps the result endian-independent.
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t Load64(const uint8_t* p) {
  return static_cast<uint64_t>(Load32(p)) |
         (static_cast<uint64_t>(Load32(p + 4)) << 32);
}

// NMRS_NO_SIMD (CMake option, exercised by ci.sh) disables every
// ISA-specific path in the tree — this one and the AVX2 dominance kernels
// — so the portable software implementations stay continuously tested.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(NMRS_NO_SIMD)
#define NMRS_CRC32C_HW 1

// Hardware path: SSE4.2 crc32 over 8-byte lanes (~10x the sliced tables —
// checksummed page reads must stay near-free on the scan hot path). The
// target attribute scopes the ISA to this function; callers pick it only
// after a runtime cpuid check.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(const void* data,
                                                          size_t n,
                                                          uint32_t init) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t crc = init ^ 0xFFFFFFFFu;
  while (n >= 8) {
    crc = __builtin_ia32_crc32di(crc, Load64(p));
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = __builtin_ia32_crc32qi(static_cast<uint32_t>(crc), *p++);
  }
  return static_cast<uint32_t>(crc) ^ 0xFFFFFFFFu;
}

bool DetectCrc32cHardware() { return __builtin_cpu_supports("sse4.2"); }
#endif  // __x86_64__ && __GNUC__

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t init) {
#ifdef NMRS_CRC32C_HW
  static const bool kHardware = DetectCrc32cHardware();
  if (kHardware) return Crc32cHardware(data, n, init);
#endif
  const auto (&t)[8][256] = kTables.t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = init ^ 0xFFFFFFFFu;
  while (n >= 8) {
    const uint32_t lo = crc ^ Load32(p);
    const uint32_t hi = Load32(p + 4);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace nmrs
