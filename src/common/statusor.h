#ifndef NMRS_COMMON_STATUSOR_H_
#define NMRS_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace nmrs {

/// StatusOr<T> holds either a value of type T or a non-OK Status explaining
/// why the value is absent. Accessing the value of an errored StatusOr aborts
/// the process (programming error), so callers must test ok() first or use
/// NMRS_ASSIGN_OR_RETURN.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Aborts if `status` is OK (an OK
  /// StatusOr must carry a value).
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    NMRS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    NMRS_CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    NMRS_CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    NMRS_CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// NMRS_ASSIGN_OR_RETURN(lhs, expr): evaluates expr (a StatusOr<T>); on error
/// returns the status from the enclosing function, otherwise moves the value
/// into lhs.
#define NMRS_ASSIGN_OR_RETURN(lhs, expr)            \
  NMRS_ASSIGN_OR_RETURN_IMPL_(                      \
      NMRS_STATUS_MACRO_CONCAT_(_nmrs_sor, __LINE__), lhs, expr)

#define NMRS_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define NMRS_STATUS_MACRO_CONCAT_(x, y) NMRS_STATUS_MACRO_CONCAT_INNER_(x, y)

#define NMRS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

}  // namespace nmrs

#endif  // NMRS_COMMON_STATUSOR_H_
