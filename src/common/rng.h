#ifndef NMRS_COMMON_RNG_H_
#define NMRS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nmrs {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
/// All data generation in the library flows through this type so that every
/// experiment is reproducible from a single seed. Satisfies the C++
/// UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64 (never all-zero).
  explicit Rng(uint64_t seed = 42);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64 random bits.
  uint64_t operator()() { return Next64(); }
  uint64_t Next64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Unbiased
  /// (rejection of the biased tail).
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A new Rng whose seed is derived from this one; lets one master seed
  /// drive many independent streams.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace nmrs

#endif  // NMRS_COMMON_RNG_H_
