#ifndef NMRS_COMMON_CRC32C_H_
#define NMRS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace nmrs {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum used by iSCSI, ext4 and most storage engines for page
/// integrity. Software slicing-by-8 implementation (~1 B/cycle), fast
/// enough that sealing/verifying a 32 KiB page is a small fraction of the
/// page's decode cost (bench_faults measures the end-to-end overhead).
///
/// Properties relied on by Page::Seal / Page::Verify:
///  - Crc32c("123456789") == 0xE3069283 (the standard check value).
///  - Deterministic across platforms (no hardware instruction variants).

/// CRC of `data[0, n)`. `init` chains partial computations:
/// Crc32c(ab) == Crc32c(b, Crc32c(a)).
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

}  // namespace nmrs

#endif  // NMRS_COMMON_CRC32C_H_
