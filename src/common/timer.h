#ifndef NMRS_COMMON_TIMER_H_
#define NMRS_COMMON_TIMER_H_

#include <chrono>

namespace nmrs {

/// Simple monotonic stopwatch. Construction starts it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nmrs

#endif  // NMRS_COMMON_TIMER_H_
