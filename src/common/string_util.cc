#include "common/string_util.h"

#include <cstdint>
#include <cstdio>

namespace nmrs {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatWithCommas(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace nmrs
