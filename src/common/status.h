#ifndef NMRS_COMMON_STATUS_H_
#define NMRS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace nmrs {

// Machine-readable category of a failure. Mirrors the usual database-engine
// status taxonomy (RocksDB/Arrow style) so callers can branch on kind without
// string matching.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kCorruption,
  kUnimplemented,
  kInternal,
  /// A transient failure (e.g. a simulated flaky page read) that is
  /// expected to succeed when retried. PagedReader retries these under its
  /// RetryPolicy; one that persists past the retry budget is reported as
  /// kDataLoss.
  kUnavailable,
  /// Data is permanently unreadable: a permanently bad page, or a
  /// transient fault that survived every retry attempt. Unlike
  /// kCorruption (bytes read but failed integrity verification), the bytes
  /// could not be read at all.
  kDataLoss,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Status is the error-handling currency of the library: every fallible
/// operation returns a Status (or StatusOr<T>). The OK status is cheap to
/// copy; error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }

  /// True for the fault-family codes a storage failure can surface as:
  /// kUnavailable (transient), kDataLoss (permanent), kCorruption
  /// (integrity). Callers isolating per-query storage faults (the batch
  /// engine, the CLI) branch on this instead of enumerating codes.
  bool IsStorageFault() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDataLoss ||
           code_ == StatusCode::kCorruption;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK status to the caller.
#define NMRS_RETURN_IF_ERROR(expr)               \
  do {                                           \
    ::nmrs::Status _nmrs_status = (expr);        \
    if (!_nmrs_status.ok()) return _nmrs_status; \
  } while (false)

}  // namespace nmrs

#endif  // NMRS_COMMON_STATUS_H_
