#ifndef NMRS_COMMON_TYPES_H_
#define NMRS_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace nmrs {

/// Index of a categorical value within its attribute's domain [0, card).
using ValueId = uint32_t;

/// Index of an attribute within a schema.
using AttrId = uint32_t;

/// Index of an object (row) within a dataset.
using RowId = uint64_t;

inline constexpr ValueId kInvalidValueId =
    std::numeric_limits<ValueId>::max();
inline constexpr RowId kInvalidRowId = std::numeric_limits<RowId>::max();

}  // namespace nmrs

#endif  // NMRS_COMMON_TYPES_H_
