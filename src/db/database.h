#ifndef NMRS_DB_DATABASE_H_
#define NMRS_DB_DATABASE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "data/delta_segment.h"
#include "exec/engine_options.h"
#include "exec/query_engine.h"
#include "exec/sharded_engine.h"
#include "shard/shard_plan.h"
#include "sim/similarity_space.h"
#include "storage/wal.h"

namespace nmrs {

class Database;

/// Everything that shapes a Database: the algorithm and its preparation
/// knobs, the full executor vocabulary (workers, caches, faults, replicas,
/// shared scans, overlays, network model), and the sharding layout. One
/// struct instead of the historical loose QueryEngine / ShardedQueryEngine
/// / overlay wiring — the front door threads it through every snapshot's
/// engine unchanged.
struct DatabaseOptions {
  Algorithm algo = Algorithm::kBRS;

  /// Dataset preparation (attr order, tiles, CRC32C page seals). The
  /// resolved attr_order of the first generation is pinned and reused by
  /// every later generation so incremental merges and full re-preparations
  /// agree byte for byte.
  PrepareOptions prepare;

  /// Executor options applied to every snapshot's engine (single-shard or
  /// sharded; `engine.net` feeds the sharded pruner exchange).
  EngineOptions engine;

  /// > 1 routes batches through ShardedQueryEngine over a per-snapshot
  /// Partition; 1 = single-shard QueryEngine.
  int num_shards = 1;

  /// Partitioning layout when num_shards > 1 (its own num_shards field is
  /// overridden by the one above).
  ShardPlanOptions shard_plan;

  /// Mutations (inserts + deletes) the delta may hold before Insert /
  /// Delete return kResourceExhausted — the back-pressure signal that
  /// compaction is overdue.
  uint64_t max_delta_mutations = 1 << 22;

  /// Prefix of generation / WAL file names.
  std::string name = "db";
};

/// Cumulative database-level telemetry (mutation counts, WAL volume,
/// snapshot materialization cost, compactions).
struct DbStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t wal_records = 0;
  uint64_t snapshots_built = 0;   // materialized base+delta merges
  uint64_t snapshots_reused = 0;  // served from the epoch cache / base gen
  uint64_t compactions = 0;
  /// IO of snapshot/compaction materializations: the new generation's
  /// writes (base reads are served zero-copy off the frozen generation).
  IoStats snapshot_build_io;
  double snapshot_build_millis = 0;
};

namespace db_internal {

/// Where a live key currently resides.
struct Location {
  bool in_delta = false;
  uint64_t index = 0;  // generation RowId, or delta insert rank
};

/// One immutable materialized state: a private disk holding the merged
/// dataset (and shard files), the engine built over it, and the RowId ->
/// stable-key translation. Shared by Snapshot handles; a base generation
/// is exactly one of these with an empty folded-in delta.
struct SnapshotState {
  uint64_t generation = 0;  // generation counter of the underlying base
  DeltaVersion version;     // delta prefix folded into this state

  std::shared_ptr<SimulatedDisk> disk;
  std::unique_ptr<PreparedDataset> prepared;  // stable address for engines
  std::vector<uint64_t> keys;                 // keys[RowId] -> stable key
  std::unordered_map<uint64_t, RowId> key_to_row;

  std::unique_ptr<ShardedDataset> sharded;              // num_shards > 1
  std::unique_ptr<QueryEngine> engine;                  // num_shards == 1
  std::unique_ptr<ShardedQueryEngine> sharded_engine;   // num_shards > 1

  IoStats build_io;
  double build_millis = 0;

  /// Serializes batch runs on this state's engine (engines own per-worker
  /// views and are not reentrant). Readers on different snapshots never
  /// contend.
  mutable std::mutex run_mu;
};

}  // namespace db_internal

/// Outcome of one query through the Database front door.
struct DbQueryResult {
  /// Rows are RowIds of the snapshot the query ran on (= merged-dataset
  /// indices, bit-identical to re-preparing base+delta from scratch).
  ReverseSkylineResult result;
  /// result.rows translated to stable keys (key i of the initial dataset
  /// is i; inserted rows carry the key Insert returned).
  std::vector<uint64_t> keys;
  uint64_t snapshot_generation = 0;
  DeltaVersion snapshot_version;
};

/// Outcome of one batch through the front door. Exactly one of `plain` /
/// `sharded` is set (by DatabaseOptions::num_shards); the underlying
/// engine result is kept whole so existing consumers (the CLI printers,
/// benches) see unchanged fields, with the key translation and snapshot
/// pin layered on top.
struct DbBatchResult {
  std::optional<BatchResult> plain;
  std::optional<ShardedBatchResult> sharded;

  /// keys[q] translates results()[q].rows to stable keys.
  std::vector<std::vector<uint64_t>> keys;

  uint64_t snapshot_generation = 0;
  DeltaVersion snapshot_version;
  uint64_t snapshot_rows = 0;

  const std::vector<ReverseSkylineResult>& results() const {
    return plain ? plain->results : sharded->results;
  }
  const std::vector<Status>& statuses() const {
    return plain ? plain->statuses : sharded->statuses;
  }
  bool ok() const { return plain ? plain->ok() : sharded->ok(); }
  Status first_error() const {
    return plain ? plain->first_error() : sharded->first_error();
  }
  size_t num_failed() const {
    return plain ? plain->num_failed() : sharded->num_failed();
  }
  const IoStats& total_io() const {
    return plain ? plain->total_io : sharded->total_io;
  }
  double wall_millis() const {
    return plain ? plain->wall_millis : sharded->wall_millis;
  }
  double ModeledMakespanMillis() const {
    return plain ? plain->ModeledMakespanMillis()
                 : sharded->ModeledMakespanMillis();
  }
  double ModeledQps() const {
    return plain ? plain->ModeledQps() : sharded->ModeledQps();
  }
};

/// Outcome of one overlay batch through the front door (docs/OVERLAYS.md):
/// queries answered for every overlay user over the pinned snapshot.
struct DbOverlayBatchResult {
  std::optional<OverlayBatchResult> plain;
  std::optional<ShardedOverlayBatchResult> sharded;

  uint64_t snapshot_generation = 0;
  DeltaVersion snapshot_version;

  const std::vector<std::vector<ReverseSkylineResult>>& results() const {
    return plain ? plain->results : sharded->results;
  }
  const std::vector<Status>& statuses() const {
    return plain ? plain->statuses : sharded->statuses;
  }
  bool ok() const { return plain ? plain->ok() : sharded->ok(); }
  Status first_error() const {
    return plain ? plain->first_error() : sharded->first_error();
  }
};

/// An epoch-pinned, immutable view of the database: base generation plus a
/// delta prefix, materialized as ONE prepared dataset that is bit-identical
/// — rows, counters, page bytes — to re-preparing the merged dataset from
/// scratch. Every algorithm and engine composition (kernels, workers,
/// caches, shards, replicas, overlays) therefore behaves exactly as it
/// would over a frozen dataset of the same content; concurrent mutations
/// never move the ground under a running query.
///
/// Handles are cheap to copy and keep their state (disk included) alive
/// independently of the Database — a snapshot taken before a compaction
/// stays valid after it.
class Snapshot {
 public:
  Snapshot() = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t generation() const { return state_->generation; }
  DeltaVersion delta_version() const { return state_->version; }
  uint64_t num_rows() const { return state_->prepared->stored.num_rows(); }
  const PreparedDataset& prepared() const { return *state_->prepared; }

  /// Stable key of snapshot row `row` (< num_rows()).
  uint64_t KeyOf(RowId row) const { return state_->keys[row]; }
  std::vector<uint64_t> KeysOf(const std::vector<RowId>& rows) const;

  /// Materialization cost of this snapshot (zero when it IS the base
  /// generation).
  double build_millis() const { return state_->build_millis; }
  const IoStats& build_io() const { return state_->build_io; }

  /// The pinned state's executor — exactly one is non-null, decided by
  /// DatabaseOptions::num_shards. Telemetry access (worker counts, buffer
  /// pool stats) for CLI and bench consumers; running queries still goes
  /// through RunBatch / Query so the per-state run lock is honored.
  const QueryEngine* engine() const { return state_->engine.get(); }
  const ShardedQueryEngine* sharded_engine() const {
    return state_->sharded_engine.get();
  }

  /// Runs a batch over the pinned state. Thread-safe: concurrent calls on
  /// the same snapshot serialize; calls on different snapshots run
  /// independently.
  StatusOr<DbBatchResult> RunBatch(const std::vector<Object>& queries) const;

  StatusOr<DbOverlayBatchResult> RunOverlayBatch(
      const std::vector<Object>& queries,
      const std::vector<const MatrixOverlay*>& overlays) const;

  StatusOr<DbQueryResult> Query(const Object& query) const;

 private:
  friend class Database;
  explicit Snapshot(std::shared_ptr<db_internal::SnapshotState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<db_internal::SnapshotState> state_;
};

/// Result of Database::Recover.
struct RecoveredDatabase {
  std::unique_ptr<Database> db;
  /// True when the WAL's last page was torn by a crash mid-write; the
  /// database then holds the durable prefix (every acknowledged mutation).
  bool torn_tail = false;
  uint64_t records_replayed = 0;
};

/// The mutable-dataset front door (docs/MUTABILITY.md): one handle that
/// owns the WAL, the in-memory delta segment, the current base generation,
/// and the engine wiring, superseding the loose QueryEngine /
/// ShardedQueryEngine / overlay entry points for online serving.
///
///   Open      — prepare the initial generation from an in-memory Dataset
///   Insert    — append a row (WAL first, then the concurrent-reader delta)
///   Delete    — remove a live row by stable key
///   Snapshot  — pin the current epoch as an immutable queryable state
///   Query / RunBatch / RunOverlayBatch — convenience: snapshot + run
///   Compact   — fold the delta into a new base generation (external-sort
///               style streamed merge) and swap it in atomically; readers
///               holding snapshots are never blocked or invalidated
///   Recover   — rebuild from the original base + a WAL image (crash
///               recovery; deterministic, torn tails detected)
///
/// ## Concurrency
///
/// Mutations and metadata reads take the database mutex; queries do not —
/// they run over snapshot states whose disks and engines are immutable
/// after publication. Writers are briefly blocked by Snapshot()
/// materialization and by the compaction swap, never by running queries;
/// queries never see a half-applied mutation (delta prefixes are
/// immutable, see DeltaSegment).
class Database {
 public:
  /// Opens a database over `base` (its rows get stable keys 0..n-1 and the
  /// initial generation is exactly PrepareDataset of `base`). `space` is
  /// borrowed and must outlive the database; its value universe is fixed —
  /// inserts must stay inside the schema's cardinalities (see
  /// SimilaritySpace::AppendCategoricalValue for growing the universe
  /// before inserting).
  static StatusOr<std::unique_ptr<Database>> Open(const Dataset& base,
                                                  const SimilaritySpace& space,
                                                  DatabaseOptions opts = {});

  /// Rebuilds a database from the original base dataset plus a WAL image
  /// (pages of `wal_file` on `wal_source`, typically a copy of a crashed
  /// database's wal_disk()). Replays every durable record through the
  /// normal mutation path — the recovered database carries a fresh WAL
  /// with the same records, and its snapshots are bit-identical to the
  /// pre-crash ones. Compaction never changes the replay result (the WAL
  /// is not truncated by Compact).
  static StatusOr<RecoveredDatabase> Recover(const Dataset& base,
                                             const SimilaritySpace& space,
                                             const SimulatedDisk& wal_source,
                                             FileId wal_file,
                                             DatabaseOptions opts = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const Schema& schema() const { return schema_; }
  Algorithm algorithm() const { return opts_.algo; }
  const DatabaseOptions& options() const { return opts_; }
  const SimilaritySpace& space() const { return *space_; }

  /// Live logical rows (base minus deletes plus live inserts).
  uint64_t num_rows() const;
  /// Rows in the current base generation (before delta).
  uint64_t num_base_rows() const;
  uint64_t generation() const;
  DeltaVersion delta_version() const;
  bool Contains(uint64_t key) const;
  DbStats stats() const;

  /// Builds a query object, deriving discretization buckets for numeric
  /// attributes exactly as dataset rows do.
  Object MakeObject(const std::vector<ValueId>& values,
                    const std::vector<double>& numerics = {}) const;

  /// Inserts a row; returns its stable key. `values[i]` is the categorical
  /// value id of attribute i (ignored for numeric attributes, whose bucket
  /// is derived from `numerics[i]`; out-of-range numerics clamp into the
  /// edge buckets, as everywhere else). Durable (WAL-appended) before the
  /// call returns. kResourceExhausted once the delta holds
  /// max_delta_mutations — compact and retry.
  StatusOr<uint64_t> Insert(const std::vector<ValueId>& values,
                            const std::vector<double>& numerics = {});

  /// Deletes the live row with stable key `key` (kNotFound otherwise).
  Status Delete(uint64_t key);

  /// Pins the current state. With an empty delta this is the base
  /// generation itself (free); otherwise the base+delta merge is
  /// materialized — once per epoch: repeated calls at an unchanged version
  /// return the cached state.
  StatusOr<class Snapshot> Snapshot();

  /// Convenience single-query / batch / overlay entry points: Snapshot()
  /// then run. Batches against an unchanged version share the cached
  /// snapshot and its warm caches.
  StatusOr<DbQueryResult> Query(const Object& query);
  StatusOr<DbBatchResult> RunBatch(const std::vector<Object>& queries);
  StatusOr<DbOverlayBatchResult> RunOverlayBatch(
      const std::vector<Object>& queries,
      const std::vector<const MatrixOverlay*>& overlays);

  /// Folds the current delta into a new base generation and swaps it in.
  /// The merge streams the frozen generation against the sorted delta
  /// (2-run merge in the external-sort idiom, re-sealing pages with the
  /// generation's CRC32C config) on a private disk, so readers — including
  /// ones holding older snapshots — are never blocked; mutations arriving
  /// during the merge are carried over into the fresh delta atomically at
  /// swap time. Queries after the swap are bit-identical to before it.
  Status Compact();

  /// The WAL's backing disk and file — read-only access for telemetry and
  /// for tests that image the log to simulate crashes.
  const SimulatedDisk& wal_disk() const { return *wal_disk_; }
  FileId wal_file() const { return wal_->file(); }

 private:
  Database(const SimilaritySpace& space, DatabaseOptions opts, Schema schema);

  using State = db_internal::SnapshotState;

  /// Prepares the base dataset as generation 0 and seeds keys/live map.
  Status InitGen0(const Dataset& base);

  /// Materializes base+delta(prefix v) as a fresh state labeled
  /// (generation_label, version_label): the streamed stable merge that is
  /// byte-identical to re-preparing the merged dataset.
  StatusOr<std::shared_ptr<State>> Materialize(const State& gen,
                                               const DeltaSegment& delta,
                                               DeltaVersion v,
                                               uint64_t generation_label,
                                               DeltaVersion version_label,
                                               const std::string& file_label);

  /// Builds the engine (and shard partition) over st->prepared.
  Status BuildEngines(State* st);

  /// WAL + delta + key-map insert with a fixed key (mutation path shared
  /// by Insert and WAL replay). Caller validated; takes mu_.
  StatusOr<uint64_t> ApplyInsert(uint64_t key, std::vector<ValueId> values,
                                 std::vector<double> numerics);

  const SimilaritySpace* space_;
  DatabaseOptions opts_;
  Schema schema_;
  Dataset template_;  // 0-row dataset: bucketizers for MakeObject

  std::shared_ptr<SimulatedDisk> wal_disk_;
  std::unique_ptr<WalWriter> wal_;

  mutable std::mutex mu_;  // mutations, live_, cache pointers, stats
  std::mutex snap_mu_;     // serializes snapshot materialization
  std::mutex compact_mu_;  // serializes compactions

  std::shared_ptr<State> gen_;  // current base generation
  std::shared_ptr<DeltaSegment> delta_;
  std::unordered_map<uint64_t, db_internal::Location> live_;
  uint64_t next_key_ = 0;
  uint64_t gen_counter_ = 0;

  // Epoch cache: last materialized snapshot, keyed by (base identity,
  // delta version).
  std::shared_ptr<State> cached_;
  const State* cached_base_ = nullptr;
  DeltaVersion cached_version_;

  DbStats stats_;
};

}  // namespace nmrs

#endif  // NMRS_DB_DATABASE_H_
