#include "db/database.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/timer.h"
#include "order/zorder.h"

namespace nmrs {

namespace {

// keys[q] = stable keys of results[q].rows.
std::vector<std::vector<uint64_t>> TranslateKeys(
    const std::vector<ReverseSkylineResult>& results,
    const std::vector<uint64_t>& row_keys) {
  std::vector<std::vector<uint64_t>> keys(results.size());
  for (size_t q = 0; q < results.size(); ++q) {
    keys[q].reserve(results[q].rows.size());
    for (RowId r : results[q].rows) keys[q].push_back(row_keys[r]);
  }
  return keys;
}

Status ValidateQueries(const std::vector<Object>& queries, size_t m) {
  for (size_t q = 0; q < queries.size(); ++q) {
    if (queries[q].values.size() != m) {
      return Status::InvalidArgument(
          "query " + std::to_string(q) + " has " +
          std::to_string(queries[q].values.size()) + " attributes, schema has " +
          std::to_string(m));
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<uint64_t> Snapshot::KeysOf(const std::vector<RowId>& rows) const {
  std::vector<uint64_t> out;
  out.reserve(rows.size());
  for (RowId r : rows) out.push_back(state_->keys[r]);
  return out;
}

StatusOr<DbBatchResult> Snapshot::RunBatch(
    const std::vector<Object>& queries) const {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("RunBatch on a default-constructed Snapshot");
  }
  NMRS_RETURN_IF_ERROR(ValidateQueries(
      queries, state_->prepared->stored.schema().num_attributes()));
  DbBatchResult out;
  {
    std::scoped_lock run_lock(state_->run_mu);
    if (state_->engine != nullptr) {
      NMRS_ASSIGN_OR_RETURN(BatchResult b, state_->engine->RunBatch(queries));
      out.plain = std::move(b);
    } else {
      NMRS_ASSIGN_OR_RETURN(ShardedBatchResult b,
                            state_->sharded_engine->RunBatch(queries));
      out.sharded = std::move(b);
    }
  }
  out.keys = TranslateKeys(out.results(), state_->keys);
  out.snapshot_generation = state_->generation;
  out.snapshot_version = state_->version;
  out.snapshot_rows = state_->prepared->stored.num_rows();
  return out;
}

StatusOr<DbOverlayBatchResult> Snapshot::RunOverlayBatch(
    const std::vector<Object>& queries,
    const std::vector<const MatrixOverlay*>& overlays) const {
  if (state_ == nullptr) {
    return Status::FailedPrecondition(
        "RunOverlayBatch on a default-constructed Snapshot");
  }
  NMRS_RETURN_IF_ERROR(ValidateQueries(
      queries, state_->prepared->stored.schema().num_attributes()));
  DbOverlayBatchResult out;
  {
    std::scoped_lock run_lock(state_->run_mu);
    if (state_->engine != nullptr) {
      NMRS_ASSIGN_OR_RETURN(OverlayBatchResult b,
                            state_->engine->RunOverlayBatch(queries, overlays));
      out.plain = std::move(b);
    } else {
      NMRS_ASSIGN_OR_RETURN(
          ShardedOverlayBatchResult b,
          state_->sharded_engine->RunOverlayBatch(queries, overlays));
      out.sharded = std::move(b);
    }
  }
  out.snapshot_generation = state_->generation;
  out.snapshot_version = state_->version;
  return out;
}

StatusOr<DbQueryResult> Snapshot::Query(const Object& query) const {
  NMRS_ASSIGN_OR_RETURN(DbBatchResult batch, RunBatch({query}));
  NMRS_RETURN_IF_ERROR(batch.first_error());
  DbQueryResult out;
  out.result = std::move(batch.plain ? batch.plain->results[0]
                                     : batch.sharded->results[0]);
  out.keys = std::move(batch.keys[0]);
  out.snapshot_generation = batch.snapshot_generation;
  out.snapshot_version = batch.snapshot_version;
  return out;
}

Database::Database(const SimilaritySpace& space, DatabaseOptions opts,
                   Schema schema)
    : space_(&space),
      opts_(std::move(opts)),
      schema_(std::move(schema)),
      template_(schema_),
      wal_disk_(std::make_shared<SimulatedDisk>()),
      wal_(std::make_unique<WalWriter>(wal_disk_.get(), opts_.name + ".wal")) {}

StatusOr<std::unique_ptr<Database>> Database::Open(const Dataset& base,
                                                   const SimilaritySpace& space,
                                                   DatabaseOptions opts) {
  NMRS_RETURN_IF_ERROR(base.schema().Validate());
  NMRS_RETURN_IF_ERROR(base.Validate());
  if (opts.num_shards < 1) {
    return Status::InvalidArgument("DatabaseOptions::num_shards must be >= 1");
  }
  std::unique_ptr<Database> db(
      new Database(space, std::move(opts), base.schema()));
  NMRS_RETURN_IF_ERROR(db->InitGen0(base));
  return db;
}

Status Database::InitGen0(const Dataset& base) {
  auto st = std::make_shared<State>();
  st->disk = std::make_shared<SimulatedDisk>();
  NMRS_ASSIGN_OR_RETURN(
      PreparedDataset prep,
      PrepareDataset(st->disk.get(), base, opts_.algo, opts_.prepare,
                     opts_.name + ".gen0"));
  // Pin the resolved ordering: every later generation and every
  // incremental merge must agree with generation 0 on it.
  opts_.prepare.attr_order = prep.attr_order;
  st->build_millis = prep.prepare_millis;
  st->prepared = std::make_unique<PreparedDataset>(std::move(prep));
  st->build_io = st->disk->stats();

  const uint64_t n = base.num_rows();
  st->keys.resize(n);
  std::iota(st->keys.begin(), st->keys.end(), 0);
  st->key_to_row.reserve(n);
  for (RowId r = 0; r < n; ++r) st->key_to_row.emplace(r, r);
  NMRS_RETURN_IF_ERROR(BuildEngines(st.get()));

  gen_ = std::move(st);
  delta_ = std::make_shared<DeltaSegment>(schema_);
  live_.reserve(n);
  for (RowId r = 0; r < n; ++r) {
    live_.emplace(r, db_internal::Location{false, r});
  }
  next_key_ = n;
  return Status::OK();
}

Status Database::BuildEngines(State* st) {
  if (opts_.num_shards > 1) {
    ShardPlanOptions plan = opts_.shard_plan;
    plan.num_shards = opts_.num_shards;
    NMRS_ASSIGN_OR_RETURN(ShardedDataset sharded,
                          ShardedDataset::Partition(*st->prepared, plan));
    st->sharded = std::make_unique<ShardedDataset>(std::move(sharded));
    st->sharded_engine = std::make_unique<ShardedQueryEngine>(
        *st->sharded, *space_, opts_.algo, opts_.engine);
  } else {
    st->engine = std::make_unique<QueryEngine>(*st->prepared, *space_,
                                               opts_.algo, opts_.engine);
  }
  return Status::OK();
}

uint64_t Database::num_rows() const {
  std::scoped_lock lock(mu_);
  return live_.size();
}

uint64_t Database::num_base_rows() const {
  std::scoped_lock lock(mu_);
  return gen_->prepared->stored.num_rows();
}

uint64_t Database::generation() const {
  std::scoped_lock lock(mu_);
  return gen_counter_;
}

DeltaVersion Database::delta_version() const {
  std::scoped_lock lock(mu_);
  return delta_->version();
}

bool Database::Contains(uint64_t key) const {
  std::scoped_lock lock(mu_);
  return live_.count(key) > 0;
}

DbStats Database::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

Object Database::MakeObject(const std::vector<ValueId>& values,
                            const std::vector<double>& numerics) const {
  return template_.MakeObject(
      values, schema_.NumNumeric() > 0
                  ? numerics
                  : std::vector<double>(schema_.num_attributes(), 0.0));
}

StatusOr<uint64_t> Database::Insert(const std::vector<ValueId>& values,
                                    const std::vector<double>& numerics) {
  const size_t m = schema_.num_attributes();
  if (values.size() != m) {
    return Status::InvalidArgument("Insert row has " +
                                   std::to_string(values.size()) +
                                   " values, schema has " + std::to_string(m));
  }
  if (schema_.NumNumeric() > 0 && numerics.size() != m) {
    return Status::InvalidArgument(
        "Insert row needs " + std::to_string(m) +
        " numerics (schema has numeric attributes), got " +
        std::to_string(numerics.size()));
  }
  Object obj = MakeObject(values, numerics);
  for (AttrId a = 0; a < m; ++a) {
    if (obj.values[a] >= schema_.attribute(a).cardinality) {
      return Status::InvalidArgument(
          "Insert value " + std::to_string(obj.values[a]) + " of attribute " +
          std::to_string(a) + " is outside cardinality " +
          std::to_string(schema_.attribute(a).cardinality) +
          " (grow the space first: SimilaritySpace::AppendCategoricalValue)");
    }
  }
  return ApplyInsert(kInvalidRowId, std::move(obj.values),
                     schema_.NumNumeric() > 0 ? std::move(obj.numerics)
                                              : std::vector<double>{});
}

StatusOr<uint64_t> Database::ApplyInsert(uint64_t key,
                                         std::vector<ValueId> values,
                                         std::vector<double> numerics) {
  std::scoped_lock lock(mu_);
  if (delta_->version().total() >= opts_.max_delta_mutations) {
    return Status::ResourceExhausted(
        "delta segment holds " + std::to_string(delta_->version().total()) +
        " mutations (max_delta_mutations); Compact() and retry");
  }
  if (key == kInvalidRowId) key = next_key_++;
  if (live_.count(key) > 0) {
    return Status::Corruption("insert of key " + std::to_string(key) +
                              " which is already live");
  }
  WalRecord rec;
  rec.type = WalRecord::Type::kInsert;
  rec.key = key;
  rec.values = std::move(values);
  rec.numerics = std::move(numerics);
  NMRS_RETURN_IF_ERROR(wal_->Append(rec));
  const uint64_t rank = delta_->AppendInsert(
      key, rec.values.data(), rec.numerics.empty() ? nullptr : rec.numerics.data());
  live_[key] = db_internal::Location{true, rank};
  next_key_ = std::max(next_key_, key + 1);
  ++stats_.inserts;
  ++stats_.wal_records;
  return key;
}

Status Database::Delete(uint64_t key) {
  std::scoped_lock lock(mu_);
  auto it = live_.find(key);
  if (it == live_.end()) {
    return Status::NotFound("key " + std::to_string(key) + " is not live");
  }
  if (delta_->version().total() >= opts_.max_delta_mutations) {
    return Status::ResourceExhausted(
        "delta segment holds " + std::to_string(delta_->version().total()) +
        " mutations (max_delta_mutations); Compact() and retry");
  }
  WalRecord rec;
  rec.type = WalRecord::Type::kDelete;
  rec.key = key;
  NMRS_RETURN_IF_ERROR(wal_->Append(rec));
  delta_->AppendDelete(key);
  live_.erase(it);
  ++stats_.deletes;
  ++stats_.wal_records;
  return Status::OK();
}

StatusOr<std::shared_ptr<Database::State>> Database::Materialize(
    const State& gen, const DeltaSegment& delta, DeltaVersion v,
    uint64_t generation_label, DeltaVersion version_label,
    const std::string& file_label) {
  Timer timer;
  const StoredDataset& stored = gen.prepared->stored;
  const size_t m = schema_.num_attributes();
  const bool has_num = schema_.NumNumeric() > 0;
  const bool checksum = stored.checksum_pages();
  const std::vector<AttrId>& attr_order = gen.prepared->attr_order;

  // Resolve the delta prefix: which inserts died, which base rows died.
  std::unordered_map<uint64_t, uint64_t> insert_rank;
  insert_rank.reserve(v.inserts);
  for (uint64_t i = 0; i < v.inserts; ++i) {
    insert_rank.emplace(delta.InsertKey(i), i);
  }
  std::vector<char> dead(v.inserts, 0);
  std::vector<RowId> deleted_base;
  for (uint64_t d = 0; d < v.deletes; ++d) {
    const uint64_t key = delta.DeleteKey(d);
    if (auto it = insert_rank.find(key); it != insert_rank.end()) {
      dead[it->second] = 1;
    } else if (auto bit = gen.key_to_row.find(key);
               bit != gen.key_to_row.end()) {
      deleted_base.push_back(bit->second);
    } else {
      return Status::Internal("delta delete references unknown key " +
                              std::to_string(key));
    }
  }
  std::sort(deleted_base.begin(), deleted_base.end());
  const uint64_t base_live = stored.num_rows() - deleted_base.size();

  // Live inserts get merged RowIds base_live.. in *insert order* — exactly
  // the ids they would get appended to a re-built merged Dataset — and are
  // then ordered for the stream merge the way the full re-sort would order
  // them (naive/BRS keep append order; id tie-breaks equal insert-rank
  // tie-breaks because the id assignment is monotone in rank).
  struct DeltaRow {
    uint64_t rank;
    RowId new_id;
    uint64_t zkey;
  };
  std::vector<DeltaRow> drows;
  drows.reserve(v.inserts);
  for (uint64_t i = 0; i < v.inserts; ++i) {
    if (!dead[i]) {
      drows.push_back(DeltaRow{i, base_live + drows.size(), 0});
    }
  }

  const bool tiled =
      opts_.algo == Algorithm::kTileSRS || opts_.algo == Algorithm::kTileTRS;
  const bool ordered = tiled || opts_.algo == Algorithm::kSRS ||
                       opts_.algo == Algorithm::kTRS;
  std::optional<TileZCoder> coder;
  if (tiled) {
    coder.emplace(schema_, attr_order, opts_.prepare.tiles_per_dim);
    for (DeltaRow& dr : drows) dr.zkey = coder->Key(delta.InsertValues(dr.rank));
  }
  auto lex = [&attr_order](const ValueId* a, const ValueId* b) -> int {
    for (AttrId attr : attr_order) {
      if (a[attr] != b[attr]) return a[attr] < b[attr] ? -1 : 1;
    }
    return 0;
  };
  if (ordered) {
    std::sort(drows.begin(), drows.end(),
              [&](const DeltaRow& x, const DeltaRow& y) {
                if (tiled && x.zkey != y.zkey) return x.zkey < y.zkey;
                const int c = lex(delta.InsertValues(x.rank),
                                  delta.InsertValues(y.rank));
                if (c != 0) return c < 0;
                return x.rank < y.rank;
              });
  }

  auto st = std::make_shared<State>();
  st->generation = generation_label;
  st->version = version_label;
  st->disk = std::make_shared<SimulatedDisk>(stored.disk()->page_size());
  const FileId file = st->disk->CreateFile(file_label);
  RowWriter writer(st->disk.get(), file, schema_, checksum);
  const uint64_t total_rows = base_live + drows.size();
  st->keys.resize(total_rows);

  size_t di = 0;
  auto emit_delta = [&]() -> Status {
    const DeltaRow& dr = drows[di];
    NMRS_RETURN_IF_ERROR(writer.Add(dr.new_id, delta.InsertValues(dr.rank),
                                    delta.InsertNumerics(dr.rank)));
    st->keys[dr.new_id] = delta.InsertKey(dr.rank);
    ++di;
    return Status::OK();
  };
  // Strictly-before: on a full key tie the base row wins, because its
  // merged RowId is < base_live <= every delta RowId.
  auto delta_before = [&](const ValueId* bv, uint64_t bz) -> bool {
    if (!ordered || di >= drows.size()) return false;
    const DeltaRow& dr = drows[di];
    if (tiled && dr.zkey != bz) return dr.zkey < bz;
    return lex(delta.InsertValues(dr.rank), bv) < 0;
  };

  // Stream the frozen generation (zero-copy page peeks — safe concurrently
  // with query readers) and 2-way merge with the sorted delta: one run from
  // disk, one from memory, in the external-sort idiom. The base stream is
  // sorted by (sort key, old id); dropping deleted rows and renumbering
  // preserves that order because old id -> new id is monotone, so the merge
  // output equals a full re-sort of the merged dataset, byte for byte.
  RowBatch batch(m, has_num);
  const RowCodec& codec = stored.codec();
  const uint64_t num_pages = stored.num_pages();
  for (PageId p = 0; p < num_pages; ++p) {
    const Page* pg = stored.disk()->PeekPage(stored.file(), p);
    if (pg == nullptr) {
      return Status::Internal("generation page " + std::to_string(p) +
                              " vanished during materialization");
    }
    if (checksum && !pg->VerifySeal()) {
      return Status::Corruption(
          "generation file " + stored.disk()->FileName(stored.file()) +
          " page " + std::to_string(p) +
          " failed checksum verification during materialization");
    }
    batch.Clear();
    codec.DecodePage(*pg, &batch);
    for (size_t i = 0; i < batch.size(); ++i) {
      const RowId old_id = batch.id(i);
      auto lo =
          std::lower_bound(deleted_base.begin(), deleted_base.end(), old_id);
      if (lo != deleted_base.end() && *lo == old_id) continue;
      const RowId new_id =
          old_id - static_cast<RowId>(lo - deleted_base.begin());
      const ValueId* bv = batch.row_values(i);
      const uint64_t bz = coder ? coder->Key(bv) : 0;
      while (delta_before(bv, bz)) {
        NMRS_RETURN_IF_ERROR(emit_delta());
      }
      NMRS_RETURN_IF_ERROR(writer.Add(new_id, bv, batch.row_numerics(i)));
      st->keys[new_id] = gen.keys[old_id];
    }
  }
  while (di < drows.size()) {
    NMRS_RETURN_IF_ERROR(emit_delta());
  }
  NMRS_RETURN_IF_ERROR(writer.Finish());

  st->prepared = std::make_unique<PreparedDataset>(PreparedDataset{
      StoredDataset(st->disk.get(), file, schema_, total_rows, checksum),
      attr_order, 0.0});
  st->key_to_row.reserve(total_rows);
  for (RowId r = 0; r < total_rows; ++r) st->key_to_row.emplace(st->keys[r], r);
  st->build_io = st->disk->stats();
  NMRS_RETURN_IF_ERROR(BuildEngines(st.get()));
  st->build_millis = timer.ElapsedMillis();
  return st;
}

StatusOr<class Snapshot> Database::Snapshot() {
  std::shared_ptr<State> gen;
  std::shared_ptr<DeltaSegment> delta;
  DeltaVersion v;
  {
    std::scoped_lock lock(mu_);
    gen = gen_;
    delta = delta_;
    v = delta->version();
    if (v.total() == 0) {
      ++stats_.snapshots_reused;
      class Snapshot snap(gen);
      return snap;
    }
    if (cached_ != nullptr && cached_base_ == gen.get() &&
        cached_version_ == v) {
      ++stats_.snapshots_reused;
      class Snapshot snap(cached_);
      return snap;
    }
  }
  std::scoped_lock snap_lock(snap_mu_);
  {
    // Another thread may have materialized this epoch while we waited.
    std::scoped_lock lock(mu_);
    if (cached_ != nullptr && cached_base_ == gen.get() &&
        cached_version_ == v) {
      ++stats_.snapshots_reused;
      class Snapshot snap(cached_);
      return snap;
    }
  }
  const std::string label = opts_.name + ".gen" +
                            std::to_string(gen->generation) + ".snap.i" +
                            std::to_string(v.inserts) + "d" +
                            std::to_string(v.deletes);
  NMRS_ASSIGN_OR_RETURN(std::shared_ptr<State> st,
                        Materialize(*gen, *delta, v, gen->generation, v, label));
  {
    std::scoped_lock lock(mu_);
    cached_ = st;
    cached_base_ = gen.get();
    cached_version_ = v;
    ++stats_.snapshots_built;
    stats_.snapshot_build_io += st->build_io;
    stats_.snapshot_build_millis += st->build_millis;
  }
  class Snapshot snap(st);
  return snap;
}

StatusOr<DbQueryResult> Database::Query(const Object& query) {
  NMRS_ASSIGN_OR_RETURN(class Snapshot snap, Snapshot());
  return snap.Query(query);
}

StatusOr<DbBatchResult> Database::RunBatch(const std::vector<Object>& queries) {
  NMRS_ASSIGN_OR_RETURN(class Snapshot snap, Snapshot());
  return snap.RunBatch(queries);
}

StatusOr<DbOverlayBatchResult> Database::RunOverlayBatch(
    const std::vector<Object>& queries,
    const std::vector<const MatrixOverlay*>& overlays) {
  NMRS_ASSIGN_OR_RETURN(class Snapshot snap, Snapshot());
  return snap.RunOverlayBatch(queries, overlays);
}

Status Database::Compact() {
  std::scoped_lock compact_lock(compact_mu_);
  std::shared_ptr<State> gen;
  std::shared_ptr<DeltaSegment> delta;
  DeltaVersion v;
  {
    std::scoped_lock lock(mu_);
    gen = gen_;
    delta = delta_;
    v = delta->version();
  }
  if (v.total() == 0) return Status::OK();  // nothing to fold

  // Build the new generation off-line: readers keep querying the current
  // one (and their pinned snapshots) while the merge runs.
  const uint64_t new_gen = gen->generation + 1;
  NMRS_ASSIGN_OR_RETURN(
      std::shared_ptr<State> ng,
      Materialize(*gen, *delta, v, new_gen, DeltaVersion{},
                  opts_.name + ".gen" + std::to_string(new_gen)));

  // Atomic swap: re-point the base generation, fold mutations that arrived
  // during the merge into a fresh delta, rebuild the key map. Writers are
  // blocked only for this O(delta suffix + keys) section, never for the
  // merge itself; readers are never blocked at all.
  {
    std::scoped_lock lock(mu_);
    auto fresh = std::make_shared<DeltaSegment>(schema_);
    live_.clear();
    live_.reserve(ng->keys.size());
    for (RowId r = 0; r < ng->keys.size(); ++r) {
      live_.emplace(ng->keys[r], db_internal::Location{false, r});
    }
    const DeltaVersion cur = delta_->version();
    for (uint64_t i = v.inserts; i < cur.inserts; ++i) {
      const uint64_t key = delta_->InsertKey(i);
      const uint64_t rank = fresh->AppendInsert(key, delta_->InsertValues(i),
                                                delta_->InsertNumerics(i));
      live_[key] = db_internal::Location{true, rank};
    }
    for (uint64_t d = v.deletes; d < cur.deletes; ++d) {
      const uint64_t key = delta_->DeleteKey(d);
      fresh->AppendDelete(key);
      live_.erase(key);
    }
    gen_ = ng;
    delta_ = std::move(fresh);
    gen_counter_ = new_gen;
    cached_.reset();
    cached_base_ = nullptr;
    ++stats_.compactions;
    stats_.snapshot_build_io += ng->build_io;
    stats_.snapshot_build_millis += ng->build_millis;
  }
  return Status::OK();
}

StatusOr<RecoveredDatabase> Database::Recover(const Dataset& base,
                                              const SimilaritySpace& space,
                                              const SimulatedDisk& wal_source,
                                              FileId wal_file,
                                              DatabaseOptions opts) {
  // Image the WAL onto a scratch disk (the source may belong to a dead
  // database whose pages we may only peek at).
  SimulatedDisk scratch(wal_source.page_size());
  const FileId file = scratch.CreateFile("wal.recover");
  const uint64_t pages = wal_source.NumPages(wal_file);
  for (PageId p = 0; p < pages; ++p) {
    const Page* pg = wal_source.PeekPage(wal_file, p);
    if (pg == nullptr) {
      return Status::Internal("WAL page " + std::to_string(p) +
                              " unreadable during recovery");
    }
    NMRS_RETURN_IF_ERROR(scratch.AppendPage(file, *pg).status());
  }
  NMRS_ASSIGN_OR_RETURN(WalReplay replay, ReplayWal(&scratch, file));

  NMRS_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                        Open(base, space, std::move(opts)));
  const size_t m = db->schema_.num_attributes();
  const size_t want_numerics = db->schema_.NumNumeric() > 0 ? m : 0;
  for (size_t r = 0; r < replay.records.size(); ++r) {
    WalRecord& rec = replay.records[r];
    if (rec.type == WalRecord::Type::kInsert) {
      if (rec.values.size() != m || rec.numerics.size() != want_numerics) {
        return Status::Corruption("WAL record " + std::to_string(r) +
                                  " does not match the schema");
      }
      for (AttrId a = 0; a < m; ++a) {
        if (rec.values[a] >= db->schema_.attribute(a).cardinality) {
          return Status::Corruption("WAL record " + std::to_string(r) +
                                    " carries an out-of-domain value");
        }
      }
      Status s = db->ApplyInsert(rec.key, std::move(rec.values),
                                 std::move(rec.numerics))
                     .status();
      if (!s.ok()) {
        return Status::Corruption("WAL replay failed at record " +
                                  std::to_string(r) + ": " + s.ToString());
      }
    } else {
      Status s = db->Delete(rec.key);
      if (!s.ok()) {
        return Status::Corruption("WAL replay failed at record " +
                                  std::to_string(r) + ": " + s.ToString());
      }
    }
  }
  RecoveredDatabase out;
  out.db = std::move(db);
  out.torn_tail = replay.torn_tail;
  out.records_replayed = replay.records.size();
  return out;
}

}  // namespace nmrs
