#include "shard/message_stats.h"

#include <sstream>

namespace nmrs {

std::string MessageStats::ToString() const {
  std::ostringstream os;
  os << "messages=" << messages << " bytes=" << bytes << " rounds=" << rounds;
  return os.str();
}

}  // namespace nmrs
