#include "shard/shard_plan.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/timer.h"
#include "order/zorder.h"

namespace nmrs {

namespace {

// splitmix64 finalizer: full-avalanche mix for the hash partitioner.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Morton key of one row, discretized exactly like TileZOrder: each
// attribute's value id is scaled into [0, effective_tiles) and the tile
// coordinates are bit-interleaved in physical attribute order.
std::vector<uint64_t> ZKeys(const RowBatch& rows, const Schema& schema,
                            size_t tiles_per_dim) {
  const size_t m = schema.num_attributes();
  unsigned bits = 1;
  while ((1u << bits) < tiles_per_dim) ++bits;
  const unsigned max_bits = static_cast<unsigned>(64 / std::max<size_t>(m, 1));
  if (bits > max_bits) bits = max_bits;
  const size_t effective_tiles = std::min<size_t>(tiles_per_dim, 1u << bits);

  std::vector<uint64_t> keys(rows.size());
  std::vector<uint32_t> coords(m);
  for (size_t r = 0; r < rows.size(); ++r) {
    const ValueId* row = rows.row_values(r);
    for (size_t a = 0; a < m; ++a) {
      const size_t card = schema.attribute(a).cardinality;
      uint64_t t = card <= 1 ? 0
                             : static_cast<uint64_t>(row[a]) *
                                   effective_tiles / card;
      if (t >= effective_tiles) t = effective_tiles - 1;
      coords[a] = static_cast<uint32_t>(t);
    }
    keys[r] = ZValue(coords, bits);
  }
  return keys;
}

}  // namespace

std::string_view ShardByName(ShardBy s) {
  switch (s) {
    case ShardBy::kZOrderRange:
      return "zorder";
    case ShardBy::kHash:
      return "hash";
  }
  return "?";
}

std::vector<int> AssignRowsToShards(const RowBatch& rows, const Schema& schema,
                                    const ShardPlanOptions& opts) {
  NMRS_CHECK_GE(opts.num_shards, 1);
  const size_t n = rows.size();
  const size_t num_shards = static_cast<size_t>(opts.num_shards);
  std::vector<int> shard_of(n, 0);
  if (num_shards == 1 || n == 0) return shard_of;

  if (opts.shard_by == ShardBy::kHash) {
    for (size_t r = 0; r < n; ++r) {
      shard_of[r] = static_cast<int>(
          Mix64(static_cast<uint64_t>(rows.id(r)) ^ opts.hash_seed) %
          num_shards);
    }
    return shard_of;
  }

  // Z-order range: rank rows by (Morton key, stored position) — the
  // position tiebreak makes duplicate-key runs split deterministically —
  // and cut the rank space into num_shards equal ranges. With more shards
  // than rows the trailing ranges are empty; the partition is still total.
  const std::vector<uint64_t> keys = ZKeys(rows, schema, opts.tiles_per_dim);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
  for (size_t rank = 0; rank < n; ++rank) {
    shard_of[order[rank]] = static_cast<int>(rank * num_shards / n);
  }
  return shard_of;
}

StatusOr<ShardedDataset> ShardedDataset::Partition(
    const PreparedDataset& base, const ShardPlanOptions& opts) {
  if (opts.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  ShardedDataset sharded(base, opts);
  if (opts.num_shards == 1) {
    // The single shard IS the base file: no copy, no partitioning IO, and
    // sharded execution over it reads the very same pages a single-shard
    // run would.
    sharded.shards_.push_back(base.stored);
    return sharded;
  }

  Timer timer;
  SimulatedDisk* disk = base.stored.disk();
  const Schema& schema = base.stored.schema();
  const bool checksum = base.stored.checksum_pages();
  const IoStats io_before = disk->stats();
  disk->InvalidateArmPosition();

  RowBatch rows(schema.num_attributes(), schema.NumNumeric() > 0);
  NMRS_RETURN_IF_ERROR(base.stored.ReadAll(&rows));
  NMRS_CHECK(rows.size() == base.stored.num_rows());
  const std::vector<int> shard_of = AssignRowsToShards(rows, schema, opts);

  // One pass per shard over the in-memory rows, appending in stored order:
  // each shard file is a stored-order subsequence of the base, so the
  // SRS/TRS sort and tile-cluster invariants survive partitioning.
  for (int s = 0; s < opts.num_shards; ++s) {
    const FileId file = disk->CreateFile("shard-" + std::to_string(s));
    RowWriter writer(disk, file, schema, checksum);
    for (size_t r = 0; r < rows.size(); ++r) {
      if (shard_of[r] != s) continue;
      NMRS_RETURN_IF_ERROR(
          writer.Add(rows.id(r), rows.row_values(r), rows.row_numerics(r)));
    }
    NMRS_RETURN_IF_ERROR(writer.Finish());
    sharded.shards_.emplace_back(disk, file, schema, writer.rows_written(),
                                 checksum);
  }

  sharded.partition_io_ = disk->stats() - io_before;
  sharded.partition_millis_ = timer.ElapsedMillis();
  return sharded;
}

std::vector<uint64_t> ShardedDataset::RowsPerShard() const {
  std::vector<uint64_t> rows;
  rows.reserve(shards_.size());
  for (const StoredDataset& s : shards_) rows.push_back(s.num_rows());
  return rows;
}

}  // namespace nmrs
