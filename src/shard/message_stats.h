#ifndef NMRS_SHARD_MESSAGE_STATS_H_
#define NMRS_SHARD_MESSAGE_STATS_H_

#include <cstdint>
#include <string>

#include "common/check.h"

namespace nmrs {

/// Counts the network traffic of a scatter/gather query the way IoStats
/// counts page traffic (docs/SHARDING.md). The sharded executor runs on one
/// machine, so no bytes actually cross a wire — like SimulatedDisk, the
/// point is a deterministic ledger of what a distributed deployment *would*
/// send, so benchmarks can weigh scatter/gather speedup against
/// communication overhead.
///
/// A "message" is one logical shard-to-coordinator or coordinator-to-shard
/// transfer (candidate export, pruner broadcast, verdict return); `bytes`
/// is the payload those messages carry (candidate rows at their on-disk
/// row_bytes encoding, verdicts at one bit per candidate); a "round" is one
/// synchronization barrier of the exchange protocol — every participating
/// shard must finish the round before any shard starts the next.
struct MessageStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t rounds = 0;

  MessageStats& operator+=(const MessageStats& o) {
    messages += o.messages;
    bytes += o.bytes;
    rounds += o.rounds;
    return *this;
  }

  /// Difference of two cumulative ledgers, with the same underflow contract
  /// as IoStats::operator-.
  MessageStats operator-(const MessageStats& o) const {
    NMRS_DCHECK(o.messages <= messages) << "messages underflow";
    NMRS_DCHECK(o.bytes <= bytes) << "bytes underflow";
    NMRS_DCHECK(o.rounds <= rounds) << "rounds underflow";
    return {messages - o.messages, bytes - o.bytes, rounds - o.rounds};
  }

  bool operator==(const MessageStats& o) const = default;

  std::string ToString() const;
};

/// Converts a MessageStats ledger into modeled milliseconds, exactly as
/// IoCostModel converts page counts. Defaults approximate a same-rack
/// datacenter network: ~50 us fixed cost per message (RPC framing +
/// scheduling), ~1 GB/s effective payload bandwidth, ~0.2 ms per
/// synchronization round (the barrier latency itself, on top of the
/// per-message costs of that round).
struct MessageCostModel {
  double ms_per_message = 0.05;
  double ms_per_mib = 1.0;
  double ms_per_round = 0.2;

  double EstimateMillis(const MessageStats& s) const {
    return ms_per_message * static_cast<double>(s.messages) +
           ms_per_mib * (static_cast<double>(s.bytes) / (1024.0 * 1024.0)) +
           ms_per_round * static_cast<double>(s.rounds);
  }
};

}  // namespace nmrs

#endif  // NMRS_SHARD_MESSAGE_STATS_H_
