#ifndef NMRS_SHARD_SHARD_PLAN_H_
#define NMRS_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "core/pipeline.h"
#include "data/object.h"
#include "data/stored_dataset.h"
#include "storage/io_stats.h"

namespace nmrs {

/// How rows are assigned to shards (docs/SHARDING.md).
enum class ShardBy {
  /// Balanced Z-order ranges: every row gets a Morton key from its tile
  /// coordinates (the TileZOrder discretization of order/zorder.h), rows are
  /// ranked by (key, stored position) and the rank space is cut into
  /// num_shards equal ranges. Spatially close rows land on the same shard,
  /// so a shard's local pruning sees the neighbours most likely to prune
  /// its candidates.
  kZOrderRange,
  /// Seeded hash of the RowId: uniform and order-oblivious, the baseline
  /// any-key partitioner.
  kHash,
};

std::string_view ShardByName(ShardBy s);

struct ShardPlanOptions {
  /// Number of shards (>= 1). 1 == no partitioning: the single shard
  /// aliases the base file verbatim, so sharded execution degenerates to
  /// exactly the single-shard code path.
  int num_shards = 1;

  ShardBy shard_by = ShardBy::kZOrderRange;

  /// Z-key resolution for kZOrderRange (tiles per dimension, as in
  /// PrepareOptions::tiles_per_dim). Finer tiles separate rows that coarse
  /// tiles would tie; ties are broken by stored position either way.
  size_t tiles_per_dim = 8;

  /// Seed of the kHash row mix.
  uint64_t hash_seed = 0x73686172ull;  // "shar"
};

/// Assigns every row of `rows` to a shard in [0, opts.num_shards). Total
/// (every row gets exactly one shard) and deterministic (a pure function of
/// the row contents, the schema and the options — independent of disk
/// layout, thread count, or any prior partitioning). Exposed separately
/// from Partition so the edge cases — empty shards, one dominant key,
/// more shards than rows, duplicate keys straddling a range boundary — can
/// be tested without a disk.
std::vector<int> AssignRowsToShards(const RowBatch& rows, const Schema& schema,
                                    const ShardPlanOptions& opts);

/// A frozen base dataset split into per-shard files on the same
/// SimulatedDisk, each a row-subset of the base in its original stored
/// order (so per-shard SRS/TRS sort and tile invariants hold: a subsequence
/// of sorted data is sorted). Shard files are created by Partition and are
/// part of the disk's frozen structure afterwards — build engines (and
/// their DiskViews / BufferPools / fault ceilings) only after partitioning.
class ShardedDataset {
 public:
  /// Splits `base` into opts.num_shards shard files. With num_shards == 1
  /// no files are created and shard(0) aliases the base file — zero
  /// partitioning IO, bit-identical single-shard execution. The read of the
  /// base and the shard writes are one-time preprocessing, reported in
  /// partition_io()/partition_millis() (charged to the base disk like
  /// PrepareDataset's serialization).
  static StatusOr<ShardedDataset> Partition(const PreparedDataset& base,
                                            const ShardPlanOptions& opts);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardPlanOptions& options() const { return opts_; }
  const PreparedDataset& base() const { return base_; }

  /// Shard s as a dataset on the base disk (s == 0 aliases the base file
  /// when num_shards == 1). May hold zero rows.
  const StoredDataset& shard(int s) const { return shards_[s]; }
  uint64_t shard_rows(int s) const { return shards_[s].num_rows(); }

  /// Rows per shard, in shard order.
  std::vector<uint64_t> RowsPerShard() const;

  IoStats partition_io() const { return partition_io_; }
  double partition_millis() const { return partition_millis_; }

 private:
  ShardedDataset(PreparedDataset base, ShardPlanOptions opts)
      : base_(std::move(base)), opts_(opts) {}

  PreparedDataset base_;
  ShardPlanOptions opts_;
  std::vector<StoredDataset> shards_;
  IoStats partition_io_;
  double partition_millis_ = 0;
};

}  // namespace nmrs

#endif  // NMRS_SHARD_SHARD_PLAN_H_
