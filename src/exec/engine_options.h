#ifndef NMRS_EXEC_ENGINE_OPTIONS_H_
#define NMRS_EXEC_ENGINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/query.h"
#include "shard/message_stats.h"
#include "storage/fault_injection.h"

namespace nmrs {

/// One options vocabulary for every executor — QueryEngine,
/// ShardedQueryEngine and the Database front door all consume this struct,
/// so the worker / cache / fault / replica / shared-scan / overlay knobs
/// cannot drift apart between entry points (they did once: the sharded
/// engine duplicated every field behind a nested `engine` member).
///
/// Field semantics are unchanged from the historical QueryEngineOptions;
/// `net` is the one sharded-only addition (single-shard executors ignore
/// it).
struct EngineOptions {
  /// Worker threads (0 = std::thread::hardware_concurrency()).
  size_t num_workers = 0;

  /// Per-query options template. Setting rs.num_threads > 1 additionally
  /// parallelizes each query's phase-1 candidate checks on the same pool
  /// (rs.executor is filled in by the engine when left null).
  RSOptions rs;

  /// Shared page-cache capacity in pages; 0 = no cache (seed-identical
  /// IO). When > 0 the engine owns one BufferPool over the frozen base
  /// disk (one per shard for the sharded engine), shared by all workers.
  /// See docs/CACHING.md.
  uint64_t cache_pages = 0;

  /// Deterministic storage fault injection (docs/ROBUSTNESS.md). When
  /// faults.enabled(), every query task reads through its own FaultyDisk
  /// whose fault stream is the query's batch index — so the faults query i
  /// sees are a pure function of (faults.seed, i, file, page, attempt),
  /// independent of worker count and work-stealing order.
  ///
  /// With rs.resilience.replicas > 1 this config is the *template* for
  /// every replica: replica 0 runs it verbatim, replica r runs it under
  /// seed ReplicaSet::ReplicaSeed(faults.seed, ..., r).
  FaultConfig faults;

  /// Explicit per-replica fault configs; overrides the `faults` template
  /// when non-empty (size must then equal rs.resilience.replicas; a
  /// disabled entry leaves that replica clean).
  std::vector<FaultConfig> replica_faults;

  /// Legacy error semantics: when true, RunBatch returns the first
  /// per-query error as a bare error status (after the whole batch has
  /// run), discarding the batch result. Default false = graceful
  /// degradation with per-query statuses.
  bool fail_fast = false;

  /// Extra attempts for a query whose run failed with a storage-fault
  /// status: the query is re-run on a clean view — no fault wrapper —
  /// modeling a replica read. Non-storage errors are never retried.
  int max_query_retries = 0;

  /// Cross-query scan sharing (docs/KERNELS.md): groups of
  /// `shared_scan_group` consecutive BRS/SRS queries run their phase 1
  /// through ONE pass over the dataset. Falls back to per-query execution
  /// under fault injection, replica failover, or other algorithms.
  bool shared_scan = false;
  size_t shared_scan_group = 16;

  /// Multi-tenant overlay re-check grouping (docs/OVERLAYS.md): re-check
  /// the overlay-sensitive candidates of up to `overlay_group` users per
  /// query through one pass over the dataset.
  size_t overlay_group = 16;

  /// Network cost model of the cross-shard pruner exchange
  /// (docs/SHARDING.md). Consumed by the sharded engine and by Database
  /// when num_shards > 1; the single-shard QueryEngine ignores it.
  MessageCostModel net;
};

/// Deprecation shim: the historical name for the single-shard executor's
/// options. New code should spell EngineOptions.
using QueryEngineOptions = EngineOptions;

/// Deprecation shim for call sites that built the sharded executor's
/// nested options struct (`sopts.engine.rs = ...; sopts.net = ...`).
/// ShardedQueryEngine accepts this alongside EngineOptions and flattens it;
/// new code should fill EngineOptions (which carries `net`) directly.
struct ShardedEngineOptions {
  EngineOptions engine;
  MessageCostModel net;

  EngineOptions Flatten() const {
    EngineOptions flat = engine;
    flat.net = net;
    return flat;
  }
};

}  // namespace nmrs

#endif  // NMRS_EXEC_ENGINE_OPTIONS_H_
