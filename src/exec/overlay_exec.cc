#include "exec/overlay_exec.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "common/timer.h"
#include "core/dominance.h"
#include "core/query_distance_table.h"
#include "sim/matrix_overlay.h"

namespace nmrs {

Status ClassifyOverlayRows(const StoredDataset& data, PagedReader* reader,
                           const std::vector<const MatrixOverlay*>& overlays,
                           const std::vector<AttrId>& selected,
                           OverlayClassification* out) {
  NMRS_CHECK(!selected.empty()) << "pass a resolved selection";
  Timer timer;
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;

  out->sensitive = RowBatch(m, numerics);
  out->user_rows.assign(overlays.size(), {});
  out->rows_scanned = 0;

  RowBatch page(m, numerics);
  std::vector<uint8_t> hit(overlays.size());
  for (PageId p = 0; p < data.num_pages(); ++p) {
    page.Clear();
    NMRS_RETURN_IF_ERROR(data.ReadPageVia(reader, p, &page));
    for (size_t i = 0; i < page.size(); ++i) {
      ++out->rows_scanned;
      const ValueId* vals = page.row_values(i);
      bool any = false;
      for (size_t u = 0; u < overlays.size(); ++u) {
        hit[u] = overlays[u] != nullptr &&
                 overlays[u]->RowSensitive(vals, selected);
        any |= hit[u] != 0;
      }
      if (!any) continue;
      const uint32_t idx = static_cast<uint32_t>(out->sensitive.size());
      out->sensitive.Append(page.id(i), vals, page.row_numerics(i));
      for (size_t u = 0; u < overlays.size(); ++u) {
        if (hit[u]) out->user_rows[u].push_back(idx);
      }
    }
  }
  out->classify_millis = timer.ElapsedMillis();
  return Status::OK();
}

Status RecheckOverlayGroup(const StoredDataset& data, PagedReader* reader,
                           const SimilaritySpace& space, const Object& query,
                           const std::vector<AttrId>& selected,
                           const std::vector<const MatrixOverlay*>& overlays,
                           const std::vector<size_t>& group_users,
                           const OverlayClassification& cls,
                           std::vector<std::vector<uint8_t>>* alive,
                           QueryStats* stats) {
  NMRS_CHECK_EQ(alive->size(), group_users.size());
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;

  // One overlaid (table, context) pair per group user; the contexts keep
  // their patched-column scratch across candidates and pages.
  std::vector<std::unique_ptr<QueryDistanceTable>> tables;
  std::vector<std::unique_ptr<PruneContext>> ctxs;
  std::vector<size_t> pending(group_users.size());
  tables.reserve(group_users.size());
  ctxs.reserve(group_users.size());
  for (size_t g = 0; g < group_users.size(); ++g) {
    const size_t u = group_users[g];
    NMRS_CHECK(overlays[u] != nullptr);
    NMRS_CHECK_EQ((*alive)[g].size(), cls.user_rows[u].size());
    tables.push_back(std::make_unique<QueryDistanceTable>(
        space, schema, query, selected, overlays[u]));
    ctxs.push_back(std::make_unique<PruneContext>(space, schema, query,
                                                  selected,
                                                  tables.back().get()));
    pending[g] = cls.user_rows[u].size();
  }

  RowBatch page(m, numerics);
  for (PageId p = 0; p < data.num_pages(); ++p) {
    bool anything_alive = false;
    for (size_t n : pending) anything_alive |= n > 0;
    if (!anything_alive) break;  // every candidate of every user pruned
    page.Clear();
    NMRS_RETURN_IF_ERROR(data.ReadPageVia(reader, p, &page));
    for (size_t g = 0; g < group_users.size(); ++g) {
      if (pending[g] == 0) continue;
      const size_t u = group_users[g];
      PruneContext& ctx = *ctxs[g];
      const std::vector<uint32_t>& rows = cls.user_rows[u];
      std::vector<uint8_t>& live = (*alive)[g];
      for (size_t j = 0; j < rows.size(); ++j) {
        if (!live[j]) continue;
        const uint32_t idx = rows[j];
        const RowId x_id = cls.sensitive.id(idx);
        ctx.SetCandidate(cls.sensitive.row_values(idx),
                         cls.sensitive.row_numerics(idx));
        for (size_t r = 0; r < page.size(); ++r) {
          if (page.id(r) == x_id) continue;  // a row never prunes itself
          ++stats->pair_tests;
          if (ctx.Prunes(page.row_values(r), page.row_numerics(r),
                         &stats->checks)) {
            live[j] = 0;
            --pending[g];
            break;
          }
        }
      }
    }
  }
  return Status::OK();
}

std::vector<RowId> MergeOverlayRows(const std::vector<RowId>& base_rows,
                                    const OverlayClassification& cls,
                                    size_t user,
                                    const std::vector<uint8_t>& alive) {
  const std::vector<uint32_t>& rows = cls.user_rows[user];
  NMRS_CHECK_EQ(alive.size(), rows.size());
  std::vector<RowId> sensitive_ids;
  sensitive_ids.reserve(rows.size());
  for (uint32_t idx : rows) sensitive_ids.push_back(cls.sensitive.id(idx));
  std::sort(sensitive_ids.begin(), sensitive_ids.end());

  std::vector<RowId> merged;
  merged.reserve(base_rows.size() + rows.size());
  for (RowId r : base_rows) {
    if (!std::binary_search(sensitive_ids.begin(), sensitive_ids.end(), r)) {
      merged.push_back(r);
    }
  }
  for (size_t j = 0; j < rows.size(); ++j) {
    if (alive[j]) merged.push_back(cls.sensitive.id(rows[j]));
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

}  // namespace nmrs
