#include "exec/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/block_rs.h"
#include "core/dominance.h"
#include "core/shard_exchange.h"
#include "exec/overlay_exec.h"
#include "sim/matrix_overlay.h"

namespace nmrs {

double ShardedBatchResult::ModeledMakespanMillis() const {
  double busiest = 0;
  for (size_t s = 0; s < shard_worker_modeled_millis.size(); ++s) {
    const std::vector<double>& lanes = shard_worker_modeled_millis[s];
    double total = 0;
    for (double w : lanes) total += w;
    double ideal =
        lanes.empty() ? 0.0 : total / static_cast<double>(lanes.size());
    if (s < shard_max_task_modeled_millis.size()) {
      ideal = std::max(ideal, shard_max_task_modeled_millis[s]);
    }
    busiest = std::max(busiest, ideal);
  }
  return busiest + ExchangeModeledMillis();
}

double ShardedBatchResult::ModeledQps() const {
  const double makespan = ModeledMakespanMillis();
  if (makespan <= 0) return 0;
  return static_cast<double>(results.size()) / (makespan / 1000.0);
}

double ShardedOverlayBatchResult::ModeledMakespanMillis() const {
  double overlay = 0;
  for (double w : overlay_worker_modeled_millis) {
    overlay = std::max(overlay, w);
  }
  return base.ModeledMakespanMillis() + overlay;
}

double ShardedOverlayBatchResult::ModeledQps() const {
  const double makespan = ModeledMakespanMillis();
  if (makespan <= 0) return 0;
  double answers = 0;
  for (const auto& q : results) answers += static_cast<double>(q.size());
  return answers / (makespan / 1000.0);
}

ShardedQueryEngine::ShardedQueryEngine(const ShardedDataset& sharded,
                                       const SimilaritySpace& space,
                                       Algorithm algo,
                                       EngineOptions opts)
    : sharded_(&sharded),
      space_(&space),
      algo_(algo),
      opts_(std::move(opts)),
      pool_(opts_.num_workers > 0
                ? opts_.num_workers
                : std::max(1u, std::thread::hardware_concurrency())) {
  SimulatedDisk* disk = sharded_->base().stored.disk();
  // Shard files were created by Partition before this constructor ran, so
  // they sit below the ceiling: shard pages fault and fail over exactly
  // like base pages, while per-query scratch spills stay exempt.
  fault_ceiling_ = disk->next_file_id();

  const EngineOptions& eng = opts_;
  ReplicaSetOptions rso_template;
  rso_template.num_replicas =
      std::clamp(eng.rs.resilience.replicas, 1,
                 static_cast<int>(IoStats::kMaxReplicas));
  rso_template.num_workers = static_cast<int>(pool_.num_threads());
  if (!eng.replica_faults.empty()) {
    NMRS_CHECK(eng.replica_faults.size() ==
               static_cast<size_t>(rso_template.num_replicas))
        << "replica_faults must cover every replica";
    rso_template.faults = eng.replica_faults;
  } else if (eng.faults.enabled()) {
    rso_template.faults = {eng.faults};
  }
  rso_template.replica_fault_seed_base =
      eng.rs.resilience.replica_fault_seed_base;
  rso_template.fault_ceiling = fault_ceiling_;

  const int num_shards = sharded_->num_shards();
  replica_sets_.reserve(num_shards);
  pool_caches_.resize(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    // One replica set per shard: per-(worker, shard) DiskViews with their
    // own arms and IO ledgers, so a shard's modeled time is what that
    // shard's machine would spend regardless of what other shards do on
    // the same host threads.
    replica_sets_.push_back(
        std::make_unique<ReplicaSet>(disk, rso_template));
    if (eng.cache_pages > 0 && !replica_sets_[s]->faulted()) {
      BufferPoolOptions pool_opts;
      pool_opts.capacity_pages = eng.cache_pages;
      pool_caches_[s] = std::make_unique<BufferPool>(disk, pool_opts);
    }
  }
}

StatusOr<ShardedBatchResult> ShardedQueryEngine::RunBatch(
    const std::vector<Object>& queries) {
  NMRS_RETURN_IF_ERROR(opts_.rs.resilience.Validate());

  const size_t num_queries = queries.size();
  const int S = sharded_->num_shards();
  const Schema& schema = sharded_->base().stored.schema();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  const size_t row_bytes = sharded_->base().stored.codec().row_bytes();

  // Shards that participate: empty shards have no rows to prune with and no
  // candidates to offer, so they are excluded from scatter, exchange and
  // verify. With one shard the (possibly empty) shard always runs — that
  // path must reproduce the plain engine exactly.
  std::vector<int> active;
  for (int s = 0; s < S; ++s) {
    if (S == 1 || sharded_->shard_rows(s) > 0) active.push_back(s);
  }

  ShardedBatchResult batch;
  batch.net = opts_.net;
  batch.results.resize(num_queries);
  batch.statuses.assign(num_queries, Status::OK());
  batch.breakdown.resize(num_queries);
  for (ShardQueryBreakdown& b : batch.breakdown) {
    b.shard_candidates.assign(static_cast<size_t>(S), 0);
  }
  batch.shard_worker_modeled_millis.assign(
      static_cast<size_t>(S),
      std::vector<double>(pool_.num_threads(), 0.0));
  batch.shard_max_task_modeled_millis.assign(static_cast<size_t>(S), 0.0);

  Timer timer;
  ConcurrentIoStats total_io;
  QuarantineLog quarantine;
  std::atomic<uint64_t> retried{0};
  std::mutex max_task_mu;
  // Records one task's modeled cost against its shard's critical-path
  // bound; lane += stays lock-free since each (shard, worker) lane is only
  // touched by its own pool worker.
  auto note_task = [&](size_t s, double modeled) {
    std::lock_guard<std::mutex> lock(max_task_mu);
    double& mx = batch.shard_max_task_modeled_millis[s];
    mx = std::max(mx, modeled);
  };

  // Per-(query, shard) scatter outputs; each slot is touched by exactly one
  // task, like BatchResult::results in the plain engine.
  std::vector<std::vector<ReverseSkylineResult>> local(num_queries);
  std::vector<std::vector<Status>> local_status(
      num_queries, std::vector<Status>(static_cast<size_t>(S), Status::OK()));
  std::vector<std::vector<RowBatch>> cand;
  cand.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    local[q].resize(static_cast<size_t>(S));
    cand.emplace_back();
    for (int s = 0; s < S; ++s) cand[q].emplace_back(m, numerics);
  }

  // Builds the per-task RSOptions the way QueryEngine does: shared cache,
  // checksum implication, batch-local quarantine, intra-query threads.
  auto make_rs = [&](int s) {
    RSOptions rs = opts_.rs;
    if (rs.num_threads > 1 && rs.executor == nullptr) rs.executor = &pool_;
    if (pool_caches_[s] != nullptr) {
      rs.cache_pages = true;
      rs.buffer_pool = pool_caches_[s].get();
    } else {
      rs.cache_pages = false;
      rs.buffer_pool = nullptr;
    }
    if (sharded_->shard(s).checksum_pages()) {
      rs.resilience.checksum_pages = true;
    }
    rs.resilience.quarantine_log = &quarantine;
    return rs;
  };

  // ---- Scatter: every (query, active shard) runs the full algorithm over
  // the shard's local rows, then serializes its surviving candidates for
  // the exchange. ----
  const bool shared_eligible =
      opts_.shared_scan && !replica_sets_[0]->faulted() &&
      replica_sets_[0]->num_replicas() == 1 &&
      (algo_ == Algorithm::kBRS || algo_ == Algorithm::kSRS);

  WaitGroup wg;
  if (shared_eligible && !queries.empty()) {
    ConcurrentIoStats shared_io;
    std::atomic<uint64_t> shared_batches{0};
    std::atomic<uint64_t> shared_groups{0};
    const size_t group_size =
        std::max<size_t>(1, opts_.shared_scan_group);
    const size_t num_groups = (num_queries + group_size - 1) / group_size;
    wg.Add(static_cast<int>(num_groups * active.size()));
    for (size_t g = 0; g < num_groups; ++g) {
      for (int s : active) {
        pool_.Submit([&, g, s] {
          const int w = pool_.CurrentWorkerIndex();
          NMRS_CHECK_GE(w, 0);
          ReplicaSet& rset = *replica_sets_[s];
          DiskView* view = rset.view(w, 0);
          const size_t lo = g * group_size;
          const size_t hi = std::min(num_queries, lo + group_size);
          RSOptions rs = make_rs(s);
          const StoredDataset& shard = sharded_->shard(s);
          StoredDataset shard_data(view, shard.file(), shard.schema(),
                                   shard.num_rows(), shard.checksum_pages());
          const std::vector<Object> group(queries.begin() + lo,
                                          queries.begin() + hi);
          SharedScanStats ss;
          const IoStats before = rset.WorkerStats(w);
          auto res = SharedScanReverseSkylines(
              shard_data, *space_, group, rs,
              /*ring_order=*/algo_ == Algorithm::kSRS, &ss);
          double modeled = ss.shared_millis + ss.modeled_backoff_millis +
                           IoCostModel{}.EstimateMillis(ss.shared_io);
          if (res.ok()) {
            for (size_t q = lo; q < hi; ++q) {
              local[q][s] = std::move((*res)[q - lo]);
              if (S > 1) {
                // Export: one scan collecting the survivors' row data —
                // the payload the shard would put on the wire.
                view->InvalidateArmPosition();
                const IoStats before_collect = rset.WorkerStats(w);
                PagedReader creader(view,
                                    rs.cache_pages ? rs.buffer_pool : nullptr,
                                    MakeReaderOptions(rs));
                cand[q][s].Clear();
                Status cs = CollectRowsById(shard_data, &creader,
                                            local[q][s].rows, &cand[q][s]);
                IoStats collect_io = rset.WorkerStats(w) - before_collect;
                creader.FoldStatsInto(&collect_io);
                local[q][s].stats.io += collect_io;
                local[q][s].stats.modeled_backoff_millis +=
                    creader.modeled_backoff_millis();
                if (!cs.ok()) local_status[q][s] = cs;
              }
              total_io.Add(local[q][s].stats.io);
              modeled += local[q][s].stats.ResponseMillis();
            }
            total_io.Add(ss.shared_io);
            shared_io.Add(ss.shared_io);
            shared_batches.fetch_add(ss.shared_batches,
                                     std::memory_order_relaxed);
            shared_groups.fetch_add(1, std::memory_order_relaxed);
          } else {
            for (size_t q = lo; q < hi; ++q) {
              local_status[q][s] = res.status();
            }
            const IoStats partial = rset.WorkerStats(w) - before;
            total_io.Add(partial);
            modeled = IoCostModel{}.EstimateMillis(partial);
          }
          batch.shard_worker_modeled_millis[s][static_cast<size_t>(w)] +=
              modeled;
          note_task(s, modeled);
          wg.Done();
        });
      }
    }
    wg.Wait();
    batch.shared_io = shared_io.Snapshot();
    batch.shared_scan_batches = shared_batches.load(std::memory_order_relaxed);
    batch.shared_scan_groups = shared_groups.load(std::memory_order_relaxed);
  } else {
    wg.Add(static_cast<int>(num_queries * active.size()));
    for (size_t q = 0; q < num_queries; ++q) {
      for (int s : active) {
        pool_.Submit([&, q, s] {
          const int w = pool_.CurrentWorkerIndex();
          NMRS_CHECK_GE(w, 0);
          ReplicaSet& rset = *replica_sets_[s];
          const int num_replicas = rset.num_replicas();
          DiskView* view = rset.view(w, 0);
          std::vector<std::unique_ptr<FaultyDisk>> wrappers;
          std::vector<SimulatedDisk*> disks =
              rset.MakeQueryDisks(w, Stream(q, s), &wrappers);
          SimulatedDisk* qdisk = disks[0];
          for (int r = 1; r < num_replicas; ++r) {
            rset.view(w, r)->InvalidateArmPosition();
          }

          RSOptions rs = make_rs(s);
          if (num_replicas > 1) {
            rs.failover_disks.assign(disks.begin() + 1, disks.end());
            rs.failover_limit = fault_ceiling_;
          }

          const StoredDataset& shard = sharded_->shard(s);
          const int attempts = 1 + std::max(0, opts_.max_query_retries);
          StatusOr<ReverseSkylineResult> result =
              Status::Internal("shard task never ran");
          for (int attempt = 0; attempt < attempts; ++attempt) {
            SimulatedDisk* attempt_disk = attempt == 0 ? qdisk : view;
            if (attempt == 1) {
              rs.failover_disks.clear();
              rs.failover_limit = PagedReaderOptions::kNoFailoverLimit;
            }
            PreparedDataset shard_prep{
                StoredDataset(attempt_disk, shard.file(), shard.schema(),
                              shard.num_rows(), shard.checksum_pages()),
                sharded_->base().attr_order,
                sharded_->base().prepare_millis};
            const IoStats before = rset.WorkerStats(w);
            result =
                RunReverseSkyline(shard_prep, *space_, queries[q], algo_, rs);
            if (result.ok() && S > 1) {
              // Export: collect the surviving candidates' row data through
              // the same (possibly faulty, failover-backed) disk — a real
              // shard re-reads rows to serialize them, and may fail doing
              // so, which counts as a failed attempt like any other.
              attempt_disk->InvalidateArmPosition();
              const IoStats before_collect = rset.WorkerStats(w);
              PagedReader creader(attempt_disk,
                                  rs.cache_pages ? rs.buffer_pool : nullptr,
                                  MakeReaderOptions(rs));
              cand[q][s].Clear();
              Status cs = CollectRowsById(shard_prep.stored, &creader,
                                          result->rows, &cand[q][s]);
              IoStats collect_io = rset.WorkerStats(w) - before_collect;
              creader.FoldStatsInto(&collect_io);
              result->stats.io += collect_io;
              result->stats.modeled_backoff_millis +=
                  creader.modeled_backoff_millis();
              if (!cs.ok()) result = cs;
            }
            if (result.ok()) {
              if (attempt > 0) retried.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            ReverseSkylineResult partial;
            partial.stats.io = rset.WorkerStats(w) - before;
            local[q][s] = std::move(partial);
            if (!result.status().IsStorageFault()) break;
          }

          if (result.ok()) {
            local[q][s] = std::move(*result);
          } else {
            local_status[q][s] = result.status();
          }
          total_io.Add(local[q][s].stats.io);
          batch.shard_worker_modeled_millis[s][static_cast<size_t>(w)] +=
              local[q][s].stats.ResponseMillis();
          note_task(s, local[q][s].stats.ResponseMillis());
          wg.Done();
        });
      }
    }
    wg.Wait();
  }

  // ---- Exchange bookkeeping (coordinator): fold shard failures into
  // per-query statuses, record candidate counts, and account the message
  // traffic of the three exchange rounds. ----
  const bool exchange = S > 1 && active.size() >= 2;
  std::vector<std::vector<uint64_t>> foreign_count(
      num_queries, std::vector<uint64_t>(static_cast<size_t>(S), 0));
  for (size_t q = 0; q < num_queries; ++q) {
    for (int s : active) {
      if (!local_status[q][s].ok() && batch.statuses[q].ok()) {
        batch.statuses[q] = local_status[q][s];
      }
      batch.breakdown[q].shard_candidates[s] = local[q][s].rows.size();
    }
    if (!exchange || !batch.statuses[q].ok()) continue;
    uint64_t total_bytes = 0;
    uint64_t total_count = 0;
    for (int s : active) {
      total_bytes += cand[q][s].size() * row_bytes;
      total_count += cand[q][s].size();
    }
    MessageStats& msg = batch.breakdown[q].messages;
    // Round 1 — candidate gather: every shard ships its local skyline.
    msg.messages += active.size();
    msg.bytes += total_bytes;
    msg.rounds += 1;
    // Round 2 — broadcast: each shard receives the other shards' rows.
    for (int s : active) {
      msg.messages += 1;
      msg.bytes += total_bytes - cand[q][s].size() * row_bytes;
      foreign_count[q][s] = total_count - cand[q][s].size();
    }
    msg.rounds += 1;
    // Round 3 — verdict gather: one bit per foreign candidate per shard.
    for (int s : active) {
      msg.messages += 1;
      msg.bytes += (foreign_count[q][s] + 7) / 8;
    }
    msg.rounds += 1;
  }

  // ---- Verify: each shard streams its local rows past the foreign
  // candidates; pruned verdicts come back positionally. ----
  std::vector<std::vector<std::vector<uint8_t>>> verdicts(
      num_queries,
      std::vector<std::vector<uint8_t>>(static_cast<size_t>(S)));
  std::vector<std::vector<QueryStats>> verify_stats(
      num_queries, std::vector<QueryStats>(static_cast<size_t>(S)));
  if (exchange) {
    for (size_t q = 0; q < num_queries; ++q) {
      if (!batch.statuses[q].ok()) continue;
      for (int s : active) {
        if (foreign_count[q][s] == 0) continue;
        wg.Add(1);
        pool_.Submit([&, q, s] {
          const int w = pool_.CurrentWorkerIndex();
          NMRS_CHECK_GE(w, 0);
          ReplicaSet& rset = *replica_sets_[s];
          const int num_replicas = rset.num_replicas();
          DiskView* view = rset.view(w, 0);
          std::vector<std::unique_ptr<FaultyDisk>> wrappers;
          std::vector<SimulatedDisk*> disks =
              rset.MakeQueryDisks(w, Stream(q, s), &wrappers);
          SimulatedDisk* qdisk = disks[0];
          for (int r = 1; r < num_replicas; ++r) {
            rset.view(w, r)->InvalidateArmPosition();
          }

          RSOptions rs = make_rs(s);
          if (num_replicas > 1) {
            rs.failover_disks.assign(disks.begin() + 1, disks.end());
            rs.failover_limit = fault_ceiling_;
          }

          // The merged broadcast, minus this shard's own candidates (it
          // already refined those in its local phase 2), concatenated in
          // shard order — the positional contract of the verdict bitmap.
          RowBatch foreign(m, numerics);
          for (int t : active) {
            if (t == s) continue;
            const RowBatch& c = cand[q][t];
            for (size_t i = 0; i < c.size(); ++i) {
              foreign.Append(c.id(i), c.row_values(i), c.row_numerics(i));
            }
          }

          const StoredDataset& shard = sharded_->shard(s);
          const int attempts = 1 + std::max(0, opts_.max_query_retries);
          Status vstatus = Status::OK();
          for (int attempt = 0; attempt < attempts; ++attempt) {
            SimulatedDisk* attempt_disk = attempt == 0 ? qdisk : view;
            if (attempt == 1) {
              rs.failover_disks.clear();
              rs.failover_limit = PagedReaderOptions::kNoFailoverLimit;
            }
            StoredDataset shard_data(attempt_disk, shard.file(),
                                     shard.schema(), shard.num_rows(),
                                     shard.checksum_pages());
            attempt_disk->InvalidateArmPosition();
            const IoStats before = rset.WorkerStats(w);
            PagedReader reader(attempt_disk,
                               rs.cache_pages ? rs.buffer_pool : nullptr,
                               MakeReaderOptions(rs));
            QueryStats vs;
            Timer verify_timer;
            vstatus = PruneCandidatesAgainstShard(shard_data, *space_,
                                                  queries[q], foreign, rs,
                                                  &reader, &verdicts[q][s],
                                                  &vs);
            vs.phase2_checks = vs.checks;
            vs.io = rset.WorkerStats(w) - before;
            reader.FoldStatsInto(&vs.io);
            vs.modeled_backoff_millis = reader.modeled_backoff_millis();
            vs.compute_millis = verify_timer.ElapsedMillis();
            vs.phase2_millis = vs.compute_millis;
            verify_stats[q][s] = vs;
            if (vstatus.ok()) {
              if (attempt > 0) retried.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            if (!vstatus.IsStorageFault()) break;
          }
          if (!vstatus.ok()) local_status[q][s] = vstatus;
          total_io.Add(verify_stats[q][s].io);
          batch.shard_worker_modeled_millis[s][static_cast<size_t>(w)] +=
              verify_stats[q][s].ResponseMillis();
          note_task(s, verify_stats[q][s].ResponseMillis());
          wg.Done();
        });
      }
    }
    wg.Wait();
  }

  // ---- Merge: a candidate is in the reverse skyline iff it survived its
  // home shard AND no other shard's verdict pruned it. Rows come out
  // sorted ascending, exactly as every single-shard algorithm emits them.
  // ----
  for (size_t q = 0; q < num_queries; ++q) {
    // Verify failures surface after the exchange loop above.
    for (int s : active) {
      if (!local_status[q][s].ok() && batch.statuses[q].ok()) {
        batch.statuses[q] = local_status[q][s];
      }
    }
    QueryStats merged;
    for (int s : active) merged.MergeFrom(local[q][s].stats);
    if (exchange) {
      for (int s : active) merged.MergeFrom(verify_stats[q][s]);
    }

    if (!batch.statuses[q].ok()) {
      batch.results[q] = ReverseSkylineResult{};
      batch.results[q].stats = merged;
      continue;
    }

    if (!exchange) {
      // One (possibly the only active) shard holds the whole answer.
      NMRS_CHECK_LE(active.size(), 1u);
      if (!active.empty()) {
        batch.results[q] = std::move(local[q][active[0]]);
      }
      continue;
    }

    std::vector<RowId> rows;
    for (int s : active) {
      const RowBatch& own = cand[q][s];
      for (size_t i = 0; i < own.size(); ++i) {
        bool alive = true;
        for (int t : active) {
          if (t == s) continue;
          // Position of (s, i) in t's foreign concat: candidates of shards
          // before s (skipping t itself), then i.
          size_t offset = 0;
          for (int u : active) {
            if (u == s) break;
            if (u == t) continue;
            offset += cand[q][u].size();
          }
          if (verdicts[q][t][offset + i] != 0) {
            alive = false;
            break;
          }
        }
        if (alive) rows.push_back(own.id(i));
      }
    }
    std::sort(rows.begin(), rows.end());
    merged.result_size = rows.size();
    batch.results[q].rows = std::move(rows);
    batch.results[q].stats = merged;
  }

  for (const ShardQueryBreakdown& b : batch.breakdown) {
    batch.total_messages += b.messages;
  }

  if (opts_.fail_fast) {
    Status first = batch.first_error();
    if (!first.ok()) return first;
  }
  batch.total_io = total_io.Snapshot();
  batch.wall_millis = timer.ElapsedMillis();
  batch.tasks_retried = retried.load(std::memory_order_relaxed);
  batch.quarantined = quarantine.Pages();
  if (opts_.rs.resilience.quarantine_log != nullptr) {
    for (const auto& [file, page] : batch.quarantined) {
      opts_.rs.resilience.quarantine_log->Report(file, page);
    }
  }
  return batch;
}

StatusOr<ShardedOverlayBatchResult> ShardedQueryEngine::RunOverlayBatch(
    const std::vector<Object>& queries,
    const std::vector<const MatrixOverlay*>& overlays) {
  NMRS_RETURN_IF_ERROR(opts_.rs.resilience.Validate());
  if (opts_.rs.overlay != nullptr) {
    return Status::InvalidArgument(
        "RunOverlayBatch: the engine's rs.overlay template must be null — "
        "the per-user overlays come from the overlays argument");
  }
  if (overlays.empty()) {
    return Status::InvalidArgument("RunOverlayBatch: no overlay users");
  }
  for (const MatrixOverlay* o : overlays) {
    if (o == nullptr) {
      return Status::InvalidArgument("RunOverlayBatch: null overlay");
    }
    if (&o->base() != space_) {
      return Status::InvalidArgument(
          "RunOverlayBatch: overlay built over a different base space");
    }
  }

  Timer timer;
  ShardedOverlayBatchResult out;
  out.results.resize(queries.size());
  for (auto& per_user : out.results) per_user.resize(overlays.size());
  out.statuses.assign(queries.size(), Status::OK());
  out.overlay_worker_modeled_millis.assign(pool_.num_threads(), 0.0);

  const StoredDataset& base_data = sharded_->base().stored;
  const std::vector<AttrId> selected =
      ResolveSelectedAttrs(base_data.schema(), opts_.rs.selected_attrs);

  // Classification and re-checks read the whole BASE dataset — sensitivity
  // and membership are properties of rows, not of the partitioning — on
  // clean worker views (shard 0's replica set views the same disk).
  PagedReaderOptions clean_reader_opts;
  clean_reader_opts.verify_checksums =
      base_data.checksum_pages() ||
      opts_.rs.resilience.checksum_pages;
  ReplicaSet& rset0 = *replica_sets_[0];

  // ---- 1. Query-independent classification, once per batch. ----
  OverlayClassification cls;
  {
    DiskView* view = rset0.view(0, 0);
    StoredDataset local(view, base_data.file(), base_data.schema(),
                        base_data.num_rows(), base_data.checksum_pages());
    PagedReader reader(view, nullptr, clean_reader_opts);
    const IoStats before = rset0.WorkerStats(0);
    NMRS_RETURN_IF_ERROR(
        ClassifyOverlayRows(local, &reader, overlays, selected, &cls));
    cls.io = rset0.WorkerStats(0) - before;
    reader.FoldStatsInto(&cls.io);
  }
  out.sensitive_rows = cls.TotalSensitive();
  out.invariant_rows = cls.TotalInvariant();
  out.overlay_worker_modeled_millis[0] +=
      cls.classify_millis + IoCostModel{}.EstimateMillis(cls.io);

  // ---- 2. One sharded base run per query. ----
  NMRS_ASSIGN_OR_RETURN(out.base, RunBatch(queries));
  out.statuses = out.base.statuses;

  // ---- 3. Grouped re-check scans over the base file. ----
  std::vector<size_t> scan_users;
  for (size_t u = 0; u < overlays.size(); ++u) {
    if (!cls.user_rows[u].empty()) scan_users.push_back(u);
  }
  const size_t group_size = std::max<size_t>(1, opts_.overlay_group);
  const size_t num_groups =
      (scan_users.size() + group_size - 1) / group_size;

  ConcurrentIoStats overlay_io;
  std::atomic<uint64_t> recheck_scans{0};
  std::atomic<uint64_t> recheck_checks{0};
  std::atomic<uint64_t> recheck_pair_tests{0};
  std::mutex status_mu;
  WaitGroup wg;

  for (size_t q = 0; q < queries.size(); ++q) {
    if (!out.statuses[q].ok()) continue;
    for (size_t u = 0; u < overlays.size(); ++u) {
      if (cls.user_rows[u].empty()) {
        out.results[q][u].rows = out.base.results[q].rows;
        out.results[q][u].stats.result_size = out.results[q][u].rows.size();
      }
    }
    for (size_t g = 0; g < num_groups; ++g) {
      wg.Add(1);
      pool_.Submit([this, &queries, &overlays, &out, &cls, &selected,
                    &scan_users, &overlay_io, &recheck_scans, &recheck_checks,
                    &recheck_pair_tests, &status_mu, &wg, &clean_reader_opts,
                    &base_data, &rset0, group_size, q, g] {
        const int w = pool_.CurrentWorkerIndex();
        NMRS_CHECK_GE(w, 0);
        Timer task_timer;
        DiskView* view = rset0.view(w, 0);
        StoredDataset local(view, base_data.file(), base_data.schema(),
                            base_data.num_rows(), base_data.checksum_pages());
        PagedReader reader(view, nullptr, clean_reader_opts);

        const size_t lo = g * group_size;
        const size_t hi = std::min(scan_users.size(), lo + group_size);
        const std::vector<size_t> group(scan_users.begin() + lo,
                                        scan_users.begin() + hi);
        std::vector<std::vector<uint8_t>> alive(group.size());
        for (size_t i = 0; i < group.size(); ++i) {
          alive[i].assign(cls.user_rows[group[i]].size(), 1);
        }

        QueryStats scan_stats;
        const IoStats before = rset0.WorkerStats(w);
        Status st = RecheckOverlayGroup(local, &reader, *space_, queries[q],
                                        selected, overlays, group, cls,
                                        &alive, &scan_stats);
        scan_stats.io = rset0.WorkerStats(w) - before;
        reader.FoldStatsInto(&scan_stats.io);
        scan_stats.compute_millis = task_timer.ElapsedMillis();
        overlay_io.Add(scan_stats.io);
        recheck_scans.fetch_add(1, std::memory_order_relaxed);
        recheck_checks.fetch_add(scan_stats.checks,
                                 std::memory_order_relaxed);
        recheck_pair_tests.fetch_add(scan_stats.pair_tests,
                                     std::memory_order_relaxed);
        if (st.ok()) {
          for (size_t i = 0; i < group.size(); ++i) {
            const size_t u = group[i];
            out.results[q][u].rows = MergeOverlayRows(
                out.base.results[q].rows, cls, u, alive[i]);
            out.results[q][u].stats.result_size =
                out.results[q][u].rows.size();
          }
        } else {
          std::lock_guard<std::mutex> lock(status_mu);
          if (out.statuses[q].ok()) out.statuses[q] = st;
        }
        out.overlay_worker_modeled_millis[static_cast<size_t>(w)] +=
            scan_stats.ResponseMillis();
        wg.Done();
      });
    }
  }
  wg.Wait();

  out.recheck_scans = recheck_scans.load(std::memory_order_relaxed);
  out.recheck_checks = recheck_checks.load(std::memory_order_relaxed);
  out.recheck_pair_tests =
      recheck_pair_tests.load(std::memory_order_relaxed);
  out.overlay_io = overlay_io.Snapshot();
  out.overlay_io += cls.io;
  out.total_io = out.base.total_io;
  out.total_io += out.overlay_io;
  out.wall_millis = timer.ElapsedMillis();
  return out;
}

}  // namespace nmrs
