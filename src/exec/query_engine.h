#ifndef NMRS_EXEC_QUERY_ENGINE_H_
#define NMRS_EXEC_QUERY_ENGINE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/pipeline.h"
#include "core/query.h"
#include "data/object.h"
#include "exec/engine_options.h"
#include "exec/thread_pool.h"
#include "sim/similarity_space.h"
#include "storage/buffer_pool.h"
#include "storage/disk_view.h"
#include "storage/fault_injection.h"
#include "storage/io_stats.h"
#include "storage/replica_set.h"

namespace nmrs {

// The executor options vocabulary (EngineOptions and the QueryEngineOptions
// alias) lives in exec/engine_options.h, shared with the sharded engine and
// the Database front door.

/// Outcome of one RunBatch call.
struct BatchResult {
  /// results[i] answers queries[i]. Without a cache, per-query stats are
  /// identical to what a sequential RunReverseSkyline of that query would
  /// report. With a shared cache (cache_pages > 0) the *rows* are still
  /// identical, but which query gets charged a miss depends on who touched
  /// the page first, so per-query IO becomes interleaving-dependent; only
  /// aggregate invariants survive (see docs/CACHING.md).
  std::vector<ReverseSkylineResult> results;

  /// statuses[i] is the outcome of queries[i]. On failure, results[i]
  /// holds no rows but still carries the partial IO the query charged
  /// before dying (its share of batch cost, folded into total_io too).
  std::vector<Status> statuses;

  /// True iff every query succeeded.
  bool ok() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return false;
    }
    return true;
  }

  /// The lowest-index failure, or OK if none — the status the legacy
  /// fail-fast API would have returned.
  Status first_error() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  size_t num_failed() const {
    size_t n = 0;
    for (const Status& s : statuses) n += s.ok() ? 0 : 1;
    return n;
  }

  /// Queries that failed a faulty run and succeeded on a clean-view re-run
  /// (QueryEngineOptions::max_query_retries).
  uint64_t queries_retried = 0;

  /// Shared-scan execution counters (QueryEngineOptions::shared_scan; all
  /// zero when it is off or every group fell back to per-query runs).
  /// `shared_scan_groups` = query groups that ran phase 1 through one
  /// shared pass; `shared_scan_batches` = memory-sized batches those passes
  /// loaded (each feeding every query of its group); `shared_io` = the
  /// shared passes' page IO, reported here once instead of Q times in
  /// per-query stats, and included in total_io. Under shared scans
  /// per-query QueryStats::io covers only that query's own scratch spills
  /// and phase-2 scan, so sum(results[i].stats.io) + shared_io ==
  /// total_io.
  uint64_t shared_scan_groups = 0;
  uint64_t shared_scan_batches = 0;
  IoStats shared_io;

  /// Pages any query in this batch gave up on (kDataLoss / kCorruption),
  /// sorted — the batch's quarantine set.
  std::vector<std::pair<FileId, PageId>> quarantined;

  /// Aggregate page IO over all queries (atomic accumulation across
  /// workers; equals the sum of results[i].stats.io). Without a cache it
  /// is independent of worker count and scheduling. With a cache, total
  /// reads+writes stay worker-count-invariant as long as the pool never
  /// evicts (misses = distinct pages, single-flight); under eviction
  /// pressure the totals depend on the interleaving, as on real hardware.
  IoStats total_io;

  /// Host wall-clock time of the batch.
  double wall_millis = 0;

  /// Per-worker modeled busy time: the sum of QueryStats::ResponseMillis
  /// (compute + modeled disk latency) over the queries that worker ran.
  /// Each worker owns a private DiskView — its own spindle — so workers
  /// overlap; the batch's modeled makespan is the busiest worker.
  std::vector<double> worker_modeled_millis;

  double ModeledMakespanMillis() const;

  /// Queries per modeled second: results.size() / makespan.
  double ModeledQps() const;
};

/// Outcome of one RunOverlayBatch call: Q queries answered for K overlay
/// users each, via one base-space run per query plus incremental re-pruning
/// of the overlay-sensitive candidates (docs/OVERLAYS.md).
struct OverlayBatchResult {
  /// results[q][u] answers queries[q] under overlays[u]: rows are
  /// bit-identical to rebuilding user u's patched SimilaritySpace and
  /// running the full algorithm over it. Per-(q,u) stats carry only
  /// result_size — the shared work (base run, classification, re-check
  /// scans) is reported once in the batch-level fields below, because
  /// attributing one shared scan to K users would double-count it.
  std::vector<std::vector<ReverseSkylineResult>> results;

  /// statuses[q] is the outcome of queries[q] (for all of its users: the
  /// base run and the re-check scans are shared, so they fail together).
  std::vector<Status> statuses;

  bool ok() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return false;
    }
    return true;
  }
  Status first_error() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  /// The underlying base-space batch (one entry per query): its rows are
  /// the overlay-invariant answer, its stats/IO the phase the users share.
  BatchResult base;

  /// Overlay telemetry. `sensitive_rows` / `invariant_rows` sum the
  /// per-user classification over all users (their sum is rows * users);
  /// `recheck_scans` counts the grouped re-check passes over the dataset
  /// (<= queries * ceil(users / overlay_group)); `recheck_checks` /
  /// `recheck_pair_tests` aggregate the re-check pruning work.
  uint64_t sensitive_rows = 0;
  uint64_t invariant_rows = 0;
  uint64_t recheck_scans = 0;
  uint64_t recheck_checks = 0;
  uint64_t recheck_pair_tests = 0;

  /// IO of the classification pass + all re-check scans (excluded from
  /// base.total_io; total_io below is the whole batch).
  IoStats overlay_io;

  /// Aggregate IO: base batch + classification + re-check scans.
  IoStats total_io;

  double wall_millis = 0;

  /// Per-worker modeled busy time including the base batch's: makespan /
  /// QPS are comparable against running the per-user rebuild through the
  /// same engine. ModeledQps counts queries * users answers.
  std::vector<double> worker_modeled_millis;

  double ModeledMakespanMillis() const;
  double ModeledQps() const;
};

/// Shared-nothing parallel executor for reverse-skyline query batches: one
/// immutable PreparedDataset, N pool workers, each worker reading the
/// dataset through a private DiskView (per-query IO accounting therefore
/// matches a sequential run exactly) and spilling phase-1 survivors to
/// view-local scratch files. Queries of a batch fan out across the pool's
/// work-stealing deques; results land at their query's index.
///
/// The base disk must stay structurally frozen (no file creation/writes)
/// for the engine's lifetime; the SimilaritySpace and PreparedDataset are
/// borrowed and must outlive it.
class QueryEngine {
 public:
  QueryEngine(const PreparedDataset& prepared, const SimilaritySpace& space,
              Algorithm algo, EngineOptions opts = {});

  size_t num_workers() const { return pool_.num_threads(); }
  Algorithm algorithm() const { return algo_; }

  /// Storage replicas this engine reads through (>= 1 always exists; the
  /// single-replica set is what used to be the per-worker view list).
  const ReplicaSet& replicas() const { return *replica_set_; }

  /// The shared page cache, or null when cache_pages was 0. Its stats()
  /// aggregate over every batch run so far.
  const BufferPool* buffer_pool() const { return pool_cache_.get(); }

  /// Runs every query, blocking until the batch completes. Each query's
  /// outcome lands in BatchResult::statuses; failed queries report their
  /// partial stats while the rest of the batch returns real results. The
  /// call-level StatusOr is an error only for batch-level problems — or,
  /// with fail_fast set, the first per-query error (legacy semantics).
  StatusOr<BatchResult> RunBatch(const std::vector<Object>& queries);

  /// Answers every query for every overlay user with incremental
  /// re-pruning (docs/OVERLAYS.md): ONE base-space run per query through
  /// the normal RunBatch machinery (workers, cache, kernels, shared scans,
  /// faults, failover — everything applies), one query-independent
  /// classification pass splitting rows into overlay-invariant vs
  /// overlay-sensitive per user, and one re-check scan per (query, group
  /// of overlay_group users) deciding only the sensitive candidates under
  /// that user's overlaid distances. Rows are bit-identical to rebuilding
  /// each user's patched space and running the batch per user.
  ///
  /// Every overlay must be non-null and built over this engine's space;
  /// the engine's rs.overlay template must be null (the per-user overlays
  /// come from `overlays`, and the base run must see the base space).
  StatusOr<OverlayBatchResult> RunOverlayBatch(
      const std::vector<Object>& queries,
      const std::vector<const MatrixOverlay*>& overlays);

 private:
  const PreparedDataset* prepared_;
  const SimilaritySpace* space_;
  Algorithm algo_;
  EngineOptions opts_;
  ThreadPool pool_;
  // Per-(worker, replica) views plus per-replica fault oracles; replaces
  // the old per-worker view list + single injector (a 1-replica set is
  // exactly that).
  std::unique_ptr<ReplicaSet> replica_set_;
  std::unique_ptr<BufferPool> pool_cache_;  // shared; null = off
};

}  // namespace nmrs

#endif  // NMRS_EXEC_QUERY_ENGINE_H_
