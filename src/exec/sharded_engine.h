#ifndef NMRS_EXEC_SHARDED_ENGINE_H_
#define NMRS_EXEC_SHARDED_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/pipeline.h"
#include "core/query.h"
#include "data/object.h"
#include "exec/engine_options.h"
#include "exec/query_engine.h"
#include "exec/thread_pool.h"
#include "shard/message_stats.h"
#include "shard/shard_plan.h"
#include "sim/similarity_space.h"
#include "storage/buffer_pool.h"
#include "storage/replica_set.h"

namespace nmrs {

// The sharded executor consumes the same EngineOptions as QueryEngine
// (exec/engine_options.h): every shard is modeled as one machine with
// `num_workers` workers, `rs.memory` pages of working memory, its own
// `cache_pages` page cache, and — with resilience.replicas > 1 — its own
// replica set; `net` is the network cost model of the pruner exchange.
// ShardedEngineOptions (same header) is the deprecated nested form.

/// Per-query sharding telemetry.
struct ShardQueryBreakdown {
  /// Local reverse-skyline sizes per shard — the phase-1 candidate counts
  /// the exchange ships (zero for shards the query failed on).
  std::vector<uint64_t> shard_candidates;
  /// This query's exchange traffic (zero with one shard: no exchange runs).
  MessageStats messages;
};

/// Outcome of one ShardedQueryEngine::RunBatch, mirroring BatchResult with
/// per-(shard, worker) modeled time and the exchange ledger added.
struct ShardedBatchResult {
  /// results[i] answers queries[i]: rows are bit-identical to single-shard
  /// execution for every shard count; stats are the sum over the query's
  /// per-shard local runs, export scans and verify passes (deterministic
  /// for a fixed shard count, but shard-count-dependent — see
  /// docs/SHARDING.md).
  std::vector<ReverseSkylineResult> results;
  std::vector<Status> statuses;
  std::vector<ShardQueryBreakdown> breakdown;

  bool ok() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return false;
    }
    return true;
  }
  Status first_error() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }
  size_t num_failed() const {
    size_t n = 0;
    for (const Status& s : statuses) n += s.ok() ? 0 : 1;
    return n;
  }

  /// (query, shard) tasks that failed a faulty run and succeeded on a
  /// clean-view re-run (QueryEngineOptions::max_query_retries).
  uint64_t tasks_retried = 0;

  /// Shared-scan counters, as in BatchResult but per (group, shard) pass.
  uint64_t shared_scan_groups = 0;
  uint64_t shared_scan_batches = 0;
  IoStats shared_io;

  std::vector<std::pair<FileId, PageId>> quarantined;
  IoStats total_io;

  /// Exchange traffic summed over all queries.
  MessageStats total_messages;

  double wall_millis = 0;

  /// modeled[s][w]: modeled busy time of worker w on shard s. Each shard is
  /// one machine whose workers own private DiskViews of the shard replica
  /// set, so all S x W (shard, worker) lanes overlap.
  std::vector<std::vector<double>> shard_worker_modeled_millis;

  /// Largest single modeled task (one query's scatter run or verify pass)
  /// per shard: the critical-path lower bound ModeledMakespanMillis uses.
  std::vector<double> shard_max_task_modeled_millis;

  /// The cost model the batch ran under (copied from the options so the
  /// makespan math is self-contained).
  MessageCostModel net;

  double ExchangeModeledMillis() const {
    return net.EstimateMillis(total_messages);
  }

  /// Busiest shard under an idealized per-shard schedule, plus the
  /// exchange cost. Each shard is one machine with W worker lanes, so its
  /// phase time is the LPT bound max(total_modeled_work / W, largest
  /// single task) — deterministic in the task set rather than in how the
  /// host pool happened to interleave tasks (the raw lanes stay available
  /// as telemetry). Shards overlap; the exchange is modeled as serialized
  /// through the gather coordinator (a deliberately conservative model —
  /// see docs/SHARDING.md).
  double ModeledMakespanMillis() const;
  double ModeledQps() const;
};

/// Outcome of one ShardedQueryEngine::RunOverlayBatch: Q queries answered
/// for K overlay users via one sharded base run per query plus incremental
/// re-pruning over the base dataset (docs/OVERLAYS.md). Mirrors
/// OverlayBatchResult with the sharded base batch inside.
struct ShardedOverlayBatchResult {
  /// results[q][u]: rows bit-identical to a per-user patched-space rebuild
  /// run through the same sharded engine (which is itself bit-identical to
  /// single-shard execution). Per-(q,u) stats carry only result_size; the
  /// shared phases are reported once below.
  std::vector<std::vector<ReverseSkylineResult>> results;
  std::vector<Status> statuses;

  bool ok() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return false;
    }
    return true;
  }
  Status first_error() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  /// The sharded base-space batch the users share.
  ShardedBatchResult base;

  uint64_t sensitive_rows = 0;
  uint64_t invariant_rows = 0;
  uint64_t recheck_scans = 0;
  uint64_t recheck_checks = 0;
  uint64_t recheck_pair_tests = 0;

  /// IO of the classification pass + re-check scans (over the base file,
  /// through clean views; not part of base.total_io).
  IoStats overlay_io;
  IoStats total_io;

  double wall_millis = 0;

  /// Per-worker modeled busy time of the overlay phases only (the base
  /// batch models its own lanes); the phases are serialized: base batch,
  /// then the overlay scans on the same worker lanes.
  std::vector<double> overlay_worker_modeled_millis;

  /// base.ModeledMakespanMillis() + the busiest overlay lane.
  double ModeledMakespanMillis() const;
  double ModeledQps() const;  // queries * users / makespan
};

/// Scatter/gather executor over a ShardedDataset (docs/SHARDING.md): every
/// query fans out to all non-empty shards, each shard runs the *complete*
/// configured algorithm (naive/BRS/SRS/TRS — kernels, adaptive dispatch,
/// caching, faults and failover all apply per shard, unchanged) over its
/// local rows, producing its local reverse skyline; the pruner exchange
/// then gathers every shard's surviving candidates, broadcasts the merged
/// set back, and each shard streams its local rows past the foreign
/// candidates (pruned local rows still prune — the relation is not
/// transitive). A candidate survives iff every shard's verdict clears it,
/// which makes the merged row set bit-identical to single-shard execution
/// by construction, for any partitioning.
///
/// Determinism contract: rows and statuses are independent of worker count
/// and scheduling, and equal to the single-shard rows for every shard
/// count. With num_shards == 1 over a Partition(num_shards=1) dataset the
/// engine reads the base file itself with fault stream == the query index
/// — counters and IO then reproduce QueryEngine bit-for-bit. With more
/// shards, per-query counters are deterministic for a fixed shard count
/// but necessarily differ from the single-shard counters.
///
/// Fault streams: (query q, shard s) reads under stream q + (s << 32), a
/// pure function of the pair, so fault patterns stay independent of worker
/// count; shard 0 keeps stream q, preserving the single-shard pattern.
class ShardedQueryEngine {
 public:
  /// `sharded`, `space` are borrowed and must outlive the engine; the base
  /// disk must stay structurally frozen for the engine's lifetime (the
  /// ShardedDataset's files are part of the frozen structure).
  ShardedQueryEngine(const ShardedDataset& sharded,
                     const SimilaritySpace& space, Algorithm algo,
                     EngineOptions opts = {});

  /// Deprecation shim for the historical nested-options form; flattens
  /// into EngineOptions (opts.engine with opts.net grafted on).
  ShardedQueryEngine(const ShardedDataset& sharded,
                     const SimilaritySpace& space, Algorithm algo,
                     const ShardedEngineOptions& opts)
      : ShardedQueryEngine(sharded, space, algo, opts.Flatten()) {}

  size_t num_workers() const { return pool_.num_threads(); }
  int num_shards() const { return sharded_->num_shards(); }
  Algorithm algorithm() const { return algo_; }

  /// Shard s's replica set / page cache (cache null when cache_pages == 0
  /// or the batch runs fault injection, as in QueryEngine).
  const ReplicaSet& replicas(int s) const { return *replica_sets_[s]; }
  const BufferPool* buffer_pool(int s) const { return pool_caches_[s].get(); }

  /// Runs every query through scatter -> exchange -> verify -> merge,
  /// blocking until the batch completes. Per-query isolation as in
  /// QueryEngine: a storage fault on any shard fails only that query.
  StatusOr<ShardedBatchResult> RunBatch(const std::vector<Object>& queries);

  /// Answers every query for every overlay user (docs/OVERLAYS.md): one
  /// sharded base run per query through RunBatch (scatter, exchange,
  /// verify, faults, failover — everything applies), one classification
  /// pass over the base dataset, and grouped re-check scans of the
  /// overlay-sensitive candidates through clean views. Rows are
  /// bit-identical to rebuilding each user's patched space and running the
  /// sharded batch per user. Overlays must be non-null, built over this
  /// engine's space; the engine's rs.overlay template must be null.
  StatusOr<ShardedOverlayBatchResult> RunOverlayBatch(
      const std::vector<Object>& queries,
      const std::vector<const MatrixOverlay*>& overlays);

 private:
  uint64_t Stream(size_t query, int shard) const {
    return static_cast<uint64_t>(query) +
           (static_cast<uint64_t>(shard) << 32);
  }

  const ShardedDataset* sharded_;
  const SimilaritySpace* space_;
  Algorithm algo_;
  EngineOptions opts_;
  ThreadPool pool_;
  FileId fault_ceiling_;
  // Per-shard replica sets and page caches: per-(worker, shard) DiskViews
  // live inside the replica sets; per-shard pools route each shard's pages
  // through its own cache.
  std::vector<std::unique_ptr<ReplicaSet>> replica_sets_;
  std::vector<std::unique_ptr<BufferPool>> pool_caches_;
};

}  // namespace nmrs

#endif  // NMRS_EXEC_SHARDED_ENGINE_H_
