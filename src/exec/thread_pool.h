#ifndef NMRS_EXEC_THREAD_POOL_H_
#define NMRS_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace nmrs {

/// Fixed-size work-stealing thread pool (the NMSLIB-style executor the
/// parallel query engine runs on): every worker owns a deque, Submit
/// round-robins tasks across the deques, idle workers first drain their own
/// deque front-to-back and then steal from the back of a victim's deque;
/// workers with nothing to run park on a condition variable until the next
/// Submit (or shutdown) wakes them.
///
/// Tasks must not throw. Tasks may Submit further tasks (the intra-query
/// phase-1 chunks do); a task blocking on work it has submitted must keep
/// making progress itself, as ParallelChunks does, because all workers may
/// be occupied. The destructor runs every task already submitted, then
/// joins; submitting concurrently with destruction is a bug.
class ThreadPool : public TaskExecutor {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task` for asynchronous execution.
  void Submit(std::function<void()> task);

  /// TaskExecutor hook (same as Submit) — lets core/ algorithms borrow pool
  /// threads through the common/sync.h interface.
  void Schedule(std::function<void()> fn) override { Submit(std::move(fn)); }

  /// Index in [0, num_threads) of the pool worker the calling thread is, or
  /// -1 when called from a thread this pool does not own. Used to key
  /// per-worker state (the query engine's per-worker DiskViews).
  int CurrentWorkerIndex() const;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t index);
  bool TryPopOwn(size_t index, std::function<void()>* task);
  bool TrySteal(size_t thief, std::function<void()>* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Parking lot: workers wait here when every deque is empty. `pending_` is
  // incremented before a task becomes visible in a deque and decremented by
  // the worker that dequeued it, so the wait predicate never misses work.
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<uint64_t> pending_{0};
  std::atomic<bool> stop_{false};

  std::atomic<uint64_t> next_queue_{0};  // round-robin Submit target
};

}  // namespace nmrs

#endif  // NMRS_EXEC_THREAD_POOL_H_
