#ifndef NMRS_EXEC_OVERLAY_EXEC_H_
#define NMRS_EXEC_OVERLAY_EXEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "data/object.h"
#include "data/stored_dataset.h"
#include "sim/similarity_space.h"
#include "storage/paged_reader.h"

namespace nmrs {

class MatrixOverlay;

/// Query-independent classification of a dataset against K user overlays
/// (docs/OVERLAYS.md). A candidate row X is overlay-SENSITIVE for user u iff
/// some selected categorical attribute a has a delta entry whose destination
/// is x_a: those are exactly the rows whose pruning checks read a patched
/// matrix column d_a(., x_a), so every other row ("overlay-invariant") keeps
/// its base-space reverse-skyline membership verbatim — for any query. The
/// classification depends only on (dataset, overlays, selection) and is
/// computed once per batch, then reused by every query.
struct OverlayClassification {
  /// Union of the rows sensitive for at least one user, stashed once so the
  /// re-check scans never have to re-find their candidate rows on disk.
  RowBatch sensitive{0, false};

  /// user_rows[u] = indices into `sensitive` of user u's sensitive rows, in
  /// dataset scan order.
  std::vector<std::vector<uint32_t>> user_rows;

  uint64_t rows_scanned = 0;
  IoStats io;
  double classify_millis = 0;

  /// Sum over users of |user_rows[u]| / (rows_scanned - |user_rows[u]|).
  uint64_t TotalSensitive() const {
    uint64_t n = 0;
    for (const auto& v : user_rows) n += v.size();
    return n;
  }
  uint64_t TotalInvariant() const {
    return rows_scanned * user_rows.size() - TotalSensitive();
  }
};

/// One pass over `data` via `reader`, filling `out`. Overlays must all be
/// built over the same base space; null or empty overlays mark every row
/// invariant for that user. `selected` must be resolved (non-empty).
Status ClassifyOverlayRows(const StoredDataset& data, PagedReader* reader,
                           const std::vector<const MatrixOverlay*>& overlays,
                           const std::vector<AttrId>& selected,
                           OverlayClassification* out);

/// Re-checks the sensitive candidates of a GROUP of users for one query in a
/// single pass over the dataset: page -> user -> alive candidate -> rows,
/// with the standard early abort (a pruned candidate is never re-checked)
/// and the identity skip (a row never prunes itself). Each user's checks run
/// under that user's overlaid distances via an overlay-aware
/// QueryDistanceTable + PruneContext, so the verdicts are bit-identical to
/// running any full algorithm over the patched space.
///
/// (*alive)[g][j] — for group_users[g]'s j-th sensitive candidate — must
/// arrive sized and set to 1; pruned candidates are cleared to 0. Check and
/// pair-test counts plus scan IO land in *stats (io is NOT measured here —
/// the caller diffs its disk counters around the call).
Status RecheckOverlayGroup(const StoredDataset& data, PagedReader* reader,
                           const SimilaritySpace& space, const Object& query,
                           const std::vector<AttrId>& selected,
                           const std::vector<const MatrixOverlay*>& overlays,
                           const std::vector<size_t>& group_users,
                           const OverlayClassification& cls,
                           std::vector<std::vector<uint8_t>>* alive,
                           QueryStats* stats);

/// Final rows of (query, user): the base-space rows minus the user's
/// sensitive rows, plus the sensitive candidates that survived the
/// re-check, sorted ascending — exactly the overlaid reverse skyline,
/// because invariant rows keep their base membership.
std::vector<RowId> MergeOverlayRows(const std::vector<RowId>& base_rows,
                                    const OverlayClassification& cls,
                                    size_t user,
                                    const std::vector<uint8_t>& alive);

}  // namespace nmrs

#endif  // NMRS_EXEC_OVERLAY_EXEC_H_
