#include "exec/thread_pool.h"

#include "common/check.h"

namespace nmrs {

namespace {
// Identity of the worker running the current thread, if any. Keyed by pool
// pointer so nested pools (or a pool used from another pool's worker) do
// not confuse each other.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  {
    // Empty critical section: pairs with the wait in WorkerLoop so no
    // worker can check the predicate and park after stop_ is set but
    // before the notify below.
    std::lock_guard<std::mutex> lock(park_mu_);
  }
  park_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::CurrentWorkerIndex() const {
  return tls_pool == this ? tls_worker_index : -1;
}

void ThreadPool::Submit(std::function<void()> task) {
  NMRS_CHECK(task != nullptr);
  const size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  {
    // Empty critical section: a worker that evaluated the park predicate
    // before the pending_ increment above holds park_mu_ until it is
    // actually asleep, so acquiring the mutex here guarantees the notify
    // below cannot fall into its predicate-to-sleep window.
    std::lock_guard<std::mutex> lock(park_mu_);
  }
  park_cv_.notify_one();
}

bool ThreadPool::TryPopOwn(size_t index, std::function<void()>* task) {
  Worker& w = *workers_[index];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.tasks.empty()) return false;
  *task = std::move(w.tasks.front());
  w.tasks.pop_front();
  return true;
}

bool ThreadPool::TrySteal(size_t thief, std::function<void()>* task) {
  const size_t n = workers_.size();
  for (size_t off = 1; off < n; ++off) {
    Worker& victim = *workers_[(thief + off) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    *task = std::move(victim.tasks.back());
    victim.tasks.pop_back();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_pool = this;
  tls_worker_index = static_cast<int>(index);
  std::function<void()> task;
  for (;;) {
    if (TryPopOwn(index, &task) || TrySteal(index, &task)) {
      pending_.fetch_sub(1, std::memory_order_acquire);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mu_);
    park_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace nmrs
