#include "exec/query_engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/block_rs.h"
#include "core/dominance.h"
#include "exec/overlay_exec.h"
#include "sim/matrix_overlay.h"

namespace nmrs {

double BatchResult::ModeledMakespanMillis() const {
  double makespan = 0;
  for (double w : worker_modeled_millis) makespan = std::max(makespan, w);
  return makespan;
}

double BatchResult::ModeledQps() const {
  const double makespan = ModeledMakespanMillis();
  if (makespan <= 0) return 0;
  return static_cast<double>(results.size()) / (makespan / 1000.0);
}

double OverlayBatchResult::ModeledMakespanMillis() const {
  double makespan = 0;
  for (double w : worker_modeled_millis) makespan = std::max(makespan, w);
  return makespan;
}

double OverlayBatchResult::ModeledQps() const {
  const double makespan = ModeledMakespanMillis();
  if (makespan <= 0) return 0;
  double answers = 0;
  for (const auto& q : results) answers += static_cast<double>(q.size());
  return answers / (makespan / 1000.0);
}

QueryEngine::QueryEngine(const PreparedDataset& prepared,
                         const SimilaritySpace& space, Algorithm algo,
                         QueryEngineOptions opts)
    : prepared_(&prepared),
      space_(&space),
      algo_(algo),
      opts_(opts),
      pool_(opts.num_workers > 0 ? opts.num_workers
                                 : std::max(1u,
                                            std::thread::hardware_concurrency())) {
  ReplicaSetOptions rso;
  rso.num_replicas =
      std::clamp(opts_.rs.resilience.replicas, 1,
                 static_cast<int>(IoStats::kMaxReplicas));
  rso.num_workers = static_cast<int>(pool_.num_threads());
  if (!opts_.replica_faults.empty()) {
    NMRS_CHECK(opts_.replica_faults.size() ==
               static_cast<size_t>(rso.num_replicas))
        << "replica_faults must cover every replica";
    rso.faults = opts_.replica_faults;
  } else if (opts_.faults.enabled()) {
    rso.faults = {opts_.faults};  // template; ReplicaSet derives the seeds
  }
  rso.replica_fault_seed_base = opts_.rs.resilience.replica_fault_seed_base;
  rso.fault_ceiling = prepared_->stored.disk()->next_file_id();
  replica_set_ =
      std::make_unique<ReplicaSet>(prepared_->stored.disk(), std::move(rso));

  // Fault batches run shared-nothing (see QueryEngineOptions::faults): a
  // shared cache would let one query's faulted fetch leak into another
  // query's reads in a scheduling-dependent way.
  if (opts_.cache_pages > 0 && !replica_set_->faulted()) {
    BufferPoolOptions pool_opts;
    pool_opts.capacity_pages = opts_.cache_pages;
    pool_cache_ = std::make_unique<BufferPool>(prepared_->stored.disk(),
                                               pool_opts);
  }
}

StatusOr<BatchResult> QueryEngine::RunBatch(
    const std::vector<Object>& queries) {
  // Reject out-of-range policies up front instead of bending them: the
  // constructor clamps replicas to build a usable ReplicaSet, but running
  // a batch under a policy the accounting cannot represent would silently
  // drop replica reads (see ResiliencePolicy::Validate).
  NMRS_RETURN_IF_ERROR(opts_.rs.resilience.Validate());

  BatchResult batch;
  batch.results.resize(queries.size());
  batch.statuses.assign(queries.size(), Status::OK());
  batch.worker_modeled_millis.assign(pool_.num_threads(), 0.0);

  Timer timer;
  ConcurrentIoStats total_io;
  QuarantineLog quarantine;
  std::atomic<uint64_t> retried{0};
  WaitGroup wg;

  // Cross-query scan sharing applies when nothing couples a query to its
  // own private disk wrapper: no fault injection (a shared fetch must be
  // clean for everyone), no replica failover (failover views are per query
  // task), and a BRS/SRS plan (the shared pass implements their phase 1).
  const bool shared_eligible =
      opts_.shared_scan && !replica_set_->faulted() &&
      replica_set_->num_replicas() == 1 &&
      (algo_ == Algorithm::kBRS || algo_ == Algorithm::kSRS);
  if (shared_eligible && !queries.empty()) {
    ConcurrentIoStats shared_io;
    std::atomic<uint64_t> shared_batches{0};
    std::atomic<uint64_t> shared_groups{0};
    // Groups are formed by query index, so membership — and therefore
    // every per-query result and the batch totals — is independent of
    // worker count and work-stealing order; only which worker runs a
    // group varies.
    const size_t group_size = std::max<size_t>(1, opts_.shared_scan_group);
    const size_t num_groups = (queries.size() + group_size - 1) / group_size;
    wg.Add(static_cast<int>(num_groups));
    for (size_t g = 0; g < num_groups; ++g) {
      pool_.Submit([this, &queries, &batch, &total_io, &quarantine,
                    &shared_io, &shared_batches, &shared_groups, &wg,
                    group_size, g] {
        const int w = pool_.CurrentWorkerIndex();
        NMRS_CHECK_GE(w, 0);
        DiskView* view = replica_set_->view(w, 0);
        const size_t lo = g * group_size;
        const size_t hi = std::min(queries.size(), lo + group_size);

        RSOptions rs = opts_.rs;
        if (pool_cache_ != nullptr) {
          rs.cache_pages = true;
          rs.buffer_pool = pool_cache_.get();
        } else {
          rs.cache_pages = false;
          rs.buffer_pool = nullptr;
        }
        if (prepared_->stored.checksum_pages()) {
          rs.resilience.checksum_pages = true;
        }
        rs.resilience.quarantine_log = &quarantine;

        StoredDataset local(view, prepared_->stored.file(),
                            prepared_->stored.schema(),
                            prepared_->stored.num_rows(),
                            prepared_->stored.checksum_pages());
        const std::vector<Object> group(queries.begin() + lo,
                                        queries.begin() + hi);
        SharedScanStats ss;
        const IoStats before = replica_set_->WorkerStats(w);
        auto res = SharedScanReverseSkylines(local, *space_, group, rs,
                                             /*ring_order=*/algo_ ==
                                                 Algorithm::kSRS,
                                             &ss);
        double modeled = ss.shared_millis + ss.modeled_backoff_millis +
                         IoCostModel{}.EstimateMillis(ss.shared_io);
        if (res.ok()) {
          for (size_t q = lo; q < hi; ++q) {
            batch.results[q] = std::move((*res)[q - lo]);
            total_io.Add(batch.results[q].stats.io);
            modeled += batch.results[q].stats.ResponseMillis();
          }
          total_io.Add(ss.shared_io);
          shared_io.Add(ss.shared_io);
          shared_batches.fetch_add(ss.shared_batches,
                                   std::memory_order_relaxed);
          shared_groups.fetch_add(1, std::memory_order_relaxed);
        } else {
          // The whole group dies together (the shared pass is one run);
          // charge its partial IO to the batch, unattributed per query.
          for (size_t q = lo; q < hi; ++q) {
            batch.statuses[q] = res.status();
          }
          const IoStats partial = replica_set_->WorkerStats(w) - before;
          total_io.Add(partial);
          modeled = IoCostModel{}.EstimateMillis(partial);
        }
        // Only this worker's thread touches its slot. The shared pass's
        // modeled time lands on the worker that ran it, like any query.
        batch.worker_modeled_millis[static_cast<size_t>(w)] += modeled;
        wg.Done();
      });
    }
    wg.Wait();

    if (opts_.fail_fast) {
      Status first = batch.first_error();
      if (!first.ok()) return first;
    }
    batch.total_io = total_io.Snapshot();
    batch.shared_io = shared_io.Snapshot();
    batch.shared_scan_batches =
        shared_batches.load(std::memory_order_relaxed);
    batch.shared_scan_groups = shared_groups.load(std::memory_order_relaxed);
    batch.wall_millis = timer.ElapsedMillis();
    batch.quarantined = quarantine.Pages();
    if (opts_.rs.resilience.quarantine_log != nullptr) {
      for (const auto& [file, page] : batch.quarantined) {
        opts_.rs.resilience.quarantine_log->Report(file, page);
      }
    }
    return batch;
  }

  wg.Add(static_cast<int>(queries.size()));

  for (size_t i = 0; i < queries.size(); ++i) {
    pool_.Submit([this, &queries, &batch, &total_io, &quarantine, &retried,
                  &wg, i] {
      const int w = pool_.CurrentWorkerIndex();
      NMRS_CHECK_GE(w, 0);
      const int num_replicas = replica_set_->num_replicas();
      DiskView* view = replica_set_->view(w, 0);

      // With fault injection on, this query reads through its own
      // FaultyDisk per replica whose stream is the query index — each
      // query's fault pattern is fixed by the config, not by which worker
      // runs it. The fault ceiling restricts injection to the frozen base
      // files: scratch-file ids are assigned in execution order, so
      // faulting them would reintroduce a scheduling dependence.
      std::vector<std::unique_ptr<FaultyDisk>> wrappers;
      std::vector<SimulatedDisk*> disks = replica_set_->MakeQueryDisks(
          w, static_cast<uint64_t>(i), &wrappers);
      SimulatedDisk* qdisk = disks[0];

      // Failover replica views persist across the queries this worker
      // runs, so reset their disk arms: within a query the failover read
      // sequence is then fixed, making its seq/rand IO split independent
      // of which queries ran earlier on this worker. (The primary view
      // keeps the pre-replica arm behavior untouched.)
      for (int r = 1; r < num_replicas; ++r) {
        replica_set_->view(w, r)->InvalidateArmPosition();
      }

      RSOptions rs = opts_.rs;
      if (num_replicas > 1) {
        rs.failover_disks.assign(disks.begin() + 1, disks.end());
        rs.failover_limit = prepared_->stored.disk()->next_file_id();
      }
      if (rs.num_threads > 1 && rs.executor == nullptr) rs.executor = &pool_;
      if (pool_cache_ != nullptr) {
        rs.cache_pages = true;
        rs.buffer_pool = pool_cache_.get();
      } else {
        rs.cache_pages = false;
        rs.buffer_pool = nullptr;
      }
      // A checksummed dataset implies verification: sealing pages and then
      // not checking them would silently waste the footer.
      if (prepared_->stored.checksum_pages()) {
        rs.resilience.checksum_pages = true;
      }
      // Queries report to the batch-local log; a caller-supplied log gets
      // the batch's findings folded in after the join.
      rs.resilience.quarantine_log = &quarantine;

      const int attempts = 1 + std::max(0, opts_.max_query_retries);
      // Placeholder only: the loop below always runs at least one attempt.
      StatusOr<ReverseSkylineResult> result =
          Status::Internal("query never ran");
      for (int attempt = 0; attempt < attempts; ++attempt) {
        // Retries re-run on the clean view: no fault wrapper, and no
        // failover disks either (the clean view cannot fail, so page
        // failover has nothing to do there).
        SimulatedDisk* attempt_disk = attempt == 0 ? qdisk : view;
        if (attempt == 1) {
          rs.failover_disks.clear();
          rs.failover_limit = PagedReaderOptions::kNoFailoverLimit;
        }
        // Re-wrap the prepared dataset over this attempt's disk: the file
        // id and layout are the base disk's, the IO accounting (and any
        // injected faults) are this disk's.
        PreparedDataset local{
            StoredDataset(attempt_disk, prepared_->stored.file(),
                          prepared_->stored.schema(),
                          prepared_->stored.num_rows(),
                          prepared_->stored.checksum_pages()),
            prepared_->attr_order, prepared_->prepare_millis};
        // Worker-wide snapshot: a failed attempt's failover reads landed
        // on this worker's other replica views, not just the primary.
        const IoStats before = replica_set_->WorkerStats(w);
        result = RunReverseSkyline(local, *space_, queries[i], algo_, rs);
        if (result.ok()) {
          if (attempt > 0) retried.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        // Keep the dead run's partial IO as this query's stats. If a later
        // attempt succeeds it overwrites this: the reported stats are those
        // of the attempt that produced the answer (replica-read
        // accounting), so a recovered query is indistinguishable from one
        // that ran clean the first time.
        ReverseSkylineResult partial;
        partial.stats.io = replica_set_->WorkerStats(w) - before;
        batch.results[i] = std::move(partial);
        if (!result.status().IsStorageFault()) break;
      }

      if (result.ok()) {
        batch.results[i] = std::move(*result);
      } else {
        batch.statuses[i] = result.status();
      }
      total_io.Add(batch.results[i].stats.io);
      // Only this worker's thread touches its slot. Failed queries charge
      // their partial modeled time too — they occupied the spindle.
      batch.worker_modeled_millis[static_cast<size_t>(w)] +=
          batch.results[i].stats.ResponseMillis();
      wg.Done();
    });
  }
  wg.Wait();

  if (opts_.fail_fast) {
    Status first = batch.first_error();
    if (!first.ok()) return first;
  }
  batch.total_io = total_io.Snapshot();
  batch.wall_millis = timer.ElapsedMillis();
  batch.queries_retried = retried.load(std::memory_order_relaxed);
  batch.quarantined = quarantine.Pages();
  if (opts_.rs.resilience.quarantine_log != nullptr) {
    // The caller supplied its own log; fold this batch's findings in.
    for (const auto& [file, page] : batch.quarantined) {
      opts_.rs.resilience.quarantine_log->Report(file, page);
    }
  }
  return batch;
}

StatusOr<OverlayBatchResult> QueryEngine::RunOverlayBatch(
    const std::vector<Object>& queries,
    const std::vector<const MatrixOverlay*>& overlays) {
  NMRS_RETURN_IF_ERROR(opts_.rs.resilience.Validate());
  if (opts_.rs.overlay != nullptr) {
    return Status::InvalidArgument(
        "RunOverlayBatch: the engine's rs.overlay template must be null — "
        "the per-user overlays come from the overlays argument");
  }
  if (overlays.empty()) {
    return Status::InvalidArgument("RunOverlayBatch: no overlay users");
  }
  for (const MatrixOverlay* o : overlays) {
    if (o == nullptr) {
      return Status::InvalidArgument("RunOverlayBatch: null overlay");
    }
    if (&o->base() != space_) {
      return Status::InvalidArgument(
          "RunOverlayBatch: overlay built over a different base space");
    }
  }

  Timer timer;
  OverlayBatchResult out;
  out.results.resize(queries.size());
  for (auto& per_user : out.results) per_user.resize(overlays.size());
  out.statuses.assign(queries.size(), Status::OK());

  const std::vector<AttrId> selected =
      ResolveSelectedAttrs(prepared_->stored.schema(),
                           opts_.rs.selected_attrs);

  // Re-check reads run on clean worker views: faults are a property of the
  // base run (which keeps its per-query fault streams through RunBatch),
  // and the sealed-page verification still applies.
  PagedReaderOptions clean_reader_opts;
  clean_reader_opts.verify_checksums = prepared_->stored.checksum_pages() ||
                                       opts_.rs.resilience.checksum_pages;

  // ---- 1. Query-independent classification, once per batch. ----
  OverlayClassification cls;
  {
    DiskView* view = replica_set_->view(0, 0);
    StoredDataset local(view, prepared_->stored.file(),
                        prepared_->stored.schema(),
                        prepared_->stored.num_rows(),
                        prepared_->stored.checksum_pages());
    PagedReader reader(view, nullptr, clean_reader_opts);
    const IoStats before = replica_set_->WorkerStats(0);
    NMRS_RETURN_IF_ERROR(
        ClassifyOverlayRows(local, &reader, overlays, selected, &cls));
    cls.io = replica_set_->WorkerStats(0) - before;
    reader.FoldStatsInto(&cls.io);
  }
  out.sensitive_rows = cls.TotalSensitive();
  out.invariant_rows = cls.TotalInvariant();

  // ---- 2. One base-space run per query, through the full machinery. ----
  NMRS_ASSIGN_OR_RETURN(out.base, RunBatch(queries));
  out.statuses = out.base.statuses;
  out.worker_modeled_millis = out.base.worker_modeled_millis;
  // The classification pass is modeled as running on worker 0's spindle.
  out.worker_modeled_millis[0] +=
      cls.classify_millis + IoCostModel{}.EstimateMillis(cls.io);

  // ---- 3. Grouped re-check scans: one per (query, user group). ----
  // Users whose overlay touches no stored row need no scan at all — every
  // row is invariant for them, so their answer is the base answer.
  std::vector<size_t> scan_users;
  for (size_t u = 0; u < overlays.size(); ++u) {
    if (!cls.user_rows[u].empty()) scan_users.push_back(u);
  }
  const size_t group_size = std::max<size_t>(1, opts_.overlay_group);
  const size_t num_groups =
      (scan_users.size() + group_size - 1) / group_size;

  ConcurrentIoStats overlay_io;
  std::atomic<uint64_t> recheck_scans{0};
  std::atomic<uint64_t> recheck_checks{0};
  std::atomic<uint64_t> recheck_pair_tests{0};
  std::mutex status_mu;  // guards statuses[q] overwrites from re-check tasks
  WaitGroup wg;

  for (size_t q = 0; q < queries.size(); ++q) {
    if (!out.statuses[q].ok()) continue;  // base run failed: no answer
    // Invariant-only users answer straight from the base rows.
    for (size_t u = 0; u < overlays.size(); ++u) {
      if (cls.user_rows[u].empty()) {
        out.results[q][u].rows = out.base.results[q].rows;
        out.results[q][u].stats.result_size = out.results[q][u].rows.size();
      }
    }
    for (size_t g = 0; g < num_groups; ++g) {
      wg.Add(1);
      pool_.Submit([this, &queries, &overlays, &out, &cls, &selected,
                    &scan_users, &overlay_io, &recheck_scans, &recheck_checks,
                    &recheck_pair_tests, &status_mu, &wg, &clean_reader_opts,
                    group_size, q, g] {
        const int w = pool_.CurrentWorkerIndex();
        NMRS_CHECK_GE(w, 0);
        Timer task_timer;
        DiskView* view = replica_set_->view(w, 0);
        StoredDataset local(view, prepared_->stored.file(),
                            prepared_->stored.schema(),
                            prepared_->stored.num_rows(),
                            prepared_->stored.checksum_pages());
        PagedReader reader(view, nullptr, clean_reader_opts);

        const size_t lo = g * group_size;
        const size_t hi = std::min(scan_users.size(), lo + group_size);
        const std::vector<size_t> group(scan_users.begin() + lo,
                                        scan_users.begin() + hi);
        std::vector<std::vector<uint8_t>> alive(group.size());
        for (size_t i = 0; i < group.size(); ++i) {
          alive[i].assign(cls.user_rows[group[i]].size(), 1);
        }

        QueryStats scan_stats;
        const IoStats before = replica_set_->WorkerStats(w);
        Status st = RecheckOverlayGroup(local, &reader, *space_, queries[q],
                                        selected, overlays, group, cls,
                                        &alive, &scan_stats);
        scan_stats.io = replica_set_->WorkerStats(w) - before;
        reader.FoldStatsInto(&scan_stats.io);
        scan_stats.compute_millis = task_timer.ElapsedMillis();
        overlay_io.Add(scan_stats.io);
        recheck_scans.fetch_add(1, std::memory_order_relaxed);
        recheck_checks.fetch_add(scan_stats.checks,
                                 std::memory_order_relaxed);
        recheck_pair_tests.fetch_add(scan_stats.pair_tests,
                                     std::memory_order_relaxed);
        if (st.ok()) {
          for (size_t i = 0; i < group.size(); ++i) {
            const size_t u = group[i];
            out.results[q][u].rows = MergeOverlayRows(
                out.base.results[q].rows, cls, u, alive[i]);
            out.results[q][u].stats.result_size =
                out.results[q][u].rows.size();
          }
        } else {
          std::lock_guard<std::mutex> lock(status_mu);
          if (out.statuses[q].ok()) out.statuses[q] = st;
        }
        // Only this worker's thread touches its slot (same contract as
        // RunBatch): the scan occupied this worker's spindle.
        out.worker_modeled_millis[static_cast<size_t>(w)] +=
            scan_stats.ResponseMillis();
        wg.Done();
      });
    }
  }
  wg.Wait();

  out.recheck_scans = recheck_scans.load(std::memory_order_relaxed);
  out.recheck_checks = recheck_checks.load(std::memory_order_relaxed);
  out.recheck_pair_tests =
      recheck_pair_tests.load(std::memory_order_relaxed);
  out.overlay_io = overlay_io.Snapshot();
  out.overlay_io += cls.io;
  out.total_io = out.base.total_io;
  out.total_io += out.overlay_io;
  out.wall_millis = timer.ElapsedMillis();
  return out;
}

}  // namespace nmrs
