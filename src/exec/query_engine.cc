#include "exec/query_engine.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/sync.h"
#include "common/timer.h"

namespace nmrs {

double BatchResult::ModeledMakespanMillis() const {
  double makespan = 0;
  for (double w : worker_modeled_millis) makespan = std::max(makespan, w);
  return makespan;
}

double BatchResult::ModeledQps() const {
  const double makespan = ModeledMakespanMillis();
  if (makespan <= 0) return 0;
  return static_cast<double>(results.size()) / (makespan / 1000.0);
}

QueryEngine::QueryEngine(const PreparedDataset& prepared,
                         const SimilaritySpace& space, Algorithm algo,
                         QueryEngineOptions opts)
    : prepared_(&prepared),
      space_(&space),
      algo_(algo),
      opts_(opts),
      pool_(opts.num_workers > 0 ? opts.num_workers
                                 : std::max(1u,
                                            std::thread::hardware_concurrency())) {
  views_.reserve(pool_.num_threads());
  for (size_t w = 0; w < pool_.num_threads(); ++w) {
    views_.push_back(std::make_unique<DiskView>(prepared_->stored.disk()));
  }
  if (opts_.cache_pages > 0) {
    BufferPoolOptions pool_opts;
    pool_opts.capacity_pages = opts_.cache_pages;
    pool_cache_ = std::make_unique<BufferPool>(prepared_->stored.disk(),
                                               pool_opts);
  }
}

StatusOr<BatchResult> QueryEngine::RunBatch(
    const std::vector<Object>& queries) {
  BatchResult batch;
  batch.results.resize(queries.size());
  batch.worker_modeled_millis.assign(pool_.num_threads(), 0.0);

  Timer timer;
  ConcurrentIoStats total_io;
  std::mutex err_mu;
  Status first_error;
  WaitGroup wg;
  wg.Add(static_cast<int>(queries.size()));

  for (size_t i = 0; i < queries.size(); ++i) {
    pool_.Submit([this, &queries, &batch, &total_io, &err_mu, &first_error,
                  &wg, i] {
      const int w = pool_.CurrentWorkerIndex();
      NMRS_CHECK_GE(w, 0);
      DiskView* view = views_[static_cast<size_t>(w)].get();

      // Re-wrap the prepared dataset over this worker's view: the file id
      // and layout are the base disk's, the IO accounting is the view's.
      PreparedDataset local{
          StoredDataset(view, prepared_->stored.file(),
                        prepared_->stored.schema(),
                        prepared_->stored.num_rows()),
          prepared_->attr_order, prepared_->prepare_millis};

      RSOptions rs = opts_.rs;
      if (rs.num_threads > 1 && rs.executor == nullptr) rs.executor = &pool_;
      if (pool_cache_ != nullptr) {
        rs.cache_pages = true;
        rs.buffer_pool = pool_cache_.get();
      }

      auto result =
          RunReverseSkyline(local, *space_, queries[i], algo_, rs);
      if (result.ok()) {
        total_io.Add(result->stats.io);
        // Only this worker's thread touches its slot.
        batch.worker_modeled_millis[static_cast<size_t>(w)] +=
            result->stats.ResponseMillis();
        batch.results[i] = std::move(*result);
      } else {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.ok()) first_error = result.status();
      }
      wg.Done();
    });
  }
  wg.Wait();

  if (!first_error.ok()) return first_error;
  batch.total_io = total_io.Snapshot();
  batch.wall_millis = timer.ElapsedMillis();
  return batch;
}

}  // namespace nmrs
