#include "ops/rnn.h"

#include <algorithm>
#include <set>

namespace nmrs {

std::vector<RowId> RnnScan(const Dataset& data, const SimilaritySpace& space,
                           const Object& query,
                           const WeightedDistance& dist) {
  std::vector<RowId> result;
  for (RowId x = 0; x < data.num_rows(); ++x) {
    const Object ref = data.GetObject(x);
    const double q_dist = dist.Distance(data.schema(), space, query, ref);
    bool beaten = false;
    for (RowId y = 0; y < data.num_rows() && !beaten; ++y) {
      if (y == x) continue;
      const Object other = data.GetObject(y);
      beaten = dist.Distance(data.schema(), space, other, ref) < q_dist;
    }
    if (!beaten) result.push_back(x);
  }
  return result;
}

std::vector<RowId> RnnUnionCoverage(const Dataset& data,
                                    const SimilaritySpace& space,
                                    const Object& query, int num_weightings,
                                    uint64_t seed) {
  Rng rng(seed);
  std::set<RowId> covered;
  const size_t m = data.schema().num_attributes();
  for (int i = 0; i < num_weightings; ++i) {
    const WeightedDistance w = WeightedDistance::Random(m, rng);
    for (RowId r : RnnScan(data, space, query, w)) covered.insert(r);
  }
  return {covered.begin(), covered.end()};
}

}  // namespace nmrs
