#include "ops/topk.h"

#include <algorithm>
#include <queue>

#include "altree/al_tree.h"
#include "order/attribute_order.h"

namespace nmrs {

namespace {

// Ascending by distance, ties by row id.
bool EntryLess(const TopKEntry& a, const TopKEntry& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.row < b.row;
}

}  // namespace

std::vector<TopKEntry> TopKScan(const Dataset& data,
                                const SimilaritySpace& space,
                                const Object& query,
                                const WeightedDistance& dist, size_t k) {
  std::vector<TopKEntry> all;
  all.reserve(data.num_rows());
  for (RowId r = 0; r < data.num_rows(); ++r) {
    all.push_back({r, dist.RowDistance(data, space, r, query)});
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<ptrdiff_t>(take),
                    all.end(), EntryLess);
  all.resize(take);
  return all;
}

std::vector<TopKEntry> TopKALTree(const Dataset& data,
                                  const SimilaritySpace& space,
                                  const Object& query,
                                  const WeightedDistance& dist, size_t k,
                                  uint64_t* checks_out) {
  const Schema& schema = data.schema();
  ALTree tree(schema, AscendingCardinalityOrder(schema));
  for (RowId r = 0; r < data.num_rows(); ++r) {
    tree.Insert(r, data.RowValues(r), data.RowNumerics(r));
  }
  return TopKOverTree(tree, schema, space, query, dist, k, checks_out);
}

std::vector<TopKEntry> TopKOverTree(const ALTree& tree, const Schema& schema,
                                    const SimilaritySpace& space,
                                    const Object& query,
                                    const WeightedDistance& dist, size_t k,
                                    uint64_t* checks_out) {
  const size_t m = schema.num_attributes();
  uint64_t checks = 0;
  std::vector<TopKEntry> result;
  if (k == 0 || tree.empty() || m == 0) {
    if (checks_out != nullptr) *checks_out = checks;
    return result;
  }

  const auto& attr_order = tree.attr_order();

  // Per level: weight, query-side distances for categorical levels, and
  // the minimum achievable weighted contribution of the suffix of levels
  // below (inclusive-exclusive bookkeeping below).
  std::vector<double> level_weight(m);
  std::vector<double> level_min(m);  // min_v w_l * d_l(v, q_l)
  for (size_t l = 0; l < m; ++l) {
    const AttrId a = attr_order[l];
    level_weight[l] = dist.weight(a);
    double min_d = 1e300;
    if (schema.attribute(a).is_numeric) {
      // A value can coincide with the query, so 0 is achievable; numeric
      // leaf distances are refined exactly below.
      min_d = 0.0;
    } else {
      for (ValueId v = 0; v < schema.attribute(a).cardinality; ++v) {
        min_d = std::min(min_d, space.CatDist(a, v, query.values[a]));
      }
    }
    level_min[l] = level_weight[l] * min_d;
  }
  // suffix_min[l] = sum of level_min for levels >= l.
  std::vector<double> suffix_min(m + 1, 0.0);
  for (size_t l = m; l-- > 0;) suffix_min[l] = suffix_min[l + 1] + level_min[l];

  struct QueueEntry {
    double bound;
    ALTree::NodeId node;
    uint32_t next_level;  // level of this node's children
    double prefix;        // exact weighted distance of fixed levels
    bool operator>(const QueueEntry& o) const {
      if (bound != o.bound) return bound > o.bound;
      return node > o.node;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  queue.push({suffix_min[0], ALTree::kRootId, 0, 0.0});

  // Max-heap of current k best (worst on top).
  auto worse = [](const TopKEntry& a, const TopKEntry& b) {
    return EntryLess(a, b);
  };
  std::vector<TopKEntry> best;  // kept heapified by `worse`

  auto kth_bound = [&]() {
    return best.size() < k ? 1e300 : best.front().distance;
  };

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.bound > kth_bound()) break;  // nothing better remains
    if (top.next_level == m) {
      // Leaf: every duplicate is a hit at distance prefix (categorical) or
      // refined per entry (numeric attributes).
      const ALTree::NodeId leaf = top.node;
      const auto& rows = tree.LeafRows(leaf);
      for (size_t i = 0; i < rows.size(); ++i) {
        double d = top.prefix;
        if (tree.has_numerics()) {
          const double* nums = tree.LeafNumerics(leaf, i);
          for (size_t l = 0; l < m; ++l) {
            const AttrId a = attr_order[l];
            if (!schema.attribute(a).is_numeric) continue;
            ++checks;
            d += level_weight[l] *
                 space.NumDist(a, nums[a], query.numerics[a]);
          }
        }
        TopKEntry entry{rows[i], d};
        if (best.size() < k) {
          best.push_back(entry);
          std::push_heap(best.begin(), best.end(), worse);
        } else if (EntryLess(entry, best.front())) {
          std::pop_heap(best.begin(), best.end(), worse);
          best.back() = entry;
          std::push_heap(best.begin(), best.end(), worse);
        }
      }
      continue;
    }
    const uint32_t l = top.next_level;
    const AttrId a = attr_order[l];
    const bool numeric = schema.attribute(a).is_numeric;
    for (const ALTree::ChildRef& child : tree.Children(top.node)) {
      if (tree.Descendants(child.id) == 0) continue;
      double contribution;
      if (numeric) {
        contribution = 0.0;  // refined exactly at the leaf
      } else {
        ++checks;
        contribution =
            level_weight[l] * space.CatDist(a, child.value, query.values[a]);
      }
      const double prefix = top.prefix + contribution;
      const double bound = prefix + suffix_min[l + 1];
      if (bound <= kth_bound()) {
        queue.push({bound, child.id, l + 1, prefix});
      }
    }
  }

  std::sort(best.begin(), best.end(), EntryLess);
  if (checks_out != nullptr) *checks_out = checks;
  return best;
}

}  // namespace nmrs
