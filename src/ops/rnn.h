#ifndef NMRS_OPS_RNN_H_
#define NMRS_OPS_RNN_H_

#include <vector>

#include "common/types.h"
#include "data/dataset.h"
#include "ops/weighted_distance.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// Reverse nearest neighbors of `query` under the fixed monotone aggregate
/// `dist`: rows X such that Q is at least as close to X as every other
/// database object is, i.e. dist(Q, X) <= dist(Y, X) for all Y != X
/// (distances measured with X as the reference, matching §3's dominance
/// direction for asymmetric measures). O(n²) scan with early abort.
///
/// Relationship to the reverse skyline (§1): for every positive weight
/// vector, RNN(Q, w) ⊆ RS(Q), and RS(Q) is the union of RNN(Q, w) over all
/// monotone aggregates — RS is what you compute when no single w can be
/// justified. The containment is enforced by tests; the union-coverage is
/// demonstrated by bench_rnn_union.
std::vector<RowId> RnnScan(const Dataset& data, const SimilaritySpace& space,
                           const Object& query, const WeightedDistance& dist);

/// Rows of RS(Q) covered by the union of RNN(Q, w) over `num_weightings`
/// random weight vectors (seeded); returns the covered subset (ascending).
std::vector<RowId> RnnUnionCoverage(const Dataset& data,
                                    const SimilaritySpace& space,
                                    const Object& query, int num_weightings,
                                    uint64_t seed);

}  // namespace nmrs

#endif  // NMRS_OPS_RNN_H_
