#ifndef NMRS_OPS_TOPK_H_
#define NMRS_OPS_TOPK_H_

#include <vector>

#include "altree/al_tree.h"
#include "common/types.h"
#include "data/dataset.h"
#include "ops/weighted_distance.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// A top-k hit: row id and its aggregate distance to the query.
struct TopKEntry {
  RowId row;
  double distance;

  bool operator==(const TopKEntry&) const = default;
};

/// The k rows closest to `query` under the monotone aggregate `dist`,
/// ascending by distance (ties broken by row id). Plain scan baseline.
std::vector<TopKEntry> TopKScan(const Dataset& data,
                                const SimilaritySpace& space,
                                const Object& query,
                                const WeightedDistance& dist, size_t k);

/// Same answer via an AL-Tree with group-level lower bounds (the EDBT'08
/// technique the paper builds TRS on): a best-first traversal where an
/// internal node's bound is the weighted distance of its fixed prefix plus
/// the minimum achievable dissimilarity of every free attribute; subtrees
/// whose bound cannot beat the current k-th distance are skipped wholesale.
/// `checks_out` (optional) counts attribute-level distance evaluations, for
/// comparing against the scan's n·m.
std::vector<TopKEntry> TopKALTree(const Dataset& data,
                                  const SimilaritySpace& space,
                                  const Object& query,
                                  const WeightedDistance& dist, size_t k,
                                  uint64_t* checks_out = nullptr);

/// Query-only variant over a prebuilt tree (the EDBT'08 setting: the
/// AL-Tree is a query-independent index built once and reused). `schema`
/// must be the schema the tree was built from.
std::vector<TopKEntry> TopKOverTree(const ALTree& tree, const Schema& schema,
                                    const SimilaritySpace& space,
                                    const Object& query,
                                    const WeightedDistance& dist, size_t k,
                                    uint64_t* checks_out = nullptr);

}  // namespace nmrs

#endif  // NMRS_OPS_TOPK_H_
