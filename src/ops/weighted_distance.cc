#include "ops/weighted_distance.h"

namespace nmrs {

WeightedDistance WeightedDistance::Random(size_t m, Rng& rng) {
  std::vector<double> weights(m);
  for (auto& w : weights) w = 0.05 + 0.95 * rng.NextDouble();
  return WeightedDistance(std::move(weights));
}

double WeightedDistance::RowDistance(const Dataset& data,
                                     const SimilaritySpace& space, RowId row,
                                     const Object& ref) const {
  const Schema& schema = data.schema();
  NMRS_DCHECK(weights_.size() == schema.num_attributes());
  double sum = 0;
  for (AttrId a = 0; a < weights_.size(); ++a) {
    if (schema.attribute(a).is_numeric) {
      sum += weights_[a] * space.NumDist(a, data.Numeric(row, a),
                                         ref.numerics[a]);
    } else {
      sum += weights_[a] * space.CatDist(a, data.Value(row, a),
                                         ref.values[a]);
    }
  }
  return sum;
}

double WeightedDistance::Distance(const Schema& schema,
                                  const SimilaritySpace& space,
                                  const Object& a, const Object& ref) const {
  NMRS_DCHECK(weights_.size() == schema.num_attributes());
  double sum = 0;
  for (AttrId i = 0; i < weights_.size(); ++i) {
    if (schema.attribute(i).is_numeric) {
      sum += weights_[i] * space.NumDist(i, a.numerics[i], ref.numerics[i]);
    } else {
      sum += weights_[i] * space.CatDist(i, a.values[i], ref.values[i]);
    }
  }
  return sum;
}

}  // namespace nmrs
