#ifndef NMRS_OPS_WEIGHTED_DISTANCE_H_
#define NMRS_OPS_WEIGHTED_DISTANCE_H_

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/types.h"
#include "data/dataset.h"
#include "sim/similarity_space.h"

namespace nmrs {

/// A monotone aggregation function over per-attribute dissimilarities: the
/// weighted sum dist(A, ref) = Σ_i w_i · d_i(v_i(A), v_i(ref)), w_i > 0.
/// This is the aggregate the top-k and RNN operators of the related work
/// assume fixed; the reverse skyline is exactly what you get when you
/// refuse to fix it (§1: the RS is the union of RNN results over all
/// monotone aggregates).
class WeightedDistance {
 public:
  explicit WeightedDistance(std::vector<double> weights)
      : weights_(std::move(weights)) {
    for (double w : weights_) NMRS_CHECK_GT(w, 0.0);
  }

  /// Uniform weights over m attributes.
  static WeightedDistance Uniform(size_t m) {
    return WeightedDistance(std::vector<double>(m, 1.0));
  }

  /// Random positive weights in (0.05, 1], for sampling aggregation
  /// functions in tests and benches.
  static WeightedDistance Random(size_t m, Rng& rng);

  size_t num_attributes() const { return weights_.size(); }
  double weight(AttrId a) const { return weights_[a]; }

  /// Distance of dataset row `row` from reference object `ref`
  /// (asymmetric measures: the reference is the second argument of d_i,
  /// matching the dominance definition of §3).
  double RowDistance(const Dataset& data, const SimilaritySpace& space,
                     RowId row, const Object& ref) const;

  /// Distance of object `a` from reference object `ref`.
  double Distance(const Schema& schema, const SimilaritySpace& space,
                  const Object& a, const Object& ref) const;

 private:
  std::vector<double> weights_;
};

}  // namespace nmrs

#endif  // NMRS_OPS_WEIGHTED_DISTANCE_H_
