#include "order/attribute_order.h"

#include <algorithm>
#include <numeric>

namespace nmrs {

std::vector<AttrId> AscendingCardinalityOrder(const Schema& schema) {
  std::vector<AttrId> order(schema.num_attributes());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](AttrId a, AttrId b) {
    return schema.attribute(a).cardinality < schema.attribute(b).cardinality;
  });
  return order;
}

std::vector<AttrId> DescendingCardinalityOrder(const Schema& schema) {
  std::vector<AttrId> order(schema.num_attributes());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](AttrId a, AttrId b) {
    return schema.attribute(a).cardinality > schema.attribute(b).cardinality;
  });
  return order;
}

std::vector<AttrId> IdentityOrder(const Schema& schema) {
  std::vector<AttrId> order(schema.num_attributes());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<AttrId> RandomOrder(const Schema& schema, Rng& rng) {
  std::vector<AttrId> order = IdentityOrder(schema);
  rng.Shuffle(order);
  return order;
}

}  // namespace nmrs
