#ifndef NMRS_ORDER_MULTI_SORT_H_
#define NMRS_ORDER_MULTI_SORT_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/types.h"
#include "data/dataset.h"
#include "data/stored_dataset.h"
#include "storage/io_stats.h"
#include "storage/memory_budget.h"

namespace nmrs {

/// Multi-attribute (lexicographic) sort of the dataset's rows along
/// `attr_order` (paper §4.2). The point is purely to cluster objects sharing
/// attribute-value prefixes near each other on disk — "the actual ordering
/// among different values of an attribute is immaterial", so value ids are
/// compared as integers.
///
/// Returns the permutation: position r of the result holds the RowId of the
/// row that should be placed r-th.
std::vector<RowId> MultiAttributeSortOrder(const Dataset& data,
                                           const std::vector<AttrId>& attr_order);

/// Result of the disk-based pre-processing sort (§5.5).
struct ExternalSortResult {
  StoredDataset sorted;
  IoStats io;        // IO charged to the sort itself
  double millis = 0; // wall-clock of the sort
  uint64_t initial_runs = 0;
  uint64_t merge_passes = 0;
};

/// External merge sort of `input` by `attr_order` using at most `mem.pages`
/// pages of working memory: run formation (load mem.pages pages, sort,
/// spill) followed by (mem.pages - 1)-way merge passes. Models the one-time
/// pre-processing step of SRS/TRS; IO is charged to `disk`.
StatusOr<ExternalSortResult> ExternalMultiAttributeSort(
    const StoredDataset& input, const std::vector<AttrId>& attr_order,
    MemoryBudget mem, std::string out_name);

}  // namespace nmrs

#endif  // NMRS_ORDER_MULTI_SORT_H_
