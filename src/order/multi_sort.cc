#include "order/multi_sort.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <queue>

#include "common/timer.h"
#include "storage/paged_reader.h"

namespace nmrs {

namespace {

// Lexicographic comparison of two rows' value ids along attr_order, with
// RowId tie-break for determinism.
struct RowLess {
  const std::vector<AttrId>* attr_order;

  bool operator()(const ValueId* a, RowId aid, const ValueId* b,
                  RowId bid) const {
    for (AttrId attr : *attr_order) {
      if (a[attr] != b[attr]) return a[attr] < b[attr];
    }
    return aid < bid;
  }
};

// Streaming cursor over a sorted run, buffering one page at a time. Reads
// go through the sort's verifying reader, so a corrupted spill page
// surfaces as kCorruption instead of feeding garbage into the merge.
class RunCursor {
 public:
  RunCursor(const StoredDataset* run, PagedReader* reader)
      : run_(run),
        reader_(reader),
        batch_(run->schema().num_attributes(),
               run->schema().NumNumeric() > 0) {}

  Status Init() { return Advance(); }

  bool exhausted() const { return exhausted_; }
  const ValueId* values() const { return batch_.row_values(idx_); }
  const double* numerics() const { return batch_.row_numerics(idx_); }
  RowId id() const { return batch_.id(idx_); }

  Status Next() {
    ++idx_;
    if (idx_ >= batch_.size()) return Advance();
    return Status::OK();
  }

 private:
  Status Advance() {
    batch_.Clear();
    idx_ = 0;
    while (batch_.size() == 0) {
      if (next_page_ >= run_->num_pages()) {
        exhausted_ = true;
        return Status::OK();
      }
      NMRS_RETURN_IF_ERROR(run_->ReadPageVia(reader_, next_page_++, &batch_));
    }
    return Status::OK();
  }

  const StoredDataset* run_;
  PagedReader* reader_;
  RowBatch batch_;
  size_t idx_ = 0;
  PageId next_page_ = 0;
  bool exhausted_ = false;
};

// Merges `inputs` into a fresh file named `name`; returns the merged run.
StatusOr<StoredDataset> MergeRuns(std::vector<StoredDataset>& inputs,
                                  const std::vector<AttrId>& attr_order,
                                  const Schema& schema, SimulatedDisk* disk,
                                  std::string name, PagedReader* reader,
                                  bool checksum) {
  FileId out_file = disk->CreateFile(std::move(name));
  RowWriter writer(disk, out_file, schema, checksum);

  std::vector<std::unique_ptr<RunCursor>> cursors;
  uint64_t total_rows = 0;
  for (auto& run : inputs) {
    total_rows += run.num_rows();
    auto cur = std::make_unique<RunCursor>(&run, reader);
    NMRS_RETURN_IF_ERROR(cur->Init());
    if (!cur->exhausted()) cursors.push_back(std::move(cur));
  }

  RowLess less{&attr_order};
  auto heap_greater = [&less](const RunCursor* a, const RunCursor* b) {
    // std::priority_queue is a max-heap; invert to pop the smallest row.
    return less(b->values(), b->id(), a->values(), a->id());
  };
  std::priority_queue<RunCursor*, std::vector<RunCursor*>,
                      decltype(heap_greater)>
      heap(heap_greater);
  for (auto& c : cursors) heap.push(c.get());

  while (!heap.empty()) {
    RunCursor* top = heap.top();
    heap.pop();
    NMRS_RETURN_IF_ERROR(writer.Add(top->id(), top->values(),
                                    top->numerics()));
    NMRS_RETURN_IF_ERROR(top->Next());
    if (!top->exhausted()) heap.push(top);
  }
  NMRS_RETURN_IF_ERROR(writer.Finish());
  return StoredDataset(disk, out_file, schema, total_rows, checksum);
}

}  // namespace

std::vector<RowId> MultiAttributeSortOrder(
    const Dataset& data, const std::vector<AttrId>& attr_order) {
  std::vector<RowId> order(data.num_rows());
  std::iota(order.begin(), order.end(), 0);
  RowLess less{&attr_order};
  std::sort(order.begin(), order.end(), [&](RowId a, RowId b) {
    return less(data.RowValues(a), a, data.RowValues(b), b);
  });
  return order;
}

StatusOr<ExternalSortResult> ExternalMultiAttributeSort(
    const StoredDataset& input, const std::vector<AttrId>& attr_order,
    MemoryBudget mem, std::string out_name) {
  SimulatedDisk* disk = input.disk();
  const Schema& schema = input.schema();
  if (mem.pages < 2) {
    return Status::InvalidArgument(
        "external sort needs at least 2 pages of memory");
  }

  Timer timer;
  const IoStats before = disk->stats();

  // Spill runs inherit the input's seal: when the input is checksummed,
  // every run and merge output is sealed too, and every spill read is
  // verified, so a corrupted intermediate page surfaces as kCorruption
  // instead of silently sorting garbage.
  const bool checksum = input.checksum_pages();
  PagedReaderOptions reader_opts;
  reader_opts.verify_checksums = checksum;
  PagedReader reader(disk, nullptr, reader_opts);

  // --- Run formation: sort mem.pages-page chunks in memory and spill. ---
  std::vector<StoredDataset> runs;
  const uint64_t total_pages = input.num_pages();
  const size_t m = schema.num_attributes();
  const bool numerics = schema.NumNumeric() > 0;
  RowLess less{&attr_order};

  uint64_t run_counter = 0;
  for (PageId start = 0; start < total_pages; start += mem.pages) {
    const PageId end = std::min<PageId>(start + mem.pages, total_pages);
    RowBatch batch(m, numerics);
    for (PageId p = start; p < end; ++p) {
      NMRS_RETURN_IF_ERROR(input.ReadPageVia(&reader, p, &batch));
    }
    std::vector<size_t> idx(batch.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return less(batch.row_values(a), batch.id(a), batch.row_values(b),
                  batch.id(b));
    });
    FileId run_file = disk->CreateFile(out_name + ".run" +
                                       std::to_string(run_counter++));
    RowWriter writer(disk, run_file, schema, checksum);
    for (size_t i : idx) {
      NMRS_RETURN_IF_ERROR(writer.Add(batch.id(i), batch.row_values(i),
                                      batch.row_numerics(i)));
    }
    NMRS_RETURN_IF_ERROR(writer.Finish());
    runs.emplace_back(disk, run_file, schema, batch.size(), checksum);
  }

  const uint64_t initial_runs = runs.size();
  uint64_t merge_passes = 0;

  // --- Merge passes: (mem.pages - 1)-way merges until one run remains. ---
  const size_t fan_in = std::max<size_t>(2, mem.pages - 1);
  uint64_t merge_counter = 0;
  while (runs.size() > 1) {
    ++merge_passes;
    std::vector<StoredDataset> next;
    for (size_t g = 0; g < runs.size(); g += fan_in) {
      const size_t group_end = std::min(runs.size(), g + fan_in);
      std::vector<StoredDataset> group(runs.begin() + g,
                                       runs.begin() + group_end);
      NMRS_ASSIGN_OR_RETURN(
          StoredDataset merged,
          MergeRuns(group, attr_order, schema, disk,
                    out_name + ".merge" + std::to_string(merge_counter++),
                    &reader, checksum));
      for (auto& r : group) {
        NMRS_RETURN_IF_ERROR(disk->DeleteFile(r.file()));
      }
      next.push_back(std::move(merged));
    }
    runs = std::move(next);
  }

  // --- Finalize: copy/rename the surviving run into the output file. ---
  StoredDataset final_run = [&]() -> StoredDataset {
    if (runs.empty()) {
      // Empty input: empty output file.
      FileId f = disk->CreateFile(out_name + ".run0");
      return StoredDataset(disk, f, schema, 0, checksum);
    }
    return std::move(runs.front());
  }();

  ExternalSortResult result{std::move(final_run), disk->stats() - before,
                            timer.ElapsedMillis(), initial_runs,
                            merge_passes};
  return result;
}

}  // namespace nmrs
