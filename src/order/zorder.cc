#include "order/zorder.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace nmrs {

uint64_t ZValue(const std::vector<uint32_t>& coords, unsigned bits) {
  NMRS_CHECK_LE(bits * coords.size(), 64u);
  uint64_t z = 0;
  unsigned out_bit = 0;
  for (unsigned b = 0; b < bits; ++b) {
    for (size_t d = 0; d < coords.size(); ++d) {
      const uint64_t bit = (coords[d] >> b) & 1u;
      z |= bit << out_bit;
      ++out_bit;
    }
  }
  return z;
}

TileZCoder::TileZCoder(const Schema& schema, std::vector<AttrId> attr_order,
                       size_t tiles_per_dim)
    : attr_order_(std::move(attr_order)) {
  NMRS_CHECK_GT(tiles_per_dim, 0u);
  const size_t m = schema.num_attributes();
  cardinalities_.reserve(attr_order_.size());
  for (AttrId attr : attr_order_) {
    cardinalities_.push_back(schema.attribute(attr).cardinality);
  }
  // Bits per dimension, bounded so the interleaved key fits in 64 bits.
  bits_ = 1;
  while ((1u << bits_) < tiles_per_dim) ++bits_;
  const unsigned max_bits = static_cast<unsigned>(64 / std::max<size_t>(m, 1));
  if (bits_ > max_bits) bits_ = max_bits;
  effective_tiles_ = std::min<size_t>(tiles_per_dim, 1u << bits_);
  coords_.resize(attr_order_.size());
}

uint64_t TileZCoder::Key(const ValueId* row) const {
  for (size_t d = 0; d < attr_order_.size(); ++d) {
    // Tile coordinate of a value: value scaled into [0, effective_tiles).
    const size_t card = cardinalities_[d];
    const ValueId v = row[attr_order_[d]];
    uint64_t t = card <= 1 ? 0
                           : static_cast<uint64_t>(v) * effective_tiles_ / card;
    if (t >= effective_tiles_) t = effective_tiles_ - 1;
    coords_[d] = static_cast<uint32_t>(t);
  }
  return ZValue(coords_, bits_);
}

std::vector<RowId> TileZOrder(const Dataset& data,
                              const std::vector<AttrId>& attr_order,
                              size_t tiles_per_dim) {
  const TileZCoder coder(data.schema(), attr_order, tiles_per_dim);
  const uint64_t n = data.num_rows();
  std::vector<uint64_t> zvals(n);
  for (RowId r = 0; r < n; ++r) zvals[r] = coder.Key(data.RowValues(r));

  std::vector<RowId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](RowId a, RowId b) {
    if (zvals[a] != zvals[b]) return zvals[a] < zvals[b];
    // Within a tile: multi-attribute sort (paper: "objects within a tile
    // are sorted as before").
    const ValueId* ra = data.RowValues(a);
    const ValueId* rb = data.RowValues(b);
    for (AttrId attr : attr_order) {
      if (ra[attr] != rb[attr]) return ra[attr] < rb[attr];
    }
    return a < b;
  });
  return order;
}

}  // namespace nmrs
