#include "order/zorder.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace nmrs {

uint64_t ZValue(const std::vector<uint32_t>& coords, unsigned bits) {
  NMRS_CHECK_LE(bits * coords.size(), 64u);
  uint64_t z = 0;
  unsigned out_bit = 0;
  for (unsigned b = 0; b < bits; ++b) {
    for (size_t d = 0; d < coords.size(); ++d) {
      const uint64_t bit = (coords[d] >> b) & 1u;
      z |= bit << out_bit;
      ++out_bit;
    }
  }
  return z;
}

std::vector<RowId> TileZOrder(const Dataset& data,
                              const std::vector<AttrId>& attr_order,
                              size_t tiles_per_dim) {
  NMRS_CHECK_GT(tiles_per_dim, 0u);
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();

  // Bits per dimension, bounded so the interleaved key fits in 64 bits.
  unsigned bits = 1;
  while ((1u << bits) < tiles_per_dim) ++bits;
  const unsigned max_bits = static_cast<unsigned>(64 / std::max<size_t>(m, 1));
  if (bits > max_bits) bits = max_bits;
  const size_t effective_tiles = std::min<size_t>(tiles_per_dim, 1u << bits);

  // Tile coordinate of a value: value scaled into [0, effective_tiles).
  auto tile_of = [&](AttrId attr, ValueId v) -> uint32_t {
    const size_t card = schema.attribute(attr).cardinality;
    if (card <= 1) return 0;
    uint64_t t = static_cast<uint64_t>(v) * effective_tiles / card;
    if (t >= effective_tiles) t = effective_tiles - 1;
    return static_cast<uint32_t>(t);
  };

  const uint64_t n = data.num_rows();
  std::vector<uint64_t> zvals(n);
  std::vector<uint32_t> coords(m);
  for (RowId r = 0; r < n; ++r) {
    const ValueId* row = data.RowValues(r);
    for (size_t d = 0; d < m; ++d) coords[d] = tile_of(attr_order[d], row[attr_order[d]]);
    zvals[r] = ZValue(coords, bits);
  }

  std::vector<RowId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](RowId a, RowId b) {
    if (zvals[a] != zvals[b]) return zvals[a] < zvals[b];
    // Within a tile: multi-attribute sort (paper: "objects within a tile
    // are sorted as before").
    const ValueId* ra = data.RowValues(a);
    const ValueId* rb = data.RowValues(b);
    for (AttrId attr : attr_order) {
      if (ra[attr] != rb[attr]) return ra[attr] < rb[attr];
    }
    return a < b;
  });
  return order;
}

}  // namespace nmrs
