#ifndef NMRS_ORDER_ATTRIBUTE_ORDER_H_
#define NMRS_ORDER_ATTRIBUTE_ORDER_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "data/schema.h"

namespace nmrs {

/// The AL-Tree needs a fixed attribute ordering. "Arranging the attributes
/// in the increasing order of number of distinct values would enable better
/// group level reasoning due to larger sized groups towards the root"
/// (paper §5.1) — this is the default used by SRS/TRS.
std::vector<AttrId> AscendingCardinalityOrder(const Schema& schema);

/// Reverse heuristic, used by the attribute-ordering ablation bench.
std::vector<AttrId> DescendingCardinalityOrder(const Schema& schema);

/// Physical column order (no reordering).
std::vector<AttrId> IdentityOrder(const Schema& schema);

/// Random permutation (ablation baseline).
std::vector<AttrId> RandomOrder(const Schema& schema, Rng& rng);

}  // namespace nmrs

#endif  // NMRS_ORDER_ATTRIBUTE_ORDER_H_
