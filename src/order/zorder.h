#ifndef NMRS_ORDER_ZORDER_H_
#define NMRS_ORDER_ZORDER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "data/dataset.h"

namespace nmrs {

/// Interleaves the low `bits` bits of each coordinate (coordinate 0
/// contributes the least significant bit of each group), producing the
/// standard Z-order / Morton value. Supports up to 64 total bits.
uint64_t ZValue(const std::vector<uint32_t>& coords, unsigned bits);

/// Computes the per-row tile Z-key TileZOrder sorts by, exposed so
/// incremental consumers (Database's base+delta merge) can key a single
/// new row exactly as a full re-sort would. Construction captures the
/// bits-per-dimension / effective-tile-count derivation; Key() is then a
/// pure function of the row's value ids.
class TileZCoder {
 public:
  TileZCoder(const Schema& schema, std::vector<AttrId> attr_order,
             size_t tiles_per_dim);

  uint64_t Key(const ValueId* row) const;

  unsigned bits() const { return bits_; }
  size_t effective_tiles() const { return effective_tiles_; }

 private:
  std::vector<AttrId> attr_order_;
  std::vector<size_t> cardinalities_;  // along attr_order_
  unsigned bits_;
  size_t effective_tiles_;
  mutable std::vector<uint32_t> coords_;  // scratch for Key()
};

/// Tile-based data ordering (paper §5.6): each attribute's value range (in
/// its arbitrary id order) is divided into `tiles_per_dim` equal slices;
/// the resulting hyper-rectangular tiles are ordered by Z-order, and objects
/// within a tile are multi-attribute sorted along `attr_order`. This
/// clustering is "fair to all the dimensions", making SRS/TRS robust to
/// attribute-subset queries that do not match the sort prefix.
///
/// Returns the row permutation (like MultiAttributeSortOrder).
std::vector<RowId> TileZOrder(const Dataset& data,
                              const std::vector<AttrId>& attr_order,
                              size_t tiles_per_dim);

}  // namespace nmrs

#endif  // NMRS_ORDER_ZORDER_H_
