#ifndef NMRS_ORDER_ZORDER_H_
#define NMRS_ORDER_ZORDER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "data/dataset.h"

namespace nmrs {

/// Interleaves the low `bits` bits of each coordinate (coordinate 0
/// contributes the least significant bit of each group), producing the
/// standard Z-order / Morton value. Supports up to 64 total bits.
uint64_t ZValue(const std::vector<uint32_t>& coords, unsigned bits);

/// Tile-based data ordering (paper §5.6): each attribute's value range (in
/// its arbitrary id order) is divided into `tiles_per_dim` equal slices;
/// the resulting hyper-rectangular tiles are ordered by Z-order, and objects
/// within a tile are multi-attribute sorted along `attr_order`. This
/// clustering is "fair to all the dimensions", making SRS/TRS robust to
/// attribute-subset queries that do not match the sort prefix.
///
/// Returns the row permutation (like MultiAttributeSortOrder).
std::vector<RowId> TileZOrder(const Dataset& data,
                              const std::vector<AttrId>& attr_order,
                              size_t tiles_per_dim);

}  // namespace nmrs

#endif  // NMRS_ORDER_ZORDER_H_
