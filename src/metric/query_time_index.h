#ifndef NMRS_METRIC_QUERY_TIME_INDEX_H_
#define NMRS_METRIC_QUERY_TIME_INDEX_H_

#include "common/statusor.h"
#include "data/object.h"
#include "data/stored_dataset.h"
#include "metric/str_rtree.h"
#include "sim/similarity_space.h"
#include "storage/io_stats.h"

namespace nmrs {

/// Cost ledger of constructing a metric-space index at query time
/// (paper §5.7): once a query Q is fixed, each object O maps to the point
/// (d_1(O,Q), ..., d_m(O,Q)) in a Euclidean "distance space", over which an
/// R-tree could be built — but only *after* Q is known, so the build cost
/// is part of every query. The paper argues this alone (one full read of
/// the database plus writing out the mapped data and the index — at least
/// three database-sized sequential IO streams, plus random IO in practice)
/// rules metric approaches out; BuildQueryTimeRTree measures exactly that
/// on the simulated disk.
struct QueryTimeIndexCost {
  uint64_t scan_pages = 0;        // database pages read
  uint64_t data_pages = 0;        // mapped distance-space pages written
  uint64_t index_pages = 0;       // index pages written
  IoStats io;                     // all page IO charged during the build
  double build_millis = 0;
  size_t rtree_nodes = 0;
  size_t rtree_height = 0;
};

/// Scans `data`, maps every row into distance space w.r.t. `query`, spills
/// the mapped data to disk, STR-bulk-loads an R-tree over it and writes the
/// index to disk. Returns the cost ledger; `out_tree` (optional) receives
/// the in-memory tree so callers can run window/kNN queries against it.
/// The two scratch files are deleted before returning (their IO stays
/// counted).
StatusOr<QueryTimeIndexCost> BuildQueryTimeRTree(const StoredDataset& data,
                                                 const SimilaritySpace& space,
                                                 const Object& query,
                                                 StrRTree* out_tree = nullptr);

}  // namespace nmrs

#endif  // NMRS_METRIC_QUERY_TIME_INDEX_H_
