#include "metric/str_rtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace nmrs {

void Mbr::ExpandToPoint(const double* p) {
  for (size_t d = 0; d < lo_.size(); ++d) {
    lo_[d] = std::min(lo_[d], p[d]);
    hi_[d] = std::max(hi_[d], p[d]);
  }
}

void Mbr::ExpandToMbr(const Mbr& other) {
  for (size_t d = 0; d < lo_.size(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
}

bool Mbr::ContainsPoint(const double* p) const {
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (p[d] < lo_[d] || p[d] > hi_[d]) return false;
  }
  return true;
}

bool Mbr::Intersects(const Mbr& other) const {
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (other.hi_[d] < lo_[d] || other.lo_[d] > hi_[d]) return false;
  }
  return true;
}

double Mbr::MinSquaredDist(const double* p) const {
  double sum = 0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    double delta = 0;
    if (p[d] < lo_[d]) {
      delta = lo_[d] - p[d];
    } else if (p[d] > hi_[d]) {
      delta = p[d] - hi_[d];
    }
    sum += delta * delta;
  }
  return sum;
}

StrRTree::StrRTree(size_t dims, size_t fanout)
    : dims_(dims), fanout_(fanout) {
  NMRS_CHECK_GT(dims, 0u);
  NMRS_CHECK_GE(fanout, 2u);
}

void StrRTree::BulkLoad(const std::vector<double>& points,
                        const std::vector<RowId>& ids) {
  NMRS_CHECK_EQ(points.size() % dims_, 0u);
  points_ = points;
  num_points_ = points.size() / dims_;
  if (ids.empty()) {
    ids_.resize(num_points_);
    std::iota(ids_.begin(), ids_.end(), 0);
  } else {
    NMRS_CHECK_EQ(ids.size(), num_points_);
    ids_ = ids;
  }
  nodes_.clear();
  height_ = 0;
  root_ = 0;
  if (num_points_ == 0) {
    nodes_.emplace_back(dims_);  // empty leaf root
    height_ = 1;
    return;
  }

  // --- STR packing of the leaf level. ---
  // Recursively: sort by dimension d, cut into slabs of equal size so each
  // slab packs into fanout^(dims-d-1 levels...) — the standard
  // Sort-Tile-Recursive slab computation.
  std::vector<uint32_t> order(num_points_);
  std::iota(order.begin(), order.end(), 0);

  // leaves needed
  const size_t num_leaves =
      (num_points_ + fanout_ - 1) / fanout_;

  // Recursive tiler: tile `span` of `order` across dimensions [d, dims).
  std::vector<std::vector<uint32_t>> leaf_groups;
  auto tile = [&](auto&& self, size_t begin, size_t end, size_t d) -> void {
    const size_t count = end - begin;
    if (count <= fanout_ || d + 1 >= dims_) {
      // Final dimension (or small span): sort and chop into leaves.
      std::sort(order.begin() + begin, order.begin() + end,
                [&](uint32_t a, uint32_t b) {
                  return PointAt(a)[d] < PointAt(b)[d];
                });
      for (size_t s = begin; s < end; s += fanout_) {
        const size_t e = std::min(end, s + fanout_);
        leaf_groups.emplace_back(order.begin() + s, order.begin() + e);
      }
      return;
    }
    std::sort(order.begin() + begin, order.begin() + end,
              [&](uint32_t a, uint32_t b) {
                return PointAt(a)[d] < PointAt(b)[d];
              });
    // Number of vertical slabs: ceil((P)^(1/(dims-d))) where P = leaves in
    // this span.
    const size_t leaves_here = (count + fanout_ - 1) / fanout_;
    const double frac = 1.0 / static_cast<double>(dims_ - d);
    auto slabs = static_cast<size_t>(
        std::ceil(std::pow(static_cast<double>(leaves_here), frac)));
    slabs = std::max<size_t>(1, slabs);
    const size_t per_slab = (count + slabs - 1) / slabs;
    for (size_t s = begin; s < end; s += per_slab) {
      self(self, s, std::min(end, s + per_slab), d + 1);
    }
  };
  tile(tile, 0, num_points_, 0);
  NMRS_CHECK_GE(leaf_groups.size(), num_leaves);

  // Materialize leaf nodes.
  std::vector<uint32_t> level;
  for (auto& group : leaf_groups) {
    Node node(dims_);
    node.leaf = true;
    node.entries = std::move(group);
    for (uint32_t i : node.entries) node.mbr.ExpandToPoint(PointAt(i));
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(std::move(node));
  }
  height_ = 1;

  // --- Pack upper levels fanout at a time. ---
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t s = 0; s < level.size(); s += fanout_) {
      const size_t e = std::min(level.size(), s + fanout_);
      Node node(dims_);
      node.leaf = false;
      node.entries.assign(level.begin() + s, level.begin() + e);
      for (uint32_t c : node.entries) node.mbr.ExpandToMbr(nodes_[c].mbr);
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(std::move(node));
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level.front();
}

std::vector<RowId> StrRTree::WindowQuery(const Mbr& box) const {
  std::vector<RowId> out;
  if (num_points_ == 0) return out;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.mbr.Intersects(box)) continue;
    if (node.leaf) {
      for (uint32_t i : node.entries) {
        if (box.ContainsPoint(PointAt(i))) out.push_back(ids_[i]);
      }
    } else {
      for (uint32_t c : node.entries) stack.push_back(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RowId> StrRTree::KnnQuery(const double* p, size_t k) const {
  // Best-first search with a priority queue over MINDIST.
  struct QueueEntry {
    double dist;
    bool is_point;
    uint32_t index;  // node id or point index
    bool operator>(const QueueEntry& o) const {
      if (dist != o.dist) return dist > o.dist;
      return index > o.index;  // deterministic
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  std::vector<RowId> result;
  if (num_points_ == 0 || k == 0) return result;
  queue.push({nodes_[root_].mbr.MinSquaredDist(p), false, root_});
  while (!queue.empty() && result.size() < k) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.is_point) {
      result.push_back(ids_[top.index]);
      continue;
    }
    const Node& node = nodes_[top.index];
    if (node.leaf) {
      for (uint32_t i : node.entries) {
        double sum = 0;
        const double* pt = PointAt(i);
        for (size_t d = 0; d < dims_; ++d) {
          const double delta = pt[d] - p[d];
          sum += delta * delta;
        }
        queue.push({sum, true, i});
      }
    } else {
      for (uint32_t c : node.entries) {
        queue.push({nodes_[c].mbr.MinSquaredDist(p), false, c});
      }
    }
  }
  return result;
}

uint64_t StrRTree::IndexPages(size_t page_size) const {
  // Entry = MBR (2*dims doubles) + 8-byte child/row reference.
  const size_t entry_bytes = 2 * dims_ * sizeof(double) + 8;
  const size_t entries_per_page = std::max<size_t>(1, page_size / entry_bytes);
  uint64_t total_entries = 0;
  for (const auto& node : nodes_) total_entries += node.entries.size();
  return (total_entries + entries_per_page - 1) / entries_per_page;
}

}  // namespace nmrs
