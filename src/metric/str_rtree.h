#ifndef NMRS_METRIC_STR_RTREE_H_
#define NMRS_METRIC_STR_RTREE_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace nmrs {

/// Axis-aligned bounding box in m dimensions.
class Mbr {
 public:
  explicit Mbr(size_t dims)
      : lo_(dims, 1e300), hi_(dims, -1e300) {}

  size_t dims() const { return lo_.size(); }
  double lo(size_t d) const { return lo_[d]; }
  double hi(size_t d) const { return hi_[d]; }
  bool empty() const { return hi_[0] < lo_[0]; }

  void ExpandToPoint(const double* p);
  void ExpandToMbr(const Mbr& other);

  bool ContainsPoint(const double* p) const;
  bool Intersects(const Mbr& other) const;

  /// Minimum squared Euclidean distance from point `p` to this box
  /// (0 if inside) — the classic R-tree MINDIST.
  double MinSquaredDist(const double* p) const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

/// Sort-Tile-Recursive bulk-loaded R-tree over m-dimensional points.
///
/// This is the metric-space substrate of §5.7: once a query fixes a
/// Euclidean "distance space" (coordinate i of object O = d_i(O, Q)),
/// classic spatial machinery becomes *possible* — but the tree must be
/// built at query time, and the paper's argument is that the construction
/// IO alone (≥ one full read of the database plus writing out data + index
/// ≈ two database sizes) already exceeds the two sequential scans TRS
/// needs. BuildIoCost() below quantifies exactly that. The tree itself is
/// a complete, tested implementation (window and kNN queries) so the
/// comparison is against a real artifact, not a strawman.
class StrRTree {
 public:
  /// `fanout` = max entries per node (paper-era default 64 for 32 KiB
  /// pages of 2-double MBR entries in 5-d space; configurable).
  StrRTree(size_t dims, size_t fanout = 64);

  /// Bulk-loads the tree from `points` (row-major, n × dims) using
  /// Sort-Tile-Recursive packing. Replaces any previous content.
  /// `ids[i]` is the payload of point i (defaults to 0..n-1).
  void BulkLoad(const std::vector<double>& points,
                const std::vector<RowId>& ids = {});

  size_t dims() const { return dims_; }
  size_t size() const { return num_points_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t height() const { return height_; }

  /// Ids of all points inside `box` (inclusive bounds).
  std::vector<RowId> WindowQuery(const Mbr& box) const;

  /// Ids of the k nearest points to `p` (Euclidean), closest first.
  /// Deterministic tie-break on id.
  std::vector<RowId> KnnQuery(const double* p, size_t k) const;

  /// Estimated disk pages the tree occupies (leaf + internal), given a
  /// page size and the entry encoding (dims × 2 doubles + 8-byte id).
  uint64_t IndexPages(size_t page_size) const;

 private:
  struct Node {
    Mbr mbr;
    bool leaf = true;
    // Leaf: indices into points_/ids_; internal: child node indices.
    std::vector<uint32_t> entries;

    explicit Node(size_t dims) : mbr(dims) {}
  };

  const double* PointAt(size_t i) const {
    return points_.data() + i * dims_;
  }

  size_t dims_;
  size_t fanout_;
  size_t num_points_ = 0;
  size_t height_ = 0;
  uint32_t root_ = 0;
  std::vector<double> points_;
  std::vector<RowId> ids_;
  std::vector<Node> nodes_;
};

}  // namespace nmrs

#endif  // NMRS_METRIC_STR_RTREE_H_
