#include "metric/query_time_index.h"

#include <cstring>

#include "common/timer.h"

namespace nmrs {

namespace {

// Packs `row_bytes`-sized records into pages and appends them to `file`,
// returning the number of pages written.
StatusOr<uint64_t> SpillRecords(SimulatedDisk* disk, FileId file,
                                const std::vector<uint8_t>& blob,
                                size_t record_bytes) {
  const size_t page_size = disk->page_size();
  const size_t records_per_page =
      std::max<size_t>(1, (page_size - sizeof(uint32_t)) / record_bytes);
  const size_t num_records = blob.size() / record_bytes;
  uint64_t pages = 0;
  for (size_t start = 0; start < num_records; start += records_per_page) {
    const size_t end = std::min(num_records, start + records_per_page);
    Page page(page_size);
    const auto count = static_cast<uint32_t>(end - start);
    std::memcpy(page.data(), &count, sizeof(count));
    std::memcpy(page.data() + sizeof(uint32_t),
                blob.data() + start * record_bytes,
                (end - start) * record_bytes);
    NMRS_RETURN_IF_ERROR(disk->AppendPage(file, page).status());
    ++pages;
  }
  return pages;
}

}  // namespace

StatusOr<QueryTimeIndexCost> BuildQueryTimeRTree(const StoredDataset& data,
                                                 const SimilaritySpace& space,
                                                 const Object& query,
                                                 StrRTree* out_tree) {
  SimulatedDisk* disk = data.disk();
  const Schema& schema = data.schema();
  const size_t m = schema.num_attributes();

  Timer timer;
  const IoStats before = disk->stats();
  disk->InvalidateArmPosition();

  QueryTimeIndexCost cost;

  // 1. Full scan of the database, mapping rows into distance space.
  std::vector<double> points;
  std::vector<RowId> ids;
  points.reserve(data.num_rows() * m);
  ids.reserve(data.num_rows());
  RowBatch batch(m, schema.NumNumeric() > 0);
  for (PageId p = 0; p < data.num_pages(); ++p) {
    batch.Clear();
    NMRS_RETURN_IF_ERROR(data.ReadPage(p, &batch));
    ++cost.scan_pages;
    for (size_t i = 0; i < batch.size(); ++i) {
      for (AttrId a = 0; a < m; ++a) {
        double d;
        if (schema.attribute(a).is_numeric) {
          d = space.NumDist(a, batch.numeric(i, a), query.numerics[a]);
        } else {
          d = space.CatDist(a, batch.value(i, a), query.values[a]);
        }
        points.push_back(d);
      }
      ids.push_back(batch.id(i));
    }
  }

  // 2. Write the mapped data out (the distance-space "database" the index
  //    refers into).
  FileId data_file = disk->CreateFile("rtree-distance-space");
  {
    const size_t record_bytes = sizeof(uint64_t) + m * sizeof(double);
    std::vector<uint8_t> blob(ids.size() * record_bytes);
    uint8_t* out = blob.data();
    for (size_t i = 0; i < ids.size(); ++i) {
      std::memcpy(out, &ids[i], sizeof(uint64_t));
      out += sizeof(uint64_t);
      std::memcpy(out, points.data() + i * m, m * sizeof(double));
      out += m * sizeof(double);
    }
    NMRS_ASSIGN_OR_RETURN(cost.data_pages,
                          SpillRecords(disk, data_file, blob, record_bytes));
  }

  // 3. Bulk-load the R-tree and write the index out.
  StrRTree local_tree(m);
  if (out_tree != nullptr) {
    NMRS_CHECK_EQ(out_tree->dims(), m)
        << "out_tree must be constructed with the schema's dimensionality";
  }
  StrRTree& tree = out_tree != nullptr ? *out_tree : local_tree;
  tree.BulkLoad(points, ids);
  cost.rtree_nodes = tree.num_nodes();
  cost.rtree_height = tree.height();

  FileId index_file = disk->CreateFile("rtree-index");
  {
    // Serialize node entries: (2*dims doubles MBR + 8-byte ref) each —
    // the same encoding IndexPages() assumes.
    const size_t entry_bytes = 2 * m * sizeof(double) + 8;
    const uint64_t index_pages = tree.IndexPages(disk->page_size());
    std::vector<uint8_t> blob(static_cast<size_t>(index_pages) *
                              ((disk->page_size() - sizeof(uint32_t)) /
                               entry_bytes) *
                              entry_bytes,
                              0);
    NMRS_ASSIGN_OR_RETURN(cost.index_pages,
                          SpillRecords(disk, index_file, blob, entry_bytes));
  }

  cost.io = disk->stats() - before;
  cost.build_millis = timer.ElapsedMillis();

  NMRS_RETURN_IF_ERROR(disk->DeleteFile(data_file));
  NMRS_RETURN_IF_ERROR(disk->DeleteFile(index_file));
  return cost;
}

}  // namespace nmrs
