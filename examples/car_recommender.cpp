// Car-dealer influence analysis (§1 of the paper): user preference
// profiles live in a space of categorical attributes — manufacturer, fuel
// type, color family, safety package — whose similarities are perceptual
// and non-metric (a diesel feels closer to petrol than to electric, but an
// expert's matrix need not satisfy any triangle inequality).
//
// A car's reverse skyline over the user-profile database is the set of
// users for whom the car is not dominated by any other candidate — the
// users a recommender would plausibly show it to. A dealer of pre-owned
// cars sources more of the influential cars.
//
// This example also contrasts algorithms on the same inventory, showing
// why TRS is "the algorithm of choice".
//
// Run: ./build/examples/car_recommender [num_users]
#include <cstdio>
#include <cstdlib>

#include "nmrs.h"

using namespace nmrs;

namespace {

constexpr const char* kFuel[] = {"petrol", "diesel", "hybrid", "electric",
                                 "lpg"};

Object MakeCar(const Dataset& users, ValueId manufacturer, ValueId fuel,
               ValueId color, ValueId safety) {
  (void)users;
  return Object({manufacturer, fuel, color, safety});
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t num_users =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 15000;

  // Domains: manufacturer (12), fuel (5), color family (7), safety
  // package (4).
  const std::vector<size_t> cards = {12, 5, 7, 4};
  Rng rng(77);
  Rng users_rng = rng.Fork();
  Rng space_rng = rng.Fork();

  // User preference profiles skew toward popular combinations.
  Dataset users = GenerateZipf(num_users, cards, 1.1, users_rng);
  SimilaritySpace perception = MakeRandomSpace(cards, space_rng);

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, users, Algorithm::kTRS);
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  RSOptions opts;
  opts.memory = MemoryBudget::FromFraction(0.10, prepared->stored.num_pages());

  std::printf("user base: %llu profiles\n\n",
              static_cast<unsigned long long>(users.num_rows()));
  std::printf("%-28s %-10s %s\n", "car", "audience", "TRS ms");

  // A small inventory of cars to assess.
  struct Car {
    const char* label;
    Object obj;
  };
  const Car inventory[] = {
      {"make3 petrol red safety2", MakeCar(users, 3, 0, 2, 2)},
      {"make0 electric white top", MakeCar(users, 0, 3, 0, 3)},
      {"make7 diesel grey basic", MakeCar(users, 7, 1, 4, 0)},
      {"make1 hybrid blue safety1", MakeCar(users, 1, 2, 1, 1)},
      {"make11 lpg green safety2", MakeCar(users, 11, 4, 5, 2)},
  };

  const Car* best = nullptr;
  uint64_t best_audience = 0;
  for (const Car& car : inventory) {
    auto result =
        RunReverseSkyline(*prepared, perception, car.obj, Algorithm::kTRS,
                          opts);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-28s %-10llu %.1f\n", car.label,
                static_cast<unsigned long long>(result->stats.result_size),
                result->stats.compute_millis);
    if (result->stats.result_size >= best_audience) {
      best_audience = result->stats.result_size;
      best = &car;
    }
  }
  if (best != nullptr) {
    std::printf("\nsource more of: %s (influences %llu users; fuel=%s)\n",
                best->label, static_cast<unsigned long long>(best_audience),
                kFuel[best->obj.values[1]]);
  }

  // Algorithm comparison on one car: same answer, different costs.
  std::printf("\nalgorithm comparison for '%s':\n", inventory[0].label);
  std::printf("%-8s %-10s %-12s %-10s %-10s\n", "algo", "result",
              "checks", "seq IO", "rand IO");
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto prep = PrepareDataset(&disk, users, algo);
    if (!prep.ok()) return 1;
    auto result =
        RunReverseSkyline(*prep, perception, inventory[0].obj, algo, opts);
    if (!result.ok()) return 1;
    std::printf("%-8s %-10llu %-12llu %-10llu %-10llu\n",
                std::string(AlgorithmName(algo)).c_str(),
                static_cast<unsigned long long>(result->stats.result_size),
                static_cast<unsigned long long>(result->stats.checks),
                static_cast<unsigned long long>(
                    result->stats.io.TotalSequential()),
                static_cast<unsigned long long>(
                    result->stats.io.TotalRandom()));
  }
  return 0;
}
