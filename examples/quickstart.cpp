// Quickstart: reverse skyline over a hand-built catalog with non-metric,
// expert-specified similarities.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>

#include "nmrs.h"

using namespace nmrs;

int main() {
  // 1. Describe the data: laptops with three categorical attributes.
  //    Value ids index into each attribute's domain.
  //      os:     0=Linux, 1=Windows, 2=macOS
  //      vendor: 0=Apple, 1=Lenovo, 2=Dell
  //      gpu:    0=integrated, 1=midrange, 2=workstation
  Dataset laptops(Schema::Categorical({3, 3, 3}));
  laptops.AppendCategoricalRow({0, 1, 1});  // Linux  / Lenovo / midrange
  laptops.AppendCategoricalRow({1, 2, 0});  // Windows/ Dell   / integrated
  laptops.AppendCategoricalRow({2, 0, 0});  // macOS  / Apple  / integrated
  laptops.AppendCategoricalRow({0, 2, 2});  // Linux  / Dell   / workstation
  laptops.AppendCategoricalRow({1, 1, 1});  // Windows/ Lenovo / midrange
  laptops.AppendCategoricalRow({0, 1, 1});  // duplicate of the first

  // 2. Specify how dissimilar attribute values are. The matrices come from
  //    domain knowledge and need not satisfy the triangle inequality —
  //    that's the point of this library.
  DissimilarityMatrix os(3);
  os.SetSymmetric(0, 1, 0.7);  // Linux vs Windows
  os.SetSymmetric(0, 2, 0.3);  // Linux vs macOS (both unix-y)
  os.SetSymmetric(1, 2, 0.9);  // Windows vs macOS
  DissimilarityMatrix vendor(3);
  vendor.SetSymmetric(0, 1, 0.8);
  vendor.SetSymmetric(0, 2, 0.8);
  vendor.SetSymmetric(1, 2, 0.2);  // Lenovo and Dell feel similar
  DissimilarityMatrix gpu(3);
  gpu.SetSymmetric(0, 1, 0.4);
  gpu.SetSymmetric(0, 2, 1.0);
  gpu.SetSymmetric(1, 2, 0.5);

  SimilaritySpace space;
  space.AddCategorical(std::move(os));
  space.AddCategorical(std::move(vendor));
  space.AddCategorical(std::move(gpu));

  // 3. A query object: a user profile expressed in the same vocabulary.
  const Object user({0, 1, 2});  // Linux, Lenovo, workstation GPU

  // 4. Put the dataset on a (simulated) disk and run TRS — the tree-based
  //    algorithm that is the paper's main contribution.
  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, laptops, Algorithm::kTRS);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }
  auto result =
      RunReverseSkyline(*prepared, space, user, Algorithm::kTRS);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 5. The reverse skyline: laptops for which this user is in the skyline
  //    — i.e., laptops with no competitor at least as close to them on
  //    every attribute of the user's profile and strictly closer on one.
  std::printf("Reverse skyline of the user profile (laptop row ids):\n");
  for (RowId r : result->rows) {
    std::printf("  laptop #%llu %s\n",
                static_cast<unsigned long long>(r),
                laptops.GetObject(r).ToString().c_str());
  }
  std::printf("stats: %s\n", result->stats.ToString().c_str());

  // Cross-check with the in-memory oracle (handy in tests).
  const auto oracle = ReverseSkylineOracle(laptops, space, user);
  std::printf("oracle agrees: %s\n",
              oracle == result->rows ? "yes" : "NO (bug!)");
  return oracle == result->rows ? 0 : 1;
}
