// Continuous influence monitoring over a stream (the setting of the
// paper's related work on streaming reverse skylines, here with non-metric
// measures): a job-matching site keeps the reverse skyline of a posted job
// over the sliding window of the most recent candidate profiles. The RS is
// the set of recent candidates for whom no other recent candidate
// dominates the job — the "notify now" list, maintained incrementally as
// profiles arrive and expire.
//
// Run: ./build/examples/streaming_monitor [stream_length] [window]
#include <cstdio>
#include <cstdlib>

#include "nmrs.h"

using namespace nmrs;

int main(int argc, char** argv) {
  const uint64_t stream_length =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  const size_t window =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;

  // Candidate profiles: skill track (12), seniority (5), work mode (3),
  // sector (9).
  const std::vector<size_t> cards = {12, 5, 3, 9};
  Rng rng(777);
  Rng stream_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  SimilaritySpace space = MakeRandomSpace(cards, space_rng);
  Schema schema = Schema::Categorical(cards);

  // The posted job, in the same vocabulary.
  const Object job({4, 2, 1, 3});

  StreamingReverseSkyline monitor(space, schema, job, window);

  Timer timer;
  uint64_t rs_sum = 0, rs_max = 0;
  std::vector<size_t> card_sizes(cards.size());
  std::vector<ValueId> profile(cards.size());
  for (uint64_t t = 0; t < stream_length; ++t) {
    for (size_t a = 0; a < cards.size(); ++a) {
      profile[a] = static_cast<ValueId>(stream_rng.Uniform(cards[a]));
    }
    monitor.Push(t, Object(profile));
    const size_t rs = monitor.CurrentRs().size();
    rs_sum += rs;
    rs_max = std::max<uint64_t>(rs_max, rs);

    if ((t + 1) % (stream_length / 5) == 0) {
      std::printf("t=%-8llu window=%-5zu |RS|=%-4zu (avg %.1f, max %llu)\n",
                  static_cast<unsigned long long>(t + 1),
                  monitor.window_size(), rs,
                  static_cast<double>(rs_sum) / static_cast<double>(t + 1),
                  static_cast<unsigned long long>(rs_max));
    }
  }
  const double ms = timer.ElapsedMillis();
  std::printf("\nprocessed %llu arrivals over a %zu-profile window in "
              "%.0f ms (%.1f us/event, %llu attribute checks)\n",
              static_cast<unsigned long long>(stream_length), window, ms,
              ms * 1000.0 / static_cast<double>(stream_length),
              static_cast<unsigned long long>(monitor.checks()));
  std::printf("the current notify-now list has %zu candidates\n",
              monitor.CurrentRs().size());
  return 0;
}
