// Bichromatic market analysis: customers and products are *different*
// datasets sharing one attribute vocabulary. For a prospective product q,
// the bichromatic reverse skyline over (customers C, catalog P) is the set
// of customers for whom no existing product dominates q — the honest
// version of the paper's §1 promotional-mailing scenario, where customer
// preferences are compared against the product catalog rather than against
// other customers.
//
// Run: ./build/examples/bichromatic_market [num_customers] [num_products]
#include <cstdio>
#include <cstdlib>

#include "nmrs.h"

using namespace nmrs;

int main(int argc, char** argv) {
  const uint64_t num_customers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const uint64_t num_products =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

  // Shared vocabulary: category (10), brand tier (4), style (8),
  // eco-label (3).
  const std::vector<size_t> cards = {10, 4, 8, 3};
  Rng rng(900);
  Rng c_rng = rng.Fork();
  Rng p_rng = rng.Fork();
  Rng s_rng = rng.Fork();
  Dataset customers = GenerateNormal(num_customers, cards, c_rng);
  Dataset catalog = GenerateZipf(num_products, cards, 1.2, p_rng);
  SimilaritySpace perception = MakeRandomSpace(cards, s_rng);

  // Sort the customers once (query-independent) so the tree variant gets
  // prefix sharing; the catalog is streamed as-is.
  SimulatedDisk disk;
  const auto attr_order = AscendingCardinalityOrder(customers.schema());
  const auto order = MultiAttributeSortOrder(customers, attr_order);
  FileId c_file = disk.CreateFile("customers");
  {
    RowWriter writer(&disk, c_file, customers.schema());
    for (RowId src : order) {
      if (!writer.Add(src, customers.RowValues(src), nullptr).ok()) return 1;
    }
    if (!writer.Finish().ok()) return 1;
  }
  StoredDataset stored_customers(&disk, c_file, customers.schema(),
                                 customers.num_rows());
  auto stored_catalog = StoredDataset::Create(&disk, catalog, "catalog");
  if (!stored_catalog.ok()) {
    std::fprintf(stderr, "%s\n", stored_catalog.status().ToString().c_str());
    return 1;
  }

  RSOptions opts;
  opts.memory =
      MemoryBudget::FromFraction(0.10, stored_customers.num_pages());
  opts.attr_order = attr_order;

  std::printf("customers: %llu, catalog: %llu products\n\n",
              static_cast<unsigned long long>(num_customers),
              static_cast<unsigned long long>(num_products));
  std::printf("%-28s %-10s %-12s %-10s\n", "prospective product",
              "audience", "checks", "ms");

  // Candidate products the buyer is considering introducing.
  const Object prospects[] = {
      Object({2, 0, 1, 2}),  // popular category, premium tier, eco
      Object({7, 3, 6, 0}),  // niche category, budget tier
      Object({0, 1, 3, 1}),  // the catalog's most crowded corner
  };
  const char* labels[] = {"premium eco (cat 2)", "budget niche (cat 7)",
                          "crowded corner (cat 0)"};
  for (size_t i = 0; i < 3; ++i) {
    auto tree = BichromaticTreeRS(stored_customers, *stored_catalog,
                                  perception, prospects[i], opts);
    if (!tree.ok()) {
      std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
      return 1;
    }
    std::printf("%-28s %-10llu %-12llu %.1f\n", labels[i],
                static_cast<unsigned long long>(tree->stats.result_size),
                static_cast<unsigned long long>(tree->stats.checks),
                tree->stats.compute_millis);

    // Cross-check the tree variant against the block variant.
    auto block = BichromaticBlockRS(stored_customers, *stored_catalog,
                                    perception, prospects[i], opts);
    if (!block.ok() || block->rows != tree->rows) {
      std::fprintf(stderr, "variant mismatch!\n");
      return 1;
    }
  }
  std::printf("\n(block and tree variants agree on every prospect; the\n"
              " audience is the mailing list for that product's launch)\n");
  return 0;
}
