// Retail promotional mailing (§1): pick the customers to mail about a new
// product offer. Customers are profiled over mixed attributes — loyalty
// tier and preferred category (categorical, expert-specified non-metric
// similarities) plus average basket value and visits per month (numeric).
// The reverse skyline of the offer over the customer base is the set of
// customers whose affinity to the offer is not dominated by any other
// product — exactly the "likely to respond" set the paper motivates.
//
// Demonstrates the §6 machinery: numeric attributes ride along in TRS via
// discretization while staying exact in the answer, and the query can be
// restricted to an attribute subset.
//
// Run: ./build/examples/retail_promotions [num_customers]
#include <cstdio>
#include <cstdlib>

#include "nmrs.h"

using namespace nmrs;

int main(int argc, char** argv) {
  const uint64_t num_customers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;

  // Schema: loyalty tier (4), preferred category (9) categorical; basket
  // value in [0, 100] currency units and visits/month in [0, 100]
  // (scaled), each discretized into 16 buckets for the TRS tree.
  Rng rng(404);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  Dataset customers =
      GenerateMixed(num_customers, {4, 9}, /*num_numeric=*/2,
                    /*buckets_per_numeric=*/16, data_rng);

  SimilaritySpace space;
  space.AddCategorical(MakeRandomMatrix(4, space_rng));
  space.AddCategorical(MakeRandomMatrix(9, space_rng));
  space.AddNumeric(NumericDissimilarity(1.0));   // basket value
  space.AddNumeric(NumericDissimilarity(1.0));   // visit frequency

  // The offer, expressed as an ideal customer profile: gold tier (2),
  // category 5, basket ~70, ~12 visits/month.
  const Object offer = customers.MakeObject({2, 5, 0, 0}, {0, 0, 70.0, 12.0});

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, customers, Algorithm::kTRS);
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  RSOptions opts;
  opts.memory = MemoryBudget::FromFraction(0.10, prepared->stored.num_pages());

  auto mailing = RunReverseSkyline(*prepared, space, offer, Algorithm::kTRS,
                                   opts);
  if (!mailing.ok()) {
    std::fprintf(stderr, "%s\n", mailing.status().ToString().c_str());
    return 1;
  }
  std::printf("customer base: %llu; mailing list: %llu customers "
              "(%.2f%% of base)\n",
              static_cast<unsigned long long>(customers.num_rows()),
              static_cast<unsigned long long>(mailing->stats.result_size),
              100.0 * static_cast<double>(mailing->stats.result_size) /
                  static_cast<double>(customers.num_rows()));
  std::printf("query: %.1f ms compute, %llu seq + %llu rand page IOs\n",
              mailing->stats.compute_millis,
              static_cast<unsigned long long>(
                  mailing->stats.io.TotalSequential()),
              static_cast<unsigned long long>(
                  mailing->stats.io.TotalRandom()));

  std::printf("\nfirst 10 recipients:\n");
  for (size_t i = 0; i < mailing->rows.size() && i < 10; ++i) {
    const RowId r = mailing->rows[i];
    std::printf("  customer %-7llu tier=%u category=%u basket=%.0f "
                "visits=%.0f\n",
                static_cast<unsigned long long>(r), customers.Value(r, 0),
                customers.Value(r, 1), customers.Numeric(r, 2),
                customers.Numeric(r, 3));
  }

  // Campaign variant: the marketing team only cares about category
  // affinity and basket value (attribute subset, §5.6).
  RSOptions subset_opts = opts;
  subset_opts.selected_attrs = {1, 2};
  auto focused = RunReverseSkyline(*prepared, space, offer, Algorithm::kTRS,
                                   subset_opts);
  if (!focused.ok()) {
    std::fprintf(stderr, "%s\n", focused.status().ToString().c_str());
    return 1;
  }
  std::printf("\nfocused campaign (category + basket only): %llu "
              "customers\n",
              static_cast<unsigned long long>(focused->stats.result_size));

  // Sanity: the disk-based answer matches the in-memory oracle.
  const auto oracle = ReverseSkylineOracle(customers, space, offer);
  std::printf("oracle agrees on full query: %s\n",
              oracle == mailing->rows ? "yes" : "NO (bug!)");
  return oracle == mailing->rows ? 0 : 1;
}
