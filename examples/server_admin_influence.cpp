// The paper's running scenario (§1): business-continuity planning for a
// service-delivery organization. Servers are described by categorical
// attributes (OS family, DB engine, network tier, hardware class) whose
// pairwise similarities come from domain experts and are non-metric.
// System administrators are profiled in the same space.
//
// For an admin A, the reverse skyline RS(A) over the server database is
// the set of servers for which A is in the skyline of suitable admins —
// the servers A "influences". Admins with large RS sets are critical;
// skewed influence and the attrition risk of top admins are what the
// business wants to see.
//
// Run: ./build/examples/server_admin_influence [num_servers] [num_admins]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "nmrs.h"

using namespace nmrs;

int main(int argc, char** argv) {
  const uint64_t num_servers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const int num_admins = argc > 2 ? std::atoi(argv[2]) : 12;

  // Server attribute domains: OS (6 flavors), DB (5 engines), network
  // tier (4), hardware class (8).
  const std::vector<size_t> cards = {6, 5, 4, 8};
  Rng rng(2011);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  Rng admin_rng = rng.Fork();

  Dataset servers = GenerateNormal(num_servers, cards, data_rng);
  // Expert-assessed similarity matrices; random here, standing in for the
  // hand-filled matrices of the paper's Figure 1.
  SimilaritySpace expertise = MakeRandomSpace(cards, space_rng);

  std::printf("server fleet: %llu servers, %zu attributes, density %.4f%%\n",
              static_cast<unsigned long long>(servers.num_rows()),
              cards.size(), servers.Density() * 100);

  // Store once, sorted for TRS; the sort is query-independent.
  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, servers, Algorithm::kTRS);
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }

  RSOptions opts;
  opts.memory = MemoryBudget::FromFraction(0.10, prepared->stored.num_pages());

  // Influence assessment: one reverse-skyline query per admin profile,
  // ranked and summarized by the influence-analysis API.
  std::vector<Object> profiles;
  for (int a = 0; a < num_admins; ++a) {
    profiles.push_back(SampleUniformQuery(servers, admin_rng));
  }
  auto report = AnalyzeInfluence(*prepared, expertise, profiles,
                                 Algorithm::kTRS, opts);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-6s %-18s %-12s %s\n", "admin", "profile", "influence",
              "query ms");
  for (const auto& entry : report->ranking) {
    std::printf("A%-5zu %-18s %-12llu %.1f\n", entry.query_index,
                profiles[entry.query_index].ToString().c_str(),
                static_cast<unsigned long long>(entry.influence),
                entry.stats.compute_millis);
  }

  // Concentration diagnostics: the business-continuity red flags from the
  // paper's intro.
  if (report->total_influence > 0) {
    const double top3 = report->TopShare(3);
    std::printf("\ntop-3 admins hold %.1f%% of total influence "
                "(Gini %.2f) -> %s\n",
                top3 * 100, report->Gini(),
                top3 > 0.5 ? "heavily skewed: attrition risk"
                           : "reasonably balanced");
  }
  return 0;
}
