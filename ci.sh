#!/usr/bin/env bash
# CI entry point: plain build + full test suite, then a ThreadSanitizer
# build of the concurrency stress binary (tests/exec/stress_test.cc). The
# TSan build is Debug so NMRS_DCHECKs are active, and only builds the
# gtest-free exec_stress target to keep every instrumented frame inside
# nmrs code.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"

echo "=== plain build + tests ==="
cmake -B build -S .
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

echo "=== ThreadSanitizer build (exec_stress) ==="
cmake -B build-tsan -S . -DNMRS_TSAN=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-tsan -j"${JOBS}" --target exec_stress
./build-tsan/tests/exec_stress

echo "ci: all ok"
