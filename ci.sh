#!/usr/bin/env bash
# CI entry point, ten stages (docs/ROBUSTNESS.md covers asan/chaos/
# replica, docs/KERNELS.md covers 6-7, docs/SHARDING.md covers 8,
# docs/MUTABILITY.md covers 10):
#   1. plain   — RelWithDebInfo build + full ctest suite
#   2. tsan    — ThreadSanitizer build of the gtest-free concurrency
#                stress binary (tests/exec/stress_test.cc), including the
#                concurrent replica-failover / shared-pool stress
#   3. asan    — Address+UBSan build of the gtest-free binaries; the fault
#                path exercises checksum verification, retry loops and
#                quarantine under instrumentation
#   4. chaos   — full 500-config fault-injection soak on the plain build
#                (a 25-config slice already ran inside stage 1's ctest)
#   5. replica — chaos sweep restricted to multi-replica configs: one
#                faulted (sometimes dead) replica out of 2..3, where
#                page-granular failover must recover every query
#   6. nosimd  — NMRS_NO_SIMD build + full ctest: the portable scalar lane
#                evaluators must pass everything the SIMD build passes
#   7. perf    — bench_kernels --quick on the plain build, then
#                tools/check_kernel_gate.py fails the run if the kernel is
#                slower than the scalar loop at the largest cardinality
#   8. shards  — bench_shards --quick, then tools/check_shard_gate.py
#                fails the run if sharded results are not bit-identical to
#                single-shard or the 4-shard modeled speedup drops
#                below 2.0x on the scan-heavy workload
#   9. overlays— bench_overlays --quick, then tools/check_overlay_gate.py
#                fails the run if incremental overlay results are not
#                bit-identical to the per-user patched-space rebuild or
#                the modeled speedup at 256 users / 1% touch drops
#                below 3.0x
#  10. mutations— bench_mutations --quick, then
#                tools/check_mutation_gate.py fails the run if Database
#                snapshot queries are not bit-identical to re-preparing
#                the mutated dataset from scratch or the modeled query
#                slowdown at a 1% delta exceeds 1.3x; plus an nmrs_cli
#                serve smoke over a scripted mutation workload
# Sanitizer builds are Debug so NMRS_DCHECKs are active, and only build
# gtest-free targets to keep every instrumented frame inside nmrs code.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"

echo "=== plain build + tests ==="
cmake -B build -S .
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

echo "=== ThreadSanitizer build (exec_stress) ==="
cmake -B build-tsan -S . -DNMRS_TSAN=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-tsan -j"${JOBS}" --target exec_stress
./build-tsan/tests/exec_stress

echo "=== Address+UBSan build (exec_stress + chaos_soak slice) ==="
cmake -B build-asan -S . -DNMRS_ASAN=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan -j"${JOBS}" --target exec_stress --target chaos_soak
./build-asan/tests/exec_stress
./build-asan/tests/chaos_soak --configs=50 --mutations=10

echo "=== chaos soak (full 500-config sweep + WAL/compaction faults) ==="
./build/tests/chaos_soak --configs=500 --mutations=100

echo "=== replica chaos sweep (multi-replica failover contract) ==="
./build/tests/chaos_soak --configs=150 --min-replicas=2

echo "=== NMRS_NO_SIMD build + tests (portable lane evaluators) ==="
cmake -B build-nosimd -S . -DNMRS_NO_SIMD=ON
cmake --build build-nosimd -j"${JOBS}"
ctest --test-dir build-nosimd --output-on-failure -j"${JOBS}"

echo "=== kernel perf-sanity gate (bench_kernels --quick) ==="
(cd build && ./bench/bench_kernels --quick)
python3 tools/check_kernel_gate.py build/BENCH_kernels.json

echo "=== shard correctness + speedup gate (bench_shards --quick) ==="
(cd build && ./bench/bench_shards --quick)
python3 tools/check_shard_gate.py build/BENCH_shards.json

echo "=== overlay correctness + speedup gate (bench_overlays --quick) ==="
(cd build && ./bench/bench_overlays --quick)
python3 tools/check_overlay_gate.py build/BENCH_overlays.json

echo "=== mutation correctness + slowdown gate (bench_mutations --quick) ==="
(cd build && ./bench/bench_mutations --quick)
python3 tools/check_mutation_gate.py build/BENCH_mutations.json
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "${SERVE_DIR}"' EXIT
./build/tools/nmrs_cli generate --rows=2000 --cards=8,10,6 \
  --out="${SERVE_DIR}/data.csv" --matrices="${SERVE_DIR}/m" --seed=5
printf 'query 3,4,2\ninsert 3,4,2\ndelete 0\nquery 3,4,2\ncompact\nquery 3,4,2\nstats\n' \
  > "${SERVE_DIR}/workload.txt"
./build/tools/nmrs_cli serve --data="${SERVE_DIR}/data.csv" \
  --matrices="${SERVE_DIR}/m" --script="${SERVE_DIR}/workload.txt"

echo "ci: all ok"
