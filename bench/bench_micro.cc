// google-benchmark micro-benchmarks of the library's hot paths: the
// attribute-level pruning check, AL-Tree construction, and the
// IsPrunable-style traversal workload embodied by full TRS vs SRS queries
// on an in-memory-sized dataset.
#include <benchmark/benchmark.h>

#include "core/dominance.h"
#include "core/dominance_kernel.h"
#include "core/query_distance_table.h"
#include "data/columnar_batch.h"
#include "core/skyline.h"
#include "ops/topk.h"
#include "core/pipeline.h"
#include "altree/al_tree.h"
#include "data/generators.h"
#include "order/attribute_order.h"

namespace nmrs {
namespace {

struct MicroData {
  Dataset data;
  SimilaritySpace space;
  Object query;

  explicit MicroData(uint64_t rows, size_t attrs = 5, size_t values = 50)
      : data(Schema::Categorical(std::vector<size_t>(attrs, values))) {
    Rng rng(1234);
    Rng data_rng = rng.Fork();
    Rng space_rng = rng.Fork();
    Rng query_rng = rng.Fork();
    const std::vector<size_t> cards(attrs, values);
    data = GenerateNormal(rows, cards, data_rng);
    space = MakeRandomSpace(cards, space_rng);
    query = SampleUniformQuery(data, query_rng);
  }
};

void BM_PruneCheck(benchmark::State& state) {
  MicroData d(10000);
  PruneContext ctx(d.space, d.data.schema(), d.query, {});
  ctx.SetCandidate(d.data.RowValues(0), nullptr);
  uint64_t checks = 0;
  RowId y = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.Prunes(d.data.RowValues(y), nullptr, &checks));
    y = (y + 1) % d.data.num_rows();
    if (y == 0) y = 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PruneCheck);

// Same workload through the per-query memo: identical verdicts, but both
// sides of every attribute check are flat array loads instead of the
// SimilaritySpace -> DissimilarityMatrix double indirection.
void BM_PruneCheckMemoized(benchmark::State& state) {
  MicroData d(10000);
  const auto selected = ResolveSelectedAttrs(d.data.schema(), {});
  QueryDistanceTable table(d.space, d.data.schema(), d.query, selected);
  PruneContext ctx(d.space, d.data.schema(), d.query, {}, &table);
  ctx.SetCandidate(d.data.RowValues(0), nullptr);
  uint64_t checks = 0;
  RowId y = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.Prunes(d.data.RowValues(y), nullptr, &checks));
    y = (y + 1) % d.data.num_rows();
    if (y == 0) y = 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PruneCheckMemoized);

// The block-kernel counterpart (core/dominance_kernel.h): verdicts and
// scalar-equivalent check counts for the whole 10k-row columnar batch per
// iteration, gather -> compare -> movemask with runtime dispatch. Items
// processed counts rows, so items/sec is directly comparable to the
// per-row loops above.
void BM_PruneCheckKernel(benchmark::State& state) {
  MicroData d(10000);
  const auto selected = ResolveSelectedAttrs(d.data.schema(), {});
  QueryDistanceTable table(d.space, d.data.schema(), d.query, selected);
  PruneContext ctx(d.space, d.data.schema(), d.query, {}, &table);
  RowBatch batch(d.data.schema().num_attributes(), false);
  for (RowId r = 0; r < d.data.num_rows(); ++r) {
    batch.Append(r, d.data.RowValues(r), nullptr);
  }
  ColumnarBatch cols;
  cols.Build(batch);
  DominanceKernel kernel(ctx, cols);
  uint64_t checks = 0;
  RowId x = 0;
  for (auto _ : state) {
    ctx.SetCandidate(d.data.RowValues(x), nullptr);
    kernel.BeginCandidate();
    benchmark::DoNotOptimize(kernel.CountPruners(0, cols.size(), &checks));
    x = (x + 1) % d.data.num_rows();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cols.size()));
}
BENCHMARK(BM_PruneCheckKernel);

void BM_ALTreeInsert(benchmark::State& state) {
  MicroData d(static_cast<uint64_t>(state.range(0)));
  const auto order = AscendingCardinalityOrder(d.data.schema());
  for (auto _ : state) {
    ALTree tree(d.data.schema(), order);
    for (RowId r = 0; r < d.data.num_rows(); ++r) {
      tree.Insert(r, d.data.RowValues(r), nullptr);
    }
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ALTreeInsert)->Arg(1000)->Arg(10000);

void BM_ALTreePrepareForSearch(benchmark::State& state) {
  MicroData d(10000);
  const auto order = AscendingCardinalityOrder(d.data.schema());
  ALTree tree(d.data.schema(), order);
  for (RowId r = 0; r < d.data.num_rows(); ++r) {
    tree.Insert(r, d.data.RowValues(r), nullptr);
  }
  for (auto _ : state) {
    tree.PrepareForSearch();
    benchmark::DoNotOptimize(tree.Children(ALTree::kRootId).size());
  }
}
BENCHMARK(BM_ALTreePrepareForSearch);

void RunFullQuery(benchmark::State& state, Algorithm algo) {
  MicroData d(static_cast<uint64_t>(state.range(0)));
  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, d.data, algo, {});
  NMRS_CHECK(prepared.ok());
  RSOptions opts;
  opts.memory = MemoryBudget::FromFraction(0.10, prepared->stored.num_pages());
  for (auto _ : state) {
    auto result = RunReverseSkyline(*prepared, d.space, d.query, algo, opts);
    NMRS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->rows.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_QuerySRS(benchmark::State& state) {
  RunFullQuery(state, Algorithm::kSRS);
}
void BM_QueryTRS(benchmark::State& state) {
  RunFullQuery(state, Algorithm::kTRS);
}
BENCHMARK(BM_QuerySRS)->Arg(5000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueryTRS)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_SkylineBNL(benchmark::State& state) {
  MicroData d(static_cast<uint64_t>(state.range(0)), 4, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DynamicSkylineBNL(d.data, d.space, d.query).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
void BM_SkylineTree(benchmark::State& state) {
  MicroData d(static_cast<uint64_t>(state.range(0)), 4, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TreeDynamicSkyline(d.data, d.space, d.query).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SkylineBNL)->Arg(2000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkylineTree)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_TopKOverTree(benchmark::State& state) {
  MicroData d(10000);
  WeightedDistance w = WeightedDistance::Uniform(5);
  // The AL-Tree is a query-independent index: built once, reused.
  ALTree tree(d.data.schema(), AscendingCardinalityOrder(d.data.schema()));
  for (RowId r = 0; r < d.data.num_rows(); ++r) {
    tree.Insert(r, d.data.RowValues(r), nullptr);
  }
  tree.PrepareForSearch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TopKOverTree(tree, d.data.schema(), d.space, d.query, w, 10).size());
  }
}
void BM_TopKScan(benchmark::State& state) {
  MicroData d(10000);
  WeightedDistance w = WeightedDistance::Uniform(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TopKScan(d.data, d.space, d.query, w, 10).size());
  }
}
BENCHMARK(BM_TopKOverTree);
BENCHMARK(BM_TopKScan);

}  // namespace
}  // namespace nmrs
