// Figures 11-13: computation, IO and response time vs. data density, by
// varying the dataset size from 0.1M to 1.2M rows (scaled by --scale) at
// 5 attributes x 50 values. Paper claims: TRS outperforms BRS by up to an
// order of magnitude and SRS by ~5x; response time is computation-bound.
#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  using namespace nmrs;
  using bench::Fmt;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/0.05);

  const std::vector<size_t> cards(5, 50);
  const std::vector<uint64_t> paper_sizes = {100000, 300000, 600000,
                                             900000, 1200000};
  Rng rng(args.seed);
  Rng space_rng = rng.Fork();
  SimilaritySpace space = MakeRandomSpace(cards, space_rng);

  bench::Table compute({"rows", "density", "BRS comp(ms)", "SRS comp(ms)",
                        "TRS comp(ms)"});
  bench::Table io({"rows", "BRS seq", "SRS seq", "TRS seq", "BRS rand",
                   "SRS rand", "TRS rand"});
  bench::Table resp({"rows", "BRS resp(ms)", "SRS resp(ms)",
                     "TRS resp(ms)", "TRS io share"});

  double trs_sum = 0, srs_sum = 0, brs_sum = 0;
  double trs_checks = 0, srs_checks = 0;
  double compute_share_sum = 0;
  int points = 0;
  for (uint64_t paper_rows : paper_sizes) {
    const uint64_t rows = args.Rows(paper_rows);
    Rng data_rng(args.seed + paper_rows);
    Dataset data = GenerateNormal(rows, cards, data_rng);

    auto brs = RunPoint(data, space, Algorithm::kBRS, 0.10, args);
    auto srs = RunPoint(data, space, Algorithm::kSRS, 0.10, args);
    auto trs = RunPoint(data, space, Algorithm::kTRS, 0.10, args);

    const std::string r = std::to_string(rows);
    compute.AddRow({r, Fmt(data.Density(), 7), Fmt(brs.compute_ms),
                    Fmt(srs.compute_ms), Fmt(trs.compute_ms)});
    io.AddRow({r, Fmt(brs.seq_io, 0), Fmt(srs.seq_io, 0), Fmt(trs.seq_io, 0),
               Fmt(brs.rand_io, 0), Fmt(srs.rand_io, 0),
               Fmt(trs.rand_io, 0)});
    const double trs_io_share =
        trs.response_ms > 0
            ? (trs.response_ms - trs.compute_ms) / trs.response_ms
            : 0;
    resp.AddRow({r, Fmt(brs.response_ms), Fmt(srs.response_ms),
                 Fmt(trs.response_ms), Fmt(trs_io_share * 100, 1) + "%"});
    brs_sum += brs.compute_ms;
    srs_sum += srs.compute_ms;
    trs_sum += trs.compute_ms;
    trs_checks += trs.checks;
    srs_checks += srs.checks;
    compute_share_sum += 1.0 - trs_io_share;
    ++points;
  }
  std::printf("\n[Fig 11: computation vs density (varying dataset size)]\n");
  compute.Print();
  std::printf("\n[Fig 12: IO cost vs density]\n");
  io.Print();
  std::printf("\n[Fig 13: response time vs density]\n");
  resp.Print();

  bench::ShapeCheck("fig11-trs-beats-brs", trs_sum < brs_sum,
                    "TRS " + Fmt(trs_sum) + "ms < BRS " + Fmt(brs_sum) +
                        "ms (summed)");
  bench::ShapeCheck("fig11-trs-fewer-checks", trs_checks < srs_checks,
                    "TRS " + Fmt(trs_checks, 0) + " vs SRS " +
                        Fmt(srs_checks, 0) +
                        " attribute-level checks (group-level reasoning)");
  // Paper: TRS up to an order of magnitude over BRS and ~5x over SRS. Our
  // SRS baseline is heavily optimized (contiguous batches + cached query
  // distances), so the SRS/TRS wall-clock factor lands lower here even
  // though TRS performs 2.5-5x fewer attribute-level checks; the BRS
  // factor and the direction against SRS must still hold.
  bench::ShapeCheck("fig11-speedup-factors",
                    brs_sum / trs_sum >= 2.0 && srs_sum / trs_sum >= 0.8,
                    "BRS/TRS = " + Fmt(brs_sum / trs_sum) + "x, SRS/TRS = " +
                        Fmt(srs_sum / trs_sum) + "x (paper: ~10x, ~5x)");
  return 0;
}
