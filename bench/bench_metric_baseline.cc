// §5.7: applicability of metric-space approaches. Once a query fixes the
// Euclidean "distance space", an R-tree *could* index it — but it must be
// built at query time: read the database once and write out the mapped
// data plus the index (≥ 3 database-sized IO streams, plus random IO in
// practice). This bench quantifies that construction cost on the simulated
// disk and compares it against the *complete* TRS query, reproducing the
// paper's conclusion that query-time index construction alone rules the
// approach out.
#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "metric/query_time_index.h"

int main(int argc, char** argv) {
  using namespace nmrs;
  using bench::Fmt;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/0.05);

  bench::Banner("Query-time R-tree construction vs complete TRS query");
  bench::Table table({"rows", "D pages", "build IO (pages)", "build seq",
                      "build rand", "TRS query IO", "build/TRS"});

  double worst_ratio = 1e300;
  const std::vector<size_t> cards(5, 50);
  Rng master(args.seed);
  Rng space_rng = master.Fork();
  SimilaritySpace space = MakeRandomSpace(cards, space_rng);
  for (uint64_t paper_rows : {200000ull, 600000ull, 1200000ull}) {
    const uint64_t rows = args.Rows(paper_rows);
    Rng data_rng(args.seed + paper_rows);
    Dataset data = GenerateNormal(rows, cards, data_rng);

    SimulatedDisk disk;
    auto prepared = PrepareDataset(&disk, data, Algorithm::kTRS, {});
    NMRS_CHECK(prepared.ok());
    Rng qrng(args.seed * 7919 + 17);
    const Object q = SampleUniformQuery(data, qrng);

    RSOptions opts;
    opts.memory =
        MemoryBudget::FromFraction(0.10, prepared->stored.num_pages());
    auto trs = RunReverseSkyline(*prepared, space, q, Algorithm::kTRS, opts);
    NMRS_CHECK(trs.ok());

    auto cost = BuildQueryTimeRTree(prepared->stored, space, q);
    NMRS_CHECK(cost.ok());

    const double ratio = static_cast<double>(cost->io.Total()) /
                         static_cast<double>(trs->stats.io.Total());
    worst_ratio = std::min(worst_ratio, ratio);
    table.AddRow({std::to_string(rows),
                  std::to_string(prepared->stored.num_pages()),
                  std::to_string(cost->io.Total()),
                  std::to_string(cost->io.TotalSequential()),
                  std::to_string(cost->io.TotalRandom()),
                  std::to_string(trs->stats.io.Total()),
                  Fmt(ratio, 2) + "x"});
  }
  table.Print();
  std::printf("(the build cost excludes actually *answering* the reverse\n"
              " skyline query — it is a lower bound on any metric-space\n"
              " approach's per-query cost)\n");
  bench::ShapeCheck("sec5.7-construction-dominates", worst_ratio > 1.0,
                    "query-time index construction is " + Fmt(worst_ratio, 2) +
                        "x a full TRS query's IO at minimum");
  return 0;
}
