#ifndef NMRS_BENCH_BENCH_UTIL_H_
#define NMRS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "data/dataset.h"
#include "shard/message_stats.h"
#include "sim/similarity_space.h"
#include "storage/io_stats.h"

namespace nmrs {
namespace bench {

/// Shared CLI knobs. Every bench accepts:
///   --scale=<f>   fraction of the paper's dataset sizes (default per bench)
///   --seed=<n>    master RNG seed
///   --queries=<n> query objects averaged per data point
///   --quick       shrink everything for a smoke run
///   --tiles=<n>   tiles per dimension for T-SRS / T-TRS
struct Args {
  double scale = 0.05;
  uint64_t seed = 42;
  int queries = 2;
  bool quick = false;
  size_t tiles = 4;

  static Args Parse(int argc, char** argv, double default_scale);

  uint64_t Rows(uint64_t paper_rows) const {
    const double s = quick ? scale / 10.0 : scale;
    const auto rows = static_cast<uint64_t>(static_cast<double>(paper_rows) * s);
    return rows < 50 ? 50 : rows;
  }
};

/// Averaged per-algorithm measurements for one experimental point.
struct AlgoMetrics {
  double compute_ms = 0;
  double response_ms = 0;
  double seq_io = 0;
  double rand_io = 0;
  double checks = 0;
  double survivors = 0;
  double result_size = 0;
};

/// Prepares `data` for `algo` on a fresh 32 KiB-page disk and runs
/// `queries` uniform query objects (seeded), averaging the stats. Memory
/// budget is `mem_fraction` of the dataset's on-disk size.
AlgoMetrics RunPoint(const Dataset& data, const SimilaritySpace& space,
                     Algorithm algo, double mem_fraction, const Args& args,
                     const std::vector<AttrId>& selected = {});

/// Collects one flat JSON object per benchmark run and writes them as
///   {"benchmark": "<name>", "runs": [{...}, ...]}
/// — a machine-readable artifact alongside the printed tables (e.g.
/// BENCH_parallel.json). Values are kept in insertion order.
class JsonWriter {
 public:
  explicit JsonWriter(std::string benchmark_name);

  /// Starts a new run object; subsequent Field() calls attach to it.
  void BeginRun();
  void Field(const std::string& key, double value);
  void Field(const std::string& key, uint64_t value);
  void Field(const std::string& key, const std::string& value);

  /// Serializes to `path`, returning false (with a message on stderr) on
  /// IO failure.
  bool WriteFile(const std::string& path) const;

  /// The keys of run `i` in insertion order — what schema-pin tests and
  /// gate scripts introspect instead of re-parsing the JSON.
  std::vector<std::string> RunKeys(size_t i) const;
  size_t num_runs() const { return runs_.size(); }

 private:
  std::string name_;
  // Each run is a list of (key, pre-encoded JSON value) pairs.
  std::vector<std::vector<std::pair<std::string, std::string>>> runs_;
};

/// Emits the standard IO field block every IO-reporting bench shares: the
/// four raw read/write counters plus the derived total_seq_io /
/// total_rand_io, the buffer-pool counters (cache_hits / cache_misses /
/// cache_evictions / cache_hit_ratio), the fault counters
/// (transient_retries / checksum_failures / quarantined_pages) and the
/// replica failover counters (failovers / replica_reads_total). Every
/// IoStats counter is represented — a static_assert in the implementation
/// pins sizeof(IoStats), so growing IoStats without extending this emitter
/// fails the build instead of silently dropping the new counter (which is
/// exactly what happened to the fault counters once). Fields not exercised
/// by a run are zero, keeping one JSON schema across uncached, cached,
/// clean and chaos runs. Call between BeginRun() and the next BeginRun().
void EmitIoFields(JsonWriter* json, const IoStats& io);

/// Emits the overlay-telemetry block of a multi-tenant run — the
/// classification split (sensitive_rows / invariant_rows plus the derived
/// sensitive_fraction) and the re-check work (recheck_scans /
/// recheck_checks / recheck_pair_tests). The five counters mirror
/// OverlayBatchResult / ShardedOverlayBatchResult field for field (both
/// carry the same telemetry surface, so the emitter takes the counters
/// rather than either struct); extending those structs means extending
/// this emitter and the schema-pin test together. Zero for
/// non-overlay runs, keeping one schema across plain and overlay benches.
void EmitOverlayFields(JsonWriter* json, uint64_t sensitive_rows,
                       uint64_t invariant_rows, uint64_t recheck_scans,
                       uint64_t recheck_checks, uint64_t recheck_pair_tests);

/// Emits the exchange-traffic block of a sharded run — net_messages /
/// net_bytes / net_rounds plus the modeled net_millis under `net` —
/// sizeof-pinned against MessageStats like EmitIoFields is against
/// IoStats. Zero for single-shard runs, keeping one schema across shard
/// counts.
void EmitMessageFields(JsonWriter* json, const MessageStats& messages,
                       const MessageCostModel& net = {});

/// Aligned-column table printer for the figure/table reproductions.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string Fmt(double v, int precision = 1);

/// Prints "SHAPE-CHECK <name>: OK|VIOLATED (<detail>)" — the qualitative
/// claim of the paper that this experiment is expected to reproduce.
void ShapeCheck(const std::string& name, bool ok, const std::string& detail);

/// Section banner.
void Banner(const std::string& title);

}  // namespace bench
}  // namespace nmrs

#endif  // NMRS_BENCH_BENCH_UTIL_H_
