// Figure 19: response time vs. attribute subsets (paper: 100k rows, 7
// attributes, 50 values; scaled by --scale). Compares SRS and TRS on
// multi-attribute-sorted data with T-SRS and T-TRS on Z-order tiled data.
// Paper claims: SRS deteriorates when the chosen attributes are not a
// prefix of the sort order; T-SRS is insensitive; TRS stays competitive
// across all selections (tiling matters for SRS, the plain sort is enough
// for TRS).
#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"
#include "order/attribute_order.h"

int main(int argc, char** argv) {
  using namespace nmrs;
  using bench::Fmt;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/0.1);
  const uint64_t rows = args.Rows(100000);
  const std::vector<size_t> cards(7, 50);
  Rng rng(args.seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  Dataset data = GenerateNormal(rows, cards, data_rng);
  SimilaritySpace space = MakeRandomSpace(cards, space_rng);

  bench::Banner("Attribute subsets, " + std::to_string(rows) +
                " rows x 7 attrs x 50 values; sort order = [A1..A7]");

  // The sort order is the physical order A1..A7, as in the paper's setup,
  // so subset {A1,A2,A3} is a prefix and {A5,A6,A7} is not.
  PrepareOptions prep;
  prep.attr_order = IdentityOrder(data.schema());
  prep.tiles_per_dim = args.tiles;

  struct Subset {
    std::string name;
    std::vector<AttrId> attrs;
  };
  const std::vector<Subset> subsets = {
      {"A1-A3 (prefix)", {0, 1, 2}},  {"A2-A4", {1, 2, 3}},
      {"A3-A5", {2, 3, 4}},           {"A5-A7 (suffix)", {4, 5, 6}},
      {"A1,A4,A7", {0, 3, 6}},        {"all", {}},
  };

  bench::Table resp({"subset", "SRS(ms)", "T-SRS(ms)", "TRS(ms)",
                     "T-TRS(ms)"});  // computation time: the paper's
  // fig-19 response times are computation-dominated at this density
  double srs_prefix = 0, srs_suffix = 0;
  double tsrs_prefix = 0, tsrs_suffix = 0;
  double trs_max = 0, srs_max = 0;
  for (const Subset& subset : subsets) {
    bench::Args point_args = args;
    auto srs =
        RunPoint(data, space, Algorithm::kSRS, 0.10, point_args, subset.attrs);
    auto tsrs = RunPoint(data, space, Algorithm::kTileSRS, 0.10, point_args,
                         subset.attrs);
    auto trs =
        RunPoint(data, space, Algorithm::kTRS, 0.10, point_args, subset.attrs);
    auto ttrs = RunPoint(data, space, Algorithm::kTileTRS, 0.10, point_args,
                         subset.attrs);
    resp.AddRow({subset.name, Fmt(srs.compute_ms), Fmt(tsrs.compute_ms),
                 Fmt(trs.compute_ms), Fmt(ttrs.compute_ms)});
    if (subset.name.find("prefix") != std::string::npos) {
      srs_prefix = srs.compute_ms;
      tsrs_prefix = tsrs.compute_ms;
    }
    if (subset.name.find("suffix") != std::string::npos) {
      srs_suffix = srs.compute_ms;
      tsrs_suffix = tsrs.compute_ms;
    }
    trs_max = std::max(trs_max, trs.compute_ms);
    srs_max = std::max(srs_max, srs.compute_ms);
  }
  std::printf("\n[Fig 19: computation time vs attribute subsets (paper plots response; computation-dominated here)]\n");
  resp.Print();

  // SRS suffers on non-prefix subsets relative to its prefix performance;
  // tiling flattens that gap.
  const double srs_degradation = srs_suffix / std::max(srs_prefix, 1e-9);
  const double tsrs_degradation = tsrs_suffix / std::max(tsrs_prefix, 1e-9);
  bench::ShapeCheck("fig19-srs-prefix-sensitivity",
                    srs_degradation > tsrs_degradation,
                    "SRS suffix/prefix = " + Fmt(srs_degradation, 2) +
                        "x vs T-SRS " + Fmt(tsrs_degradation, 2) + "x");
  bench::ShapeCheck("fig19-trs-robust", trs_max <= srs_max,
                    "worst TRS " + Fmt(trs_max) + "ms <= worst SRS " +
                        Fmt(srs_max) + "ms");
  return 0;
}
