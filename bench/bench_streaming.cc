// Extension bench (related work [29], streaming reverse skylines): the
// incremental sliding-window maintenance of core/streaming.h against the
// naive alternative of recomputing RS(window) from scratch on every
// arrival. Expected: the incremental maintainer is orders of magnitude
// cheaper per event because most arrivals touch only the new object and
// the few objects whose remembered pruner expired.
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "core/skyline.h"
#include "core/streaming.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  using namespace nmrs;
  using bench::Fmt;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/1.0);

  const uint64_t events = args.quick ? 2000 : 20000;
  const std::vector<size_t> cards = {10, 6, 8, 4};
  Rng rng(args.seed);
  Rng stream_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  SimilaritySpace space = MakeRandomSpace(cards, space_rng);
  Schema schema = Schema::Categorical(cards);
  const Object query({3, 2, 5, 1});

  bench::Banner("Streaming RS: incremental vs recompute-per-event (" +
                std::to_string(events) + " events)");
  bench::Table table({"window", "incremental us/event", "checks/event",
                      "recompute us/event", "speedup"});

  double worst_speedup = 1e300;
  for (size_t window : {100u, 400u, 1600u}) {
    // Pre-generate the stream so both contenders see identical data.
    std::vector<Object> stream;
    stream.reserve(events);
    std::vector<ValueId> profile(cards.size());
    for (uint64_t t = 0; t < events; ++t) {
      for (size_t a = 0; a < cards.size(); ++a) {
        profile[a] = static_cast<ValueId>(stream_rng.Uniform(cards[a]));
      }
      stream.emplace_back(profile);
    }

    // Incremental maintainer.
    StreamingReverseSkyline inc(space, schema, query, window);
    Timer inc_timer;
    for (uint64_t t = 0; t < events; ++t) inc.Push(t, stream[t]);
    const double inc_us = inc_timer.ElapsedMillis() * 1000.0 /
                          static_cast<double>(events);
    const double checks_per_event =
        static_cast<double>(inc.checks()) / static_cast<double>(events);

    // Recompute-from-scratch baseline, on a subsample of events (it is too
    // slow to run per event at full length; scale the measured time).
    const uint64_t probe_every = 50;
    std::deque<Object> win;
    Timer rec_timer;
    uint64_t probes = 0;
    for (uint64_t t = 0; t < events; ++t) {
      win.push_back(stream[t]);
      if (win.size() > window) win.pop_front();
      if (t % probe_every != 0) continue;
      ++probes;
      Dataset snapshot(schema);
      for (const Object& o : win) snapshot.AppendRow(o.values, o.numerics);
      auto rs = ReverseSkylineOracle(snapshot, space, query);
      (void)rs;
    }
    const double rec_us =
        rec_timer.ElapsedMillis() * 1000.0 / static_cast<double>(probes);
    const double speedup = rec_us / std::max(inc_us, 1e-9);
    worst_speedup = std::min(worst_speedup, speedup);
    table.AddRow({std::to_string(window), Fmt(inc_us, 2),
                  Fmt(checks_per_event, 1), Fmt(rec_us, 1),
                  Fmt(speedup, 1) + "x"});
  }
  table.Print();
  bench::ShapeCheck("streaming-incremental-wins", worst_speedup > 2.0,
                    "incremental maintenance at least " +
                        Fmt(worst_speedup, 1) +
                        "x cheaper per event than recomputation");
  return 0;
}
