// Sharded scatter/gather throughput (docs/SHARDING.md): one frozen
// PreparedDataset partitioned into 1..4 shards, a scan-heavy BRS batch run
// through ShardedQueryEngine at each shard count. Each shard models one
// machine with --workers pool workers over private DiskViews, so the
// modeled makespan is the busiest (shard, worker) lane plus the exchange's
// modeled network cost — the scatter phases overlap across shards, the
// pruner exchange is the serialized coordinator tax. Result rows are
// checked bit-identical across every shard count and both partitioners
// (the exchange's correctness contract), and CI gates on the 4-shard
// modeled speedup (tools/check_shard_gate.py). Emits BENCH_shards.json.
//
// Extra flags on top of bench_util's: none. The workload is deliberately
// IO-dominated (wide rows, small memory budget) so the modeled speedup
// reflects the sharded scan, not host compute noise.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "data/generators.h"
#include "exec/sharded_engine.h"
#include "sim/dissimilarity_matrix.h"

namespace nmrs {
namespace bench {
namespace {

void Run(int argc, char** argv) {
  Args args = Args::Parse(argc, argv, 1.0);
  const uint64_t rows = args.Rows(100000);
  const size_t num_queries = args.quick ? 12 : 48;
  constexpr size_t kWorkers = 4;

  Banner("Sharded scatter/gather: modeled speedup vs shard count");
  std::printf("dataset: %llu normal-distributed objects over 4 attributes, "
              "batch of %zu BRS queries, %zu workers per shard\n",
              static_cast<unsigned long long>(rows), num_queries, kWorkers);

  Rng rng(args.seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards(4, 12);
  Dataset data = GenerateNormal(rows, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, data, Algorithm::kBRS);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  Table table({"shards", "by", "wall_ms", "modeled_makespan_ms",
               "exchange_ms", "modeled_qps", "speedup_vs_1"});
  JsonWriter json("shards");

  std::vector<std::vector<RowId>> reference_rows;
  double base_makespan = 0;
  double speedup_at_4 = 0;
  bool identical_everywhere = true;

  auto run_point = [&](int shards, ShardBy by) {
    ShardPlanOptions plan;
    plan.num_shards = shards;
    plan.shard_by = by;
    auto sharded = ShardedDataset::Partition(*prepared, plan);
    NMRS_CHECK(sharded.ok()) << sharded.status();

    ShardedEngineOptions opts;
    opts.engine.num_workers = kWorkers;
    opts.engine.rs.memory =
        MemoryBudget::FromFraction(0.05, prepared->stored.num_pages());
    // Every shard is one machine with a fixed-size page cache — a quarter
    // of the base dataset plus slack. One machine thrashes scanning the
    // whole file; four machines each hold their shard resident after the
    // first scan. Aggregate cache growing with the fleet is exactly the
    // scan-heavy scale-out win the gate checks.
    opts.engine.cache_pages = prepared->stored.num_pages() / 4 + 2;
    ShardedQueryEngine engine(*sharded, space, Algorithm::kBRS, opts);
    auto batch = engine.RunBatch(queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    NMRS_CHECK(batch->ok()) << batch->first_error();

    bool identical = true;
    if (reference_rows.empty()) {
      for (const auto& r : batch->results) reference_rows.push_back(r.rows);
    } else {
      for (size_t i = 0; i < batch->results.size(); ++i) {
        if (batch->results[i].rows != reference_rows[i]) identical = false;
      }
    }
    identical_everywhere = identical_everywhere && identical;

    const double makespan = batch->ModeledMakespanMillis();
    if (shards == 1) base_makespan = makespan;
    const double speedup = makespan > 0 ? base_makespan / makespan : 0;
    if (shards == 4 && by == ShardBy::kZOrderRange) speedup_at_4 = speedup;

    table.AddRow({std::to_string(shards), std::string(ShardByName(by)),
                  Fmt(batch->wall_millis), Fmt(makespan),
                  Fmt(batch->ExchangeModeledMillis(), 2),
                  Fmt(batch->ModeledQps(), 2), Fmt(speedup, 2)});

    json.BeginRun();
    json.Field("shards", static_cast<uint64_t>(shards));
    json.Field("shard_by", std::string(ShardByName(by)));
    json.Field("workers", static_cast<uint64_t>(kWorkers));
    json.Field("num_rows", rows);
    json.Field("num_queries", static_cast<uint64_t>(num_queries));
    json.Field("identical", static_cast<uint64_t>(identical ? 1 : 0));
    json.Field("partition_millis", sharded->partition_millis());
    json.Field("wall_millis", batch->wall_millis);
    json.Field("modeled_makespan_millis", makespan);
    json.Field("queries_per_sec", batch->ModeledQps());
    json.Field("speedup_vs_1_shard", speedup);
    EmitIoFields(&json, batch->total_io);
    EmitMessageFields(&json, batch->total_messages, batch->net);
  };

  for (int shards = 1; shards <= 4; ++shards) {
    run_point(shards, ShardBy::kZOrderRange);
  }
  // Hash partitioning at the widest fan-out: same rows, its own exchange
  // profile (uniform shards ship more candidates than Z-order-local ones).
  run_point(4, ShardBy::kHash);

  table.Print();

  ShapeCheck("shard-rows-bit-identical", identical_everywhere,
             "result rows identical across shard counts and partitioners");
  ShapeCheck("shard-modeled-speedup", speedup_at_4 >= 2.0,
             "modeled makespan speedup at 4 z-order shards = " +
                 Fmt(speedup_at_4, 2) + "x (want >= 2.0x)");

  json.WriteFile("BENCH_shards.json");
}

}  // namespace
}  // namespace bench
}  // namespace nmrs

int main(int argc, char** argv) {
  nmrs::bench::Run(argc, argv);
  return 0;
}
