#include "bench_util.h"

#include <cstdio>
#include <cstring>
#include <string>

#include "common/check.h"
#include "data/generators.h"

namespace nmrs {
namespace bench {

Args Args::Parse(int argc, char** argv, double default_scale) {
  Args args;
  args.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--scale=")) {
      args.scale = std::atof(v);
    } else if (const char* v = value_of("--seed=")) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--queries=")) {
      args.queries = std::atoi(v);
    } else if (const char* v = value_of("--tiles=")) {
      args.tiles = std::strtoull(v, nullptr, 10);
    } else if (arg == "--quick") {
      args.quick = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "flags: --scale=<f> --seed=<n> --queries=<n> --tiles=<n> "
          "--quick\n");
    }
  }
  return args;
}

AlgoMetrics RunPoint(const Dataset& data, const SimilaritySpace& space,
                     Algorithm algo, double mem_fraction, const Args& args,
                     const std::vector<AttrId>& selected) {
  SimulatedDisk disk;  // 32 KiB pages (paper §5.1)
  PrepareOptions prep_opts;
  prep_opts.tiles_per_dim = args.tiles;
  auto prepared = PrepareDataset(&disk, data, algo, prep_opts);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  RSOptions opts;
  opts.memory =
      MemoryBudget::FromFraction(mem_fraction, prepared->stored.num_pages());
  opts.selected_attrs = selected;

  AlgoMetrics avg;
  Rng query_rng(args.seed * 7919 + 17);
  const int queries = args.queries < 1 ? 1 : args.queries;
  for (int qi = 0; qi < queries; ++qi) {
    const Object q = SampleUniformQuery(data, query_rng);
    auto result = RunReverseSkyline(*prepared, space, q, algo, opts);
    NMRS_CHECK(result.ok()) << result.status();
    const QueryStats& s = result->stats;
    avg.compute_ms += s.compute_millis;
    avg.response_ms += s.ResponseMillis();
    avg.seq_io += static_cast<double>(s.io.TotalSequential());
    avg.rand_io += static_cast<double>(s.io.TotalRandom());
    avg.checks += static_cast<double>(s.checks);
    avg.survivors += static_cast<double>(s.phase1_survivors);
    avg.result_size += static_cast<double>(s.result_size);
  }
  const double n = queries;
  avg.compute_ms /= n;
  avg.response_ms /= n;
  avg.seq_io /= n;
  avg.rand_io /= n;
  avg.checks /= n;
  avg.survivors /= n;
  avg.result_size /= n;
  return avg;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

JsonWriter::JsonWriter(std::string benchmark_name)
    : name_(std::move(benchmark_name)) {}

void JsonWriter::BeginRun() { runs_.emplace_back(); }

void JsonWriter::Field(const std::string& key, double value) {
  NMRS_CHECK(!runs_.empty()) << "Field() before BeginRun()";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  runs_.back().emplace_back(key, buf);
}

void JsonWriter::Field(const std::string& key, uint64_t value) {
  NMRS_CHECK(!runs_.empty()) << "Field() before BeginRun()";
  runs_.back().emplace_back(key, std::to_string(value));
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  NMRS_CHECK(!runs_.empty()) << "Field() before BeginRun()";
  runs_.back().emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

bool JsonWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonWriter: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"runs\": [\n",
               JsonEscape(name_).c_str());
  for (size_t r = 0; r < runs_.size(); ++r) {
    std::fprintf(f, "    {");
    for (size_t i = 0; i < runs_[r].size(); ++i) {
      std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                   JsonEscape(runs_[r][i].first).c_str(),
                   runs_[r][i].second.c_str());
    }
    std::fprintf(f, "}%s\n", r + 1 < runs_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

std::vector<std::string> JsonWriter::RunKeys(size_t i) const {
  NMRS_CHECK(i < runs_.size());
  std::vector<std::string> keys;
  keys.reserve(runs_[i].size());
  for (const auto& [key, value] : runs_[i]) keys.push_back(key);
  return keys;
}

void EmitIoFields(JsonWriter* json, const IoStats& io) {
  // Schema pin: every IoStats counter must be represented below. Growing
  // IoStats bumps its size and trips this assert until the new counter is
  // emitted (or folded into a derived field) — no more silent drops.
  static_assert(sizeof(IoStats) ==
                    (11 + IoStats::kMaxReplicas) * sizeof(uint64_t),
                "IoStats changed: extend EmitIoFields (and the schema pin "
                "test) to cover the new counters");
  json->Field("seq_reads", io.seq_reads);
  json->Field("rand_reads", io.rand_reads);
  json->Field("seq_writes", io.seq_writes);
  json->Field("rand_writes", io.rand_writes);
  json->Field("total_seq_io", io.TotalSequential());
  json->Field("total_rand_io", io.TotalRandom());
  json->Field("cache_hits", io.cache_hits);
  json->Field("cache_misses", io.cache_misses);
  json->Field("cache_evictions", io.cache_evictions);
  json->Field("cache_hit_ratio", io.CacheHitRatio());
  // Fault counters (docs/ROBUSTNESS.md); zero on fault-free runs, present
  // always so the schema stays identical across clean and chaos benches.
  json->Field("transient_retries", io.transient_retries);
  json->Field("checksum_failures", io.checksum_failures);
  json->Field("quarantined_pages", io.quarantined_pages);
  json->Field("failovers", io.failovers);
  json->Field("replica_reads_total", io.ReplicaReadsTotal());
}

void EmitOverlayFields(JsonWriter* json, uint64_t sensitive_rows,
                       uint64_t invariant_rows, uint64_t recheck_scans,
                       uint64_t recheck_checks, uint64_t recheck_pair_tests) {
  json->Field("sensitive_rows", sensitive_rows);
  json->Field("invariant_rows", invariant_rows);
  const uint64_t classified = sensitive_rows + invariant_rows;
  json->Field("sensitive_fraction",
              classified == 0 ? 0.0
                              : static_cast<double>(sensitive_rows) /
                                    static_cast<double>(classified));
  json->Field("recheck_scans", recheck_scans);
  json->Field("recheck_checks", recheck_checks);
  json->Field("recheck_pair_tests", recheck_pair_tests);
}

void EmitMessageFields(JsonWriter* json, const MessageStats& messages,
                       const MessageCostModel& net) {
  static_assert(sizeof(MessageStats) == 3 * sizeof(uint64_t),
                "MessageStats changed: extend EmitMessageFields (and the "
                "schema pin test) to cover the new counters");
  json->Field("net_messages", messages.messages);
  json->Field("net_bytes", messages.bytes);
  json->Field("net_rounds", messages.rounds);
  json->Field("net_millis", net.EstimateMillis(messages));
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  NMRS_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void Table::Print() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void ShapeCheck(const std::string& name, bool ok, const std::string& detail) {
  std::printf("SHAPE-CHECK %s: %s (%s)\n", name.c_str(),
              ok ? "OK" : "VIOLATED", detail.c_str());
}

void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace bench
}  // namespace nmrs
