// Shared buffer-pool page cache benchmark. Two workloads, one JSON artifact
// (BENCH_cache.json; runs carry a "workload" field):
//
// 1. "batch-trs" — the bench_parallel_queries setup (frozen TRS dataset,
//    a batch of uniform queries fanned out over the engine's worker pool)
//    re-run with the engine-owned BufferPool at 0/5/10/25/50% of the
//    dataset's pages, at 1 and 8 workers. TRS scans the file front to back
//    (phase 1, then again per phase-2 batch), a *cyclic* pattern: an LRU
//    smaller than the file evicts each page just before its next use, so
//    1-worker hit ratios stay ~0 — and no eviction policy can do much
//    better (Belady's bound for a cyclic scan is ~capacity/file_pages,
//    i.e. below 25% hits at a 25% cache). At 8 workers, concurrent
//    queries scanning the same region share misses ("scan sharing"),
//    which is real but scheduling-dependent. Both reported honestly.
//
// 2. "bichromatic-rescan" — the access pattern a buffer pool is actually
//    for: BichromaticBlockRS re-scans the whole competitor file once per
//    candidate window, so a batch of queries reads the competitor pages
//    windows_per_query * num_queries times. A cache that merely holds the
//    (small) competitor file absorbs every rescan after the first — the
//    reduction is deterministic at any worker count, and this is where
//    the >=30%-fewer-charged-reads acceptance criterion is checked.
//
// Reverse-skyline rows must be bit-identical across every cache size and
// worker count in both workloads (second SHAPE-CHECK).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "core/bichromatic.h"
#include "data/generators.h"
#include "exec/query_engine.h"
#include "sim/dissimilarity_matrix.h"

namespace nmrs {
namespace bench {
namespace {

const std::vector<int> kCachePcts = {0, 5, 10, 25, 50};

/// Workload 1: TRS batch through the QueryEngine, cache sizes x workers.
/// Returns whether rows stayed identical across all configurations.
bool RunEngineBatch(const Dataset& data, const SimilaritySpace& space,
                    const std::vector<Object>& queries, JsonWriter* json) {
  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, data, Algorithm::kTRS);
  NMRS_CHECK(prepared.ok()) << prepared.status();
  const uint64_t dataset_pages = prepared->stored.num_pages();
  std::printf("TRS dataset pages: %llu\n",
              static_cast<unsigned long long>(dataset_pages));

  RSOptions rs;
  rs.memory = MemoryBudget::FromFraction(0.1, dataset_pages);

  Table table({"workers", "cache_pct", "cache_pages", "hit_ratio",
               "charged_reads", "read_reduction", "modeled_makespan_ms",
               "modeled_speedup"});

  std::vector<std::vector<RowId>> reference;
  bool results_identical = true;

  for (size_t workers : {1u, 8u}) {
    uint64_t uncached_reads = 0;
    double uncached_makespan = 0;
    for (int pct : kCachePcts) {
      const uint64_t cache_pages =
          pct == 0 ? 0
                   : MemoryBudget::FromFraction(pct / 100.0, dataset_pages)
                         .pages;
      QueryEngineOptions opts;
      opts.num_workers = workers;
      opts.rs = rs;
      opts.cache_pages = cache_pages;
      QueryEngine engine(*prepared, space, Algorithm::kTRS, opts);
      auto batch = engine.RunBatch(queries);
      NMRS_CHECK(batch.ok()) << batch.status();

      if (reference.empty()) {
        for (const auto& r : batch->results) reference.push_back(r.rows);
      } else {
        for (size_t i = 0; i < queries.size(); ++i) {
          if (batch->results[i].rows != reference[i]) {
            results_identical = false;
          }
        }
      }

      const uint64_t charged = batch->total_io.TotalReads();
      const double makespan = batch->ModeledMakespanMillis();
      if (pct == 0) {
        uncached_reads = charged;
        uncached_makespan = makespan;
      }
      const double reduction =
          uncached_reads == 0
              ? 0
              : 1.0 - static_cast<double>(charged) /
                          static_cast<double>(uncached_reads);
      const double speedup =
          makespan > 0 ? uncached_makespan / makespan : 0;

      table.AddRow({std::to_string(workers), std::to_string(pct),
                    std::to_string(cache_pages),
                    Fmt(batch->total_io.CacheHitRatio(), 3),
                    std::to_string(charged), Fmt(reduction * 100, 1) + "%",
                    Fmt(makespan), Fmt(speedup, 2)});

      json->BeginRun();
      json->Field("workload", std::string("batch-trs"));
      json->Field("workers", static_cast<uint64_t>(workers));
      json->Field("cache_pct", static_cast<uint64_t>(pct));
      json->Field("cache_pages", cache_pages);
      json->Field("num_rows", data.num_rows());
      json->Field("num_queries", static_cast<uint64_t>(queries.size()));
      json->Field("dataset_pages", dataset_pages);
      json->Field("charged_reads", charged);
      json->Field("read_reduction_vs_nocache", reduction);
      json->Field("modeled_makespan_millis", makespan);
      json->Field("modeled_speedup_vs_nocache", speedup);
      json->Field("wall_millis", batch->wall_millis);
      EmitIoFields(json, batch->total_io);
    }
  }
  table.Print();
  return results_identical;
}

struct RescanOutcome {
  bool results_identical = true;
  double reduction_at_25 = 0;
};

/// Workload 2: bichromatic block RS, one shared pool across a sequential
/// batch of queries. Every query re-scans the competitor file once per
/// candidate window; the competitor file fits in the 25% cache, so after
/// the first scan those reads are hits. Deterministic (single reader).
RescanOutcome RunBichromaticRescan(const Dataset& cand_data,
                                   const Dataset& comp_data,
                                   const SimilaritySpace& space,
                                   const std::vector<Object>& queries,
                                   JsonWriter* json) {
  SimulatedDisk disk;
  // kBRS keeps the input order: plain serialization, no sort.
  auto cands =
      PrepareDataset(&disk, cand_data, Algorithm::kBRS, {}, "candidates");
  NMRS_CHECK(cands.ok()) << cands.status();
  auto comps =
      PrepareDataset(&disk, comp_data, Algorithm::kBRS, {}, "competitors");
  NMRS_CHECK(comps.ok()) << comps.status();
  const uint64_t total_pages =
      cands->stored.num_pages() + comps->stored.num_pages();
  std::printf("bichromatic pages: %llu candidates + %llu competitors\n",
              static_cast<unsigned long long>(cands->stored.num_pages()),
              static_cast<unsigned long long>(comps->stored.num_pages()));

  RSOptions base_opts;
  base_opts.memory = MemoryBudget::FromFraction(0.1, total_pages);

  Table table({"cache_pct", "cache_pages", "hit_ratio", "charged_reads",
               "read_reduction", "modeled_ms", "modeled_speedup"});

  RescanOutcome out;
  std::vector<std::vector<RowId>> reference;
  uint64_t uncached_reads = 0;
  double uncached_ms = 0;

  for (int pct : kCachePcts) {
    const uint64_t cache_pages =
        pct == 0
            ? 0
            : MemoryBudget::FromFraction(pct / 100.0, total_pages).pages;
    // Pool constructed after both files exist, shared by the whole batch —
    // competitor pages stay hot across queries, not just across windows.
    std::unique_ptr<BufferPool> pool;
    if (cache_pages > 0) {
      pool = std::make_unique<BufferPool>(
          &disk, BufferPoolOptions::FromBudget(MemoryBudget{cache_pages}));
    }
    RSOptions opts = base_opts;
    opts.cache_pages = pool != nullptr;
    opts.buffer_pool = pool.get();

    IoStats total;
    double modeled_ms = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto r = BichromaticBlockRS(cands->stored, comps->stored, space,
                                  queries[qi], opts);
      NMRS_CHECK(r.ok()) << r.status();
      total += r->stats.io;
      modeled_ms += r->stats.ResponseMillis();
      if (pct == 0) {
        reference.push_back(r->rows);
      } else if (r->rows != reference[qi]) {
        out.results_identical = false;
      }
    }

    const uint64_t charged = total.TotalReads();
    if (pct == 0) {
      uncached_reads = charged;
      uncached_ms = modeled_ms;
    }
    const double reduction =
        uncached_reads == 0
            ? 0
            : 1.0 - static_cast<double>(charged) /
                        static_cast<double>(uncached_reads);
    const double speedup = modeled_ms > 0 ? uncached_ms / modeled_ms : 0;
    if (pct == 25) out.reduction_at_25 = reduction;

    table.AddRow({std::to_string(pct), std::to_string(cache_pages),
                  Fmt(total.CacheHitRatio(), 3), std::to_string(charged),
                  Fmt(reduction * 100, 1) + "%", Fmt(modeled_ms),
                  Fmt(speedup, 2)});

    json->BeginRun();
    json->Field("workload", std::string("bichromatic-rescan"));
    json->Field("workers", static_cast<uint64_t>(1));
    json->Field("cache_pct", static_cast<uint64_t>(pct));
    json->Field("cache_pages", cache_pages);
    json->Field("num_rows", cand_data.num_rows());
    json->Field("num_queries", static_cast<uint64_t>(queries.size()));
    json->Field("dataset_pages", total_pages);
    json->Field("charged_reads", charged);
    json->Field("read_reduction_vs_nocache", reduction);
    json->Field("modeled_makespan_millis", modeled_ms);
    json->Field("modeled_speedup_vs_nocache", speedup);
    EmitIoFields(json, total);
  }
  table.Print();
  return out;
}

void Run(int argc, char** argv) {
  Args args = Args::Parse(argc, argv, 1.0);
  const uint64_t rows = args.Rows(50000);
  const size_t num_queries = args.quick ? 16 : 64;

  Banner("Shared page cache: batch workload at varying cache sizes");
  std::printf("dataset: %llu normal-distributed objects, batch of %zu "
              "queries\n",
              static_cast<unsigned long long>(rows), num_queries);

  Rng rng(args.seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards = {8, 8, 8, 8};
  Dataset data = GenerateNormal(rows, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  JsonWriter json("cache");

  Banner("Workload 1: TRS engine batch (cyclic scans; see header comment)");
  const bool trs_identical = RunEngineBatch(data, space, queries, &json);

  Banner("Workload 2: bichromatic repeated rescans (cache-friendly)");
  // Competitor set ~1/8 of the candidates: small enough that the 25% cache
  // holds it, large enough that rescans dominate the uncached IO.
  Rng comp_rng = rng.Fork();
  Dataset competitors = GenerateNormal(rows / 8, cards, comp_rng);
  const RescanOutcome rescan =
      RunBichromaticRescan(data, competitors, space, queries, &json);

  ShapeCheck("cache-results-identical",
             trs_identical && rescan.results_identical,
             "reverse-skyline rows identical across all cache sizes and "
             "worker counts in both workloads");
  ShapeCheck("cache-25pct-cuts-30pct-of-reads",
             rescan.reduction_at_25 >= 0.30,
             "25% cache removes " + Fmt(rescan.reduction_at_25 * 100, 1) +
                 "% of charged page reads on the repeated-rescan batch "
                 "(need >= 30%)");

  const char* out = "BENCH_cache.json";
  if (json.WriteFile(out)) std::printf("wrote %s\n", out);
}

}  // namespace
}  // namespace bench
}  // namespace nmrs

int main(int argc, char** argv) {
  nmrs::bench::Run(argc, argv);
  return 0;
}
