// Reproduces the paper's running example end to end:
//   Table 1  — the six-server dataset and RS(Q) membership with pruners,
//   Figure 1 — the hand-specified non-metric distance functions,
//   Table 2  — BRS vs SRS phase behaviour (memory = 3 one-object pages),
//   Table 3  — attribute-level check counts, TRS vs SRS.
#include <cstdio>

#include "bench_util.h"
#include "core/dominance.h"
#include "core/pipeline.h"
#include "core/skyline.h"
#include "sim/dissimilarity_matrix.h"

namespace nmrs {
namespace {

using bench::Banner;
using bench::Fmt;
using bench::ShapeCheck;
using bench::Table;

constexpr const char* kOsNames[] = {"MSW", "RHL", "SL"};
constexpr const char* kProcNames[] = {"AMD", "Intel"};
constexpr const char* kDbNames[] = {"Informix", "DB2", "Oracle"};

struct Example {
  Dataset dataset{Schema::Categorical({3, 2, 3})};
  SimilaritySpace space;
  Object query;

  Example() {
    DissimilarityMatrix d1(3);
    d1.SetSymmetric(0, 1, 0.8);
    d1.SetSymmetric(0, 2, 1.0);
    d1.SetSymmetric(1, 2, 0.1);
    DissimilarityMatrix d2(2);
    d2.SetSymmetric(0, 1, 0.5);
    DissimilarityMatrix d3(3);
    d3.SetSymmetric(0, 1, 0.5);
    d3.SetSymmetric(0, 2, 0.9);
    d3.SetSymmetric(1, 2, 0.4);
    space.AddCategorical(std::move(d1));
    space.AddCategorical(std::move(d2));
    space.AddCategorical(std::move(d3));

    dataset.AppendCategoricalRow({0, 0, 1});  // O1 [MSW, AMD, DB2]
    dataset.AppendCategoricalRow({1, 0, 0});  // O2 [RHL, AMD, Informix]
    dataset.AppendCategoricalRow({2, 1, 2});  // O3 [SL, Intel, Oracle]
    dataset.AppendCategoricalRow({0, 0, 1});  // O4 [MSW, AMD, DB2]
    dataset.AppendCategoricalRow({1, 0, 0});  // O5 [RHL, AMD, Informix]
    dataset.AppendCategoricalRow({0, 1, 1});  // O6 [MSW, Intel, DB2]
    query = Object({0, 1, 1});                // Q  [MSW, Intel, DB2]
  }
};

std::string Pruners(const Example& ex, RowId candidate) {
  PruneContext ctx(ex.space, ex.dataset.schema(), ex.query, {});
  ctx.SetCandidate(ex.dataset.RowValues(candidate), nullptr);
  std::string out;
  uint64_t checks = 0;
  for (RowId y = 0; y < ex.dataset.num_rows(); ++y) {
    if (y == candidate) continue;
    if (ctx.Prunes(ex.dataset.RowValues(y), nullptr, &checks)) {
      if (!out.empty()) out += ",";
      out += std::to_string(y + 1);
    }
  }
  return out.empty() ? "-" : "{" + out + "}";
}

}  // namespace
}  // namespace nmrs

int main(int argc, char** argv) {
  using namespace nmrs;
  (void)bench::Args::Parse(argc, argv, 1.0);
  Example ex;

  bench::Banner("Figure 1: distance functions (non-metric)");
  std::printf("d1(MSW,SL)=1.0 > d1(MSW,RHL)+d1(RHL,SL)=0.9 -> triangle "
              "inequality violated\n");
  std::printf("d1 triangle violation rate: %s\n",
              bench::Fmt(ex.space.matrix(0).TriangleViolationRate(), 3)
                  .c_str());

  bench::Banner("Table 1: dataset and RS membership for Q=[MSW,Intel,DB2]");
  auto rs = ReverseSkylineOracle(ex.dataset, ex.space, ex.query);
  Table t1({"Id", "OS", "Processor", "DB", "in RS(Q)?", "pruners"});
  for (RowId r = 0; r < ex.dataset.num_rows(); ++r) {
    const bool in_rs = std::find(rs.begin(), rs.end(), r) != rs.end();
    t1.AddRow({"O" + std::to_string(r + 1),
               kOsNames[ex.dataset.Value(r, 0)],
               kProcNames[ex.dataset.Value(r, 1)],
               kDbNames[ex.dataset.Value(r, 2)], in_rs ? "yes" : "no",
               in_rs ? "-" : Pruners(ex, r)});
  }
  t1.Print();
  bench::ShapeCheck("table1-result", rs == std::vector<RowId>({2, 5}),
                    "RS(Q) = {O3, O6}");

  bench::Banner("Table 2 + 3: phase behaviour and check counts "
                "(memory = 3 one-object pages)");
  Table t2({"Approach", "P1 survivors |R|", "P2 scans", "P1 checks",
            "P2 checks", "checks", "result"});
  PrepareOptions paper_order;
  paper_order.attr_order = {0, 1, 2};
  RSOptions opts;
  opts.memory.pages = 3;
  opts.attr_order = {0, 1, 2};

  uint64_t srs_checks = 0, trs_checks = 0;
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    SimulatedDisk disk(28);  // exactly one object per page
    auto prepared = PrepareDataset(&disk, ex.dataset, algo, paper_order);
    NMRS_CHECK(prepared.ok());
    auto result =
        RunReverseSkyline(*prepared, ex.space, ex.query, algo, opts);
    NMRS_CHECK(result.ok());
    std::string rows;
    for (RowId r : result->rows) rows += "O" + std::to_string(r + 1) + " ";
    t2.AddRow({std::string(AlgorithmName(algo)),
               std::to_string(result->stats.phase1_survivors),
               std::to_string(result->stats.phase2_batches),
               std::to_string(result->stats.phase1_checks),
               std::to_string(result->stats.phase2_checks),
               std::to_string(result->stats.checks), rows});
  }
  t2.Print();
  std::printf(
      "(paper, with its walkthrough batching: SRS 38 checks, TRS 30; on 6\n"
      " objects totals are batching noise — the direction is checked on a\n"
      " 600-object instance of the same schema and distances below)\n");

  // Scaled-up instance of the same space: Table 3's direction at a size
  // where batching artifacts wash out.
  Rng rng(1);
  Dataset big(ex.dataset.schema());
  for (int i = 0; i < 600; ++i) {
    big.AppendCategoricalRow(
        {static_cast<ValueId>(rng.Uniform(3)),
         static_cast<ValueId>(rng.Uniform(2)),
         static_cast<ValueId>(rng.Uniform(3))});
  }
  SimulatedDisk big_disk(28);
  auto big_prep =
      PrepareDataset(&big_disk, big, Algorithm::kTRS, paper_order);
  NMRS_CHECK(big_prep.ok());
  RSOptions big_opts = opts;
  big_opts.memory.pages = 60;  // 10%
  auto big_srs = RunReverseSkyline(*big_prep, ex.space, ex.query,
                                   Algorithm::kSRS, big_opts);
  auto big_trs = RunReverseSkyline(*big_prep, ex.space, ex.query,
                                   Algorithm::kTRS, big_opts);
  NMRS_CHECK(big_srs.ok() && big_trs.ok());
  srs_checks = big_srs->stats.checks;
  trs_checks = big_trs->stats.checks;
  bench::ShapeCheck(
      "table3-trs-fewer-checks", trs_checks < srs_checks,
      "600 objects: TRS " + std::to_string(trs_checks) + " vs SRS " +
          std::to_string(srs_checks) + " attribute-level checks");
  return 0;
}
