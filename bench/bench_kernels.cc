// SIMD dominance-kernel benchmark (docs/KERNELS.md). Four workloads, one
// JSON artifact (BENCH_kernels.json; runs carry a "config" field):
//
// 1. "micro" — raw pruning-condition throughput of the scalar
//    early-aborting PruneContext::Prunes loop vs the block kernel on
//    in-memory columnar batches, across matrix cardinalities and batch
//    sizes. Both paths produce the verdict and the scalar-equivalent check
//    count for every (candidate, row) pair of the workload, so throughput
//    is reported in the same unit — scalar-equivalent checks per second —
//    and the speedup column is a pure wall-clock ratio. The check totals
//    of the two paths are asserted equal before anything is reported.
//
// 2. "e2e" — full SRS and TRS queries with RSOptions::use_kernels off vs
//    on (adaptive dispatch at the default promotion threshold). Rows must
//    be bit-identical; SRS must also reproduce the check and pair counters
//    exactly (TRS reports kernel_checks instead, see docs/KERNELS.md).
//
// 3. "promote_sweep" (full mode only) — end-to-end SRS compute time across
//    RSOptions::kernel_promote_rows values, the data behind the default
//    threshold (docs/KERNELS.md).
//
// 4. "shared_scan" — a 16-query SRS batch on the QueryEngine, per-query
//    execution vs QueryEngineOptions::shared_scan, compared on modeled
//    makespan (one worker, no cache, so the ratio is the IO the shared
//    pass deduplicates). Per-query rows and counters must be
//    bit-identical.
//
// ci.sh runs this with --quick and then tools/check_kernel_gate.py fails
// the build if the kernel is slower than the scalar path on the
// largest-cardinality micro config, if any run reports identical=0, if
// the e2e adaptive path is slower than scalar (avx2 dispatch), or if the
// shared-scan batch speedup falls under its floor (1.5x at full scale,
// 1.4x on quick runs).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/timer.h"
#include "core/dominance.h"
#include "core/dominance_kernel.h"
#include "core/query_distance_table.h"
#include "data/columnar_batch.h"
#include "data/generators.h"
#include "exec/query_engine.h"

namespace nmrs {
namespace bench {
namespace {

struct MicroPoint {
  size_t cardinality = 0;
  size_t rows = 0;
  double scalar_mcps = 0;  // million scalar-equivalent checks / second
  double kernel_mcps = 0;
  double speedup = 0;
};

/// One micro configuration: `attrs` categorical attributes of equal
/// cardinality, `rows` objects, `candidates` candidate rows each checked
/// against the whole batch, `reps` timed passes per path.
MicroPoint RunMicro(size_t cardinality, size_t rows, size_t attrs,
                    size_t candidates, int reps, uint64_t seed) {
  Rng rng(seed);
  Rng drng = rng.Fork();
  Rng srng = rng.Fork();
  Rng qrng = rng.Fork();
  const std::vector<size_t> cards(attrs, cardinality);
  Dataset data = GenerateUniform(rows, cards, drng);
  SimilaritySpace space;
  for (size_t c : cards) {
    space.AddCategorical(MakeRandomMatrix(c, srng, {.symmetric = false}));
  }
  const Object query = SampleUniformQuery(data, qrng);
  const Schema& schema = data.schema();
  const std::vector<AttrId> selected = ResolveSelectedAttrs(schema, {});
  QueryDistanceTable table(space, schema, query, selected);
  PruneContext ctx(space, schema, query, selected, &table);

  RowBatch batch(attrs, false);
  for (RowId r = 0; r < data.num_rows(); ++r) {
    batch.Append(r, data.RowValues(r), nullptr);
  }
  ColumnarBatch cols;
  cols.Build(batch);
  DominanceKernel kernel(ctx, cols);

  std::vector<RowId> cand(candidates);
  for (size_t i = 0; i < candidates; ++i) {
    cand[i] = rng.Uniform(data.num_rows());
  }

  // Scalar pass: early-aborting per-row loop over the row-major batch.
  uint64_t scalar_checks = 0;
  uint64_t scalar_pruners = 0;
  Timer scalar_timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (RowId x : cand) {
      ctx.SetCandidate(data.RowValues(x), nullptr);
      for (size_t j = 0; j < batch.size(); ++j) {
        scalar_pruners +=
            ctx.Prunes(batch.row_values(j), nullptr, &scalar_checks);
      }
    }
  }
  const double scalar_ms = scalar_timer.ElapsedMillis();

  // Kernel pass: same verdicts and the same per-row check accounting,
  // block-at-a-time.
  uint64_t kernel_checks = 0;
  uint64_t kernel_pruners = 0;
  Timer kernel_timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (RowId x : cand) {
      ctx.SetCandidate(data.RowValues(x), nullptr);
      kernel.BeginCandidate();
      kernel_pruners += kernel.CountPruners(0, cols.size(), &kernel_checks);
    }
  }
  const double kernel_ms = kernel_timer.ElapsedMillis();

  // Equivalence before reporting: same pruner verdicts, same scalar
  // accounting — the unit of the throughput comparison.
  NMRS_CHECK_EQ(scalar_checks, kernel_checks);
  NMRS_CHECK_EQ(scalar_pruners, kernel_pruners);

  MicroPoint p;
  p.cardinality = cardinality;
  p.rows = rows;
  p.scalar_mcps =
      scalar_ms > 0 ? static_cast<double>(scalar_checks) / scalar_ms / 1e3
                    : 0;
  p.kernel_mcps =
      kernel_ms > 0 ? static_cast<double>(scalar_checks) / kernel_ms / 1e3
                    : 0;
  p.speedup = kernel_ms > 0 ? scalar_ms / kernel_ms : 0;
  return p;
}

// Shared dataset for the end-to-end workloads (e2e, promote_sweep,
// shared_scan), built once.
struct E2eInstance {
  Dataset data;
  SimilaritySpace space;
  std::vector<Object> queries;
  uint64_t rows = 0;
};

// An ordinal similarity measure with noise: values are ordered (ratings,
// sizes, severity scales) so dissimilarity grows with rank distance, but
// each entry is jittered and asymmetric, which breaks the triangle
// inequality — the paper's arbitrary-measure setting over a structured
// domain. Unlike fully random matrices (where dominance is vanishingly
// rare and every phase-1 candidate is a stubborn survivor), ordered
// measures make dominance dense, exercising both halves of the adaptive
// dispatch: probes that resolve and probes that escape.
DissimilarityMatrix MakeOrdinalMatrix(size_t card, Rng& rng) {
  DissimilarityMatrix mat(card);
  for (ValueId a = 0; a < card; ++a) {
    for (ValueId b = 0; b < card; ++b) {
      if (a == b) continue;
      const double rank =
          static_cast<double>(a > b ? a - b : b - a) / static_cast<double>(card);
      mat.Set(a, b, rank * rng.UniformDouble(0.6, 1.4));
    }
  }
  return mat;
}

E2eInstance MakeE2eInstance(const Args& args, int num_queries) {
  Rng rng(args.seed + 7);
  Rng drng = rng.Fork();
  Rng srng = rng.Fork();
  const std::vector<size_t> cards = {32, 32, 32, 32};
  // Paper-scale 1M rows: --quick runs a 5k-row slice, the committed
  // artifact (full mode, default scale) runs 50k rows.
  const uint64_t rows = args.Rows(1'000'000);
  E2eInstance inst{GenerateUniform(rows, cards, drng), {}, {}, rows};
  for (size_t c : cards) {
    inst.space.AddCategorical(MakeOrdinalMatrix(c, srng));
  }
  for (int i = 0; i < num_queries; ++i) {
    inst.queries.push_back(SampleUniformQuery(inst.data, rng));
  }
  return inst;
}

struct E2eOutcome {
  bool identical = true;
  double speedup_srs = 0;
};

E2eOutcome RunEndToEnd(const E2eInstance& inst, const Args& args,
                       JsonWriter* json) {
  const char* dispatch = KernelDispatchName(ActiveKernelDispatch());
  E2eOutcome out;
  Table table({"algo", "rows", "scalar_ms", "kernel_ms", "speedup",
               "promotions", "scalar_rows", "block_rows"});
  const size_t nq = std::min<size_t>(inst.queries.size(),
                                     std::max(args.queries, 2));
  for (Algorithm algo : {Algorithm::kSRS, Algorithm::kTRS}) {
    SimulatedDisk disk;
    auto prepared = PrepareDataset(&disk, inst.data, algo, {});
    NMRS_CHECK(prepared.ok()) << prepared.status();
    RSOptions opts;
    opts.memory =
        MemoryBudget::FromFraction(0.10, prepared->stored.num_pages());
    double scalar_ms = 0, kernel_ms = 0, kchecks = 0;
    double scalar_p1_ms = 0, kernel_p1_ms = 0;
    uint64_t promotions = 0, scalar_rows = 0, block_rows = 0;
    bool identical = true;
    // Interleaved best-of-kReps per query: compute times on a shared CI
    // host swing by tens of percent, and the min of interleaved repeats
    // is the standard low-noise estimator — a drifting host slows both
    // variants' minima about equally instead of whichever ran second.
    constexpr int kReps = 3;
    for (size_t i = 0; i < nq; ++i) {
      const Object& q = inst.queries[i];
      RSOptions kopts = opts;
      kopts.use_kernels = true;  // adaptive dispatch, default threshold
      double scalar_best = 0, kernel_best = 0;
      double scalar_p1_best = 0, kernel_p1_best = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        auto scalar =
            RunReverseSkyline(*prepared, inst.space, q, algo, opts);
        auto kernel =
            RunReverseSkyline(*prepared, inst.space, q, algo, kopts);
        NMRS_CHECK(scalar.ok() && kernel.ok());
        if (rep == 0) {
          if (scalar->rows != kernel->rows) identical = false;
          if (algo == Algorithm::kSRS &&
              (scalar->stats.checks != kernel->stats.checks ||
               scalar->stats.pair_tests != kernel->stats.pair_tests)) {
            identical = false;
          }
          scalar_best = scalar->stats.compute_millis;
          kernel_best = kernel->stats.compute_millis;
          scalar_p1_best = scalar->stats.phase1_millis;
          kernel_p1_best = kernel->stats.phase1_millis;
          kchecks += static_cast<double>(kernel->stats.kernel_checks);
          promotions += kernel->stats.kernel_promotions;
          scalar_rows += kernel->stats.kernel_scalar_rows;
          block_rows += kernel->stats.kernel_block_rows;
        } else {
          scalar_best = std::min(scalar_best, scalar->stats.compute_millis);
          kernel_best = std::min(kernel_best, kernel->stats.compute_millis);
          scalar_p1_best =
              std::min(scalar_p1_best, scalar->stats.phase1_millis);
          kernel_p1_best =
              std::min(kernel_p1_best, kernel->stats.phase1_millis);
        }
      }
      scalar_ms += scalar_best;
      kernel_ms += kernel_best;
      scalar_p1_ms += scalar_p1_best;
      kernel_p1_ms += kernel_p1_best;
    }
    out.identical = out.identical && identical;
    const double speedup = kernel_ms > 0 ? scalar_ms / kernel_ms : 0;
    if (algo == Algorithm::kSRS) out.speedup_srs = speedup;
    table.AddRow({std::string(AlgorithmName(algo)),
                  std::to_string(inst.rows), Fmt(scalar_ms, 2),
                  Fmt(kernel_ms, 2), Fmt(speedup, 2),
                  std::to_string(promotions), std::to_string(scalar_rows),
                  std::to_string(block_rows)});
    json->BeginRun();
    json->Field("config", std::string("e2e"));
    json->Field("dispatch", std::string(dispatch));
    json->Field("algo", std::string(AlgorithmName(algo)));
    json->Field("num_rows", inst.rows);
    json->Field("num_queries", static_cast<uint64_t>(nq));
    json->Field("promote_rows",
                static_cast<uint64_t>(RSOptions{}.kernel_promote_rows));
    json->Field("scalar_compute_millis", scalar_ms);
    json->Field("kernel_compute_millis", kernel_ms);
    json->Field("scalar_phase1_millis", scalar_p1_ms);
    json->Field("kernel_phase1_millis", kernel_p1_ms);
    json->Field("speedup", speedup);
    json->Field("avg_kernel_checks",
                kchecks / static_cast<double>(nq));
    json->Field("kernel_promotions", promotions);
    json->Field("kernel_scalar_rows", scalar_rows);
    json->Field("kernel_block_rows", block_rows);
    json->Field("identical", static_cast<uint64_t>(identical ? 1 : 0));
  }
  table.Print();
  return out;
}

// Full-mode sweep of the promotion threshold on end-to-end SRS: the data
// behind the kernel_promote_rows default (0 = promote immediately, the
// pre-adaptive behavior; large = never promote, pure scalar probe).
void RunPromoteSweep(const E2eInstance& inst, const Args& args,
                     JsonWriter* json) {
  const char* dispatch = KernelDispatchName(ActiveKernelDispatch());
  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kSRS, {});
  NMRS_CHECK(prepared.ok()) << prepared.status();
  RSOptions base;
  base.memory =
      MemoryBudget::FromFraction(0.10, prepared->stored.num_pages());
  base.use_kernels = true;
  const size_t nq = std::min<size_t>(inst.queries.size(),
                                     std::max(args.queries, 2));
  Table table({"promote_rows", "kernel_ms", "promotions", "scalar_rows",
               "block_rows"});
  for (uint32_t promote : {0u, 4u, 8u, 16u, 32u, 64u, 1u << 30}) {
    RSOptions opts = base;
    opts.kernel_promote_rows = promote;
    double kernel_ms = 0;
    uint64_t promotions = 0, scalar_rows = 0, block_rows = 0;
    for (size_t i = 0; i < nq; ++i) {
      auto res = RunReverseSkyline(*prepared, inst.space, inst.queries[i],
                                   Algorithm::kSRS, opts);
      NMRS_CHECK(res.ok()) << res.status();
      kernel_ms += res->stats.compute_millis;
      promotions += res->stats.kernel_promotions;
      scalar_rows += res->stats.kernel_scalar_rows;
      block_rows += res->stats.kernel_block_rows;
    }
    const std::string label =
        promote == (1u << 30) ? "never" : std::to_string(promote);
    table.AddRow({label, Fmt(kernel_ms, 2), std::to_string(promotions),
                  std::to_string(scalar_rows), std::to_string(block_rows)});
    json->BeginRun();
    json->Field("config", std::string("promote_sweep"));
    json->Field("dispatch", std::string(dispatch));
    json->Field("algo", std::string("SRS"));
    json->Field("num_rows", inst.rows);
    json->Field("num_queries", static_cast<uint64_t>(nq));
    json->Field("promote_rows", static_cast<uint64_t>(promote));
    json->Field("kernel_compute_millis", kernel_ms);
    json->Field("kernel_promotions", promotions);
    json->Field("kernel_scalar_rows", scalar_rows);
    json->Field("kernel_block_rows", block_rows);
  }
  table.Print();
}

struct SharedScanOutcome {
  bool identical = true;
  double speedup = 0;
};

// Batch workload: Q SRS queries on the QueryEngine, per-query execution vs
// one shared phase-1 scan per group. One worker and no cache, so modeled
// makespan isolates exactly the IO the shared pass deduplicates — the same
// comparison a multi-worker run would show per worker.
SharedScanOutcome RunSharedScan(const E2eInstance& inst, JsonWriter* json) {
  SharedScanOutcome out;
  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kSRS, {});
  NMRS_CHECK(prepared.ok()) << prepared.status();

  QueryEngineOptions opts;
  opts.num_workers = 1;
  opts.rs.memory =
      MemoryBudget::FromFraction(0.10, prepared->stored.num_pages());
  opts.rs.use_kernels = true;
  QueryEngine per_query(*prepared, inst.space, Algorithm::kSRS, opts);
  auto base = per_query.RunBatch(inst.queries);
  NMRS_CHECK(base.ok()) << base.status();
  NMRS_CHECK(base->ok()) << base->first_error();

  opts.shared_scan = true;
  opts.shared_scan_group = inst.queries.size();
  QueryEngine shared(*prepared, inst.space, Algorithm::kSRS, opts);
  auto batch = shared.RunBatch(inst.queries);
  NMRS_CHECK(batch.ok()) << batch.status();
  NMRS_CHECK(batch->ok()) << batch->first_error();
  NMRS_CHECK_EQ(batch->shared_scan_groups, 1u);

  for (size_t i = 0; i < inst.queries.size(); ++i) {
    if (batch->results[i].rows != base->results[i].rows ||
        batch->results[i].stats.checks != base->results[i].stats.checks ||
        batch->results[i].stats.pair_tests !=
            base->results[i].stats.pair_tests) {
      out.identical = false;
    }
  }
  const double base_ms = base->ModeledMakespanMillis();
  const double shared_ms = batch->ModeledMakespanMillis();
  out.speedup = shared_ms > 0 ? base_ms / shared_ms : 0;

  Table table({"queries", "rows", "per_query_ms", "shared_ms", "speedup",
               "shared_batches"});
  table.AddRow({std::to_string(inst.queries.size()),
                std::to_string(inst.rows), Fmt(base_ms, 1),
                Fmt(shared_ms, 1), Fmt(out.speedup, 2),
                std::to_string(batch->shared_scan_batches)});
  table.Print();

  json->BeginRun();
  json->Field("config", std::string("shared_scan"));
  json->Field("dispatch",
              std::string(KernelDispatchName(ActiveKernelDispatch())));
  json->Field("algo", std::string("SRS"));
  json->Field("num_rows", inst.rows);
  json->Field("num_queries", static_cast<uint64_t>(inst.queries.size()));
  json->Field("shared_scan_group",
              static_cast<uint64_t>(opts.shared_scan_group));
  json->Field("per_query_modeled_millis", base_ms);
  json->Field("shared_modeled_millis", shared_ms);
  json->Field("speedup", out.speedup);
  json->Field("shared_scan_batches", batch->shared_scan_batches);
  json->Field("shared_io_pages", batch->shared_io.Total());
  json->Field("identical", static_cast<uint64_t>(out.identical ? 1 : 0));
  return out;
}

void Run(int argc, char** argv) {
  Args args = Args::Parse(argc, argv, 1.0);
  JsonWriter json("kernels");
  const char* dispatch = KernelDispatchName(ActiveKernelDispatch());

  Banner("Block dominance kernels: check throughput, scalar vs kernel");
  std::printf("runtime dispatch: %s\n", dispatch);

  const std::vector<size_t> cardinalities = {8, 64, 512};
  const std::vector<size_t> batch_rows =
      args.quick ? std::vector<size_t>{2048}
                 : std::vector<size_t>{1024, 8192};
  const size_t attrs = 4;
  const size_t candidates = 32;

  Table table({"cardinality", "rows", "scalar_Mchk/s", "kernel_Mchk/s",
               "speedup"});
  double high_card_speedup = 0;
  for (size_t card : cardinalities) {
    for (size_t rows : batch_rows) {
      // Size reps so every point runs on the order of a hundred
      // milliseconds per path — short windows are too noisy on shared
      // 1-core containers to gate on.
      const int reps = static_cast<int>(
          std::max<uint64_t>(1, 32'000'000 / (rows * candidates)));
      MicroPoint p =
          RunMicro(card, rows, attrs, candidates, reps, args.seed);
      table.AddRow({std::to_string(p.cardinality), std::to_string(p.rows),
                    Fmt(p.scalar_mcps, 1), Fmt(p.kernel_mcps, 1),
                    Fmt(p.speedup, 2)});
      json.BeginRun();
      json.Field("config", std::string("micro"));
      json.Field("dispatch", std::string(dispatch));
      json.Field("cardinality", static_cast<uint64_t>(p.cardinality));
      json.Field("num_rows", static_cast<uint64_t>(p.rows));
      json.Field("num_attrs", static_cast<uint64_t>(attrs));
      json.Field("scalar_mchecks_per_sec", p.scalar_mcps);
      json.Field("kernel_mchecks_per_sec", p.kernel_mcps);
      json.Field("speedup", p.speedup);
      // The gate keys on the largest cardinality at the largest batch.
      if (card == cardinalities.back() && rows == batch_rows.back()) {
        high_card_speedup = p.speedup;
      }
    }
  }
  table.Print();

  // One dataset for every end-to-end workload; 16+ queries so the batch
  // workload has a full shared-scan group.
  const E2eInstance inst =
      MakeE2eInstance(args, std::max(16, args.queries));

  Banner("End-to-end SRS/TRS with use_kernels (adaptive dispatch)");
  const E2eOutcome e2e = RunEndToEnd(inst, args, &json);

  if (!args.quick) {
    Banner("Promotion-threshold sweep (SRS end-to-end)");
    RunPromoteSweep(inst, args, &json);
  }

  Banner("Batch shared scans (QueryEngine, SRS)");
  const SharedScanOutcome shared = RunSharedScan(inst, &json);

  ShapeCheck("kernel-results-identical", e2e.identical,
             "reverse-skyline rows (and SRS counters) bit-identical with "
             "use_kernels on");
  ShapeCheck("shared-scan-identical", shared.identical,
             "per-query rows and counters bit-identical under shared "
             "scans");
  ShapeCheck("shared-scan-1.5x-modeled-makespan", shared.speedup >= 1.5,
             "shared scan " + Fmt(shared.speedup, 2) +
                 "x per-query modeled makespan (need >= 1.5x)");
  // The 1.5x expectation is about the SIMD lane evaluators; the portable
  // blocked fallback (scalar dispatch / NMRS_NO_SIMD) is only expected to
  // be around parity, so the check does not bind there.
  const bool simd = ActiveKernelDispatch() == KernelDispatch::kAvx2;
  ShapeCheck(
      "kernel-1.5x-check-throughput-high-cardinality",
      !simd || high_card_speedup >= 1.5,
      "kernel " + Fmt(high_card_speedup, 2) +
          "x scalar checks/sec at cardinality 512 (need >= 1.5x on avx2 "
          "dispatch; actual dispatch " + dispatch + ")");

  const char* out = "BENCH_kernels.json";
  if (json.WriteFile(out)) std::printf("wrote %s\n", out);
}

}  // namespace
}  // namespace bench
}  // namespace nmrs

int main(int argc, char** argv) {
  nmrs::bench::Run(argc, argv);
  return 0;
}
