// SIMD dominance-kernel benchmark (docs/KERNELS.md). Two workloads, one
// JSON artifact (BENCH_kernels.json; runs carry a "config" field):
//
// 1. "micro" — raw pruning-condition throughput of the scalar
//    early-aborting PruneContext::Prunes loop vs the block kernel on
//    in-memory columnar batches, across matrix cardinalities and batch
//    sizes. Both paths produce the verdict and the scalar-equivalent check
//    count for every (candidate, row) pair of the workload, so throughput
//    is reported in the same unit — scalar-equivalent checks per second —
//    and the speedup column is a pure wall-clock ratio. The check totals
//    of the two paths are asserted equal before anything is reported.
//
// 2. "e2e" — full SRS and TRS queries with RSOptions::use_kernels off vs
//    on. Rows must be bit-identical; SRS must also reproduce the check and
//    pair counters exactly (TRS reports kernel_checks instead, see
//    docs/KERNELS.md).
//
// ci.sh runs this with --quick and then tools/check_kernel_gate.py fails
// the build if the kernel is slower than the scalar path on the
// largest-cardinality micro config.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/timer.h"
#include "core/dominance.h"
#include "core/dominance_kernel.h"
#include "core/query_distance_table.h"
#include "data/columnar_batch.h"
#include "data/generators.h"

namespace nmrs {
namespace bench {
namespace {

struct MicroPoint {
  size_t cardinality = 0;
  size_t rows = 0;
  double scalar_mcps = 0;  // million scalar-equivalent checks / second
  double kernel_mcps = 0;
  double speedup = 0;
};

/// One micro configuration: `attrs` categorical attributes of equal
/// cardinality, `rows` objects, `candidates` candidate rows each checked
/// against the whole batch, `reps` timed passes per path.
MicroPoint RunMicro(size_t cardinality, size_t rows, size_t attrs,
                    size_t candidates, int reps, uint64_t seed) {
  Rng rng(seed);
  Rng drng = rng.Fork();
  Rng srng = rng.Fork();
  Rng qrng = rng.Fork();
  const std::vector<size_t> cards(attrs, cardinality);
  Dataset data = GenerateUniform(rows, cards, drng);
  SimilaritySpace space;
  for (size_t c : cards) {
    space.AddCategorical(MakeRandomMatrix(c, srng, {.symmetric = false}));
  }
  const Object query = SampleUniformQuery(data, qrng);
  const Schema& schema = data.schema();
  const std::vector<AttrId> selected = ResolveSelectedAttrs(schema, {});
  QueryDistanceTable table(space, schema, query, selected);
  PruneContext ctx(space, schema, query, selected, &table);

  RowBatch batch(attrs, false);
  for (RowId r = 0; r < data.num_rows(); ++r) {
    batch.Append(r, data.RowValues(r), nullptr);
  }
  ColumnarBatch cols;
  cols.Build(batch);
  DominanceKernel kernel(ctx, cols);

  std::vector<RowId> cand(candidates);
  for (size_t i = 0; i < candidates; ++i) {
    cand[i] = rng.Uniform(data.num_rows());
  }

  // Scalar pass: early-aborting per-row loop over the row-major batch.
  uint64_t scalar_checks = 0;
  uint64_t scalar_pruners = 0;
  Timer scalar_timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (RowId x : cand) {
      ctx.SetCandidate(data.RowValues(x), nullptr);
      for (size_t j = 0; j < batch.size(); ++j) {
        scalar_pruners +=
            ctx.Prunes(batch.row_values(j), nullptr, &scalar_checks);
      }
    }
  }
  const double scalar_ms = scalar_timer.ElapsedMillis();

  // Kernel pass: same verdicts and the same per-row check accounting,
  // block-at-a-time.
  uint64_t kernel_checks = 0;
  uint64_t kernel_pruners = 0;
  Timer kernel_timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (RowId x : cand) {
      ctx.SetCandidate(data.RowValues(x), nullptr);
      kernel.BeginCandidate();
      kernel_pruners += kernel.CountPruners(0, cols.size(), &kernel_checks);
    }
  }
  const double kernel_ms = kernel_timer.ElapsedMillis();

  // Equivalence before reporting: same pruner verdicts, same scalar
  // accounting — the unit of the throughput comparison.
  NMRS_CHECK_EQ(scalar_checks, kernel_checks);
  NMRS_CHECK_EQ(scalar_pruners, kernel_pruners);

  MicroPoint p;
  p.cardinality = cardinality;
  p.rows = rows;
  p.scalar_mcps =
      scalar_ms > 0 ? static_cast<double>(scalar_checks) / scalar_ms / 1e3
                    : 0;
  p.kernel_mcps =
      kernel_ms > 0 ? static_cast<double>(scalar_checks) / kernel_ms / 1e3
                    : 0;
  p.speedup = kernel_ms > 0 ? scalar_ms / kernel_ms : 0;
  return p;
}

struct E2eOutcome {
  bool identical = true;
  double speedup_srs = 0;
};

E2eOutcome RunEndToEnd(const Args& args, JsonWriter* json) {
  Rng rng(args.seed + 7);
  Rng drng = rng.Fork();
  Rng srng = rng.Fork();
  const std::vector<size_t> cards = {32, 32, 32, 32};
  const uint64_t rows = args.Rows(50000);
  Dataset data = GenerateNormal(rows, cards, drng);
  SimilaritySpace space;
  for (size_t c : cards) {
    space.AddCategorical(MakeRandomMatrix(c, srng, {.symmetric = false}));
  }
  std::vector<Object> queries;
  for (int i = 0; i < args.queries; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  E2eOutcome out;
  Table table({"algo", "rows", "scalar_ms", "kernel_ms", "speedup",
               "kernel_checks"});
  for (Algorithm algo : {Algorithm::kSRS, Algorithm::kTRS}) {
    SimulatedDisk disk;
    auto prepared = PrepareDataset(&disk, data, algo, {});
    NMRS_CHECK(prepared.ok()) << prepared.status();
    RSOptions opts;
    opts.memory =
        MemoryBudget::FromFraction(0.10, prepared->stored.num_pages());
    double scalar_ms = 0, kernel_ms = 0, kchecks = 0;
    for (const Object& q : queries) {
      auto scalar = RunReverseSkyline(*prepared, space, q, algo, opts);
      RSOptions kopts = opts;
      kopts.use_kernels = true;
      auto kernel = RunReverseSkyline(*prepared, space, q, algo, kopts);
      NMRS_CHECK(scalar.ok() && kernel.ok());
      if (scalar->rows != kernel->rows) out.identical = false;
      if (algo == Algorithm::kSRS &&
          (scalar->stats.checks != kernel->stats.checks ||
           scalar->stats.pair_tests != kernel->stats.pair_tests)) {
        out.identical = false;
      }
      scalar_ms += scalar->stats.compute_millis;
      kernel_ms += kernel->stats.compute_millis;
      kchecks += static_cast<double>(kernel->stats.kernel_checks);
    }
    const double speedup = kernel_ms > 0 ? scalar_ms / kernel_ms : 0;
    if (algo == Algorithm::kSRS) out.speedup_srs = speedup;
    table.AddRow({std::string(AlgorithmName(algo)), std::to_string(rows),
                  Fmt(scalar_ms, 2), Fmt(kernel_ms, 2), Fmt(speedup, 2),
                  Fmt(kchecks / static_cast<double>(queries.size()), 0)});
    json->BeginRun();
    json->Field("config", std::string("e2e"));
    json->Field("algo", std::string(AlgorithmName(algo)));
    json->Field("num_rows", rows);
    json->Field("num_queries", static_cast<uint64_t>(queries.size()));
    json->Field("scalar_compute_millis", scalar_ms);
    json->Field("kernel_compute_millis", kernel_ms);
    json->Field("speedup", speedup);
    json->Field("avg_kernel_checks",
                kchecks / static_cast<double>(queries.size()));
    json->Field("identical", static_cast<uint64_t>(out.identical ? 1 : 0));
  }
  table.Print();
  return out;
}

void Run(int argc, char** argv) {
  Args args = Args::Parse(argc, argv, 1.0);
  JsonWriter json("kernels");
  const char* dispatch = KernelDispatchName(ActiveKernelDispatch());

  Banner("Block dominance kernels: check throughput, scalar vs kernel");
  std::printf("runtime dispatch: %s\n", dispatch);

  const std::vector<size_t> cardinalities = {8, 64, 512};
  const std::vector<size_t> batch_rows =
      args.quick ? std::vector<size_t>{2048}
                 : std::vector<size_t>{1024, 8192};
  const size_t attrs = 4;
  const size_t candidates = 32;

  Table table({"cardinality", "rows", "scalar_Mchk/s", "kernel_Mchk/s",
               "speedup"});
  double high_card_speedup = 0;
  for (size_t card : cardinalities) {
    for (size_t rows : batch_rows) {
      // Size reps so every point runs on the order of a hundred
      // milliseconds per path — short windows are too noisy on shared
      // 1-core containers to gate on.
      const int reps = static_cast<int>(
          std::max<uint64_t>(1, 32'000'000 / (rows * candidates)));
      MicroPoint p =
          RunMicro(card, rows, attrs, candidates, reps, args.seed);
      table.AddRow({std::to_string(p.cardinality), std::to_string(p.rows),
                    Fmt(p.scalar_mcps, 1), Fmt(p.kernel_mcps, 1),
                    Fmt(p.speedup, 2)});
      json.BeginRun();
      json.Field("config", std::string("micro"));
      json.Field("dispatch", std::string(dispatch));
      json.Field("cardinality", static_cast<uint64_t>(p.cardinality));
      json.Field("num_rows", static_cast<uint64_t>(p.rows));
      json.Field("num_attrs", static_cast<uint64_t>(attrs));
      json.Field("scalar_mchecks_per_sec", p.scalar_mcps);
      json.Field("kernel_mchecks_per_sec", p.kernel_mcps);
      json.Field("speedup", p.speedup);
      // The gate keys on the largest cardinality at the largest batch.
      if (card == cardinalities.back() && rows == batch_rows.back()) {
        high_card_speedup = p.speedup;
      }
    }
  }
  table.Print();

  Banner("End-to-end SRS/TRS with use_kernels");
  const E2eOutcome e2e = RunEndToEnd(args, &json);

  ShapeCheck("kernel-results-identical", e2e.identical,
             "reverse-skyline rows (and SRS counters) bit-identical with "
             "use_kernels on");
  // The 1.5x expectation is about the SIMD lane evaluators; the portable
  // blocked fallback (scalar dispatch / NMRS_NO_SIMD) is only expected to
  // be around parity, so the check does not bind there.
  const bool simd = ActiveKernelDispatch() == KernelDispatch::kAvx2;
  ShapeCheck(
      "kernel-1.5x-check-throughput-high-cardinality",
      !simd || high_card_speedup >= 1.5,
      "kernel " + Fmt(high_card_speedup, 2) +
          "x scalar checks/sec at cardinality 512 (need >= 1.5x on avx2 "
          "dispatch; actual dispatch " + dispatch + ")");

  const char* out = "BENCH_kernels.json";
  if (json.WriteFile(out)) std::printf("wrote %s\n", out);
}

}  // namespace
}  // namespace bench
}  // namespace nmrs

int main(int argc, char** argv) {
  nmrs::bench::Run(argc, argv);
  return 0;
}
