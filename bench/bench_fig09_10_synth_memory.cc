// Figures 9-10: IO cost and response time vs. available memory (5%-20%)
// on synthetic normal data — the paper uses 1M objects, 5 attributes,
// 50 values per attribute (scaled here by --scale).
#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  using namespace nmrs;
  using bench::Fmt;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/0.1);

  const uint64_t rows = args.Rows(1000000);
  const std::vector<size_t> cards(5, 50);
  Rng rng(args.seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  Dataset data = GenerateNormal(rows, cards, data_rng);
  SimilaritySpace space = MakeRandomSpace(cards, space_rng);

  bench::Banner("Synthetic normal, " + std::to_string(rows) +
                " rows x 5 attrs x 50 values (paper: 1M)");

  const std::vector<double> fractions = {0.05, 0.10, 0.15, 0.20};
  bench::Table io({"mem%", "BRS seq", "SRS seq", "TRS seq", "BRS rand",
                   "SRS rand", "TRS rand"});
  bench::Table resp({"mem%", "BRS resp(ms)", "SRS resp(ms)", "TRS resp(ms)"});

  double trs_resp = 0, srs_resp = 0, brs_resp = 0, trs_rand = 0,
         others_rand = 0;
  for (double frac : fractions) {
    auto brs = RunPoint(data, space, Algorithm::kBRS, frac, args);
    auto srs = RunPoint(data, space, Algorithm::kSRS, frac, args);
    auto trs = RunPoint(data, space, Algorithm::kTRS, frac, args);
    io.AddRow({Fmt(frac * 100, 0), Fmt(brs.seq_io, 0), Fmt(srs.seq_io, 0),
               Fmt(trs.seq_io, 0), Fmt(brs.rand_io, 0), Fmt(srs.rand_io, 0),
               Fmt(trs.rand_io, 0)});
    resp.AddRow({Fmt(frac * 100, 0), Fmt(brs.response_ms),
                 Fmt(srs.response_ms), Fmt(trs.response_ms)});
    brs_resp += brs.response_ms;
    srs_resp += srs.response_ms;
    trs_resp += trs.response_ms;
    trs_rand += trs.rand_io;
    others_rand += (brs.rand_io + srs.rand_io) / 2;
  }
  std::printf("\n[Fig 9: IO cost vs %% memory]\n");
  io.Print();
  std::printf("\n[Fig 10: response time vs %% memory]\n");
  resp.Print();

  bench::ShapeCheck("fig10-trs-fastest",
                    trs_resp < srs_resp && trs_resp < brs_resp,
                    "TRS " + Fmt(trs_resp) + "ms vs SRS " + Fmt(srs_resp) +
                        "ms vs BRS " + Fmt(brs_resp) + "ms");
  bench::ShapeCheck("fig9-trs-least-random-io", trs_rand <= others_rand,
                    "TRS " + Fmt(trs_rand, 0) + " vs avg(BRS,SRS) " +
                        Fmt(others_rand, 0));
  return 0;
}
