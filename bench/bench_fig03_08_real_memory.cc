// Figures 3-8: computational cost, IO cost (sequential + random) and
// response time vs. available memory (% of dataset size) on the real-data
// substitutes Census-Income (dense, 6.9%) and ForestCover (sparse, 0.04%).
// Paper claims: TRS ~3x faster than SRS and ~6x than BRS computationally;
// sequential IO similar across algorithms (two passes each); TRS incurs
// the least random IO; response time tracks computation.
#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"

namespace nmrs {
namespace {

using bench::AlgoMetrics;
using bench::Args;
using bench::Fmt;
using bench::Table;

// Returns the average IO share of TRS's response time on this dataset, so
// main() can check the paper's density claim (§5.3: IO contributes up to
// ~65% on the dense CI dataset, much less on sparse FC).
double RunDataset(const std::string& name, const Dataset& data,
                  const SimilaritySpace& space, const Args& args) {
  bench::Banner(name + " (" + std::to_string(data.num_rows()) +
                " rows, density " + Fmt(data.Density() * 100, 4) + "%)");
  const std::vector<double> memory_fractions = {0.04, 0.08, 0.12, 0.16,
                                                0.20};
  const Algorithm algos[] = {Algorithm::kBRS, Algorithm::kSRS,
                             Algorithm::kTRS};

  Table compute({"mem%", "BRS comp(ms)", "SRS comp(ms)", "TRS comp(ms)"});
  Table io({"mem%", "BRS seq", "SRS seq", "TRS seq", "BRS rand", "SRS rand",
            "TRS rand"});
  Table resp({"mem%", "BRS resp(ms)", "SRS resp(ms)", "TRS resp(ms)"});

  double brs_total = 0, srs_total = 0, trs_total = 0;
  double brs_rand = 0, trs_rand = 0;
  double srs_checks = 0, trs_checks = 0;
  double io_share_sum = 0;
  for (double frac : memory_fractions) {
    AlgoMetrics m[3];
    for (int i = 0; i < 3; ++i) {
      m[i] = RunPoint(data, space, algos[i], frac, args);
    }
    compute.AddRow({Fmt(frac * 100, 0), Fmt(m[0].compute_ms),
                    Fmt(m[1].compute_ms), Fmt(m[2].compute_ms)});
    io.AddRow({Fmt(frac * 100, 0), Fmt(m[0].seq_io, 0), Fmt(m[1].seq_io, 0),
               Fmt(m[2].seq_io, 0), Fmt(m[0].rand_io, 0),
               Fmt(m[1].rand_io, 0), Fmt(m[2].rand_io, 0)});
    resp.AddRow({Fmt(frac * 100, 0), Fmt(m[0].response_ms),
                 Fmt(m[1].response_ms), Fmt(m[2].response_ms)});
    brs_total += m[0].compute_ms;
    srs_total += m[1].compute_ms;
    trs_total += m[2].compute_ms;
    brs_rand += m[0].rand_io;
    trs_rand += m[2].rand_io;
    srs_checks += m[1].checks;
    trs_checks += m[2].checks;
    if (m[2].response_ms > 0) {
      io_share_sum += (m[2].response_ms - m[2].compute_ms) / m[2].response_ms;
    }
  }
  std::printf("\n[Fig computation vs %% memory]\n");
  compute.Print();
  std::printf("\n[Fig IO cost vs %% memory]\n");
  io.Print();
  std::printf("\n[Fig response time vs %% memory]\n");
  resp.Print();

  bench::ShapeCheck(name + "-trs-beats-brs-compute",
                    trs_total < brs_total,
                    "TRS " + Fmt(trs_total) + "ms vs BRS " + Fmt(brs_total) +
                        "ms (summed; SRS " + Fmt(srs_total) + "ms)");
  bench::ShapeCheck(name + "-trs-fewer-checks", trs_checks < srs_checks,
                    "TRS " + Fmt(trs_checks, 0) + " vs SRS " +
                        Fmt(srs_checks, 0) + " checks");
  bench::ShapeCheck(name + "-srs-beats-brs", srs_total <= brs_total * 1.05,
                    "SRS " + Fmt(srs_total) + "ms <= BRS " +
                        Fmt(brs_total) + "ms");
  bench::ShapeCheck(name + "-trs-least-random-io", trs_rand <= brs_rand,
                    "TRS rand IO " + Fmt(trs_rand, 0) + " <= BRS rand IO " +
                        Fmt(brs_rand, 0));
  return io_share_sum / static_cast<double>(memory_fractions.size());
}

}  // namespace
}  // namespace nmrs

int main(int argc, char** argv) {
  using namespace nmrs;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/0.2);
  Rng rng(args.seed);
  Rng ci_rng = rng.Fork();
  Rng fc_rng = rng.Fork();
  Rng space_rng = rng.Fork();

  double ci_io_share = 0, fc_io_share = 0;
  {
    Dataset ci =
        GenerateCensusIncomeLike(args.Rows(kCensusIncomeFullRows), ci_rng);
    SimilaritySpace space =
        MakeRandomSpace(CensusIncomeCardinalities(), space_rng);
    ci_io_share = RunDataset("Census-Income-like", ci, space, args);
  }
  {
    Dataset fc =
        GenerateForestCoverLike(args.Rows(kForestCoverFullRows), fc_rng);
    SimilaritySpace space =
        MakeRandomSpace(ForestCoverCardinalities(), space_rng);
    fc_io_share = RunDataset("ForestCover-like", fc, space, args);
  }
  // §5.3: the denser dataset's response time is more IO-bound ("upto 65%
  // of total response time on CI, much lesser for FC").
  bench::ShapeCheck(
      "sec5.3-denser-data-more-io-bound", ci_io_share > fc_io_share,
      "TRS IO share: CI-like " + bench::Fmt(ci_io_share * 100, 1) +
          "% vs FC-like " + bench::Fmt(fc_io_share * 100, 1) + "%");
  return 0;
}
