// §6 (numeric attributes via discretization) — the paper describes the
// mechanism without a dedicated figure; this ablation quantifies it:
// bucket count vs. phase-1 survivors / checks / response time for TRS on a
// mixed categorical+numeric dataset, against the exact-value BRS/SRS
// baselines. Expected: coarse buckets weaken phase-1 pruning (more
// survivors refined in phase 2); moderate bucket counts recover most of
// TRS's advantage while staying exact in the final answer.
#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  using namespace nmrs;
  using bench::Fmt;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/0.05);
  const uint64_t rows = args.Rows(200000);

  const std::vector<size_t> cat_cards = {20, 20};
  const size_t num_numeric = 2;

  bench::Banner("Numeric handling: " + std::to_string(rows) +
                " rows, 2 categorical + 2 numeric attributes");

  // Exact baselines (bucket count irrelevant to BRS/SRS processing).
  Rng base_rng(args.seed);
  Rng data_rng = base_rng.Fork();
  Rng space_rng = base_rng.Fork();
  Dataset base_data =
      GenerateMixed(rows, cat_cards, num_numeric, 8, data_rng);
  SimilaritySpace space;
  {
    Rng m_rng = space_rng;
    for (size_t card : cat_cards) {
      space.AddCategorical(MakeRandomMatrix(card, m_rng));
    }
    for (size_t i = 0; i < num_numeric; ++i) {
      space.AddNumeric(NumericDissimilarity());
    }
  }
  auto brs = RunPoint(base_data, space, Algorithm::kBRS, 0.10, args);
  auto srs = RunPoint(base_data, space, Algorithm::kSRS, 0.10, args);

  bench::Table table({"algo", "buckets", "P1 survivors", "checks",
                      "resp(ms)", "result"});
  table.AddRow({"BRS", "-", Fmt(brs.survivors, 0), Fmt(brs.checks, 0),
                Fmt(brs.response_ms), Fmt(brs.result_size, 1)});
  table.AddRow({"SRS", "-", Fmt(srs.survivors, 0), Fmt(srs.checks, 0),
                Fmt(srs.response_ms), Fmt(srs.result_size, 1)});

  double survivors_coarse = 0, survivors_fine = 0, best_trs = 1e100;
  for (size_t buckets : {2u, 4u, 8u, 16u, 32u, 64u}) {
    Rng d_rng(args.seed + 1);  // same numeric draws for every bucket count
    Dataset data = GenerateMixed(rows, cat_cards, num_numeric, buckets,
                                 d_rng);
    auto trs = RunPoint(data, space, Algorithm::kTRS, 0.10, args);
    table.AddRow({"TRS", std::to_string(buckets), Fmt(trs.survivors, 0),
                  Fmt(trs.checks, 0), Fmt(trs.response_ms),
                  Fmt(trs.result_size, 1)});
    if (buckets == 2) survivors_coarse = trs.survivors;
    if (buckets == 64) survivors_fine = trs.survivors;
    best_trs = std::min(best_trs, trs.response_ms);
  }
  table.Print();

  bench::ShapeCheck("sec6-coarse-buckets-more-survivors",
                    survivors_coarse >= survivors_fine,
                    Fmt(survivors_coarse, 0) + " @2 buckets vs " +
                        Fmt(survivors_fine, 0) + " @64 buckets");
  bench::ShapeCheck("sec6-trs-competitive", best_trs <= brs.response_ms,
                    "best TRS " + Fmt(best_trs) + "ms <= BRS " +
                        Fmt(brs.response_ms) + "ms");
  return 0;
}
