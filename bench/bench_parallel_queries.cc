// Parallel query engine throughput: one frozen PreparedDataset, a batch of
// reverse-skyline queries fanned out over the work-stealing pool, worker
// counts 1/2/4/8. The headline metric is *modeled* throughput — each worker
// owns a private DiskView (its own spindle), so the batch's modeled makespan
// is the busiest worker's summed ResponseMillis. Wall-clock is reported
// alongside but depends on host core count (this container is single-core,
// so wall speedup is not expected there). Emits BENCH_parallel.json.
//
// Extra flags on top of bench_util's: none. --scale=1 (default) gives the
// 50k-object synthetic workload from the acceptance criterion.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "data/generators.h"
#include "exec/query_engine.h"
#include "sim/dissimilarity_matrix.h"

namespace nmrs {
namespace bench {
namespace {

void Run(int argc, char** argv) {
  Args args = Args::Parse(argc, argv, 1.0);
  const uint64_t rows = args.Rows(50000);
  const size_t num_queries = args.quick ? 16 : 64;

  Banner("Parallel query engine: batch throughput vs worker count");
  std::printf("dataset: %llu normal-distributed objects, batch of %zu "
              "queries, algorithm TRS\n",
              static_cast<unsigned long long>(rows), num_queries);

  Rng rng(args.seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards = {8, 8, 8, 8};
  Dataset data = GenerateNormal(rows, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, data, Algorithm::kTRS);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  RSOptions rs;
  rs.memory =
      MemoryBudget::FromFraction(0.1, prepared->stored.num_pages());

  Table table({"workers", "wall_ms", "modeled_makespan_ms", "modeled_qps",
               "speedup_vs_1"});
  JsonWriter json("parallel_queries");

  IoStats reference_io;
  double base_qps = 0;
  double speedup_at_8 = 0;
  bool io_identical = true;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    QueryEngineOptions opts;
    opts.num_workers = workers;
    opts.rs = rs;
    QueryEngine engine(*prepared, space, Algorithm::kTRS, opts);
    auto batch = engine.RunBatch(queries);
    NMRS_CHECK(batch.ok()) << batch.status();

    if (workers == 1) {
      reference_io = batch->total_io;
      base_qps = batch->ModeledQps();
    } else if (!(batch->total_io == reference_io)) {
      io_identical = false;
    }
    const double qps = batch->ModeledQps();
    const double speedup = base_qps > 0 ? qps / base_qps : 0;
    if (workers == 8) speedup_at_8 = speedup;

    table.AddRow({std::to_string(workers), Fmt(batch->wall_millis),
                  Fmt(batch->ModeledMakespanMillis()), Fmt(qps, 2),
                  Fmt(speedup, 2)});

    json.BeginRun();
    json.Field("workers", static_cast<uint64_t>(workers));
    json.Field("num_rows", rows);
    json.Field("num_queries", static_cast<uint64_t>(num_queries));
    json.Field("wall_millis", batch->wall_millis);
    json.Field("modeled_makespan_millis", batch->ModeledMakespanMillis());
    json.Field("queries_per_sec", qps);
    json.Field("speedup_vs_1_thread", speedup);
    EmitIoFields(&json, batch->total_io);
  }
  table.Print();

  ShapeCheck("parallel-io-worker-independent", io_identical,
             "aggregate IO identical for every worker count");
  ShapeCheck("parallel-3x-at-8-workers", speedup_at_8 >= 3.0,
             "modeled throughput at 8 workers is " + Fmt(speedup_at_8, 2) +
                 "x the 1-worker baseline (need >= 3x)");

  const char* out = "BENCH_parallel.json";
  if (json.WriteFile(out)) std::printf("wrote %s\n", out);
}

}  // namespace
}  // namespace bench
}  // namespace nmrs

int main(int argc, char** argv) {
  nmrs::bench::Run(argc, argv);
  return 0;
}
