// §1 of the paper: "the Reverse Skyline set is the union of the RNN set
// across all possible specifications of monotonic aggregation functions".
// This bench samples increasing numbers of random positive weightings,
// verifies every RNN set stays inside RS(Q), and shows the union's
// coverage of RS(Q) growing — motivating RS as the aggregation-free
// influence operator.
#include <cstdio>

#include "bench_util.h"
#include "core/skyline.h"
#include "data/generators.h"
#include "ops/rnn.h"

int main(int argc, char** argv) {
  using namespace nmrs;
  using bench::Fmt;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/1.0);

  const uint64_t rows = args.quick ? 400 : 2000;
  const std::vector<size_t> cards = {15, 15, 15};
  Rng rng(args.seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  Rng query_rng = rng.Fork();
  Dataset data = GenerateUniform(rows, cards, data_rng);
  SimilaritySpace space = MakeRandomSpace(cards, space_rng);
  Object q = SampleUniformQuery(data, query_rng);

  auto rs = ReverseSkylineOracle(data, space, q);
  bench::Banner("RS(Q) as the union of RNN over monotone aggregates (" +
                std::to_string(rows) + " rows, |RS| = " +
                std::to_string(rs.size()) + ")");

  bench::Table table({"# weightings", "union |RNN|", "% of RS covered",
                      "all subsets of RS?"});
  double final_coverage = 0;
  bool always_subset = true;
  for (int w : {1, 2, 5, 10, 25, 50, 100}) {
    auto covered = RnnUnionCoverage(data, space, q, w, args.seed + 7);
    const bool subset =
        std::includes(rs.begin(), rs.end(), covered.begin(), covered.end());
    always_subset &= subset;
    final_coverage = rs.empty() ? 100.0
                                : 100.0 * static_cast<double>(covered.size()) /
                                      static_cast<double>(rs.size());
    table.AddRow({std::to_string(w), std::to_string(covered.size()),
                  Fmt(final_coverage, 1) + "%", subset ? "yes" : "NO"});
  }
  table.Print();

  bench::ShapeCheck("rnn-always-subset-of-rs", always_subset,
                    "every sampled RNN(Q, w) is contained in RS(Q)");
  // Note: full coverage needs all *monotone* aggregates, not just linear
  // weighted sums — skyline points that are never optimal for any linear
  // weighting (inside the "convex hull" of the distance space) stay
  // uncovered no matter how many weight vectors are sampled. Partial
  // coverage that grows with samples is exactly the expected picture.
  bench::ShapeCheck("rnn-union-grows-toward-rs", final_coverage >= 50.0,
                    Fmt(final_coverage, 1) +
                        "% of RS covered by 100 linear weightings (union "
                        "never exceeds RS; the gap needs non-linear "
                        "monotone aggregates)");
  return 0;
}
