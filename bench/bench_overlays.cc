// Multi-tenant overlay throughput (docs/OVERLAYS.md): one frozen
// PreparedDataset, K users who each patch the shared dissimilarity
// matrices with a sparse MatrixOverlay, a BRS batch answered two ways:
//
//   incremental — QueryEngine::RunOverlayBatch: one base run, one
//                 classification pass splitting rows into
//                 overlay-invariant vs overlay-sensitive, then grouped
//                 re-check scans over only the sensitive rows;
//   rebuild     — the cold baseline: per user, materialize the patched
//                 SimilaritySpace and run the full batch from scratch,
//                 modeled cost summed over users.
//
// The rebuild runs double as the correctness oracle: every (query, user)
// row set from the incremental path is checked bit-identical to that
// user's rebuild, and the per-config `identical` flag lands in the JSON
// where tools/check_overlay_gate.py re-audits it. The gate also holds the
// modeled speedup at 256 users / 1% touch to >= 3x — the headline
// multi-tenancy claim: incremental cost is one base run plus re-check
// work proportional to the touched fraction, not K full runs.
//
// Sweeps K in {1, 16, 256} x touch rate in {0.1%, 1%, 10%} and emits
// BENCH_overlays.json. Extra flags on top of bench_util's: none.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "data/generators.h"
#include "exec/query_engine.h"
#include "sim/dissimilarity_matrix.h"
#include "sim/matrix_overlay.h"

namespace nmrs {
namespace bench {
namespace {

void Run(int argc, char** argv) {
  Args args = Args::Parse(argc, argv, 0.2);
  const uint64_t rows = args.Rows(50000);
  const size_t num_queries = args.quick ? 4 : 12;
  constexpr size_t kWorkers = 4;

  Banner("Multi-tenant overlays: incremental re-pruning vs per-user rebuild");
  std::printf("dataset: %llu normal-distributed objects over 4 attributes, "
              "batch of %zu BRS queries, %zu workers\n",
              static_cast<unsigned long long>(rows), num_queries, kWorkers);

  Rng rng(args.seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards(4, 12);
  Dataset data = GenerateNormal(rows, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, data, Algorithm::kBRS);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  Table table({"users", "touch_pct", "sensitive_pct", "wall_ms",
               "modeled_ms", "rebuild_ms", "speedup", "identical"});
  JsonWriter json("overlays");

  bool identical_everywhere = true;
  double speedup_at_gate = 0;

  const size_t user_counts[] = {1, 16, 256};
  const double touch_pcts[] = {0.1, 1.0, 10.0};
  for (size_t users : user_counts) {
    for (double touch_pct : touch_pcts) {
      // Seed per config so adding a config never reshuffles another's
      // overlays.
      Rng orng(args.seed + users * 1000003 +
               static_cast<uint64_t>(touch_pct * 1000));
      std::vector<MatrixOverlay> overlays;
      overlays.reserve(users);
      for (size_t u = 0; u < users; ++u) {
        overlays.push_back(MakeRandomOverlay(space, orng, touch_pct / 100.0));
      }
      std::vector<const MatrixOverlay*> ptrs;
      for (const auto& o : overlays) ptrs.push_back(&o);

      QueryEngineOptions opts;
      opts.num_workers = kWorkers;
      // Whole file resident after the first scan: the comparison is then
      // "one cold scan + sensitive-row re-checks" vs "K cold scans + K
      // full query batches", the multi-tenant contrast under test.
      opts.cache_pages = prepared->stored.num_pages() + 2;

      auto ob = QueryEngine(*prepared, space, Algorithm::kBRS, opts)
                    .RunOverlayBatch(queries, ptrs);
      NMRS_CHECK(ob.ok()) << ob.status();
      NMRS_CHECK(ob->ok()) << ob->first_error();

      // Cold per-user rebuild: baseline cost and correctness oracle.
      double rebuild_ms = 0;
      bool identical = true;
      for (size_t u = 0; u < users; ++u) {
        SimilaritySpace patched = overlays[u].BuildPatchedSpace();
        auto rb = QueryEngine(*prepared, patched, Algorithm::kBRS, opts)
                      .RunBatch(queries);
        NMRS_CHECK(rb.ok()) << rb.status();
        NMRS_CHECK(rb->ok()) << rb->first_error();
        rebuild_ms += rb->ModeledMakespanMillis();
        for (size_t q = 0; q < queries.size(); ++q) {
          if (rb->results[q].rows != ob->results[q][u].rows) {
            identical = false;
          }
        }
      }
      identical_everywhere = identical_everywhere && identical;

      const double makespan = ob->ModeledMakespanMillis();
      const double speedup = makespan > 0 ? rebuild_ms / makespan : 0;
      if (users == 256 && touch_pct == 1.0) speedup_at_gate = speedup;
      const uint64_t classified = ob->sensitive_rows + ob->invariant_rows;
      const double sensitive_pct =
          classified == 0 ? 0.0
                          : 100.0 * static_cast<double>(ob->sensitive_rows) /
                                static_cast<double>(classified);

      table.AddRow({std::to_string(users), Fmt(touch_pct, 1),
                    Fmt(sensitive_pct, 1), Fmt(ob->wall_millis),
                    Fmt(makespan), Fmt(rebuild_ms), Fmt(speedup, 2),
                    identical ? "yes" : "NO"});

      json.BeginRun();
      json.Field("users", static_cast<uint64_t>(users));
      json.Field("touch_pct", touch_pct);
      json.Field("workers", static_cast<uint64_t>(kWorkers));
      json.Field("num_rows", rows);
      json.Field("num_queries", static_cast<uint64_t>(num_queries));
      json.Field("identical", static_cast<uint64_t>(identical ? 1 : 0));
      json.Field("wall_millis", ob->wall_millis);
      json.Field("modeled_makespan_millis", makespan);
      json.Field("rebuild_modeled_millis", rebuild_ms);
      json.Field("speedup_vs_rebuild", speedup);
      json.Field("answers_per_sec", ob->ModeledQps());
      EmitOverlayFields(&json, ob->sensitive_rows, ob->invariant_rows,
                        ob->recheck_scans, ob->recheck_checks,
                        ob->recheck_pair_tests);
      EmitIoFields(&json, ob->total_io);
    }
  }

  table.Print();

  ShapeCheck("overlay-rows-bit-identical", identical_everywhere,
             "incremental rows identical to per-user rebuild everywhere");
  ShapeCheck("overlay-modeled-speedup", speedup_at_gate >= 3.0,
             "modeled speedup at 256 users / 1% touch = " +
                 Fmt(speedup_at_gate, 2) + "x (want >= 3.0x)");

  json.WriteFile("BENCH_overlays.json");
}

}  // namespace
}  // namespace bench
}  // namespace nmrs

int main(int argc, char** argv) {
  nmrs::bench::Run(argc, argv);
  return 0;
}
