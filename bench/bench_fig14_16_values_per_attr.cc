// Figures 14-16: computation, IO and response time vs. data density, by
// varying the number of values per attribute from 45 to 70 (step 5) at a
// fixed dataset size (paper: 1M rows, 5 attributes; scaled by --scale).
// Paper claims: TRS outperforms BRS and SRS by ~6x and ~3x on average; the
// random-IO gap between TRS and the others widens.
#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  using namespace nmrs;
  using bench::Fmt;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/0.05);
  const uint64_t rows = args.Rows(1000000);

  bench::Table compute({"values", "density", "BRS comp(ms)", "SRS comp(ms)",
                        "TRS comp(ms)"});
  bench::Table io({"values", "BRS seq", "SRS seq", "TRS seq", "BRS rand",
                   "SRS rand", "TRS rand"});
  bench::Table resp(
      {"values", "BRS resp(ms)", "SRS resp(ms)", "TRS resp(ms)"});

  double trs_sum = 0, srs_sum = 0, brs_sum = 0;
  double trs_rand = 0, brs_rand = 0;
  double trs_checks = 0, srs_checks = 0;
  for (size_t values = 45; values <= 70; values += 5) {
    const std::vector<size_t> cards(5, values);
    Rng rng(args.seed + values);
    Rng data_rng = rng.Fork();
    Rng space_rng = rng.Fork();
    Dataset data = GenerateNormal(rows, cards, data_rng);
    SimilaritySpace space = MakeRandomSpace(cards, space_rng);

    auto brs = RunPoint(data, space, Algorithm::kBRS, 0.10, args);
    auto srs = RunPoint(data, space, Algorithm::kSRS, 0.10, args);
    auto trs = RunPoint(data, space, Algorithm::kTRS, 0.10, args);

    const std::string v = std::to_string(values);
    compute.AddRow({v, Fmt(data.Density(), 8), Fmt(brs.compute_ms),
                    Fmt(srs.compute_ms), Fmt(trs.compute_ms)});
    io.AddRow({v, Fmt(brs.seq_io, 0), Fmt(srs.seq_io, 0), Fmt(trs.seq_io, 0),
               Fmt(brs.rand_io, 0), Fmt(srs.rand_io, 0),
               Fmt(trs.rand_io, 0)});
    resp.AddRow({v, Fmt(brs.response_ms), Fmt(srs.response_ms),
                 Fmt(trs.response_ms)});
    trs_sum += trs.compute_ms;
    srs_sum += srs.compute_ms;
    brs_sum += brs.compute_ms;
    trs_rand += trs.rand_io;
    brs_rand += brs.rand_io;
    trs_checks += trs.checks;
    srs_checks += srs.checks;
  }
  std::printf("\n[Fig 14: computation vs density (varying # values)]\n");
  compute.Print();
  std::printf("\n[Fig 15: IO cost vs density]\n");
  io.Print();
  std::printf("\n[Fig 16: response time vs density]\n");
  resp.Print();

  bench::ShapeCheck("fig14-trs-beats-brs", trs_sum < brs_sum,
                    "TRS " + Fmt(trs_sum) + "ms, SRS " + Fmt(srs_sum) +
                        "ms, BRS " + Fmt(brs_sum) + "ms");
  bench::ShapeCheck("fig14-trs-fewer-checks", trs_checks < srs_checks,
                    "TRS " + Fmt(trs_checks, 0) + " vs SRS " +
                        Fmt(srs_checks, 0) + " checks");
  bench::ShapeCheck("fig15-trs-random-io-advantage", trs_rand < brs_rand,
                    "TRS rand " + Fmt(trs_rand, 0) + " < BRS rand " +
                        Fmt(brs_rand, 0));
  return 0;
}
