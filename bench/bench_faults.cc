// Storage-fault robustness benchmark (docs/ROBUSTNESS.md). Two workloads,
// one JSON artifact (BENCH_faults.json; runs carry a "workload" field):
//
// 1. "overhead" — the same SRS batch run three ways: the seed path (no
//    checksums, no injector), checksummed pages, and checksummed pages
//    with the fault injector armed but never firing (its only bad page
//    lies far past EOF, so every read still pays the oracle draw and the
//    FaultyDisk indirection). Fault handling is supposed to be free when
//    nothing fails; the shape check demands < 3% wall-clock overhead of
//    the fully-armed configuration over the seed path (best-of-N walls,
//    so scheduler noise doesn't decide the outcome) and bit-identical
//    rows across all three.
//
// 2. "retry-storm" — the checksummed batch under transient read faults at
//    p in {1e-4, 1e-3, 1e-2} with the default 3-attempt retry policy and
//    one clean-view query retry. Retries are charged as *modeled* backoff
//    latency (never slept), so the interesting output is how the modeled
//    makespan inflates with p while the answer stays exactly the clean
//    rows — the storm is absorbed, not returned to the caller.
//
// 3. "failover" — the checksummed batch against N in {1, 2, 3} storage
//    replicas where replica 0 permanently loses pages (data_loss_p = 1e-3
//    plus page 0 pinned bad, so every sweep sees at least one loss), the
//    others stay clean, and clean-view query retries are disabled: any
//    recovery is page-granular failover alone (docs/ROBUSTNESS.md). N = 1
//    is the damage baseline (queries fail); the shape check demands that
//    N >= 2 completes every query with rows identical to the fault-free
//    run and a nonzero failover count.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "data/generators.h"
#include "exec/query_engine.h"
#include "sim/dissimilarity_matrix.h"

namespace nmrs {
namespace bench {
namespace {

struct Workload {
  Dataset data;
  SimilaritySpace space;
  std::vector<Object> queries;
};

Workload MakeWorkload(const Args& args) {
  Rng rng(args.seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards = {8, 8, 8};
  Workload w{GenerateNormal(args.Rows(20000), cards, data_rng), {}, {}};
  for (size_t card : cards) {
    w.space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  const size_t num_queries = args.quick ? 8 : 32;
  for (size_t i = 0; i < num_queries; ++i) {
    w.queries.push_back(SampleUniformQuery(w.data, rng));
  }
  return w;
}

struct OverheadPoint {
  double best_wall = 0;
  double modeled_makespan = 0;
  std::vector<std::vector<RowId>> rows;
};

/// Runs the batch `reps` times on a fresh engine each time and keeps the
/// best wall clock — the repetitions exist purely to shave scheduler noise
/// off the < 3% comparison.
OverheadPoint RunOverheadConfig(const Workload& w, bool checksums,
                                bool arm_injector, int reps) {
  SimulatedDisk disk;
  PrepareOptions popts;
  popts.checksum_pages = checksums;
  auto prepared = PrepareDataset(&disk, w.data, Algorithm::kSRS, popts);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  QueryEngineOptions opts;
  opts.num_workers = 1;  // single worker: wall clock measures the hot path
  opts.rs.memory = MemoryBudget::FromFraction(0.1, prepared->stored.num_pages());
  if (arm_injector) {
    // Armed but inert: the only configured fault sits far past EOF, so the
    // oracle is consulted on every read yet never fires.
    opts.faults.seed = 7;
    opts.faults.bad_pages.insert(
        {prepared->stored.file(),
         static_cast<PageId>(prepared->stored.num_pages() + 1000000)});
  }

  OverheadPoint point;
  point.best_wall = -1;
  for (int rep = 0; rep < reps; ++rep) {
    QueryEngine engine(*prepared, w.space, Algorithm::kSRS, opts);
    auto batch = engine.RunBatch(w.queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    NMRS_CHECK(batch->ok()) << batch->first_error();
    if (point.best_wall < 0 || batch->wall_millis < point.best_wall) {
      point.best_wall = batch->wall_millis;
    }
    point.modeled_makespan = batch->ModeledMakespanMillis();
    if (rep == 0) {
      for (const auto& r : batch->results) point.rows.push_back(r.rows);
    }
  }
  return point;
}

bool RunOverhead(const Workload& w, const Args& args, JsonWriter* json,
                 double* overhead_out) {
  const int reps = args.quick ? 2 : 5;
  struct Config {
    const char* name;
    bool checksums;
    bool armed;
  };
  const Config configs[] = {
      {"seed-path", false, false},
      {"checksummed", true, false},
      {"checksummed+armed-injector", true, true},
  };

  Table table({"config", "best_wall_ms", "modeled_ms", "overhead_vs_seed"});
  double seed_wall = 0;
  bool rows_identical = true;
  std::vector<std::vector<RowId>> reference;

  for (const Config& cfg : configs) {
    OverheadPoint p = RunOverheadConfig(w, cfg.checksums, cfg.armed, reps);
    if (reference.empty()) {
      reference = p.rows;
      seed_wall = p.best_wall;
    } else if (p.rows != reference) {
      rows_identical = false;
    }
    const double overhead =
        seed_wall > 0 ? p.best_wall / seed_wall - 1.0 : 0.0;
    if (cfg.armed) *overhead_out = overhead;
    table.AddRow({cfg.name, Fmt(p.best_wall, 2), Fmt(p.modeled_makespan, 2),
                  Fmt(overhead * 100, 2) + "%"});

    json->BeginRun();
    json->Field("workload", std::string("overhead"));
    json->Field("config", std::string(cfg.name));
    json->Field("checksums", static_cast<uint64_t>(cfg.checksums));
    json->Field("injector_armed", static_cast<uint64_t>(cfg.armed));
    json->Field("num_rows", w.data.num_rows());
    json->Field("num_queries", static_cast<uint64_t>(w.queries.size()));
    json->Field("reps", static_cast<uint64_t>(reps));
    json->Field("best_wall_millis", p.best_wall);
    json->Field("modeled_makespan_millis", p.modeled_makespan);
    json->Field("overhead_vs_seed", overhead);
  }
  table.Print();
  return rows_identical;
}

void RunRetryStorm(const Workload& w, JsonWriter* json) {
  SimulatedDisk disk;
  PrepareOptions popts;
  popts.checksum_pages = true;
  auto prepared = PrepareDataset(&disk, w.data, Algorithm::kSRS, popts);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  QueryEngineOptions base;
  // One worker: the modeled makespan is then the deterministic sum of
  // per-query response times, so "inflation" below measures backoff, not
  // which worker happened to steal which query.
  base.num_workers = 1;
  base.rs.memory =
      MemoryBudget::FromFraction(0.1, prepared->stored.num_pages());
  base.max_query_retries = 1;  // clean-view replica read on exhaustion

  // Clean reference for row identity and makespan inflation.
  BatchResult clean;
  {
    auto batch =
        QueryEngine(*prepared, w.space, Algorithm::kSRS, base).RunBatch(
            w.queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    NMRS_CHECK(batch->ok()) << batch->first_error();
    clean = std::move(*batch);
  }
  const double clean_makespan = clean.ModeledMakespanMillis();

  Table table({"transient_p", "retries", "backoff_ms", "recovered",
               "failed", "modeled_ms", "inflation"});
  const double storms[] = {1e-4, 1e-3, 1e-2};
  for (double p : storms) {
    QueryEngineOptions opts = base;
    opts.faults.seed = 1315;
    opts.faults.transient_read_p = p;
    auto batch =
        QueryEngine(*prepared, w.space, Algorithm::kSRS, opts).RunBatch(
            w.queries);
    NMRS_CHECK(batch.ok()) << batch.status();

    double backoff_ms = 0;
    bool rows_match = true;
    for (size_t i = 0; i < w.queries.size(); ++i) {
      backoff_ms += batch->results[i].stats.modeled_backoff_millis;
      if (batch->statuses[i].ok() &&
          batch->results[i].rows != clean.results[i].rows) {
        rows_match = false;
      }
    }
    NMRS_CHECK(rows_match) << "storm p=" << p << " changed result rows";

    const double makespan = batch->ModeledMakespanMillis();
    const double inflation =
        clean_makespan > 0 ? makespan / clean_makespan - 1.0 : 0.0;
    table.AddRow({Fmt(p, 4), std::to_string(batch->total_io.transient_retries),
                  Fmt(backoff_ms, 2), std::to_string(batch->queries_retried),
                  std::to_string(batch->num_failed()), Fmt(makespan, 2),
                  Fmt(inflation * 100, 1) + "%"});

    json->BeginRun();
    json->Field("workload", std::string("retry-storm"));
    json->Field("transient_p", p);
    json->Field("num_rows", w.data.num_rows());
    json->Field("num_queries", static_cast<uint64_t>(w.queries.size()));
    json->Field("queries_recovered", batch->queries_retried);
    json->Field("queries_failed", static_cast<uint64_t>(batch->num_failed()));
    json->Field("modeled_backoff_millis", backoff_ms);
    json->Field("modeled_makespan_millis", makespan);
    json->Field("makespan_inflation_vs_clean", inflation);
    json->Field("clean_makespan_millis", clean_makespan);
    EmitIoFields(json, batch->total_io);
  }
  table.Print();
}

void RunFailover(const Workload& w, JsonWriter* json, bool* recovered_out) {
  SimulatedDisk disk;
  PrepareOptions popts;
  popts.checksum_pages = true;
  auto prepared = PrepareDataset(&disk, w.data, Algorithm::kSRS, popts);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  QueryEngineOptions base;
  base.num_workers = 4;
  base.rs.memory =
      MemoryBudget::FromFraction(0.1, prepared->stored.num_pages());
  base.max_query_retries = 0;  // recovery must come from failover alone

  // Fault-free reference rows.
  BatchResult clean;
  {
    auto batch =
        QueryEngine(*prepared, w.space, Algorithm::kSRS, base).RunBatch(
            w.queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    NMRS_CHECK(batch->ok()) << batch->first_error();
    clean = std::move(*batch);
  }

  FaultConfig lossy;
  lossy.seed = 4242;
  lossy.data_loss_p = 1e-3;
  // Page 0 pinned bad: the probabilistic draw may select zero pages on a
  // small --quick dataset, and the shape check needs a guaranteed loss.
  lossy.bad_pages.insert({prepared->stored.file(), 0});

  Table table({"replicas", "failed", "failovers", "replica_reads",
               "modeled_ms", "rows_vs_clean"});
  *recovered_out = true;
  for (int n : {1, 2, 3}) {
    QueryEngineOptions opts = base;
    opts.rs.resilience.replicas = n;
    if (n == 1) {
      opts.faults = lossy;
    } else {
      opts.replica_faults.assign(static_cast<size_t>(n), FaultConfig{});
      opts.replica_faults[0] = lossy;
    }
    auto batch =
        QueryEngine(*prepared, w.space, Algorithm::kSRS, opts).RunBatch(
            w.queries);
    NMRS_CHECK(batch.ok()) << batch.status();

    bool rows_match = true;
    for (size_t i = 0; i < w.queries.size(); ++i) {
      if (batch->statuses[i].ok() &&
          batch->results[i].rows != clean.results[i].rows) {
        rows_match = false;
      }
    }
    if (n >= 2 &&
        (!batch->ok() || batch->total_io.failovers == 0 || !rows_match)) {
      *recovered_out = false;
    }

    table.AddRow({std::to_string(n), std::to_string(batch->num_failed()),
                  std::to_string(batch->total_io.failovers),
                  std::to_string(batch->total_io.ReplicaReadsTotal()),
                  Fmt(batch->ModeledMakespanMillis(), 2),
                  rows_match ? "identical" : "DIVERGED"});

    json->BeginRun();
    json->Field("workload", std::string("failover"));
    json->Field("replicas", static_cast<uint64_t>(n));
    json->Field("data_loss_p", lossy.data_loss_p);
    json->Field("num_rows", w.data.num_rows());
    json->Field("num_queries", static_cast<uint64_t>(w.queries.size()));
    json->Field("queries_failed",
                static_cast<uint64_t>(batch->num_failed()));
    json->Field("rows_identical_to_clean",
                static_cast<uint64_t>(rows_match));
    json->Field("modeled_makespan_millis", batch->ModeledMakespanMillis());
    EmitIoFields(json, batch->total_io);
  }
  table.Print();
}

void Run(int argc, char** argv) {
  Args args = Args::Parse(argc, argv, 1.0);
  Banner("Fault-handling overhead when no faults fire");
  Workload w = MakeWorkload(args);
  std::printf("dataset: %llu rows, batch of %zu SRS queries\n",
              static_cast<unsigned long long>(w.data.num_rows()),
              w.queries.size());

  JsonWriter json("faults");
  double armed_overhead = 0;
  const bool rows_identical = RunOverhead(w, args, &json, &armed_overhead);

  Banner("Retry storms: transient faults absorbed as modeled backoff");
  RunRetryStorm(w, &json);

  Banner("Replica failover: one lossy replica, recovery page by page");
  bool failover_recovered = true;
  RunFailover(w, &json, &failover_recovered);

  ShapeCheck("fault-machinery-rows-identical", rows_identical,
             "rows identical across seed path, checksummed pages, and "
             "armed-but-inert injector");
  ShapeCheck("no-fault-overhead-under-3pct", armed_overhead < 0.03,
             "checksums + armed injector cost " +
                 Fmt(armed_overhead * 100, 2) +
                 "% wall vs the seed path (need < 3%)");
  ShapeCheck("failover-recovers-with-2-replicas", failover_recovered,
             "with >= 2 replicas and one lossy, every query completes with "
             "the fault-free rows and failovers > 0");

  const char* out = "BENCH_faults.json";
  if (json.WriteFile(out)) std::printf("wrote %s\n", out);
}

}  // namespace
}  // namespace bench
}  // namespace nmrs

int main(int argc, char** argv) {
  nmrs::bench::Run(argc, argv);
  return 0;
}
