// Ablations of the design choices DESIGN.md calls out:
//  1. TRS child ordering: ascending-descendant-count push order (paper
//     Alg. 4 line 8) vs. insertion order.
//  2. Attribute ordering for the sort/tree: ascending cardinality (paper
//     §5.1 heuristic) vs. descending vs. random.
//  3. SRS phase-1 expanding-ring search vs. plain forward scan on the same
//     sorted data (forward scan == BRS's search on sorted input).
#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"
#include "order/attribute_order.h"

namespace nmrs {
namespace {

// Prepares the data for `prepare_algo`'s ordering but processes the query
// with `run_algo` — letting us, e.g., run BRS's forward scan over
// SRS-sorted data for the ring-search ablation.
bench::AlgoMetrics RunWith(const Dataset& data, const SimilaritySpace& space,
                           Algorithm prepare_algo, Algorithm run_algo,
                           const bench::Args& args,
                           const std::vector<AttrId>& attr_order,
                           bool order_children) {
  SimulatedDisk disk;
  PrepareOptions prep;
  prep.attr_order = attr_order;
  auto prepared = PrepareDataset(&disk, data, prepare_algo, prep);
  NMRS_CHECK(prepared.ok());
  RSOptions opts;
  opts.memory = MemoryBudget::FromFraction(0.10, prepared->stored.num_pages());
  opts.order_children_by_descendants = order_children;

  bench::AlgoMetrics avg;
  Rng query_rng(args.seed * 7919 + 17);
  for (int qi = 0; qi < args.queries; ++qi) {
    Object q = SampleUniformQuery(data, query_rng);
    auto result = RunReverseSkyline(*prepared, space, q, run_algo, opts);
    NMRS_CHECK(result.ok());
    avg.compute_ms += result->stats.compute_millis / args.queries;
    avg.checks +=
        static_cast<double>(result->stats.checks) / args.queries;
    avg.survivors += static_cast<double>(result->stats.phase1_survivors) /
                     args.queries;
  }
  return avg;
}

}  // namespace
}  // namespace nmrs

int main(int argc, char** argv) {
  using namespace nmrs;
  using bench::Fmt;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/0.03);
  const uint64_t rows = args.Rows(1000000);
  const std::vector<size_t> cards = {8, 70, 25, 50, 12};  // varied domains
  Rng rng(args.seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  Rng order_rng = rng.Fork();
  // Uniform value distribution: with the paper's normal (variance 3) data
  // every attribute collapses to ~9 effective values, so cardinality-based
  // orderings cannot differ; uniform data exposes the heuristic.
  Dataset data = GenerateUniform(rows, cards, data_rng);
  SimilaritySpace space = MakeRandomSpace(cards, space_rng);
  const Schema& schema = data.schema();

  bench::Banner("Ablation 1: TRS child push order (n=" +
                std::to_string(rows) + ")");
  auto asc = AscendingCardinalityOrder(schema);
  auto with_order = RunWith(data, space, Algorithm::kTRS, Algorithm::kTRS, args, asc, true);
  auto no_order = RunWith(data, space, Algorithm::kTRS, Algorithm::kTRS, args, asc, false);
  bench::Table t1({"variant", "checks", "comp(ms)"});
  t1.AddRow({"descendant-ordered (paper)", Fmt(with_order.checks, 0),
             Fmt(with_order.compute_ms)});
  t1.AddRow({"insertion order", Fmt(no_order.checks, 0),
             Fmt(no_order.compute_ms)});
  t1.Print();
  bench::ShapeCheck("ablation-child-order",
                    with_order.checks <= no_order.checks * 1.10,
                    "ordered " + Fmt(with_order.checks, 0) +
                        " vs unordered " + Fmt(no_order.checks, 0));

  bench::Banner("Ablation 2: attribute ordering heuristic (TRS)");
  auto desc = DescendingCardinalityOrder(schema);
  auto rnd = RandomOrder(schema, order_rng);
  auto m_asc = RunWith(data, space, Algorithm::kTRS, Algorithm::kTRS, args, asc, true);
  auto m_desc = RunWith(data, space, Algorithm::kTRS, Algorithm::kTRS, args, desc, true);
  auto m_rnd = RunWith(data, space, Algorithm::kTRS, Algorithm::kTRS, args, rnd, true);
  bench::Table t2({"ordering", "checks", "comp(ms)", "P1 survivors"});
  t2.AddRow({"ascending cardinality (paper)", Fmt(m_asc.checks, 0),
             Fmt(m_asc.compute_ms), Fmt(m_asc.survivors, 0)});
  t2.AddRow({"descending cardinality", Fmt(m_desc.checks, 0),
             Fmt(m_desc.compute_ms), Fmt(m_desc.survivors, 0)});
  t2.AddRow({"random", Fmt(m_rnd.checks, 0), Fmt(m_rnd.compute_ms),
             Fmt(m_rnd.survivors, 0)});
  t2.Print();
  bench::ShapeCheck("ablation-attr-order",
                    m_asc.checks <= m_desc.checks * 1.25,
                    "ascending " + Fmt(m_asc.checks, 0) +
                        " vs descending " + Fmt(m_desc.checks, 0));

  bench::Banner("Ablation 3: SRS ring search vs forward scan (sorted data)");
  auto ring = RunWith(data, space, Algorithm::kSRS, Algorithm::kSRS, args, asc, true);
  // BRS on SRS-prepared (sorted) data = forward scan phase 1.
  auto forward = RunWith(data, space, Algorithm::kSRS, Algorithm::kBRS, args, asc, true);
  bench::Table t3({"search", "checks", "comp(ms)"});
  t3.AddRow({"expanding ring (paper)", Fmt(ring.checks, 0),
             Fmt(ring.compute_ms)});
  t3.AddRow({"forward scan", Fmt(forward.checks, 0),
             Fmt(forward.compute_ms)});
  t3.Print();
  bench::ShapeCheck("ablation-ring-search", ring.checks <= forward.checks,
                    "ring " + Fmt(ring.checks, 0) + " vs forward " +
                        Fmt(forward.checks, 0));
  return 0;
}
