// Figures 17-18: IO cost and response time (log scale in the paper) vs.
// data density, by varying the number of attributes from 3 to 7 at 50
// values per attribute (paper: 1M rows, scaled by --scale). Paper claims:
// TRS responds up to 5x faster than SRS and 8x faster than BRS; the gains
// of group-level reasoning scale with the number of attributes.
#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  using namespace nmrs;
  using bench::Fmt;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/0.05);
  const uint64_t rows = args.Rows(1000000);

  bench::Table io({"attrs", "BRS seq", "SRS seq", "TRS seq", "BRS rand",
                   "SRS rand", "TRS rand"});
  bench::Table resp(
      {"attrs", "BRS resp(ms)", "SRS resp(ms)", "TRS resp(ms)"});

  double trs_sum = 0, srs_sum = 0, brs_sum = 0;
  double trs_checks = 0, srs_checks = 0;
  for (size_t attrs = 3; attrs <= 7; ++attrs) {
    const std::vector<size_t> cards(attrs, 50);
    Rng rng(args.seed + attrs);
    Rng data_rng = rng.Fork();
    Rng space_rng = rng.Fork();
    Dataset data = GenerateNormal(rows, cards, data_rng);
    SimilaritySpace space = MakeRandomSpace(cards, space_rng);

    auto brs = RunPoint(data, space, Algorithm::kBRS, 0.10, args);
    auto srs = RunPoint(data, space, Algorithm::kSRS, 0.10, args);
    auto trs = RunPoint(data, space, Algorithm::kTRS, 0.10, args);

    const std::string a = std::to_string(attrs);
    io.AddRow({a, Fmt(brs.seq_io, 0), Fmt(srs.seq_io, 0), Fmt(trs.seq_io, 0),
               Fmt(brs.rand_io, 0), Fmt(srs.rand_io, 0),
               Fmt(trs.rand_io, 0)});
    resp.AddRow({a, Fmt(brs.response_ms), Fmt(srs.response_ms),
                 Fmt(trs.response_ms)});
    trs_sum += trs.response_ms;
    srs_sum += srs.response_ms;
    brs_sum += brs.response_ms;
    trs_checks += trs.checks;
    srs_checks += srs.checks;
  }
  std::printf("\n[Fig 17: IO cost vs density (varying # attributes)]\n");
  io.Print();
  std::printf("\n[Fig 18: response time vs density (paper plots log "
              "scale)]\n");
  resp.Print();

  bench::ShapeCheck("fig18-trs-beats-brs", trs_sum < brs_sum,
                    "TRS " + Fmt(trs_sum) + "ms, SRS " + Fmt(srs_sum) +
                        "ms, BRS " + Fmt(brs_sum) + "ms (summed)");
  bench::ShapeCheck("fig18-trs-fewer-checks", trs_checks < srs_checks,
                    "TRS " + Fmt(trs_checks, 0) + " vs SRS " +
                        Fmt(srs_checks, 0) +
                        " checks (gains scale with #attributes)");
  return 0;
}
