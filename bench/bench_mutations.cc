// Mutable-dataset serving cost (docs/MUTABILITY.md): one base dataset
// opened as an nmrs::Database, a seeded stream of inserts/deletes grows a
// delta segment, and a TRS batch is answered two ways:
//
//   snapshot — Database::Snapshot materializes base+delta once per epoch
//              as a streamed 2-run merge, then the batch runs over the
//              pinned state;
//   rebuild  — the cold oracle: append the same mutations to an in-memory
//              Dataset, PrepareDataset from scratch, and run the batch on
//              a standalone QueryEngine.
//
// The rebuild doubles as the correctness oracle: every query's row set
// from the snapshot path is checked bit-identical to the rebuild's, and
// the per-config `identical` flag lands in the JSON where
// tools/check_mutation_gate.py re-audits it. The gate also holds the
// modeled query slowdown at a 1% delta to <= 1.3x of the frozen-dataset
// baseline — the serving claim: pinning a snapshot costs one incremental
// merge, after which queries behave as if the dataset had always been
// frozen at the merged content. The gated ratio is built from the
// deterministic IO cost model over the batch's charged page IO (identical
// across runs, worker counts and machine load), not from wall time or the
// assignment-dependent per-worker makespan.
//
// Sweeps the delta fraction in {0%, 0.1%, 1%, 5%} and emits
// BENCH_mutations.json. Extra flags on top of bench_util's: none.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/timer.h"
#include "data/generators.h"
#include "db/database.h"
#include "storage/io_stats.h"
#include "sim/dissimilarity_matrix.h"

namespace nmrs {
namespace bench {
namespace {

// In-memory mirror of the mutation history: base rows in id order, live
// inserts in insert order, deletes erased in place — exactly the logical
// row order a Database snapshot materializes.
struct Mirror {
  struct Row {
    uint64_t key;
    std::vector<ValueId> values;
  };
  std::vector<Row> rows;

  Dataset Rebuild(const Schema& schema) const {
    Dataset merged(schema);
    for (const Row& row : rows) merged.AppendRow(row.values, {});
    return merged;
  }
};

void Run(int argc, char** argv) {
  Args args = Args::Parse(argc, argv, 0.2);
  const uint64_t rows = args.Rows(50000);
  const size_t num_queries = args.quick ? 4 : 12;
  constexpr size_t kWorkers = 4;

  Banner("Mutable datasets: epoch snapshots vs from-scratch re-preparation");
  std::printf("dataset: %llu normal-distributed objects over 4 attributes, "
              "batch of %zu TRS queries, %zu workers\n",
              static_cast<unsigned long long>(rows), num_queries, kWorkers);

  Rng rng(args.seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards(4, 12);
  Dataset data = GenerateNormal(rows, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  DatabaseOptions dbopts;
  dbopts.algo = Algorithm::kTRS;
  dbopts.engine.num_workers = kWorkers;

  Table table({"delta_pct", "mutations", "snap_ms", "reprep_ms", "io_model_ms",
               "slowdown", "compact_ms", "identical"});
  JsonWriter json("mutations");

  bool identical_everywhere = true;
  double frozen_modeled_ms = 0;
  double slowdown_at_gate = 0;

  const double delta_pcts[] = {0.0, 0.1, 1.0, 5.0};
  for (double delta_pct : delta_pcts) {
    auto db = Database::Open(data, space, dbopts);
    NMRS_CHECK(db.ok()) << db.status();

    Mirror mirror;
    mirror.rows.reserve(rows);
    for (RowId r = 0; r < data.num_rows(); ++r) {
      mirror.rows.push_back({r, data.GetObject(r).values});
    }

    // Seed per config so adding a config never reshuffles another's
    // mutation stream. 1/3 deletes, 2/3 inserts of fresh random rows.
    const uint64_t mutations =
        static_cast<uint64_t>(static_cast<double>(rows) * delta_pct / 100.0);
    Rng mrng(args.seed + static_cast<uint64_t>(delta_pct * 1000) + 17);
    uint64_t inserts = 0, deletes = 0;
    for (uint64_t m = 0; m < mutations; ++m) {
      if (!mirror.rows.empty() && mrng.Uniform(3) == 0) {
        const size_t victim = mrng.Uniform(mirror.rows.size());
        NMRS_CHECK((*db)->Delete(mirror.rows[victim].key).ok());
        mirror.rows.erase(mirror.rows.begin() +
                          static_cast<ptrdiff_t>(victim));
        ++deletes;
      } else {
        std::vector<ValueId> values(cards.size());
        for (size_t a = 0; a < cards.size(); ++a) {
          values[a] = static_cast<ValueId>(mrng.Uniform(cards[a]));
        }
        auto key = (*db)->Insert(values);
        NMRS_CHECK(key.ok()) << key.status();
        mirror.rows.push_back({*key, std::move(values)});
        ++inserts;
      }
    }

    // Snapshot path: one incremental merge pins the epoch, then the batch.
    auto snap = (*db)->Snapshot();
    NMRS_CHECK(snap.ok()) << snap.status();
    const double snap_ms = snap->build_millis();
    auto got = snap->RunBatch(queries);
    NMRS_CHECK(got.ok()) << got.status();
    NMRS_CHECK(got->ok()) << got->first_error();

    // Cold oracle: re-prepare the merged dataset and run standalone.
    Dataset merged = mirror.Rebuild(data.schema());
    SimulatedDisk disk;
    Timer reprep_timer;
    auto prepared =
        PrepareDataset(&disk, merged, dbopts.algo, dbopts.prepare);
    const double reprep_ms = reprep_timer.ElapsedMillis();
    NMRS_CHECK(prepared.ok()) << prepared.status();
    auto want = QueryEngine(*prepared, space, dbopts.algo, dbopts.engine)
                    .RunBatch(queries);
    NMRS_CHECK(want.ok()) << want.status();
    NMRS_CHECK(want->ok()) << want->first_error();

    bool identical = true;
    for (size_t q = 0; q < queries.size(); ++q) {
      if (got->results()[q].rows != want->results[q].rows) identical = false;
    }
    identical_everywhere = identical_everywhere && identical;

    const double modeled_ms = IoCostModel{}.EstimateMillis(got->total_io());
    if (delta_pct == 0.0) frozen_modeled_ms = modeled_ms;
    const double slowdown =
        frozen_modeled_ms > 0 ? modeled_ms / frozen_modeled_ms : 0;
    if (delta_pct == 1.0) slowdown_at_gate = slowdown;

    // Compaction folds the delta into a new generation; afterwards
    // Snapshot() is free again (the base generation itself).
    Timer compact_timer;
    NMRS_CHECK((*db)->Compact().ok());
    const double compact_ms = compact_timer.ElapsedMillis();

    table.AddRow({Fmt(delta_pct, 1), std::to_string(mutations),
                  Fmt(snap_ms, 2), Fmt(reprep_ms, 2), Fmt(modeled_ms),
                  Fmt(slowdown, 3), Fmt(compact_ms, 2),
                  identical ? "yes" : "NO"});

    json.BeginRun();
    json.Field("delta_pct", delta_pct);
    json.Field("num_rows", rows);
    json.Field("mutations", mutations);
    json.Field("inserts", inserts);
    json.Field("deletes", deletes);
    json.Field("workers", static_cast<uint64_t>(kWorkers));
    json.Field("num_queries", static_cast<uint64_t>(num_queries));
    json.Field("identical", static_cast<uint64_t>(identical ? 1 : 0));
    json.Field("snapshot_build_millis", snap_ms);
    json.Field("reprepare_millis", reprep_ms);
    json.Field("batch_modeled_io_millis", modeled_ms);
    json.Field("slowdown_vs_frozen", slowdown);
    json.Field("compact_millis", compact_ms);
    json.Field("wall_millis", got->wall_millis());
    EmitIoFields(&json, got->total_io());
  }

  table.Print();

  ShapeCheck("mutation-rows-bit-identical", identical_everywhere,
             "snapshot rows identical to from-scratch re-preparation "
             "at every delta size");
  ShapeCheck("mutation-query-slowdown", slowdown_at_gate <= 1.3,
             "modeled query slowdown at 1% delta = " +
                 Fmt(slowdown_at_gate, 3) + "x (want <= 1.3x)");

  json.WriteFile("BENCH_mutations.json");
}

}  // namespace
}  // namespace bench
}  // namespace nmrs

int main(int argc, char** argv) {
  nmrs::bench::Run(argc, argv);
  return 0;
}
