// §5.5 pre-processing costs: the one-time external multi-attribute sort
// that SRS and TRS require, on the Census-Income-like, ForestCover-like
// and synthetic-normal datasets with memory at 10% of the dataset size.
// Paper (using the SmallText toolkit): CI 2.1 s, FC 3.2 s, synthetic 1M
// 4.2 s — "negligible for all practical settings".
#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"
#include "order/attribute_order.h"
#include "order/multi_sort.h"

namespace nmrs {
namespace {

void SortOne(const std::string& name, const Dataset& data,
             const bench::Args& args, bench::Table* table,
             double* total_ms) {
  SimulatedDisk disk;
  auto stored = StoredDataset::Create(&disk, data, name);
  NMRS_CHECK(stored.ok());
  const MemoryBudget mem =
      MemoryBudget::FromFraction(0.10, stored->num_pages());
  auto result = ExternalMultiAttributeSort(
      *stored, AscendingCardinalityOrder(data.schema()), mem, name + ".sorted");
  NMRS_CHECK(result.ok()) << result.status();
  NMRS_CHECK(result->sorted.num_rows() == data.num_rows());
  const IoCostModel model;
  const double response =
      result->millis + model.EstimateMillis(result->io);
  table->AddRow({name, std::to_string(data.num_rows()),
                 std::to_string(stored->num_pages()),
                 std::to_string(result->initial_runs),
                 std::to_string(result->merge_passes),
                 bench::Fmt(result->millis), bench::Fmt(response),
                 std::to_string(result->io.Total())});
  *total_ms += response;
  (void)args;
}

}  // namespace
}  // namespace nmrs

int main(int argc, char** argv) {
  using namespace nmrs;
  const bench::Args args = bench::Args::Parse(argc, argv, /*scale=*/0.05);

  bench::Banner("Pre-processing: external multi-attribute sort (10% memory)");
  bench::Table table({"dataset", "rows", "pages", "runs", "merge passes",
                      "cpu(ms)", "resp(ms)", "page IOs"});
  double total_ms = 0;

  Rng rng(args.seed);
  Rng ci_rng = rng.Fork();
  Rng fc_rng = rng.Fork();
  Rng sy_rng = rng.Fork();
  SortOne("census-income",
          GenerateCensusIncomeLike(args.Rows(kCensusIncomeFullRows), ci_rng),
          args, &table, &total_ms);
  SortOne("forest-cover",
          GenerateForestCoverLike(args.Rows(kForestCoverFullRows), fc_rng),
          args, &table, &total_ms);
  SortOne("synthetic-1M",
          GenerateNormal(args.Rows(1000000), std::vector<size_t>(5, 50),
                         sy_rng),
          args, &table, &total_ms);
  table.Print();
  std::printf("(paper, full scale with SmallText: CI 2.1s, FC 3.2s, "
              "synthetic 4.2s)\n");
  bench::ShapeCheck("sort-cost-negligible", total_ms < 60000,
                    "total modeled pre-processing " +
                        bench::Fmt(total_ms / 1000.0, 2) + "s");
  return 0;
}
