#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nmrs {
namespace {

TEST(GenerateNormalTest, ShapeAndDomain) {
  Rng rng(1);
  Dataset d = GenerateNormal(500, {10, 20}, rng);
  EXPECT_EQ(d.num_rows(), 500u);
  EXPECT_EQ(d.num_attributes(), 2u);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(GenerateNormalTest, ConcentratedAroundMiddle) {
  Rng rng(2);
  const size_t card = 51;
  Dataset d = GenerateNormal(5000, {card}, rng);  // variance 3 -> sigma 1.73
  const double mid = (card - 1) / 2.0;
  uint64_t near_mid = 0;
  for (RowId r = 0; r < d.num_rows(); ++r) {
    if (std::fabs(d.Value(r, 0) - mid) <= 4.0) ++near_mid;
  }
  // With sigma ~1.73, ±4 covers > 97% of the mass.
  EXPECT_GT(near_mid, d.num_rows() * 9 / 10);
}

TEST(GenerateNormalTest, Deterministic) {
  Rng r1(9), r2(9);
  Dataset a = GenerateNormal(100, {10, 10}, r1);
  Dataset b = GenerateNormal(100, {10, 10}, r2);
  for (RowId r = 0; r < 100; ++r) {
    EXPECT_EQ(a.Value(r, 0), b.Value(r, 0));
    EXPECT_EQ(a.Value(r, 1), b.Value(r, 1));
  }
}

TEST(GenerateUniformTest, CoversDomain) {
  Rng rng(3);
  Dataset d = GenerateUniform(2000, {4}, rng);
  std::vector<int> counts(4, 0);
  for (RowId r = 0; r < d.num_rows(); ++r) ++counts[d.Value(r, 0)];
  for (int c : counts) EXPECT_GT(c, 300);  // each ~500
}

TEST(GenerateZipfTest, SkewsTowardFirstValues) {
  Rng rng(4);
  Dataset d = GenerateZipf(5000, {20}, 1.2, rng);
  uint64_t first_two = 0;
  for (RowId r = 0; r < d.num_rows(); ++r) first_two += (d.Value(r, 0) < 2);
  EXPECT_GT(first_two, d.num_rows() / 3);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(CensusIncomeLikeTest, MatchesPaperProfile) {
  Rng rng(5);
  Dataset d = GenerateCensusIncomeLike(1000, rng);
  const auto cards = CensusIncomeCardinalities();
  ASSERT_EQ(d.num_attributes(), cards.size());
  for (AttrId a = 0; a < cards.size(); ++a) {
    EXPECT_EQ(d.schema().attribute(a).cardinality, cards[a]);
  }
  EXPECT_TRUE(d.Validate().ok());
  // Paper: density 6.9% at 199,523 rows.
  const double full_density =
      static_cast<double>(kCensusIncomeFullRows) / d.schema().SpaceSize();
  EXPECT_NEAR(full_density, 0.069, 0.02);
}

TEST(ForestCoverLikeTest, MatchesPaperProfile) {
  Rng rng(6);
  Dataset d = GenerateForestCoverLike(1000, rng);
  const auto cards = ForestCoverCardinalities();
  ASSERT_EQ(d.num_attributes(), cards.size());
  EXPECT_TRUE(d.Validate().ok());
  // Paper: very low density, 0.04% at 581,012 rows.
  const double full_density =
      static_cast<double>(kForestCoverFullRows) / d.schema().SpaceSize();
  EXPECT_LT(full_density, 0.002);
}

TEST(ForestCoverLikeTest, BinaryAttributesSkewed) {
  Rng rng(7);
  Dataset d = GenerateForestCoverLike(5000, rng);
  // Attribute 2 is binary with ~10% ones.
  uint64_t ones = 0;
  for (RowId r = 0; r < d.num_rows(); ++r) ones += d.Value(r, 2);
  EXPECT_GT(ones, 200u);
  EXPECT_LT(ones, 1000u);
}

TEST(GenerateMixedTest, SchemaShape) {
  Rng rng(8);
  Dataset d = GenerateMixed(300, {5, 5}, 2, 8, rng);
  ASSERT_EQ(d.num_attributes(), 4u);
  EXPECT_TRUE(d.has_numerics());
  EXPECT_EQ(d.schema().NumNumeric(), 2u);
  EXPECT_EQ(d.schema().attribute(2).cardinality, 8u);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    EXPECT_GE(d.Numeric(r, 2), 0.0);
    EXPECT_LE(d.Numeric(r, 2), 100.0);
  }
  EXPECT_TRUE(d.Validate().ok());
}

TEST(SampleQueriesTest, UniformQueryInDomain) {
  Rng rng(9);
  Dataset d = GenerateUniform(10, {3, 7}, rng);
  for (int i = 0; i < 50; ++i) {
    Object q = SampleUniformQuery(d, rng);
    EXPECT_LT(q.values[0], 3u);
    EXPECT_LT(q.values[1], 7u);
  }
}

TEST(SampleQueriesTest, RowQueryMatchesSomeRow) {
  Rng rng(10);
  Dataset d = GenerateUniform(20, {3, 3}, rng);
  Object q = SampleRowQuery(d, rng);
  bool found = false;
  for (RowId r = 0; r < d.num_rows() && !found; ++r) {
    found = (d.GetObject(r) == q);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace nmrs
