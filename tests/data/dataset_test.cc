#include "data/dataset.h"

#include <gtest/gtest.h>

namespace nmrs {
namespace {

TEST(DatasetTest, AppendAndAccessCategorical) {
  Dataset d(Schema::Categorical({3, 4}));
  d.AppendCategoricalRow({1, 2});
  d.AppendCategoricalRow({0, 3});
  ASSERT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.Value(0, 0), 1u);
  EXPECT_EQ(d.Value(0, 1), 2u);
  EXPECT_EQ(d.Value(1, 1), 3u);
  EXPECT_FALSE(d.has_numerics());
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DatasetTest, GetObjectRoundTrip) {
  Dataset d(Schema::Categorical({3, 4}));
  d.AppendCategoricalRow({2, 1});
  Object o = d.GetObject(0);
  EXPECT_EQ(o.values, (std::vector<ValueId>{2, 1}));
  EXPECT_EQ(o.numerics.size(), 2u);
}

TEST(DatasetTest, ValidateCatchesOutOfDomain) {
  Dataset d(Schema::Categorical({2, 2}));
  d.AppendCategoricalRow({1, 1});
  EXPECT_TRUE(d.Validate().ok());
  d.AppendCategoricalRow({2, 0});  // 2 >= cardinality 2
  EXPECT_TRUE(d.Validate().IsCorruption());
}

TEST(DatasetTest, PermutedReordersRows) {
  Dataset d(Schema::Categorical({5}));
  for (ValueId v = 0; v < 5; ++v) d.AppendCategoricalRow({v});
  Dataset p = d.Permuted({4, 3, 2, 1, 0});
  for (RowId r = 0; r < 5; ++r) {
    EXPECT_EQ(p.Value(r, 0), 4 - r);
  }
}

TEST(DatasetTest, DensityMatchesDefinition) {
  Dataset d(Schema::Categorical({10, 10}));
  for (int i = 0; i < 25; ++i) d.AppendCategoricalRow({0, 0});
  EXPECT_DOUBLE_EQ(d.Density(), 0.25);
}

Schema MixedSchema() {
  Schema s = Schema::Categorical({3});
  AttributeInfo num;
  num.name = "price";
  num.is_numeric = true;
  num.cardinality = 4;
  num.range = {0.0, 100.0};
  s.AddAttribute(num);
  return s;
}

TEST(DatasetTest, NumericRowsGetBucketIds) {
  Dataset d(MixedSchema());
  d.AppendRow({2, 0}, {0.0, 10.0});   // bucket 0 (0-25)
  d.AppendRow({1, 0}, {0.0, 60.0});   // bucket 2 (50-75)
  d.AppendRow({0, 0}, {0.0, 100.0});  // clamped to last bucket
  ASSERT_TRUE(d.has_numerics());
  EXPECT_EQ(d.Value(0, 1), 0u);
  EXPECT_EQ(d.Value(1, 1), 2u);
  EXPECT_EQ(d.Value(2, 1), 3u);
  EXPECT_DOUBLE_EQ(d.Numeric(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(d.Numeric(1, 1), 60.0);
}

TEST(DatasetTest, MakeObjectBucketsNumerics) {
  Dataset d(MixedSchema());
  Object q = d.MakeObject({1, 0}, {0.0, 30.0});
  EXPECT_EQ(q.values[0], 1u);
  EXPECT_EQ(q.values[1], 1u);  // 30 -> bucket 1 of [0,100]/4
  EXPECT_DOUBLE_EQ(q.numerics[1], 30.0);
}

TEST(DatasetTest, PermutedPreservesNumerics) {
  Dataset d(MixedSchema());
  d.AppendRow({0, 0}, {0.0, 5.0});
  d.AppendRow({1, 0}, {0.0, 95.0});
  Dataset p = d.Permuted({1, 0});
  EXPECT_DOUBLE_EQ(p.Numeric(0, 1), 95.0);
  EXPECT_DOUBLE_EQ(p.Numeric(1, 1), 5.0);
}

TEST(RowBatchTest, AppendAndAccess) {
  RowBatch b(2, /*has_numerics=*/false);
  const ValueId row0[] = {1, 2};
  const ValueId row1[] = {3, 4};
  b.Append(10, row0, nullptr);
  b.Append(20, row1, nullptr);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.id(0), 10u);
  EXPECT_EQ(b.value(1, 0), 3u);
  EXPECT_EQ(b.row_values(1)[1], 4u);
  EXPECT_EQ(b.row_numerics(0), nullptr);
}

TEST(RowBatchTest, NumericsStored) {
  RowBatch b(2, /*has_numerics=*/true);
  const ValueId row[] = {1, 0};
  const double nums[] = {0.0, 42.5};
  b.Append(5, row, nums);
  EXPECT_DOUBLE_EQ(b.numeric(0, 1), 42.5);
  Object o = b.ToObject(0);
  EXPECT_DOUBLE_EQ(o.numerics[1], 42.5);
  EXPECT_EQ(o.values[0], 1u);
}

TEST(RowBatchTest, ClearResets) {
  RowBatch b(1, false);
  const ValueId row[] = {0};
  b.Append(1, row, nullptr);
  b.Clear();
  EXPECT_EQ(b.size(), 0u);
}

TEST(ObjectTest, ToStringAndEquality) {
  Object a({1, 2, 3});
  Object b({1, 2, 3});
  Object c({1, 2, 4});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "[1,2,3]");
}

}  // namespace
}  // namespace nmrs
