#include "data/stored_dataset.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace nmrs {
namespace {

TEST(RowCodecTest, RowsPerPageCategorical) {
  Schema s = Schema::Categorical({10, 10, 10});
  // Row = 8 (id) + 3*4 = 20 bytes; page = 128 -> (128-4)/20 = 6 rows.
  RowCodec codec(s, 128);
  EXPECT_EQ(codec.row_bytes(), 20u);
  EXPECT_EQ(codec.rows_per_page(), 6u);
  EXPECT_EQ(codec.PagesFor(0), 0u);
  EXPECT_EQ(codec.PagesFor(6), 1u);
  EXPECT_EQ(codec.PagesFor(7), 2u);
}

TEST(RowCodecTest, NumericsWidenRows) {
  Schema s = Schema::Categorical({10});
  AttributeInfo num;
  num.is_numeric = true;
  num.cardinality = 4;
  num.range = {0, 1};
  s.AddAttribute(num);
  RowCodec codec(s, 128);
  // 8 + 2*4 + 2*8 = 32 bytes.
  EXPECT_EQ(codec.row_bytes(), 32u);
  EXPECT_TRUE(codec.has_numerics());
}

TEST(StoredDatasetTest, RoundTripsRows) {
  SimulatedDisk disk(128);
  Dataset data(Schema::Categorical({7, 7}));
  for (ValueId v = 0; v < 7; ++v) data.AppendCategoricalRow({v, 6 - v});

  auto stored = StoredDataset::Create(&disk, data, "t");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->num_rows(), 7u);
  EXPECT_GE(stored->num_pages(), 1u);

  RowBatch all(2, false);
  ASSERT_TRUE(stored->ReadAll(&all).ok());
  ASSERT_EQ(all.size(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(all.id(i), i);
    EXPECT_EQ(all.value(i, 0), i);
    EXPECT_EQ(all.value(i, 1), 6 - i);
  }
}

TEST(StoredDatasetTest, MultiPageLayout) {
  SimulatedDisk disk(128);  // 6 rows/page for 2-attr rows (8+8=16B, (128-4)/16=7)
  Dataset data(Schema::Categorical({100, 100}));
  for (ValueId v = 0; v < 50; ++v) data.AppendCategoricalRow({v, v});
  auto stored = StoredDataset::Create(&disk, data, "t");
  ASSERT_TRUE(stored.ok());
  const uint64_t rpp = stored->codec().rows_per_page();
  EXPECT_EQ(stored->num_pages(), (50 + rpp - 1) / rpp);

  // Page-by-page decode sees all rows exactly once, in order.
  RowBatch batch(2, false);
  uint64_t next = 0;
  for (PageId p = 0; p < stored->num_pages(); ++p) {
    batch.Clear();
    ASSERT_TRUE(stored->ReadPage(p, &batch).ok());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch.id(i), next);
      ++next;
    }
  }
  EXPECT_EQ(next, 50u);
}

TEST(StoredDatasetTest, PreservesNumerics) {
  SimulatedDisk disk(256);
  Schema s = Schema::Categorical({5});
  AttributeInfo num;
  num.is_numeric = true;
  num.cardinality = 4;
  num.range = {0.0, 10.0};
  s.AddAttribute(num);
  Dataset data(s);
  data.AppendRow({3, 0}, {0.0, 7.25});
  data.AppendRow({1, 0}, {0.0, 2.5});

  auto stored = StoredDataset::Create(&disk, data, "t");
  ASSERT_TRUE(stored.ok());
  RowBatch all(2, true);
  ASSERT_TRUE(stored->ReadAll(&all).ok());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all.numeric(0, 1), 7.25);
  EXPECT_DOUBLE_EQ(all.numeric(1, 1), 2.5);
  EXPECT_EQ(all.value(0, 1), 2u);  // bucket of 7.25 in [0,10]/4
}

TEST(StoredDatasetTest, EmptyDataset) {
  SimulatedDisk disk(128);
  Dataset data(Schema::Categorical({3}));
  auto stored = StoredDataset::Create(&disk, data, "empty");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->num_rows(), 0u);
  EXPECT_EQ(stored->num_pages(), 0u);
  RowBatch all(1, false);
  ASSERT_TRUE(stored->ReadAll(&all).ok());
  EXPECT_EQ(all.size(), 0u);
}

TEST(RowWriterTest, CustomRowIdsPreserved) {
  SimulatedDisk disk(128);
  Schema s = Schema::Categorical({4});
  FileId f = disk.CreateFile("w");
  RowWriter writer(&disk, f, s);
  const ValueId v0[] = {1};
  const ValueId v1[] = {3};
  ASSERT_TRUE(writer.Add(1000, v0, nullptr).ok());
  ASSERT_TRUE(writer.Add(7, v1, nullptr).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.rows_written(), 2u);

  StoredDataset stored(&disk, f, s, 2);
  RowBatch all(1, false);
  ASSERT_TRUE(stored.ReadAll(&all).ok());
  EXPECT_EQ(all.id(0), 1000u);
  EXPECT_EQ(all.id(1), 7u);
}

TEST(RowWriterTest, FinishFlushesPartialPage) {
  SimulatedDisk disk(128);
  Schema s = Schema::Categorical({4});
  FileId f = disk.CreateFile("w");
  RowWriter writer(&disk, f, s);
  const ValueId v[] = {2};
  ASSERT_TRUE(writer.Add(0, v, nullptr).ok());
  EXPECT_EQ(disk.NumPages(f), 0u);  // buffered
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(disk.NumPages(f), 1u);
}

TEST(StoredDatasetTest, SequentialScanIoAccounting) {
  SimulatedDisk disk(128);
  Rng rng(3);
  Dataset data = GenerateUniform(200, {10, 10}, rng);
  auto stored = StoredDataset::Create(&disk, data, "t");
  ASSERT_TRUE(stored.ok());
  disk.ResetStats();
  disk.InvalidateArmPosition();
  RowBatch all(2, false);
  ASSERT_TRUE(stored->ReadAll(&all).ok());
  EXPECT_EQ(disk.stats().TotalReads(), stored->num_pages());
  EXPECT_EQ(disk.stats().rand_reads, 1u);  // only the first page
}

}  // namespace
}  // namespace nmrs
