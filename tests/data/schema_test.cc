#include "data/schema.h"

#include <gtest/gtest.h>

namespace nmrs {
namespace {

TEST(SchemaTest, CategoricalFactory) {
  Schema s = Schema::Categorical({3, 2, 5});
  ASSERT_EQ(s.num_attributes(), 3u);
  EXPECT_EQ(s.attribute(0).cardinality, 3u);
  EXPECT_EQ(s.attribute(2).cardinality, 5u);
  EXPECT_FALSE(s.attribute(0).is_numeric);
  EXPECT_EQ(s.NumNumeric(), 0u);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SchemaTest, SpaceSizeAndDensity) {
  Schema s = Schema::Categorical({3, 2, 5});
  EXPECT_DOUBLE_EQ(s.SpaceSize(), 30.0);
}

TEST(SchemaTest, NumericAttributes) {
  Schema s;
  AttributeInfo num;
  num.name = "price";
  num.is_numeric = true;
  num.cardinality = 10;  // buckets
  num.range = {0.0, 100.0};
  s.AddAttribute(num);
  EXPECT_EQ(s.NumNumeric(), 1u);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsZeroCardinality) {
  Schema s;
  AttributeInfo a;
  a.cardinality = 0;
  s.AddAttribute(a);
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsInvertedRange) {
  Schema s;
  AttributeInfo a;
  a.is_numeric = true;
  a.cardinality = 4;
  a.range = {5.0, 1.0};
  s.AddAttribute(a);
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(SchemaTest, Equality) {
  Schema a = Schema::Categorical({2, 3});
  Schema b = Schema::Categorical({2, 3});
  Schema c = Schema::Categorical({3, 2});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace nmrs
