#include "data/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "data/generators.h"

namespace nmrs {
namespace {

TEST(DatasetCsvTest, CategoricalRoundTrip) {
  Rng rng(1);
  Dataset original = GenerateUniform(50, {5, 9, 3}, rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteDatasetCsv(original, ss).ok());

  auto loaded = ReadDatasetCsv(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_rows(), original.num_rows());
  ASSERT_TRUE(loaded->schema() == original.schema());
  for (RowId r = 0; r < original.num_rows(); ++r) {
    for (AttrId a = 0; a < 3; ++a) {
      EXPECT_EQ(loaded->Value(r, a), original.Value(r, a));
    }
  }
}

TEST(DatasetCsvTest, MixedNumericRoundTrip) {
  Rng rng(2);
  Dataset original = GenerateMixed(30, {4}, 2, 8, rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteDatasetCsv(original, ss).ok());
  auto loaded = ReadDatasetCsv(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_rows(), 30u);
  for (RowId r = 0; r < 30; ++r) {
    EXPECT_EQ(loaded->Value(r, 0), original.Value(r, 0));
    EXPECT_NEAR(loaded->Numeric(r, 1), original.Numeric(r, 1), 1e-4);
    EXPECT_NEAR(loaded->Numeric(r, 2), original.Numeric(r, 2), 1e-4);
    // Bucket ids re-derived consistently.
    EXPECT_EQ(loaded->Value(r, 1), original.Value(r, 1));
  }
}

TEST(DatasetCsvTest, RejectsMissingHeader) {
  std::stringstream ss("");
  EXPECT_TRUE(ReadDatasetCsv(ss).status().IsInvalidArgument());
}

TEST(DatasetCsvTest, RejectsBadKind) {
  std::stringstream ss("a:weird:3\n1\n");
  EXPECT_TRUE(ReadDatasetCsv(ss).status().IsInvalidArgument());
}

TEST(DatasetCsvTest, RejectsOutOfDomainValue) {
  std::stringstream ss("a:cat:3\n5\n");
  EXPECT_TRUE(ReadDatasetCsv(ss).status().IsInvalidArgument());
}

TEST(DatasetCsvTest, RejectsWrongCellCount) {
  std::stringstream ss("a:cat:3,b:cat:3\n1\n");
  EXPECT_TRUE(ReadDatasetCsv(ss).status().IsInvalidArgument());
}

TEST(DatasetCsvTest, RejectsMalformedNumericHeader) {
  std::stringstream ss("a:num:4\n1.0\n");
  EXPECT_TRUE(ReadDatasetCsv(ss).status().IsInvalidArgument());
}

TEST(DatasetCsvTest, SkipsBlankLines) {
  std::stringstream ss("a:cat:3\n1\n\n2\n");
  auto loaded = ReadDatasetCsv(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 2u);
}

TEST(MatrixCsvTest, RoundTrip) {
  Rng rng(3);
  DissimilarityMatrix original = MakeRandomMatrix(7, rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteMatrixCsv(original, ss).ok());
  auto loaded = ReadMatrixCsv(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->cardinality(), 7u);
  for (ValueId a = 0; a < 7; ++a) {
    for (ValueId b = 0; b < 7; ++b) {
      EXPECT_NEAR(loaded->Dist(a, b), original.Dist(a, b), 1e-6);
    }
  }
}

TEST(MatrixCsvTest, TransposedCopyConsistentAfterLoad) {
  std::stringstream ss("2\n0,0.7\n0.3,0\n");
  auto m = ReadMatrixCsv(ss);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Dist(0, 1), 0.7);
  EXPECT_DOUBLE_EQ(m->Dist(1, 0), 0.3);
  EXPECT_DOUBLE_EQ(m->ColumnTo(1)[0], 0.7);
  EXPECT_DOUBLE_EQ(m->ColumnTo(0)[1], 0.3);
}

TEST(MatrixCsvTest, RejectsTruncated) {
  std::stringstream ss("3\n0,1,2\n");
  EXPECT_TRUE(ReadMatrixCsv(ss).status().IsInvalidArgument());
}

TEST(MatrixCsvTest, RejectsBadCell) {
  std::stringstream ss("2\n0,abc\n0.3,0\n");
  EXPECT_TRUE(ReadMatrixCsv(ss).status().IsInvalidArgument());
}

TEST(CsvFileTest, FileRoundTrip) {
  Rng rng(4);
  Dataset original = GenerateUniform(20, {3, 3}, rng);
  const std::string path = ::testing::TempDir() + "/nmrs_csv_test.csv";
  ASSERT_TRUE(WriteDatasetCsvFile(original, path).ok());
  auto loaded = ReadDatasetCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 20u);
  EXPECT_TRUE(ReadDatasetCsvFile("/nonexistent/x.csv").status().IsNotFound());
}

}  // namespace
}  // namespace nmrs
