#include "data/bucketizer.h"

#include <gtest/gtest.h>

namespace nmrs {
namespace {

TEST(BucketizerTest, EqualWidthBuckets) {
  Bucketizer b({0.0, 100.0}, 4);
  EXPECT_EQ(b.BucketOf(0.0), 0u);
  EXPECT_EQ(b.BucketOf(24.9), 0u);
  EXPECT_EQ(b.BucketOf(25.1), 1u);
  EXPECT_EQ(b.BucketOf(75.1), 3u);
  EXPECT_EQ(b.BucketOf(100.0), 3u);
}

TEST(BucketizerTest, ClampsOutOfRange) {
  Bucketizer b({0.0, 10.0}, 5);
  EXPECT_EQ(b.BucketOf(-100.0), 0u);
  EXPECT_EQ(b.BucketOf(1e9), 4u);
}

TEST(BucketizerTest, IntervalsTileTheRange) {
  Bucketizer b({-5.0, 15.0}, 8);
  double prev_hi = -5.0;
  for (ValueId i = 0; i < 8; ++i) {
    Interval iv = b.BucketInterval(i);
    EXPECT_DOUBLE_EQ(iv.lo, prev_hi);
    EXPECT_GT(iv.hi, iv.lo);
    prev_hi = iv.hi;
  }
  EXPECT_DOUBLE_EQ(prev_hi, 15.0);
}

TEST(BucketizerTest, ValueLiesInItsBucketInterval) {
  Bucketizer b({0.0, 1.0}, 7);
  for (double x = 0.0; x <= 1.0; x += 0.01) {
    const Interval iv = b.BucketInterval(b.BucketOf(x));
    EXPECT_TRUE(iv.Contains(x)) << "x=" << x;
  }
}

TEST(BucketizerTest, SingleBucket) {
  Bucketizer b({3.0, 9.0}, 1);
  EXPECT_EQ(b.BucketOf(3.0), 0u);
  EXPECT_EQ(b.BucketOf(9.0), 0u);
  Interval iv = b.BucketInterval(0);
  EXPECT_DOUBLE_EQ(iv.lo, 3.0);
  EXPECT_DOUBLE_EQ(iv.hi, 9.0);
}

TEST(BucketizerTest, DegenerateRange) {
  Bucketizer b({5.0, 5.0}, 3);
  EXPECT_EQ(b.BucketOf(5.0), 0u);
  EXPECT_EQ(b.BucketOf(4.0), 0u);
  EXPECT_EQ(b.BucketOf(6.0), 2u);
}

}  // namespace
}  // namespace nmrs
