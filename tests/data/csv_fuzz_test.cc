// Robustness: the CSV readers must never crash on malformed input — every
// garbage stream yields a Status error or a valid dataset, deterministically.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "data/csv.h"

namespace nmrs {
namespace {

std::string RandomGarbage(Rng& rng, size_t max_len) {
  // Biased toward CSV-ish bytes so parsing gets past the first token
  // often enough to reach deeper code paths.
  static constexpr char kAlphabet[] =
      "0123456789,:.\n\ncatnum-eE+ \tabcxyz";
  const size_t len = rng.Uniform(max_len);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng.Bernoulli(0.05)) {
      s.push_back(static_cast<char>(rng.Uniform(256)));
    } else {
      s.push_back(kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)]);
    }
  }
  return s;
}

TEST(CsvFuzzTest, DatasetReaderNeverCrashes) {
  Rng rng(0xF00D);
  int parsed_ok = 0;
  for (int i = 0; i < 3000; ++i) {
    std::stringstream ss(RandomGarbage(rng, 200));
    auto result = ReadDatasetCsv(ss);
    parsed_ok += result.ok();
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());  // never a corrupt dataset
    }
  }
  // The point is no crash; parses may or may not succeed.
  SUCCEED() << parsed_ok << " of 3000 garbage inputs parsed";
}

TEST(CsvFuzzTest, MatrixReaderNeverCrashes) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 3000; ++i) {
    std::stringstream ss(RandomGarbage(rng, 150));
    auto result = ReadMatrixCsv(ss);
    if (result.ok()) {
      EXPECT_GT(result->cardinality(), 0u);
    }
  }
}

TEST(CsvFuzzTest, StructuredMutationsOfValidInput) {
  // Take a valid file and corrupt single characters — the reader must
  // return an error or a still-valid dataset, never crash or corrupt.
  const std::string valid = "a:cat:4,b:num:3:0:10\n1,5.5\n3,0.25\n2,9.9\n";
  Rng rng(0xCAFE);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    std::stringstream ss(mutated);
    auto result = ReadDatasetCsv(ss);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
}

}  // namespace
}  // namespace nmrs
