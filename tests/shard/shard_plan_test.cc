#include <algorithm>
#include <set>
#include <vector>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "shard/shard_plan.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

// Partitioner edge cases: assignments must be total and deterministic, and
// Partition must survive empty shards, one-shard degeneracy, more shards
// than rows, and duplicate keys straddling a range boundary.

RowBatch MakeRows(const Schema& schema,
                  const std::vector<std::vector<ValueId>>& rows) {
  RowBatch batch(schema.num_attributes(), schema.NumNumeric() > 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    batch.Append(static_cast<RowId>(i), rows[i].data(), nullptr);
  }
  return batch;
}

void ExpectTotal(const std::vector<int>& shard_of, int num_shards,
                 size_t num_rows) {
  ASSERT_EQ(shard_of.size(), num_rows);
  for (int s : shard_of) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, num_shards);
  }
}

TEST(AssignRowsToShardsTest, TotalAndDeterministicBothPartitioners) {
  RandomInstance inst(7, 500, {5, 9, 4});
  const Schema& schema = inst.data.schema();
  RowBatch rows(schema.num_attributes(), false);
  for (RowId i = 0; i < inst.data.num_rows(); ++i) {
    rows.Append(i, inst.data.RowValues(i), nullptr);
  }
  for (ShardBy by : {ShardBy::kZOrderRange, ShardBy::kHash}) {
    ShardPlanOptions opts;
    opts.num_shards = 3;
    opts.shard_by = by;
    const std::vector<int> a = AssignRowsToShards(rows, schema, opts);
    ExpectTotal(a, 3, rows.size());
    const std::vector<int> b = AssignRowsToShards(rows, schema, opts);
    EXPECT_EQ(a, b) << ShardByName(by);
    // Every shard gets work on a 500-row instance.
    std::set<int> used(a.begin(), a.end());
    EXPECT_EQ(used.size(), 3u) << ShardByName(by);
  }
}

TEST(AssignRowsToShardsTest, OneShardAndEmptyInputDegenerate) {
  const Schema schema = Schema::Categorical({4, 4});
  RowBatch rows = MakeRows(schema, {{0, 1}, {3, 2}, {1, 1}});
  ShardPlanOptions opts;  // num_shards = 1
  EXPECT_EQ(AssignRowsToShards(rows, schema, opts),
            (std::vector<int>{0, 0, 0}));

  RowBatch empty(schema.num_attributes(), false);
  opts.num_shards = 4;
  EXPECT_TRUE(AssignRowsToShards(empty, schema, opts).empty());
}

TEST(AssignRowsToShardsTest, ZOrderDuplicateKeysSplitByStoredPosition) {
  // Every row has the same key, so every Z-key ties: the rank cut must
  // still spread rows across shards (ties broken by stored position) and
  // keep each shard a contiguous run of the stored order.
  const Schema schema = Schema::Categorical({3, 3});
  RowBatch rows = MakeRows(
      schema, {{1, 2}, {1, 2}, {1, 2}, {1, 2}, {1, 2}, {1, 2}, {1, 2}});
  ShardPlanOptions opts;
  opts.num_shards = 3;
  opts.shard_by = ShardBy::kZOrderRange;
  const std::vector<int> shard_of = AssignRowsToShards(rows, schema, opts);
  ExpectTotal(shard_of, 3, 7);
  // rank * 3 / 7 over ranks 0..6 = {0,0,0,1,1,2,2}, in stored order.
  EXPECT_EQ(shard_of, (std::vector<int>{0, 0, 0, 1, 1, 2, 2}));
}

TEST(AssignRowsToShardsTest, MoreShardsThanRowsLeavesTrailingShardsEmpty) {
  const Schema schema = Schema::Categorical({8});
  RowBatch rows = MakeRows(schema, {{0}, {7}});
  ShardPlanOptions opts;
  opts.num_shards = 5;
  const std::vector<int> shard_of = AssignRowsToShards(rows, schema, opts);
  ExpectTotal(shard_of, 5, 2);
  // Two distinct keys, five range cuts: the rows land on different shards.
  EXPECT_NE(shard_of[0], shard_of[1]);
}

TEST(ShardedDatasetTest, PartitionIsTotalOrderPreservingAndHandlesEmpty) {
  RandomInstance inst(11, 300, {4, 5, 6});
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, inst.data, Algorithm::kSRS);
  ASSERT_TRUE(prep.ok()) << prep.status();

  // Skew the plan so some shard very likely ends up empty: more shards
  // than distinct z-tiles at the coarsest resolution.
  ShardPlanOptions opts;
  opts.num_shards = 7;
  opts.tiles_per_dim = 2;
  auto sharded = ShardedDataset::Partition(*prep, opts);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_EQ(sharded->num_shards(), 7);

  // Base stored position of every row id (SRS prep reorders rows, so the
  // stored sequence is not ascending-id).
  std::vector<size_t> base_pos(prep->stored.num_rows());
  {
    RowBatch page(inst.data.schema().num_attributes(), false);
    PagedReader reader(prep->stored.disk(), nullptr, {});
    size_t pos = 0;
    for (PageId p = 0; p < prep->stored.num_pages(); ++p) {
      page.Clear();
      ASSERT_TRUE(prep->stored.ReadPageVia(&reader, p, &page).ok());
      for (size_t i = 0; i < page.size(); ++i) base_pos[page.id(i)] = pos++;
    }
  }

  // Totality: shard row counts sum to the base count; every shard file is
  // readable even when empty; each shard keeps its rows in base stored
  // order (the SRS/TRS invariant: a subsequence of sorted data is sorted).
  uint64_t total = 0;
  for (int s = 0; s < 7; ++s) {
    total += sharded->shard_rows(s);
    RowBatch out(inst.data.schema().num_attributes(), false);
    RowBatch page(inst.data.schema().num_attributes(), false);
    PagedReader reader(sharded->shard(s).disk(), nullptr, {});
    for (PageId p = 0; p < sharded->shard(s).num_pages(); ++p) {
      page.Clear();
      ASSERT_TRUE(sharded->shard(s).ReadPageVia(&reader, p, &page).ok());
      for (size_t i = 0; i < page.size(); ++i) {
        out.Append(page.id(i), page.row_values(i), nullptr);
      }
    }
    for (size_t i = 1; i < out.size(); ++i) {
      EXPECT_LT(base_pos[out.id(i - 1)], base_pos[out.id(i)]) << "shard " << s;
    }
  }
  EXPECT_EQ(total, prep->stored.num_rows());
  EXPECT_GT(sharded->partition_io().Total(), 0u);

  // Determinism: partitioning the same base again yields the same split.
  auto again = ShardedDataset::Partition(*prep, opts);
  ASSERT_TRUE(again.ok()) << again.status();
  for (int s = 0; s < 7; ++s) {
    EXPECT_EQ(sharded->shard_rows(s), again->shard_rows(s)) << "shard " << s;
  }
}

TEST(ShardedDatasetTest, SingleShardAliasesBaseFile) {
  RandomInstance inst(13, 100, {4, 4});
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, inst.data, Algorithm::kBRS);
  ASSERT_TRUE(prep.ok()) << prep.status();
  const uint64_t files_before = disk.next_file_id();

  auto sharded = ShardedDataset::Partition(*prep, ShardPlanOptions{});
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_EQ(sharded->num_shards(), 1);
  EXPECT_EQ(sharded->shard(0).file(), prep->stored.file());
  EXPECT_EQ(disk.next_file_id(), files_before);  // no new files
  EXPECT_EQ(sharded->partition_io().Total(), 0u);
  EXPECT_EQ(sharded->shard_rows(0), prep->stored.num_rows());
}

TEST(ShardedDatasetTest, RejectsNonPositiveShardCount) {
  RandomInstance inst(17, 20, {3, 3});
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, inst.data, Algorithm::kBRS);
  ASSERT_TRUE(prep.ok()) << prep.status();
  ShardPlanOptions opts;
  opts.num_shards = 0;
  EXPECT_EQ(ShardedDataset::Partition(*prep, opts).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace nmrs
