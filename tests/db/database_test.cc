#include "db/database.h"

#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/pipeline.h"
#include "sim/matrix_overlay.h"
#include "exec/query_engine.h"
#include "exec/sharded_engine.h"
#include "gtest/gtest.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using ::nmrs::testing::RandomInstance;

constexpr Algorithm kAllAlgos[] = {Algorithm::kNaive,   Algorithm::kBRS,
                                   Algorithm::kSRS,     Algorithm::kTRS,
                                   Algorithm::kTileSRS, Algorithm::kTileTRS};

// Mirrors a database's mutation history as the logical row list a full
// rebuild would see: base keys in id order, then live inserts in insert
// order, deletions removed in place.
class ReferenceRows {
 public:
  explicit ReferenceRows(const Dataset& base) {
    for (RowId r = 0; r < base.num_rows(); ++r) {
      rows_.push_back({r, std::vector<ValueId>(
                              base.RowValues(r),
                              base.RowValues(r) + base.schema().num_attributes())});
    }
  }

  void Insert(uint64_t key, std::vector<ValueId> values) {
    rows_.push_back({key, std::move(values)});
  }

  void Delete(uint64_t key) {
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (rows_[i].key == key) {
        rows_.erase(rows_.begin() + i);
        return;
      }
    }
    FAIL() << "reference delete of unknown key " << key;
  }

  uint64_t KeyAt(size_t i) const { return rows_[i].key; }
  size_t size() const { return rows_.size(); }

  std::vector<uint64_t> LiveKeys() const {
    std::vector<uint64_t> keys;
    keys.reserve(rows_.size());
    for (const Row& row : rows_) keys.push_back(row.key);
    return keys;
  }

  // Rebuilds the merged dataset from scratch, as Open() would see it.
  Dataset Rebuild(const Schema& schema) const {
    Dataset merged(schema);
    for (const Row& row : rows_) merged.AppendRow(row.values, {});
    return merged;
  }

 private:
  struct Row {
    uint64_t key;
    std::vector<ValueId> values;
  };
  std::vector<Row> rows_;
};

// Applies a deterministic workload of inserts (random rows, occasionally
// duplicating an existing row to exercise sort ties) and deletes (of base
// and of freshly inserted keys) to both the database and the reference.
void ApplyWorkload(Database* db, ReferenceRows* ref, uint64_t seed,
                   int num_mutations) {
  Rng rng(seed);
  const Schema& schema = db->schema();
  std::vector<uint64_t> live = ref->LiveKeys();
  for (int i = 0; i < num_mutations; ++i) {
    const bool del = !live.empty() && rng.Uniform(3) == 0;
    if (del) {
      const size_t pick = rng.Uniform(live.size());
      const uint64_t key = live[pick];
      ASSERT_TRUE(db->Delete(key).ok());
      ref->Delete(key);
      live.erase(live.begin() + pick);
    } else {
      std::vector<ValueId> values(schema.num_attributes());
      if (!live.empty() && rng.Uniform(4) == 0) {
        // Duplicate a live row's values: exercises full-tie ordering.
        const size_t src = rng.Uniform(ref->size());
        const Dataset snapshot = ref->Rebuild(schema);
        std::memcpy(values.data(), snapshot.RowValues(src),
                    sizeof(ValueId) * schema.num_attributes());
      } else {
        for (AttrId a = 0; a < schema.num_attributes(); ++a) {
          values[a] = static_cast<ValueId>(
              rng.Uniform(schema.attribute(a).cardinality));
        }
      }
      auto key = db->Insert(values);
      ASSERT_TRUE(key.ok()) << key.status().ToString();
      ref->Insert(*key, values);
      live.push_back(*key);
    }
  }
}

std::vector<Object> MakeQueries(const RandomInstance& inst, uint64_t seed,
                                int count) {
  Rng rng(seed);
  std::vector<Object> queries;
  const Schema& schema = inst.data.schema();
  for (int q = 0; q < count; ++q) {
    std::vector<ValueId> values(schema.num_attributes());
    for (AttrId a = 0; a < schema.num_attributes(); ++a) {
      values[a] =
          static_cast<ValueId>(rng.Uniform(schema.attribute(a).cardinality));
    }
    queries.push_back(inst.data.MakeObject(values, {}));
  }
  return queries;
}

// Byte-for-byte comparison of two stored datasets' page images.
void ExpectSameBytes(const StoredDataset& got, const StoredDataset& want) {
  ASSERT_EQ(got.num_rows(), want.num_rows());
  ASSERT_EQ(got.num_pages(), want.num_pages());
  for (PageId p = 0; p < want.num_pages(); ++p) {
    const Page* gp = got.disk()->PeekPage(got.file(), p);
    const Page* wp = want.disk()->PeekPage(want.file(), p);
    ASSERT_NE(gp, nullptr);
    ASSERT_NE(wp, nullptr);
    ASSERT_EQ(gp->size(), wp->size());
    ASSERT_EQ(std::memcmp(gp->data(), wp->data(), gp->size()), 0)
        << "page " << p << " differs";
  }
}

// `compare_io` must be false when the engine composition makes IO counts
// interleaving-dependent (shared buffer pool + multiple workers): rows and
// pruning counters stay deterministic, the cache hit/miss split does not.
void ExpectSameResults(const std::vector<ReverseSkylineResult>& got,
                       const std::vector<ReverseSkylineResult>& want,
                       bool compare_io = true) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t q = 0; q < want.size(); ++q) {
    EXPECT_EQ(got[q].rows, want[q].rows) << "query " << q;
    EXPECT_EQ(got[q].stats.checks, want[q].stats.checks) << "query " << q;
    EXPECT_EQ(got[q].stats.pair_tests, want[q].stats.pair_tests)
        << "query " << q;
    if (compare_io) {
      EXPECT_EQ(got[q].stats.io.TotalReads(), want[q].stats.io.TotalReads())
          << "query " << q;
    }
  }
}

// The core contract: a snapshot of base+delta is bit-identical — page
// bytes, result rows, counters — to re-preparing the merged dataset from
// scratch, for every algorithm.
TEST(DatabaseTest, SnapshotBitIdenticalToRebuildAllAlgorithms) {
  for (Algorithm algo : kAllAlgos) {
    SCOPED_TRACE(static_cast<int>(algo));
    RandomInstance inst(91, 200, {8, 6, 4});
    DatabaseOptions opts;
    opts.algo = algo;
    auto db = Database::Open(inst.data, inst.space, opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();

    ReferenceRows ref(inst.data);
    ApplyWorkload(db->get(), &ref, 7 + static_cast<int>(algo), 80);

    auto snap = (*db)->Snapshot();
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    ASSERT_EQ(snap->num_rows(), ref.size());
    for (RowId r = 0; r < snap->num_rows(); ++r) {
      ASSERT_EQ(snap->KeyOf(r), ref.KeyAt(r)) << "row " << r;
    }

    // Full rebuild with the pinned attribute order.
    const Dataset merged = ref.Rebuild(inst.data.schema());
    SimulatedDisk disk;
    auto prep = PrepareDataset(&disk, merged, algo, (*db)->options().prepare,
                               "rebuild");
    ASSERT_TRUE(prep.ok()) << prep.status().ToString();
    ExpectSameBytes(snap->prepared().stored, prep->stored);

    const std::vector<Object> queries =
        MakeQueries(inst, 1000 + static_cast<int>(algo), 8);
    QueryEngine engine(*prep, inst.space, algo, EngineOptions{});
    auto want = engine.RunBatch(queries);
    ASSERT_TRUE(want.ok());
    auto got = snap->RunBatch(queries);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameResults(got->results(), want->results);
    // Key translation matches the reference row list.
    for (size_t q = 0; q < queries.size(); ++q) {
      const std::vector<RowId>& rows = got->results()[q].rows;
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(got->keys[q][i], ref.KeyAt(rows[i]));
      }
    }
  }
}

// Same contract composed with the executor vocabulary: workers, cache,
// shared scans, CRC32C page seals, kernels.
TEST(DatabaseTest, SnapshotBitIdenticalUnderEngineComposition) {
  RandomInstance inst(92, 300, {10, 8, 6, 4});
  DatabaseOptions opts;
  opts.algo = Algorithm::kTRS;
  opts.prepare.checksum_pages = true;
  opts.engine.num_workers = 4;
  opts.engine.cache_pages = 32;
  opts.engine.shared_scan = true;
  opts.engine.rs.resilience.checksum_pages = true;
  auto db = Database::Open(inst.data, inst.space, opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  ReferenceRows ref(inst.data);
  ApplyWorkload(db->get(), &ref, 17, 120);

  auto snap = (*db)->Snapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  const Dataset merged = ref.Rebuild(inst.data.schema());
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, merged, opts.algo, (*db)->options().prepare,
                             "rebuild");
  ASSERT_TRUE(prep.ok());
  ExpectSameBytes(snap->prepared().stored, prep->stored);

  const std::vector<Object> queries = MakeQueries(inst, 2000, 12);
  QueryEngine engine(*prep, inst.space, opts.algo, opts.engine);
  auto want = engine.RunBatch(queries);
  ASSERT_TRUE(want.ok());
  auto got = snap->RunBatch(queries);
  ASSERT_TRUE(got.ok());
  ExpectSameResults(got->results(), want->results, /*compare_io=*/false);
}

// Sharded path: the snapshot partitions and answers exactly like a
// sharded engine over the rebuilt dataset.
TEST(DatabaseTest, ShardedSnapshotMatchesRebuild) {
  RandomInstance inst(93, 240, {8, 8, 4});
  DatabaseOptions opts;
  opts.algo = Algorithm::kSRS;
  opts.num_shards = 3;
  opts.engine.num_workers = 2;
  auto db = Database::Open(inst.data, inst.space, opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  ReferenceRows ref(inst.data);
  ApplyWorkload(db->get(), &ref, 23, 90);

  auto snap = (*db)->Snapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  const Dataset merged = ref.Rebuild(inst.data.schema());
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, merged, opts.algo, (*db)->options().prepare,
                             "rebuild");
  ASSERT_TRUE(prep.ok());
  ShardPlanOptions plan = opts.shard_plan;
  plan.num_shards = opts.num_shards;
  auto sharded = ShardedDataset::Partition(*prep, plan);
  ASSERT_TRUE(sharded.ok());
  ShardedQueryEngine engine(*sharded, inst.space, opts.algo, opts.engine);

  const std::vector<Object> queries = MakeQueries(inst, 3000, 10);
  auto want = engine.RunBatch(queries);
  ASSERT_TRUE(want.ok());
  auto got = snap->RunBatch(queries);
  ASSERT_TRUE(got.ok());
  ASSERT_FALSE(got->plain.has_value());
  ExpectSameResults(got->results(), want->results);
}

// A pinned snapshot is immutable: mutations and compactions after the pin
// never change what it returns.
TEST(DatabaseTest, SnapshotIsolation) {
  RandomInstance inst(94, 150, {6, 6, 6});
  DatabaseOptions opts;
  opts.algo = Algorithm::kBRS;
  auto db = Database::Open(inst.data, inst.space, opts);
  ASSERT_TRUE(db.ok());

  ReferenceRows ref(inst.data);
  ApplyWorkload(db->get(), &ref, 31, 40);

  auto snap = (*db)->Snapshot();
  ASSERT_TRUE(snap.ok());
  const uint64_t rows_at_pin = snap->num_rows();
  const std::vector<Object> queries = MakeQueries(inst, 4000, 5);
  auto before = snap->RunBatch(queries);
  ASSERT_TRUE(before.ok());

  // Mutate heavily, compact, mutate again.
  ApplyWorkload(db->get(), &ref, 37, 60);
  ASSERT_TRUE((*db)->Compact().ok());
  ApplyWorkload(db->get(), &ref, 41, 20);

  EXPECT_EQ(snap->num_rows(), rows_at_pin);
  auto after = snap->RunBatch(queries);
  ASSERT_TRUE(after.ok());
  ExpectSameResults(after->results(), before->results());

  // A fresh snapshot sees the new state.
  auto now = (*db)->Snapshot();
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->num_rows(), ref.size());
}

// Compaction folds the delta into a new generation without changing any
// observable bytes or answers, and resets the delta.
TEST(DatabaseTest, CompactionIsTransparent) {
  for (Algorithm algo : {Algorithm::kTRS, Algorithm::kTileTRS}) {
    SCOPED_TRACE(static_cast<int>(algo));
    RandomInstance inst(95, 180, {8, 5, 9});
    DatabaseOptions opts;
    opts.algo = algo;
    auto db = Database::Open(inst.data, inst.space, opts);
    ASSERT_TRUE(db.ok());

    ReferenceRows ref(inst.data);
    ApplyWorkload(db->get(), &ref, 51, 70);

    auto before = (*db)->Snapshot();
    ASSERT_TRUE(before.ok());
    EXPECT_EQ((*db)->generation(), 0u);
    ASSERT_TRUE((*db)->Compact().ok());
    EXPECT_EQ((*db)->generation(), 1u);
    EXPECT_EQ((*db)->delta_version().total(), 0u);
    EXPECT_EQ((*db)->num_rows(), ref.size());
    EXPECT_EQ((*db)->num_base_rows(), ref.size());

    auto after = (*db)->Snapshot();
    ASSERT_TRUE(after.ok());
    ExpectSameBytes(after->prepared().stored, before->prepared().stored);
    for (RowId r = 0; r < after->num_rows(); ++r) {
      ASSERT_EQ(after->KeyOf(r), before->KeyOf(r));
    }

    // Mutations after compaction still merge bit-identically.
    ApplyWorkload(db->get(), &ref, 57, 40);
    auto snap = (*db)->Snapshot();
    ASSERT_TRUE(snap.ok());
    const Dataset merged = ref.Rebuild(inst.data.schema());
    SimulatedDisk disk;
    auto prep = PrepareDataset(&disk, merged, algo,
                               (*db)->options().prepare, "rebuild");
    ASSERT_TRUE(prep.ok());
    ExpectSameBytes(snap->prepared().stored, prep->stored);

    // An idempotent second compaction with an empty delta is a no-op.
    const DbStats mid = (*db)->stats();
    auto drained = (*db)->Snapshot();
    ASSERT_TRUE((*db)->Compact().ok());
    ASSERT_TRUE((*db)->Compact().ok());
    EXPECT_EQ((*db)->stats().compactions, mid.compactions + 1);
  }
}

// Overlay batches through the front door match the overlay engine over the
// rebuilt dataset.
TEST(DatabaseTest, OverlayBatchMatchesRebuild) {
  RandomInstance inst(96, 160, {7, 5, 6});
  DatabaseOptions opts;
  opts.algo = Algorithm::kBRS;
  auto db = Database::Open(inst.data, inst.space, opts);
  ASSERT_TRUE(db.ok());

  ReferenceRows ref(inst.data);
  ApplyWorkload(db->get(), &ref, 61, 50);

  // Two tenants, each perturbing one matrix entry.
  MatrixOverlay o1(inst.space);
  ASSERT_TRUE(o1.Set(0, 1, 2, 0.77).ok());
  MatrixOverlay o2(inst.space);
  ASSERT_TRUE(o2.Set(1, 0, 3, 0.11).ok());
  const std::vector<const MatrixOverlay*> overlays = {&o1, &o2};

  const std::vector<Object> queries = MakeQueries(inst, 5000, 6);
  auto got = (*db)->RunOverlayBatch(queries, overlays);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  const Dataset merged = ref.Rebuild(inst.data.schema());
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, merged, opts.algo,
                             (*db)->options().prepare, "rebuild");
  ASSERT_TRUE(prep.ok());
  QueryEngine engine(*prep, inst.space, opts.algo, opts.engine);
  auto want = engine.RunOverlayBatch(queries, overlays);
  ASSERT_TRUE(want.ok());

  ASSERT_EQ(got->results().size(), want->results.size());
  for (size_t q = 0; q < want->results.size(); ++q) {
    ASSERT_EQ(got->results()[q].size(), want->results[q].size());
    for (size_t u = 0; u < want->results[q].size(); ++u) {
      EXPECT_EQ(got->results()[q][u].rows, want->results[q][u].rows)
          << "query " << q << " user " << u;
    }
  }
}

// Stable-key semantics of the mutation API.
TEST(DatabaseTest, KeyAndValidationSemantics) {
  RandomInstance inst(97, 20, {4, 4});
  auto db = Database::Open(inst.data, inst.space, DatabaseOptions{});
  ASSERT_TRUE(db.ok());

  EXPECT_EQ((*db)->num_rows(), 20u);
  EXPECT_TRUE((*db)->Contains(0));
  EXPECT_FALSE((*db)->Contains(20));

  auto k1 = (*db)->Insert({1, 2});
  ASSERT_TRUE(k1.ok());
  EXPECT_EQ(*k1, 20u);
  auto k2 = (*db)->Insert({3, 3});
  ASSERT_TRUE(k2.ok());
  EXPECT_EQ(*k2, 21u);
  EXPECT_EQ((*db)->num_rows(), 22u);

  EXPECT_TRUE((*db)->Delete(*k1).ok());
  EXPECT_FALSE((*db)->Contains(*k1));
  // Deleted keys are never reused and cannot be deleted twice.
  EXPECT_EQ((*db)->Delete(*k1).code(), StatusCode::kNotFound);
  EXPECT_EQ((*db)->Delete(999).code(), StatusCode::kNotFound);
  auto k3 = (*db)->Insert({0, 0});
  ASSERT_TRUE(k3.ok());
  EXPECT_EQ(*k3, 22u);

  // Wrong arity and out-of-domain values are rejected, not checked-crashed.
  EXPECT_EQ((*db)->Insert({1}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*db)->Insert({4, 0}).status().code(),
            StatusCode::kInvalidArgument);

  const DbStats stats = (*db)->stats();
  EXPECT_EQ(stats.inserts, 3u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.wal_records, 4u);
}

// Snapshot materialization happens once per epoch; unchanged versions are
// served from the cache, and an empty delta pins the generation for free.
TEST(DatabaseTest, SnapshotEpochCaching) {
  RandomInstance inst(98, 60, {5, 5});
  auto db = Database::Open(inst.data, inst.space, DatabaseOptions{});
  ASSERT_TRUE(db.ok());

  auto s0 = (*db)->Snapshot();
  auto s0b = (*db)->Snapshot();
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s0b.ok());
  EXPECT_EQ(&s0->prepared(), &s0b->prepared());  // same state, zero cost
  EXPECT_EQ((*db)->stats().snapshots_built, 0u);

  ASSERT_TRUE((*db)->Insert({1, 1}).ok());
  auto s1 = (*db)->Snapshot();
  auto s1b = (*db)->Snapshot();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s1b.ok());
  EXPECT_EQ(&s1->prepared(), &s1b->prepared());
  EXPECT_NE(&s1->prepared(), &s0->prepared());
  EXPECT_EQ((*db)->stats().snapshots_built, 1u);
  EXPECT_GE((*db)->stats().snapshots_reused, 2u);

  ASSERT_TRUE((*db)->Delete(0).ok());
  auto s2 = (*db)->Snapshot();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ((*db)->stats().snapshots_built, 2u);
  EXPECT_EQ(s2->num_rows(), 60u);
}

// Delta back-pressure: the configured mutation budget surfaces as
// kResourceExhausted, and compaction clears it.
TEST(DatabaseTest, DeltaBackPressure) {
  RandomInstance inst(99, 30, {4, 4});
  DatabaseOptions opts;
  opts.max_delta_mutations = 4;
  auto db = Database::Open(inst.data, inst.space, opts);
  ASSERT_TRUE(db.ok());

  ASSERT_TRUE((*db)->Insert({0, 1}).ok());
  ASSERT_TRUE((*db)->Insert({1, 0}).ok());
  ASSERT_TRUE((*db)->Delete(0).ok());
  ASSERT_TRUE((*db)->Delete(1).ok());
  EXPECT_EQ((*db)->Insert({2, 2}).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ((*db)->Delete(2).code(), StatusCode::kResourceExhausted);

  ASSERT_TRUE((*db)->Compact().ok());
  EXPECT_TRUE((*db)->Insert({2, 2}).ok());
}

// Crash recovery: replaying the WAL image of a mutated database yields a
// database whose snapshot is bit-identical, whatever the crash point.
TEST(DatabaseTest, RecoverReplaysWalBitIdentically) {
  RandomInstance inst(100, 120, {6, 4, 5});
  DatabaseOptions opts;
  opts.algo = Algorithm::kSRS;
  auto db = Database::Open(inst.data, inst.space, opts);
  ASSERT_TRUE(db.ok());

  ReferenceRows ref(inst.data);
  ApplyWorkload(db->get(), &ref, 71, 60);
  // A compaction in the history must not change the replay result.
  ASSERT_TRUE((*db)->Compact().ok());
  ApplyWorkload(db->get(), &ref, 73, 20);

  auto recovered = Database::Recover(inst.data, inst.space, (*db)->wal_disk(),
                                     (*db)->wal_file(), opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->torn_tail);
  EXPECT_EQ(recovered->records_replayed, (*db)->stats().wal_records);
  EXPECT_EQ(recovered->db->num_rows(), (*db)->num_rows());

  auto want = (*db)->Snapshot();
  auto got = recovered->db->Snapshot();
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->num_rows(), want->num_rows());
  for (RowId r = 0; r < want->num_rows(); ++r) {
    ASSERT_EQ(got->KeyOf(r), want->KeyOf(r)) << "row " << r;
  }
  ExpectSameBytes(got->prepared().stored, want->prepared().stored);
}

// A torn WAL tail (crash mid-append) recovers the durable prefix.
TEST(DatabaseTest, RecoverDetectsTornTail) {
  RandomInstance inst(101, 40, {5, 5});
  auto db = Database::Open(inst.data, inst.space, DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*db)->Insert({static_cast<ValueId>(i % 5),
                               static_cast<ValueId>((i * 3) % 5)})
                    .ok());
  }

  // Image the WAL and tear its tail page.
  const SimulatedDisk& src = (*db)->wal_disk();
  SimulatedDisk image(src.page_size());
  const FileId file = image.CreateFile("torn.wal");
  const uint64_t pages = src.NumPages((*db)->wal_file());
  for (PageId p = 0; p < pages; ++p) {
    ASSERT_TRUE(image.AppendPage(file, *src.PeekPage((*db)->wal_file(), p)).ok());
  }
  Page torn = *image.PeekPage(file, pages - 1);
  torn[5] ^= 0xff;
  ASSERT_TRUE(image.WritePage(file, pages - 1, torn).ok());

  auto recovered =
      Database::Recover(inst.data, inst.space, image, file, DatabaseOptions{});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->torn_tail);
  EXPECT_LT(recovered->records_replayed, 50u);
  EXPECT_EQ(recovered->db->num_rows(), 40u + recovered->records_replayed);
}

// MakeObject derives numeric buckets like dataset rows do, clamping
// out-of-range numerics into the edge buckets (documented insert behavior).
TEST(DatabaseTest, NumericQueriesClampLikeDatasetRows) {
  // One categorical + one numeric attribute.
  Schema schema = Schema::Categorical({4});
  schema.AddAttribute(AttributeInfo{"price", 8, true, Interval{0.0, 100.0}});
  Dataset base(schema);
  Rng rng(55);
  for (int i = 0; i < 64; ++i) {
    base.AppendRow({static_cast<ValueId>(rng.Uniform(4)), 0},
                   {0.0, rng.UniformDouble(0.0, 100.0)});
  }
  SimilaritySpace space;
  Rng mrng(56);
  space.AddCategorical(MakeRandomMatrix(4, mrng));
  space.AddNumeric(NumericDissimilarity{1.0});

  auto db = Database::Open(base, space, DatabaseOptions{});
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto key = (*db)->Insert({2, 0}, {0.0, 250.0});  // clamps to top bucket
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  const Object hi = (*db)->MakeObject({1, 0}, {0.0, 1e9});
  const Object top = (*db)->MakeObject({1, 0}, {0.0, 100.0});
  EXPECT_EQ(hi.values[1], top.values[1]);

  auto res = (*db)->Query(hi);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
}

}  // namespace
}  // namespace nmrs
