#include <gtest/gtest.h>

#include "core/block_rs.h"
#include "core/naive.h"
#include "core/pipeline.h"
#include "core/skyline.h"
#include "core/trs.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RunningExample;

// Page size chosen so exactly one 3-attribute row (8B id + 12B values +
// 4B header) fits per page, matching the paper's walkthrough where "a
// hypothetical page size can hold only one object".
constexpr size_t kOneObjectPage = 28;

// The paper's walkthrough uses the physical attribute order (OS,
// Processor, DB), not the ascending-cardinality heuristic.
PrepareOptions PaperOrder() {
  PrepareOptions opts;
  opts.attr_order = {0, 1, 2};
  return opts;
}

RSOptions ThreePageMemory() {
  RSOptions opts;
  opts.memory.pages = 3;
  opts.attr_order = {0, 1, 2};
  return opts;
}

TEST(RunningExampleTest, OracleFindsO3AndO6) {
  RunningExample ex;
  EXPECT_EQ(ReverseSkylineOracle(ex.dataset, ex.space, ex.query),
            (std::vector<RowId>{2, 5}));
}

TEST(RunningExampleTest, NaiveMatchesPaper) {
  RunningExample ex;
  SimulatedDisk disk(kOneObjectPage);
  auto prepared = PrepareDataset(&disk, ex.dataset, Algorithm::kNaive,
                                 PaperOrder());
  ASSERT_TRUE(prepared.ok());
  auto result = RunReverseSkyline(*prepared, ex.space, ex.query,
                                  Algorithm::kNaive, ThreePageMemory());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows, (std::vector<RowId>{2, 5}));
}

TEST(RunningExampleTest, BrsPhaseBehaviourMatchesTable2) {
  RunningExample ex;
  SimulatedDisk disk(kOneObjectPage);
  auto prepared =
      PrepareDataset(&disk, ex.dataset, Algorithm::kBRS, PaperOrder());
  ASSERT_TRUE(prepared.ok());
  ASSERT_EQ(prepared->stored.num_pages(), 6u);  // one object per page

  auto result = RunReverseSkyline(*prepared, ex.space, ex.query,
                                  Algorithm::kBRS, ThreePageMemory());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows, (std::vector<RowId>{2, 5}));
  // Table 2: intra-batch pruning removes O2 (batch 1) and O5 (batch 2),
  // leaving R = {O1, O3, O4, O6}; with 2 pages per second-phase batch the
  // second phase needs 2 database scans.
  EXPECT_EQ(result->stats.phase1_batches, 2u);
  EXPECT_EQ(result->stats.phase1_survivors, 4u);
  EXPECT_EQ(result->stats.phase2_batches, 2u);
}

TEST(RunningExampleTest, SrsPhaseBehaviourMatchesTable2) {
  RunningExample ex;
  SimulatedDisk disk(kOneObjectPage);
  auto prepared =
      PrepareDataset(&disk, ex.dataset, Algorithm::kSRS, PaperOrder());
  ASSERT_TRUE(prepared.ok());

  // Sorted order must be the paper's {O1, O4, O6, O2, O5, O3}.
  RowBatch all(3, false);
  ASSERT_TRUE(prepared->stored.ReadAll(&all).ok());
  std::vector<RowId> ids;
  for (size_t i = 0; i < all.size(); ++i) ids.push_back(all.id(i));
  EXPECT_EQ(ids, (std::vector<RowId>{0, 3, 5, 1, 4, 2}));

  auto result = RunReverseSkyline(*prepared, ex.space, ex.query,
                                  Algorithm::kSRS, ThreePageMemory());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows, (std::vector<RowId>{2, 5}));
  // Table 2: sorting lets phase 1 prune {O1, O4} and {O2, O5}; R =
  // {O6, O3} fits one second-phase batch -> one scan fewer than BRS.
  EXPECT_EQ(result->stats.phase1_survivors, 2u);
  EXPECT_EQ(result->stats.phase2_batches, 1u);
}

TEST(RunningExampleTest, TrsMatchesResultAndBeatsSrsOnChecks) {
  RunningExample ex;
  SimulatedDisk disk(kOneObjectPage);
  auto prepared =
      PrepareDataset(&disk, ex.dataset, Algorithm::kTRS, PaperOrder());
  ASSERT_TRUE(prepared.ok());

  auto trs = RunReverseSkyline(*prepared, ex.space, ex.query,
                               Algorithm::kTRS, ThreePageMemory());
  ASSERT_TRUE(trs.ok()) << trs.status();
  EXPECT_EQ(trs->rows, (std::vector<RowId>{2, 5}));

  // Table 3's headline is that group-level reasoning makes TRS spend
  // fewer attribute-level checks than SRS (30 vs 38 in the paper's
  // walkthrough batching). On 6 objects the totals are batching noise —
  // our TRS fits all six objects into one tree batch — so the direction
  // is asserted on a scaled-up instance of the same schema and Figure-1
  // distance functions, where batching artifacts wash out.
  Rng rng(1);
  Dataset big(ex.dataset.schema());
  for (int i = 0; i < 600; ++i) {
    big.AppendCategoricalRow({static_cast<ValueId>(rng.Uniform(3)),
                              static_cast<ValueId>(rng.Uniform(2)),
                              static_cast<ValueId>(rng.Uniform(3))});
  }
  SimulatedDisk big_disk(kOneObjectPage);
  auto big_prep = PrepareDataset(&big_disk, big, Algorithm::kTRS,
                                 PaperOrder());
  ASSERT_TRUE(big_prep.ok());
  RSOptions opts = ThreePageMemory();
  opts.memory.pages = 60;  // 10% of the dataset, as in the paper's sweeps
  auto big_srs = RunReverseSkyline(*big_prep, ex.space, ex.query,
                                   Algorithm::kSRS, opts);
  auto big_trs = RunReverseSkyline(*big_prep, ex.space, ex.query,
                                   Algorithm::kTRS, opts);
  ASSERT_TRUE(big_srs.ok() && big_trs.ok());
  EXPECT_EQ(big_srs->rows, big_trs->rows);
  EXPECT_LT(big_trs->stats.checks, big_srs->stats.checks);
}

TEST(RunningExampleTest, TileVariantsAgree) {
  RunningExample ex;
  SimulatedDisk disk(kOneObjectPage);
  for (Algorithm algo : {Algorithm::kTileSRS, Algorithm::kTileTRS}) {
    auto prepared = PrepareDataset(&disk, ex.dataset, algo, PaperOrder());
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, ex.space, ex.query, algo,
                                    ThreePageMemory());
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo) << ": "
                             << result.status();
    EXPECT_EQ(result->rows, (std::vector<RowId>{2, 5}))
        << AlgorithmName(algo);
  }
}

TEST(RunningExampleTest, AllAlgorithmsAcrossMemoryBudgets) {
  RunningExample ex;
  for (uint64_t mem : {2u, 3u, 4u, 6u, 100u}) {
    SimulatedDisk disk(kOneObjectPage);
    for (Algorithm algo :
         {Algorithm::kNaive, Algorithm::kBRS, Algorithm::kSRS,
          Algorithm::kTRS, Algorithm::kTileSRS, Algorithm::kTileTRS}) {
      auto prepared = PrepareDataset(&disk, ex.dataset, algo, PaperOrder());
      ASSERT_TRUE(prepared.ok());
      RSOptions opts = ThreePageMemory();
      opts.memory.pages = mem;
      auto result =
          RunReverseSkyline(*prepared, ex.space, ex.query, algo, opts);
      ASSERT_TRUE(result.ok()) << AlgorithmName(algo) << " mem=" << mem;
      EXPECT_EQ(result->rows, (std::vector<RowId>{2, 5}))
          << AlgorithmName(algo) << " mem=" << mem;
    }
  }
}

TEST(RunningExampleTest, QueriesBeyondThePaperStayConsistent) {
  RunningExample ex;
  Rng rng(3);
  SimulatedDisk disk(kOneObjectPage);
  for (int i = 0; i < 20; ++i) {
    Object q = SampleUniformQuery(ex.dataset, rng);
    auto expected = ReverseSkylineOracle(ex.dataset, ex.space, q);
    for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS,
                           Algorithm::kTRS}) {
      auto prepared = PrepareDataset(&disk, ex.dataset, algo, PaperOrder());
      ASSERT_TRUE(prepared.ok());
      auto result = RunReverseSkyline(*prepared, ex.space, q, algo,
                                      ThreePageMemory());
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->rows, expected)
          << AlgorithmName(algo) << " query " << q.ToString();
    }
  }
}

}  // namespace
}  // namespace nmrs
