// Randomized end-to-end equivalence sweep for RSOptions::use_kernels: on
// every wired algorithm (Naive, BRS, SRS, TRS, bichromatic block), over
// categorical and mixed-numeric schemas, attribute subsets, asymmetric
// matrices, page caching, and intra-query parallelism, the kernel path
// must return bit-identical rows — and, where the contract promises it
// (docs/KERNELS.md), bit-identical check accounting — to the scalar path,
// on both dispatch implementations.
#include <gtest/gtest.h>

#include <vector>

#include "core/bichromatic.h"
#include "core/dominance_kernel.h"
#include "core/pipeline.h"
#include "core/skyline.h"
#include "data/generators.h"
#include "storage/buffer_pool.h"

namespace nmrs {
namespace {

struct SweepInstance {
  Dataset data;
  SimilaritySpace space;
  Object query;
  std::vector<AttrId> selected;
  bool mixed = false;

  explicit SweepInstance(Rng& master) : data(Schema::Categorical({1})) {
    const size_t mc = 1 + master.Uniform(4);
    std::vector<size_t> cards(mc);
    for (auto& c : cards) c = 2 + master.Uniform(30);
    const size_t num_numeric =
        master.Bernoulli(0.35) ? 1 + master.Uniform(2) : 0;
    mixed = num_numeric > 0;
    const uint64_t n = 30 + master.Uniform(350);
    const bool asym = master.Bernoulli(0.5);
    Rng drng = master.Fork();
    Rng srng = master.Fork();
    Rng qrng = master.Fork();
    data = mixed ? GenerateMixed(n, cards, num_numeric, 4, drng)
                 : (master.Bernoulli(0.5) ? GenerateNormal(n, cards, drng)
                                          : GenerateUniform(n, cards, drng));
    for (size_t c : cards) {
      space.AddCategorical(MakeRandomMatrix(c, srng, {.symmetric = !asym}));
    }
    for (size_t i = 0; i < num_numeric; ++i) {
      space.AddNumeric(NumericDissimilarity());
    }
    query = master.Bernoulli(0.5) ? SampleUniformQuery(data, qrng)
                                  : SampleRowQuery(data, qrng);
    if (master.Bernoulli(0.3)) {
      const size_t m = data.schema().num_attributes();
      for (AttrId a = 0; a < m; ++a) {
        if (master.Bernoulli(0.6)) selected.push_back(a);
      }
    }
  }
};

void ExpectSameRows(const ReverseSkylineResult& scalar,
                    const ReverseSkylineResult& kernel,
                    const char* label) {
  EXPECT_EQ(scalar.rows, kernel.rows) << label;
}

// The exact-accounting contract of Naive/BRS/SRS/bichromatic-block.
void ExpectSameCounts(const QueryStats& scalar, const QueryStats& kernel,
                      const char* label) {
  EXPECT_EQ(scalar.checks, kernel.checks) << label;
  EXPECT_EQ(scalar.pair_tests, kernel.pair_tests) << label;
  EXPECT_EQ(scalar.phase1_checks, kernel.phase1_checks) << label;
  EXPECT_EQ(scalar.phase2_checks, kernel.phase2_checks) << label;
  EXPECT_EQ(scalar.phase1_survivors, kernel.phase1_survivors) << label;
  EXPECT_EQ(scalar.io, kernel.io) << label;
  EXPECT_EQ(scalar.kernel_checks, 0u) << label;
}

class KernelDeterminismSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelDeterminismSweep, WiredAlgorithmsAreBitIdentical) {
  Rng master(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    SweepInstance inst(master);
    auto expected =
        ReverseSkylineOracle(inst.data, inst.space, inst.query,
                             inst.selected);

    SimulatedDisk disk(128 + master.Uniform(900));
    RSOptions base;
    base.memory.pages = 2 + master.Uniform(8);
    base.selected_attrs = inst.selected;
    base.num_threads = master.Bernoulli(0.4) ? 3 : 1;
    const bool cache = master.Bernoulli(0.4);

    for (Algorithm algo : {Algorithm::kNaive, Algorithm::kBRS,
                           Algorithm::kSRS, Algorithm::kTRS}) {
      auto prep = PrepareDataset(&disk, inst.data, algo, {});
      ASSERT_TRUE(prep.ok());
      // One pool per run: a shared pool would carry warm pages from the
      // scalar run into the kernel run and skew the IO comparison.
      BufferPool scalar_pool(&disk,
                             BufferPoolOptions::FromBudget(MemoryBudget{8}));
      BufferPool kernel_pool(&disk,
                             BufferPoolOptions::FromBudget(MemoryBudget{8}));
      RSOptions scalar_opts = base;
      RSOptions kernel_opts = base;
      kernel_opts.use_kernels = true;
      if (cache) {
        scalar_opts.cache_pages = true;
        scalar_opts.buffer_pool = &scalar_pool;
        kernel_opts.cache_pages = true;
        kernel_opts.buffer_pool = &kernel_pool;
      }
      auto scalar = RunReverseSkyline(*prep, inst.space, inst.query, algo,
                                      scalar_opts);
      auto kernel = RunReverseSkyline(*prep, inst.space, inst.query, algo,
                                      kernel_opts);
      ASSERT_TRUE(scalar.ok() && kernel.ok()) << AlgorithmName(algo);
      const std::string label =
          std::string(AlgorithmName(algo)) + " trial " +
          std::to_string(trial) + " seed " + std::to_string(GetParam());
      EXPECT_EQ(scalar->rows, expected) << label;
      ExpectSameRows(*scalar, *kernel, label.c_str());
      if (algo == Algorithm::kTRS) {
        // TRS phase 2 is always scalar; phase 1 swaps tree-group checks
        // for kernel_checks only on the fast path (all attributes, all
        // categorical), where pair tests (one per candidate leaf) and the
        // spilled survivors still match exactly.
        EXPECT_EQ(scalar->stats.phase2_checks, kernel->stats.phase2_checks)
            << label;
        EXPECT_EQ(scalar->stats.pair_tests, kernel->stats.pair_tests)
            << label;
        EXPECT_EQ(scalar->stats.phase1_survivors,
                  kernel->stats.phase1_survivors)
            << label;
        EXPECT_EQ(scalar->stats.io, kernel->stats.io)
            << label;
        const bool fast_path =
            !inst.mixed &&
            (inst.selected.empty() ||
             inst.selected.size() == inst.data.schema().num_attributes());
        if (fast_path) {
          EXPECT_GT(kernel->stats.kernel_checks, 0u) << label;
        } else {
          // Off the fast path the flag is inert: everything matches.
          ExpectSameCounts(scalar->stats, kernel->stats, label.c_str());
        }
      } else {
        ExpectSameCounts(scalar->stats, kernel->stats, label.c_str());
        if (kernel->stats.pair_tests > 0) {
          EXPECT_GT(kernel->stats.kernel_checks, 0u) << label;
        }
      }
    }
  }
}

// The two lane implementations (AVX2 and portable scalar) must agree on
// everything, including the kernel_checks instrumentation.
TEST_P(KernelDeterminismSweep, DispatchPathsAgree) {
  Rng master(GetParam() ^ 0x5eed);
  for (int trial = 0; trial < 4; ++trial) {
    SweepInstance inst(master);
    SimulatedDisk disk(512);
    RSOptions opts;
    opts.memory.pages = 4;
    opts.selected_attrs = inst.selected;
    opts.use_kernels = true;
    for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS,
                           Algorithm::kTRS}) {
      auto prep = PrepareDataset(&disk, inst.data, algo, {});
      ASSERT_TRUE(prep.ok());
      auto native =
          RunReverseSkyline(*prep, inst.space, inst.query, algo, opts);
      ForceScalarKernelDispatchForTest(true);
      auto forced =
          RunReverseSkyline(*prep, inst.space, inst.query, algo, opts);
      ForceScalarKernelDispatchForTest(false);
      ASSERT_TRUE(native.ok() && forced.ok()) << AlgorithmName(algo);
      EXPECT_EQ(native->rows, forced->rows) << AlgorithmName(algo);
      EXPECT_EQ(native->stats.checks, forced->stats.checks)
          << AlgorithmName(algo);
      EXPECT_EQ(native->stats.pair_tests, forced->stats.pair_tests)
          << AlgorithmName(algo);
      EXPECT_EQ(native->stats.kernel_checks, forced->stats.kernel_checks)
          << AlgorithmName(algo);
    }
  }
}

TEST_P(KernelDeterminismSweep, BichromaticBlockIsBitIdentical) {
  Rng master(GetParam() + 17);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t mc = 1 + master.Uniform(3);
    std::vector<size_t> cards(mc);
    for (auto& c : cards) c = 2 + master.Uniform(20);
    Rng crng = master.Fork();
    Rng prng = master.Fork();
    Rng srng = master.Fork();
    Rng qrng = master.Fork();
    Dataset candidates =
        GenerateNormal(20 + master.Uniform(150), cards, crng);
    Dataset competitors =
        GenerateUniform(20 + master.Uniform(150), cards, prng);
    SimilaritySpace space;
    for (size_t c : cards) {
      space.AddCategorical(MakeRandomMatrix(c, srng, {.symmetric = false}));
    }
    Object q = SampleUniformQuery(candidates, qrng);

    SimulatedDisk disk(256);
    auto stored_c = StoredDataset::Create(&disk, candidates, "bi-cand");
    auto stored_p = StoredDataset::Create(&disk, competitors, "bi-comp");
    ASSERT_TRUE(stored_c.ok() && stored_p.ok());
    RSOptions opts;
    opts.memory.pages = 2 + master.Uniform(4);
    auto scalar = BichromaticBlockRS(*stored_c, *stored_p, space, q, opts);
    opts.use_kernels = true;
    auto kernel = BichromaticBlockRS(*stored_c, *stored_p, space, q, opts);
    ASSERT_TRUE(scalar.ok() && kernel.ok());
    EXPECT_EQ(scalar->rows, kernel->rows) << "trial " << trial;
    EXPECT_EQ(scalar->stats.checks, kernel->stats.checks)
        << "trial " << trial;
    EXPECT_EQ(scalar->stats.pair_tests, kernel->stats.pair_tests)
        << "trial " << trial;
    if (kernel->stats.pair_tests > 0) {
      EXPECT_GT(kernel->stats.kernel_checks, 0u) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDeterminismSweep,
                         ::testing::Values(20260807, 4242, 991));

}  // namespace
}  // namespace nmrs
