// Randomized end-to-end equivalence sweep for RSOptions::use_kernels: on
// every wired algorithm (Naive, BRS, SRS, TRS, bichromatic block), over
// categorical and mixed-numeric schemas, attribute subsets, asymmetric
// matrices, page caching, intra-query parallelism, replica failover, and
// the whole adaptive-promotion range (RSOptions::kernel_promote_rows from
// "always block" to "never promote"), the kernel path must return
// bit-identical rows — and, where the contract promises it
// (docs/KERNELS.md), bit-identical check accounting — to the scalar path,
// on both dispatch implementations.
#include <gtest/gtest.h>

#include <vector>

#include "core/bichromatic.h"
#include "core/dominance_kernel.h"
#include "core/pipeline.h"
#include "core/skyline.h"
#include "data/generators.h"
#include "sim/matrix_overlay.h"
#include "storage/buffer_pool.h"
#include "storage/disk_view.h"
#include "storage/fault_injection.h"

namespace nmrs {
namespace {

// The promotion thresholds every equivalence sweep runs: always-block
// (pre-adaptive), promote-after-2, the default-ish 16, and never-promote
// (the pure scalar-probe regime).
constexpr uint32_t kPromoteSweep[] = {0u, 2u, 16u, 1u << 30};

// The adaptive telemetry invariants at the sweep's extremes; anything in
// between mixes the regimes and only the bit-identity checks apply.
void ExpectAdaptiveInvariants(const QueryStats& kernel, uint32_t promote,
                              bool trs_hybrid, const std::string& label) {
  if (promote == 0) {
    // Immediate promotion: no scalar probing.
    EXPECT_EQ(kernel.kernel_scalar_rows, 0u) << label;
    if (trs_hybrid) {
      // TRS promotion escapes to the pruned tree traversal, not to block
      // evaluation: with promote 0 every candidate goes straight to the
      // traversal and the block path never runs.
      EXPECT_EQ(kernel.kernel_block_rows, 0u) << label;
      EXPECT_EQ(kernel.kernel_checks, 0u) << label;
    } else if (kernel.pair_tests > 0) {
      // Any visited row was evaluated by a block.
      EXPECT_GT(kernel.kernel_checks, 0u) << label;
    }
  } else if (promote == (1u << 30)) {
    // Never promoted: the block path never runs.
    EXPECT_EQ(kernel.kernel_promotions, 0u) << label;
    EXPECT_EQ(kernel.kernel_block_rows, 0u) << label;
    EXPECT_EQ(kernel.kernel_checks, 0u) << label;
  }
}

struct SweepInstance {
  Dataset data;
  SimilaritySpace space;
  Object query;
  std::vector<AttrId> selected;
  bool mixed = false;

  explicit SweepInstance(Rng& master) : data(Schema::Categorical({1})) {
    const size_t mc = 1 + master.Uniform(4);
    std::vector<size_t> cards(mc);
    for (auto& c : cards) c = 2 + master.Uniform(30);
    const size_t num_numeric =
        master.Bernoulli(0.35) ? 1 + master.Uniform(2) : 0;
    mixed = num_numeric > 0;
    const uint64_t n = 30 + master.Uniform(350);
    const bool asym = master.Bernoulli(0.5);
    Rng drng = master.Fork();
    Rng srng = master.Fork();
    Rng qrng = master.Fork();
    data = mixed ? GenerateMixed(n, cards, num_numeric, 4, drng)
                 : (master.Bernoulli(0.5) ? GenerateNormal(n, cards, drng)
                                          : GenerateUniform(n, cards, drng));
    for (size_t c : cards) {
      space.AddCategorical(MakeRandomMatrix(c, srng, {.symmetric = !asym}));
    }
    for (size_t i = 0; i < num_numeric; ++i) {
      space.AddNumeric(NumericDissimilarity());
    }
    query = master.Bernoulli(0.5) ? SampleUniformQuery(data, qrng)
                                  : SampleRowQuery(data, qrng);
    if (master.Bernoulli(0.3)) {
      const size_t m = data.schema().num_attributes();
      for (AttrId a = 0; a < m; ++a) {
        if (master.Bernoulli(0.6)) selected.push_back(a);
      }
    }
  }
};

void ExpectSameRows(const ReverseSkylineResult& scalar,
                    const ReverseSkylineResult& kernel,
                    const char* label) {
  EXPECT_EQ(scalar.rows, kernel.rows) << label;
}

// The exact-accounting contract of Naive/BRS/SRS/bichromatic-block.
void ExpectSameCounts(const QueryStats& scalar, const QueryStats& kernel,
                      const char* label) {
  EXPECT_EQ(scalar.checks, kernel.checks) << label;
  EXPECT_EQ(scalar.pair_tests, kernel.pair_tests) << label;
  EXPECT_EQ(scalar.phase1_checks, kernel.phase1_checks) << label;
  EXPECT_EQ(scalar.phase2_checks, kernel.phase2_checks) << label;
  EXPECT_EQ(scalar.phase1_survivors, kernel.phase1_survivors) << label;
  EXPECT_EQ(scalar.io, kernel.io) << label;
  EXPECT_EQ(scalar.kernel_checks, 0u) << label;
  EXPECT_EQ(scalar.kernel_promotions, 0u) << label;
  EXPECT_EQ(scalar.kernel_scalar_rows, 0u) << label;
  EXPECT_EQ(scalar.kernel_block_rows, 0u) << label;
}

class KernelDeterminismSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelDeterminismSweep, WiredAlgorithmsAreBitIdentical) {
  Rng master(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    SweepInstance inst(master);
    auto expected =
        ReverseSkylineOracle(inst.data, inst.space, inst.query,
                             inst.selected);

    SimulatedDisk disk(128 + master.Uniform(900));
    RSOptions base;
    base.memory.pages = 2 + master.Uniform(8);
    base.selected_attrs = inst.selected;
    base.num_threads = master.Bernoulli(0.4) ? 3 : 1;
    const bool cache = master.Bernoulli(0.4);

    for (Algorithm algo : {Algorithm::kNaive, Algorithm::kBRS,
                           Algorithm::kSRS, Algorithm::kTRS}) {
      auto prep = PrepareDataset(&disk, inst.data, algo, {});
      ASSERT_TRUE(prep.ok());
      // One pool per run: a shared pool would carry warm pages from the
      // scalar run into the kernel runs and skew the IO comparison.
      BufferPool scalar_pool(&disk,
                             BufferPoolOptions::FromBudget(MemoryBudget{8}));
      RSOptions scalar_opts = base;
      if (cache) {
        scalar_opts.cache_pages = true;
        scalar_opts.buffer_pool = &scalar_pool;
      }
      auto scalar = RunReverseSkyline(*prep, inst.space, inst.query, algo,
                                      scalar_opts);
      ASSERT_TRUE(scalar.ok()) << AlgorithmName(algo);
      EXPECT_EQ(scalar->rows, expected) << AlgorithmName(algo);
      for (const uint32_t promote : kPromoteSweep) {
        BufferPool kernel_pool(
            &disk, BufferPoolOptions::FromBudget(MemoryBudget{8}));
        RSOptions kernel_opts = base;
        kernel_opts.use_kernels = true;
        kernel_opts.kernel_promote_rows = promote;
        if (cache) {
          kernel_opts.cache_pages = true;
          kernel_opts.buffer_pool = &kernel_pool;
        }
        auto kernel = RunReverseSkyline(*prep, inst.space, inst.query, algo,
                                        kernel_opts);
        ASSERT_TRUE(kernel.ok()) << AlgorithmName(algo);
        const std::string label =
            std::string(AlgorithmName(algo)) + " trial " +
            std::to_string(trial) + " promote " + std::to_string(promote) +
            " seed " + std::to_string(GetParam());
        ExpectSameRows(*scalar, *kernel, label.c_str());
        const bool trs_fast_path =
            algo == Algorithm::kTRS && !inst.mixed &&
            (inst.selected.empty() ||
             inst.selected.size() == inst.data.schema().num_attributes());
        if (algo == Algorithm::kTRS) {
          // TRS phase 2 is always scalar; on the fast path (all
          // attributes, all categorical) phase 1 probes the flat leaf
          // block and escapes promoted candidates to the tree traversal,
          // so `checks` carries only the escaped traversals' group-level
          // counts while pair tests (one per candidate leaf) and the
          // spilled survivors still match exactly.
          EXPECT_EQ(scalar->stats.phase2_checks,
                    kernel->stats.phase2_checks)
              << label;
          EXPECT_EQ(scalar->stats.pair_tests, kernel->stats.pair_tests)
              << label;
          EXPECT_EQ(scalar->stats.phase1_survivors,
                    kernel->stats.phase1_survivors)
              << label;
          EXPECT_EQ(scalar->stats.io, kernel->stats.io)
              << label;
          if (!trs_fast_path) {
            // Off the fast path the flag is inert: everything matches.
            ExpectSameCounts(scalar->stats, kernel->stats, label.c_str());
          }
        } else {
          ExpectSameCounts(scalar->stats, kernel->stats, label.c_str());
        }
        if (trs_fast_path || algo != Algorithm::kTRS) {
          ExpectAdaptiveInvariants(kernel->stats, promote,
                                   algo == Algorithm::kTRS, label);
        }
      }
    }
  }
}

// The two lane implementations (AVX2 and portable scalar) must agree on
// everything, including the kernel_checks instrumentation and the adaptive
// telemetry — the promotion decision depends only on verdicts, which are
// dispatch-invariant. promote_rows = 3 keeps both regimes (probe and
// block) active in every run.
TEST_P(KernelDeterminismSweep, DispatchPathsAgree) {
  Rng master(GetParam() ^ 0x5eed);
  for (int trial = 0; trial < 4; ++trial) {
    SweepInstance inst(master);
    SimulatedDisk disk(512);
    RSOptions opts;
    opts.memory.pages = 4;
    opts.selected_attrs = inst.selected;
    opts.use_kernels = true;
    opts.kernel_promote_rows = 3;
    for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS,
                           Algorithm::kTRS}) {
      auto prep = PrepareDataset(&disk, inst.data, algo, {});
      ASSERT_TRUE(prep.ok());
      auto native =
          RunReverseSkyline(*prep, inst.space, inst.query, algo, opts);
      ForceScalarKernelDispatchForTest(true);
      auto forced =
          RunReverseSkyline(*prep, inst.space, inst.query, algo, opts);
      ForceScalarKernelDispatchForTest(false);
      ASSERT_TRUE(native.ok() && forced.ok()) << AlgorithmName(algo);
      EXPECT_EQ(native->rows, forced->rows) << AlgorithmName(algo);
      EXPECT_EQ(native->stats.checks, forced->stats.checks)
          << AlgorithmName(algo);
      EXPECT_EQ(native->stats.pair_tests, forced->stats.pair_tests)
          << AlgorithmName(algo);
      EXPECT_EQ(native->stats.kernel_checks, forced->stats.kernel_checks)
          << AlgorithmName(algo);
      EXPECT_EQ(native->stats.kernel_promotions,
                forced->stats.kernel_promotions)
          << AlgorithmName(algo);
      EXPECT_EQ(native->stats.kernel_scalar_rows,
                forced->stats.kernel_scalar_rows)
          << AlgorithmName(algo);
      EXPECT_EQ(native->stats.kernel_block_rows,
                forced->stats.kernel_block_rows)
          << AlgorithmName(algo);
    }
  }
}

// Adaptive promotion composes with replica failover: a permanently bad
// middle page on the primary plus one clean replica must leave rows and
// check accounting bit-identical to the fault-free scalar run, at every
// promotion threshold. A fresh FaultyDisk per run keeps the deterministic
// fault stream aligned across runs.
TEST_P(KernelDeterminismSweep, AdaptivePromotionSurvivesReplicaFailover) {
  Rng master(GetParam() ^ 0xfa11);
  SweepInstance inst(master);
  for (Algorithm algo :
       {Algorithm::kNaive, Algorithm::kBRS, Algorithm::kSRS,
        Algorithm::kTRS}) {
    SimulatedDisk base(256);
    auto prep = PrepareDataset(&base, inst.data, algo, {});
    ASSERT_TRUE(prep.ok());
    RSOptions clean_opts;
    clean_opts.memory.pages = 3;
    clean_opts.selected_attrs = inst.selected;
    auto expected =
        RunReverseSkyline(*prep, inst.space, inst.query, algo, clean_opts);
    ASSERT_TRUE(expected.ok()) << AlgorithmName(algo);

    FaultConfig cfg;
    const PageId bad =
        static_cast<PageId>(base.NumPages(prep->stored.file()) / 2);
    cfg.bad_pages.insert({prep->stored.file(), bad});
    for (const uint32_t promote : kPromoteSweep) {
      FaultInjector injector(cfg);
      DiskView primary(&base);
      DiskView replica(&base);
      FaultyDisk faulty(&primary, &injector, /*stream=*/0,
                        /*fault_ceiling=*/base.next_file_id());
      PreparedDataset local{
          StoredDataset(&faulty, prep->stored.file(), prep->stored.schema(),
                        prep->stored.num_rows()),
          prep->attr_order, 0};
      RSOptions rs = clean_opts;
      rs.use_kernels = true;
      rs.kernel_promote_rows = promote;
      rs.failover_disks = {&replica};
      rs.failover_limit = base.next_file_id();
      auto result =
          RunReverseSkyline(local, inst.space, inst.query, algo, rs);
      ASSERT_TRUE(result.ok())
          << AlgorithmName(algo) << ": " << result.status();
      const std::string label = std::string(AlgorithmName(algo)) +
                                " promote " + std::to_string(promote);
      EXPECT_EQ(result->rows, expected->rows) << label;
      EXPECT_EQ(result->stats.pair_tests, expected->stats.pair_tests)
          << label;
      EXPECT_GT(result->stats.io.failovers, 0u) << label;
      EXPECT_GT(result->stats.io.replica_reads[1], 0u) << label;
    }
  }
}

TEST_P(KernelDeterminismSweep, BichromaticBlockIsBitIdentical) {
  Rng master(GetParam() + 17);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t mc = 1 + master.Uniform(3);
    std::vector<size_t> cards(mc);
    for (auto& c : cards) c = 2 + master.Uniform(20);
    Rng crng = master.Fork();
    Rng prng = master.Fork();
    Rng srng = master.Fork();
    Rng qrng = master.Fork();
    Dataset candidates =
        GenerateNormal(20 + master.Uniform(150), cards, crng);
    Dataset competitors =
        GenerateUniform(20 + master.Uniform(150), cards, prng);
    SimilaritySpace space;
    for (size_t c : cards) {
      space.AddCategorical(MakeRandomMatrix(c, srng, {.symmetric = false}));
    }
    Object q = SampleUniformQuery(candidates, qrng);

    SimulatedDisk disk(256);
    auto stored_c = StoredDataset::Create(&disk, candidates, "bi-cand");
    auto stored_p = StoredDataset::Create(&disk, competitors, "bi-comp");
    ASSERT_TRUE(stored_c.ok() && stored_p.ok());
    RSOptions opts;
    opts.memory.pages = 2 + master.Uniform(4);
    auto scalar = BichromaticBlockRS(*stored_c, *stored_p, space, q, opts);
    ASSERT_TRUE(scalar.ok());
    for (const uint32_t promote : kPromoteSweep) {
      opts.use_kernels = true;
      opts.kernel_promote_rows = promote;
      auto kernel = BichromaticBlockRS(*stored_c, *stored_p, space, q, opts);
      ASSERT_TRUE(kernel.ok());
      const std::string label = "trial " + std::to_string(trial) +
                                " promote " + std::to_string(promote);
      EXPECT_EQ(scalar->rows, kernel->rows) << label;
      EXPECT_EQ(scalar->stats.checks, kernel->stats.checks) << label;
      EXPECT_EQ(scalar->stats.pair_tests, kernel->stats.pair_tests) << label;
      ExpectAdaptiveInvariants(kernel->stats, promote, /*trs_hybrid=*/false,
                               label);
    }
  }
}

// Per-user overlays compose with everything above: evaluating with
// RSOptions::overlay must be bit-identical — rows, pair tests and IO — to
// rebuilding the patched space and running without an overlay, for every
// wired algorithm, with kernels off and at both promotion extremes.
// `checks` matches too except on the TRS kernel fast path, where the
// kernel-vs-scalar contract itself only promises pair tests (see
// WiredAlgorithmsAreBitIdentical).
TEST_P(KernelDeterminismSweep, OverlayMatchesPatchedSpaceRebuild) {
  Rng master(GetParam() ^ 0x07e1);
  struct Mode {
    bool kernels;
    uint32_t promote;
  };
  constexpr Mode kModes[] = {{false, 0u}, {true, 0u}, {true, 16u}};
  for (int trial = 0; trial < 4; ++trial) {
    SweepInstance inst(master);
    Rng orng = master.Fork();
    const double touch = master.Bernoulli(0.5) ? 0.02 : 0.15;
    MatrixOverlay overlay = MakeRandomOverlay(inst.space, orng, touch);
    ASSERT_FALSE(overlay.empty());
    SimilaritySpace patched = overlay.BuildPatchedSpace();

    SimulatedDisk disk(256 + master.Uniform(700));
    RSOptions base;
    base.memory.pages = 2 + master.Uniform(6);
    base.selected_attrs = inst.selected;
    for (Algorithm algo : {Algorithm::kNaive, Algorithm::kBRS,
                           Algorithm::kSRS, Algorithm::kTRS}) {
      auto prep = PrepareDataset(&disk, inst.data, algo, {});
      ASSERT_TRUE(prep.ok());
      auto rebuilt =
          RunReverseSkyline(*prep, patched, inst.query, algo, base);
      ASSERT_TRUE(rebuilt.ok()) << AlgorithmName(algo);
      for (const Mode& mode : kModes) {
        RSOptions opts = base;
        opts.overlay = &overlay;
        opts.use_kernels = mode.kernels;
        opts.kernel_promote_rows = mode.promote;
        auto overlaid =
            RunReverseSkyline(*prep, inst.space, inst.query, algo, opts);
        ASSERT_TRUE(overlaid.ok()) << AlgorithmName(algo);
        const std::string label =
            std::string(AlgorithmName(algo)) + " trial " +
            std::to_string(trial) +
            (mode.kernels ? " kernels promote " + std::to_string(mode.promote)
                          : " scalar") +
            " seed " + std::to_string(GetParam());
        EXPECT_EQ(overlaid->rows, rebuilt->rows) << label;
        EXPECT_EQ(overlaid->stats.pair_tests, rebuilt->stats.pair_tests)
            << label;
        EXPECT_EQ(overlaid->stats.io, rebuilt->stats.io) << label;
        if (!mode.kernels || algo != Algorithm::kTRS) {
          EXPECT_EQ(overlaid->stats.checks, rebuilt->stats.checks) << label;
          EXPECT_EQ(overlaid->stats.phase1_survivors,
                    rebuilt->stats.phase1_survivors)
              << label;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDeterminismSweep,
                         ::testing::Values(20260807, 4242, 991));

}  // namespace
}  // namespace nmrs
